package ccncoord

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"ccncoord/internal/benchjson"
)

// TestBenchBaseline checks the committed BENCH_<date>.json performance
// baselines: every file must parse, carry a date matching its filename,
// and contain a record for every benchmark in the suite — so a stale
// baseline (regenerated before a benchmark was added) fails loudly
// instead of silently missing the new numbers. Regenerate with
// cmd/ccnbench from the module root.
func TestBenchBaseline(t *testing.T) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no committed BENCH_<date>.json baseline; run cmd/ccnbench")
	}
	// Top-level benchmarks of bench_test.go plus their fixed
	// sub-benchmarks. Keep in sync when adding benchmarks.
	required := []string{
		"BenchmarkTableI", "BenchmarkTableII", "BenchmarkTableIII", "BenchmarkTableIV",
		"BenchmarkFig4", "BenchmarkFig5", "BenchmarkFig6", "BenchmarkFig7",
		"BenchmarkFig8", "BenchmarkFig9", "BenchmarkFig10", "BenchmarkFig11",
		"BenchmarkFig12", "BenchmarkFig13",
		"BenchmarkModelVsSim",
		"BenchmarkAblationAssignment", "BenchmarkAblationPolicy",
		"BenchmarkAblationSolver", "BenchmarkAblationCoordinator",
		"BenchmarkStabilityAnalysis", "BenchmarkAblationResilience",
		"BenchmarkAdaptiveConvergence",
		"BenchmarkOptimizePerTopology/Abilene", "BenchmarkOptimizePerTopology/CERNET",
		"BenchmarkOptimizePerTopology/GEANT", "BenchmarkOptimizePerTopology/US-A",
		"BenchmarkAblationLoss", "BenchmarkAblationCongestion",
		"BenchmarkMetricVariant", "BenchmarkAdaptiveDrift",
		"BenchmarkSimRun/Coordinated/US-A", "BenchmarkSimRun/LRU/US-A",
		"BenchmarkSimulationThroughput",
		"BenchmarkAPSP/Abilene", "BenchmarkAPSP/CERNET",
		"BenchmarkAPSP/GEANT", "BenchmarkAPSP/US-A",
		"BenchmarkTopologyAll",
		"BenchmarkRoutingScale/Dense/n=100",
		"BenchmarkRoutingScale/LRU/n=100", "BenchmarkRoutingScale/LRU/n=1000",
		"BenchmarkRoutingScale/LRU/n=10000", "BenchmarkRoutingScale/LRU/n=100000",
	}
	for _, n := range []int{100, 1000, 10000, 100000} {
		for _, p := range []int{1, 2, 4, 8} {
			required = append(required, fmt.Sprintf("BenchmarkShardedDES/n=%d/shards=%d", n, p))
		}
	}
	dateRe := regexp.MustCompile(`^BENCH_(\d{4}-\d{2}-\d{2})\.json$`)
	for _, path := range matches {
		m := dateRe.FindStringSubmatch(filepath.Base(path))
		if m == nil {
			t.Errorf("%s: name does not match BENCH_<YYYY-MM-DD>.json", path)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		suite, err := benchjson.Read(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if suite.Date != m[1] {
			t.Errorf("%s: date field %q does not match filename", path, suite.Date)
		}
		for _, name := range required {
			rec := suite.Find(name)
			if rec == nil {
				t.Errorf("%s: missing benchmark %q", path, name)
				continue
			}
			if rec.NsPerOp <= 0 || rec.Iterations <= 0 {
				t.Errorf("%s: %s has empty measurements: %+v", path, name, rec)
			}
		}
		// The sharded-engine scale sweep must carry its custom columns,
		// and — when the baseline was recorded on hardware that can
		// actually run 4 shards in parallel — show the ≥2× wall-clock
		// speedup the engine exists for. Single-core runners record
		// speedup ≈ 1 (the sweep still measures window overhead and
		// cross-shard fractions there), so the parallel-scaling gate
		// binds only on a ≥4-core recording.
		if rec := suite.Find("BenchmarkShardedDES/n=10000/shards=4"); rec != nil {
			for _, unit := range []string{"events/s", "speedup", "xfrac", "cores"} {
				if _, ok := rec.Extra[unit]; !ok {
					t.Errorf("%s: BenchmarkShardedDES/n=10000/shards=4 missing %q column", path, unit)
				}
			}
			if rec.Extra["cores"] >= 4 && rec.Extra["speedup"] < 2 {
				t.Errorf("%s: 4-shard speedup %.2f on a %g-core recording, want >= 2", path, rec.Extra["speedup"], rec.Extra["cores"])
			}
			if !(rec.Extra["xfrac"] > 0) {
				t.Errorf("%s: sharded sweep reports no cross-shard events (xfrac = %g)", path, rec.Extra["xfrac"])
			}
		}
	}
}
