// ccnd hosts a live simulated CCN network as a long-running service:
// a persistent daemon whose routers run on the discrete-event engine
// while clients push request batches over an HTTP/JSON plane. The
// coordinator re-plans the partitioned placement as observed
// popularity shifts, checkpointing its state so a killed daemon
// restarts exactly where it stopped.
//
// Usage:
//
//	ccnd -topology US-A -c 150 -x 75 -http 127.0.0.1:8080 -checkpoint state.json
//
// Endpoints (on the observability mux, alongside /healthz, /progress,
// /metrics and /debug/pprof):
//
//	POST /requests  {"count": 1000, "router": 3}   admit a batch (router optional)
//	GET  /stats                                    live snapshot
//	GET  /timeline                                 per-epoch coordination records (?since=E, ?follow=1)
//	POST /workload  {"zipf_s": 1.1, "mean_interarrival_ms": 0.5}
//	POST /scaling   {"workers": 4}                 resize the prep pool
//	POST /shutdown                                 drain and stop
//
// SIGINT/SIGTERM drain gracefully: admission stops (503 on /healthz),
// queued batches finish with their PIT state flushed, the final
// coordinator checkpoint and manifest are written, and the process
// exits 0. A failed daemon exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ccncoord/internal/daemon"
	"ccncoord/internal/obs"
	"ccncoord/internal/topology"
)

func main() {
	var (
		topoName = flag.String("topology", "US-A", "topology: Abilene, CERNET, GEANT, or US-A")
		catalogN = flag.Int64("N", 20000, "catalog size (contents)")
		s        = flag.Float64("s", 0.8, "initial Zipf popularity exponent")
		capacity = flag.Int64("c", 150, "per-router storage capacity")
		x        = flag.Int64("x", 75, "coordinated slots per router")
		access   = flag.Float64("access", 5, "client access latency, ms one-way")
		origin   = flag.Float64("origin", 60, "origin uplink latency, ms one-way")
		gateway  = flag.Int("gateway", -1, "origin gateway router id; -1 for a uniform uplink at every router")
		seed     = flag.Int64("seed", 1, "seed of the per-batch workload and arrival streams")
		iarr     = flag.Float64("interarrival", 1, "initial mean request inter-arrival time, ms")
		httpAddr = flag.String("http", "127.0.0.1:0", "serve the control/data plane on this address (port 0 picks one; the bound address is printed)")
		queue    = flag.Int("queue", 64, "admission queue depth in batches; a full queue answers 429")
		maxBatch = flag.Int("max-batch", 100000, "largest accepted batch, in requests")
		workers  = flag.Int("workers", 2, "initial prep worker-pool size (rescale live via POST /scaling)")
		epoch    = flag.Int64("epoch", 50000, "completed requests between coordinator re-plans; 0 disables re-planning")
		ckpt     = flag.String("checkpoint", "", "coordinator checkpoint path: written at each re-plan and at drain, restored on start when present")
		manifest = flag.String("manifest", "", "write the final manifest (JSON) here after a drained shutdown")
		ratio    = flag.Float64("time-ratio", 0, "pace the engine at this many simulated ms per wall-clock ms; 0 runs as fast as possible")
		tlCap    = flag.Int("timeline", 1024, "epoch records retained by GET /timeline (oldest evicted beyond this)")
		settle   = flag.Float64("settle", 0, "seconds to hold the initializing state before admitting (lets probes observe the transition)")
		linger   = flag.Float64("linger", 0, "seconds to keep serving /healthz and /stats after the drain completes")
	)
	flag.Parse()

	if err := run(*topoName, *catalogN, *s, *capacity, *x, *access, *origin, *gateway,
		*seed, *iarr, *httpAddr, *queue, *maxBatch, *workers, *epoch, *ckpt, *manifest,
		*ratio, *tlCap, *settle, *linger); err != nil {
		fmt.Fprintf(os.Stderr, "ccnd: %v\n", err)
		os.Exit(1)
	}
}

func run(topoName string, catalogN int64, s float64, capacity, x int64, access, origin float64,
	gateway int, seed int64, iarr float64, httpAddr string, queue, maxBatch, workers int,
	epoch int64, ckpt, manifest string, ratio float64, tlCap int, settle, linger float64) error {
	g, err := findTopology(topoName)
	if err != nil {
		return err
	}
	epochRequests := epoch
	if epochRequests == 0 {
		epochRequests = -1 // the Config zero value selects the default; 0 here means off
	}
	health := obs.NewHealth()
	progress := obs.NewProgress()

	d, err := daemon.New(daemon.Config{
		Topology:         g,
		CatalogSize:      catalogN,
		Capacity:         capacity,
		Coordinated:      x,
		AccessLatency:    access,
		OriginLatency:    origin,
		OriginGateway:    gateway,
		Workload:         daemon.WorkloadParams{ZipfS: s, MeanInterarrivalMs: iarr},
		Seed:             seed,
		QueueDepth:       queue,
		MaxBatch:         maxBatch,
		Workers:          workers,
		EpochRequests:    epochRequests,
		CheckpointPath:   ckpt,
		TimeRatio:        ratio,
		TimelineCapacity: tlCap,
	}, health, progress)
	if err != nil {
		return err
	}
	// Mirror the epoch timeline into /metrics alongside the progress
	// gauges.
	progress.AttachTimeline(d.Timeline())

	// Bind before Start so probes observe the initializing state.
	mux := obs.NewMux(progress, health)
	d.Register(mux)
	addr, stopHTTP, err := obs.Start(httpAddr, mux)
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = stopHTTP(ctx)
	}()
	fmt.Fprintf(os.Stderr, "ccnd: serving on http://%s (topology %s, n=%d)\n", addr, g.Name(), g.N())
	if d.Restored() {
		fmt.Fprintf(os.Stderr, "ccnd: restored coordinator state from %s (epoch %d)\n", ckpt, d.Epoch())
	}
	if settle > 0 {
		time.Sleep(time.Duration(settle * float64(time.Second)))
	}
	if err := d.Start(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ccnd: ready\n")

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "ccnd: %s: draining\n", sig)
		if err := d.Drain(fmt.Sprintf("signal %s", sig)); err != nil {
			return err
		}
	case <-d.Done():
		// Drained via POST /shutdown, or failed.
	}
	<-d.Done()

	state, reason := d.State()
	snap := d.Snapshot()
	fmt.Fprintf(os.Stderr, "ccnd: %s: %d batches, %d completed, %d failed, epoch %d\n",
		state, snap.Totals.BatchesSimulated, snap.Totals.Completed, snap.Totals.Failed,
		snap.Coordination.Epoch)
	if manifest != "" && state == daemon.StateStopped {
		f, err := os.Create(manifest)
		if err != nil {
			return fmt.Errorf("creating manifest file: %w", err)
		}
		if err := d.Manifest().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing manifest file: %w", err)
		}
	}
	// Keep the plane observable briefly so orchestration can read the
	// terminal 503 and final stats.
	if linger > 0 {
		time.Sleep(time.Duration(linger * float64(time.Second)))
	}
	if state == daemon.StateFailed {
		return fmt.Errorf("daemon failed: %s", reason)
	}
	return nil
}

// findTopology resolves an embedded dataset by name.
func findTopology(name string) (*topology.Graph, error) {
	for _, cand := range topology.All() {
		if cand.Name() == name {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}
