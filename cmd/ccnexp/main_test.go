package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestArtifactsWellFormed(t *testing.T) {
	arts := artifacts(1000, 2)
	seen := map[string]bool{}
	for _, a := range arts {
		if a.id == "" || a.about == "" {
			t.Errorf("artifact %+v missing id or description", a)
		}
		if seen[a.id] {
			t.Errorf("duplicate artifact id %q", a.id)
		}
		seen[a.id] = true
		if (a.figure == nil) == (a.table == nil) {
			t.Errorf("artifact %q must set exactly one of figure/table", a.id)
		}
	}
	for _, want := range []string{"table1", "fig4", "fig13", "modelvssim", "stability", "adaptive", "chaos"} {
		if !seen[want] {
			t.Errorf("missing artifact %q", want)
		}
	}
}

func TestRunArtifactsUnknownID(t *testing.T) {
	if err := runArtifacts(artifacts(1000, 2), "nope", modeText, "", "", nil); err == nil {
		t.Error("unknown artifact id should fail")
	}
}

func TestRunArtifactsWritesFiles(t *testing.T) {
	dir := t.TempDir()
	if err := runArtifacts(artifacts(1000, 2), "fig4", modeCSV, dir, "", nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "trade-off weight alpha,") {
		t.Errorf("unexpected CSV header: %.60s", data)
	}
}

func TestEmitPlotMode(t *testing.T) {
	var found *artifact
	for _, a := range artifacts(1000, 2) {
		if a.id == "fig7" {
			a := a
			found = &a
			break
		}
	}
	if found == nil {
		t.Fatal("fig7 artifact missing")
	}
	var sb strings.Builder
	if err := emit(&sb, *found, modePlot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "alpha=1") || !strings.Contains(sb.String(), "+--") {
		t.Errorf("plot output malformed:\n%.200s", sb.String())
	}
}
