// Command ccnexp regenerates the paper's evaluation artifacts: Tables
// I-IV and Figures 4-13, plus this repository's model-versus-simulation
// validation table.
//
// Usage:
//
//	ccnexp -list
//	ccnexp -run fig4            # one artifact to stdout (text)
//	ccnexp -run all -csv -out results/   # everything as CSV files
//	ccnexp -run modelvssim -requests 100000
//	ccnexp -run all -workers 8  # bound the worker pool explicitly
//
// Artifacts render concurrently on a bounded worker pool but always
// emit in a fixed order, so the output is byte-identical whatever
// -workers is set to.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"ccncoord/internal/experiments"
	"ccncoord/internal/obs"
	"ccncoord/internal/par"
	"ccncoord/internal/plot"
	"ccncoord/internal/prof"
	"ccncoord/internal/trace"
)

// artifact is one regenerable table or figure.
type artifact struct {
	id    string
	about string
	// exactly one of figure/table is set
	figure func() (experiments.Figure, error)
	table  func() (experiments.Table, error)
}

func artifacts(requests, replicas int) []artifact {
	return []artifact{
		{id: "table1", about: "motivating example comparison (packet-level)", table: experiments.TableI},
		{id: "table2", about: "topology statistics", table: func() (experiments.Table, error) { return experiments.TableII(), nil }},
		{id: "table3", about: "topological parameters", table: experiments.TableIII},
		{id: "table4", about: "figure parameter settings", table: func() (experiments.Table, error) { return experiments.TableIV(), nil }},
		{id: "fig4", about: "l* vs alpha (per gamma)", figure: experiments.Fig4},
		{id: "fig5", about: "l* vs Zipf exponent (per alpha)", figure: experiments.Fig5},
		{id: "fig6", about: "l* vs network size (per alpha)", figure: experiments.Fig6},
		{id: "fig7", about: "l* vs unit coordination cost (per alpha)", figure: experiments.Fig7},
		{id: "fig8", about: "G_O vs alpha (per gamma)", figure: experiments.Fig8},
		{id: "fig9", about: "G_O vs Zipf exponent (per alpha)", figure: experiments.Fig9},
		{id: "fig10", about: "G_O vs network size (per alpha)", figure: experiments.Fig10},
		{id: "fig11", about: "G_O vs unit coordination cost (per alpha)", figure: experiments.Fig11},
		{id: "fig12", about: "G_R vs alpha (per gamma)", figure: experiments.Fig12},
		{id: "fig13", about: "G_R vs Zipf exponent (per alpha)", figure: experiments.Fig13},
		{id: "modelvssim", about: "packet simulation vs analytical model", table: func() (experiments.Table, error) {
			return experiments.ModelVsSim(requests)
		}},
		{id: "ablation-assignment", about: "rank striping vs content hashing", table: func() (experiments.Table, error) {
			return experiments.AblationAssignment(requests)
		}},
		{id: "ablation-policy", about: "provisioned vs dynamic cache policies", table: func() (experiments.Table, error) {
			return experiments.AblationPolicy(requests)
		}},
		{id: "ablation-solver", about: "exact vs fixed-point vs closed-form solvers", table: experiments.AblationSolver},
		{id: "ablation-coordinator", about: "centralized vs tree-distributed coordination", table: experiments.AblationCoordinator},
		{id: "ablation-resilience", about: "coordinated placement under link failure", table: func() (experiments.Table, error) {
			return experiments.AblationResilience(requests)
		}},
		{id: "stability", about: "sensitive alpha range of l* per gamma", table: experiments.StabilityAnalysis},
		{id: "metric-variant", about: "hop-count vs latency tier-gap metrics", table: experiments.MetricVariant},
		{id: "measured-tiers", about: "d0/d1/d2 measured from the simulator and the l* they imply", table: func() (experiments.Table, error) {
			return experiments.MeasuredTiers(requests)
		}},
		{id: "ablation-loss", about: "coordinated placement on a lossy fabric", table: func() (experiments.Table, error) {
			return experiments.AblationLoss(requests)
		}},
		{id: "ablation-congestion", about: "offered load vs finite link capacity", table: func() (experiments.Table, error) {
			return experiments.AblationCongestion(requests)
		}},
		{id: "ablation-regional", about: "global placement under regional interest skew", table: func() (experiments.Table, error) {
			return experiments.AblationRegionalSkew(requests)
		}},
		{id: "ablation-replicas", about: "strategy comparison over seeded replicas (mean ± stderr)", table: func() (experiments.Table, error) {
			return experiments.AblationReplicas(requests, replicas)
		}},
		{id: "adaptive", about: "closed-loop adaptive provisioning over epochs", table: func() (experiments.Table, error) {
			return experiments.AdaptiveConvergence(requests, 4)
		}},
		{id: "adaptive-drift", about: "adaptive provisioning under popularity drift", table: func() (experiments.Table, error) {
			return experiments.AdaptiveDrift(requests, 4)
		}},
		{id: "validation-spans", about: "span-level per-rank-band behavior vs analytical bands", table: func() (experiments.Table, error) {
			return experiments.ValidationSpans(requests)
		}},
		{id: "chaos", about: "resilience under composed chaos scenarios (coordinator crash, partition, loss, cascade)", table: func() (experiments.Table, error) {
			return experiments.ChaosResilience(requests)
		}},
	}
}

func main() {
	var (
		list        = flag.Bool("list", false, "list artifact ids and exit")
		run         = flag.String("run", "all", "artifact id to regenerate, or 'all'")
		csvOut      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		plotOut     = flag.Bool("plot", false, "render figures as ASCII charts instead of tables")
		outDir      = flag.String("out", "", "write each artifact to DIR/<id>.{txt,csv} instead of stdout")
		requests    = flag.Int("requests", 40000, "measured requests for the simulation-backed experiments")
		replicas    = flag.Int("replicas", 5, "seeded replicas for the ablation-replicas artifact")
		workers     = flag.Int("workers", 0, "worker-pool width for experiment generation; 0 = GOMAXPROCS, 1 = serial")
		shardsFlag  = flag.String("shards", "auto", "event-loop shards per simulation: auto (each scenario decides), 1 (serial), or N; artifacts are identical at any setting")
		httpAddr    = flag.String("http", "", "serve live run progress, metrics and pprof on this address (e.g. 127.0.0.1:8080)")
		tracePath   = flag.String("trace", "", "write a JSONL event trace of every simulation run to this file (.gz compresses)")
		traceSample = flag.Float64("trace-sample", 1, "trace sample rate in (0,1]: 0.01 keeps every 100th request lifecycle")
		manifest    = flag.String("manifest", "", "write an artifact manifest (ids, sizes, sha256 digests) to this file")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation heap profile to this file")
	)
	flag.Parse()
	experiments.SetWorkers(*workers)
	shards, err := parseShards(*shardsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccnexp:", err)
		os.Exit(1)
	}
	experiments.SetShards(shards)
	traceDone := func() error { return nil }
	if *tracePath != "" {
		tr, done, err := trace.OpenFile(*tracePath, *traceSample)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccnexp:", err)
			os.Exit(1)
		}
		experiments.SetTracer(tr)
		traceDone = done
	}
	var progress *obs.Progress
	var health *obs.Health
	obsDone := func() error { return nil }
	fail := func(err error) {
		if health != nil {
			health.Fail(err.Error())
		}
		fmt.Fprintln(os.Stderr, "ccnexp:", err)
		os.Exit(1)
	}
	if *httpAddr != "" {
		progress = obs.NewProgress()
		health = obs.NewHealth()
		experiments.SetProgress(progress)
		addr, shutdown, err := obs.Start(*httpAddr, obs.NewMux(progress, health))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccnexp:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ccnexp: serving metrics on http://%s/metrics\n", addr)
		health.Ready()
		obsDone = func() error {
			health.Draining("run complete")
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			return shutdown(ctx)
		}
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccnexp:", err)
		os.Exit(1)
	}

	arts := artifacts(*requests, *replicas)
	if *list {
		for _, a := range arts {
			fmt.Printf("%-20s %s\n", a.id, a.about)
		}
		return
	}
	mode := modeText
	switch {
	case *csvOut && *plotOut:
		fmt.Fprintln(os.Stderr, "ccnexp: -csv and -plot are mutually exclusive")
		os.Exit(1)
	case *csvOut:
		mode = modeCSV
	case *plotOut:
		mode = modePlot
	}
	if err := runArtifacts(arts, *run, mode, *outDir, *manifest, progress); err != nil {
		fail(err)
	}
	if err := traceDone(); err != nil {
		fail(err)
	}
	if err := obsDone(); err != nil {
		fail(err)
	}
	if err := stopProf(); err != nil {
		fail(err)
	}
}

// outputMode selects the rendering of artifacts.
type outputMode int

const (
	modeText outputMode = iota
	modeCSV
	modePlot
)

// artifactManifest digests one ccnexp invocation: which artifacts were
// rendered, in what mode, and the exact bytes each produced. It
// deliberately excludes schedule-dependent values (the -workers width,
// trace sampling counts), so the manifest of a given selection is
// byte-identical however the pool is sized.
type artifactManifest struct {
	Schema    string           `json:"schema"`
	Run       string           `json:"run"`
	Mode      string           `json:"mode"`
	Artifacts []artifactDigest `json:"artifacts"`
}

// artifactDigest is one artifact's rendered size and content hash.
type artifactDigest struct {
	ID     string `json:"id"`
	Bytes  int    `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// artifactManifestSchema identifies the artifact-manifest JSON layout.
const artifactManifestSchema = "ccncoord/artifact-manifest/v1"

// parseShards parses a -shards flag value: "auto" (0 — each scenario's
// auto rule decides) or an explicit positive shard count applied to
// every simulation.
func parseShards(s string) (int, error) {
	if s == "auto" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf(`-shards must be "auto" or a positive integer, got %q`, s)
	}
	return n, nil
}

func (m outputMode) String() string {
	switch m {
	case modeCSV:
		return "csv"
	case modePlot:
		return "plot"
	default:
		return "text"
	}
}

// writeArtifactManifest digests the rendered artifacts to path.
func writeArtifactManifest(path, run string, mode outputMode, selected []artifact, rendered [][]byte) error {
	m := artifactManifest{
		Schema:    artifactManifestSchema,
		Run:       run,
		Mode:      mode.String(),
		Artifacts: make([]artifactDigest, len(selected)),
	}
	for i, a := range selected {
		sum := sha256.Sum256(rendered[i])
		m.Artifacts[i] = artifactDigest{
			ID:     a.id,
			Bytes:  len(rendered[i]),
			SHA256: hex.EncodeToString(sum[:]),
		}
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("marshaling artifact manifest: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func runArtifacts(arts []artifact, id string, mode outputMode, outDir, manifestPath string, progress *obs.Progress) error {
	var selected []artifact
	for _, a := range arts {
		if id == "all" || a.id == id {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		ids := make([]string, len(arts))
		for i, a := range arts {
			ids[i] = a.id
		}
		sort.Strings(ids)
		return fmt.Errorf("unknown artifact %q (have %v)", id, ids)
	}
	if progress != nil {
		progress.SetArtifactsTotal(len(selected))
	}
	// Render every artifact concurrently, then emit sequentially in
	// selection order: the bytes on stdout or disk never depend on the
	// pool width or completion order.
	rendered, err := par.Map(experiments.Workers(), len(selected), func(i int) ([]byte, error) {
		var buf bytes.Buffer
		if err := emit(&buf, selected[i], mode); err != nil {
			return nil, fmt.Errorf("%s: %w", selected[i].id, err)
		}
		if progress != nil {
			progress.ArtifactDone()
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		return err
	}
	if manifestPath != "" {
		if err := writeArtifactManifest(manifestPath, id, mode, selected, rendered); err != nil {
			return err
		}
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	for i, a := range selected {
		if outDir == "" {
			if _, err := os.Stdout.Write(rendered[i]); err != nil {
				return err
			}
			fmt.Println()
			continue
		}
		ext := ".txt"
		if mode == modeCSV {
			ext = ".csv"
		}
		if err := os.WriteFile(filepath.Join(outDir, a.id+ext), rendered[i], 0o644); err != nil {
			return err
		}
	}
	return nil
}

func emit(w io.Writer, a artifact, mode outputMode) error {
	if a.figure != nil {
		f, err := a.figure()
		if err != nil {
			return err
		}
		switch mode {
		case modeCSV:
			return experiments.WriteFigureCSV(w, f)
		case modePlot:
			series := make([]plot.Series, len(f.Series))
			for i, s := range f.Series {
				series[i] = plot.Series{Label: s.Label, X: s.X, Y: s.Y}
			}
			return plot.Render(w, plot.Chart{
				Title:  fmt.Sprintf("%s: %s", f.ID, f.Title),
				XLabel: f.XLabel, YLabel: f.YLabel,
				Series: series,
			})
		default:
			return experiments.WriteFigureText(w, f)
		}
	}
	t, err := a.table()
	if err != nil {
		return err
	}
	if mode == modeCSV {
		return experiments.WriteTableCSV(w, t)
	}
	return experiments.WriteTableText(w, t)
}
