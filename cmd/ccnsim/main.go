// Command ccnsim runs the packet-level CCN simulator on one of the
// embedded evaluation topologies and reports the measured origin load,
// per-tier hit ratios, latency, hop count, and coordination cost — side
// by side with the analytical model's prediction when the coordinated or
// non-coordinated provisioned policies are used.
//
// Examples:
//
//	ccnsim -topology US-A -policy coordinated -x 50
//	ccnsim -topology Abilene -policy lru -requests 100000 -warmup 50000
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"ccncoord/internal/model"
	"ccncoord/internal/sim"
	"ccncoord/internal/topology"
)

func main() {
	var (
		topoName = flag.String("topology", "US-A", "topology: Abilene, CERNET, GEANT, or US-A")
		policy   = flag.String("policy", "coordinated", "provisioning policy: non-coordinated, coordinated, lru, lfu, slru, 2q, probcache")
		catalog  = flag.Int64("N", 20000, "catalog size (contents)")
		s        = flag.Float64("s", 0.8, "Zipf popularity exponent")
		capacity = flag.Int64("c", 150, "per-router storage capacity")
		x        = flag.Int64("x", 75, "coordinated slots per router (coordinated policy)")
		requests = flag.Int("requests", 60000, "measured requests")
		warmup   = flag.Int("warmup", 0, "warmup requests (dynamic policies)")
		seed     = flag.Int64("seed", 1, "workload seed")
		access   = flag.Float64("access", 5, "client access latency, ms one-way")
		origin   = flag.Float64("origin", 60, "origin uplink latency, ms one-way")
		gateway  = flag.Int("gateway", -1, "origin gateway router id; -1 for a uniform uplink at every router")
		adaptive = flag.Int("adaptive", 0, "run the closed adaptive-provisioning loop for this many epochs instead of a single run")
		loss     = flag.Float64("loss", 0, "per-transmission drop probability on network links, [0,1)")
		retx     = flag.Float64("retx", 300, "interest retransmission timeout (ms) when -loss > 0")
	)
	flag.Parse()

	var err error
	if *adaptive > 0 {
		err = runAdaptive(*topoName, *catalog, *s, *capacity, *requests, *seed, *access, *origin, *gateway, *adaptive)
	} else {
		err = run(*topoName, *policy, *catalog, *s, *capacity, *x, *requests, *warmup, *seed, *access, *origin, *gateway, *loss, *retx)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccnsim:", err)
		os.Exit(1)
	}
}

// runAdaptive drives the closed adaptive loop and prints one row per
// epoch.
func runAdaptive(topoName string, catalog int64, s float64, capacity int64,
	requests int, seed int64, access, origin float64, gateway, epochs int) error {
	g, err := findTopology(topoName)
	if err != nil {
		return err
	}
	sc := sim.Scenario{
		Topology:      g,
		CatalogSize:   catalog,
		ZipfS:         s,
		Capacity:      capacity,
		Requests:      requests,
		Seed:          seed,
		AccessLatency: access,
		OriginLatency: origin,
		OriginGateway: topology.NodeID(gateway),
	}
	base := model.Config{
		S: 0.5, // prior; the loop learns the real exponent
		N: float64(catalog), C: float64(capacity), Routers: g.N(),
		Lat:      model.LatencyFromGamma(1, 2.2842, 5),
		UnitCost: 26.7, Alpha: 0.95,
	}
	records, err := sim.AdaptiveRun(sc, base, epochs)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "epoch\tpolicy\testimated s\tlevel l*\torigin load\tcoord msgs")
	for _, e := range records {
		fmt.Fprintf(tw, "%d\t%s\t%.3f\t%.3f\t%.4f\t%d\n",
			e.Epoch, e.Result.Policy, e.EstimatedS, e.Level,
			e.Result.OriginLoad, e.Result.CoordMessages)
	}
	return tw.Flush()
}

// findTopology resolves an embedded dataset by name.
func findTopology(name string) (*topology.Graph, error) {
	for _, cand := range topology.All() {
		if cand.Name() == name {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

func run(topoName, policy string, catalog int64, s float64, capacity, x int64,
	requests, warmup int, seed int64, access, origin float64, gateway int, loss, retx float64) error {
	g, err := findTopology(topoName)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(policy)
	if err != nil {
		return err
	}
	sc := sim.Scenario{
		Topology:      g,
		CatalogSize:   catalog,
		ZipfS:         s,
		Capacity:      capacity,
		Coordinated:   x,
		Policy:        pol,
		Requests:      requests,
		Warmup:        warmup,
		Seed:          seed,
		AccessLatency: access,
		OriginLatency: origin,
		OriginGateway: topology.NodeID(gateway),
		LossRate:      loss,
	}
	if loss > 0 {
		sc.RetxTimeout = retx
	}
	if pol != sim.PolicyCoordinated {
		sc.Coordinated = 0
	}
	res, err := sim.Run(sc)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "topology\t%s (n=%d)\n", g.Name(), g.N())
	fmt.Fprintf(tw, "policy\t%s\n", res.Policy)
	fmt.Fprintf(tw, "measured requests\t%d\n", res.Requests)
	fmt.Fprintf(tw, "origin load\t%.4f\n", res.OriginLoad)
	fmt.Fprintf(tw, "local hit ratio\t%.4f\n", res.LocalHit)
	fmt.Fprintf(tw, "peer hit ratio\t%.4f\n", res.PeerHit)
	fmt.Fprintf(tw, "mean latency (ms)\t%.2f\n", res.MeanLatency)
	fmt.Fprintf(tw, "mean hop count\t%.3f\n", res.MeanHops)
	fmt.Fprintf(tw, "interest/data transmissions\t%d / %d\n",
		res.InterestTransmissions, res.DataTransmissions)
	if loss > 0 {
		fmt.Fprintf(tw, "drops (interest/data)\t%d / %d\n", res.DroppedInterests, res.DroppedData)
		fmt.Fprintf(tw, "retransmissions\t%d\n", res.Retransmissions)
		fmt.Fprintf(tw, "latency p50/p95/p99 (ms)\t%.1f / %.1f / %.1f\n", res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
	if pol == sim.PolicyCoordinated {
		fmt.Fprintf(tw, "coordination messages\t%d\n", res.CoordMessages)
		fmt.Fprintf(tw, "coordination convergence (ms)\t%.1f\n", res.CoordConvergence)
	}

	// Analytical prediction for the provisioned policies.
	if pol == sim.PolicyCoordinated || pol == sim.PolicyNonCoordinated {
		cfg := model.Config{
			S: s, N: float64(catalog), C: float64(capacity), Routers: g.N(),
			Lat: model.Latency{D0: 1, D1: 2, D2: 3}, Alpha: 1,
		}
		d, err := model.NewDiscrete(cfg)
		if err != nil {
			return err
		}
		xs := sc.Coordinated
		local, peer, originLoad := d.HitRatios(xs)
		fmt.Fprintf(tw, "model origin load\t%.4f\n", originLoad)
		fmt.Fprintf(tw, "model local/peer (rank bands)\t%.4f / %.4f\n", local, peer)
	}
	return tw.Flush()
}

func parsePolicy(s string) (sim.Policy, error) {
	switch s {
	case "non-coordinated", "noncoordinated", "nc":
		return sim.PolicyNonCoordinated, nil
	case "coordinated", "coord":
		return sim.PolicyCoordinated, nil
	case "lru":
		return sim.PolicyLRU, nil
	case "lfu":
		return sim.PolicyLFU, nil
	case "slru":
		return sim.PolicySLRU, nil
	case "2q", "twoq":
		return sim.PolicyTwoQ, nil
	case "probcache", "prob":
		return sim.PolicyProbCache, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}
