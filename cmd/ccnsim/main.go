// Command ccnsim runs the packet-level CCN simulator on one of the
// embedded evaluation topologies and reports the measured origin load,
// per-tier hit ratios, latency, hop count, and coordination cost — side
// by side with the analytical model's prediction when the coordinated or
// non-coordinated provisioned policies are used.
//
// Examples:
//
//	ccnsim -topology US-A -policy coordinated -x 50
//	ccnsim -topology Abilene -policy lru -requests 100000 -warmup 50000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"ccncoord/internal/fault"
	"ccncoord/internal/model"
	"ccncoord/internal/obs"
	"ccncoord/internal/prof"
	"ccncoord/internal/sim"
	"ccncoord/internal/timeline"
	"ccncoord/internal/topology"
	"ccncoord/internal/trace"
)

func main() {
	var (
		topoName    = flag.String("topology", "US-A", "topology: Abilene, CERNET, GEANT, or US-A")
		policy      = flag.String("policy", "coordinated", "provisioning policy: non-coordinated, coordinated, lru, lfu, slru, 2q, probcache")
		catalog     = flag.Int64("N", 20000, "catalog size (contents)")
		s           = flag.Float64("s", 0.8, "Zipf popularity exponent")
		capacity    = flag.Int64("c", 150, "per-router storage capacity")
		x           = flag.Int64("x", 75, "coordinated slots per router (coordinated policy)")
		requests    = flag.Int("requests", 60000, "measured requests")
		warmup      = flag.Int("warmup", 0, "warmup requests (dynamic policies)")
		seed        = flag.Int64("seed", 1, "workload seed")
		access      = flag.Float64("access", 5, "client access latency, ms one-way")
		origin      = flag.Float64("origin", 60, "origin uplink latency, ms one-way")
		gateway     = flag.Int("gateway", -1, "origin gateway router id; -1 for a uniform uplink at every router")
		adaptive    = flag.Int("adaptive", 0, "run the closed adaptive-provisioning loop for this many epochs instead of a single run")
		loss        = flag.Float64("loss", 0, "per-transmission drop probability on network links, [0,1)")
		retx        = flag.Float64("retx", 300, "interest retransmission timeout (ms) when -loss > 0 or faults are injected")
		mtbf        = flag.Float64("mtbf", 0, "mean time between router failures (ms); 0 disables stochastic faults (requires -mttr)")
		mttr        = flag.Float64("mttr", 0, "mean time to router recovery (ms) under -mtbf")
		faultSeed   = flag.Int64("faultseed", 1, "seed of the stochastic fault process")
		failSpec    = flag.String("fail", "", "scripted router crashes: router@start[-end],... (ms; omit end to crash forever)")
		chaosSpec   = flag.String("chaos", "", "chaos scenario: a JSON file path or a preset name (see -chaos list)")
		chaosCkpt   = flag.String("chaos-checkpoint", "", "save a coordinator checkpoint here at each chaos coordinator crash and restore it at the restart")
		staleness   = flag.Float64("staleness", 0, "staleness bound (ms) before a coordination outage degrades the data plane; 0 selects the default")
		routing     = flag.String("routing", "auto", "shortest-path backend: auto (dense below the threshold, lru above), dense, lru, or landmark")
		shardsFlag  = flag.String("shards", "auto", "event-loop shards: auto (serial below the dense threshold), 1 (serial), or N; results are identical at any setting")
		httpAddr    = flag.String("http", "", "serve run progress, metrics and pprof on this address for the duration of the run")
		tracePath   = flag.String("trace", "", "write a JSONL event trace to this file (.gz compresses; see internal/trace)")
		traceSample = flag.Float64("trace-sample", 1, "trace sample rate in (0,1]: 0.01 keeps every 100th request lifecycle")
		manifest    = flag.String("manifest", "", "write the run's observability manifest (JSON) to this file")
		telemetry   = flag.Bool("telemetry", false, "collect the coordination timeline and per-shard engine stats: extra output rows, timeline/engine sections in -manifest, timeline series on -http /metrics")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation heap profile to this file")
	)
	flag.Parse()

	backend, err := topology.ParseBackend(*routing)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccnsim:", err)
		os.Exit(1)
	}
	shards, err := parseShards(*shardsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccnsim:", err)
		os.Exit(1)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccnsim:", err)
		os.Exit(1)
	}
	obsf := obsFlags{tracePath: *tracePath, traceSample: *traceSample, manifestPath: *manifest, telemetry: *telemetry}
	obsDone := func() error { return nil }
	var health *obs.Health
	if *httpAddr != "" {
		obsf.progress = obs.NewProgress()
		health = obs.NewHealth()
		addr, shutdown, serr := obs.Start(*httpAddr, obs.NewMux(obsf.progress, health))
		if serr != nil {
			fmt.Fprintln(os.Stderr, "ccnsim:", serr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ccnsim: serving metrics on http://%s/metrics\n", addr)
		health.Ready()
		obsDone = func() error {
			health.Draining("run complete")
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			return shutdown(ctx)
		}
	}
	if *adaptive > 0 {
		if *manifest != "" {
			err = fmt.Errorf("-manifest applies to single runs, not -adaptive")
		} else {
			err = runAdaptive(*topoName, *catalog, *s, *capacity, *requests, *seed, *access, *origin, *gateway, *adaptive, backend, obsf)
		}
	} else if *chaosSpec == "list" {
		for _, name := range fault.ChaosPresets() {
			fmt.Println(name)
		}
	} else {
		err = run(*topoName, *policy, *catalog, *s, *capacity, *x, *requests, *warmup, *seed, *access, *origin, *gateway, *loss, *retx,
			*mtbf, *mttr, *faultSeed, *failSpec, chaosOpts{spec: *chaosSpec, checkpoint: *chaosCkpt, staleness: *staleness}, backend, shards, obsf)
	}
	if err == nil {
		err = stopProf()
	}
	if err == nil {
		err = obsDone()
	}
	if err != nil {
		if health != nil {
			health.Fail(err.Error())
		}
		fmt.Fprintln(os.Stderr, "ccnsim:", err)
		os.Exit(1)
	}
}

// obsFlags carries the observability options shared by the run modes.
type obsFlags struct {
	tracePath    string
	traceSample  float64
	manifestPath string
	telemetry    bool          // -telemetry: timeline ring + engine stats
	progress     *obs.Progress // nil unless -http is serving
}

// openTimeline builds the coordination-timeline ring when -telemetry is
// on (nil otherwise) and attaches it to the live /metrics exporter when
// one is serving.
func (o obsFlags) openTimeline() *timeline.Ring {
	if !o.telemetry {
		return nil
	}
	ring := timeline.NewRing(256)
	if o.progress != nil {
		o.progress.AttachTimeline(ring)
	}
	return ring
}

// openTracer builds the tracer from the flags, or returns nils when
// tracing is off. done flushes and closes the trace file (and its gzip
// layer for .gz paths).
func (o obsFlags) openTracer() (tr *trace.Tracer, done func() error, err error) {
	if o.tracePath == "" {
		return nil, func() error { return nil }, nil
	}
	return trace.OpenFile(o.tracePath, o.traceSample)
}

// simStarted ticks the live progress tracker, if serving.
func (o obsFlags) simStarted() {
	if o.progress != nil {
		o.progress.SimStarted()
	}
}

// simFinished ticks the live progress tracker and publishes the run's
// metrics snapshot for /metrics, if serving.
func (o obsFlags) simFinished(res *sim.Result) {
	if o.progress == nil {
		return
	}
	o.progress.SimFinished(int64(res.Requests))
	if res.Manifest != nil {
		snap := res.Manifest.Metrics
		o.progress.Publish(&snap)
	}
}

// writeManifest serializes the run manifest to the flagged path.
func (o obsFlags) writeManifest(m *sim.RunManifest) error {
	if o.manifestPath == "" {
		return nil
	}
	if m == nil {
		return fmt.Errorf("run produced no manifest")
	}
	f, err := os.Create(o.manifestPath)
	if err != nil {
		return fmt.Errorf("creating manifest file: %w", err)
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runAdaptive drives the closed adaptive loop and prints one row per
// epoch.
func runAdaptive(topoName string, catalog int64, s float64, capacity int64,
	requests int, seed int64, access, origin float64, gateway, epochs int, routing topology.Backend, obs obsFlags) error {
	g, err := findTopology(topoName)
	if err != nil {
		return err
	}
	tr, traceDone, err := obs.openTracer()
	if err != nil {
		return err
	}
	sc := sim.Scenario{
		Topology:      g,
		CatalogSize:   catalog,
		ZipfS:         s,
		Capacity:      capacity,
		Requests:      requests,
		Seed:          seed,
		AccessLatency: access,
		OriginLatency: origin,
		OriginGateway: topology.NodeID(gateway),
		Routing:       routing,
		Tracer:        tr,
	}
	base := model.Config{
		S: 0.5, // prior; the loop learns the real exponent
		N: float64(catalog), C: float64(capacity), Routers: g.N(),
		Lat:      model.LatencyFromGamma(1, 2.2842, 5),
		UnitCost: 26.7, Alpha: 0.95,
	}
	ring := obs.openTimeline()
	sc.Timeline = ring
	obs.simStarted()
	records, err := sim.AdaptiveRun(sc, base, epochs)
	if err != nil {
		return err
	}
	if obs.progress != nil {
		var reqs int64
		for _, e := range records {
			reqs += int64(e.Result.Requests)
		}
		obs.progress.SimFinished(reqs)
	}
	// With -telemetry the table gains the model's message budget and the
	// placement churn per epoch; without it, stdout is byte-identical to
	// earlier releases.
	var tl []timeline.EpochRecord
	if ring != nil {
		tl = ring.Snapshot().Records
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	hdr := "epoch\tpolicy\testimated s\tlevel l*\torigin load\tcoord msgs"
	if ring != nil {
		hdr += "\tinstall msgs / bound\tchurn"
	}
	fmt.Fprintln(tw, hdr)
	for i, e := range records {
		fmt.Fprintf(tw, "%d\t%s\t%.3f\t%.3f\t%.4f\t%d",
			e.Epoch, e.Result.Policy, e.EstimatedS, e.Level,
			e.Result.OriginLoad, e.Result.CoordMessages)
		if i < len(tl) {
			fmt.Fprintf(tw, "\t%d / %d\t%d", tl[i].Messages, tl[i].BoundMessages, tl[i].Churn)
		} else if ring != nil {
			fmt.Fprint(tw, "\t\t")
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return traceDone()
}

// findTopology resolves an embedded dataset by name.
func findTopology(name string) (*topology.Graph, error) {
	for _, cand := range topology.All() {
		if cand.Name() == name {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

// parseFailSpec parses the -fail flag: a comma-separated list of
// scripted router crashes, each "router@start" (crash forever) or
// "router@start-end" (crash at start, recover at end), times in ms.
func parseFailSpec(spec string, n int) ([]fault.Event, error) {
	if spec == "" {
		return nil, nil
	}
	var events []fault.Event
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		at := strings.SplitN(part, "@", 2)
		if len(at) != 2 {
			return nil, fmt.Errorf("fail spec %q: want router@start[-end]", part)
		}
		router, err := strconv.Atoi(at[0])
		if err != nil {
			return nil, fmt.Errorf("fail spec %q: bad router id: %v", part, err)
		}
		if router < 0 || router >= n {
			return nil, fmt.Errorf("fail spec %q: unknown router %d (topology has %d)", part, router, n)
		}
		window := strings.SplitN(at[1], "-", 2)
		start, err := strconv.ParseFloat(window[0], 64)
		if err != nil {
			return nil, fmt.Errorf("fail spec %q: bad start time: %v", part, err)
		}
		if start < 0 {
			return nil, fmt.Errorf("fail spec %q: negative start time %v", part, start)
		}
		events = append(events, fault.Event{At: start, Kind: fault.RouterDown, Node: topology.NodeID(router)})
		if len(window) == 2 {
			end, err := strconv.ParseFloat(window[1], 64)
			if err != nil {
				return nil, fmt.Errorf("fail spec %q: bad end time: %v", part, err)
			}
			if end <= start {
				return nil, fmt.Errorf("fail spec %q: end %v not after start %v", part, end, start)
			}
			events = append(events, fault.Event{At: end, Kind: fault.RouterUp, Node: topology.NodeID(router)})
		}
	}
	return events, nil
}

// chaosOpts carries the chaos-scenario flags.
type chaosOpts struct {
	spec       string  // -chaos: file path or preset name ("" = off)
	checkpoint string  // -chaos-checkpoint
	staleness  float64 // -staleness
}

// load resolves the -chaos flag: an existing file is parsed as a
// scenario document, anything else is looked up as a preset name.
func (c chaosOpts) load() (*fault.ChaosScenario, error) {
	if c.spec == "" {
		return nil, nil
	}
	if _, err := os.Stat(c.spec); err == nil {
		return fault.LoadChaosFile(c.spec)
	}
	return fault.ChaosPreset(c.spec)
}

func run(topoName, policy string, catalog int64, s float64, capacity, x int64,
	requests, warmup int, seed int64, access, origin float64, gateway int, loss, retx float64,
	mtbf, mttr float64, faultSeed int64, failSpec string, chaosf chaosOpts, routing topology.Backend, shards int, obs obsFlags) error {
	g, err := findTopology(topoName)
	if err != nil {
		return err
	}
	pol, err := parsePolicy(policy)
	if err != nil {
		return err
	}
	chaos, err := chaosf.load()
	if err != nil {
		return err
	}
	if chaos == nil && (chaosf.checkpoint != "" || chaosf.staleness != 0) {
		return fmt.Errorf("-chaos-checkpoint and -staleness require -chaos")
	}
	switch {
	case mtbf < 0:
		return fmt.Errorf("-mtbf must be non-negative, got %v", mtbf)
	case mttr < 0:
		return fmt.Errorf("-mttr must be non-negative, got %v", mttr)
	case (mtbf > 0) != (mttr > 0):
		return fmt.Errorf("-mtbf and -mttr must be set together")
	}
	script, err := parseFailSpec(failSpec, g.N())
	if err != nil {
		return err
	}
	faultsOn := mtbf > 0 || len(script) > 0 || chaos != nil
	tr, traceDone, err := obs.openTracer()
	if err != nil {
		return err
	}
	sc := sim.Scenario{
		Topology:       g,
		CatalogSize:    catalog,
		ZipfS:          s,
		Capacity:       capacity,
		Coordinated:    x,
		Policy:         pol,
		Requests:       requests,
		Warmup:         warmup,
		Seed:           seed,
		AccessLatency:  access,
		OriginLatency:  origin,
		OriginGateway:  topology.NodeID(gateway),
		LossRate:       loss,
		FaultScript:    script,
		MTBF:           mtbf,
		MTTR:           mttr,
		FaultSeed:      faultSeed,
		Chaos:          chaos,
		StalenessBound: chaosf.staleness,
		CheckpointPath: chaosf.checkpoint,
		Routing:        routing,
		Tracer:         tr,
		EmitManifest:   obs.manifestPath != "" || obs.progress != nil || obs.telemetry,
		Shards:         shards,
	}
	ring := obs.openTimeline()
	if ring != nil {
		sc.Timeline = ring
		sc.EngineTelemetry = true
	}
	if loss > 0 || faultsOn {
		sc.RetxTimeout = retx
	}
	if pol != sim.PolicyCoordinated {
		sc.Coordinated = 0
	}
	// The shard count goes to stderr only, so stdout stays byte-identical
	// across shard settings (sharding never changes results). An explicit
	// -shards N the scenario cannot honor is loudly downgraded — the
	// serial fallback is correct but the operator asked for parallelism
	// they are not getting.
	if n, reason := sim.ResolveShardsReason(sc); n > 1 {
		fmt.Fprintf(os.Stderr, "ccnsim: running on %d event-loop shards\n", n)
	} else if reason != "" {
		fmt.Fprintf(os.Stderr, "ccnsim: warning: -shards %d falls back to the serial engine (%s)\n", sc.Shards, reason)
	}
	obs.simStarted()
	res, err := sim.Run(sc)
	if err != nil {
		return err
	}
	obs.simFinished(&res)
	if err := traceDone(); err != nil {
		return err
	}
	if err := obs.writeManifest(res.Manifest); err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "topology\t%s (n=%d)\n", g.Name(), g.N())
	fmt.Fprintf(tw, "policy\t%s\n", res.Policy)
	fmt.Fprintf(tw, "measured requests\t%d\n", res.Requests)
	fmt.Fprintf(tw, "origin load\t%.4f\n", res.OriginLoad)
	fmt.Fprintf(tw, "local hit ratio\t%.4f\n", res.LocalHit)
	fmt.Fprintf(tw, "peer hit ratio\t%.4f\n", res.PeerHit)
	fmt.Fprintf(tw, "mean latency (ms)\t%.2f\n", res.MeanLatency)
	fmt.Fprintf(tw, "mean hop count\t%.3f\n", res.MeanHops)
	fmt.Fprintf(tw, "interest/data transmissions\t%d / %d\n",
		res.InterestTransmissions, res.DataTransmissions)
	if loss > 0 {
		fmt.Fprintf(tw, "drops (interest/data)\t%d / %d\n", res.DroppedInterests, res.DroppedData)
		fmt.Fprintf(tw, "retransmissions\t%d\n", res.Retransmissions)
		fmt.Fprintf(tw, "latency p50/p95/p99 (ms)\t%.1f / %.1f / %.1f\n", res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
	if pol == sim.PolicyCoordinated {
		fmt.Fprintf(tw, "coordination messages\t%d\n", res.CoordMessages)
		fmt.Fprintf(tw, "coordination convergence (ms)\t%.1f\n", res.CoordConvergence)
	}
	if faultsOn {
		fmt.Fprintf(tw, "availability\t%.4f (%d failed)\n", res.Availability, res.FailedRequests)
		fmt.Fprintf(tw, "fault drops / expired interests\t%d / %d\n", res.FaultDrops, res.ExpiredInterests)
		fmt.Fprintf(tw, "route recomputes\t%d\n", res.RouteRecomputes)
		fmt.Fprintf(tw, "router downtime (ms)\t%.1f\n", res.RouterDowntime)
		fmt.Fprintf(tw, "origin load outage / steady\t%.4f / %.4f\n", res.OutageOriginLoad, res.SteadyOriginLoad)
		if pol == sim.PolicyCoordinated {
			fmt.Fprintf(tw, "heartbeat / repair messages\t%d / %d\n", res.HeartbeatMessages, res.RepairMessages)
			fmt.Fprintf(tw, "mean time to repair (ms)\t%.1f\n", res.MeanTimeToRepair)
			for _, rep := range res.Repairs {
				fmt.Fprintf(tw, "repair\trouter %d crashed %.1f detected %.1f moved %d contents\n",
					rep.Router, rep.CrashedAt, rep.DetectedAt, rep.Moved)
			}
		}
	}
	if chaos != nil {
		fmt.Fprintf(tw, "chaos scenario\t%s\n", chaos.Name)
		fmt.Fprintf(tw, "coordinator outages / downtime (ms)\t%d / %.1f\n", res.CoordOutages, res.CoordDowntime)
		fmt.Fprintf(tw, "degraded time (ms)\t%.1f\n", res.DegradedTime)
		fmt.Fprintf(tw, "degraded requests / overlay serves\t%d / %d\n", res.DegradedRequests, res.DegradedServes)
		if res.DegradedRequests > 0 {
			fmt.Fprintf(tw, "origin load while degraded\t%.4f\n", res.DegradedOriginLoad)
		}
		fmt.Fprintf(tw, "stale-placement forwards\t%d\n", res.StalePlacementHits)
		fmt.Fprintf(tw, "reconverge moves / mean TTR (ms)\t%d / %.1f\n", res.ReconvergeMoves, res.MeanTimeToReconverge)
	}
	if ring != nil {
		for _, rec := range ring.Snapshot().Records {
			fmt.Fprintf(tw, "timeline epoch %d\t%d msgs (bound %d), churn %d, level %.3f\n",
				rec.Epoch, rec.Messages, rec.BoundMessages, rec.Churn, rec.Level)
		}
		if res.Manifest != nil && res.Manifest.Engine.Shards > 1 {
			eng := res.Manifest.Engine
			fmt.Fprintf(tw, "engine\t%d shards, %d windows, %d cross-shard events\n",
				eng.Shards, eng.Windows, eng.CrossShardEvents)
		}
	}

	// Analytical prediction for the provisioned policies.
	if pol == sim.PolicyCoordinated || pol == sim.PolicyNonCoordinated {
		cfg := model.Config{
			S: s, N: float64(catalog), C: float64(capacity), Routers: g.N(),
			Lat: model.Latency{D0: 1, D1: 2, D2: 3}, Alpha: 1,
		}
		d, err := model.NewDiscrete(cfg)
		if err != nil {
			return err
		}
		xs := sc.Coordinated
		local, peer, originLoad := d.HitRatios(xs)
		fmt.Fprintf(tw, "model origin load\t%.4f\n", originLoad)
		fmt.Fprintf(tw, "model local/peer (rank bands)\t%.4f / %.4f\n", local, peer)
	}
	return tw.Flush()
}

// parseShards parses a -shards flag value: "auto" (0 — the scenario's
// auto rule decides) or an explicit positive shard count.
func parseShards(s string) (int, error) {
	if s == "auto" {
		return 0, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf(`-shards must be "auto" or a positive integer, got %q`, s)
	}
	return n, nil
}

func parsePolicy(s string) (sim.Policy, error) {
	switch s {
	case "non-coordinated", "noncoordinated", "nc":
		return sim.PolicyNonCoordinated, nil
	case "coordinated", "coord":
		return sim.PolicyCoordinated, nil
	case "lru":
		return sim.PolicyLRU, nil
	case "lfu":
		return sim.PolicyLFU, nil
	case "slru":
		return sim.PolicySLRU, nil
	case "2q", "twoq":
		return sim.PolicyTwoQ, nil
	case "probcache", "prob":
		return sim.PolicyProbCache, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}
