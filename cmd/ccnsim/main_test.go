package main

import "testing"

func TestParsePolicy(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"coordinated", "coordinated", false},
		{"coord", "coordinated", false},
		{"non-coordinated", "non-coordinated", false},
		{"nc", "non-coordinated", false},
		{"lru", "lru", false},
		{"lfu", "lfu", false},
		{"bogus", "", true},
	}
	for _, tt := range tests {
		got, err := parsePolicy(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parsePolicy(%q) error = %v", tt.in, err)
			continue
		}
		if err == nil && got.String() != tt.want {
			t.Errorf("parsePolicy(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestFindTopology(t *testing.T) {
	for _, name := range []string{"Abilene", "CERNET", "GEANT", "US-A"} {
		g, err := findTopology(name)
		if err != nil || g.Name() != name {
			t.Errorf("findTopology(%q) = %v, %v", name, g, err)
		}
	}
	if _, err := findTopology("nope"); err == nil {
		t.Error("unknown topology should fail")
	}
}
