package main

import (
	"os"
	"path/filepath"
	"testing"

	"ccncoord/internal/topology"
)

func TestParsePolicy(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"coordinated", "coordinated", false},
		{"coord", "coordinated", false},
		{"non-coordinated", "non-coordinated", false},
		{"nc", "non-coordinated", false},
		{"lru", "lru", false},
		{"lfu", "lfu", false},
		{"bogus", "", true},
	}
	for _, tt := range tests {
		got, err := parsePolicy(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("parsePolicy(%q) error = %v", tt.in, err)
			continue
		}
		if err == nil && got.String() != tt.want {
			t.Errorf("parsePolicy(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseFailSpec(t *testing.T) {
	const n = 10
	valid := []struct {
		in   string
		want int // events
	}{
		{"", 0},
		{"3@500", 1},
		{"3@500-2000", 2},
		{"3@500-2000, 7@100", 3},
	}
	for _, tt := range valid {
		events, err := parseFailSpec(tt.in, n)
		if err != nil {
			t.Errorf("parseFailSpec(%q) error: %v", tt.in, err)
			continue
		}
		if len(events) != tt.want {
			t.Errorf("parseFailSpec(%q) = %d events, want %d", tt.in, len(events), tt.want)
		}
	}
	invalid := []string{
		"3",          // missing @start
		"x@500",      // bad router id
		"12@500",     // unknown router
		"-1@500",     // negative router
		"3@-5",       // negative start
		"3@500-400",  // end before start
		"3@500-500",  // empty window
		"3@500-oops", // bad end time
	}
	for _, in := range invalid {
		if _, err := parseFailSpec(in, n); err == nil {
			t.Errorf("parseFailSpec(%q) passed, want error", in)
		}
	}
}

func TestRunRejectsBadFaultConfig(t *testing.T) {
	// run validates the fault flags before simulating; every case here
	// must error out early.
	cases := []struct {
		name       string
		mtbf, mttr float64
		fail       string
	}{
		{"negative mtbf", -1, 100, ""},
		{"negative mttr", 100, -1, ""},
		{"mtbf without mttr", 100, 0, ""},
		{"mttr without mtbf", 0, 100, ""},
		{"fail on unknown node", 0, 0, "999@100"},
		{"malformed fail spec", 0, 0, "1:100"},
	}
	for _, tc := range cases {
		err := run("Abilene", "coordinated", 1000, 0.8, 50, 25, 10, 0, 1, 5, 60, -1, 0, 300,
			tc.mtbf, tc.mttr, 1, tc.fail, chaosOpts{}, topology.BackendAuto, 0, obsFlags{})
		if err == nil {
			t.Errorf("%s: run accepted the config, want error", tc.name)
		}
	}
}

func TestFindTopology(t *testing.T) {
	for _, name := range []string{"Abilene", "CERNET", "GEANT", "US-A"} {
		g, err := findTopology(name)
		if err != nil || g.Name() != name {
			t.Errorf("findTopology(%q) = %v, %v", name, g, err)
		}
	}
	if _, err := findTopology("nope"); err == nil {
		t.Error("unknown topology should fail")
	}
}

func TestChaosOptsLoad(t *testing.T) {
	// Empty spec: chaos off.
	if c, err := (chaosOpts{}).load(); err != nil || c != nil {
		t.Errorf("empty spec: %v, %v; want nil, nil", c, err)
	}
	// A preset name resolves.
	c, err := (chaosOpts{spec: "coord-crash"}).load()
	if err != nil || c == nil || c.Name != "coord-crash" {
		t.Errorf("preset: %v, %v", c, err)
	}
	// An unknown name fails with the preset list in the message.
	if _, err := (chaosOpts{spec: "no-such-preset"}).load(); err == nil {
		t.Error("unknown preset accepted")
	}
	// An existing file is parsed as a scenario document.
	dir := t.TempDir()
	path := filepath.Join(dir, "my.json")
	doc := `{"name": "mine", "coordinator": [{"down": 100, "up": 200}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err = (chaosOpts{spec: path}).load()
	if err != nil || c == nil || c.Name != "mine" {
		t.Errorf("file: %v, %v", c, err)
	}
	// An existing but invalid file fails rather than falling back to
	// preset lookup.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": "x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := (chaosOpts{spec: bad}).load(); err == nil {
		t.Error("invalid scenario file accepted")
	}
}

func TestRunRejectsChaosFlagMisuse(t *testing.T) {
	cases := []struct {
		name   string
		chaosf chaosOpts
	}{
		{"checkpoint without chaos", chaosOpts{checkpoint: "x.json"}},
		{"staleness without chaos", chaosOpts{staleness: 100}},
		{"unknown chaos spec", chaosOpts{spec: "definitely-not-a-preset"}},
	}
	for _, tc := range cases {
		err := run("Abilene", "coordinated", 1000, 0.8, 50, 25, 10, 0, 1, 5, 60, -1, 0, 300,
			0, 0, 1, "", tc.chaosf, topology.BackendAuto, 0, obsFlags{})
		if err == nil {
			t.Errorf("%s: run accepted the config, want error", tc.name)
		}
	}
}
