// Command ccntopo inspects the evaluation topologies: it reproduces the
// paper's Tables II and III from the embedded datasets, can export any
// topology as Graphviz DOT (the paper's Figure 3 rendering), and
// generates large hierarchical AS×POP graphs for the scalable-routing
// experiments.
//
// Usage:
//
//	ccntopo [-dot NAME] [-csv]
//	ccntopo -gen hier -levels 8x16x25 -lat 20,5,1 [-red 0,1,1] [-seed 1] [-format stats|dot|json]
//
// Without flags it prints Tables II and III. With -dot it writes the
// named topology (Abilene, CERNET, GEANT, US-A) as DOT to stdout. With
// -gen hier it deterministically expands the level spec (per-level
// fanout × mean latency × redundancy) into a hierarchical topology and
// prints its stats — or dumps it as DOT/JSON — without running a sim.
package main

import (
	"flag"
	"fmt"
	"os"

	"ccncoord/internal/experiments"
	"ccncoord/internal/topology"
)

func main() {
	dot := flag.String("dot", "", "write the named topology (Abilene, CERNET, GEANT, US-A) as Graphviz DOT to stdout")
	jsonName := flag.String("json", "", "write the named topology as JSON to stdout (template for custom networks)")
	inspect := flag.String("topofile", "", "extract Table III parameters from a custom JSON topology file")
	csvOut := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	gen := flag.String("gen", "", "generate a topology instead of inspecting datasets; only \"hier\" is supported")
	levels := flag.String("levels", "8x16x25", "hier: per-level fanouts, x- or comma-separated (top level is an absolute count)")
	lat := flag.String("lat", "20,5,1", "hier: per-level mean link latency (ms), comma-separated; one value applies to all levels")
	red := flag.String("red", "", "hier: per-level redundancy (extra links per node), comma-separated; empty = 0")
	seed := flag.Int64("seed", 1, "hier: generator seed (same spec + seed => identical graph)")
	format := flag.String("format", "stats", "hier output: stats, dot, or json")
	flag.Parse()

	var err error
	if *gen != "" {
		err = runGen(*gen, *levels, *lat, *red, *seed, *format)
	} else {
		err = run(*dot, *jsonName, *inspect, *csvOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccntopo:", err)
		os.Exit(1)
	}
}

// runGen handles -gen: build the generated topology and emit it in the
// requested format.
func runGen(gen, levels, lat, red string, seed int64, format string) error {
	if gen != "hier" {
		return fmt.Errorf("unknown generator %q (only \"hier\" is supported)", gen)
	}
	spec, err := topology.ParseHierSpec(levels, lat, red)
	if err != nil {
		return err
	}
	g, err := topology.Hierarchical("", spec, seed)
	if err != nil {
		return err
	}
	switch format {
	case "stats":
		fmt.Printf("name\t%s\n", g.Name())
		fmt.Printf("levels\t%d\n", len(spec))
		fmt.Printf("nodes\t%d\n", g.N())
		fmt.Printf("links\t%d (directed %d)\n", g.Edges(), g.DirectedEdgeCount())
		fmt.Printf("mean degree\t%.2f\n", float64(g.DirectedEdgeCount())/float64(g.N()))
		fmt.Printf("connected\t%v\n", g.Connected())
		fmt.Printf("diameter (double-sweep lower bound, ms)\t%.2f\n", g.DiameterEstimate())
		return nil
	case "dot":
		return g.WriteDOT(os.Stdout)
	case "json":
		return g.WriteJSON(os.Stdout)
	default:
		return fmt.Errorf("unknown -format %q (want stats, dot, or json)", format)
	}
}

// lookup resolves an embedded dataset by name.
func lookup(name string) (*topology.Graph, error) {
	for _, g := range topology.All() {
		if g.Name() == name {
			return g, nil
		}
	}
	return nil, fmt.Errorf("unknown topology %q (want Abilene, CERNET, GEANT, or US-A)", name)
}

func run(dot, jsonName, inspect string, csvOut bool) error {
	switch {
	case dot != "":
		g, err := lookup(dot)
		if err != nil {
			return err
		}
		return g.WriteDOT(os.Stdout)
	case jsonName != "":
		g, err := lookup(jsonName)
		if err != nil {
			return err
		}
		return g.WriteJSON(os.Stdout)
	case inspect != "":
		f, err := os.Open(inspect)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err := topology.ReadJSON(f)
		if err != nil {
			return err
		}
		p, err := topology.ExtractParams(g)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s n=%d  w=%.2fms  d1-d0=%.2fms  d1-d0=%.4f hops\n",
			p.Name, p.N, p.UnitCost, p.TierGapMs, p.TierGapHops)
		return nil
	}

	t2 := experiments.TableII()
	t3, err := experiments.TableIII()
	if err != nil {
		return err
	}
	write := experiments.WriteTableText
	if csvOut {
		write = experiments.WriteTableCSV
	}
	if err := write(os.Stdout, t2); err != nil {
		return err
	}
	fmt.Println()
	return write(os.Stdout, t3)
}
