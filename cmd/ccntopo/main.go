// Command ccntopo inspects the evaluation topologies: it reproduces the
// paper's Tables II and III from the embedded datasets and can export
// any topology as Graphviz DOT (the paper's Figure 3 rendering).
//
// Usage:
//
//	ccntopo [-dot NAME] [-csv]
//
// Without flags it prints Tables II and III. With -dot it writes the
// named topology (Abilene, CERNET, GEANT, US-A) as DOT to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"ccncoord/internal/experiments"
	"ccncoord/internal/topology"
)

func main() {
	dot := flag.String("dot", "", "write the named topology (Abilene, CERNET, GEANT, US-A) as Graphviz DOT to stdout")
	jsonName := flag.String("json", "", "write the named topology as JSON to stdout (template for custom networks)")
	inspect := flag.String("topofile", "", "extract Table III parameters from a custom JSON topology file")
	csvOut := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	flag.Parse()

	if err := run(*dot, *jsonName, *inspect, *csvOut); err != nil {
		fmt.Fprintln(os.Stderr, "ccntopo:", err)
		os.Exit(1)
	}
}

// lookup resolves an embedded dataset by name.
func lookup(name string) (*topology.Graph, error) {
	for _, g := range topology.All() {
		if g.Name() == name {
			return g, nil
		}
	}
	return nil, fmt.Errorf("unknown topology %q (want Abilene, CERNET, GEANT, or US-A)", name)
}

func run(dot, jsonName, inspect string, csvOut bool) error {
	switch {
	case dot != "":
		g, err := lookup(dot)
		if err != nil {
			return err
		}
		return g.WriteDOT(os.Stdout)
	case jsonName != "":
		g, err := lookup(jsonName)
		if err != nil {
			return err
		}
		return g.WriteJSON(os.Stdout)
	case inspect != "":
		f, err := os.Open(inspect)
		if err != nil {
			return err
		}
		defer f.Close()
		g, err := topology.ReadJSON(f)
		if err != nil {
			return err
		}
		p, err := topology.ExtractParams(g)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s n=%d  w=%.2fms  d1-d0=%.2fms  d1-d0=%.4f hops\n",
			p.Name, p.N, p.UnitCost, p.TierGapMs, p.TierGapHops)
		return nil
	}

	t2 := experiments.TableII()
	t3, err := experiments.TableIII()
	if err != nil {
		return err
	}
	write := experiments.WriteTableText
	if csvOut {
		write = experiments.WriteTableCSV
	}
	if err := write(os.Stdout, t2); err != nil {
		return err
	}
	fmt.Println()
	return write(os.Stdout, t3)
}
