package main

import "testing"

func TestRunGen(t *testing.T) {
	// Valid spec in every output format (stats/dot/json write to
	// stdout; here we only assert they succeed).
	for _, format := range []string{"stats", "dot", "json"} {
		if err := runGen("hier", "4x3", "10,2", "1", 1, format); err != nil {
			t.Errorf("runGen(%s): %v", format, err)
		}
	}
	bad := []struct {
		gen, levels, lat, red, format string
	}{
		{"ring", "4x3", "10", "", "stats"},  // unknown generator
		{"hier", "", "10", "", "stats"},     // empty spec
		{"hier", "4x3", "bad", "", "stats"}, // bad latency
		{"hier", "4x3", "10", "", "yaml"},   // unknown format
		{"hier", "1", "10", "", "stats"},    // expands to one node
	}
	for _, tc := range bad {
		if err := runGen(tc.gen, tc.levels, tc.lat, tc.red, 1, tc.format); err == nil {
			t.Errorf("runGen(%+v) should fail", tc)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, name := range []string{"Abilene", "CERNET", "GEANT", "US-A"} {
		g, err := lookup(name)
		if err != nil || g.Name() != name {
			t.Errorf("lookup(%q) = %v, %v", name, g, err)
		}
	}
	if _, err := lookup("missing"); err == nil {
		t.Error("unknown topology should fail")
	}
}
