package main

import "testing"

func TestLookup(t *testing.T) {
	for _, name := range []string{"Abilene", "CERNET", "GEANT", "US-A"} {
		g, err := lookup(name)
		if err != nil || g.Name() != name {
			t.Errorf("lookup(%q) = %v, %v", name, g, err)
		}
	}
	if _, err := lookup("missing"); err == nil {
		t.Error("unknown topology should fail")
	}
}
