package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeJSON drops one JSON document into a temp file.
func writeJSON(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDiffBenchBaselines(t *testing.T) {
	dir := t.TempDir()
	old := writeJSON(t, dir, "old.json", `{
		"date": "2026-08-05",
		"benchmarks": [
			{"name": "BenchmarkTableII-8", "ns_per_op": 30000, "allocs_per_op": 10},
			{"name": "BenchmarkGone-8", "ns_per_op": 5}
		]
	}`)
	new := writeJSON(t, dir, "new.json", `{
		"date": "2026-09-01",
		"benchmarks": [
			{"name": "BenchmarkTableII-8", "ns_per_op": 33000, "allocs_per_op": 10},
			{"name": "BenchmarkNew-8", "ns_per_op": 7}
		]
	}`)
	var buf bytes.Buffer
	if err := runDiff(&buf, old, new); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Benchmarks align by name, not position: the shared one diffs with
	// a relative change, the renamed ones show as removed/added, and the
	// unchanged allocs leaf is silent.
	for _, want := range []string{
		"benchmarks[BenchmarkTableII-8].ns_per_op",
		"+10.0%",
		"- benchmarks[BenchmarkGone-8].ns_per_op",
		"+ benchmarks[BenchmarkNew-8].ns_per_op",
		"~ date",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "allocs_per_op") {
		t.Errorf("unchanged leaf reported:\n%s", out)
	}
}

func TestRunDiffIdenticalFiles(t *testing.T) {
	dir := t.TempDir()
	body := `{"summary": {"origin_load": 0.25}, "nodes": [{"router": 0, "cs_hits": 4}]}`
	a := writeJSON(t, dir, "a.json", body)
	b := writeJSON(t, dir, "b.json", body)
	var buf bytes.Buffer
	if err := runDiff(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "0 of ") {
		t.Errorf("identical files reported differences:\n%s", buf.String())
	}
}

func TestRunDiffRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := writeJSON(t, dir, "bad.json", "{not json")
	good := writeJSON(t, dir, "good.json", "{}")
	if err := runDiff(&bytes.Buffer{}, bad, good); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := runDiff(&bytes.Buffer{}, good, filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
