package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeJSON drops one JSON document into a temp file.
func writeJSON(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDiffBenchBaselines(t *testing.T) {
	dir := t.TempDir()
	old := writeJSON(t, dir, "old.json", `{
		"date": "2026-08-05",
		"benchmarks": [
			{"name": "BenchmarkTableII-8", "ns_per_op": 30000, "allocs_per_op": 10},
			{"name": "BenchmarkGone-8", "ns_per_op": 5}
		]
	}`)
	new := writeJSON(t, dir, "new.json", `{
		"date": "2026-09-01",
		"benchmarks": [
			{"name": "BenchmarkTableII-8", "ns_per_op": 33000, "allocs_per_op": 10},
			{"name": "BenchmarkNew-8", "ns_per_op": 7}
		]
	}`)
	var buf bytes.Buffer
	if err := runDiff(&buf, old, new, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Benchmarks align by name, not position: the shared one diffs with
	// a relative change, the renamed ones show as removed/added, and the
	// unchanged allocs leaf is silent.
	for _, want := range []string{
		"benchmarks[BenchmarkTableII-8].ns_per_op",
		"+10.0%",
		"- benchmarks[BenchmarkGone-8].ns_per_op",
		"+ benchmarks[BenchmarkNew-8].ns_per_op",
		"~ date",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "allocs_per_op") {
		t.Errorf("unchanged leaf reported:\n%s", out)
	}
}

func TestRunDiffIdenticalFiles(t *testing.T) {
	dir := t.TempDir()
	body := `{"summary": {"origin_load": 0.25}, "nodes": [{"router": 0, "cs_hits": 4}]}`
	a := writeJSON(t, dir, "a.json", body)
	b := writeJSON(t, dir, "b.json", body)
	var buf bytes.Buffer
	if err := runDiff(&buf, a, b, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "0 of ") {
		t.Errorf("identical files reported differences:\n%s", buf.String())
	}
}

func TestRunDiffTolerance(t *testing.T) {
	dir := t.TempDir()
	old := writeJSON(t, dir, "old.json", `{"a": 100, "b": 100, "c": 0, "d": "x"}`)
	new := writeJSON(t, dir, "new.json", `{"a": 104, "b": 110, "c": 0.001, "d": "y"}`)

	// Exact mode reports every numeric change.
	var exact bytes.Buffer
	if err := runDiff(&exact, old, new, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exact.String(), "4 of 4 leaves differ") {
		t.Errorf("exact diff summary wrong:\n%s", exact.String())
	}

	// 5% tolerance: a (+4%) is absorbed, b (+10%) and c (zero vs
	// non-zero: |a-b| > tol*max) still differ, and non-numeric leaves
	// are never tolerance-matched.
	var tol bytes.Buffer
	if err := runDiff(&tol, old, new, 0.05); err != nil {
		t.Fatal(err)
	}
	out := tol.String()
	if strings.Contains(out, "~ a\t") || strings.Contains(out, "~ a ") {
		t.Errorf("4%% change reported under -tol 0.05:\n%s", out)
	}
	for _, want := range []string{"~ b", "~ c", "~ d"} {
		if !strings.Contains(out, want) {
			t.Errorf("tolerant diff lacks %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "3 of 4 leaves differ") {
		t.Errorf("tolerant diff summary wrong:\n%s", out)
	}
}

func TestRunDiffIgnoresWallClock(t *testing.T) {
	dir := t.TempDir()
	// Two telemetry manifests from the "same" run: every deterministic
	// leaf matches, only the wall-clock leaves moved. The diff must call
	// them identical and keep wall_ms keys out of the leaf count.
	old := writeJSON(t, dir, "old.json", `{
		"timeline": [{"epoch": 1, "messages": 80, "wall_ms": 3.2}],
		"engine": {"shard_stats": [
			{"shard": 0, "processed": 500, "busy_wall_ms": 12.5, "barrier_wait_wall_ms": 1.5}
		]}
	}`)
	new := writeJSON(t, dir, "new.json", `{
		"timeline": [{"epoch": 1, "messages": 80, "wall_ms": 9.7}],
		"engine": {"shard_stats": [
			{"shard": 0, "processed": 500, "busy_wall_ms": 3.1, "barrier_wait_wall_ms": 0.2}
		]}
	}`)
	var buf bytes.Buffer
	if err := runDiff(&buf, old, new, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "wall_ms") {
		t.Errorf("wall-clock leaf reported:\n%s", out)
	}
	if !strings.HasPrefix(out, "0 of 4 leaves differ") {
		t.Errorf("runs differing only in wall clock not treated as identical:\n%s", out)
	}

	// A genuine regression next to wall-clock noise still surfaces.
	changed := writeJSON(t, dir, "changed.json", `{
		"timeline": [{"epoch": 1, "messages": 96, "wall_ms": 1.1}],
		"engine": {"shard_stats": [
			{"shard": 0, "processed": 500, "busy_wall_ms": 2.0, "barrier_wait_wall_ms": 0.1}
		]}
	}`)
	buf.Reset()
	if err := runDiff(&buf, old, changed, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "messages") || !strings.Contains(buf.String(), "1 of 4 leaves differ") {
		t.Errorf("real change masked by wall-clock rule:\n%s", buf.String())
	}
}

func TestRunDiffRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := writeJSON(t, dir, "bad.json", "{not json")
	good := writeJSON(t, dir, "good.json", "{}")
	if err := runDiff(&bytes.Buffer{}, bad, good, 0); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := runDiff(&bytes.Buffer{}, good, filepath.Join(dir, "missing.json"), 0); err == nil {
		t.Error("missing file accepted")
	}
}
