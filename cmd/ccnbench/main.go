// Command ccnbench runs the repository's benchmark suite and records
// the results as a committed baseline file BENCH_<date>.json, so
// simulator and experiment-harness performance can be diffed across
// changes.
//
// Usage (from the module root):
//
//	ccnbench                          # full suite, BENCH_<today>.json
//	ccnbench -bench 'SimRun' -benchtime 5x
//	ccnbench -out results/ -date 2026-08-05
//	ccnbench -diff BENCH_2026-08-05.json BENCH_2026-09-01.json
//	ccnbench -diff old-manifest.json new-manifest.json
//
// The command shells out to `go test`, parses the benchmark output with
// internal/benchjson, and writes the JSON next to (or at) -out; the
// records carry ns/op, B/op and allocs/op per benchmark. The -diff mode
// compares any two JSON documents leaf by leaf — bench baselines align
// by benchmark name, and run/artifact manifests (ccnsim/ccnexp
// -manifest) diff the same way.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"ccncoord/internal/benchjson"
)

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark selector passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value (e.g. 1x, 5x, 2s)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "", "output directory or file; default BENCH_<date>.json in the current directory")
		date      = flag.String("date", "", "date stamp for the baseline, YYYY-MM-DD; default today")
		diff      = flag.Bool("diff", false, "diff two JSON files (bench baselines or manifests): ccnbench -diff old.json new.json")
		tol       = flag.Float64("tol", 0, "relative tolerance for -diff numeric leaves: 0.05 treats values within 5% as equal (default exact)")
	)
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "ccnbench: -diff needs exactly two files")
			os.Exit(1)
		}
		if *tol < 0 {
			fmt.Fprintln(os.Stderr, "ccnbench: -tol must be non-negative")
			os.Exit(1)
		}
		if err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *tol); err != nil {
			fmt.Fprintln(os.Stderr, "ccnbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*bench, *benchtime, *pkg, *out, *date); err != nil {
		fmt.Fprintln(os.Stderr, "ccnbench:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime, pkg, out, date string) error {
	if date == "" {
		date = time.Now().Format("2006-01-02")
	}
	path := fmt.Sprintf("BENCH_%s.json", date)
	if out != "" {
		if info, err := os.Stat(out); err == nil && info.IsDir() {
			path = filepath.Join(out, path)
		} else {
			path = out
		}
	}

	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem", "-benchtime", benchtime, pkg}
	fmt.Fprintln(os.Stderr, "ccnbench: go", argsString(args))
	cmd := exec.Command("go", args...)
	var outBuf bytes.Buffer
	cmd.Stdout = &outBuf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		// Surface the captured output: it usually holds the failure.
		os.Stderr.Write(outBuf.Bytes())
		return fmt.Errorf("go test: %w", err)
	}

	suite, err := benchjson.Parse(&outBuf)
	if err != nil {
		return err
	}
	if len(suite.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks matched -bench %q in %s", bench, pkg)
	}
	suite.Date = date

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := benchjson.Write(f, suite); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(suite.Benchmarks))
	for _, r := range suite.Benchmarks {
		fmt.Printf("  %-50s %14.0f ns/op %12.0f B/op %10.0f allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	return nil
}

// argsString joins args for the progress line.
func argsString(args []string) string {
	var buf bytes.Buffer
	for i, a := range args {
		if i > 0 {
			buf.WriteByte(' ')
		}
		buf.WriteString(a)
	}
	return buf.String()
}
