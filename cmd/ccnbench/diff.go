// The -diff mode: a structural numeric diff of two JSON documents. It
// is schema-agnostic — bench baselines (BENCH_<date>.json), run
// manifests (ccnsim -manifest), and artifact manifests (ccnexp
// -manifest) all flatten to dotted numeric leaves and diff the same
// way.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// isWallClock reports whether a flattened leaf carries wall-clock time.
// Telemetry manifests store every nondeterministic duration under a key
// ending in "wall_ms" (timeline wall_ms, shard busy_wall_ms,
// barrier_wait_wall_ms); those leaves vary run to run by construction,
// so the diff skips them entirely rather than reporting noise.
func isWallClock(key string) bool {
	return strings.HasSuffix(key, "wall_ms")
}

// flatten walks a decoded JSON value and collects every leaf under a
// dotted path. Array elements key by position, except arrays of objects
// carrying a "name" or "id" field, which key by that label — so two
// bench baselines align by benchmark name even when the suite order or
// length changed.
func flatten(prefix string, v any, out map[string]any) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, child, out)
		}
	case []any:
		for i, child := range x {
			label := fmt.Sprintf("[%d]", i)
			if m, ok := child.(map[string]any); ok {
				if name, ok := m["name"].(string); ok && name != "" {
					label = "[" + name + "]"
				} else if id, ok := m["id"].(string); ok && id != "" {
					label = "[" + id + "]"
				}
			}
			flatten(prefix+label, child, out)
		}
	default:
		out[prefix] = v
	}
}

// loadFlat reads one JSON file into its flattened leaf map.
func loadFlat(path string) (map[string]any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]any)
	flatten("", v, out)
	return out, nil
}

// runDiff prints the leaves that differ between two JSON files. Numeric
// leaves show old, new, and relative change; other leaves show their
// values; keys present on one side only are listed as added/removed.
// Equal files print a single summary line. tol is the relative
// tolerance under which two numeric leaves count as equal (0 = exact):
// noisy benchmark baselines diff cleanly with -tol 0.05 while
// deterministic manifests keep the exact default. Leaves whose key ends
// in "wall_ms" are wall-clock telemetry and excluded from the diff.
func runDiff(w io.Writer, oldPath, newPath string, tol float64) error {
	oldFlat, err := loadFlat(oldPath)
	if err != nil {
		return err
	}
	newFlat, err := loadFlat(newPath)
	if err != nil {
		return err
	}
	keys := make(map[string]bool, len(oldFlat)+len(newFlat))
	for k := range oldFlat {
		keys[k] = true
	}
	for k := range newFlat {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		if isWallClock(k) {
			continue
		}
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	changed := 0
	for _, k := range sorted {
		ov, oldOK := oldFlat[k]
		nv, newOK := newFlat[k]
		switch {
		case !oldOK:
			changed++
			fmt.Fprintf(tw, "+ %s\t\t%v\n", k, nv)
		case !newOK:
			changed++
			fmt.Fprintf(tw, "- %s\t%v\t\n", k, ov)
		default:
			on, oldNum := ov.(float64)
			nn, newNum := nv.(float64)
			if oldNum && newNum {
				if withinTol(on, nn, tol) {
					continue
				}
				changed++
				fmt.Fprintf(tw, "~ %s\t%v\t%v\t%s\n", k, on, nn, relChange(on, nn))
				continue
			}
			if ov != nv {
				changed++
				fmt.Fprintf(tw, "~ %s\t%v\t%v\n", k, ov, nv)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "%d of %d leaves differ (%s -> %s)\n", changed, len(sorted), oldPath, newPath)
	return nil
}

// withinTol reports whether two numeric leaves are equal under the
// relative tolerance: |a-b| <= tol*max(|a|,|b|). tol 0 is exact
// equality, so a zero leaf only ever matches another zero.
func withinTol(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// relChange formats the relative change from old to new.
func relChange(old, new float64) string {
	if old == 0 {
		return ""
	}
	pct := 100 * (new - old) / math.Abs(old)
	return fmt.Sprintf("%+.1f%%", pct)
}
