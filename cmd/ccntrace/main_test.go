package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ccncoord/internal/fault"
	"ccncoord/internal/sim"
	"ccncoord/internal/spans"
	"ccncoord/internal/topology"
	"ccncoord/internal/trace"
)

// writeTestTrace runs a small faulty scenario at stride 1 and writes
// the trace to dir, returning the path and the run result.
func writeTestTrace(t *testing.T, dir, name string) (string, sim.Result) {
	t.Helper()
	g := topology.New("mesh4")
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0)
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.MustAddEdge(topology.NodeID(a), topology.NodeID(b), 5)
		}
	}
	var buf bytes.Buffer
	tr, err := trace.New(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Scenario{
		Topology:    g,
		CatalogSize: 100,
		ZipfS:       0.8,
		Capacity:    10,
		Coordinated: 5,
		Policy:      sim.PolicyCoordinated,
		Requests:    500,
		Seed:        7,

		AccessLatency: 1,
		OriginLatency: 50,
		OriginGateway: 0,
		RetxTimeout:   150,

		HeartbeatInterval: 50,
		HeartbeatMisses:   2,
		FaultScript:       []fault.Event{{At: 100, Kind: fault.RouterDown, Node: 1}},

		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	var data []byte
	if strings.HasSuffix(name, ".gz") {
		var gz bytes.Buffer
		zw := gzip.NewWriter(&gz)
		if _, err := zw.Write(buf.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		data = gz.Bytes()
	} else {
		data = buf.Bytes()
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, res
}

func TestSummaryJSON(t *testing.T) {
	for _, name := range []string{"t.jsonl", "t.jsonl.gz"} {
		t.Run(name, func(t *testing.T) {
			path, res := writeTestTrace(t, t.TempDir(), name)
			var out bytes.Buffer
			if err := summaryCmd([]string{"-json", path}, &out); err != nil {
				t.Fatal(err)
			}
			var st summaryStats
			if err := json.Unmarshal(out.Bytes(), &st); err != nil {
				t.Fatalf("summary -json output is not JSON: %v\n%s", err, out.String())
			}
			if st.Spans != res.Requests {
				t.Errorf("summary reports %d spans, run measured %d requests", st.Spans, res.Requests)
			}
			if st.Incomplete != 0 || st.Truncated {
				t.Errorf("complete trace reported incomplete=%d truncated=%v", st.Incomplete, st.Truncated)
			}
			if st.MeanMs <= 0 || st.MaxMs < st.P99Ms || st.P99Ms < st.P50Ms {
				t.Errorf("implausible latency stats: %+v", st)
			}
			sum := st.MeanAccessMs + st.MeanPropagationMs + st.MeanRetxBackoffMs +
				st.MeanOriginSvcMs + st.MeanAggWaitMs
			if diff := sum - st.MeanMs; diff < -0.01 {
				t.Errorf("mean decomposition %v under-sums mean latency %v", sum, st.MeanMs)
			}
		})
	}
}

func TestSummaryText(t *testing.T) {
	path, _ := writeTestTrace(t, t.TempDir(), "t.jsonl")
	var out bytes.Buffer
	if err := summaryCmd([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"spans (complete)", "tier ", "latency mean"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary text missing %q:\n%s", want, out.String())
		}
	}
}

func TestSpansFilters(t *testing.T) {
	path, _ := writeTestTrace(t, t.TempDir(), "t.jsonl")
	decode := func(out *bytes.Buffer) []spans.Span {
		t.Helper()
		var list []spans.Span
		dec := json.NewDecoder(out)
		for dec.More() {
			var sp spans.Span
			if err := dec.Decode(&sp); err != nil {
				t.Fatal(err)
			}
			list = append(list, sp)
		}
		return list
	}

	var all bytes.Buffer
	if err := spansCmd([]string{path}, &all); err != nil {
		t.Fatal(err)
	}
	unfiltered := decode(&all)
	if len(unfiltered) == 0 {
		t.Fatal("no spans listed")
	}
	for i := range unfiltered {
		if len(unfiltered[i].Events) != 0 {
			t.Fatal("event lists included without -events")
		}
	}

	var byRouter bytes.Buffer
	if err := spansCmd([]string{"-router", "2", "-tier", "origin", path}, &byRouter); err != nil {
		t.Fatal(err)
	}
	filtered := decode(&byRouter)
	if len(filtered) == 0 || len(filtered) >= len(unfiltered) {
		t.Fatalf("filter kept %d of %d spans", len(filtered), len(unfiltered))
	}
	for i := range filtered {
		if filtered[i].Router != 2 || filtered[i].Tier != "origin" {
			t.Errorf("span %d escaped the filter: router %d tier %s",
				filtered[i].Req, filtered[i].Router, filtered[i].Tier)
		}
	}

	var windowed bytes.Buffer
	if err := spansCmd([]string{"-from", "100", "-to", "200", path}, &windowed); err != nil {
		t.Fatal(err)
	}
	for _, sp := range decode(&windowed) {
		if sp.End < 100 || sp.Start > 200 {
			t.Errorf("span %d [%v, %v] outside window [100, 200]", sp.Req, sp.Start, sp.End)
		}
	}

	var byKind bytes.Buffer
	if err := spansCmd([]string{"-kind", "drop", path}, &byKind); err != nil {
		t.Fatal(err)
	}
	dropped := decode(&byKind)
	if len(dropped) == 0 || len(dropped) >= len(unfiltered) {
		t.Fatalf("-kind drop kept %d of %d spans", len(dropped), len(unfiltered))
	}
	for i := range dropped {
		if dropped[i].Drops == 0 {
			t.Errorf("span %d has no drops but matched -kind drop", dropped[i].Req)
		}
	}

	var withEvents bytes.Buffer
	if err := spansCmd([]string{"-events", "-router", "2", path}, &withEvents); err != nil {
		t.Fatal(err)
	}
	evSpans := decode(&withEvents)
	if len(evSpans) == 0 || len(evSpans[0].Events) == 0 {
		t.Error("-events did not include event lists")
	}
}

func TestSlowOrdering(t *testing.T) {
	path, _ := writeTestTrace(t, t.TempDir(), "t.jsonl")
	var out bytes.Buffer
	if err := slowCmd([]string{"-top", "5", path}, &out); err != nil {
		t.Fatal(err)
	}
	var prev = -1.0
	n := 0
	dec := json.NewDecoder(&out)
	for dec.More() {
		var sp spans.Span
		if err := dec.Decode(&sp); err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && sp.TotalMs() > prev {
			t.Errorf("slow list not descending: %v after %v", sp.TotalMs(), prev)
		}
		prev = sp.TotalMs()
		n++
	}
	if n != 5 {
		t.Errorf("listed %d spans, want 5", n)
	}
}

func TestExportChrome(t *testing.T) {
	path, res := writeTestTrace(t, t.TempDir(), "t.jsonl.gz")
	var out bytes.Buffer
	if err := exportCmd([]string{"-chrome", path}, &out); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", doc.DisplayTimeUnit)
	}
	var slices, instants, controls int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("slice %q has ts %v dur %v", ev.Name, ev.Ts, ev.Dur)
			}
		case "i":
			instants++
			if ev.Cat == "control" {
				controls++
				if ev.S != "g" {
					t.Errorf("control instant %q has scope %q, want g", ev.Name, ev.S)
				}
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if slices != res.Requests {
		t.Errorf("%d slices, want one per measured request (%d)", slices, res.Requests)
	}
	if controls == 0 {
		t.Error("no control-plane instants despite an injected fault")
	}

	// Microsecond scaling: the earliest slice starts at issue time, in
	// virtual ms, scaled by 1000.
	set, err := spans.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	wantTs := set.Spans[0].Start * 1000
	var got = -1.0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			got = ev.Ts
			break
		}
	}
	if got != wantTs {
		t.Errorf("first slice ts %v, want %v (µs)", got, wantTs)
	}
}

func TestExportRequiresFormat(t *testing.T) {
	path, _ := writeTestTrace(t, t.TempDir(), "t.jsonl")
	if err := exportCmd([]string{path}, new(bytes.Buffer)); err == nil {
		t.Error("export without -chrome succeeded")
	}
}

// TestRejectsNonTraceInput: every subcommand must fail loudly — not
// print an empty report and exit 0 — when the input decodes no events.
func TestRejectsNonTraceInput(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, content, wantMsg string
	}{
		{"empty", "", "empty"},
		{"garbage", "this is not a trace\nneither is this\n", "malformed"},
		{"truncated-fragment", `{"t":1,"kind":"re`, "truncated"},
		{"wrong-json", "{\"foo\": 1}\n{\"bar\": 2}\n", "no trace events"},
	}
	cmds := []struct {
		name string
		run  func(args []string, out *bytes.Buffer) error
	}{
		{"summary", func(a []string, o *bytes.Buffer) error { return summaryCmd(a, o) }},
		{"spans", func(a []string, o *bytes.Buffer) error { return spansCmd(a, o) }},
		{"slow", func(a []string, o *bytes.Buffer) error { return slowCmd(a, o) }},
		{"export", func(a []string, o *bytes.Buffer) error {
			return exportCmd(append([]string{"-chrome"}, a...), o)
		}},
	}
	for _, tc := range cases {
		path := filepath.Join(dir, tc.name)
		if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
			t.Fatal(err)
		}
		for _, cmd := range cmds {
			var out bytes.Buffer
			err := cmd.run([]string{path}, &out)
			if err == nil {
				t.Errorf("%s on %s input: want error, got nil (output %q)", cmd.name, tc.name, out.String())
				continue
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("%s on %s input: error %q does not mention %q", cmd.name, tc.name, err, tc.wantMsg)
			}
		}
	}
}

// A trace cut mid-line after valid events still reports — truncation is
// flagged, not fatal, as long as something decoded.
func TestTruncatedTailStillReports(t *testing.T) {
	path, _ := writeTestTrace(t, t.TempDir(), "t.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.jsonl")
	if err := os.WriteFile(cut, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := summaryCmd([]string{"-json", cut, "-json"}[:2], &out); err != nil {
		t.Fatalf("summary on truncated-but-nonempty trace: %v", err)
	}
	var st summaryStats
	if err := json.Unmarshal(out.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Truncated {
		t.Error("truncated trace not flagged as truncated")
	}
}
