// Command ccntrace analyzes JSONL event traces written by ccnsim and
// ccnexp (-trace): it reconstructs per-request spans with their latency
// decomposition (internal/spans) and reports on them. Plain and
// gzip-compressed traces are both read transparently.
//
// Usage:
//
//	ccntrace summary trace.jsonl          # aggregate span statistics
//	ccntrace summary -json trace.jsonl.gz
//	ccntrace spans -router 3 -tier origin trace.jsonl   # filtered span list (JSONL)
//	ccntrace spans -from 500 -to 1500 -content 42 trace.jsonl
//	ccntrace slow -top 10 trace.jsonl     # slowest requests, worst first
//	ccntrace export -chrome trace.jsonl > trace.chrome.json
//
// The Chrome export loads directly into Perfetto (ui.perfetto.dev) or
// chrome://tracing: each request becomes a complete slice on its
// first-hop router's track, with instant markers for retries, drops
// and control-plane events.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"

	"ccncoord/internal/spans"
	"ccncoord/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "summary":
		err = summaryCmd(os.Args[2:], os.Stdout)
	case "spans":
		err = spansCmd(os.Args[2:], os.Stdout)
	case "slow":
		err = slowCmd(os.Args[2:], os.Stdout)
	case "export":
		err = exportCmd(os.Args[2:], os.Stdout)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "ccntrace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccntrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ccntrace <command> [flags] <trace-file>

commands:
  summary   aggregate span statistics (counts, tiers, latency decomposition)
  spans     list reconstructed spans as JSONL, with filters
  slow      list the slowest requests, worst first
  export    convert the trace for external viewers (-chrome for Perfetto)

Trace files are JSONL as written by ccnsim/ccnexp -trace; a .gz suffix
(or gzip content under any name) is decompressed transparently.`)
}

// traceArg extracts the single positional trace-file argument.
func traceArg(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("want exactly one trace file argument, got %d", fs.NArg())
	}
	return fs.Arg(0), nil
}

// loadSet loads a trace file and rejects inputs that decoded no events
// at all — an empty file, a truncated fragment, or a file that is not a
// trace would otherwise produce a silently empty report and exit 0.
func loadSet(path string) (*spans.Set, error) {
	set, err := spans.Load(path)
	if err != nil {
		return nil, err
	}
	events := 0
	for kind, n := range set.Kinds {
		if kind != "" {
			events += n
		}
	}
	if events == 0 {
		return nil, noEventsErr(path, set.Truncated)
	}
	return set, nil
}

// noEventsErr names why a zero-event input was rejected.
func noEventsErr(path string, truncated bool) error {
	if truncated {
		return fmt.Errorf("%s: no trace events decoded: file is truncated or not a JSONL trace", path)
	}
	return fmt.Errorf("%s: no trace events decoded: file is empty or not a JSONL trace", path)
}

// summaryStats is the machine-readable summary document.
type summaryStats struct {
	Spans      int   `json:"spans"`
	Incomplete int   `json:"incomplete"`
	Orphans    int   `json:"orphans"`
	Truncated  bool  `json:"truncated"`
	Failed     int64 `json:"failed"`
	Aggregated int64 `json:"aggregated"`
	Retries    int64 `json:"retries"`
	Drops      int64 `json:"drops"`

	Tiers   map[string]int64 `json:"tiers"`
	Kinds   map[string]int   `json:"kinds"`
	Control map[string]int   `json:"control,omitempty"`

	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`

	// Mean latency decomposition across all complete spans; the five
	// components sum to MeanMs (propagation absorbs rounding).
	MeanAccessMs      float64 `json:"mean_access_ms"`
	MeanPropagationMs float64 `json:"mean_propagation_ms"`
	MeanRetxBackoffMs float64 `json:"mean_retx_backoff_ms"`
	MeanOriginSvcMs   float64 `json:"mean_origin_svc_ms"`
	MeanAggWaitMs     float64 `json:"mean_agg_wait_ms"`
}

func summarize(set *spans.Set) summaryStats {
	st := summaryStats{
		Spans:      len(set.Spans),
		Incomplete: set.Incomplete,
		Orphans:    set.Orphans,
		Truncated:  set.Truncated,
		Tiers:      set.TierCounts(),
		Kinds:      set.Kinds,
		Control:    set.Control,
	}
	if len(set.Spans) == 0 {
		return st
	}
	totals := make([]float64, 0, len(set.Spans))
	for i := range set.Spans {
		sp := &set.Spans[i]
		t := sp.TotalMs()
		totals = append(totals, t)
		st.MeanMs += t
		st.MeanAccessMs += sp.AccessMs
		st.MeanPropagationMs += sp.PropagationMs
		st.MeanRetxBackoffMs += sp.RetxBackoffMs
		st.MeanOriginSvcMs += sp.OriginSvcMs
		st.MeanAggWaitMs += sp.AggWaitMs
		st.Retries += int64(sp.Retries)
		st.Drops += int64(sp.Drops)
		if sp.Failed {
			st.Failed++
		}
		if sp.Aggregated {
			st.Aggregated++
		}
	}
	n := float64(len(totals))
	st.MeanMs /= n
	st.MeanAccessMs /= n
	st.MeanPropagationMs /= n
	st.MeanRetxBackoffMs /= n
	st.MeanOriginSvcMs /= n
	st.MeanAggWaitMs /= n
	sort.Float64s(totals)
	st.P50Ms = percentile(totals, 0.50)
	st.P95Ms = percentile(totals, 0.95)
	st.P99Ms = percentile(totals, 0.99)
	st.MaxMs = totals[len(totals)-1]
	return st
}

// percentile reads the p-quantile from an ascending slice
// (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func summaryCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the summary as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	set, err := loadSet(path)
	if err != nil {
		return err
	}
	st := summarize(set)
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "spans (complete)\t%d\n", st.Spans)
	fmt.Fprintf(tw, "incomplete / orphans\t%d / %d\n", st.Incomplete, st.Orphans)
	if st.Truncated {
		fmt.Fprintf(tw, "truncated\ttrace ends mid-stream\n")
	}
	for _, tier := range sortedKeys(st.Tiers) {
		fmt.Fprintf(tw, "tier %s\t%d\n", tier, st.Tiers[tier])
	}
	fmt.Fprintf(tw, "failed / aggregated\t%d / %d\n", st.Failed, st.Aggregated)
	fmt.Fprintf(tw, "retries / drops\t%d / %d\n", st.Retries, st.Drops)
	fmt.Fprintf(tw, "latency mean / p50 / p95 / p99 / max (ms)\t%.2f / %.2f / %.2f / %.2f / %.2f\n",
		st.MeanMs, st.P50Ms, st.P95Ms, st.P99Ms, st.MaxMs)
	fmt.Fprintf(tw, "mean decomposition (ms)\taccess %.2f, propagation %.2f, retx %.2f, origin %.2f, agg-wait %.2f\n",
		st.MeanAccessMs, st.MeanPropagationMs, st.MeanRetxBackoffMs, st.MeanOriginSvcMs, st.MeanAggWaitMs)
	return tw.Flush()
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// spanFilter is the predicate built from the spans-command flags.
type spanFilter struct {
	router, content int64
	tier, kind      string
	from, to        float64
}

func (f spanFilter) match(sp *spans.Span) bool {
	if f.router >= 0 && int64(sp.Router) != f.router {
		return false
	}
	if f.content > 0 && sp.Content != f.content {
		return false
	}
	if f.tier != "" && sp.Tier != f.tier {
		return false
	}
	if f.kind != "" {
		found := false
		for _, ev := range sp.Events {
			if ev.Kind == f.kind {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if sp.End < f.from {
		return false
	}
	if f.to >= 0 && sp.Start > f.to {
		return false
	}
	return true
}

// writeSpans prints spans as JSONL, stripping the event list unless
// withEvents is set.
func writeSpans(w io.Writer, list []spans.Span, withEvents bool) error {
	enc := json.NewEncoder(w)
	for i := range list {
		sp := list[i]
		if !withEvents {
			sp.Events = nil
		}
		if err := enc.Encode(&sp); err != nil {
			return err
		}
	}
	return nil
}

func spansCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	var f spanFilter
	fs.Int64Var(&f.router, "router", -1, "keep spans issued at this first-hop router")
	fs.Int64Var(&f.content, "content", 0, "keep spans for this content rank")
	fs.StringVar(&f.tier, "tier", "", "keep spans served by this tier (local, peer, origin, failed)")
	fs.StringVar(&f.kind, "kind", "", "keep spans whose lifecycle contains an event of this kind (e.g. retry, drop, agg)")
	fs.Float64Var(&f.from, "from", 0, "keep spans overlapping [from, to] ms (span end >= from)")
	fs.Float64Var(&f.to, "to", -1, "keep spans overlapping [from, to] ms (span start <= to; -1 = open)")
	withEvents := fs.Bool("events", false, "include each span's full event list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	set, err := loadSet(path)
	if err != nil {
		return err
	}
	var matched []spans.Span
	for i := range set.Spans {
		if f.match(&set.Spans[i]) {
			matched = append(matched, set.Spans[i])
		}
	}
	return writeSpans(w, matched, *withEvents)
}

func slowCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("slow", flag.ExitOnError)
	top := fs.Int("top", 10, "how many of the slowest requests to list")
	withEvents := fs.Bool("events", false, "include each span's full event list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *top < 1 {
		return fmt.Errorf("-top must be positive, got %d", *top)
	}
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	set, err := loadSet(path)
	if err != nil {
		return err
	}
	list := append([]spans.Span(nil), set.Spans...)
	sort.SliceStable(list, func(i, j int) bool {
		ti, tj := list[i].TotalMs(), list[j].TotalMs()
		if ti != tj {
			return ti > tj
		}
		return list[i].Req < list[j].Req
	})
	if len(list) > *top {
		list = list[:*top]
	}
	return writeSpans(w, list, *withEvents)
}

func exportCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	chrome := fs.Bool("chrome", false, "emit Chrome trace-event JSON (Perfetto, chrome://tracing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*chrome {
		return fmt.Errorf("export: no format selected (want -chrome)")
	}
	path, err := traceArg(fs)
	if err != nil {
		return err
	}
	f, err := spans.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Collect spans and, separately, the control-plane events the span
	// set only counts: the export shows both.
	c := spans.NewCollector()
	var control []trace.Event
	events := 0
	truncated, err := spans.Decode(f, func(ev trace.Event) error {
		if ev.Req <= 0 {
			control = append(control, ev)
		}
		c.Add(ev)
		if ev.Kind != "" {
			events++
		}
		return nil
	})
	if err != nil {
		return err
	}
	if events == 0 {
		return noEventsErr(path, truncated)
	}
	set := c.Finish()
	set.Truncated = truncated
	return writeChrome(w, set, control)
}

// chromeEvent is one record of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps and durations are microseconds; the simulator's virtual
// milliseconds are scaled by 1000.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object form of the trace-event file.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// writeChrome renders the span set as Chrome trace-event JSON: one
// complete ("X") slice per request on its first-hop router's track,
// instant markers for retries and drops on the routers where they
// fired, and global instants for control-plane events.
func writeChrome(w io.Writer, set *spans.Set, control []trace.Event) error {
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for i := range set.Spans {
		sp := &set.Spans[i]
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("req %d rank %d", sp.Req, sp.Content),
			Cat:  sp.Tier,
			Ph:   "X",
			Ts:   sp.Start * 1000,
			Dur:  sp.TotalMs() * 1000,
			Pid:  0,
			Tid:  sp.Router,
			Args: map[string]any{
				"tier": sp.Tier, "hops": sp.Hops, "failed": sp.Failed,
				"access_ms": sp.AccessMs, "propagation_ms": sp.PropagationMs,
				"retx_backoff_ms": sp.RetxBackoffMs, "origin_svc_ms": sp.OriginSvcMs,
				"agg_wait_ms": sp.AggWaitMs,
			},
		})
		for _, ev := range sp.Events {
			switch ev.Kind {
			case trace.KindRetry, trace.KindDrop, trace.KindExpire:
				doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
					Name: ev.Kind,
					Cat:  ev.Kind,
					Ph:   "i",
					Ts:   ev.T * 1000,
					Pid:  0,
					Tid:  ev.Router,
					S:    "t",
					Args: map[string]any{"req": ev.Req, "content": ev.Content, "detail": ev.Detail},
				})
			}
		}
	}
	for _, ev := range control {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("%s %s", ev.Kind, ev.Detail),
			Cat:  "control",
			Ph:   "i",
			Ts:   ev.T * 1000,
			Pid:  0,
			Tid:  ev.Router,
			S:    "g",
			Args: map[string]any{"n": ev.N, "peer": ev.Peer},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
