package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ccncoord/internal/daemon"
	"ccncoord/internal/timeline"
)

// fakeDaemon serves canned /stats and /timeline documents the way ccnd
// does.
func fakeDaemon(t *testing.T, stats daemon.Snapshot, tl []timeline.EpochRecord) *client {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(stats)
	})
	mux.HandleFunc("GET /timeline", func(w http.ResponseWriter, r *http.Request) {
		out := tl
		if s := r.URL.Query().Get("since"); s != "" {
			after, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since", http.StatusBadRequest)
				return
			}
			out = nil
			for _, rec := range tl {
				if rec.Epoch > after {
					out = append(out, rec)
				}
			}
		}
		if out == nil {
			out = []timeline.EpochRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &client{base: srv.URL, hc: srv.Client()}
}

func sampleStats() daemon.Snapshot {
	var s daemon.Snapshot
	s.State = "running"
	s.Queued = 2
	s.QueueDepth = 64
	s.Workers.Target = 4
	s.Workers.Active = 4
	s.Workload.ZipfS = 0.8
	s.Workload.MeanInterarrivalMs = 1.5
	s.Totals.Completed = 1200
	s.Totals.LocalHit = 0.31
	s.Totals.OriginLoad = 0.42
	s.Coordination.Epoch = 3
	s.Coordination.Replans = 3
	s.Coordination.Messages = 240
	s.Engine.EventsProcessed = 9000
	s.Engine.PendingPeak = 17
	s.Engine.Shards = 1
	s.Timeline.Records = 2
	s.Timeline.Total = 3
	s.Timeline.Dropped = 1
	s.Timeline.Capacity = 2
	return s
}

func sampleTimeline() []timeline.EpochRecord {
	return []timeline.EpochRecord{
		{Epoch: 2, Messages: 80, BoundMessages: 80, UnitCostMs: 12, BoundCostMs: 480, Churn: 12, Level: 0.5, LocalSlots: 10, CoordSlots: 10},
		{Epoch: 3, Messages: 80, BoundMessages: 100, UnitCostMs: 12, BoundCostMs: 600, Churn: 4, Level: 0.4, LocalSlots: 12, CoordSlots: 8},
	}
}

func TestOneTable(t *testing.T) {
	c := fakeDaemon(t, sampleStats(), sampleTimeline())
	var buf bytes.Buffer
	if err := c.oneTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"state",
		"running",
		"coordination epoch / replans",
		"80 / 100 (80% of bound)", // newest record's measured vs bound
		"last replan churn / level",
		"2 kept, 3 total, 1 evicted",
		"engine events / pending peak",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table lacks %q:\n%s", want, out)
		}
	}
	// Serial daemon: no shard row, no throughput (single poll has no rate).
	for _, reject := range []string{"cross-shard", "throughput"} {
		if strings.Contains(out, reject) {
			t.Errorf("table unexpectedly shows %q:\n%s", reject, out)
		}
	}
}

func TestRenderThroughput(t *testing.T) {
	prev := &status{At: time.Unix(100, 0), Stats: sampleStats()}
	cur := &status{At: time.Unix(102, 0), Stats: sampleStats(), Timeline: sampleTimeline()}
	cur.Stats.Totals.Completed = prev.Stats.Totals.Completed + 500
	var buf bytes.Buffer
	if err := render(&buf, cur, prev); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "250 req/s") {
		t.Errorf("throughput delta not rendered:\n%s", buf.String())
	}
}

func TestOneJSON(t *testing.T) {
	c := fakeDaemon(t, sampleStats(), sampleTimeline())
	var buf bytes.Buffer
	if err := c.oneJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Stats    daemon.Snapshot        `json:"stats"`
		Timeline []timeline.EpochRecord `json:"timeline"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("combined document is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Stats.Coordination.Replans != 3 {
		t.Errorf("stats section replans = %d, want 3", doc.Stats.Coordination.Replans)
	}
	if len(doc.Timeline) != 2 || doc.Timeline[1].Epoch != 3 {
		t.Errorf("timeline section = %+v, want the 2 canned records", doc.Timeline)
	}
}

func TestPollSince(t *testing.T) {
	c := fakeDaemon(t, sampleStats(), sampleTimeline())
	st, err := c.poll(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Timeline) != 1 || st.Timeline[0].Epoch != 3 {
		t.Errorf("poll(since=2) returned %+v, want only epoch 3", st.Timeline)
	}
}

func TestUnavailableDaemonSurfacesReason(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "initializing: topology load", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := &client{base: srv.URL, hc: srv.Client()}
	err := c.oneTable(&bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "initializing: topology load") {
		t.Errorf("503 reason not surfaced, got: %v", err)
	}
}

func TestNormalizeAddr(t *testing.T) {
	for in, want := range map[string]string{
		"localhost:8080":         "http://localhost:8080",
		"http://h:1/":            "http://h:1",
		"https://ccnd.internal/": "https://ccnd.internal",
	} {
		if got := normalizeAddr(in); got != want {
			t.Errorf("normalizeAddr(%q) = %q, want %q", in, got, want)
		}
	}
}
