// Command ccnstat is the live console for a running ccnd daemon: it
// polls GET /stats and GET /timeline and renders a refreshing status
// table — request throughput, cache behavior, the coordination epoch
// with its measured message cost against the model's w*n*x budget, and
// the event-engine gauges.
//
// Examples:
//
//	ccnstat -addr localhost:8080             # refreshing table, 1s period
//	ccnstat -addr localhost:8080 -once       # render one table and exit
//	ccnstat -addr localhost:8080 -json       # one combined JSON document
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"ccncoord/internal/daemon"
	"ccncoord/internal/timeline"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "ccnd address (host:port or full URL)")
		interval = flag.Duration("interval", time.Second, "poll period in watch mode")
		jsonOut  = flag.Bool("json", false, "print one combined JSON document {\"stats\":...,\"timeline\":...} and exit")
		once     = flag.Bool("once", false, "render one status table and exit")
	)
	flag.Parse()

	c := &client{base: normalizeAddr(*addr), hc: &http.Client{Timeout: 10 * time.Second}}
	var err error
	switch {
	case *jsonOut:
		err = c.oneJSON(os.Stdout)
	case *once:
		err = c.oneTable(os.Stdout)
	default:
		err = c.watch(os.Stdout, *interval)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccnstat:", err)
		os.Exit(1)
	}
}

// normalizeAddr accepts host:port or a full URL and returns a base URL
// without a trailing slash.
func normalizeAddr(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// client polls one daemon.
type client struct {
	base string
	hc   *http.Client
}

// status is one consistent poll: the stats snapshot plus the timeline
// records appended since the previous poll.
type status struct {
	At       time.Time
	Stats    daemon.Snapshot
	Timeline []timeline.EpochRecord
}

// get fetches one endpoint, decoding the body into out. A 503 is
// surfaced with the daemon's own health reason so `ccnstat` against an
// initializing or failed daemon explains itself.
func (c *client) get(path string, out any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, out)
}

// poll reads /stats and the timeline records after sinceEpoch (-1 for
// all). The two endpoints are read back to back, not atomically; each
// is internally consistent.
func (c *client) poll(sinceEpoch int64) (*status, error) {
	st := &status{At: time.Now()}
	if err := c.get("/stats", &st.Stats); err != nil {
		return nil, err
	}
	path := "/timeline"
	if sinceEpoch >= 0 {
		path = fmt.Sprintf("/timeline?since=%d", sinceEpoch)
	}
	if err := c.get(path, &st.Timeline); err != nil {
		return nil, err
	}
	return st, nil
}

// oneJSON emits the combined machine-readable snapshot: the raw /stats
// and /timeline documents under one object.
func (c *client) oneJSON(w io.Writer) error {
	var stats, tl json.RawMessage
	if err := c.get("/stats", &stats); err != nil {
		return err
	}
	if err := c.get("/timeline", &tl); err != nil {
		return err
	}
	out, err := json.MarshalIndent(map[string]json.RawMessage{"stats": stats, "timeline": tl}, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(out))
	return err
}

// oneTable renders a single status table.
func (c *client) oneTable(w io.Writer) error {
	st, err := c.poll(-1)
	if err != nil {
		return err
	}
	return render(w, st, nil)
}

// watch polls forever, redrawing the table each period. Throughput is
// the completed-request delta between consecutive polls.
func (c *client) watch(w io.Writer, interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("-interval must be positive, got %v", interval)
	}
	var prev *status
	for {
		since := int64(-1)
		if prev != nil && len(prev.Timeline) > 0 {
			// Incremental timeline fetch: only records after the last seen
			// epoch; the full set came with the first poll.
			since = prev.Timeline[len(prev.Timeline)-1].Epoch
		}
		st, err := c.poll(since)
		if err != nil {
			return err
		}
		if prev != nil && since >= 0 {
			// Stitch the incremental records onto what we already have so
			// "last epoch" never goes backwards between polls.
			st.Timeline = append(prev.Timeline, st.Timeline...)
		}
		fmt.Fprint(w, "\x1b[2J\x1b[H") // clear screen, home cursor
		if err := render(w, st, prev); err != nil {
			return err
		}
		prev = st
		time.Sleep(interval)
	}
}

// render writes the status table. prev, when non-nil, supplies the
// previous poll for rate computation.
func render(w io.Writer, st, prev *status) error {
	s := st.Stats
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	state := s.State
	if s.Reason != "" {
		state += " (" + s.Reason + ")"
	}
	fmt.Fprintf(tw, "state\t%s\n", state)
	fmt.Fprintf(tw, "workload\tzipf s=%.2f, mean gap %.1f ms\n",
		s.Workload.ZipfS, s.Workload.MeanInterarrivalMs)
	fmt.Fprintf(tw, "queued batches\t%d / %d\n", s.Queued, s.QueueDepth)
	fmt.Fprintf(tw, "workers\t%d of %d\n", s.Workers.Active, s.Workers.Target)
	if prev != nil {
		if dt := st.At.Sub(prev.At).Seconds(); dt > 0 {
			rate := float64(s.Totals.Completed-prev.Stats.Totals.Completed) / dt
			fmt.Fprintf(tw, "throughput\t%.0f req/s\n", rate)
		}
	}
	fmt.Fprintf(tw, "requests completed / failed\t%d / %d\n", s.Totals.Completed, s.Totals.Failed)
	fmt.Fprintf(tw, "hit ratios local / peer\t%.4f / %.4f\n", s.Totals.LocalHit, s.Totals.PeerHit)
	fmt.Fprintf(tw, "origin load\t%.4f\n", s.Totals.OriginLoad)
	fmt.Fprintf(tw, "mean latency (ms)\t%.2f\n", s.Totals.MeanLatencyMs)

	fmt.Fprintf(tw, "coordination epoch / replans\t%d / %d\n", s.Coordination.Epoch, s.Coordination.Replans)
	fmt.Fprintf(tw, "coordination messages\t%d\n", s.Coordination.Messages)
	if last := lastRecord(st.Timeline); last != nil {
		fmt.Fprintf(tw, "last replan msgs / bound\t%d / %d (%s)\n",
			last.Messages, last.BoundMessages, boundVerdict(last))
		fmt.Fprintf(tw, "last replan cost / bound (ms)\t%.1f / %.1f\n",
			float64(last.Messages)/2*last.UnitCostMs, last.BoundCostMs)
		fmt.Fprintf(tw, "last replan churn / level\t%d / %.3f\n", last.Churn, last.Level)
		fmt.Fprintf(tw, "slots local / coordinated\t%d / %d\n", last.LocalSlots, last.CoordSlots)
	}
	fmt.Fprintf(tw, "timeline records\t%d kept, %d total, %d evicted\n",
		s.Timeline.Records, s.Timeline.Total, s.Timeline.Dropped)

	fmt.Fprintf(tw, "engine events / pending peak\t%d / %d\n", s.Engine.EventsProcessed, s.Engine.PendingPeak)
	if s.Engine.Shards > 1 {
		fmt.Fprintf(tw, "engine shards / cross-shard\t%d / %d\n", s.Engine.Shards, s.Engine.CrossShardEvents)
	}
	return tw.Flush()
}

// lastRecord returns the newest timeline record, nil when none exist.
func lastRecord(tl []timeline.EpochRecord) *timeline.EpochRecord {
	if len(tl) == 0 {
		return nil
	}
	return &tl[len(tl)-1]
}

// boundVerdict compares a replan's measured message count to the model
// budget it is provably under.
func boundVerdict(rec *timeline.EpochRecord) string {
	if rec.BoundMessages <= 0 {
		return "no bound"
	}
	return fmt.Sprintf("%.0f%% of bound", 100*float64(rec.Messages)/float64(rec.BoundMessages))
}
