// Command ccnopt computes the optimal in-network storage provisioning
// strategy for a content-centric network from the paper's analytical
// model: the optimal coordination level l* = x*/c, the resulting origin
// load reduction G_O, and the routing performance improvement G_R.
//
// Parameters may be given explicitly or taken from one of the embedded
// evaluation topologies (-topology), which supplies n, w, and d1-d0.
//
// Examples:
//
//	ccnopt -alpha 0.8 -gamma 5 -s 0.8 -n 20 -w 26.7 -gap 2.2842
//	ccnopt -topology US-A -alpha 0.8 -gamma 5
//	ccnopt -topology Abilene -alpha 1 -sweep alpha
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"ccncoord/internal/model"
	"ccncoord/internal/topology"
)

func main() {
	var (
		topoName  = flag.String("topology", "", "take n, w, d1-d0 from an embedded topology (Abilene, CERNET, GEANT, US-A)")
		topoFile  = flag.String("topofile", "", "take n, w, d1-d0 from a custom JSON topology file (see ccntopo -json)")
		alpha     = flag.Float64("alpha", 0.8, "trade-off weight: 1 = routing performance only, 0 = coordination cost only")
		gamma     = flag.Float64("gamma", 5, "tiered latency ratio (d2-d1)/(d1-d0)")
		s         = flag.Float64("s", 0.8, "Zipf popularity exponent, (0,1) U (1,2)")
		n         = flag.Int("n", 20, "number of routers (overridden by -topology)")
		w         = flag.Float64("w", 26.7, "unit coordination cost, ms (overridden by -topology)")
		gap       = flag.Float64("gap", 2.2842, "tier gap d1-d0 (overridden by -topology)")
		contents  = flag.Float64("N", 1e6, "number of contents")
		capacity  = flag.Float64("c", 1e3, "per-router storage capacity, contents")
		rho       = flag.Float64("rho", 1e6, "coordination-cost amortization (requests per epoch); see DESIGN.md")
		sweep     = flag.String("sweep", "", "sweep one parameter over its Table IV range: alpha, s, n, or w")
		stability = flag.Bool("stability", false, "report the sensitive alpha range of l* (slope >= 50% of peak)")
	)
	flag.Parse()

	if *topoName != "" || *topoFile != "" {
		p, err := paramsFor(*topoName, *topoFile)
		if err != nil {
			fatal(err)
		}
		*n, *w, *gap = p.N, p.UnitCost, p.TierGapHops
	}
	cfg := model.Config{
		S: *s, N: *contents, C: *capacity, Routers: *n,
		Lat:      model.LatencyFromGamma(1, *gap, *gamma),
		UnitCost: *w, Alpha: *alpha, Amortization: *rho,
	}
	if *sweep != "" {
		if err := runSweep(cfg, *sweep); err != nil {
			fatal(err)
		}
		return
	}
	if err := runPoint(cfg); err != nil {
		fatal(err)
	}
	if *stability {
		if err := runStability(cfg); err != nil {
			fatal(err)
		}
	}
}

func runStability(cfg model.Config) error {
	r, err := cfg.FindSensitiveRange(0.5)
	if err != nil {
		return err
	}
	sens, err := cfg.Sensitivity()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "sensitivity dl*/dalpha at alpha=%.2f\t%.3f\n", cfg.Alpha, sens)
	fmt.Fprintf(tw, "sensitive alpha range\t[%.3f, %.3f] (width %.3f)\n", r.Lo, r.Hi, r.Width())
	fmt.Fprintf(tw, "steepest transition\talpha=%.3f (slope %.2f)\n", r.PeakAlpha, r.PeakSlope)
	return tw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccnopt:", err)
	os.Exit(1)
}

func paramsFor(name, file string) (topology.Params, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return topology.Params{}, err
		}
		defer f.Close()
		g, err := topology.ReadJSON(f)
		if err != nil {
			return topology.Params{}, err
		}
		return topology.ExtractParams(g)
	}
	for _, g := range topology.All() {
		if g.Name() == name {
			return topology.ExtractParams(g)
		}
	}
	return topology.Params{}, fmt.Errorf("unknown topology %q", name)
}

func runPoint(cfg model.Config) error {
	g, err := cfg.OptimalGains()
	if err != nil {
		return err
	}
	fp, err := cfg.FixedPointLevel()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "optimal coordination level l*\t%.4f\n", g.Level)
	fmt.Fprintf(tw, "optimal coordinated slots x*\t%.1f of %g\n", g.X, cfg.C)
	fmt.Fprintf(tw, "Lemma 2 fixed-point level\t%.4f\n", fp)
	if cfg.Alpha == 1 {
		fmt.Fprintf(tw, "Theorem 2 closed form\t%.4f\n",
			model.ClosedFormLevel(cfg.Lat.Gamma(), cfg.Routers, cfg.S))
	}
	fmt.Fprintf(tw, "origin load reduction G_O\t%.2f%%\n", 100*g.OriginReduction)
	fmt.Fprintf(tw, "routing improvement G_R\t%.2f%%\n", 100*g.RoutingGain)
	fmt.Fprintf(tw, "mean latency T(x*) / T(0)\t%.3f / %.3f\n", cfg.T(g.X), cfg.T0())
	return tw.Flush()
}

func runSweep(cfg model.Config, param string) error {
	type point struct{ x, level, gO, gR float64 }
	var pts []point
	eval := func(x float64, c model.Config) error {
		g, err := c.OptimalGains()
		if err != nil {
			return err
		}
		pts = append(pts, point{x, g.Level, g.OriginReduction, g.RoutingGain})
		return nil
	}
	switch param {
	case "alpha":
		for a := 0.05; a < 1.0001; a += 0.05 {
			c := cfg
			c.Alpha = min(a, 1)
			if err := eval(c.Alpha, c); err != nil {
				return err
			}
		}
	case "s":
		for s := 0.1; s <= 1.9001; s += 0.1 {
			if s > 0.95 && s < 1.05 {
				continue
			}
			c := cfg
			c.S = s
			if err := eval(s, c); err != nil {
				return err
			}
		}
	case "n":
		for n := 10; n <= 500; n += 20 {
			c := cfg
			c.Routers = n
			if err := eval(float64(n), c); err != nil {
				return err
			}
		}
	case "w":
		for w := 10.0; w <= 100.0; w += 5 {
			c := cfg
			c.UnitCost = w
			if err := eval(w, c); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown sweep parameter %q (want alpha, s, n, or w)", param)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tl*\tG_O\tG_R\n", param)
	for _, p := range pts {
		fmt.Fprintf(tw, "%.4g\t%.4f\t%.4f\t%.4f\n", p.x, p.level, p.gO, p.gR)
	}
	return tw.Flush()
}
