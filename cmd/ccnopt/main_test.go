package main

import (
	"os"
	"path/filepath"
	"testing"

	"ccncoord/internal/topology"
)

func TestParamsForEmbedded(t *testing.T) {
	p, err := paramsFor("US-A", "")
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 20 {
		t.Errorf("US-A n = %d, want 20", p.N)
	}
	if _, err := paramsFor("missing", ""); err == nil {
		t.Error("unknown topology should fail")
	}
}

func TestParamsForFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.Abilene().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := paramsFor("", path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Abilene" || p.N != 11 {
		t.Errorf("file params = %+v", p)
	}
	if _, err := paramsFor("", filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file should fail")
	}
}
