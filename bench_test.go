package ccncoord

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"ccncoord/internal/experiments"
	"ccncoord/internal/topology"
)

// This file holds one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates the artifact end to end; run
//
//	go test -bench=. -benchmem
//
// and use cmd/ccnexp to print the artifacts themselves.

// sinkFigure prevents dead-code elimination of figure computations.
var sinkFigure Figure

// sinkTable likewise for tables.
var sinkTable Table

func benchFigure(b *testing.B, build func() (experiments.Figure, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := build()
		if err != nil {
			b.Fatal(err)
		}
		sinkFigure = f
	}
	// Emit the artifact once per benchmark for eyeballing -benchtime
	// runs; discarded writer keeps output clean.
	if err := experiments.WriteFigureCSV(io.Discard, sinkFigure); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkTableII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkTable = experiments.TableII()
	}
}

func BenchmarkTableIII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkTableIV(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkTable = experiments.TableIV()
	}
}

func BenchmarkFig4(b *testing.B)  { benchFigure(b, experiments.Fig4) }
func BenchmarkFig5(b *testing.B)  { benchFigure(b, experiments.Fig5) }
func BenchmarkFig6(b *testing.B)  { benchFigure(b, experiments.Fig6) }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, experiments.Fig7) }
func BenchmarkFig8(b *testing.B)  { benchFigure(b, experiments.Fig8) }
func BenchmarkFig9(b *testing.B)  { benchFigure(b, experiments.Fig9) }
func BenchmarkFig10(b *testing.B) { benchFigure(b, experiments.Fig10) }
func BenchmarkFig11(b *testing.B) { benchFigure(b, experiments.Fig11) }
func BenchmarkFig12(b *testing.B) { benchFigure(b, experiments.Fig12) }
func BenchmarkFig13(b *testing.B) { benchFigure(b, experiments.Fig13) }

// BenchmarkModelVsSim runs this repository's own validation experiment:
// packet simulation against the analytical model on all four
// topologies.
func BenchmarkModelVsSim(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.ModelVsSim(20000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

// Ablation benchmarks: the design-choice studies DESIGN.md calls out.

func BenchmarkAblationAssignment(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationAssignment(20000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAblationPolicy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationPolicy(20000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAblationSolver(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationSolver()
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAblationCoordinator(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationCoordinator()
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkStabilityAnalysis(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.StabilityAnalysis()
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAblationResilience(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationResilience(20000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAdaptiveConvergence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AdaptiveConvergence(20000, 3)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

// BenchmarkOptimizePerTopology measures the provisioning pipeline per
// evaluation topology: extract parameters, build the model, optimize.
func BenchmarkOptimizePerTopology(b *testing.B) {
	for _, g := range AllTopologies() {
		g := g
		b.Run(g.Name(), func(b *testing.B) {
			p, err := ExtractParams(g)
			if err != nil {
				b.Fatal(err)
			}
			cfg := Model{
				S: 0.8, N: 1e6, C: 1e3, Routers: p.N,
				Lat:      LatencyFromGamma(1, p.TierGapHops, 5),
				UnitCost: p.UnitCost, Alpha: 0.8, Amortization: 1e6,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cfg.OptimalGains(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationLoss(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationLoss(10000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAblationCongestion(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationCongestion(10000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkMetricVariant(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.MetricVariant()
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAdaptiveDrift(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AdaptiveDrift(10000, 3)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

// BenchmarkSimRun is the simulator regression benchmark that the
// cmd/ccnbench harness records into BENCH_<date>.json: one fixed-seed
// sim.Run per iteration on US-A, once with the provisioned coordinated
// placement and once with the dynamic LRU baseline (which exercises the
// eviction path the provisioned policies skip). Compare ns/op, B/op and
// allocs/op against the committed baselines before merging simulator
// changes.
func BenchmarkSimRun(b *testing.B) {
	base := Scenario{
		CatalogSize:   10000,
		ZipfS:         0.8,
		Capacity:      100,
		Requests:      20000,
		Seed:          1,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
	}
	variants := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"Coordinated/US-A", func(sc *Scenario) {
			sc.Policy = PolicyCoordinated
			sc.Coordinated = 50
		}},
		{"LRU/US-A", func(sc *Scenario) {
			sc.Policy = PolicyLRU
			sc.Warmup = 10000
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			sc := base
			v.mut(&sc)
			sc.Topology = USA()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(sc)
				if err != nil {
					b.Fatal(err)
				}
				if res.Requests != sc.Requests {
					b.Fatalf("measured %d requests, want %d", res.Requests, sc.Requests)
				}
			}
		})
	}
}

// BenchmarkSimulationThroughput measures packet-simulator request
// throughput on US-A with the coordinated placement.
func BenchmarkSimulationThroughput(b *testing.B) {
	sc := Scenario{
		Topology:      USA(),
		CatalogSize:   10000,
		ZipfS:         0.8,
		Capacity:      100,
		Coordinated:   50,
		Policy:        PolicyCoordinated,
		Requests:      20000,
		Seed:          1,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != sc.Requests {
			b.Fatalf("measured %d requests, want %d", res.Requests, sc.Requests)
		}
	}
	b.ReportMetric(float64(sc.Requests), "requests/op")
}

// benchAPSPSink prevents dead-code elimination of shortest-path runs.
var benchAPSPSink *topology.APSP

// BenchmarkAPSP measures one full all-pairs shortest-path recompute per
// evaluation topology. ScaleLatencies(1) leaves every latency unchanged
// but bumps the graph's cache generation, so each iteration pays the
// real solve rather than a cache hit.
func BenchmarkAPSP(b *testing.B) {
	for _, g := range topology.All() {
		b.Run(g.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := g.ScaleLatencies(1); err != nil {
					b.Fatal(err)
				}
				benchAPSPSink = g.ShortestPathsLatency()
			}
		})
	}
}

// benchRoutingSink prevents dead-code elimination of routing queries.
var benchRoutingSink float64

// BenchmarkRoutingScale is the scalable-routing n-sweep: hierarchical
// topologies of 10² to 10⁵ routers answering a mixed Dist/PathTree
// query stream. The dense variant pays one full APSP precompute per op
// (the O(n²) wall this sweep tracks); the LRU variants warm a bounded
// working set of shortest-path trees and answer from the cache — no
// dense matrix is ever materialized, and the op fails if the live heap
// exceeds the 2 GB budget. One op = backend build + warmup + the full
// query stream, so ns/op tracks precompute and query cost together;
// misses/op counts the Dijkstras actually run.
func BenchmarkRoutingScale(b *testing.B) {
	// Fanouts expand to exactly 10^k nodes: 10, +90, +900, +9000, +90000.
	allFanouts := []int{10, 9, 10, 10, 10}
	latencies := []float64{20, 5, 2, 1, 0.5}
	build := func(levels int) *topology.Graph {
		spec := make([]topology.HierLevel, levels)
		for i := 0; i < levels; i++ {
			spec[i] = topology.HierLevel{Fanout: allFanouts[i], MeanLatency: latencies[i], Redundancy: 1}
		}
		g, err := topology.Hierarchical("", spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	// workingSet draws the seeded source pool the LRU cache is sized
	// for: client-facing routers concentrate their queries, so sources
	// come from a bounded set while destinations span the whole graph.
	workingSet := func(n, size int) []topology.NodeID {
		if size > n {
			size = n
		}
		rng := rand.New(rand.NewSource(7))
		seen := make(map[int]bool, size)
		out := make([]topology.NodeID, 0, size)
		for len(out) < size {
			v := rng.Intn(n)
			if !seen[v] {
				seen[v] = true
				out = append(out, topology.NodeID(v))
			}
		}
		return out
	}
	// queryStream runs the mixed workload: mostly Dist, every 64th a
	// PathTree (the single-tree path read the LRU is sized for).
	queryStream := func(b *testing.B, p topology.PathProvider, sources []topology.NodeID, queries int) {
		b.Helper()
		rng := rand.New(rand.NewSource(11))
		n := p.N()
		var acc float64
		for q := 0; q < queries; q++ {
			src := sources[rng.Intn(len(sources))]
			dst := topology.NodeID(rng.Intn(n))
			if q%64 == 0 {
				var path []topology.NodeID
				var err error
				if lru, ok := p.(*topology.LRUPaths); ok {
					path, err = lru.PathTree(src, dst)
				} else {
					path, err = p.Path(src, dst)
				}
				if err != nil {
					b.Fatal(err)
				}
				acc += float64(len(path))
			} else {
				acc += p.Dist(src, dst)
			}
		}
		benchRoutingSink = acc
	}
	// checkHeap enforces the sweep's memory budget: the live heap after
	// a GC must stay under 2 GB even at 10⁵ routers.
	checkHeap := func(b *testing.B) float64 {
		b.Helper()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > 2<<30 {
			b.Fatalf("live heap %d bytes exceeds the 2 GB routing budget", ms.HeapAlloc)
		}
		return float64(ms.HeapAlloc) / (1 << 20)
	}

	b.Run("Dense/n=100", func(b *testing.B) {
		g := build(2)
		sources := workingSet(g.N(), 256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// ScaleLatencies(1) bumps the cache generation, so every op
			// pays the real O(n²) precompute.
			if err := g.ScaleLatencies(1); err != nil {
				b.Fatal(err)
			}
			queryStream(b, g.ShortestPathsLatency(), sources, 10*g.N())
		}
		b.ReportMetric(checkHeap(b), "heapMB")
	})
	for levels := 2; levels <= 5; levels++ {
		g := build(levels)
		queries := 10 * g.N()
		b.Run(fmt.Sprintf("LRU/n=%d", g.N()), func(b *testing.B) {
			sources := workingSet(g.N(), 256)
			capacity := 320
			if capacity > g.N() {
				capacity = g.N()
			}
			var misses uint64
			var lru *topology.LRUPaths
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lru = topology.NewLRUPaths(g, capacity)
				lru.Warm(sources, 0)
				queryStream(b, lru, sources, queries)
				_, misses, _ = lru.Stats()
			}
			b.StopTimer()
			b.ReportMetric(float64(misses), "misses/op")
			b.ReportMetric(float64(queries), "queries/op")
			// Measure while the cache is still live so heapMB reflects
			// the resident shortest-path trees, not post-GC garbage.
			b.ReportMetric(checkHeap(b), "heapMB")
			runtime.KeepAlive(lru)
		})
	}
}

// benchTopoSink prevents dead-code elimination of dataset construction.
var benchTopoSink []*topology.Graph

// BenchmarkTopologyAll measures handing out the four calibrated
// evaluation datasets. The first call ever pays the memoized build
// (seed search + calibration); steady state is four clones sharing the
// precomputed routing caches.
func BenchmarkTopologyAll(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTopoSink = topology.All()
	}
}

// Example demonstrates the one-call provisioning flow.
func Example() {
	cfg := Model{
		S: 0.8, N: 1e6, C: 1e3, Routers: 20,
		Lat:      LatencyFromGamma(1, 2.2842, 5),
		UnitCost: 26.7, Alpha: 0.8, Amortization: 1e6,
	}
	g, err := cfg.OptimalGains()
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal coordination level: %.2f\n", g.Level)
	// Output: optimal coordination level: 0.93
}
