package ccncoord

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"ccncoord/internal/des"
	"ccncoord/internal/experiments"
	"ccncoord/internal/topology"
)

// This file holds one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates the artifact end to end; run
//
//	go test -bench=. -benchmem
//
// and use cmd/ccnexp to print the artifacts themselves.

// sinkFigure prevents dead-code elimination of figure computations.
var sinkFigure Figure

// sinkTable likewise for tables.
var sinkTable Table

func benchFigure(b *testing.B, build func() (experiments.Figure, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := build()
		if err != nil {
			b.Fatal(err)
		}
		sinkFigure = f
	}
	// Emit the artifact once per benchmark for eyeballing -benchtime
	// runs; discarded writer keeps output clean.
	if err := experiments.WriteFigureCSV(io.Discard, sinkFigure); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableI()
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkTableII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkTable = experiments.TableII()
	}
}

func BenchmarkTableIII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkTableIV(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkTable = experiments.TableIV()
	}
}

func BenchmarkFig4(b *testing.B)  { benchFigure(b, experiments.Fig4) }
func BenchmarkFig5(b *testing.B)  { benchFigure(b, experiments.Fig5) }
func BenchmarkFig6(b *testing.B)  { benchFigure(b, experiments.Fig6) }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, experiments.Fig7) }
func BenchmarkFig8(b *testing.B)  { benchFigure(b, experiments.Fig8) }
func BenchmarkFig9(b *testing.B)  { benchFigure(b, experiments.Fig9) }
func BenchmarkFig10(b *testing.B) { benchFigure(b, experiments.Fig10) }
func BenchmarkFig11(b *testing.B) { benchFigure(b, experiments.Fig11) }
func BenchmarkFig12(b *testing.B) { benchFigure(b, experiments.Fig12) }
func BenchmarkFig13(b *testing.B) { benchFigure(b, experiments.Fig13) }

// BenchmarkModelVsSim runs this repository's own validation experiment:
// packet simulation against the analytical model on all four
// topologies.
func BenchmarkModelVsSim(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.ModelVsSim(20000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

// Ablation benchmarks: the design-choice studies DESIGN.md calls out.

func BenchmarkAblationAssignment(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationAssignment(20000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAblationPolicy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationPolicy(20000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAblationSolver(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationSolver()
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAblationCoordinator(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationCoordinator()
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkStabilityAnalysis(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.StabilityAnalysis()
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAblationResilience(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationResilience(20000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAdaptiveConvergence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AdaptiveConvergence(20000, 3)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

// BenchmarkOptimizePerTopology measures the provisioning pipeline per
// evaluation topology: extract parameters, build the model, optimize.
func BenchmarkOptimizePerTopology(b *testing.B) {
	for _, g := range AllTopologies() {
		g := g
		b.Run(g.Name(), func(b *testing.B) {
			p, err := ExtractParams(g)
			if err != nil {
				b.Fatal(err)
			}
			cfg := Model{
				S: 0.8, N: 1e6, C: 1e3, Routers: p.N,
				Lat:      LatencyFromGamma(1, p.TierGapHops, 5),
				UnitCost: p.UnitCost, Alpha: 0.8, Amortization: 1e6,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cfg.OptimalGains(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationLoss(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationLoss(10000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAblationCongestion(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationCongestion(10000)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkMetricVariant(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.MetricVariant()
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

func BenchmarkAdaptiveDrift(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := experiments.AdaptiveDrift(10000, 3)
		if err != nil {
			b.Fatal(err)
		}
		sinkTable = t
	}
}

// BenchmarkSimRun is the simulator regression benchmark that the
// cmd/ccnbench harness records into BENCH_<date>.json: one fixed-seed
// sim.Run per iteration on US-A, once with the provisioned coordinated
// placement and once with the dynamic LRU baseline (which exercises the
// eviction path the provisioned policies skip). Compare ns/op, B/op and
// allocs/op against the committed baselines before merging simulator
// changes.
func BenchmarkSimRun(b *testing.B) {
	base := Scenario{
		CatalogSize:   10000,
		ZipfS:         0.8,
		Capacity:      100,
		Requests:      20000,
		Seed:          1,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
	}
	variants := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"Coordinated/US-A", func(sc *Scenario) {
			sc.Policy = PolicyCoordinated
			sc.Coordinated = 50
		}},
		{"LRU/US-A", func(sc *Scenario) {
			sc.Policy = PolicyLRU
			sc.Warmup = 10000
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			sc := base
			v.mut(&sc)
			sc.Topology = USA()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Run(sc)
				if err != nil {
					b.Fatal(err)
				}
				if res.Requests != sc.Requests {
					b.Fatalf("measured %d requests, want %d", res.Requests, sc.Requests)
				}
			}
		})
	}
}

// BenchmarkSimulationThroughput measures packet-simulator request
// throughput on US-A with the coordinated placement.
func BenchmarkSimulationThroughput(b *testing.B) {
	sc := Scenario{
		Topology:      USA(),
		CatalogSize:   10000,
		ZipfS:         0.8,
		Capacity:      100,
		Coordinated:   50,
		Policy:        PolicyCoordinated,
		Requests:      20000,
		Seed:          1,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != sc.Requests {
			b.Fatalf("measured %d requests, want %d", res.Requests, sc.Requests)
		}
	}
	b.ReportMetric(float64(sc.Requests), "requests/op")
}

// benchAPSPSink prevents dead-code elimination of shortest-path runs.
var benchAPSPSink *topology.APSP

// BenchmarkAPSP measures one full all-pairs shortest-path recompute per
// evaluation topology. ScaleLatencies(1) leaves every latency unchanged
// but bumps the graph's cache generation, so each iteration pays the
// real solve rather than a cache hit.
func BenchmarkAPSP(b *testing.B) {
	for _, g := range topology.All() {
		b.Run(g.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := g.ScaleLatencies(1); err != nil {
					b.Fatal(err)
				}
				benchAPSPSink = g.ShortestPathsLatency()
			}
		})
	}
}

// benchRoutingSink prevents dead-code elimination of routing queries.
var benchRoutingSink float64

// BenchmarkRoutingScale is the scalable-routing n-sweep: hierarchical
// topologies of 10² to 10⁵ routers answering a mixed Dist/PathTree
// query stream. The dense variant pays one full APSP precompute per op
// (the O(n²) wall this sweep tracks); the LRU variants warm a bounded
// working set of shortest-path trees and answer from the cache — no
// dense matrix is ever materialized, and the op fails if the live heap
// exceeds the 2 GB budget. One op = backend build + warmup + the full
// query stream, so ns/op tracks precompute and query cost together;
// misses/op counts the Dijkstras actually run.
func BenchmarkRoutingScale(b *testing.B) {
	build := func(levels int) *topology.Graph { return buildHierGraph(b, levels) }
	// workingSet draws the seeded source pool the LRU cache is sized
	// for: client-facing routers concentrate their queries, so sources
	// come from a bounded set while destinations span the whole graph.
	workingSet := func(n, size int) []topology.NodeID {
		if size > n {
			size = n
		}
		rng := rand.New(rand.NewSource(7))
		seen := make(map[int]bool, size)
		out := make([]topology.NodeID, 0, size)
		for len(out) < size {
			v := rng.Intn(n)
			if !seen[v] {
				seen[v] = true
				out = append(out, topology.NodeID(v))
			}
		}
		return out
	}
	// queryStream runs the mixed workload: mostly Dist, every 64th a
	// PathTree (the single-tree path read the LRU is sized for).
	queryStream := func(b *testing.B, p topology.PathProvider, sources []topology.NodeID, queries int) {
		b.Helper()
		rng := rand.New(rand.NewSource(11))
		n := p.N()
		var acc float64
		for q := 0; q < queries; q++ {
			src := sources[rng.Intn(len(sources))]
			dst := topology.NodeID(rng.Intn(n))
			if q%64 == 0 {
				var path []topology.NodeID
				var err error
				if lru, ok := p.(*topology.LRUPaths); ok {
					path, err = lru.PathTree(src, dst)
				} else {
					path, err = p.Path(src, dst)
				}
				if err != nil {
					b.Fatal(err)
				}
				acc += float64(len(path))
			} else {
				acc += p.Dist(src, dst)
			}
		}
		benchRoutingSink = acc
	}
	// checkHeap enforces the sweep's memory budget: the live heap after
	// a GC must stay under 2 GB even at 10⁵ routers.
	checkHeap := func(b *testing.B) float64 {
		b.Helper()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > 2<<30 {
			b.Fatalf("live heap %d bytes exceeds the 2 GB routing budget", ms.HeapAlloc)
		}
		return float64(ms.HeapAlloc) / (1 << 20)
	}

	b.Run("Dense/n=100", func(b *testing.B) {
		g := build(2)
		sources := workingSet(g.N(), 256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// ScaleLatencies(1) bumps the cache generation, so every op
			// pays the real O(n²) precompute.
			if err := g.ScaleLatencies(1); err != nil {
				b.Fatal(err)
			}
			queryStream(b, g.ShortestPathsLatency(), sources, 10*g.N())
		}
		b.ReportMetric(checkHeap(b), "heapMB")
	})
	for levels := 2; levels <= 5; levels++ {
		g := build(levels)
		queries := 10 * g.N()
		b.Run(fmt.Sprintf("LRU/n=%d", g.N()), func(b *testing.B) {
			sources := workingSet(g.N(), 256)
			capacity := 320
			if capacity > g.N() {
				capacity = g.N()
			}
			var misses uint64
			var lru *topology.LRUPaths
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lru = topology.NewLRUPaths(g, capacity)
				lru.Warm(sources, 0)
				queryStream(b, lru, sources, queries)
				_, misses, _ = lru.Stats()
			}
			b.StopTimer()
			b.ReportMetric(float64(misses), "misses/op")
			b.ReportMetric(float64(queries), "queries/op")
			// Measure while the cache is still live so heapMB reflects
			// the resident shortest-path trees, not post-GC garbage.
			b.ReportMetric(checkHeap(b), "heapMB")
			runtime.KeepAlive(lru)
		})
	}
}

// buildHierGraph expands the scale-sweep hierarchy to exactly 10^levels
// routers: 10, +90, +900, +9000, +90000, with latencies shrinking from
// backbone (20 ms) to access (0.5 ms) as the levels descend.
func buildHierGraph(b *testing.B, levels int) *topology.Graph {
	b.Helper()
	allFanouts := []int{10, 9, 10, 10, 10}
	latencies := []float64{20, 5, 2, 1, 0.5}
	spec := make([]topology.HierLevel, levels)
	for i := 0; i < levels; i++ {
		spec[i] = topology.HierLevel{Fanout: allFanouts[i], MeanLatency: latencies[i], Redundancy: 1}
	}
	g, err := topology.Hierarchical("", spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkShardedDES is the parallel-engine scale sweep: hierarchical
// topologies of 10² to 10⁵ routers, partitioned by PartitionGraph into
// 1/2/4/8 shards, driven by synthetic packet cascades — every router
// seeds a 16-hop walk whose each event schedules the next hop at a
// graph neighbor after that link's real latency, so cross-shard sends
// ride genuine cut-edge latencies and the conservative window protocol
// is exercised exactly as the simulator exercises it. It deliberately
// stays at the des layer: the full simulator funnels routing queries
// through a mutex, which would measure lock contention, not the engine.
//
// Reported columns land in the committed BENCH_<date>.json baseline:
// events/s (aggregate throughput), speedup (vs the shards=1 run of the
// same n), xfrac (fraction of events delivered across shard
// boundaries), and cores (GOMAXPROCS — speedup is wall-clock, so on a
// single-core runner it hovers near 1 and only the ≥4-core reading is a
// parallel-scaling claim; TestBenchBaseline gates on it accordingly).
func BenchmarkShardedDES(b *testing.B) {
	const hops = 16
	for levels := 2; levels <= 5; levels++ {
		g := buildHierGraph(b, levels)
		n := g.N()
		// Flatten adjacency once per graph: Neighbors/EdgeLatency
		// allocate and search, which would dominate the event loop.
		nbrs := make([][]topology.NodeID, n)
		lats := make([][]float64, n)
		for r := 0; r < n; r++ {
			id := topology.NodeID(r)
			nbrs[r] = g.Neighbors(id)
			lats[r] = make([]float64, len(nbrs[r]))
			for i, w := range nbrs[r] {
				l, err := g.EdgeLatency(id, w)
				if err != nil {
					b.Fatal(err)
				}
				lats[r][i] = l
			}
		}
		var serialNs float64
		for _, shards := range []int{1, 2, 4, 8} {
			part, err := topology.PartitionGraph(g, shards)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("n=%d/shards=%d", n, shards), func(b *testing.B) {
				var processed, cross uint64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					se, err := des.NewSharded(part.Parts, part.CutLatency)
					if err != nil {
						b.Fatal(err)
					}
					// step builds the event for one hop of a cascade at
					// router r: fire, then schedule the next hop on the
					// neighbor's shard after the connecting link latency.
					var step func(r topology.NodeID, ttl int) func()
					step = func(r topology.NodeID, ttl int) func() {
						sh := se.Shard(int(part.Of[r]))
						return func() {
							if ttl == 0 {
								return
							}
							i := (int(r) + ttl) % len(nbrs[r])
							next := nbrs[r][i]
							if err := sh.ScheduleTo(int(part.Of[next]), lats[r][i], step(next, ttl-1)); err != nil {
								panic(err)
							}
						}
					}
					for r := 0; r < n; r++ {
						// Stagger starts so the first window is not one
						// synchronized burst at t=0.
						if err := se.Shard(int(part.Of[r])).At(float64(r%97)*0.01, step(topology.NodeID(r), hops)); err != nil {
							b.Fatal(err)
						}
					}
					se.Run()
					processed, cross = se.Processed(), se.CrossShardEvents()
					if want := uint64(n) * (hops + 1); processed != want {
						b.Fatalf("processed %d events, want %d", processed, want)
					}
				}
				b.StopTimer()
				benchShardSink = processed
				nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				if shards == 1 {
					serialNs = nsPerOp
				}
				b.ReportMetric(float64(processed)/(nsPerOp/1e9), "events/s")
				b.ReportMetric(serialNs/nsPerOp, "speedup")
				b.ReportMetric(float64(cross)/float64(processed), "xfrac")
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
			})
		}
	}
}

// benchShardSink prevents dead-code elimination of cascade runs.
var benchShardSink uint64

// benchTopoSink prevents dead-code elimination of dataset construction.
var benchTopoSink []*topology.Graph

// BenchmarkTopologyAll measures handing out the four calibrated
// evaluation datasets. The first call ever pays the memoized build
// (seed search + calibration); steady state is four clones sharing the
// precomputed routing caches.
func BenchmarkTopologyAll(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchTopoSink = topology.All()
	}
}

// Example demonstrates the one-call provisioning flow.
func Example() {
	cfg := Model{
		S: 0.8, N: 1e6, C: 1e3, Routers: 20,
		Lat:      LatencyFromGamma(1, 2.2842, 5),
		UnitCost: 26.7, Alpha: 0.8, Amortization: 1e6,
	}
	g, err := cfg.OptimalGains()
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal coordination level: %.2f\n", g.Level)
	// Output: optimal coordination level: 0.93
}
