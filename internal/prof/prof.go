// Package prof wires the standard -cpuprofile/-memprofile flag pair
// into a command: start profiling at the top of main, defer the stop.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes an allocation heap
// profile to memPath (when non-empty). Either path may be empty; the
// stop function is always non-nil and must be called before exit for
// the profiles to be complete.
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: starting cpu profile: %w", err)
		}
		cpuFile = f
	}
	stop := func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: closing cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: creating mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: writing mem profile: %w", err)
			}
		}
		return nil
	}
	return stop, nil
}
