// Package catalog models the content universe of a content-centric
// network: N equally sized content objects identified by popularity rank,
// each carrying a CCN-style hierarchical name. The unit-size assumption
// follows the paper's Section III-A (contents are segmented into
// individually named, uniformly sized objects, as CCN/NDN and BitTorrent
// style systems do).
package catalog

import (
	"fmt"
	"strconv"
	"strings"
)

// ID identifies a content object by its global popularity rank, starting
// at 1 (rank 1 = most popular). The zero ID is invalid.
type ID int64

// Valid reports whether the ID is a usable rank.
func (id ID) Valid() bool { return id >= 1 }

// Catalog describes a universe of n ranked content objects. The zero
// value is an empty catalog.
type Catalog struct {
	n      int64
	prefix string
}

// New returns a catalog of n contents named under the given CCN prefix
// (e.g. "/example/videos"). The prefix must start with '/'.
func New(n int64, prefix string) (*Catalog, error) {
	if n < 1 {
		return nil, fmt.Errorf("catalog: size must be >= 1, got %d", n)
	}
	if !strings.HasPrefix(prefix, "/") || strings.HasSuffix(prefix, "/") {
		return nil, fmt.Errorf("catalog: prefix must start with '/' and not end with '/', got %q", prefix)
	}
	return &Catalog{n: n, prefix: prefix}, nil
}

// Size returns the number of contents N.
func (c *Catalog) Size() int64 { return c.n }

// Prefix returns the catalog's CCN name prefix.
func (c *Catalog) Prefix() string { return c.prefix }

// Contains reports whether the catalog holds the given rank.
func (c *Catalog) Contains(id ID) bool { return id >= 1 && int64(id) <= c.n }

// Name returns the hierarchical CCN name of the content with the given
// rank, e.g. "/example/videos/obj/0000000042".
func (c *Catalog) Name(id ID) (string, error) {
	if !c.Contains(id) {
		return "", fmt.Errorf("catalog: rank %d outside [1, %d]", id, c.n)
	}
	return fmt.Sprintf("%s/obj/%010d", c.prefix, id), nil
}

// Parse inverts Name, returning the rank encoded in a content name.
func (c *Catalog) Parse(name string) (ID, error) {
	rest, ok := strings.CutPrefix(name, c.prefix+"/obj/")
	if !ok {
		return 0, fmt.Errorf("catalog: name %q not under prefix %q", name, c.prefix)
	}
	v, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("catalog: name %q has malformed rank: %w", name, err)
	}
	id := ID(v)
	if !c.Contains(id) {
		return 0, fmt.Errorf("catalog: rank %d outside [1, %d]", id, c.n)
	}
	return id, nil
}

// Range calls fn for each rank in [from, to] (inclusive, clamped to the
// catalog) until fn returns false.
func (c *Catalog) Range(from, to ID, fn func(ID) bool) {
	if from < 1 {
		from = 1
	}
	if int64(to) > c.n {
		to = ID(c.n)
	}
	for id := from; id <= to; id++ {
		if !fn(id) {
			return
		}
	}
}
