package catalog

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		n       int64
		prefix  string
		wantErr bool
	}{
		{"valid", 100, "/cdn/videos", false},
		{"zero size", 0, "/cdn", true},
		{"negative size", -5, "/cdn", true},
		{"no leading slash", 10, "cdn", true},
		{"trailing slash", 10, "/cdn/", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.n, tt.prefix)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%d, %q) error = %v, wantErr %v", tt.n, tt.prefix, err, tt.wantErr)
			}
		})
	}
}

func TestNameParseRoundTrip(t *testing.T) {
	c, err := New(1000, "/example/data")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []ID{1, 42, 1000} {
		name, err := c.Name(id)
		if err != nil {
			t.Fatalf("Name(%d): %v", id, err)
		}
		back, err := c.Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if back != id {
			t.Errorf("round trip %d -> %q -> %d", id, name, back)
		}
	}
}

func TestNameOutOfRange(t *testing.T) {
	c, _ := New(10, "/p")
	for _, id := range []ID{0, -1, 11} {
		if _, err := c.Name(id); err == nil {
			t.Errorf("Name(%d) should fail", id)
		}
	}
}

func TestParseErrors(t *testing.T) {
	c, _ := New(10, "/p")
	for _, name := range []string{"/q/obj/0000000001", "/p/obj/notanumber", "/p/obj/0000000999", "/p/0000000001"} {
		if _, err := c.Parse(name); err == nil {
			t.Errorf("Parse(%q) should fail", name)
		}
	}
}

func TestContains(t *testing.T) {
	c, _ := New(5, "/p")
	if !c.Contains(1) || !c.Contains(5) {
		t.Error("boundary ranks should be contained")
	}
	if c.Contains(0) || c.Contains(6) {
		t.Error("out-of-range ranks should not be contained")
	}
}

func TestRange(t *testing.T) {
	c, _ := New(10, "/p")
	var got []ID
	c.Range(-5, 100, func(id ID) bool {
		got = append(got, id)
		return true
	})
	if len(got) != 10 || got[0] != 1 || got[9] != 10 {
		t.Errorf("Range clamping wrong: %v", got)
	}
	got = got[:0]
	c.Range(3, 8, func(id ID) bool {
		got = append(got, id)
		return len(got) < 2 // early stop
	})
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("Range early stop wrong: %v", got)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	c, _ := New(1_000_000, "/cdn/v1")
	f := func(raw uint32) bool {
		id := ID(raw%1_000_000 + 1)
		name, err := c.Name(id)
		if err != nil {
			return false
		}
		back, err := c.Parse(name)
		return err == nil && back == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIDValid(t *testing.T) {
	if ID(0).Valid() || ID(-1).Valid() {
		t.Error("non-positive IDs must be invalid")
	}
	if !ID(1).Valid() {
		t.Error("ID 1 must be valid")
	}
}
