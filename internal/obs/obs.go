// Package obs is the live observability surface of the command-line
// tools: a lock-free Progress tracker the run loops update, and an
// HTTP server exposing run progress plus the latest metrics snapshot
// in the Prometheus text format, with pprof handlers alongside — one
// mux, one port, opt-in via -http.
//
// Concurrency model: the simulator's Registry is single-threaded, so
// the serving goroutine never touches a live registry. Publishers call
// Publish with an immutable RegistrySnapshot; /metrics renders the
// latest published snapshot (if any) via metrics.WritePrometheus.
// Progress counters are plain atomics updated from any goroutine.
package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"ccncoord/internal/metrics"
	"ccncoord/internal/timeline"
)

// HealthState is the readiness of the process behind the mux, the
// signal /healthz reports to orchestration probes. It is NOT liveness:
// the mux answering at all proves the process is alive; the state says
// whether it is safe to send work.
type HealthState int

const (
	// HealthInitializing is the boot state: the mux is up but the
	// run/daemon behind it has not finished setting up. Probes get 503
	// so orchestrators do not route work to a half-built process.
	HealthInitializing HealthState = iota
	// HealthReady means the process is serving normally.
	HealthReady
	// HealthDraining means a graceful shutdown is in progress: no new
	// work is admitted, in-flight work is finishing.
	HealthDraining
	// HealthFailed means the run or daemon hit a terminal error; the
	// process may still answer probes while it reports and exits.
	HealthFailed
)

// String returns the state's probe-body name.
func (s HealthState) String() string {
	switch s {
	case HealthInitializing:
		return "initializing"
	case HealthReady:
		return "ok"
	case HealthDraining:
		return "draining"
	case HealthFailed:
		return "failed"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// Health is the mutable readiness the /healthz endpoint reports. All
// methods are safe for concurrent use. The zero value reports
// HealthInitializing; construct with NewHealth.
type Health struct {
	mu     sync.Mutex
	state  HealthState
	reason string
}

// NewHealth returns a health tracker in the initializing state.
func NewHealth() *Health { return &Health{} }

// Set moves the tracker to the given state with an optional reason
// (shown in the probe body on non-ready states).
func (h *Health) Set(state HealthState, reason string) {
	h.mu.Lock()
	h.state, h.reason = state, reason
	h.mu.Unlock()
}

// Ready marks the process ready to serve.
func (h *Health) Ready() { h.Set(HealthReady, "") }

// Draining marks a graceful shutdown in progress.
func (h *Health) Draining(reason string) { h.Set(HealthDraining, reason) }

// Fail marks a terminal run/daemon failure.
func (h *Health) Fail(reason string) { h.Set(HealthFailed, reason) }

// State returns the current state and reason.
func (h *Health) State() (HealthState, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state, h.reason
}

// ServeHTTP implements the /healthz probe: 200 "ok" when ready, 503
// with "<state>: <reason>" otherwise, so orchestrators and load
// balancers see initialization, drain, and failure as not-ready
// instead of the historical unconditional "ok".
func (h *Health) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	state, reason := h.State()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if state == HealthReady {
		fmt.Fprintln(w, "ok")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	if reason != "" {
		fmt.Fprintf(w, "%s: %s\n", state, reason)
		return
	}
	fmt.Fprintln(w, state)
}

// Progress tracks a run's live counters. All methods are safe for
// concurrent use; the zero value is NOT ready (construct with
// NewProgress so the rate baseline is set).
type Progress struct {
	start time.Time

	artifactsTotal atomic.Int64
	artifactsDone  atomic.Int64
	simsActive     atomic.Int64
	simsDone       atomic.Int64
	requestsDone   atomic.Int64

	snap atomic.Pointer[metrics.RegistrySnapshot]
	tl   atomic.Pointer[timeline.Ring]
}

// NewProgress returns a progress tracker with the rate baseline at
// now.
func NewProgress() *Progress {
	return &Progress{start: time.Now()}
}

// SetArtifactsTotal declares how many artifacts the run will render.
func (p *Progress) SetArtifactsTotal(n int) { p.artifactsTotal.Store(int64(n)) }

// ArtifactDone records one completed artifact.
func (p *Progress) ArtifactDone() { p.artifactsDone.Add(1) }

// SimStarted records one simulation entering a worker.
func (p *Progress) SimStarted() { p.simsActive.Add(1) }

// SimFinished records one simulation leaving its worker after serving
// the given number of measured requests.
func (p *Progress) SimFinished(requests int64) {
	p.simsActive.Add(-1)
	p.simsDone.Add(1)
	p.requestsDone.Add(requests)
}

// Publish makes snap the snapshot /metrics renders. The caller must
// not mutate snap afterwards.
func (p *Progress) Publish(snap *metrics.RegistrySnapshot) { p.snap.Store(snap) }

// Snapshot returns the last published metrics snapshot, or nil.
func (p *Progress) Snapshot() *metrics.RegistrySnapshot { return p.snap.Load() }

// AttachTimeline mirrors the telemetry ring's series into /metrics:
// once attached, every exposition appends the timeline-derived
// counters and latest-epoch gauges (see metrics.WriteTimelinePrometheus).
func (p *Progress) AttachTimeline(r *timeline.Ring) { p.tl.Store(r) }

// Timeline returns the attached telemetry ring, or nil.
func (p *Progress) Timeline() *timeline.Ring { return p.tl.Load() }

// writeProgress renders the progress gauges in Prometheus text form.
func (p *Progress) writeProgress(w http.ResponseWriter) {
	elapsed := time.Since(p.start).Seconds()
	requests := p.requestsDone.Load()
	var rate float64
	if elapsed > 0 {
		rate = float64(requests) / elapsed
	}
	for _, g := range []struct {
		name string
		val  string
	}{
		{"ccncoord_run_artifacts_total", fmt.Sprintf("%d", p.artifactsTotal.Load())},
		{"ccncoord_run_artifacts_done", fmt.Sprintf("%d", p.artifactsDone.Load())},
		{"ccncoord_run_sims_active", fmt.Sprintf("%d", p.simsActive.Load())},
		{"ccncoord_run_sims_done", fmt.Sprintf("%d", p.simsDone.Load())},
		{"ccncoord_run_requests_done", fmt.Sprintf("%d", requests)},
		{"ccncoord_run_requests_per_second", fmt.Sprintf("%g", rate)},
		{"ccncoord_run_uptime_seconds", fmt.Sprintf("%g", elapsed)},
	} {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", g.name, g.name, g.val)
	}
}

// NewMux builds the observability mux: /metrics (progress gauges plus
// the latest published registry snapshot), /healthz driven by the given
// health tracker, and the pprof suite under /debug/pprof/. A nil health
// yields a tracker pre-marked ready, preserving the old always-ok probe
// for callers with no lifecycle to report — callers that initialize,
// drain, or fail should pass their own tracker and drive it.
func NewMux(p *Progress, h *Health) *http.ServeMux {
	if h == nil {
		h = NewHealth()
		h.Ready()
	}
	mux := http.NewServeMux()
	mux.Handle("/healthz", h)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		p.writeProgress(w)
		if snap := p.Snapshot(); snap != nil {
			// Render errors here are client-connection failures; the
			// snapshot itself cannot fail to serialize.
			_ = metrics.WritePrometheus(w, snap, "ccncoord_sim")
		}
		if ring := p.Timeline(); ring != nil {
			_ = metrics.WriteTimelinePrometheus(w, ring.Snapshot(), "ccncoord_timeline")
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves the mux in a
// background goroutine. It returns the bound address — useful with
// port 0 — and a shutdown function. Serving errors after shutdown are
// suppressed; asynchronous serve failures surface on shutdown.
func Start(addr string, handler http.Handler) (string, func(context.Context) error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
		close(errc)
	}()
	shutdown := func(ctx context.Context) error {
		err := srv.Shutdown(ctx)
		if serr := <-errc; err == nil && serr != nil {
			err = serr
		}
		return err
	}
	return ln.Addr().String(), shutdown, nil
}
