package obs

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ccncoord/internal/metrics"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMuxEndpoints(t *testing.T) {
	p := NewProgress()
	p.SetArtifactsTotal(7)
	p.ArtifactDone()
	p.SimStarted()
	p.SimFinished(1500)

	srv := httptest.NewServer(NewMux(p, nil))
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: code %d body %q", code, body)
	}

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: code %d", code)
	}
	for _, want := range []string{
		"ccncoord_run_artifacts_total 7",
		"ccncoord_run_artifacts_done 1",
		"ccncoord_run_sims_active 0",
		"ccncoord_run_sims_done 1",
		"ccncoord_run_requests_done 1500",
		"ccncoord_run_requests_per_second",
		"ccncoord_run_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "ccncoord_sim_") {
		t.Error("registry metrics served before any snapshot was published")
	}

	// Publish a snapshot; the next scrape includes it.
	r := metrics.NewRegistry()
	r.Counter("served_by").Add("local", 3)
	snap := r.Snapshot()
	p.Publish(&snap)
	if _, body := get(t, srv, "/metrics"); !strings.Contains(body, `ccncoord_sim_served_by_total{name="local"} 3`) {
		t.Errorf("/metrics missing published registry metric:\n%s", body)
	}

	if code, body := get(t, srv, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/: code %d", code)
	}
}

func TestHealthzReadiness(t *testing.T) {
	h := NewHealth()
	srv := httptest.NewServer(NewMux(NewProgress(), h))
	defer srv.Close()

	// Boot: the mux is up but the process behind it is not ready.
	if code, body := get(t, srv, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "initializing") {
		t.Errorf("initializing probe: code %d body %q", code, body)
	}

	h.Ready()
	if code, body := get(t, srv, "/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("ready probe: code %d body %q", code, body)
	}

	h.Draining("shutdown requested")
	if code, body := get(t, srv, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining: shutdown requested") {
		t.Errorf("draining probe: code %d body %q", code, body)
	}

	h.Fail("engine error")
	if code, body := get(t, srv, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "failed: engine error") {
		t.Errorf("failed probe: code %d body %q", code, body)
	}

	if st, reason := h.State(); st != HealthFailed || reason != "engine error" {
		t.Errorf("State() = %v, %q", st, reason)
	}
}

func TestHealthzNilDefaultsReady(t *testing.T) {
	// Callers with no lifecycle (nil health) keep the historical
	// always-ok probe.
	srv := httptest.NewServer(NewMux(NewProgress(), nil))
	defer srv.Close()
	if code, body := get(t, srv, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("nil-health probe: code %d body %q", code, body)
	}
}

func TestStartShutdown(t *testing.T) {
	p := NewProgress()
	addr, shutdown, err := Start("127.0.0.1:0", NewMux(p, nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz over Start: code %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still serving after shutdown")
	}
}
