// The /timeline endpoint: the telemetry ring served as a JSON array,
// with ?since=E incremental reads and ?follow=1 long-polling. The
// handler obeys the same lifecycle discipline as /healthz — 503 with
// the health reason while the process is initializing or failed — but
// unlike admission it stays readable while draining, so a watcher can
// observe a shutdown's final epochs complete.
package obs

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ccncoord/internal/timeline"
)

// followTimeout caps one ?follow=1 long-poll; after it, the handler
// answers with whatever is available (possibly an empty array) so
// clients on naive HTTP stacks are never parked forever.
const followTimeout = 25 * time.Second

// TimelineHandler serves ring as GET /timeline. Query parameters:
//
//	since=E   only records with epoch > E (default: all retained)
//	follow=1  when nothing is newer than since, block until the next
//	          append, the follow timeout, or client disconnect
//
// A nil health serves unconditionally; otherwise initializing/failed
// answer 503 with the probe body, and ready/draining serve.
func TimelineHandler(ring *timeline.Ring, h *Health) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if h != nil {
			state, reason := h.State()
			if state == HealthInitializing || state == HealthFailed {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				w.WriteHeader(http.StatusServiceUnavailable)
				if reason != "" {
					fmt.Fprintf(w, "%s: %s\n", state, reason)
				} else {
					fmt.Fprintln(w, state)
				}
				return
			}
		}
		since := int64(-1)
		if v := r.URL.Query().Get("since"); v != "" {
			parsed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad since %q: %v", v, err), http.StatusBadRequest)
				return
			}
			since = parsed
		}
		records := ring.Since(since)
		if len(records) == 0 && r.URL.Query().Get("follow") == "1" {
			// Arm the wait channel before re-reading: an append between
			// the first read and the Wait call closes this channel, so
			// the select below never misses it.
			wait := ring.Wait()
			if records = ring.Since(since); len(records) == 0 {
				timer := time.NewTimer(followTimeout)
				select {
				case <-wait:
					records = ring.Since(since)
				case <-timer.C:
				case <-r.Context().Done():
					timer.Stop()
					return
				}
				timer.Stop()
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = timeline.WriteJSON(w, records)
	})
}
