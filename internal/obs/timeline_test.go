package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ccncoord/internal/timeline"
)

func timelineGet(t *testing.T, h http.Handler, target string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestTimelineHandlerServesRecords(t *testing.T) {
	ring := timeline.NewRing(4)
	ring.Append(timeline.EpochRecord{Epoch: 1, Messages: 10})
	ring.Append(timeline.EpochRecord{Epoch: 2, Messages: 20})
	h := TimelineHandler(ring, nil)

	code, body := timelineGet(t, h, "/timeline")
	if code != http.StatusOK {
		t.Fatalf("GET /timeline = %d, want 200", code)
	}
	if !strings.Contains(body, `"epoch": 1`) || !strings.Contains(body, `"epoch": 2`) {
		t.Errorf("body missing records:\n%s", body)
	}
	if code, body := timelineGet(t, h, "/timeline?since=1"); code != http.StatusOK ||
		strings.Contains(body, `"epoch": 1`) || !strings.Contains(body, `"epoch": 2`) {
		t.Errorf("?since=1 = (%d, %q), want only epoch 2", code, body)
	}
	if code, body := timelineGet(t, h, "/timeline?since=2"); code != http.StatusOK || body != "[]\n" {
		t.Errorf("?since=2 = (%d, %q), want empty array", code, body)
	}
	if code, _ := timelineGet(t, h, "/timeline?since=two"); code != http.StatusBadRequest {
		t.Errorf("?since=two = %d, want 400", code)
	}
}

func TestTimelineHandlerMethodNotAllowed(t *testing.T) {
	h := TimelineHandler(timeline.NewRing(1), nil)
	req := httptest.NewRequest(http.MethodPost, "/timeline", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); !strings.Contains(allow, "GET") {
		t.Errorf("Allow = %q, want GET", allow)
	}
}

// TestTimelineHandlerHealthGate mirrors the lifecycle contract: 503
// with the probe body while initializing or failed, serving while
// ready AND while draining.
func TestTimelineHandlerHealthGate(t *testing.T) {
	ring := timeline.NewRing(4)
	ring.Append(timeline.EpochRecord{Epoch: 1})
	health := NewHealth()
	h := TimelineHandler(ring, health)

	if code, body := timelineGet(t, h, "/timeline"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "initializing") {
		t.Errorf("initializing = (%d, %q), want 503 initializing", code, body)
	}
	health.Ready()
	if code, _ := timelineGet(t, h, "/timeline"); code != http.StatusOK {
		t.Errorf("ready = %d, want 200", code)
	}
	health.Draining("shutdown requested")
	if code, body := timelineGet(t, h, "/timeline"); code != http.StatusOK ||
		!strings.Contains(body, `"epoch": 1`) {
		t.Errorf("draining = (%d, %q), want the timeline to stay readable", code, body)
	}
	health.Fail("boom")
	if code, body := timelineGet(t, h, "/timeline"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "failed: boom") {
		t.Errorf("failed = (%d, %q), want 503 with the reason", code, body)
	}
}

// TestTimelineHandlerFollowWakes parks a ?follow=1 poll and appends;
// the poll must return the fresh record.
func TestTimelineHandlerFollowWakes(t *testing.T) {
	ring := timeline.NewRing(4)
	srv := httptest.NewServer(TimelineHandler(ring, nil))
	defer srv.Close()

	done := make(chan string, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/timeline?follow=1")
		if err != nil {
			done <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()

	time.Sleep(50 * time.Millisecond)
	ring.Append(timeline.EpochRecord{Epoch: 42, Messages: 7})
	select {
	case body := <-done:
		if !strings.Contains(body, `"epoch": 42`) {
			t.Errorf("follow poll body = %q, want the appended record", body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follow poll never woke on append")
	}
}

// TestTimelineHandlerFollowAppendRace covers the armed-wait window: a
// record appended between the handler's first read and its Wait must
// still be delivered (the handler re-reads after arming).
func TestTimelineHandlerFollowAppendRace(t *testing.T) {
	ring := timeline.NewRing(4)
	srv := httptest.NewServer(TimelineHandler(ring, nil))
	defer srv.Close()
	// Appending before the request makes Since non-empty immediately —
	// the degenerate case of the race where follow never parks.
	ring.Append(timeline.EpochRecord{Epoch: 1})
	resp, err := http.Get(srv.URL + "/timeline?follow=1")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), `"epoch": 1`) {
		t.Errorf("follow with data = %q, want immediate record", sb.String())
	}
}

// TestTimelineHandlerFollowClientDisconnect cancels a parked poll and
// expects the handler to return without writing.
func TestTimelineHandlerFollowClientDisconnect(t *testing.T) {
	ring := timeline.NewRing(4)
	srv := httptest.NewServer(TimelineHandler(ring, nil))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/timeline?follow=1", nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("canceled poll returned a response, want a context error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled poll never returned")
	}
}

// TestMetricsIncludesAttachedTimeline wires a ring into Progress and
// checks /metrics carries the timeline series alongside the progress
// gauges.
func TestMetricsIncludesAttachedTimeline(t *testing.T) {
	p := NewProgress()
	ring := timeline.NewRing(4)
	ring.Append(timeline.EpochRecord{Epoch: 5, Messages: 80, BoundMessages: 80})
	p.AttachTimeline(ring)
	mux := NewMux(p, nil)
	code, body := timelineGet(t, mux, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", code)
	}
	for _, want := range []string{
		"ccncoord_run_uptime_seconds",
		"ccncoord_timeline_coord_messages_total 80\n",
		"ccncoord_timeline_epoch 5\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}
