package ccn

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
	"ccncoord/internal/trace"
)

// degradedNet is lineNet plus overlay stores and a stride-1 tracer.
// The directory must be consistent with provision (owners hold what
// the directory advertises), as the coordinated planes the simulator
// builds always are.
func degradedNet(t *testing.T, provision map[topology.NodeID][]catalog.ID, dir Directory) (*des.Engine, *Network, func() string) {
	t.Helper()
	g := topology.New("line3")
	for i := 0; i < 3; i++ {
		g.AddNode("", 0, 0)
	}
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 5)
	cat, err := catalog.New(100, "/t")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr, err := trace.New(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := &des.Engine{}
	net, err := NewNetwork(eng, g, cat, Options{
		AccessLatency: 1,
		Mode:          CacheNone,
		Directory:     dir,
		Tracer:        tr,
		Stores: func(id topology.NodeID) (cache.Store, error) {
			return cache.NewStatic(provision[id])
		},
		DegradedStores: func(id topology.NodeID) (cache.Store, error) {
			return cache.NewLRU(2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AttachOriginAt(0, 50); err != nil {
		t.Fatal(err)
	}
	dump := func() string {
		if err := tr.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	return eng, net, dump
}

func TestStalePlacementHitsCounted(t *testing.T) {
	prov := map[topology.NodeID][]catalog.ID{2: {7}}
	eng, net, _ := degradedNet(t, prov, staticDir{7: 2})
	// Fresh placements: a directory redirect is not a stale hit.
	res := runOne(t, eng, net, 0, 7)
	if res.ServedBy != ServedPeer {
		t.Fatalf("redirect served by %v, want peer", res.ServedBy)
	}
	if net.StalePlacementHits() != 0 {
		t.Errorf("stale hits with fresh placements = %d, want 0", net.StalePlacementHits())
	}
	net.SetPlacementsStale(true)
	if !net.PlacementsStale() {
		t.Error("PlacementsStale() false after SetPlacementsStale(true)")
	}
	// Routers 0 and 1 each forward toward the stale owner: two stale
	// forwards for one request.
	runOne(t, eng, net, 0, 7)
	if net.StalePlacementHits() != 2 {
		t.Errorf("stale hits after one redirected request = %d, want 2 (one per forwarding router)", net.StalePlacementHits())
	}
	// Non-directory content forwards to the origin without touching
	// placement state: not a stale hit.
	runOne(t, eng, net, 0, 9)
	if net.StalePlacementHits() != 2 {
		t.Errorf("origin forward counted as stale hit: %d", net.StalePlacementHits())
	}
	net.SetPlacementsStale(false)
	runOne(t, eng, net, 0, 7)
	if net.StalePlacementHits() != 2 {
		t.Errorf("stale hits after marking fresh = %d, want 2", net.StalePlacementHits())
	}
}

func TestDegradedOverlayServes(t *testing.T) {
	// The directory points at the origin gateway, so coordinated
	// forwarding and origin forwarding take the same path; the overlay
	// behavior is what distinguishes the modes.
	eng, net, _ := degradedNet(t, nil, staticDir{7: 0})
	if net.Degraded() {
		t.Fatal("network degraded before EnterDegraded")
	}
	net.SetPlacementsStale(true)
	if err := net.EnterDegraded(); err != nil {
		t.Fatal(err)
	}
	if !net.Degraded() {
		t.Fatal("EnterDegraded did not degrade")
	}
	if net.PlacementsStale() {
		t.Error("degraded mode should supersede the stale flag")
	}
	// First request from R2: the directory is bypassed (owner 2 would
	// be a self-loop anyway), the origin serves, and LCE fills the
	// overlay at every router on the return path 0-1-2.
	res := runOne(t, eng, net, 2, 7)
	if res.ServedBy != ServedOrigin {
		t.Fatalf("first degraded request served by %v, want origin", res.ServedBy)
	}
	if net.StalePlacementHits() != 0 {
		t.Errorf("degraded forwards counted as stale hits: %d", net.StalePlacementHits())
	}
	// Second request hits R2's own overlay copy.
	res = runOne(t, eng, net, 2, 7)
	if res.ServedBy != ServedLocal || res.Hops != 0 {
		t.Errorf("second degraded request: served=%v hops=%d, want local overlay hit", res.ServedBy, res.Hops)
	}
	if net.DegradedServes() != 1 {
		t.Errorf("DegradedServes = %d, want 1", net.DegradedServes())
	}
	// EnterDegraded is idempotent and keeps existing overlay contents.
	if err := net.EnterDegraded(); err != nil {
		t.Fatal(err)
	}
	res = runOne(t, eng, net, 2, 7)
	if res.ServedBy != ServedLocal {
		t.Error("re-entering degraded mode dropped the overlays")
	}

	// Exit flushes every overlay copy: one per router on the path.
	flushed := net.ExitDegraded()
	if flushed != 3 {
		t.Errorf("ExitDegraded flushed %d entries, want 3 (one per on-path router)", flushed)
	}
	if net.Degraded() {
		t.Error("still degraded after ExitDegraded")
	}
	if net.ExitDegraded() != 0 {
		t.Error("second ExitDegraded should be a no-op")
	}
	// Back to coordinated operation: the overlay is gone, so the same
	// request goes to the origin again (static stores are empty).
	res = runOne(t, eng, net, 2, 7)
	if res.ServedBy != ServedOrigin {
		t.Errorf("post-exit request served by %v, want origin (overlay flushed)", res.ServedBy)
	}
	if got := net.DegradedServes(); got != 2 {
		t.Errorf("DegradedServes after exit = %d, want 2 (counter is cumulative)", got)
	}
}

func TestEnterDegradedRequiresStores(t *testing.T) {
	eng, net := lineNet(t, nil, nil, CacheNone)
	_ = eng
	if err := net.EnterDegraded(); err == nil {
		t.Error("EnterDegraded without Options.DegradedStores accepted")
	}
	if net.Degraded() {
		t.Error("failed EnterDegraded left the plane degraded")
	}
}

func TestDegradedModeTraceEvents(t *testing.T) {
	eng, net, dump := degradedNet(t, nil, nil)
	if err := net.EnterDegraded(); err != nil {
		t.Fatal(err)
	}
	runOne(t, eng, net, 2, 7)
	net.ExitDegraded()
	if err := net.Request(2, 7, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	var modes []trace.Event
	for _, line := range strings.Split(strings.TrimSpace(dump()), "\n") {
		var ev trace.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if ev.Kind == trace.KindMode {
			modes = append(modes, ev)
		}
	}
	if len(modes) != 2 {
		t.Fatalf("got %d mode events, want 2 (enter, exit): %+v", len(modes), modes)
	}
	if modes[0].Detail != "degraded-enter" || modes[0].Router != -1 {
		t.Errorf("first mode event %+v, want degraded-enter on router -1", modes[0])
	}
	if modes[1].Detail != "degraded-exit" {
		t.Errorf("second mode event %+v, want degraded-exit", modes[1])
	}
	if modes[1].N != 3 {
		t.Errorf("degraded-exit reports %d flushed entries, want 3", modes[1].N)
	}
}
