package ccn

import (
	"math"
	"testing"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

func TestNodeStatsCounting(t *testing.T) {
	prov := map[topology.NodeID][]catalog.ID{2: {7}}
	eng, net := lineNet(t, prov, nil, CacheNone)

	// One local hit at R2, one origin fetch from R2 (for content 9).
	runOne(t, eng, net, 2, 7)
	runOne(t, eng, net, 2, 9)

	s2, err := net.Stats(2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.CSHits != 1 || s2.CSMisses != 1 {
		t.Errorf("R2 hits/misses = %d/%d, want 1/1", s2.CSHits, s2.CSMisses)
	}
	if s2.Forwarded != 1 {
		t.Errorf("R2 forwarded = %d, want 1", s2.Forwarded)
	}
	if got := s2.HitRatio(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("R2 hit ratio = %v, want 0.5", got)
	}
	if s2.PITPeak != 1 || s2.PITPending != 0 {
		t.Errorf("R2 PIT peak/pending = %d/%d, want 1/0", s2.PITPeak, s2.PITPending)
	}
	// The origin fetch traversed R1 and R0, both missing.
	for _, r := range []topology.NodeID{0, 1} {
		s, err := net.Stats(r)
		if err != nil {
			t.Fatal(err)
		}
		if s.CSMisses != 1 || s.CSHits != 0 {
			t.Errorf("R%d hits/misses = %d/%d, want 0/1", r, s.CSHits, s.CSMisses)
		}
	}
}

func TestNodeStatsAggregation(t *testing.T) {
	eng, net := lineNet(t, nil, nil, CacheNone)
	for i := 0; i < 4; i++ {
		if err := net.Request(2, 7, nil); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	s, err := net.Stats(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Aggregated != 3 {
		t.Errorf("aggregated = %d, want 3 (one fetch, three collapsed)", s.Aggregated)
	}
	if s.Forwarded != 1 {
		t.Errorf("forwarded = %d, want 1", s.Forwarded)
	}
}

func TestAllStats(t *testing.T) {
	_, net := lineNet(t, nil, nil, CacheNone)
	all := net.AllStats()
	if len(all) != 3 {
		t.Fatalf("AllStats = %d entries, want 3", len(all))
	}
	for i, s := range all {
		if s.Router != topology.NodeID(i) {
			t.Errorf("entry %d has router %d", i, s.Router)
		}
	}
	if _, err := net.Stats(99); err == nil {
		t.Error("unknown router should fail")
	}
}

func TestHitRatioNoTraffic(t *testing.T) {
	if got := (NodeStats{}).HitRatio(); got != 0 {
		t.Errorf("empty HitRatio = %v, want 0", got)
	}
}

// triangleNet builds a triangle with unequal latencies so a link failure
// visibly reroutes traffic.
func triangleNet(t *testing.T) (*Network, func(router topology.NodeID, id catalog.ID) RequestResult) {
	t.Helper()
	g := topology.New("tri")
	for i := 0; i < 3; i++ {
		g.AddNode("", 0, 0)
	}
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 5)
	g.MustAddEdge(0, 2, 5)
	cat, err := catalog.New(10, "/t")
	if err != nil {
		t.Fatal(err)
	}
	prov := map[topology.NodeID][]catalog.ID{2: {7}}
	eng := &des.Engine{}
	net, err := NewNetwork(eng, g, cat, Options{
		AccessLatency: 1,
		Stores: func(id topology.NodeID) (cache.Store, error) {
			return cache.NewStatic(prov[id])
		},
		Directory: staticDir{7: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AttachOriginAt(0, 50); err != nil {
		t.Fatal(err)
	}
	run := func(router topology.NodeID, id catalog.ID) RequestResult {
		var got *RequestResult
		if err := net.Request(router, id, func(r RequestResult) { got = &r }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if got == nil {
			t.Fatal("request never completed")
		}
		return *got
	}
	return net, run
}

func TestFailLinkReroutes(t *testing.T) {
	net, run := triangleNet(t)
	// Direct route R0 -> R2: 1 hop.
	before := run(0, 7)
	if before.Hops != 1 {
		t.Fatalf("before failure: hops = %d, want 1", before.Hops)
	}
	if err := net.FailLink(0, 2); err != nil {
		t.Fatal(err)
	}
	// Now R0 reaches R2 via R1: 2 hops.
	after := run(0, 7)
	if after.Hops != 2 {
		t.Errorf("after failure: hops = %d, want 2", after.Hops)
	}
	if after.Latency() <= before.Latency() {
		t.Errorf("rerouted latency %v should exceed direct %v", after.Latency(), before.Latency())
	}
}

func TestFailLinkErrors(t *testing.T) {
	net, run := triangleNet(t)
	if err := net.FailLink(0, 0); err == nil {
		t.Error("failing a non-existent link should fail")
	}
	// Disconnecting failure is refused: drop two links first.
	if err := net.FailLink(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.FailLink(0, 1); err == nil {
		t.Error("disconnecting failure should be refused")
	}
	// The domain still works.
	res := run(0, 7)
	if res.ServedBy != ServedPeer {
		t.Errorf("after refused failure: served by %v", res.ServedBy)
	}
}
