package ccn

import (
	"testing"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

// queueNet builds a 2-router line with the given link rate; content 1
// is stored at router 1, so every request from router 0 crosses the
// single link.
func queueNet(t *testing.T, linkRate float64) (*des.Engine, *Network) {
	t.Helper()
	g := topology.New("pair")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 0)
	g.MustAddEdge(0, 1, 5)
	cat, err := catalog.New(10, "/t")
	if err != nil {
		t.Fatal(err)
	}
	eng := &des.Engine{}
	net, err := NewNetwork(eng, g, cat, Options{
		AccessLatency: 1,
		LinkRate:      linkRate,
		Stores: func(id topology.NodeID) (cache.Store, error) {
			if id == 1 {
				return cache.NewStatic([]catalog.ID{1})
			}
			return cache.NewStatic(nil)
		},
		Directory: staticDir{1: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AttachOriginAt(1, 50); err != nil {
		t.Fatal(err)
	}
	return eng, net
}

func TestLinkRateValidation(t *testing.T) {
	g := topology.New("g")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 0)
	g.MustAddEdge(0, 1, 1)
	cat, _ := catalog.New(10, "/t")
	stores := func(topology.NodeID) (cache.Store, error) { return cache.NewLRU(1) }
	if _, err := NewNetwork(&des.Engine{}, g, cat, Options{Stores: stores, LinkRate: -1}); err == nil {
		t.Error("negative link rate should fail")
	}
}

// TestSerializationDelay: a single request on an idle 0.5 content/ms
// link pays exactly the 2 ms serialization on the data return.
func TestSerializationDelay(t *testing.T) {
	eng, net := queueNet(t, 0.5)
	var lat float64
	if err := net.Request(0, 1, func(r RequestResult) { lat = r.Latency() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// 2*access (2) + 2*propagation (10) + serialization (2) = 14.
	if lat != 14 {
		t.Errorf("latency = %v, want 14", lat)
	}
	if net.QueuedPackets() != 0 {
		t.Errorf("idle link recorded queueing: %d", net.QueuedPackets())
	}
}

// TestFIFOQueueing: burst arrivals serialize one after another, so
// completion latencies spread by the serialization time.
func TestFIFOQueueing(t *testing.T) {
	eng, net := queueNet(t, 0.5) // 2 ms per data packet
	var latencies []float64
	// Aggregation would collapse identical contents; content 1 is the
	// only one stored remotely, so issue distinct client requests that
	// cannot aggregate: they are the same content though... PIT
	// aggregation collapses them into one data packet. Instead issue the
	// burst spaced past the PIT lifetime: send sequential bursts of one.
	// Simpler: three distinct flows for content 1 from router 0 DO
	// aggregate; so test queueing via repeated rounds instead.
	for round := 0; round < 3; round++ {
		at := float64(round) * 0.5 // faster than the link can serialize
		if err := eng.At(at, func() {
			if err := net.Request(0, 1, func(r RequestResult) {
				latencies = append(latencies, r.Latency())
			}); err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(latencies) != 3 {
		t.Fatalf("completed %d", len(latencies))
	}
	// The burst aggregates into one PIT entry and one data packet: the
	// first requester pays the full serialized path (14 ms) while the
	// later ones, having been issued after it, complete faster relative
	// to their own issue times.
	if latencies[0] != 14 {
		t.Errorf("first request latency = %v, want 14", latencies[0])
	}
	for i := 1; i < len(latencies); i++ {
		if latencies[i] > latencies[i-1] {
			t.Errorf("aggregated request %d latency %v exceeds earlier %v",
				i, latencies[i], latencies[i-1])
		}
	}
	// One shared data packet: no queueing events.
	if net.QueuedPackets() != 0 {
		t.Errorf("aggregated burst recorded queueing: %d", net.QueuedPackets())
	}
}

// TestDistinctContentsQueue: distinct contents cannot aggregate, so a
// burst of them measurably queues on the shared link.
func TestDistinctContentsQueue(t *testing.T) {
	g := topology.New("pair")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 0)
	g.MustAddEdge(0, 1, 5)
	cat, err := catalog.New(10, "/t")
	if err != nil {
		t.Fatal(err)
	}
	eng := &des.Engine{}
	stored := []catalog.ID{1, 2, 3, 4, 5}
	dir := staticDir{}
	for _, id := range stored {
		dir[id] = 1
	}
	net, err := NewNetwork(eng, g, cat, Options{
		AccessLatency: 1,
		LinkRate:      0.5,
		Stores: func(id topology.NodeID) (cache.Store, error) {
			if id == 1 {
				return cache.NewStatic(stored)
			}
			return cache.NewStatic(nil)
		},
		Directory: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AttachOriginAt(1, 50); err != nil {
		t.Fatal(err)
	}
	var latencies []float64
	for _, id := range stored {
		if err := net.Request(0, id, func(r RequestResult) {
			latencies = append(latencies, r.Latency())
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(latencies) != 5 {
		t.Fatalf("completed %d", len(latencies))
	}
	// Five data packets serialize at 2 ms each on one link: the last
	// one waits 8 ms, so its latency is 14 + 8 = 22.
	maxLat := 0.0
	for _, l := range latencies {
		if l > maxLat {
			maxLat = l
		}
	}
	if maxLat != 22 {
		t.Errorf("slowest burst latency = %v, want 22", maxLat)
	}
	if net.QueuedPackets() != 4 {
		t.Errorf("queued packets = %d, want 4", net.QueuedPackets())
	}
	if net.MeanQueueingDelay() <= 0 {
		t.Error("no queueing delay recorded")
	}
}

// TestInfiniteCapacityUnchanged: LinkRate 0 reproduces the original
// timing exactly.
func TestInfiniteCapacityUnchanged(t *testing.T) {
	eng, net := queueNet(t, 0)
	var lat float64
	if err := net.Request(0, 1, func(r RequestResult) { lat = r.Latency() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if lat != 12 { // 2*access + 2*propagation
		t.Errorf("latency = %v, want 12", lat)
	}
	if net.MeanQueueingDelay() != 0 {
		t.Error("infinite-capacity fabric recorded queueing")
	}
}
