// Package ccn implements a packet-level content-centric network data
// plane on top of the discrete-event engine: routers with content stores,
// Pending Interest Tables (PIT) with request aggregation, FIB-style
// forwarding along latency-shortest paths, reverse-path data delivery,
// on-path caching modes, and an origin server attachment. The paper's
// analytical model abstracts this machinery; the simulator exists to
// validate the model's steady-state predictions (origin load, tier hit
// ratios, mean latency and hop count) against an executable system.
package ccn

import (
	"fmt"
	"math/rand"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

// ServerKind identifies which tier ultimately served a request.
type ServerKind int

// Tiers, in the model's d0/d1/d2 order.
const (
	ServedLocal  ServerKind = iota // requesting router's own content store
	ServedPeer                     // another router in the domain
	ServedOrigin                   // the origin server
)

// String returns the tier name.
func (k ServerKind) String() string {
	switch k {
	case ServedLocal:
		return "local"
	case ServedPeer:
		return "peer"
	case ServedOrigin:
		return "origin"
	default:
		return fmt.Sprintf("ServerKind(%d)", int(k))
	}
}

// CachingMode selects the on-path caching decision applied to returning
// data.
type CachingMode int

const (
	// CacheNone never admits passing data; used with provisioned
	// (static) stores, which ignore Insert anyway.
	CacheNone CachingMode = iota
	// CacheLCE ("leave copy everywhere") offers data to every router on
	// the return path.
	CacheLCE
	// CacheLCD ("leave copy down") offers data only to the first router
	// below the serving point on the return path.
	CacheLCD
	// CacheProb ("probabilistic caching") offers data to each on-path
	// router independently with probability Options.CacheProbability, a
	// common ICN baseline that thins redundant replicas.
	CacheProb
)

// Directory resolves which router coordinately stores a content, the
// lookup service the coordination protocol maintains.
type Directory interface {
	// Owner returns the router assigned to store id, if any.
	Owner(id catalog.ID) (topology.NodeID, bool)
}

// RequestResult describes one completed content request.
type RequestResult struct {
	Content     catalog.ID
	Router      topology.NodeID // first-hop router of the client
	IssuedAt    float64
	CompletedAt float64
	// Hops is the number of network links (router-router, plus the
	// origin uplink when applicable) between the serving point and the
	// requesting router; 0 for a local hit. Client access links are not
	// counted, matching the paper's motivating example.
	Hops     int
	ServedBy ServerKind
	Server   topology.NodeID // serving router; -1 when served by origin
}

// Latency returns the client-observed request latency.
func (r RequestResult) Latency() float64 { return r.CompletedAt - r.IssuedAt }

// Options configures a Network.
type Options struct {
	// AccessLatency is the one-way client <-> first-hop-router latency
	// (the model's d0 is the round trip of this access hop).
	AccessLatency float64
	// Stores builds the content store for each router. Required.
	Stores func(id topology.NodeID) (cache.Store, error)
	// Mode is the on-path caching decision for returning data.
	Mode CachingMode
	// Directory, when non-nil, lets routers redirect misses to the
	// coordinated owner of a content instead of the origin.
	Directory Directory

	// LossRate is the independent per-transmission drop probability on
	// network links (interests, data, and origin uplink exchanges).
	// Zero means a lossless fabric. Must be in [0, 1).
	LossRate float64
	// RetxTimeout is the per-router interest retransmission timeout
	// (ms): while a PIT entry is unsatisfied, its router re-sends the
	// interest upstream every RetxTimeout. Required when LossRate > 0.
	RetxTimeout float64
	// LossSeed seeds the loss process and the probabilistic caching
	// decision; runs with the same seed are reproducible. Zero selects
	// 1.
	LossSeed int64

	// CacheProbability is the per-router admission probability under
	// CacheProb mode; must lie in (0, 1] when that mode is selected.
	CacheProbability float64

	// LinkRate is the serialization capacity of every link in unit
	// contents per millisecond. Data packets (unit size) occupy a link
	// for 1/LinkRate ms and queue FIFO behind each other per directed
	// link; interests are treated as negligibly small, as in CCN.
	// Zero means infinite capacity (no queueing).
	LinkRate float64
}

// originNeighbor marks the origin uplink in forwarding decisions.
const originNeighbor topology.NodeID = -1

// pendingRequest is a client request waiting in a PIT.
type pendingRequest struct {
	issuedAt float64
	done     func(RequestResult)
}

// pitFace is one downstream requester of a pending interest: either a
// neighboring router or a local client.
type pitFace struct {
	neighbor topology.NodeID // used when request is nil
	request  *pendingRequest // non-nil for client faces
}

// pitEntry aggregates all downstream requesters of one content.
type pitEntry struct {
	faces []pitFace
}

// node is one CCN router: content store plus PIT, with activity
// counters surfaced via Network.Stats.
type node struct {
	id  topology.NodeID
	cs  cache.Store
	pit map[catalog.ID]*pitEntry

	csHits     int64
	csMisses   int64
	aggregated int64
	forwarded  int64
	pitPeak    int
}

// Network is an executable CCN domain over a topology.
type Network struct {
	eng   *des.Engine
	graph *topology.Graph
	lat   *topology.APSP
	nodes []*node
	cat   *catalog.Catalog
	opts  Options

	// Origin attachment: either a gateway router with an uplink, or a
	// uniform per-router uplink.
	originRouter  topology.NodeID
	originLatency float64
	uniformOrigin bool
	attached      bool

	// Counters over the whole run.
	interestTransmissions int64
	dataTransmissions     int64
	droppedInterests      int64
	droppedData           int64
	retransmissions       int64

	// rng drives the loss process; nil on lossless fabrics.
	rng *rand.Rand

	// linkBusy tracks, per directed link, when its transmitter frees up
	// (finite LinkRate only). The origin uplink of router r is keyed as
	// {r, originNeighbor}.
	linkBusy map[[2]topology.NodeID]float64
	// queueingTotal accumulates time data packets spent waiting for
	// link transmitters; queuedPackets counts data transmissions that
	// waited.
	queueingTotal float64
	queuedPackets int64
}

// NewNetwork builds a CCN data plane over the given connected topology.
func NewNetwork(eng *des.Engine, g *topology.Graph, cat *catalog.Catalog, opts Options) (*Network, error) {
	switch {
	case eng == nil:
		return nil, fmt.Errorf("ccn: nil engine")
	case g == nil || g.N() == 0:
		return nil, fmt.Errorf("ccn: empty topology")
	case !g.Connected():
		return nil, fmt.Errorf("ccn: topology %q is not connected", g.Name())
	case cat == nil:
		return nil, fmt.Errorf("ccn: nil catalog")
	case opts.Stores == nil:
		return nil, fmt.Errorf("ccn: Options.Stores is required")
	case opts.AccessLatency < 0:
		return nil, fmt.Errorf("ccn: negative access latency %v", opts.AccessLatency)
	case opts.LossRate < 0 || opts.LossRate >= 1:
		return nil, fmt.Errorf("ccn: loss rate %v outside [0, 1)", opts.LossRate)
	case opts.LossRate > 0 && !(opts.RetxTimeout > 0):
		return nil, fmt.Errorf("ccn: lossy fabric requires a positive retransmission timeout")
	case opts.Mode == CacheProb && !(opts.CacheProbability > 0 && opts.CacheProbability <= 1):
		return nil, fmt.Errorf("ccn: CacheProb mode requires a probability in (0,1], got %v", opts.CacheProbability)
	case opts.LinkRate < 0:
		return nil, fmt.Errorf("ccn: negative link rate %v", opts.LinkRate)
	}
	n := &Network{
		eng:          eng,
		graph:        g,
		lat:          g.ShortestPathsLatency(),
		cat:          cat,
		opts:         opts,
		originRouter: -1,
	}
	if opts.LossRate > 0 || opts.Mode == CacheProb {
		seed := opts.LossSeed
		if seed == 0 {
			seed = 1
		}
		n.rng = rand.New(rand.NewSource(seed))
	}
	if opts.LinkRate > 0 {
		n.linkBusy = make(map[[2]topology.NodeID]float64)
	}
	for _, tn := range g.Nodes() {
		cs, err := opts.Stores(tn.ID)
		if err != nil {
			return nil, fmt.Errorf("ccn: building store for router %d: %w", tn.ID, err)
		}
		if cs == nil {
			return nil, fmt.Errorf("ccn: nil store for router %d", tn.ID)
		}
		n.nodes = append(n.nodes, &node{id: tn.ID, cs: cs, pit: make(map[catalog.ID]*pitEntry)})
	}
	return n, nil
}

// AttachOriginAt places the origin server behind the given gateway
// router with a one-way uplink latency. All origin-bound traffic routes
// through the gateway.
func (n *Network) AttachOriginAt(gateway topology.NodeID, latency float64) error {
	if int(gateway) < 0 || int(gateway) >= len(n.nodes) {
		return fmt.Errorf("ccn: unknown gateway router %d", gateway)
	}
	if !(latency > 0) {
		return fmt.Errorf("ccn: origin uplink latency must be positive, got %v", latency)
	}
	n.originRouter, n.originLatency, n.uniformOrigin, n.attached = gateway, latency, false, true
	return nil
}

// AttachOriginUniform gives every router a direct uplink to the origin
// with the given one-way latency, matching the holistic model's uniform
// d2 abstraction.
func (n *Network) AttachOriginUniform(latency float64) error {
	if !(latency > 0) {
		return fmt.Errorf("ccn: origin uplink latency must be positive, got %v", latency)
	}
	n.originLatency, n.uniformOrigin, n.attached = latency, true, true
	n.originRouter = -1
	return nil
}

// Store returns router id's content store (for pre-population and
// inspection).
func (n *Network) Store(id topology.NodeID) (cache.Store, error) {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		return nil, fmt.Errorf("ccn: unknown router %d", id)
	}
	return n.nodes[id].cs, nil
}

// InterestTransmissions returns the total number of interest packet
// transmissions over network links so far.
func (n *Network) InterestTransmissions() int64 { return n.interestTransmissions }

// DataTransmissions returns the total number of data packet
// transmissions over network links so far.
func (n *Network) DataTransmissions() int64 { return n.dataTransmissions }

// DroppedInterests returns how many interest transmissions the lossy
// fabric discarded.
func (n *Network) DroppedInterests() int64 { return n.droppedInterests }

// DroppedData returns how many data transmissions the lossy fabric
// discarded.
func (n *Network) DroppedData() int64 { return n.droppedData }

// Retransmissions returns how many interest retransmissions timers
// fired for unsatisfied PIT entries.
func (n *Network) Retransmissions() int64 { return n.retransmissions }

// Request schedules a client request for content id at the given router,
// issued at the engine's current time. done fires when the data reaches
// the client.
func (n *Network) Request(router topology.NodeID, id catalog.ID, done func(RequestResult)) error {
	if !n.attached {
		return fmt.Errorf("ccn: origin not attached; call AttachOriginAt or AttachOriginUniform")
	}
	if int(router) < 0 || int(router) >= len(n.nodes) {
		return fmt.Errorf("ccn: unknown router %d", router)
	}
	if !n.cat.Contains(id) {
		return fmt.Errorf("ccn: content %d outside catalog", id)
	}
	if done == nil {
		done = func(RequestResult) {}
	}
	req := &pendingRequest{issuedAt: n.eng.Now(), done: done}
	// The interest reaches the first-hop router after the access
	// latency.
	return n.eng.Schedule(n.opts.AccessLatency, func() {
		n.handleInterest(router, id, pitFace{request: req})
	})
}

// handleInterest processes an interest for id arriving at router nid
// from the given downstream face.
func (n *Network) handleInterest(nid topology.NodeID, id catalog.ID, from pitFace) {
	nd := n.nodes[nid]
	if nd.cs.Lookup(id) {
		// Content store hit: data flows back to the arriving face
		// immediately. Hops accumulate on the way down.
		nd.csHits++
		n.respond(nid, id, from, 0, nid)
		return
	}
	nd.csMisses++
	if entry, ok := nd.pit[id]; ok {
		// Interest aggregation: the content is already on its way.
		nd.aggregated++
		entry.faces = append(entry.faces, from)
		return
	}
	nd.pit[id] = &pitEntry{faces: []pitFace{from}}
	if len(nd.pit) > nd.pitPeak {
		nd.pitPeak = len(nd.pit)
	}
	nd.forwarded++
	n.sendUpstream(nid, id)
	n.armRetx(nid, id)
}

// sendUpstream forwards an interest from nid toward its upstream: the
// coordinated owner if the directory knows one, otherwise the origin.
func (n *Network) sendUpstream(nid topology.NodeID, id catalog.ID) {
	if n.opts.Directory != nil {
		if owner, ok := n.opts.Directory.Owner(id); ok && owner != nid {
			n.forwardInterest(nid, n.lat.Next[nid][owner], id)
			return
		}
	}
	n.forwardToOrigin(nid, id)
}

// armRetx schedules the interest-retransmission timer for nid's pending
// entry on a lossy fabric. The chain re-arms itself until the PIT entry
// is satisfied.
func (n *Network) armRetx(nid topology.NodeID, id catalog.ID) {
	if !(n.opts.LossRate > 0) {
		return
	}
	if err := n.eng.Schedule(n.opts.RetxTimeout, func() {
		nd := n.nodes[nid]
		if _, pending := nd.pit[id]; !pending {
			return // satisfied; the chain ends
		}
		n.retransmissions++
		n.sendUpstream(nid, id)
		n.armRetx(nid, id)
	}); err != nil {
		panic(fmt.Sprintf("ccn: scheduling retransmission: %v", err))
	}
}

// lost draws the loss process for one transmission.
func (n *Network) lost() bool {
	return n.opts.LossRate > 0 && n.rng.Float64() < n.opts.LossRate
}

// dataDelay returns the delay until data transmitted from router 'from'
// arrives at 'to' (propagation given), reserving the directed link's
// transmitter: on finite-capacity links the packet first waits for the
// transmitter FIFO, then serializes for 1/LinkRate ms.
func (n *Network) dataDelay(from, to topology.NodeID, propagation float64) float64 {
	if n.linkBusy == nil {
		return propagation
	}
	key := [2]topology.NodeID{from, to}
	now := n.eng.Now()
	ser := 1 / n.opts.LinkRate
	start := now
	if busy := n.linkBusy[key]; busy > start {
		start = busy
	}
	if wait := start - now; wait > 0 {
		n.queueingTotal += wait
		n.queuedPackets++
	}
	n.linkBusy[key] = start + ser
	return (start - now) + ser + propagation
}

// originDataDelay returns the round-trip delay of an origin fetch from
// router nid: interest propagation up, then FIFO queueing and
// serialization on the origin's downlink, then data propagation down.
func (n *Network) originDataDelay(nid topology.NodeID) float64 {
	up := n.originLatency
	if n.linkBusy == nil {
		return 2 * up
	}
	key := [2]topology.NodeID{nid, originNeighbor}
	ser := 1 / n.opts.LinkRate
	ready := n.eng.Now() + up // when the interest reaches the origin
	start := ready
	if busy := n.linkBusy[key]; busy > start {
		start = busy
	}
	if wait := start - ready; wait > 0 {
		n.queueingTotal += wait
		n.queuedPackets++
	}
	n.linkBusy[key] = start + ser
	return (start + ser + up) - n.eng.Now()
}

// MeanQueueingDelay returns the mean link-queueing wait per data
// transmission (0 on infinite-capacity fabrics).
func (n *Network) MeanQueueingDelay() float64 {
	if n.dataTransmissions == 0 {
		return 0
	}
	return n.queueingTotal / float64(n.dataTransmissions)
}

// QueuedPackets returns how many data transmissions had to wait for a
// busy link transmitter.
func (n *Network) QueuedPackets() int64 { return n.queuedPackets }

// forwardToOrigin sends the interest one hop toward the origin server.
func (n *Network) forwardToOrigin(nid topology.NodeID, id catalog.ID) {
	if n.uniformOrigin || nid == n.originRouter {
		// Uplink directly to the origin, which always has the content.
		// The uplink interest and the returning data are each subject to
		// loss.
		n.interestTransmissions++
		if n.lost() {
			n.droppedInterests++
			return
		}
		dataLost := n.lost() // drawn now to keep the sequence deterministic
		if err := n.eng.Schedule(n.originDataDelay(nid), func() {
			// Data arrives back at this router after the uplink round
			// trip; the uplink itself counts as one hop.
			n.dataTransmissions++
			if dataLost {
				n.droppedData++
				return
			}
			n.dataArrival(nid, id, 1, -1)
		}); err != nil {
			panic(fmt.Sprintf("ccn: scheduling origin fetch: %v", err))
		}
		return
	}
	n.forwardInterest(nid, n.lat.Next[nid][n.originRouter], id)
}

// forwardInterest transmits an interest from nid to neighbor next.
func (n *Network) forwardInterest(nid, next topology.NodeID, id catalog.ID) {
	linkLat, err := n.graph.EdgeLatency(nid, next)
	if err != nil {
		panic(fmt.Sprintf("ccn: forwarding over missing link %d-%d: %v", nid, next, err))
	}
	n.interestTransmissions++
	if n.lost() {
		n.droppedInterests++
		return
	}
	if err := n.eng.Schedule(linkLat, func() {
		n.handleInterest(next, id, pitFace{neighbor: nid})
	}); err != nil {
		panic(fmt.Sprintf("ccn: scheduling interest: %v", err))
	}
}

// dataArrival handles data for id arriving at router nid from upstream.
// hops is the number of network links the data has traversed from the
// serving point; server identifies the serving router (-1 for the
// origin). The node applies its on-path caching decision and forwards
// the data to every PIT face.
func (n *Network) dataArrival(nid topology.NodeID, id catalog.ID, hops int, server topology.NodeID) {
	nd := n.nodes[nid]
	switch n.opts.Mode {
	case CacheLCE:
		nd.cs.Insert(id)
	case CacheLCD:
		// Only the first router below the serving point admits.
		if hops == 1 {
			nd.cs.Insert(id)
		}
	case CacheProb:
		if n.rng.Float64() < n.opts.CacheProbability {
			nd.cs.Insert(id)
		}
	}
	entry, ok := nd.pit[id]
	if !ok {
		return // stale data (e.g. PIT satisfied by a CS hit meanwhile)
	}
	delete(nd.pit, id)
	for _, f := range entry.faces {
		n.respond(nid, id, f, hops, server)
	}
}

// respond sends data for id from router nid to one downstream face:
// either completing a client request or forwarding one hop down.
func (n *Network) respond(nid topology.NodeID, id catalog.ID, f pitFace, hops int, server topology.NodeID) {
	if f.request != nil {
		req := f.request
		result := RequestResult{
			Content:     id,
			Router:      nid,
			IssuedAt:    req.issuedAt,
			Hops:        hops,
			Server:      server,
			ServedBy:    tierOf(hops, server, nid),
			CompletedAt: n.eng.Now() + n.opts.AccessLatency,
		}
		if err := n.eng.Schedule(n.opts.AccessLatency, func() { req.done(result) }); err != nil {
			panic(fmt.Sprintf("ccn: scheduling completion: %v", err))
		}
		return
	}
	next := f.neighbor
	linkLat, err := n.graph.EdgeLatency(nid, next)
	if err != nil {
		panic(fmt.Sprintf("ccn: returning data over missing link %d-%d: %v", nid, next, err))
	}
	n.dataTransmissions++
	if n.lost() {
		// The downstream router's retransmission timer recovers the
		// loss.
		n.droppedData++
		return
	}
	h := hops + 1
	if err := n.eng.Schedule(n.dataDelay(nid, next, linkLat), func() {
		n.dataArrival(next, id, h, server)
	}); err != nil {
		panic(fmt.Sprintf("ccn: scheduling data: %v", err))
	}
}

// tierOf classifies which tier served a request completed at router nid.
func tierOf(hops int, server, nid topology.NodeID) ServerKind {
	switch {
	case server == -1:
		return ServedOrigin
	case hops == 0 && server == nid:
		return ServedLocal
	default:
		return ServedPeer
	}
}
