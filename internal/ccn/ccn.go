// Package ccn implements a packet-level content-centric network data
// plane on top of the discrete-event engine: routers with content stores,
// Pending Interest Tables (PIT) with request aggregation, FIB-style
// forwarding along latency-shortest paths, reverse-path data delivery,
// on-path caching modes, and an origin server attachment. The paper's
// analytical model abstracts this machinery; the simulator exists to
// validate the model's steady-state predictions (origin load, tier hit
// ratios, mean latency and hop count) against an executable system.
package ccn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
	"ccncoord/internal/trace"
)

// ServerKind identifies which tier ultimately served a request.
type ServerKind int

// Tiers, in the model's d0/d1/d2 order.
const (
	ServedLocal  ServerKind = iota // requesting router's own content store
	ServedPeer                     // another router in the domain
	ServedOrigin                   // the origin server
	// ServedNone marks a failed request: the retry budget was exhausted
	// without data arriving (only possible on faulty fabrics).
	ServedNone
)

// String returns the tier name.
func (k ServerKind) String() string {
	switch k {
	case ServedLocal:
		return "local"
	case ServedPeer:
		return "peer"
	case ServedOrigin:
		return "origin"
	case ServedNone:
		return "failed"
	default:
		return fmt.Sprintf("ServerKind(%d)", int(k))
	}
}

// CachingMode selects the on-path caching decision applied to returning
// data.
type CachingMode int

const (
	// CacheNone never admits passing data; used with provisioned
	// (static) stores, which ignore Insert anyway.
	CacheNone CachingMode = iota
	// CacheLCE ("leave copy everywhere") offers data to every router on
	// the return path.
	CacheLCE
	// CacheLCD ("leave copy down") offers data only to the first router
	// below the serving point on the return path.
	CacheLCD
	// CacheProb ("probabilistic caching") offers data to each on-path
	// router independently with probability Options.CacheProbability, a
	// common ICN baseline that thins redundant replicas.
	CacheProb
)

// Directory resolves which router coordinately stores a content, the
// lookup service the coordination protocol maintains.
type Directory interface {
	// Owner returns the router assigned to store id, if any.
	Owner(id catalog.ID) (topology.NodeID, bool)
}

// RequestResult describes one completed content request.
type RequestResult struct {
	Content     catalog.ID
	Router      topology.NodeID // first-hop router of the client
	IssuedAt    float64
	CompletedAt float64
	// Hops is the number of network links (router-router, plus the
	// origin uplink when applicable) between the serving point and the
	// requesting router; 0 for a local hit. Client access links are not
	// counted, matching the paper's motivating example.
	Hops     int
	ServedBy ServerKind
	Server   topology.NodeID // serving router; -1 when served by origin
	// Failed marks a request the network gave up on: its first-hop
	// router was crashed, or the bounded retry budget was exhausted
	// without data arriving. ServedBy is ServedNone and Server is -1.
	Failed bool
	// Req is the request's monotonic per-run identity (1-based,
	// allocated in issue order across all client requests, warmup
	// included). Trace events caused by this request carry the same ID.
	Req int64
}

// Latency returns the client-observed request latency.
func (r RequestResult) Latency() float64 { return r.CompletedAt - r.IssuedAt }

// Options configures a Network.
type Options struct {
	// AccessLatency is the one-way client <-> first-hop-router latency
	// (the model's d0 is the round trip of this access hop).
	AccessLatency float64
	// Stores builds the content store for each router. Required.
	Stores func(id topology.NodeID) (cache.Store, error)
	// Mode is the on-path caching decision for returning data.
	Mode CachingMode
	// Directory, when non-nil, lets routers redirect misses to the
	// coordinated owner of a content instead of the origin.
	Directory Directory
	// DegradedStores, when non-nil, builds the per-router overlay
	// store used in degraded mode: while the coordination channel is
	// down (EnterDegraded), routers stop trusting the directory and
	// cache en route (LCE) into these overlays instead, so the plane
	// keeps absorbing load autonomously. Overlays are built lazily at
	// the first EnterDegraded and dropped at ExitDegraded. Required
	// before EnterDegraded may be called.
	DegradedStores func(id topology.NodeID) (cache.Store, error)

	// LossRate is the independent per-transmission drop probability on
	// network links (interests, data, and origin uplink exchanges).
	// Zero means a lossless fabric. Must be in [0, 1).
	LossRate float64
	// RetxTimeout is the base per-router interest retransmission
	// timeout (ms): while a PIT entry is unsatisfied, its router
	// re-sends the interest upstream with exponential backoff starting
	// from this value. Required when LossRate > 0 or Faults is set.
	RetxTimeout float64
	// LossSeed seeds the loss process, the retransmission jitter, and
	// the probabilistic caching decision; runs with the same seed are
	// reproducible. Zero selects 1.
	LossSeed int64

	// Faults enables the fault-aware data plane: routers and links may
	// be taken down via SetRouterState/SetLinkState, routes are
	// recomputed around outages, and retransmission timers arm even on
	// lossless fabrics so redirected interests recover from crashed
	// owners. Requires a positive RetxTimeout.
	Faults bool
	// MaxRetries bounds the retransmissions per PIT entry; after the
	// initial send plus MaxRetries retries the entry expires and client
	// requests complete as Failed. Zero selects DefaultMaxRetries.
	// Applies whenever retransmission is active (lossy or faulty
	// fabrics).
	MaxRetries int
	// RetxBackoff is the exponential backoff multiplier between
	// successive retries; must be >= 1 when set. Zero selects
	// DefaultRetxBackoff.
	RetxBackoff float64
	// RetxJitter spreads each retry timeout uniformly over
	// [timeout, timeout*(1+RetxJitter)), de-synchronizing retry storms.
	// Must lie in [0, 1); zero means no jitter.
	RetxJitter float64
	// OriginFallbackRetries is the number of directory-redirected
	// retries before a retrying router bypasses the directory and goes
	// straight to the origin — the graceful-degradation path when a
	// coordinated owner is unreachable. It applies only on fault-aware
	// planes (Options.Faults): on a merely lossy fabric the owner is
	// alive, so retries keep following the directory. Zero selects
	// DefaultOriginFallbackRetries; negative disables the fallback.
	OriginFallbackRetries int

	// CacheProbability is the per-router admission probability under
	// CacheProb mode; must lie in (0, 1] when that mode is selected.
	CacheProbability float64

	// Tracer, when non-nil, receives a structured event per packet
	// transmission, drop, retry, PIT expiry and fault transition (see
	// internal/trace for the schema). Every emission site nil-checks
	// first, so a disabled tracer costs one branch on the hot path and
	// never perturbs the simulation.
	Tracer *trace.Tracer

	// LinkRate is the serialization capacity of every link in unit
	// contents per millisecond. Data packets (unit size) occupy a link
	// for 1/LinkRate ms and queue FIFO behind each other per directed
	// link; interests are treated as negligibly small, as in CCN.
	// Zero means infinite capacity (no queueing).
	LinkRate float64

	// Routing selects the shortest-path backend the data plane forwards
	// with (see topology.PathProvider). The zero value, BackendAuto,
	// keeps the dense matrix below topology.DenseAutoThreshold nodes —
	// bit-identical to all prior behavior on the calibrated datasets —
	// and switches to the LRU tree cache above it, where a dense matrix
	// would be quadratic in memory. Fault-aware planes (Options.Faults)
	// require the dense backend: incremental rerouting (DynAPSP) repairs
	// a materialized matrix, so NewNetwork rejects Faults combined with
	// a sparse backend rather than silently misrouting around outages.
	Routing topology.Backend
}

// originNeighbor marks the origin uplink in forwarding decisions.
const originNeighbor topology.NodeID = -1

// Retransmission policy defaults (see Options).
const (
	// DefaultMaxRetries is the per-PIT-entry retry budget when
	// Options.MaxRetries is zero.
	DefaultMaxRetries = 8
	// DefaultRetxBackoff doubles the timeout on every retry.
	DefaultRetxBackoff = 2.0
	// DefaultOriginFallbackRetries is how many retries keep following
	// the directory before degrading to the origin.
	DefaultOriginFallbackRetries = 2
	// maxBackoffExponent clamps the exponential backoff so late retries
	// do not wait unboundedly long.
	maxBackoffExponent = 5
)

// pendingRequest is a client request waiting in a PIT.
type pendingRequest struct {
	issuedAt float64
	done     func(RequestResult)
	req      int64 // the request's per-run identity
}

// pitFace is one downstream requester of a pending interest: either a
// neighboring router or a local client. req is the identity of the
// client request whose lifecycle opened this face — the faces slice of
// an entry is therefore the full set of request IDs aggregated on it.
type pitFace struct {
	neighbor topology.NodeID // used when request is nil
	request  *pendingRequest // non-nil for client faces
	req      int64
}

// pitEntry aggregates all downstream requesters of one content and
// tracks its bounded retransmission state.
type pitEntry struct {
	faces []pitFace
	// attempts counts upstream sends so far (1 after the initial
	// forward); the retry budget caps it at 1+MaxRetries.
	attempts int
	// primaryReq is the request that created the entry and drove the
	// upstream send; retries, expiries and the upstream data leg are
	// attributed to it (aggregated requests observe recovery only
	// through their own return-path events).
	primaryReq int64
}

// node is one CCN router: content store plus PIT, with activity
// counters surfaced via Network.Stats.
type node struct {
	id  topology.NodeID
	cs  cache.Store
	pit map[catalog.ID]*pitEntry

	// deg is the degraded-mode overlay store: autonomous en-route
	// copies cached while coordination is lost. Nil outside degraded
	// mode (ExitDegraded drops it — the re-convergence flush).
	deg cache.Store

	// crashed marks a failed router: it neither forwards, serves, nor
	// accepts packets until recovery.
	crashed bool

	csHits     int64
	csMisses   int64
	aggregated int64
	forwarded  int64
	pitPeak    int
}

// txShard holds the packet-transmission counters written on the hot
// forwarding path. Serial networks use a single slot; sharded networks
// give each shard its own cache-line-padded slot (a router's counters
// are bumped only by its owning shard) and sum the slots on read.
type txShard struct {
	interests int64
	data      int64
	_         [48]byte // keep adjacent shards off one cache line
}

// Network is an executable CCN domain over a topology.
type Network struct {
	eng   *des.Engine
	graph *topology.Graph
	lat   topology.PathProvider
	nodes []*node
	cat   *catalog.Catalog
	opts  Options

	// Sharded execution (NewShardedNetwork): se replaces eng, and
	// shardOf maps each router to the logical process that owns its
	// state. Both are nil/empty on serial networks.
	se      *des.Sharded
	shardOf []int32

	// Origin attachment: either a gateway router with an uplink, or a
	// uniform per-router uplink.
	originRouter  topology.NodeID
	originLatency float64
	uniformOrigin bool
	attached      bool

	// Counters over the whole run. Interest/data transmissions live in
	// per-shard slots (one slot on serial networks); the remaining
	// counters are only reachable on serial-only code paths (loss,
	// faults, queueing) and stay plain fields.
	tx               []txShard
	droppedInterests int64
	droppedData      int64
	retransmissions  int64

	// Fault-layer state and counters (Options.Faults only). dyn is the
	// incremental rerouting engine, attached lazily on the first fault
	// event; n.lat always points at its current matrix afterwards.
	dyn             *topology.DynAPSP
	downLinks       map[[2]topology.NodeID]bool
	faultDrops      int64 // transmissions blackholed by down links/routers
	expiredEntries  int64 // PIT entries whose retry budget ran out
	failedRequests  int64 // client requests completed as Failed
	routeRecomputes int64

	// Degraded-mode state: while degraded, routers ignore the
	// directory and cache en route into per-node overlays; while
	// placements are merely stale (coordination down but within the
	// staleness bound), directory forwards are counted as stale hits.
	// Both flags are off on planes that never degrade, costing the hot
	// path one predictable branch each.
	degraded           bool
	placementsStale    bool
	stalePlacementHits int64
	degradedServes     int64

	// rng drives the loss process and retransmission jitter; nil on
	// lossless, fault-free fabrics.
	rng *rand.Rand

	// nextReq is the last allocated request identity; Request allocates
	// IDs monotonically in issue order, so they are deterministic for a
	// given arrival schedule regardless of tracing.
	nextReq int64

	// linkBusy tracks, per directed link, when its transmitter frees up
	// (finite LinkRate only). The origin uplink of router r is keyed as
	// {r, originNeighbor}.
	linkBusy map[[2]topology.NodeID]float64
	// queueingTotal accumulates time data packets spent waiting for
	// link transmitters; queuedPackets counts data transmissions that
	// waited.
	queueingTotal float64
	queuedPackets int64
}

// NewNetwork builds a CCN data plane over the given connected topology.
func NewNetwork(eng *des.Engine, g *topology.Graph, cat *catalog.Catalog, opts Options) (*Network, error) {
	if eng == nil {
		return nil, fmt.Errorf("ccn: nil engine")
	}
	n, err := buildNetwork(g, cat, opts)
	if err != nil {
		return nil, err
	}
	n.eng = eng
	return n, nil
}

// buildNetwork validates options and constructs the router state shared
// by the serial and sharded constructors; the caller attaches the
// executor (eng or se).
func buildNetwork(g *topology.Graph, cat *catalog.Catalog, opts Options) (*Network, error) {
	switch {
	case g == nil || g.N() == 0:
		return nil, fmt.Errorf("ccn: empty topology")
	case !g.Connected():
		return nil, fmt.Errorf("ccn: topology %q is not connected", g.Name())
	case cat == nil:
		return nil, fmt.Errorf("ccn: nil catalog")
	case opts.Stores == nil:
		return nil, fmt.Errorf("ccn: Options.Stores is required")
	case opts.AccessLatency < 0:
		return nil, fmt.Errorf("ccn: negative access latency %v", opts.AccessLatency)
	case opts.LossRate < 0 || opts.LossRate >= 1:
		return nil, fmt.Errorf("ccn: loss rate %v outside [0, 1)", opts.LossRate)
	case opts.LossRate > 0 && !(opts.RetxTimeout > 0):
		return nil, fmt.Errorf("ccn: lossy fabric requires a positive retransmission timeout")
	case opts.Faults && !(opts.RetxTimeout > 0):
		return nil, fmt.Errorf("ccn: fault-aware fabric requires a positive retransmission timeout")
	case opts.MaxRetries < 0:
		return nil, fmt.Errorf("ccn: negative retry budget %d", opts.MaxRetries)
	case opts.RetxBackoff != 0 && opts.RetxBackoff < 1:
		return nil, fmt.Errorf("ccn: retransmission backoff %v below 1", opts.RetxBackoff)
	case opts.RetxJitter < 0 || opts.RetxJitter >= 1:
		return nil, fmt.Errorf("ccn: retransmission jitter %v outside [0, 1)", opts.RetxJitter)
	case opts.Mode == CacheProb && !(opts.CacheProbability > 0 && opts.CacheProbability <= 1):
		return nil, fmt.Errorf("ccn: CacheProb mode requires a probability in (0,1], got %v", opts.CacheProbability)
	case opts.LinkRate < 0:
		return nil, fmt.Errorf("ccn: negative link rate %v", opts.LinkRate)
	case opts.Faults && opts.Routing.Resolve(g.N()) != topology.BackendDense:
		return nil, fmt.Errorf("ccn: fault-aware plane requires the dense routing backend (incremental rerouting repairs a materialized matrix), got %q for %d nodes", opts.Routing.Resolve(g.N()), g.N())
	}
	if opts.MaxRetries == 0 {
		opts.MaxRetries = DefaultMaxRetries
	}
	if opts.RetxBackoff == 0 {
		opts.RetxBackoff = DefaultRetxBackoff
	}
	if opts.OriginFallbackRetries == 0 {
		opts.OriginFallbackRetries = DefaultOriginFallbackRetries
	}
	routes, err := topology.NewPathProvider(g, opts.Routing)
	if err != nil {
		return nil, fmt.Errorf("ccn: %w", err)
	}
	n := &Network{
		graph:        g,
		lat:          routes,
		cat:          cat,
		opts:         opts,
		originRouter: -1,
		tx:           make([]txShard, 1),
	}
	if opts.LossRate > 0 || opts.Faults || opts.Mode == CacheProb {
		seed := opts.LossSeed
		if seed == 0 {
			seed = 1
		}
		n.rng = rand.New(rand.NewSource(seed))
	}
	if opts.Faults {
		n.downLinks = make(map[[2]topology.NodeID]bool)
	}
	if opts.LinkRate > 0 {
		n.linkBusy = make(map[[2]topology.NodeID]float64)
	}
	for _, tn := range g.Nodes() {
		cs, err := opts.Stores(tn.ID)
		if err != nil {
			return nil, fmt.Errorf("ccn: building store for router %d: %w", tn.ID, err)
		}
		if cs == nil {
			return nil, fmt.Errorf("ccn: nil store for router %d", tn.ID)
		}
		n.nodes = append(n.nodes, &node{id: tn.ID, cs: cs, pit: make(map[catalog.ID]*pitEntry)})
	}
	return n, nil
}

// AttachOriginAt places the origin server behind the given gateway
// router with a one-way uplink latency. All origin-bound traffic routes
// through the gateway.
func (n *Network) AttachOriginAt(gateway topology.NodeID, latency float64) error {
	if int(gateway) < 0 || int(gateway) >= len(n.nodes) {
		return fmt.Errorf("ccn: unknown gateway router %d", gateway)
	}
	if !(latency > 0) {
		return fmt.Errorf("ccn: origin uplink latency must be positive, got %v", latency)
	}
	n.originRouter, n.originLatency, n.uniformOrigin, n.attached = gateway, latency, false, true
	return nil
}

// AttachOriginUniform gives every router a direct uplink to the origin
// with the given one-way latency, matching the holistic model's uniform
// d2 abstraction.
func (n *Network) AttachOriginUniform(latency float64) error {
	if !(latency > 0) {
		return fmt.Errorf("ccn: origin uplink latency must be positive, got %v", latency)
	}
	n.originLatency, n.uniformOrigin, n.attached = latency, true, true
	n.originRouter = -1
	return nil
}

// Store returns router id's content store (for pre-population and
// inspection).
func (n *Network) Store(id topology.NodeID) (cache.Store, error) {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		return nil, fmt.Errorf("ccn: unknown router %d", id)
	}
	return n.nodes[id].cs, nil
}

// Routes returns the routing backend the data plane is forwarding
// with: the dense matrix by default (possibly a fault-repaired one
// while outages are active), or the sparse backend Options.Routing
// selected. Treat the result as read-only shared state.
func (n *Network) Routes() topology.PathProvider { return n.lat }

// InterestTransmissions returns the total number of interest packet
// transmissions over network links so far, summed across shards.
func (n *Network) InterestTransmissions() int64 {
	var total int64
	for i := range n.tx {
		total += n.tx[i].interests
	}
	return total
}

// DataTransmissions returns the total number of data packet
// transmissions over network links so far, summed across shards.
func (n *Network) DataTransmissions() int64 {
	var total int64
	for i := range n.tx {
		total += n.tx[i].data
	}
	return total
}

// txAt returns the transmission-counter slot for events executing at
// router r: the single serial slot, or r's owning shard's slot.
func (n *Network) txAt(r topology.NodeID) *txShard {
	if n.se == nil {
		return &n.tx[0]
	}
	return &n.tx[n.shardOf[r]]
}

// nowAt returns the virtual clock governing router r: the global
// engine clock, or r's owning shard's local clock.
func (n *Network) nowAt(r topology.NodeID) float64 {
	if n.se == nil {
		return n.eng.Now()
	}
	return n.se.Shard(int(n.shardOf[r])).Now()
}

// schedFrom schedules fn to run at router to's executor after delay,
// from the context of an event executing at router from. On serial
// networks this is a plain engine Schedule; on sharded networks it is
// a shard-local push or a cross-shard mailbox send. Every cross-shard
// hand-off in the data plane rides a network link, so the delay is at
// least the partition's cut latency — the engine's lookahead bound.
func (n *Network) schedFrom(from, to topology.NodeID, delay float64, fn func()) error {
	if n.se == nil {
		return n.eng.Schedule(delay, fn)
	}
	return n.se.Shard(int(n.shardOf[from])).ScheduleTo(int(n.shardOf[to]), delay, fn)
}

// DroppedInterests returns how many interest transmissions the lossy
// fabric discarded.
func (n *Network) DroppedInterests() int64 { return n.droppedInterests }

// DroppedData returns how many data transmissions the lossy fabric
// discarded.
func (n *Network) DroppedData() int64 { return n.droppedData }

// Retransmissions returns how many interest retransmissions timers
// fired for unsatisfied PIT entries.
func (n *Network) Retransmissions() int64 { return n.retransmissions }

// FaultDrops returns how many transmissions were blackholed by down
// links or crashed routers.
func (n *Network) FaultDrops() int64 { return n.faultDrops }

// ExpiredInterests returns how many PIT entries exhausted their retry
// budget without being satisfied.
func (n *Network) ExpiredInterests() int64 { return n.expiredEntries }

// FailedRequests returns how many client requests completed as Failed.
func (n *Network) FailedRequests() int64 { return n.failedRequests }

// RouteRecomputes returns how many times the forwarding tables were
// rebuilt after a topology change.
func (n *Network) RouteRecomputes() int64 { return n.routeRecomputes }

// SetPlacementsStale marks the installed directory stale (the
// coordination channel is down but the staleness bound has not yet
// expired) or fresh again. While stale, directory-redirected forwards
// are counted as StalePlacementHits — traffic still routed on
// placement state that can no longer be refreshed. Idempotent.
func (n *Network) SetPlacementsStale(stale bool) {
	n.placementsStale = stale
}

// PlacementsStale reports whether the directory is currently marked
// stale.
func (n *Network) PlacementsStale() bool { return n.placementsStale }

// StalePlacementHits returns how many interests were forwarded toward
// a coordinated owner while placements were marked stale.
func (n *Network) StalePlacementHits() int64 { return n.stalePlacementHits }

// Degraded reports whether the data plane is in degraded mode.
func (n *Network) Degraded() bool { return n.degraded }

// DegradedServes returns how many interests were served from degraded
// overlay stores.
func (n *Network) DegradedServes() int64 { return n.degradedServes }

// EnterDegraded switches the plane to autonomous operation: routers
// stop consulting the (dead) directory and fall back to en-route
// caching (LCE) into per-node overlay stores built by
// Options.DegradedStores. Safe to call when already degraded.
func (n *Network) EnterDegraded() error {
	if n.opts.DegradedStores == nil {
		return fmt.Errorf("ccn: degraded mode requires Options.DegradedStores")
	}
	if n.degraded {
		return nil
	}
	for _, nd := range n.nodes {
		if nd.deg != nil {
			continue
		}
		st, err := n.opts.DegradedStores(nd.id)
		if err != nil {
			return fmt.Errorf("ccn: building degraded store for router %d: %w", nd.id, err)
		}
		if st == nil {
			return fmt.Errorf("ccn: nil degraded store for router %d", nd.id)
		}
		nd.deg = st
	}
	n.degraded = true
	n.placementsStale = false // degraded supersedes stale: the directory is bypassed entirely
	if n.opts.Tracer != nil {
		n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindMode, Router: -1, Detail: "degraded-enter"})
	}
	return nil
}

// ExitDegraded returns the plane to coordinated operation and drops
// every overlay store — the re-convergence step: autonomous en-route
// copies are discarded and the restored coordinated placement (kept
// consistent by the consistent-hash repair path) takes over. It
// returns the number of overlay entries flushed; calling it while not
// degraded is a no-op.
func (n *Network) ExitDegraded() int {
	if !n.degraded {
		return 0
	}
	n.degraded = false
	flushed := 0
	for _, nd := range n.nodes {
		if nd.deg != nil {
			flushed += nd.deg.Len()
			nd.deg = nil
		}
	}
	if n.opts.Tracer != nil {
		n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindMode, Router: -1, N: int64(flushed), Detail: "degraded-exit"})
	}
	return flushed
}

// retxActive reports whether retransmission timers arm for new PIT
// entries: on lossy fabrics (the timers recover drops) and on
// fault-aware fabrics (they recover interests blackholed by outages).
func (n *Network) retxActive() bool {
	return n.opts.LossRate > 0 || n.opts.Faults
}

// SetRouterState crashes (up=false) or recovers (up=true) router r,
// implementing fault.Target. Crashing flushes the router's PIT —
// pending client requests there complete as Failed, neighbor faces are
// dropped (their routers' own retry timers recover) — and removes the
// router from the forwarding tables. Requires Options.Faults.
func (n *Network) SetRouterState(r topology.NodeID, up bool) error {
	if !n.opts.Faults {
		return fmt.Errorf("ccn: fault injection requires Options.Faults")
	}
	if int(r) < 0 || int(r) >= len(n.nodes) {
		return fmt.Errorf("ccn: unknown router %d", r)
	}
	nd := n.nodes[r]
	if nd.crashed == !up {
		return nil // idempotent
	}
	n.ensureDyn()
	nd.crashed = !up
	if n.opts.Tracer != nil {
		detail := "router-up"
		if !up {
			detail = "router-down"
		}
		n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindFault, Router: int(r), Detail: detail})
	}
	if nd.crashed {
		n.flushPIT(nd)
	}
	n.routeRecomputes++
	n.lat = n.dyn.SetNode(r, up)
	return nil
}

// SetLinkState takes the undirected link (a, b) down or up,
// implementing fault.Target. Packets are not forwarded over down
// links; routes are recomputed around them. Requires Options.Faults.
func (n *Network) SetLinkState(a, b topology.NodeID, up bool) error {
	if !n.opts.Faults {
		return fmt.Errorf("ccn: fault injection requires Options.Faults")
	}
	if !n.graph.HasEdge(a, b) {
		return fmt.Errorf("ccn: no link (%d,%d)", a, b)
	}
	key := linkKey(a, b)
	if n.downLinks[key] == !up {
		return nil // idempotent
	}
	n.ensureDyn()
	if up {
		delete(n.downLinks, key)
	} else {
		n.downLinks[key] = true
	}
	if n.opts.Tracer != nil {
		detail := "link-up"
		if !up {
			detail = "link-down"
		}
		n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindFault, Router: int(a), Peer: int(b), Detail: detail})
	}
	n.routeRecomputes++
	n.lat = n.dyn.SetLink(a, b, up)
	return nil
}

// linkKey normalizes an undirected link to a map key.
func linkKey(a, b topology.NodeID) [2]topology.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topology.NodeID{a, b}
}

// linkDown reports whether the link (a, b) is out of service.
func (n *Network) linkDown(a, b topology.NodeID) bool {
	return len(n.downLinks) > 0 && n.downLinks[linkKey(a, b)]
}

// crashed reports whether router r is down.
func (n *Network) crashedRouter(r topology.NodeID) bool {
	return n.opts.Faults && n.nodes[r].crashed
}

// ensureDyn lazily attaches the incremental rerouting engine, which
// repairs forwarding tables per fault event — recomputing only sources
// whose shortest-path tree used the failed element — instead of
// rebuilding the alive subgraph from scratch. Down links and every link
// incident to a crashed router are excluded from routing, modeling an
// instantly converged routing plane (the data plane's retry timers
// cover the packets in flight during the transition). If fault state
// already exists when the engine attaches (only possible after a
// permanent FailLink reset it), the seed state is ordered
// deterministically.
func (n *Network) ensureDyn() {
	if n.dyn != nil {
		return
	}
	var downNodes []topology.NodeID
	for _, nd := range n.nodes {
		if nd.crashed {
			downNodes = append(downNodes, nd.id)
		}
	}
	downLinks := make([][2]topology.NodeID, 0, len(n.downLinks))
	for key := range n.downLinks {
		downLinks = append(downLinks, key)
	}
	sort.Slice(downLinks, func(i, j int) bool {
		if downLinks[i][0] != downLinks[j][0] {
			return downLinks[i][0] < downLinks[j][0]
		}
		return downLinks[i][1] < downLinks[j][1]
	})
	n.dyn = topology.NewDynAPSP(n.graph, downNodes, downLinks)
}

// flushPIT drops every pending entry of a crashing router: client
// faces complete as Failed, neighbor faces are abandoned (downstream
// retransmission recovers them). Entries flush in content-id order so
// the completion stream stays deterministic.
func (n *Network) flushPIT(nd *node) {
	if len(nd.pit) == 0 {
		return
	}
	ids := make([]catalog.ID, 0, len(nd.pit))
	for id := range nd.pit {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		entry := nd.pit[id]
		delete(nd.pit, id)
		n.expiredEntries++
		if n.opts.Tracer != nil {
			n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindExpire, Router: int(nd.id), Content: int64(id), Detail: "crash-flush", Req: entry.primaryReq})
		}
		for _, f := range entry.faces {
			if f.request != nil {
				n.failRequest(nd.id, id, f.request)
			}
		}
	}
}

// failRequest completes a client request as Failed after the access
// hop back to the client.
func (n *Network) failRequest(nid topology.NodeID, id catalog.ID, req *pendingRequest) {
	n.failedRequests++
	result := RequestResult{
		Content:     id,
		Router:      nid,
		IssuedAt:    req.issuedAt,
		Hops:        0,
		Server:      -1,
		ServedBy:    ServedNone,
		Failed:      true,
		CompletedAt: n.eng.Now() + n.opts.AccessLatency,
		Req:         req.req,
	}
	if err := n.eng.Schedule(n.opts.AccessLatency, func() { req.done(result) }); err != nil {
		panic(fmt.Sprintf("ccn: scheduling failure completion: %v", err))
	}
}

// Request schedules a client request for content id at the given router,
// issued at the engine's current time. done fires when the data reaches
// the client.
func (n *Network) Request(router topology.NodeID, id catalog.ID, done func(RequestResult)) error {
	_, err := n.RequestID(router, id, done)
	return err
}

// RequestID is Request returning the allocated request identity: a
// monotonic 1-based per-run ID, assigned in issue order. Every trace
// event caused by this request's lifecycle carries the same ID, and the
// completion's RequestResult.Req echoes it.
func (n *Network) RequestID(router topology.NodeID, id catalog.ID, done func(RequestResult)) (int64, error) {
	if n.se != nil {
		// The shared issue counter would race across shards; sharded
		// callers precompute globally-ordered IDs and use RequestWithID.
		return 0, fmt.Errorf("ccn: sharded network requires RequestWithID (precomputed request identity)")
	}
	n.nextReq++
	if err := n.RequestWithID(router, id, n.nextReq, done); err != nil {
		n.nextReq--
		return 0, err
	}
	return n.nextReq, nil
}

// RequestWithID is RequestID with a caller-supplied request identity.
// It is the request entry point for sharded runs, where IDs must be
// precomputed in global issue order (the shared allocation counter
// would race across shards); serial callers normally use Request or
// RequestID instead. The caller owns uniqueness and issue-ordering of
// the IDs.
func (n *Network) RequestWithID(router topology.NodeID, id catalog.ID, reqID int64, done func(RequestResult)) error {
	if !n.attached {
		return fmt.Errorf("ccn: origin not attached; call AttachOriginAt or AttachOriginUniform")
	}
	if int(router) < 0 || int(router) >= len(n.nodes) {
		return fmt.Errorf("ccn: unknown router %d", router)
	}
	if !n.cat.Contains(id) {
		return fmt.Errorf("ccn: content %d outside catalog", id)
	}
	if done == nil {
		done = func(RequestResult) {}
	}
	req := &pendingRequest{issuedAt: n.nowAt(router), done: done, req: reqID}
	// The interest reaches the first-hop router after the access
	// latency.
	return n.schedFrom(router, router, n.opts.AccessLatency, func() {
		n.handleInterest(router, id, pitFace{request: req, req: req.req})
	})
}

// handleInterest processes an interest for id arriving at router nid
// from the given downstream face.
func (n *Network) handleInterest(nid topology.NodeID, id catalog.ID, from pitFace) {
	nd := n.nodes[nid]
	if n.crashedRouter(nid) {
		// A crashed router blackholes interests. Client requests fail
		// immediately (their first-hop router is gone); neighbor faces
		// are covered by the downstream router's retry timer.
		n.faultDrops++
		if n.opts.Tracer != nil {
			n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindDrop, Router: int(nid), Content: int64(id), Detail: "fault", Req: from.req})
		}
		if from.request != nil {
			n.failRequest(nid, id, from.request)
		}
		return
	}
	if nd.cs.Lookup(id) {
		// Content store hit: data flows back to the arriving face
		// immediately. Hops accumulate on the way down.
		nd.csHits++
		n.respond(nid, id, from, 0, nid)
		return
	}
	if n.degraded && nd.deg != nil && nd.deg.Lookup(id) {
		// Degraded-mode overlay hit: an autonomous en-route copy cached
		// while coordination is down serves like any content-store hit.
		nd.csHits++
		n.degradedServes++
		n.respond(nid, id, from, 0, nid)
		return
	}
	nd.csMisses++
	if entry, ok := nd.pit[id]; ok {
		// Interest aggregation: the content is already on its way. An
		// equal Req/N pair marks a retransmitted interest rejoining its
		// own entry, not a true aggregation.
		nd.aggregated++
		entry.faces = append(entry.faces, from)
		if n.opts.Tracer != nil {
			n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindAggregate, Router: int(nid), Content: int64(id), Req: from.req, N: entry.primaryReq})
		}
		return
	}
	entry := &pitEntry{faces: []pitFace{from}, attempts: 1, primaryReq: from.req}
	nd.pit[id] = entry
	if len(nd.pit) > nd.pitPeak {
		nd.pitPeak = len(nd.pit)
	}
	nd.forwarded++
	n.sendUpstream(nid, id, false, from.req, "")
	n.armRetx(nid, id, entry)
}

// sendUpstream forwards an interest from nid toward its upstream: the
// coordinated owner if the directory knows one and a route to it
// exists, otherwise the origin. forceOrigin bypasses the directory —
// the graceful-degradation path late in a retry budget. req/cause
// carry the causal request identity and send qualifier ("", "retx",
// "fallback") onto the emitted interest events.
func (n *Network) sendUpstream(nid topology.NodeID, id catalog.ID, forceOrigin bool, req int64, cause string) {
	// In degraded mode the directory reflects a coordination state that
	// can no longer be trusted at all: skip it and go straight to the
	// origin (bounded-staleness forwarding degenerated to autonomy).
	if !forceOrigin && n.opts.Directory != nil && !n.degraded {
		if owner, ok := n.opts.Directory.Owner(id); ok && owner != nid {
			if next := n.lat.Next(nid, owner); next >= 0 {
				if n.placementsStale {
					n.stalePlacementHits++
				}
				n.forwardInterest(nid, next, id, req, cause)
				return
			}
			// The owner is unreachable (crashed or partitioned): fall
			// through to the origin.
		}
	}
	n.forwardToOrigin(nid, id, req, cause)
}

// armRetx schedules the bounded interest-retransmission timer for
// nid's pending entry. Each retry backs off exponentially (with
// optional jitter); once the budget is exhausted the entry expires and
// client requests fail. Late retries past OriginFallbackRetries bypass
// the directory so a dead owner degrades to the origin instead of
// spinning.
func (n *Network) armRetx(nid topology.NodeID, id catalog.ID, entry *pitEntry) {
	if !n.retxActive() {
		return
	}
	exp := entry.attempts - 1
	if exp > maxBackoffExponent {
		exp = maxBackoffExponent
	}
	delay := n.opts.RetxTimeout * math.Pow(n.opts.RetxBackoff, float64(exp))
	if n.opts.RetxJitter > 0 {
		delay *= 1 + n.opts.RetxJitter*n.rng.Float64()
	}
	if err := n.eng.Schedule(delay, func() {
		nd := n.nodes[nid]
		if cur, pending := nd.pit[id]; !pending || cur != entry {
			return // satisfied or flushed; the chain ends
		}
		if n.crashedRouter(nid) {
			return // the router died after arming; flushPIT handled it
		}
		if entry.attempts > n.opts.MaxRetries {
			// Budget exhausted: expire the entry. Client faces fail;
			// neighbor faces are covered by their own routers' timers.
			delete(nd.pit, id)
			n.expiredEntries++
			if n.opts.Tracer != nil {
				n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindExpire, Router: int(nid), Content: int64(id), N: int64(entry.attempts), Req: entry.primaryReq})
			}
			for _, f := range entry.faces {
				if f.request != nil {
					n.failRequest(nid, id, f.request)
				}
			}
			return
		}
		n.retransmissions++
		entry.attempts++
		if n.opts.Tracer != nil {
			n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindRetry, Router: int(nid), Content: int64(id), N: int64(entry.attempts), Req: entry.primaryReq})
		}
		forceOrigin := n.opts.Faults && n.opts.OriginFallbackRetries > 0 &&
			entry.attempts > 1+n.opts.OriginFallbackRetries
		cause := "retx"
		if forceOrigin {
			cause = "fallback"
		}
		n.sendUpstream(nid, id, forceOrigin, entry.primaryReq, cause)
		n.armRetx(nid, id, entry)
	}); err != nil {
		panic(fmt.Sprintf("ccn: scheduling retransmission: %v", err))
	}
}

// lost draws the loss process for one transmission.
func (n *Network) lost() bool {
	return n.opts.LossRate > 0 && n.rng.Float64() < n.opts.LossRate
}

// dataDelay returns the delay until data transmitted from router 'from'
// arrives at 'to' (propagation given), reserving the directed link's
// transmitter: on finite-capacity links the packet first waits for the
// transmitter FIFO, then serializes for 1/LinkRate ms.
func (n *Network) dataDelay(from, to topology.NodeID, propagation float64) float64 {
	if n.linkBusy == nil {
		return propagation
	}
	key := [2]topology.NodeID{from, to}
	now := n.eng.Now()
	ser := 1 / n.opts.LinkRate
	start := now
	if busy := n.linkBusy[key]; busy > start {
		start = busy
	}
	if wait := start - now; wait > 0 {
		n.queueingTotal += wait
		n.queuedPackets++
	}
	n.linkBusy[key] = start + ser
	return (start - now) + ser + propagation
}

// originDataDelay returns the round-trip delay of an origin fetch from
// router nid: interest propagation up, then FIFO queueing and
// serialization on the origin's downlink, then data propagation down.
func (n *Network) originDataDelay(nid topology.NodeID) float64 {
	up := n.originLatency
	if n.linkBusy == nil {
		return 2 * up
	}
	key := [2]topology.NodeID{nid, originNeighbor}
	ser := 1 / n.opts.LinkRate
	ready := n.eng.Now() + up // when the interest reaches the origin
	start := ready
	if busy := n.linkBusy[key]; busy > start {
		start = busy
	}
	if wait := start - ready; wait > 0 {
		n.queueingTotal += wait
		n.queuedPackets++
	}
	n.linkBusy[key] = start + ser
	return (start + ser + up) - n.eng.Now()
}

// MeanQueueingDelay returns the mean link-queueing wait per data
// transmission (0 on infinite-capacity fabrics).
func (n *Network) MeanQueueingDelay() float64 {
	data := n.DataTransmissions()
	if data == 0 {
		return 0
	}
	return n.queueingTotal / float64(data)
}

// QueuedPackets returns how many data transmissions had to wait for a
// busy link transmitter.
func (n *Network) QueuedPackets() int64 { return n.queuedPackets }

// forwardToOrigin sends the interest one hop toward the origin server.
// When the origin gateway is unreachable the interest is blackholed;
// the PIT entry's retry timer bounds the damage.
func (n *Network) forwardToOrigin(nid topology.NodeID, id catalog.ID, req int64, cause string) {
	if n.uniformOrigin || nid == n.originRouter {
		// Uplink directly to the origin, which always has the content.
		// The uplink interest and the returning data are each subject to
		// loss.
		n.txAt(nid).interests++
		if n.opts.Tracer != nil {
			n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindInterest, Router: int(nid), Peer: -1, Content: int64(id), Req: req, Cause: cause})
		}
		if n.lost() {
			n.droppedInterests++
			if n.opts.Tracer != nil {
				n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindDrop, Router: int(nid), Peer: -1, Content: int64(id), Detail: "loss-interest", Req: req})
			}
			return
		}
		dataLost := n.lost() // drawn now to keep the sequence deterministic
		// The origin round trip starts and ends at nid, so the fetch is
		// shard-local whatever the partition.
		if err := n.schedFrom(nid, nid, n.originDataDelay(nid), func() {
			// Data arrives back at this router after the uplink round
			// trip; the uplink itself counts as one hop.
			n.txAt(nid).data++
			if n.opts.Tracer != nil {
				n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindData, Router: -1, Peer: int(nid), Content: int64(id), Hops: 1, Req: req})
			}
			if dataLost {
				n.droppedData++
				if n.opts.Tracer != nil {
					n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindDrop, Router: -1, Peer: int(nid), Content: int64(id), Detail: "loss-data", Req: req})
				}
				return
			}
			n.dataArrival(nid, id, 1, -1, req)
		}); err != nil {
			panic(fmt.Sprintf("ccn: scheduling origin fetch: %v", err))
		}
		return
	}
	next := n.lat.Next(nid, n.originRouter)
	if next < 0 {
		// Partitioned from the origin gateway: nowhere to send.
		n.faultDrops++
		if n.opts.Tracer != nil {
			n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindDrop, Router: int(nid), Peer: -1, Content: int64(id), Detail: "fault", Req: req})
		}
		return
	}
	n.forwardInterest(nid, next, id, req, cause)
}

// forwardInterest transmits an interest from nid to neighbor next.
func (n *Network) forwardInterest(nid, next topology.NodeID, id catalog.ID, req int64, cause string) {
	linkLat, err := n.graph.EdgeLatency(nid, next)
	if err != nil {
		panic(fmt.Sprintf("ccn: forwarding over missing link %d-%d: %v", nid, next, err))
	}
	if n.linkDown(nid, next) {
		// The link died under an in-flight forwarding decision; the
		// retry timer recovers over the recomputed route.
		n.faultDrops++
		if n.opts.Tracer != nil {
			n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindDrop, Router: int(nid), Peer: int(next), Content: int64(id), Detail: "fault", Req: req})
		}
		return
	}
	n.txAt(nid).interests++
	if n.opts.Tracer != nil {
		n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindInterest, Router: int(nid), Peer: int(next), Content: int64(id), Req: req, Cause: cause})
	}
	if n.lost() {
		n.droppedInterests++
		if n.opts.Tracer != nil {
			n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindDrop, Router: int(nid), Peer: int(next), Content: int64(id), Detail: "loss-interest", Req: req})
		}
		return
	}
	if err := n.schedFrom(nid, next, linkLat, func() {
		n.handleInterest(next, id, pitFace{neighbor: nid, req: req})
	}); err != nil {
		panic(fmt.Sprintf("ccn: scheduling interest: %v", err))
	}
}

// dataArrival handles data for id arriving at router nid from upstream.
// hops is the number of network links the data has traversed from the
// serving point; server identifies the serving router (-1 for the
// origin). The node applies its on-path caching decision and forwards
// the data to every PIT face, each leg carrying its own face's request
// identity.
func (n *Network) dataArrival(nid topology.NodeID, id catalog.ID, hops int, server topology.NodeID, req int64) {
	nd := n.nodes[nid]
	if n.crashedRouter(nid) {
		// Data reaching a crashed router is lost; its PIT was flushed
		// at crash time, so nothing downstream waits on this copy here.
		n.faultDrops++
		if n.opts.Tracer != nil {
			n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindDrop, Router: int(nid), Content: int64(id), Detail: "fault", Req: req})
		}
		return
	}
	if n.degraded && nd.deg != nil {
		// Degraded mode overrides the configured caching decision with
		// autonomous LCE into the overlay: every router on the return
		// path keeps a copy, the classic en-route fallback.
		nd.deg.Insert(id)
	} else {
		switch n.opts.Mode {
		case CacheLCE:
			nd.cs.Insert(id)
		case CacheLCD:
			// Only the first router below the serving point admits.
			if hops == 1 {
				nd.cs.Insert(id)
			}
		case CacheProb:
			if n.rng.Float64() < n.opts.CacheProbability {
				nd.cs.Insert(id)
			}
		}
	}
	entry, ok := nd.pit[id]
	if !ok {
		return // stale data (e.g. PIT satisfied by a CS hit meanwhile)
	}
	delete(nd.pit, id)
	for _, f := range entry.faces {
		n.respond(nid, id, f, hops, server)
	}
}

// respond sends data for id from router nid to one downstream face:
// either completing a client request or forwarding one hop down.
func (n *Network) respond(nid topology.NodeID, id catalog.ID, f pitFace, hops int, server topology.NodeID) {
	if f.request != nil {
		req := f.request
		result := RequestResult{
			Content:     id,
			Router:      nid,
			IssuedAt:    req.issuedAt,
			Hops:        hops,
			Server:      server,
			ServedBy:    tierOf(hops, server, nid),
			CompletedAt: n.nowAt(nid) + n.opts.AccessLatency,
			Req:         req.req,
		}
		if err := n.schedFrom(nid, nid, n.opts.AccessLatency, func() { req.done(result) }); err != nil {
			panic(fmt.Sprintf("ccn: scheduling completion: %v", err))
		}
		return
	}
	next := f.neighbor
	linkLat, err := n.graph.EdgeLatency(nid, next)
	if err != nil {
		panic(fmt.Sprintf("ccn: returning data over missing link %d-%d: %v", nid, next, err))
	}
	if n.linkDown(nid, next) {
		// The reverse-path link is down; the downstream router's retry
		// timer re-fetches over the recomputed route.
		n.faultDrops++
		if n.opts.Tracer != nil {
			n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindDrop, Router: int(nid), Peer: int(next), Content: int64(id), Detail: "fault", Req: f.req})
		}
		return
	}
	n.txAt(nid).data++
	if n.opts.Tracer != nil {
		n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindData, Router: int(nid), Peer: int(next), Content: int64(id), Hops: hops, Req: f.req})
	}
	if n.lost() {
		// The downstream router's retransmission timer recovers the
		// loss.
		n.droppedData++
		if n.opts.Tracer != nil {
			n.opts.Tracer.Emit(trace.Event{T: n.eng.Now(), Kind: trace.KindDrop, Router: int(nid), Peer: int(next), Content: int64(id), Detail: "loss-data", Req: f.req})
		}
		return
	}
	h := hops + 1
	if err := n.schedFrom(nid, next, n.dataDelay(nid, next, linkLat), func() {
		n.dataArrival(next, id, h, server, f.req)
	}); err != nil {
		panic(fmt.Sprintf("ccn: scheduling data: %v", err))
	}
}

// tierOf classifies which tier served a request completed at router nid.
func tierOf(hops int, server, nid topology.NodeID) ServerKind {
	switch {
	case server == -1:
		return ServedOrigin
	case hops == 0 && server == nid:
		return ServedLocal
	default:
		return ServedPeer
	}
}
