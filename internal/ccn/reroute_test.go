package ccn

import (
	"math"
	"testing"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

// TestIncrementalReroutingMatchesFullRecompute drives a fault schedule
// through SetLinkState/SetRouterState and checks after every event that
// the incrementally repaired routing matrix matches a from-scratch
// shortest-path solve of the alive subgraph (clone minus every down
// link and every link incident to a crashed router) — the strategy the
// network used before the incremental engine existed.
func TestIncrementalReroutingMatchesFullRecompute(t *testing.T) {
	g, err := topology.Waxman("reroute", 18, 32, 4000, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.New(100, "/t")
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(&des.Engine{}, g, cat, Options{
		AccessLatency: 1,
		Faults:        true,
		RetxTimeout:   100,
		Stores: func(topology.NodeID) (cache.Store, error) {
			return cache.NewStatic(nil)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	fullRecompute := func() *topology.APSP {
		alive := g.Clone()
		for _, e := range g.EdgeList() {
			if net.crashedRouter(e.A) || net.crashedRouter(e.B) || net.linkDown(e.A, e.B) {
				if err := alive.RemoveEdge(e.A, e.B); err != nil {
					t.Fatal(err)
				}
			}
		}
		return alive.ShortestPathsLatency()
	}
	check := func(stage string) {
		t.Helper()
		ref := fullRecompute()
		n := ref.N()
		for s := topology.NodeID(0); int(s) < n; s++ {
			for d := topology.NodeID(0); int(d) < n; d++ {
				got, want := net.lat.Dist(s, d), ref.Dist(s, d)
				if math.IsInf(got, 1) != math.IsInf(want, 1) {
					t.Fatalf("%s: reachability of (%d,%d) diverged: got %v, want %v", stage, s, d, got, want)
				}
				if !math.IsInf(want, 1) && math.Abs(got-want) > 1e-9 {
					t.Fatalf("%s: dist(%d,%d) = %v, full recompute %v", stage, s, d, got, want)
				}
			}
		}
	}

	edges := g.EdgeList()
	e1, e2 := edges[2], edges[len(edges)-3]
	type step struct {
		name string
		run  func() error
	}
	schedule := []step{
		{"link e1 down", func() error { return net.SetLinkState(e1.A, e1.B, false) }},
		{"router crash", func() error { return net.SetRouterState(5, false) }},
		{"link e2 down", func() error { return net.SetLinkState(e2.A, e2.B, false) }},
		{"link e1 up", func() error { return net.SetLinkState(e1.A, e1.B, true) }},
		{"second router crash", func() error { return net.SetRouterState(11, false) }},
		{"router recover", func() error { return net.SetRouterState(5, true) }},
		{"link e2 up", func() error { return net.SetLinkState(e2.A, e2.B, true) }},
		{"second router recover", func() error { return net.SetRouterState(11, true) }},
	}
	for _, st := range schedule {
		if err := st.run(); err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		check(st.name)
	}

	// All elements recovered: the routing matrix must be bit-identical
	// to the pristine solve, so a full fault cycle leaves no float drift.
	base := g.ShortestPathsLatency()
	n := base.N()
	for s := topology.NodeID(0); int(s) < n; s++ {
		for d := topology.NodeID(0); int(d) < n; d++ {
			if net.lat.Dist(s, d) != base.Dist(s, d) || net.lat.Next(s, d) != base.Next(s, d) {
				t.Fatalf("all-up routing state not pristine at (%d,%d)", s, d)
			}
		}
	}
}
