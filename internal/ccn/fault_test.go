package ccn

import (
	"testing"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

// mapDirectory is a fixed content -> owner table for tests.
type mapDirectory map[catalog.ID]topology.NodeID

func (d mapDirectory) Owner(id catalog.ID) (topology.NodeID, bool) {
	r, ok := d[id]
	return r, ok
}

// triangle builds the 3-router full mesh 0-1-2 with the origin behind
// gateway 0, router 1 provisioned with ids 1..10, and a directory
// redirecting those ids to router 1.
func triangle(t *testing.T, opts func(*Options)) (*des.Engine, *Network) {
	t.Helper()
	g := topology.New("triangle")
	for i := 0; i < 3; i++ {
		g.AddNode("", 0, 0)
	}
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 5)
	g.MustAddEdge(0, 2, 5)
	cat, err := catalog.New(100, "/t")
	if err != nil {
		t.Fatal(err)
	}
	dir := mapDirectory{}
	for i := 1; i <= 10; i++ {
		dir[catalog.ID(i)] = 1
	}
	o := Options{
		AccessLatency: 1,
		Faults:        true,
		RetxTimeout:   100,
		Directory:     dir,
		Stores: func(r topology.NodeID) (cache.Store, error) {
			if r == 1 {
				return cache.NewStatic(cache.RankRange(1, 10))
			}
			return cache.NewStatic(nil)
		},
	}
	if opts != nil {
		opts(&o)
	}
	eng := &des.Engine{}
	net, err := NewNetwork(eng, g, cat, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AttachOriginAt(0, 50); err != nil {
		t.Fatal(err)
	}
	return eng, net
}

func TestFaultOptionsValidation(t *testing.T) {
	g := topology.New("g")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 0)
	g.MustAddEdge(0, 1, 1)
	cat, _ := catalog.New(10, "/t")
	stores := func(topology.NodeID) (cache.Store, error) { return cache.NewLRU(1) }
	cases := []Options{
		{Stores: stores, Faults: true},                                   // no retx timeout
		{Stores: stores, MaxRetries: -1},                                 // negative budget
		{Stores: stores, RetxBackoff: 0.5},                               // backoff below 1
		{Stores: stores, Faults: true, RetxTimeout: 10, RetxJitter: 1.0}, // jitter outside [0,1)
	}
	for i, o := range cases {
		if _, err := NewNetwork(&des.Engine{}, g, cat, o); err == nil {
			t.Errorf("case %d: options %+v should fail", i, o)
		}
	}
}

func TestSetStateRequiresFaults(t *testing.T) {
	g := topology.New("g")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 0)
	g.MustAddEdge(0, 1, 1)
	cat, _ := catalog.New(10, "/t")
	net, err := NewNetwork(&des.Engine{}, g, cat, Options{
		Stores: func(topology.NodeID) (cache.Store, error) { return cache.NewLRU(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetRouterState(0, false); err == nil {
		t.Error("SetRouterState without Options.Faults should fail")
	}
	if err := net.SetLinkState(0, 1, false); err == nil {
		t.Error("SetLinkState without Options.Faults should fail")
	}
}

// TestCrashedOwnerFailsOverToOrigin: with the directory owner up,
// redirected interests are peer-served; after the owner crashes the
// recomputed routes send them to the origin instead, and recovery
// restores the peer path.
func TestCrashedOwnerFailsOverToOrigin(t *testing.T) {
	eng, net := triangle(t, nil)
	ask := func(id catalog.ID) RequestResult {
		var res RequestResult
		if err := net.Request(2, id, func(r RequestResult) { res = r }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return res
	}

	if r := ask(3); r.ServedBy != ServedPeer || r.Server != 1 {
		t.Fatalf("pre-crash request served by %v (server %d), want peer 1", r.ServedBy, r.Server)
	}
	if err := net.SetRouterState(1, false); err != nil {
		t.Fatal(err)
	}
	if r := ask(4); r.ServedBy != ServedOrigin || r.Failed {
		t.Fatalf("post-crash request served by %v (failed=%t), want origin", r.ServedBy, r.Failed)
	}
	if err := net.SetRouterState(1, true); err != nil {
		t.Fatal(err)
	}
	if r := ask(5); r.ServedBy != ServedPeer {
		t.Fatalf("post-recovery request served by %v, want peer", r.ServedBy)
	}
}

// TestNeverSatisfiableInterestTerminates is the regression test for the
// unbounded-retransmission hazard: with the origin gateway crashed
// forever, an interest has no satisfiable upstream. The retry budget
// must terminate it — the request completes as Failed and the event
// queue drains instead of growing without bound.
func TestNeverSatisfiableInterestTerminates(t *testing.T) {
	eng, net := triangle(t, func(o *Options) {
		o.MaxRetries = 3
		o.Directory = nil // force the origin path
	})
	if err := net.SetRouterState(0, false); err != nil {
		t.Fatal(err)
	}
	var res RequestResult
	completed := false
	if err := net.Request(2, 50, func(r RequestResult) { res, completed = r, true }); err != nil {
		t.Fatal(err)
	}
	eng.Run() // must return: bounded retries guarantee the queue drains
	if !completed {
		t.Fatal("request hung: no completion after the retry budget")
	}
	if !res.Failed || res.ServedBy != ServedNone {
		t.Errorf("result = %+v, want Failed/ServedNone", res)
	}
	if got := net.Retransmissions(); got != 3 {
		t.Errorf("retransmissions = %d, want exactly MaxRetries = 3", got)
	}
	if net.ExpiredInterests() == 0 {
		t.Error("no PIT entry expired")
	}
	if net.FailedRequests() != 1 {
		t.Errorf("FailedRequests = %d, want 1", net.FailedRequests())
	}
	if eng.Pending() != 0 {
		t.Errorf("%d events still pending after Run", eng.Pending())
	}
}

// TestLinkDownReroutes: taking a link down forces traffic onto the
// longer alive path; restoring it returns to the short one.
func TestLinkDownReroutes(t *testing.T) {
	eng, net := triangle(t, func(o *Options) { o.Directory = nil })
	ask := func(id catalog.ID) RequestResult {
		var res RequestResult
		if err := net.Request(2, id, func(r RequestResult) { res = r }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return res
	}
	if r := ask(60); r.Hops != 2 { // 2 -> 0 direct, plus the uplink
		t.Fatalf("pre-fault hops = %d, want 2", r.Hops)
	}
	if err := net.SetLinkState(0, 2, false); err != nil {
		t.Fatal(err)
	}
	if r := ask(61); r.Hops != 3 || r.ServedBy != ServedOrigin {
		t.Fatalf("rerouted request: hops=%d served=%v, want 3/origin via router 1", r.Hops, r.ServedBy)
	}
	if err := net.SetLinkState(0, 2, true); err != nil {
		t.Fatal(err)
	}
	if r := ask(62); r.Hops != 2 {
		t.Fatalf("post-restore hops = %d, want 2", r.Hops)
	}
	if net.RouteRecomputes() != 2 {
		t.Errorf("route recomputes = %d, want 2", net.RouteRecomputes())
	}
}

// TestPITFlushOnCrashFailsClients: a router crashing with pending
// client requests completes them as Failed instead of leaving them
// hanging.
func TestPITFlushOnCrashFailsClients(t *testing.T) {
	eng, net := triangle(t, func(o *Options) { o.Directory = nil })
	var results []RequestResult
	for _, id := range []catalog.ID{70, 71} {
		if err := net.Request(2, id, func(r RequestResult) { results = append(results, r) }); err != nil {
			t.Fatal(err)
		}
	}
	// The origin round trip takes >100ms; crash the first-hop router at
	// t=20 while both requests are pending in its PIT.
	if err := eng.At(20, func() {
		if err := net.SetRouterState(2, false); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(results) != 2 {
		t.Fatalf("%d completions, want 2", len(results))
	}
	for _, r := range results {
		if !r.Failed {
			t.Errorf("request for %d completed as %v, want Failed", r.Content, r.ServedBy)
		}
	}
	// Deterministic flush order: entries fail in content-id order.
	if results[0].Content != 70 || results[1].Content != 71 {
		t.Errorf("flush order %d, %d; want 70, 71", results[0].Content, results[1].Content)
	}
}

// TestInFlightCrashRecoversByRetry: the owner crashes while an interest
// is in flight toward it; the requesting router's retry timer recovers
// the request via the origin within the budget.
func TestInFlightCrashRecoversByRetry(t *testing.T) {
	eng, net := triangle(t, nil)
	var res RequestResult
	completed := false
	if err := net.Request(2, 7, func(r RequestResult) { res, completed = r, true }); err != nil {
		t.Fatal(err)
	}
	// The interest leaves the client at t=0, reaches router 2 at t=1,
	// and is forwarded toward owner 1 (arriving t=6). Crash the owner at
	// t=3, mid-flight.
	if err := eng.At(3, func() {
		if err := net.SetRouterState(1, false); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !completed {
		t.Fatal("request hung after in-flight crash")
	}
	if res.Failed || res.ServedBy != ServedOrigin {
		t.Errorf("result = %+v, want origin-served recovery", res)
	}
	if net.Retransmissions() == 0 {
		t.Error("recovery happened without a retransmission?")
	}
}
