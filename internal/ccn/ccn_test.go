package ccn

import (
	"math"
	"testing"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

// lineNet builds a 3-router line R0 - R1 - R2 with 5 ms links, origin
// behind R0 at 50 ms, 1 ms access latency, and per-router static stores.
func lineNet(t *testing.T, provision map[topology.NodeID][]catalog.ID, dir Directory, mode CachingMode) (*des.Engine, *Network) {
	t.Helper()
	g := topology.New("line3")
	for i := 0; i < 3; i++ {
		g.AddNode("", 0, 0)
	}
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 5)
	cat, err := catalog.New(100, "/t")
	if err != nil {
		t.Fatal(err)
	}
	eng := &des.Engine{}
	net, err := NewNetwork(eng, g, cat, Options{
		AccessLatency: 1,
		Mode:          mode,
		Directory:     dir,
		Stores: func(id topology.NodeID) (cache.Store, error) {
			if mode == CacheNone {
				return cache.NewStatic(provision[id])
			}
			return cache.NewLRU(2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AttachOriginAt(0, 50); err != nil {
		t.Fatal(err)
	}
	return eng, net
}

// run issues one request and returns its result.
func runOne(t *testing.T, eng *des.Engine, net *Network, router topology.NodeID, id catalog.ID) RequestResult {
	t.Helper()
	var got *RequestResult
	if err := net.Request(router, id, func(r RequestResult) { got = &r }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if got == nil {
		t.Fatal("request never completed")
	}
	return *got
}

func TestNewNetworkValidation(t *testing.T) {
	g := topology.New("g")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 0)
	g.MustAddEdge(0, 1, 1)
	cat, _ := catalog.New(10, "/t")
	eng := &des.Engine{}
	okStores := func(topology.NodeID) (cache.Store, error) { return cache.NewLRU(1) }
	if _, err := NewNetwork(nil, g, cat, Options{Stores: okStores}); err == nil {
		t.Error("nil engine should fail")
	}
	if _, err := NewNetwork(eng, nil, cat, Options{Stores: okStores}); err == nil {
		t.Error("nil topology should fail")
	}
	if _, err := NewNetwork(eng, g, nil, Options{Stores: okStores}); err == nil {
		t.Error("nil catalog should fail")
	}
	if _, err := NewNetwork(eng, g, cat, Options{}); err == nil {
		t.Error("missing Stores should fail")
	}
	if _, err := NewNetwork(eng, g, cat, Options{Stores: okStores, AccessLatency: -1}); err == nil {
		t.Error("negative access latency should fail")
	}
	disc := topology.New("disc")
	disc.AddNode("", 0, 0)
	disc.AddNode("", 0, 0)
	if _, err := NewNetwork(eng, disc, cat, Options{Stores: okStores}); err == nil {
		t.Error("disconnected topology should fail")
	}
}

func TestAttachOriginValidation(t *testing.T) {
	eng, net := lineNet(t, nil, nil, CacheNone)
	_ = eng
	if err := net.AttachOriginAt(99, 10); err == nil {
		t.Error("unknown gateway should fail")
	}
	if err := net.AttachOriginAt(0, 0); err == nil {
		t.Error("zero uplink latency should fail")
	}
	if err := net.AttachOriginUniform(-1); err == nil {
		t.Error("negative uniform latency should fail")
	}
}

func TestRequestRequiresOrigin(t *testing.T) {
	g := topology.New("g")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 0)
	g.MustAddEdge(0, 1, 1)
	cat, _ := catalog.New(10, "/t")
	eng := &des.Engine{}
	net, err := NewNetwork(eng, g, cat, Options{
		Stores: func(topology.NodeID) (cache.Store, error) { return cache.NewLRU(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Request(0, 1, nil); err == nil {
		t.Error("request before origin attachment should fail")
	}
}

func TestRequestValidation(t *testing.T) {
	eng, net := lineNet(t, nil, nil, CacheNone)
	_ = eng
	if err := net.Request(99, 1, nil); err == nil {
		t.Error("unknown router should fail")
	}
	if err := net.Request(0, 9999, nil); err == nil {
		t.Error("content outside catalog should fail")
	}
}

func TestLocalHit(t *testing.T) {
	prov := map[topology.NodeID][]catalog.ID{2: {7}}
	eng, net := lineNet(t, prov, nil, CacheNone)
	res := runOne(t, eng, net, 2, 7)
	if res.ServedBy != ServedLocal {
		t.Errorf("ServedBy = %v, want local", res.ServedBy)
	}
	if res.Hops != 0 {
		t.Errorf("Hops = %d, want 0", res.Hops)
	}
	// Latency: access up + access down = 2 ms.
	if math.Abs(res.Latency()-2) > 1e-9 {
		t.Errorf("latency = %v, want 2", res.Latency())
	}
}

func TestOriginFetchThroughGateway(t *testing.T) {
	eng, net := lineNet(t, nil, nil, CacheNone)
	// Nothing cached: request at R2 travels R2->R1->R0->O and back.
	res := runOne(t, eng, net, 2, 7)
	if res.ServedBy != ServedOrigin {
		t.Errorf("ServedBy = %v, want origin", res.ServedBy)
	}
	if res.Hops != 3 { // two router links + uplink
		t.Errorf("Hops = %d, want 3", res.Hops)
	}
	// Latency: 2*1 access + 2*(5+5) links + 2*50 uplink = 122.
	if math.Abs(res.Latency()-122) > 1e-9 {
		t.Errorf("latency = %v, want 122", res.Latency())
	}
	if res.Server != -1 {
		t.Errorf("Server = %d, want -1", res.Server)
	}
}

func TestDirectoryRedirect(t *testing.T) {
	prov := map[topology.NodeID][]catalog.ID{2: {7}}
	dir := staticDir{7: 2}
	eng, net := lineNet(t, prov, dir, CacheNone)
	res := runOne(t, eng, net, 0, 7)
	if res.ServedBy != ServedPeer {
		t.Errorf("ServedBy = %v, want peer", res.ServedBy)
	}
	if res.Hops != 2 {
		t.Errorf("Hops = %d, want 2", res.Hops)
	}
	if res.Server != 2 {
		t.Errorf("Server = %d, want 2", res.Server)
	}
	// Latency: 2*1 + 2*(5+5) = 22.
	if math.Abs(res.Latency()-22) > 1e-9 {
		t.Errorf("latency = %v, want 22", res.Latency())
	}
}

// staticDir is a fixed content->owner map.
type staticDir map[catalog.ID]topology.NodeID

func (d staticDir) Owner(id catalog.ID) (topology.NodeID, bool) {
	r, ok := d[id]
	return r, ok
}

func TestOpportunisticOnPathHit(t *testing.T) {
	// Content at R1 (on the path R2 -> R0 toward origin/owner R0).
	prov := map[topology.NodeID][]catalog.ID{1: {7}}
	eng, net := lineNet(t, prov, nil, CacheNone)
	res := runOne(t, eng, net, 2, 7)
	if res.ServedBy != ServedPeer || res.Server != 1 || res.Hops != 1 {
		t.Errorf("on-path hit: served=%v server=%d hops=%d", res.ServedBy, res.Server, res.Hops)
	}
}

func TestUniformOrigin(t *testing.T) {
	eng, net := lineNet(t, nil, nil, CacheNone)
	if err := net.AttachOriginUniform(40); err != nil {
		t.Fatal(err)
	}
	res := runOne(t, eng, net, 2, 9)
	if res.ServedBy != ServedOrigin || res.Hops != 1 {
		t.Errorf("uniform origin: served=%v hops=%d", res.ServedBy, res.Hops)
	}
	// Latency: 2*1 + 2*40 = 82.
	if math.Abs(res.Latency()-82) > 1e-9 {
		t.Errorf("latency = %v, want 82", res.Latency())
	}
}

func TestInterestAggregation(t *testing.T) {
	eng, net := lineNet(t, nil, nil, CacheNone)
	completed := 0
	for i := 0; i < 5; i++ {
		if err := net.Request(2, 7, func(RequestResult) { completed++ }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if completed != 5 {
		t.Fatalf("completed = %d, want 5", completed)
	}
	// All five concurrent requests for the same content must collapse
	// into a single origin fetch: 3 interest transmissions up (R2->R1,
	// R1->R0, uplink), not 15.
	if net.InterestTransmissions() != 3 {
		t.Errorf("interest transmissions = %d, want 3 (aggregation)", net.InterestTransmissions())
	}
}

func TestLCECachesOnPath(t *testing.T) {
	eng, net := lineNet(t, nil, nil, CacheLCE)
	runOne(t, eng, net, 2, 7)
	// After the first fetch, every router on the return path caches 7.
	for _, r := range []topology.NodeID{0, 1, 2} {
		st, err := net.Store(r)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Contains(7) {
			t.Errorf("router %d missing content after LCE fetch", r)
		}
	}
	// Second request is now a local hit.
	res := runOne(t, eng, net, 2, 7)
	if res.ServedBy != ServedLocal {
		t.Errorf("second fetch served by %v, want local", res.ServedBy)
	}
}

func TestLCDCachesOneLevel(t *testing.T) {
	eng, net := lineNet(t, nil, nil, CacheLCD)
	runOne(t, eng, net, 2, 7)
	// LCD admits only at the first router below the serving point (the
	// gateway R0, hops=1).
	for r, want := range map[topology.NodeID]bool{0: true, 1: false, 2: false} {
		st, _ := net.Store(r)
		if st.Contains(7) != want {
			t.Errorf("router %d contains=%v, want %v", r, st.Contains(7), want)
		}
	}
}

func TestTransmissionCounters(t *testing.T) {
	eng, net := lineNet(t, nil, nil, CacheNone)
	runOne(t, eng, net, 2, 7)
	if net.InterestTransmissions() != 3 || net.DataTransmissions() != 3 {
		t.Errorf("tx counters = %d/%d, want 3/3",
			net.InterestTransmissions(), net.DataTransmissions())
	}
}

func TestStoreAccessor(t *testing.T) {
	_, net := lineNet(t, nil, nil, CacheNone)
	if _, err := net.Store(99); err == nil {
		t.Error("unknown router should fail")
	}
	if st, err := net.Store(0); err != nil || st == nil {
		t.Errorf("Store(0) = %v, %v", st, err)
	}
}

func TestServerKindString(t *testing.T) {
	if ServedLocal.String() != "local" || ServedPeer.String() != "peer" || ServedOrigin.String() != "origin" {
		t.Error("ServerKind names wrong")
	}
	if ServerKind(42).String() == "" {
		t.Error("unknown kind should still format")
	}
}
