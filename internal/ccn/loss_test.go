package ccn

import (
	"testing"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

// lossyNet builds the 3-router line with the given loss rate.
func lossyNet(t *testing.T, lossRate float64, seed int64) (*des.Engine, *Network) {
	t.Helper()
	g := topology.New("line3")
	for i := 0; i < 3; i++ {
		g.AddNode("", 0, 0)
	}
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 5)
	cat, err := catalog.New(100, "/t")
	if err != nil {
		t.Fatal(err)
	}
	eng := &des.Engine{}
	net, err := NewNetwork(eng, g, cat, Options{
		AccessLatency: 1,
		LossRate:      lossRate,
		RetxTimeout:   200,
		LossSeed:      seed,
		Stores: func(topology.NodeID) (cache.Store, error) {
			return cache.NewStatic(nil)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AttachOriginAt(0, 50); err != nil {
		t.Fatal(err)
	}
	return eng, net
}

func TestLossOptionsValidation(t *testing.T) {
	g := topology.New("g")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 0)
	g.MustAddEdge(0, 1, 1)
	cat, _ := catalog.New(10, "/t")
	stores := func(topology.NodeID) (cache.Store, error) { return cache.NewLRU(1) }
	if _, err := NewNetwork(&des.Engine{}, g, cat, Options{Stores: stores, LossRate: 1}); err == nil {
		t.Error("loss rate 1 should fail")
	}
	if _, err := NewNetwork(&des.Engine{}, g, cat, Options{Stores: stores, LossRate: -0.1}); err == nil {
		t.Error("negative loss rate should fail")
	}
	if _, err := NewNetwork(&des.Engine{}, g, cat, Options{Stores: stores, LossRate: 0.1}); err == nil {
		t.Error("lossy fabric without retx timeout should fail")
	}
}

// TestAllRequestsCompleteUnderLoss: retransmission recovers every loss,
// so all requests eventually complete even on a very lossy fabric.
func TestAllRequestsCompleteUnderLoss(t *testing.T) {
	eng, net := lossyNet(t, 0.3, 7)
	const total = 200
	completed := 0
	for i := 0; i < total; i++ {
		id := catalog.ID(i%50 + 1)
		if err := net.Request(2, id, func(RequestResult) { completed++ }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if completed != total {
		t.Fatalf("completed %d of %d requests", completed, total)
	}
	if net.DroppedInterests()+net.DroppedData() == 0 {
		t.Error("30% loss produced no drops; loss process inert?")
	}
	if net.Retransmissions() == 0 {
		t.Error("no retransmissions despite drops")
	}
}

// TestLossRaisesLatency: the same workload completes slower on a lossy
// fabric.
func TestLossRaisesLatency(t *testing.T) {
	meanLatency := func(lossRate float64) float64 {
		eng, net := lossyNet(t, lossRate, 3)
		var sum float64
		var count int
		for i := 0; i < 100; i++ {
			id := catalog.ID(i%20 + 1)
			if err := net.Request(2, id, func(r RequestResult) {
				sum += r.Latency()
				count++
			}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		if count != 100 {
			t.Fatalf("only %d completions", count)
		}
		return sum / float64(count)
	}
	lossless := meanLatency(0)
	lossy := meanLatency(0.25)
	if lossy <= lossless {
		t.Errorf("lossy latency %v not above lossless %v", lossy, lossless)
	}
}

// TestZeroLossIdentical: LossRate 0 must behave exactly like the
// original lossless fabric, counters included.
func TestZeroLossIdentical(t *testing.T) {
	eng, net := lossyNet(t, 0, 1)
	done := 0
	for i := 0; i < 10; i++ {
		if err := net.Request(2, catalog.ID(i+1), func(RequestResult) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if done != 10 {
		t.Fatalf("completed %d", done)
	}
	if net.DroppedInterests() != 0 || net.DroppedData() != 0 || net.Retransmissions() != 0 {
		t.Error("lossless fabric recorded loss activity")
	}
}

// TestLossDeterministic: the same seed reproduces the same loss
// pattern.
func TestLossDeterministic(t *testing.T) {
	run := func() (int64, int64, int64) {
		eng, net := lossyNet(t, 0.2, 42)
		for i := 0; i < 50; i++ {
			if err := net.Request(2, catalog.ID(i+1), nil); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		return net.DroppedInterests(), net.DroppedData(), net.Retransmissions()
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Errorf("loss process not deterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
}

// TestLossyCoordinatedOwnerPath exercises the directory-redirection
// path under loss: interests for coordinated contents are redirected to
// the owner router over a lossy fabric, and retransmission recovers
// every drop, so all requests complete peer-served.
func TestLossyCoordinatedOwnerPath(t *testing.T) {
	g := topology.New("line3")
	for i := 0; i < 3; i++ {
		g.AddNode("", 0, 0)
	}
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 5)
	cat, err := catalog.New(100, "/t")
	if err != nil {
		t.Fatal(err)
	}
	dir := mapDirectory{}
	for i := 1; i <= 20; i++ {
		dir[catalog.ID(i)] = 1
	}
	eng := &des.Engine{}
	net, err := NewNetwork(eng, g, cat, Options{
		AccessLatency: 1,
		LossRate:      0.25,
		RetxTimeout:   200,
		LossSeed:      11,
		Directory:     dir,
		// Keep every retry on the owner path: this test pins down the
		// redirection machinery itself, not the degradation to origin.
		// (The fallback is already inert without Options.Faults; the
		// explicit -1 keeps the test self-contained.)
		OriginFallbackRetries: -1,
		Stores: func(r topology.NodeID) (cache.Store, error) {
			if r == 1 {
				return cache.NewStatic(cache.RankRange(1, 20))
			}
			return cache.NewStatic(nil)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AttachOriginAt(0, 50); err != nil {
		t.Fatal(err)
	}
	const total = 100
	completed, peer, failed := 0, 0, 0
	for i := 0; i < total; i++ {
		id := catalog.ID(i%20 + 1) // all redirected to owner 1
		if err := net.Request(2, id, func(r RequestResult) {
			completed++
			if r.Failed {
				failed++
			}
			if r.ServedBy == ServedPeer {
				peer++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if completed != total {
		t.Fatalf("completed %d of %d requests", completed, total)
	}
	if failed != 0 {
		t.Errorf("%d requests failed; the owner is up, retries should recover", failed)
	}
	if peer != total {
		t.Errorf("%d of %d served by the owner; directory redirection under loss broken?", peer, total)
	}
	if net.DroppedInterests()+net.DroppedData() == 0 {
		t.Error("25% loss produced no drops on the owner path")
	}
	if net.Retransmissions() == 0 {
		t.Error("no retransmissions despite drops on the owner path")
	}
}

func TestCacheProbValidation(t *testing.T) {
	g := topology.New("g")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 0)
	g.MustAddEdge(0, 1, 1)
	cat, _ := catalog.New(10, "/t")
	stores := func(topology.NodeID) (cache.Store, error) { return cache.NewLRU(2) }
	if _, err := NewNetwork(&des.Engine{}, g, cat, Options{Stores: stores, Mode: CacheProb}); err == nil {
		t.Error("CacheProb without probability should fail")
	}
	if _, err := NewNetwork(&des.Engine{}, g, cat, Options{Stores: stores, Mode: CacheProb, CacheProbability: 1.5}); err == nil {
		t.Error("probability > 1 should fail")
	}
}

// TestCacheProbThinsReplicas: with a low admission probability the
// network stores far fewer copies than LCE for the same traffic.
func TestCacheProbThinsReplicas(t *testing.T) {
	replicas := func(mode CachingMode, p float64) int {
		g := topology.New("line5")
		for i := 0; i < 5; i++ {
			g.AddNode("", 0, 0)
		}
		for i := 0; i+1 < 5; i++ {
			g.MustAddEdge(topology.NodeID(i), topology.NodeID(i+1), 5)
		}
		cat, err := catalog.New(10, "/t")
		if err != nil {
			t.Fatal(err)
		}
		eng := &des.Engine{}
		net, err := NewNetwork(eng, g, cat, Options{
			AccessLatency: 1, Mode: mode, CacheProbability: p, LossSeed: 5,
			Stores: func(topology.NodeID) (cache.Store, error) { return cache.NewLRU(10) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AttachOriginAt(0, 50); err != nil {
			t.Fatal(err)
		}
		// One request per content from the far end; the return path
		// crosses all five routers.
		for i := 1; i <= 10; i++ {
			if err := net.Request(4, catalog.ID(i), nil); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		count := 0
		for r := topology.NodeID(0); r < 5; r++ {
			st, err := net.Store(r)
			if err != nil {
				t.Fatal(err)
			}
			count += st.Len()
		}
		return count
	}
	lce := replicas(CacheLCE, 0)
	prob := replicas(CacheProb, 0.2)
	if prob >= lce {
		t.Errorf("probabilistic caching stored %d copies, LCE stored %d", prob, lce)
	}
	if prob == 0 {
		t.Error("probabilistic caching stored nothing at p=0.2 over 50 arrivals")
	}
}
