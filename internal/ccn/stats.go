package ccn

import (
	"fmt"

	"ccncoord/internal/topology"
)

// NodeStats is a per-router snapshot of data-plane activity, useful for
// debugging placements and for the coordination protocol's enforcement
// checks.
type NodeStats struct {
	Router topology.NodeID `json:"router"`
	// CSHits counts content-store hits at interest arrival.
	CSHits int64 `json:"cs_hits"`
	// CSMisses counts interests that missed the content store.
	CSMisses int64 `json:"cs_misses"`
	// Aggregated counts interests collapsed into an existing PIT entry.
	Aggregated int64 `json:"aggregated"`
	// Forwarded counts interests sent upstream from this router.
	Forwarded int64 `json:"forwarded"`
	// PITPeak is the largest number of simultaneously pending distinct
	// contents observed.
	PITPeak int `json:"pit_peak"`
	// PITPending is the current number of pending distinct contents.
	PITPending int `json:"pit_pending"`
}

// HitRatio returns CSHits / (CSHits + CSMisses), or 0 with no traffic.
func (s NodeStats) HitRatio() float64 {
	total := s.CSHits + s.CSMisses
	if total == 0 {
		return 0
	}
	return float64(s.CSHits) / float64(total)
}

// Stats returns the activity snapshot of one router.
func (n *Network) Stats(id topology.NodeID) (NodeStats, error) {
	if int(id) < 0 || int(id) >= len(n.nodes) {
		return NodeStats{}, fmt.Errorf("ccn: unknown router %d", id)
	}
	nd := n.nodes[id]
	return NodeStats{
		Router:     id,
		CSHits:     nd.csHits,
		CSMisses:   nd.csMisses,
		Aggregated: nd.aggregated,
		Forwarded:  nd.forwarded,
		PITPeak:    nd.pitPeak,
		PITPending: len(nd.pit),
	}, nil
}

// AllStats returns every router's snapshot in ID order.
func (n *Network) AllStats() []NodeStats {
	out := make([]NodeStats, 0, len(n.nodes))
	for _, nd := range n.nodes {
		out = append(out, NodeStats{
			Router:     nd.id,
			CSHits:     nd.csHits,
			CSMisses:   nd.csMisses,
			Aggregated: nd.aggregated,
			Forwarded:  nd.forwarded,
			PITPeak:    nd.pitPeak,
			PITPending: len(nd.pit),
		})
	}
	return out
}

// StatsTotals is the network-wide sum of per-router activity, the
// aggregate a run manifest records next to the per-router snapshots.
type StatsTotals struct {
	CSHits     int64 `json:"cs_hits"`
	CSMisses   int64 `json:"cs_misses"`
	Aggregated int64 `json:"aggregated"`
	Forwarded  int64 `json:"forwarded"`
}

// SumStats totals the given per-router snapshots.
func SumStats(all []NodeStats) StatsTotals {
	var t StatsTotals
	for _, s := range all {
		t.CSHits += s.CSHits
		t.CSMisses += s.CSMisses
		t.Aggregated += s.Aggregated
		t.Forwarded += s.Forwarded
	}
	return t
}

// FailLink removes the link between a and b and recomputes all routes.
// It fails (leaving the network unchanged) if the link does not exist or
// if removing it would disconnect the domain — a disconnected CCN domain
// cannot satisfy the model's assumptions, so the caller must handle
// partition scenarios explicitly.
func (n *Network) FailLink(a, b topology.NodeID) error {
	if !n.graph.HasEdge(a, b) {
		return fmt.Errorf("ccn: no link %d-%d to fail", a, b)
	}
	for _, nd := range n.nodes {
		if len(nd.pit) > 0 {
			return fmt.Errorf("ccn: cannot fail links with %d interests pending at router %d", len(nd.pit), nd.id)
		}
	}
	trial := n.graph.Clone()
	if err := trial.RemoveEdge(a, b); err != nil {
		return fmt.Errorf("ccn: failing link %d-%d: %w", a, b, err)
	}
	if !trial.Connected() {
		return fmt.Errorf("ccn: failing link %d-%d would disconnect the domain", a, b)
	}
	n.graph = trial
	routes, err := topology.NewPathProvider(trial, n.opts.Routing)
	if err != nil {
		return fmt.Errorf("ccn: failing link %d-%d: %w", a, b, err)
	}
	n.lat = routes
	// The permanent topology change invalidates any attached incremental
	// rerouting engine; the next fault event re-attaches one to the new
	// graph, seeded with whatever down state still exists.
	n.dyn = nil
	return nil
}
