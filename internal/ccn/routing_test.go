package ccn

import (
	"strings"
	"testing"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

// TestFaultsRequireDenseRouting pins the errored fallback: a
// fault-aware plane cannot run on a sparse routing backend (incremental
// rerouting repairs a materialized matrix), and NewNetwork must say so
// instead of silently misrouting around outages.
func TestFaultsRequireDenseRouting(t *testing.T) {
	g := topology.New("g")
	for i := 0; i < 3; i++ {
		g.AddNode("", 0, 0)
	}
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	cat, err := catalog.New(10, "/t")
	if err != nil {
		t.Fatal(err)
	}
	stores := func(topology.NodeID) (cache.Store, error) { return cache.NewLRU(1) }

	for _, b := range []topology.Backend{topology.BackendLRU, topology.BackendLandmark} {
		_, err := NewNetwork(&des.Engine{}, g, cat, Options{
			Stores: stores, Faults: true, RetxTimeout: 100, Routing: b,
		})
		if err == nil {
			t.Fatalf("Faults with %v backend should fail", b)
		}
		if !strings.Contains(err.Error(), "dense routing backend") {
			t.Errorf("Faults with %v backend: unhelpful error %v", b, err)
		}
	}

	// Dense (explicit or auto-resolved on a small graph) stays fine.
	for _, b := range []topology.Backend{topology.BackendAuto, topology.BackendDense} {
		if _, err := NewNetwork(&des.Engine{}, g, cat, Options{
			Stores: stores, Faults: true, RetxTimeout: 100, Routing: b,
		}); err != nil {
			t.Errorf("Faults with %v backend: %v", b, err)
		}
	}
}

// TestSparseRoutingDataPlane runs the same request stream over the
// dense and LRU backends and checks the planes behave identically —
// the data plane only consults Next, which is bit-identical.
func TestSparseRoutingDataPlane(t *testing.T) {
	for _, b := range []topology.Backend{topology.BackendDense, topology.BackendLRU} {
		g := topology.New("line3")
		for i := 0; i < 3; i++ {
			g.AddNode("", 0, 0)
		}
		g.MustAddEdge(0, 1, 5)
		g.MustAddEdge(1, 2, 5)
		cat, err := catalog.New(100, "/t")
		if err != nil {
			t.Fatal(err)
		}
		eng := &des.Engine{}
		net, err := NewNetwork(eng, g, cat, Options{
			AccessLatency: 1,
			Routing:       b,
			Stores: func(id topology.NodeID) (cache.Store, error) {
				return cache.NewLRU(2)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AttachOriginAt(0, 50); err != nil {
			t.Fatal(err)
		}
		res := runOne(t, eng, net, 2, 1)
		// R2 -> R1 -> R0 -> origin and back: 2*(1 + 5 + 5 + 50) = 122.
		if res.Latency() != 122 {
			t.Errorf("%v backend: latency %v, want 122", b, res.Latency())
		}
		if res.ServedBy != ServedOrigin {
			t.Errorf("%v backend: served by %v, want origin", b, res.ServedBy)
		}
	}
}
