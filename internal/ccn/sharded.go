// Sharded execution of the CCN data plane: the same router state and
// forwarding logic as the serial plane, driven by a des.Sharded engine
// with each router's state owned by exactly one shard. Every event at a
// router executes on its owning shard; cross-shard interactions (an
// interest forwarded to a neighbor in another shard, data returning
// across the boundary) ride network links, whose latency is at least
// the partition's cut latency — the engine's conservative lookahead —
// so the window protocol never reorders them.
package ccn

import (
	"fmt"

	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

// NewShardedNetwork builds a CCN data plane driven by a sharded engine.
// shardOf maps every router to its owning shard (normally a
// topology.PartitionGraph assignment), and the engine's lookahead must
// be at most the partition's cut latency or cross-shard sends will be
// rejected at forwarding time.
//
// Only deterministic-under-sharding configurations are accepted: no
// tracer (the event stream is a globally ordered artifact), no loss,
// faults, probabilistic caching (shared RNG), and no finite link rate
// (shared queueing accumulators). Callers needing those features run
// serially — the sim layer falls back to one shard automatically.
func NewShardedNetwork(se *des.Sharded, shardOf []int32, g *topology.Graph, cat *catalog.Catalog, opts Options) (*Network, error) {
	switch {
	case se == nil:
		return nil, fmt.Errorf("ccn: nil sharded engine")
	case g != nil && len(shardOf) != g.N():
		return nil, fmt.Errorf("ccn: shard map covers %d of %d routers", len(shardOf), g.N())
	case opts.Tracer != nil:
		return nil, fmt.Errorf("ccn: tracing requires serial execution (the trace stream is globally ordered)")
	case opts.LossRate > 0:
		return nil, fmt.Errorf("ccn: lossy fabrics require serial execution (shared loss RNG)")
	case opts.Faults:
		return nil, fmt.Errorf("ccn: fault-aware planes require serial execution")
	case opts.LinkRate > 0:
		return nil, fmt.Errorf("ccn: finite link rate requires serial execution (shared queueing state)")
	case opts.Mode == CacheProb:
		return nil, fmt.Errorf("ccn: probabilistic caching requires serial execution (shared admission RNG)")
	}
	for r, s := range shardOf {
		if s < 0 || int(s) >= se.Shards() {
			return nil, fmt.Errorf("ccn: router %d mapped to shard %d, engine has %d", r, s, se.Shards())
		}
	}
	n, err := buildNetwork(g, cat, opts)
	if err != nil {
		return nil, err
	}
	n.se = se
	n.shardOf = shardOf
	n.tx = make([]txShard, se.Shards())
	return n, nil
}

// Sharded reports whether the network runs on a sharded engine.
func (n *Network) Sharded() bool { return n.se != nil }
