package model

import (
	"fmt"
	"math"

	"ccncoord/internal/solve"
	"ccncoord/internal/zipf"
)

// This file implements the paper's first future-work direction: a
// heterogeneous model in which routers have different storage capacities.
// Router i dedicates the fraction l of its own capacity c_i to the
// coordinated pool, so the network jointly stores sum_i(l*c_i) distinct
// coordinated contents while router i keeps its top (1-l)*c_i contents
// locally. The mean latency averages Eq. (2) over routers (requests are
// assumed to arrive uniformly across first-hop routers, matching the
// homogeneous model's implicit assumption).

// HeteroConfig is the heterogeneous-capacity variant of Config.
type HeteroConfig struct {
	S          float64   // Zipf exponent
	N          float64   // number of contents
	Capacities []float64 // c_i per router; length defines n
	Lat        Latency
	UnitCost   float64 // w
	FixedCost  float64
	Alpha      float64
	// Amortization as in Config; zero means 1.
	Amortization float64
}

// Validate checks the heterogeneous analogue of the Lemma 1 conditions.
func (h HeteroConfig) Validate() error {
	if len(h.Capacities) <= 1 {
		return fmt.Errorf("model: heterogeneous network needs more than one router, got %d", len(h.Capacities))
	}
	var total float64
	for i, c := range h.Capacities {
		if !(c > 0) {
			return fmt.Errorf("model: capacity of router %d must be positive, got %v", i, c)
		}
		total += c
	}
	switch {
	case !(h.N > total):
		return fmt.Errorf("model: N (%v) should exceed total network storage (%v)", h.N, total)
	case !(h.S > 0 && h.S < 2) || h.S == 1:
		return fmt.Errorf("model: Zipf exponent s must lie in (0,1) U (1,2), got %v", h.S)
	case !h.Lat.Valid():
		return fmt.Errorf("model: latencies must satisfy 0 < d0 < d1 <= d2, got %+v", h.Lat)
	case h.Alpha < 0 || h.Alpha > 1:
		return fmt.Errorf("model: alpha must lie in [0,1], got %v", h.Alpha)
	case h.Alpha < 1 && !(h.UnitCost > 0):
		return fmt.Errorf("model: unit cost w must be positive when alpha < 1, got %v", h.UnitCost)
	}
	return nil
}

// rho returns the effective amortization divisor.
func (h HeteroConfig) rho() float64 {
	if h.Amortization > 0 {
		return h.Amortization
	}
	return 1
}

// TotalCapacity returns sum_i c_i.
func (h HeteroConfig) TotalCapacity() float64 {
	var total float64
	for _, c := range h.Capacities {
		total += c
	}
	return total
}

// homogeneous reports whether all capacities are equal, in which case the
// heterogeneous model must coincide with Config.
func (h HeteroConfig) homogeneous() bool {
	for _, c := range h.Capacities[1:] {
		if c != h.Capacities[0] {
			return false
		}
	}
	return true
}

// T returns the router-averaged mean latency at coordination level
// l in [0, 1]. Coordinated contents occupy the rank band following each
// router's local prefix; as in the homogeneous model, the band is shared,
// so a request at router i is local within its own top (1-l)c_i, served by
// a peer within the next pooled+local span, and by the origin otherwise.
func (h HeteroConfig) T(l float64) float64 {
	l = clamp(l, 0, 1)
	pool := l * h.TotalCapacity()
	var sum float64
	for _, ci := range h.Capacities {
		localTop := (1 - l) * ci
		local := ContinuousF(localTop, h.S, h.N)
		// Distinct contents reachable in-network from router i: its own
		// local prefix plus the pooled coordinated band plus peers' local
		// prefixes beyond its own are duplicates of the same top ranks, so
		// the in-network span is max over peers' local prefix + pool.
		span := h.maxLocalTop(l) + pool
		network := ContinuousF(span, h.S, h.N)
		if network < local {
			network = local
		}
		sum += local*h.Lat.D0 + (network-local)*h.Lat.D1 + (1-network)*h.Lat.D2
	}
	return sum / float64(len(h.Capacities))
}

// maxLocalTop returns the largest local prefix across routers at level l.
func (h HeteroConfig) maxLocalTop(l float64) float64 {
	var m float64
	for _, ci := range h.Capacities {
		if v := (1 - l) * ci; v > m {
			m = v
		}
	}
	return m
}

// W returns the coordination cost at level l: each router contributes
// messages proportional to its coordinated share l*c_i.
func (h HeteroConfig) W(l float64) float64 {
	return (h.UnitCost*l*h.TotalCapacity() + h.FixedCost) / h.rho()
}

// Tw returns the combined objective at level l.
func (h HeteroConfig) Tw(l float64) float64 {
	return h.Alpha*h.T(l) + (1-h.Alpha)*h.W(l)
}

// OptimalLevel minimizes Tw over l in [0, 1] by golden-section search
// (the objective is convex in l for the same reasons as Lemma 1; we avoid
// relying on a closed-form derivative for the max term).
func (h HeteroConfig) OptimalLevel() (float64, error) {
	if err := h.Validate(); err != nil {
		return 0, err
	}
	if h.Alpha == 0 {
		return 0, nil
	}
	minC := math.Inf(1)
	for _, c := range h.Capacities {
		minC = math.Min(minC, c)
	}
	// Stay one content object away from the l=1 singularity of the
	// smallest router's local prefix.
	hi := 1 - 1/minC
	if hi <= 0 {
		return 0, nil
	}
	l, err := solve.GoldenSection(h.Tw, 0, hi, 1e-10)
	if err != nil {
		return 0, fmt.Errorf("model: heterogeneous optimization: %w", err)
	}
	return l, nil
}

// ContinuousF exposes the Eq. (6) CDF at package level for callers that
// have raw parameters rather than a Config.
func ContinuousF(x, s, n float64) float64 {
	return zipf.ContinuousCDF(x, s, n)
}
