package model

import (
	"fmt"

	"ccncoord/internal/solve"
)

// This file provides inverse queries on the optimal strategy, useful
// when a carrier works backwards from a provisioning target ("how much
// must we value performance to justify coordinating half the fleet?").

// AlphaForLevel returns the trade-off weight alpha at which the optimal
// coordination level first reaches target (in (0, 1)). Because l*(alpha)
// is nondecreasing, the answer is unique up to flat regions; the lowest
// such alpha is returned. It fails if even alpha = 1 cannot reach the
// target. The configuration's own Alpha is ignored.
func (c Config) AlphaForLevel(target float64) (float64, error) {
	if !(target > 0 && target < 1) {
		return 0, fmt.Errorf("model: target level %v outside (0, 1)", target)
	}
	probe := c
	probe.Alpha = 1
	if err := probe.Validate(); err != nil {
		return 0, err
	}
	levelAt := func(alpha float64) (float64, error) {
		probe := c
		probe.Alpha = alpha
		return probe.OptimalLevel()
	}
	top, err := levelAt(1)
	if err != nil {
		return 0, err
	}
	if top < target {
		return 0, fmt.Errorf("model: target level %v unreachable; l*(alpha=1) = %v", target, top)
	}
	const eps = 1e-6
	bottom, err := levelAt(eps)
	if err != nil {
		return 0, err
	}
	if bottom >= target {
		return eps, nil
	}
	root, err := solve.Bisect(func(a float64) float64 {
		l, err := levelAt(a)
		if err != nil {
			// Force the bracket away from invalid regions; Validate only
			// rejects alpha outside [0,1], which Bisect never probes.
			return -1
		}
		return l - target
	}, eps, 1, 1e-6)
	if err != nil {
		return 0, fmt.Errorf("model: inverting l*(alpha): %w", err)
	}
	return root, nil
}

// CostBudgetForLevel returns the largest unit coordination cost w under
// which the optimal level still reaches target, holding everything else
// (including Alpha < 1) fixed. l*(w) is nonincreasing, so the answer is
// the unique crossing; it fails if the target is unreachable even at
// negligible cost or if Alpha = 1 (then w is irrelevant).
func (c Config) CostBudgetForLevel(target float64) (float64, error) {
	if !(target > 0 && target < 1) {
		return 0, fmt.Errorf("model: target level %v outside (0, 1)", target)
	}
	if c.Alpha >= 1 {
		return 0, fmt.Errorf("model: cost budget is undefined at alpha = 1 (cost never matters)")
	}
	levelAt := func(w float64) (float64, error) {
		probe := c
		probe.UnitCost = w
		return probe.OptimalLevel()
	}
	const wMin, wMax = 1e-9, 1e9
	if err := func() error {
		probe := c
		probe.UnitCost = wMin
		return probe.Validate()
	}(); err != nil {
		return 0, err
	}
	atMin, err := levelAt(wMin)
	if err != nil {
		return 0, err
	}
	if atMin < target {
		return 0, fmt.Errorf("model: target level %v unreachable even at negligible cost (l* = %v)", target, atMin)
	}
	atMax, err := levelAt(wMax)
	if err != nil {
		return 0, err
	}
	if atMax >= target {
		return wMax, nil
	}
	root, err := solve.Bisect(func(w float64) float64 {
		l, err := levelAt(w)
		if err != nil {
			return -1
		}
		return l - target
	}, wMin, wMax, 1e-6)
	if err != nil {
		return 0, fmt.Errorf("model: inverting l*(w): %w", err)
	}
	return root, nil
}
