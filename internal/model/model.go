// Package model implements the paper's holistic performance-cost model for
// coordinated in-network caching in content-centric networks (Li, Xie, Wen,
// Zhang — ICDCS 2013, Sections III-IV).
//
// A network of n identical routers, each with storage capacity c (in unit
// contents), serves requests for N contents whose popularity is Zipf with
// exponent s. Each router dedicates c-x slots to non-coordinated caching
// (everyone stores the top-ranked contents) and x slots to coordinated
// caching (the n routers jointly store the next n*x distinct contents).
// Serving tiers have mean latencies d0 (local), d1 (peer router), d2
// (origin). The model combines the mean request latency T(x) (Eq. 2) with
// the coordination cost W(x) (Eq. 3) into the convex objective T_w (Eq. 4)
// and exposes the optimal coordination level l* = x*/c along with the
// origin-load and routing-performance gains of Section IV-E.
package model

import (
	"fmt"
	"math"

	"ccncoord/internal/solve"
	"ccncoord/internal/zipf"
)

// Latency holds the three tiered mean latencies of the model. Any time
// unit may be used as long as it is consistent; the paper uses
// milliseconds. The model's optimal strategy depends only on the tier
// ratio Gamma (the "latency scale free" property of Theorem 2).
type Latency struct {
	D0 float64 // client <-> first-hop router, content served locally
	D1 float64 // content fetched from a peer router in the same domain
	D2 float64 // content fetched from the origin server
}

// Valid reports whether d0 < d1 <= d2 and all are positive, the latency
// ordering required by Lemma 1.
func (l Latency) Valid() bool {
	return l.D0 > 0 && l.D0 < l.D1 && l.D1 <= l.D2
}

// T1 returns the first-tier latency ratio t1 = d1/d0.
func (l Latency) T1() float64 { return l.D1 / l.D0 }

// T2 returns the second-tier latency ratio t2 = d2/d1.
func (l Latency) T2() float64 { return l.D2 / l.D1 }

// Gamma returns the tiered latency ratio gamma = (d2-d1)/(d1-d0).
func (l Latency) Gamma() float64 { return (l.D2 - l.D1) / (l.D1 - l.D0) }

// LatencyFromGamma builds a Latency with the given tier gap d1-d0 and
// tiered ratio gamma, anchored at d0. It is the inverse of Gamma for
// constructing figure-parameter configurations: d1 = d0 + gap and
// d2 = d1 + gamma*gap.
func LatencyFromGamma(d0, gap, gamma float64) Latency {
	d1 := d0 + gap
	return Latency{D0: d0, D1: d1, D2: d1 + gamma*gap}
}

// Config collects every parameter of the performance-cost model. The zero
// value is not usable; fill in all fields (Amortization may be left 0 for
// the paper-literal cost formula). See Table IV of the paper for the
// empirical ranges.
type Config struct {
	S       float64 // Zipf exponent, (0,1) U (1,2) per the paper
	N       float64 // number of contents (>> 1)
	C       float64 // per-router storage capacity, unit contents
	Routers int     // n, number of routers (> 1)
	Lat     Latency // tiered latencies d0 < d1 <= d2

	UnitCost  float64 // w: communication cost per coordinated content per router
	FixedCost float64 // w-hat: constant computational + enforcement cost
	Alpha     float64 // trade-off weight in [0,1]; 1 = pure routing performance

	// Amortization (rho) divides the coordination cost, expressing it per
	// served request rather than per epoch. Zero or negative means 1, the
	// paper-literal Eq. (3). The figure harness sets it to the
	// cache-boundary request mass 1/F'(c) (see DESIGN.md section 4).
	Amortization float64
}

// rho returns the effective amortization divisor.
func (c Config) rho() float64 {
	if c.Amortization > 0 {
		return c.Amortization
	}
	return 1
}

// Validate checks the Lemma 1 conditions for existence of the optimal
// strategy. It returns a descriptive error for the first violated
// condition, or nil if the optimum is guaranteed to exist and be unique.
func (c Config) Validate() error {
	switch {
	case !(c.C > 0):
		return fmt.Errorf("model: capacity c must be positive, got %v", c.C)
	case !(c.N > 1):
		return fmt.Errorf("model: content population N must exceed 1, got %v", c.N)
	case c.Routers <= 1:
		return fmt.Errorf("model: router count n must exceed 1, got %d", c.Routers)
	case !(c.S > 0 && c.S < 2):
		return fmt.Errorf("model: Zipf exponent s must lie in (0,2), got %v", c.S)
	case c.S == 1:
		return fmt.Errorf("model: Zipf exponent s = 1 is the singular point excluded by the paper")
	case !c.Lat.Valid():
		return fmt.Errorf("model: latencies must satisfy 0 < d0 < d1 <= d2, got %+v", c.Lat)
	case c.Alpha < 0 || c.Alpha > 1:
		return fmt.Errorf("model: trade-off weight alpha must lie in [0,1], got %v", c.Alpha)
	case c.Alpha < 1 && !(c.UnitCost > 0):
		return fmt.Errorf("model: unit coordination cost w must be positive when alpha < 1, got %v", c.UnitCost)
	case c.N < c.C*float64(c.Routers):
		return fmt.Errorf("model: N (%v) should exceed the total network storage n*c (%v) for the model to be meaningful", c.N, c.C*float64(c.Routers))
	}
	return nil
}

// F returns the continuous cumulative popularity F(y; s, N) of Eq. (6).
func (c Config) F(y float64) float64 {
	return zipf.ContinuousCDF(y, c.S, c.N)
}

// T returns the mean request latency of Eq. (2) at coordinated allocation
// x in [0, c]:
//
//	T(x) = F(c-x) d0 + [F(c+(n-1)x) - F(c-x)] d1 + [1 - F(c+(n-1)x)] d2.
//
// Arguments outside [0, c] are clamped.
func (c Config) T(x float64) float64 {
	x = clamp(x, 0, c.C)
	local := c.F(c.C - x)
	network := c.F(c.C + float64(c.Routers-1)*x)
	if network < local {
		network = local // guard against rounding at the domain edges
	}
	return local*c.Lat.D0 + (network-local)*c.Lat.D1 + (1-network)*c.Lat.D2
}

// T0 returns the non-coordinated mean latency T(0).
func (c Config) T0() float64 { return c.T(0) }

// W returns the coordination cost of Eq. (3), amortized by rho:
//
//	W(x) = (w n x + w-hat) / rho.
func (c Config) W(x float64) float64 {
	return (c.UnitCost*float64(c.Routers)*x + c.FixedCost) / c.rho()
}

// Tw returns the combined objective of Eq. (4):
// alpha*T(x) + (1-alpha)*W(x).
func (c Config) Tw(x float64) float64 {
	return c.Alpha*c.T(x) + (1-c.Alpha)*c.W(x)
}

// DTw returns the analytic first derivative of Tw (Appendix Eq. 10),
// valid on the interior domain 1 <= c-x and c+(n-1)x <= N:
//
//	(1-s) alpha / (N^(1-s)-1) * [ (d1-d0)(c-x)^-s - (d2-d1)(n-1)(c+(n-1)x)^-s ]
//	+ (1-alpha) w n / rho.
func (c Config) DTw(x float64) float64 {
	n := float64(c.Routers)
	dLocal := zipf.ContinuousPDF(c.C-x, c.S, c.N)
	dNetwork := zipf.ContinuousPDF(c.C+(n-1)*x, c.S, c.N)
	perf := (c.Lat.D1-c.Lat.D0)*dLocal - (c.Lat.D2-c.Lat.D1)*(n-1)*dNetwork
	return c.Alpha*perf + (1-c.Alpha)*c.UnitCost*n/c.rho()
}

// D2Tw returns the analytic second derivative of Tw on the interior
// domain; positivity is the convexity claim of Lemma 1.
func (c Config) D2Tw(x float64) float64 {
	n := float64(c.Routers)
	s := c.S
	coeff := func(y float64) float64 {
		if y <= 1 || y >= c.N {
			return 0
		}
		// d/dy of F'(y) = -s * F'(y) / y
		return -s * zipf.ContinuousPDF(y, s, c.N) / y
	}
	// d/dx F'(c-x) = -coeff(c-x); d/dx F'(c+(n-1)x) = (n-1)*coeff(...).
	// coeff is negative, so both contributions below are positive.
	perf := -(c.Lat.D1-c.Lat.D0)*coeff(c.C-x) - (c.Lat.D2-c.Lat.D1)*(n-1)*(n-1)*coeff(c.C+(n-1)*x)
	return c.Alpha * perf
}

// clamp limits v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}

// optTol is the absolute tolerance on x for the convex minimization; with
// capacities of 10^3..10^9 contents a 1e-9-relative tolerance is far below
// one content object.
const optTol = 1e-12

// OptimalX minimizes Tw over x in [0, c] (Eq. 5) and returns the optimal
// coordinated allocation x*. The search runs on [0, c-1] because the last
// unit of local storage makes F(c-x) reach its domain edge; the omitted
// sliver is below one content object of resolution.
func (c Config) OptimalX() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if c.Alpha == 0 {
		// Pure cost: W increases in x, so no coordination.
		return 0, nil
	}
	hi := c.C - 1
	if hi <= 0 {
		return 0, nil
	}
	x, err := solve.MinimizeConvexBounded(c.DTw, 0, hi, optTol*c.C)
	if err != nil {
		return 0, fmt.Errorf("model: optimizing Tw: %w", err)
	}
	return x, nil
}

// OptimalLevel returns the optimal strategy l* = x*/c in [0, 1].
func (c Config) OptimalLevel() (float64, error) {
	x, err := c.OptimalX()
	if err != nil {
		return 0, err
	}
	return x / c.C, nil
}

// A returns the fixed-point coefficient a ~= gamma * n^(1-s) of Lemma 2.
func (c Config) A() float64 {
	return c.Lat.Gamma() * math.Pow(float64(c.Routers), 1-c.S)
}

// B returns the fixed-point coefficient of Lemma 2,
//
//	b ~= (1-alpha)/alpha * (N^(1-s)-1)/(1-s) * (n-1) w c^s / ((d1-d0) rho),
//
// which is nonnegative for all s in (0,1) U (1,2). It is +Inf at alpha=0
// and 0 at alpha=1.
func (c Config) B() float64 {
	if c.Alpha == 0 {
		return math.Inf(1)
	}
	popScale := (math.Pow(c.N, 1-c.S) - 1) / (1 - c.S)
	return (1 - c.Alpha) / c.Alpha * popScale *
		float64(c.Routers-1) * c.UnitCost * math.Pow(c.C, c.S) /
		((c.Lat.D1 - c.Lat.D0) * c.rho())
}

// FixedPointLevel solves Lemma 2's equation a*l^-s = (1-l)^-s + b for the
// optimal strategy l* on (0,1). Theorem 1 guarantees a unique solution:
// the left side decreases monotonically from +Inf to a while the right
// side increases from 1+b to +Inf. It is an approximation of OptimalLevel
// that replaces 1+(n-1)l by n*l (accurate for large n*l).
func (c Config) FixedPointLevel() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if c.Alpha == 0 {
		return 0, nil
	}
	a, b := c.A(), c.B()
	if math.IsInf(b, 1) {
		return 0, nil
	}
	g := func(l float64) float64 {
		return a*math.Pow(l, -c.S) - math.Pow(1-l, -c.S) - b
	}
	const eps = 1e-12
	root, err := solve.Brent(g, eps, 1-eps, 1e-14)
	if err != nil {
		return 0, fmt.Errorf("model: fixed point of Lemma 2: %w", err)
	}
	return root, nil
}

// ClosedFormLevel returns Theorem 2's closed-form optimal strategy for
// alpha = 1:
//
//	l* = 1 / (1 + gamma^(-1/s) * n^(1-1/s)).
//
// Note the gamma exponent: the paper's Eq. (8) prints gamma^(+1/s), which
// contradicts its own Eq. (7)/(9), the Figure 4 claim that larger gamma
// yields more coordination, and the quoted l*(s->2) ~= 0.35 at gamma=5,
// n=20. This is the derivation-consistent form; see PaperClosedFormLevel
// for the printed one. The asymptotics match the paper's discussion:
// s in (0,1) gives l* -> 1 and s in (1,2) gives l* -> 0 as n grows.
func ClosedFormLevel(gamma float64, n int, s float64) float64 {
	return 1 / (1 + math.Pow(gamma, -1/s)*math.Pow(float64(n), 1-1/s))
}

// PaperClosedFormLevel returns Eq. (8) exactly as printed,
// l* = 1/(gamma^(1/s) n^(1-1/s) + 1). Retained for documentation and the
// erratum tests; use ClosedFormLevel for actual provisioning.
func PaperClosedFormLevel(gamma float64, n int, s float64) float64 {
	return 1 / (math.Pow(gamma, 1/s)*math.Pow(float64(n), 1-1/s) + 1)
}
