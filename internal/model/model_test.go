package model

import (
	"math"
	"testing"
	"testing/quick"

	"ccncoord/internal/solve"
	"ccncoord/internal/zipf"
)

// usA returns the paper's Table IV base configuration (US-A topology
// parameters: n=20, w=26.7, d1-d0=2.2842 hops) with the figure-harness
// amortization. Callers override fields as needed.
func usA(alpha, gamma, s float64) Config {
	const (
		nContents = 1e6
		capacity  = 1e3
	)
	return Config{
		S:            s,
		N:            nContents,
		C:            capacity,
		Routers:      20,
		Lat:          LatencyFromGamma(1, 2.2842, gamma),
		UnitCost:     26.7,
		Alpha:        alpha,
		Amortization: zipf.BoundaryMass(capacity, s, nContents),
	}
}

func TestLatencyRatios(t *testing.T) {
	l := Latency{D0: 10, D1: 30, D2: 130}
	if got := l.T1(); got != 3 {
		t.Errorf("T1 = %v, want 3", got)
	}
	if got := l.T2(); math.Abs(got-130.0/30) > 1e-15 {
		t.Errorf("T2 = %v, want %v", got, 130.0/30)
	}
	if got := l.Gamma(); got != 5 {
		t.Errorf("Gamma = %v, want 5", got)
	}
	if !l.Valid() {
		t.Error("latency should be valid")
	}
}

func TestLatencyValid(t *testing.T) {
	tests := []struct {
		name string
		l    Latency
		want bool
	}{
		{"ordered", Latency{1, 3, 10}, true},
		{"d1 == d2", Latency{1, 3, 3}, true},
		{"d0 == d1", Latency{3, 3, 10}, false},
		{"d0 > d1", Latency{5, 3, 10}, false},
		{"d2 < d1", Latency{1, 5, 3}, false},
		{"zero d0", Latency{0, 3, 10}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.l.Valid(); got != tt.want {
				t.Errorf("Valid() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLatencyFromGamma(t *testing.T) {
	l := LatencyFromGamma(2, 3, 5)
	if l.D0 != 2 || l.D1 != 5 || l.D2 != 20 {
		t.Errorf("LatencyFromGamma = %+v, want {2 5 20}", l)
	}
	if got := l.Gamma(); math.Abs(got-5) > 1e-12 {
		t.Errorf("round-trip Gamma = %v, want 5", got)
	}
}

func TestValidate(t *testing.T) {
	base := usA(0.5, 5, 0.8)
	mutate := func(f func(*Config)) Config {
		c := base
		f(&c)
		return c
	}
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid", base, false},
		{"zero capacity", mutate(func(c *Config) { c.C = 0 }), true},
		{"tiny N", mutate(func(c *Config) { c.N = 1 }), true},
		{"one router", mutate(func(c *Config) { c.Routers = 1 }), true},
		{"s=0", mutate(func(c *Config) { c.S = 0 }), true},
		{"s=1 singular", mutate(func(c *Config) { c.S = 1 }), true},
		{"s=2", mutate(func(c *Config) { c.S = 2 }), true},
		{"bad latency order", mutate(func(c *Config) { c.Lat = Latency{5, 3, 10} }), true},
		{"alpha out of range", mutate(func(c *Config) { c.Alpha = 1.5 }), true},
		{"negative alpha", mutate(func(c *Config) { c.Alpha = -0.1 }), true},
		{"zero cost with alpha<1", mutate(func(c *Config) { c.UnitCost = 0 }), true},
		{"zero cost ok at alpha=1", mutate(func(c *Config) { c.UnitCost = 0; c.Alpha = 1 }), false},
		{"N below network storage", mutate(func(c *Config) { c.N = 1e4 }), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

// TestTNonCoordinatedClosedForm checks T(0) against the paper's closed
// form in Section IV-E2:
//
//	T(0) = ((N^(1-s)-c^(1-s)) d2 + (c^(1-s)-1) d0) / (N^(1-s)-1).
func TestTNonCoordinatedClosedForm(t *testing.T) {
	for _, s := range []float64{0.5, 0.8, 1.3, 1.9} {
		cfg := usA(1, 5, s)
		num := (math.Pow(cfg.N, 1-s)-math.Pow(cfg.C, 1-s))*cfg.Lat.D2 +
			(math.Pow(cfg.C, 1-s)-1)*cfg.Lat.D0
		want := num / (math.Pow(cfg.N, 1-s) - 1)
		if got := cfg.T0(); math.Abs(got-want) > 1e-9*want {
			t.Errorf("s=%v: T(0) = %v, want %v", s, got, want)
		}
	}
}

func TestTTierWeightsSumToOne(t *testing.T) {
	cfg := usA(1, 5, 0.8)
	for _, x := range []float64{0, 10, 100, 500, 999} {
		local := cfg.F(cfg.C - x)
		network := cfg.F(cfg.C + float64(cfg.Routers-1)*x)
		total := local + (network - local) + (1 - network)
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("x=%v: tier probabilities sum to %v", x, total)
		}
	}
}

func TestTBounds(t *testing.T) {
	cfg := usA(1, 5, 0.8)
	for x := 0.0; x <= cfg.C; x += 50 {
		v := cfg.T(x)
		if v < cfg.Lat.D0 || v > cfg.Lat.D2 {
			t.Errorf("T(%v) = %v outside [d0=%v, d2=%v]", x, v, cfg.Lat.D0, cfg.Lat.D2)
		}
	}
}

func TestTClampsArguments(t *testing.T) {
	cfg := usA(1, 5, 0.8)
	if got, want := cfg.T(-50), cfg.T(0); got != want {
		t.Errorf("T(-50) = %v, want T(0) = %v", got, want)
	}
	if got, want := cfg.T(cfg.C+50), cfg.T(cfg.C); got != want {
		t.Errorf("T(c+50) = %v, want T(c) = %v", got, want)
	}
}

func TestWLinear(t *testing.T) {
	cfg := Config{UnitCost: 2, FixedCost: 7, Routers: 10}
	if got := cfg.W(0); got != 7 {
		t.Errorf("W(0) = %v, want fixed cost 7", got)
	}
	if got := cfg.W(3); got != 2*10*3+7 {
		t.Errorf("W(3) = %v, want 67", got)
	}
	cfg.Amortization = 10
	if got := cfg.W(3); got != 6.7 {
		t.Errorf("amortized W(3) = %v, want 6.7", got)
	}
}

// TestDTwMatchesNumericDerivative verifies the analytic Eq. (10) gradient
// against central differences of Tw across the interior domain.
func TestDTwMatchesNumericDerivative(t *testing.T) {
	for _, s := range []float64{0.5, 0.8, 1.3, 1.9} {
		for _, alpha := range []float64{0.3, 0.7, 1} {
			cfg := usA(alpha, 5, s)
			for _, x := range []float64{10, 100, 400, 900} {
				h := 1e-3
				num := (cfg.Tw(x+h) - cfg.Tw(x-h)) / (2 * h)
				ana := cfg.DTw(x)
				scale := math.Max(math.Abs(num), math.Abs(ana))
				if math.Abs(num-ana) > 1e-5*math.Max(scale, 1e-9) {
					t.Errorf("s=%v alpha=%v x=%v: numeric %v vs analytic %v", s, alpha, x, num, ana)
				}
			}
		}
	}
}

// TestConvexity is Lemma 1: the second derivative is positive on the
// interior domain for all admissible parameter combinations.
func TestConvexity(t *testing.T) {
	for _, s := range []float64{0.1, 0.5, 0.8, 1.2, 1.9} {
		for _, alpha := range []float64{0.2, 0.5, 1} {
			cfg := usA(alpha, 5, s)
			for _, x := range []float64{1, 10, 100, 500, 990} {
				if d2 := cfg.D2Tw(x); d2 <= 0 && alpha > 0 {
					t.Errorf("s=%v alpha=%v x=%v: D2Tw = %v, want > 0", s, alpha, x, d2)
				}
				num := (cfg.Tw(x+1) - 2*cfg.Tw(x) + cfg.Tw(x-1))
				if num < -1e-9 {
					t.Errorf("s=%v alpha=%v x=%v: numeric curvature %v negative", s, alpha, x, num)
				}
			}
		}
	}
}

func TestD2TwMatchesNumeric(t *testing.T) {
	cfg := usA(0.7, 5, 0.8)
	for _, x := range []float64{50, 200, 600} {
		h := 0.5
		num := (cfg.Tw(x+h) - 2*cfg.Tw(x) + cfg.Tw(x-h)) / (h * h)
		ana := cfg.D2Tw(x)
		if math.Abs(num-ana) > 1e-4*math.Max(math.Abs(ana), 1e-12) {
			t.Errorf("x=%v: numeric %v vs analytic %v", x, num, ana)
		}
	}
}

func TestOptimalXStationarity(t *testing.T) {
	for _, s := range []float64{0.5, 0.8, 1.3} {
		for _, alpha := range []float64{0.4, 0.8, 1} {
			cfg := usA(alpha, 5, s)
			x, err := cfg.OptimalX()
			if err != nil {
				t.Fatalf("s=%v alpha=%v: %v", s, alpha, err)
			}
			if x < 0 || x > cfg.C {
				t.Fatalf("x* = %v outside [0, c]", x)
			}
			// Interior optimum: gradient vanishes. Boundary: gradient
			// points outward.
			switch {
			case x == 0:
				if cfg.DTw(0) < 0 {
					t.Errorf("x*=0 but DTw(0) = %v < 0", cfg.DTw(0))
				}
			case x >= cfg.C-1:
				if cfg.DTw(cfg.C-1) > 0 {
					t.Errorf("x*=c-1 but DTw(c-1) = %v > 0", cfg.DTw(cfg.C-1))
				}
			default:
				if g := cfg.DTw(x); math.Abs(g) > 1e-6*math.Abs(cfg.DTw(0)) {
					t.Errorf("s=%v alpha=%v: |DTw(x*)| = %v not ~ 0", s, alpha, g)
				}
			}
			// x* must beat a grid of alternatives.
			best := cfg.Tw(x)
			for _, alt := range []float64{0, 10, 100, 250, 500, 750, 999} {
				if cfg.Tw(alt) < best-1e-9*math.Abs(best) {
					t.Errorf("s=%v alpha=%v: Tw(%v)=%v beats Tw(x*=%v)=%v",
						s, alpha, alt, cfg.Tw(alt), x, best)
				}
			}
		}
	}
}

func TestOptimalXInvalidConfig(t *testing.T) {
	cfg := usA(0.5, 5, 0.8)
	cfg.S = 1
	if _, err := cfg.OptimalX(); err == nil {
		t.Error("OptimalX on singular s=1 should fail")
	}
}

func TestOptimalLevelAlphaZero(t *testing.T) {
	cfg := usA(0, 5, 0.8)
	l, err := cfg.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	if l != 0 {
		t.Errorf("alpha=0: l* = %v, want 0 (pure cost minimization)", l)
	}
}

// TestOptimalLevelMonotoneInAlpha reproduces the Figure 4 trend: more
// weight on routing performance means more coordination.
func TestOptimalLevelMonotoneInAlpha(t *testing.T) {
	for _, gamma := range []float64{2, 6, 10} {
		prev := -1.0
		for alpha := 0.05; alpha <= 1.0; alpha += 0.05 {
			cfg := usA(alpha, gamma, 0.8)
			l, err := cfg.OptimalLevel()
			if err != nil {
				t.Fatal(err)
			}
			if l < prev-1e-9 {
				t.Errorf("gamma=%v: l*(%v) = %v < l* at previous alpha %v", gamma, alpha, l, prev)
			}
			prev = l
		}
	}
}

// TestOptimalLevelMonotoneInGamma reproduces the other Figure 4 trend:
// for fixed alpha, a larger tiered latency ratio favors coordination.
func TestOptimalLevelMonotoneInGamma(t *testing.T) {
	for _, alpha := range []float64{0.5, 0.8, 1} {
		prev := -1.0
		for _, gamma := range []float64{2, 4, 6, 8, 10} {
			l, err := usA(alpha, gamma, 0.8).OptimalLevel()
			if err != nil {
				t.Fatal(err)
			}
			if l < prev-1e-9 {
				t.Errorf("alpha=%v: l* not monotone in gamma at %v: %v < %v", alpha, gamma, l, prev)
			}
			prev = l
		}
	}
}

// TestScaleFreeProperty is Theorem 2's latency-scale-free property: at
// alpha = 1 the optimal level depends only on gamma, not on absolute
// latencies.
func TestScaleFreeProperty(t *testing.T) {
	base := usA(1, 5, 0.8)
	l0, err := base.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{0.1, 3, 42} {
		scaled := base
		scaled.Lat = Latency{D0: base.Lat.D0 * k, D1: base.Lat.D1 * k, D2: base.Lat.D2 * k}
		l, err := scaled.OptimalLevel()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(l-l0) > 1e-9 {
			t.Errorf("scale %v: l* = %v, want %v", k, l, l0)
		}
	}
}

// TestFixedPointMatchesExact compares the Lemma 2 fixed-point solution
// with direct convex minimization; they differ only by the n*l ~ 1+(n-1)l
// approximation, so they should agree within a few percent at n=20.
func TestFixedPointMatchesExact(t *testing.T) {
	for _, s := range []float64{0.5, 0.8, 1.3} {
		for _, alpha := range []float64{0.5, 0.8, 1} {
			cfg := usA(alpha, 5, s)
			exact, err := cfg.OptimalLevel()
			if err != nil {
				t.Fatal(err)
			}
			fp, err := cfg.FixedPointLevel()
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(exact-fp) > 0.08 {
				t.Errorf("s=%v alpha=%v: exact %v vs fixed-point %v", s, alpha, exact, fp)
			}
		}
	}
}

// TestFixedPointUniqueResidual verifies Theorem 1 numerically: the
// residual a*l^-s - (1-l)^-s - b is strictly decreasing, so the root the
// solver finds is the unique one.
func TestFixedPointUniqueResidual(t *testing.T) {
	cfg := usA(0.6, 5, 0.8)
	a, b := cfg.A(), cfg.B()
	res := func(l float64) float64 {
		return a*math.Pow(l, -cfg.S) - math.Pow(1-l, -cfg.S) - b
	}
	prev := math.Inf(1)
	for l := 0.001; l < 1; l += 0.001 {
		v := res(l)
		if v >= prev {
			t.Fatalf("residual not strictly decreasing at l=%v", l)
		}
		prev = v
	}
}

func TestABCoefficients(t *testing.T) {
	cfg := usA(0.5, 5, 0.8)
	wantA := 5 * math.Pow(20, 0.2)
	if got := cfg.A(); math.Abs(got-wantA) > 1e-12 {
		t.Errorf("A = %v, want %v", got, wantA)
	}
	// With rho = c^s (N^(1-s)-1)/(1-s), b collapses to
	// (1-alpha)/alpha * (n-1) w / (d1-d0).
	wantB := (0.5 / 0.5) * 19 * 26.7 / 2.2842
	if got := cfg.B(); math.Abs(got-wantB) > 1e-9*wantB {
		t.Errorf("B = %v, want %v", got, wantB)
	}
	cfg.Alpha = 0
	if !math.IsInf(cfg.B(), 1) {
		t.Errorf("B at alpha=0 = %v, want +Inf", cfg.B())
	}
}

// TestClosedFormMatchesFixedPoint: at alpha = 1 the closed form solves
// the b = 0 fixed point exactly (both use the n*l approximation).
func TestClosedFormMatchesFixedPoint(t *testing.T) {
	for _, s := range []float64{0.3, 0.8, 1.5, 1.9} {
		for _, gamma := range []float64{2, 5, 10} {
			cfg := usA(1, gamma, s)
			fp, err := cfg.FixedPointLevel()
			if err != nil {
				t.Fatal(err)
			}
			cf := ClosedFormLevel(gamma, cfg.Routers, s)
			if math.Abs(fp-cf) > 1e-6 {
				t.Errorf("s=%v gamma=%v: fixed point %v vs closed form %v", s, gamma, fp, cf)
			}
		}
	}
}

// TestClosedFormPaperQuote checks the value the paper quotes in Section
// V-B2: at gamma=5, n=20, l* falls to about 0.35 as s approaches 2.
func TestClosedFormPaperQuote(t *testing.T) {
	l := ClosedFormLevel(5, 20, 1.9)
	if l < 0.3 || l > 0.42 {
		t.Errorf("l*(gamma=5, n=20, s=1.9) = %v, want ~0.35 per the paper", l)
	}
	// The printed Eq. (8) form gives ~0.09 instead, which is the erratum
	// documented in DESIGN.md.
	if p := PaperClosedFormLevel(5, 20, 1.9); p > 0.15 {
		t.Errorf("printed Eq.(8) value = %v; expected it to disagree (~0.09)", p)
	}
}

// TestClosedFormAsymptotics is the paper's headline phenomenon: opposite
// optimal strategies on the two sides of s = 1 as the network grows.
func TestClosedFormAsymptotics(t *testing.T) {
	if l := ClosedFormLevel(5, 100000, 0.8); l < 0.95 {
		t.Errorf("s<1, large n: l* = %v, want -> 1", l)
	}
	if l := ClosedFormLevel(5, 100000, 1.8); l > 0.05 {
		t.Errorf("s>1, large n: l* = %v, want -> 0", l)
	}
	// Convergence is slow near s=1: the same n at s=1.2 still sits at an
	// intermediate level, but it must decrease as n grows.
	if ClosedFormLevel(5, 1000, 1.2) <= ClosedFormLevel(5, 1_000_000, 1.2) {
		t.Error("s>1: l* should decrease with n")
	}
	if ClosedFormLevel(5, 1000, 0.8) >= ClosedFormLevel(5, 1_000_000, 0.8) {
		t.Error("s<1: l* should increase with n")
	}
	// Monotone in gamma (more expensive origin -> more coordination).
	if ClosedFormLevel(2, 20, 0.8) >= ClosedFormLevel(10, 20, 0.8) {
		t.Error("closed form not increasing in gamma")
	}
}

// TestQuickOptimalLevelInRange property: for random admissible parameters
// the optimizer returns a level in [0,1] with vanishing interior gradient.
func TestQuickOptimalLevelInRange(t *testing.T) {
	f := func(a, g, sSeed uint8) bool {
		alpha := float64(a%100)/100 + 0.005
		if alpha > 1 {
			alpha = 1
		}
		gamma := 1 + float64(g%90)/10
		s := 0.1 + float64(sSeed%180)/100
		if math.Abs(s-1) < 0.02 {
			s = 1.05
		}
		cfg := usA(alpha, gamma, s)
		l, err := cfg.OptimalLevel()
		return err == nil && l >= 0 && l <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGainsBasics(t *testing.T) {
	cfg := usA(1, 5, 0.8)
	g, err := cfg.OptimalGains()
	if err != nil {
		t.Fatal(err)
	}
	if g.Level <= 0 || g.Level > 1 {
		t.Errorf("Level = %v, want in (0,1]", g.Level)
	}
	if g.OriginReduction <= 0 || g.OriginReduction > 1 {
		t.Errorf("G_O = %v, want in (0,1]", g.OriginReduction)
	}
	if g.RoutingGain <= 0 || g.RoutingGain >= 1 {
		t.Errorf("G_R = %v, want in (0,1)", g.RoutingGain)
	}
	if math.Abs(g.X-g.Level*cfg.C) > 1e-9 {
		t.Errorf("X = %v inconsistent with Level %v", g.X, g.Level)
	}
}

// TestOriginLoadReductionClosedForm checks G_O against the paper's
// explicit expression.
func TestOriginLoadReductionClosedForm(t *testing.T) {
	for _, s := range []float64{0.5, 0.8, 1.3} {
		cfg := usA(1, 5, s)
		for _, x := range []float64{10, 100, 500} {
			K := cfg.C + float64(cfg.Routers-1)*x
			want := (math.Pow(K, 1-s) - math.Pow(cfg.C, 1-s)) /
				(math.Pow(cfg.N, 1-s) - math.Pow(cfg.C, 1-s))
			got := cfg.OriginLoadReduction(x)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("s=%v x=%v: G_O = %v, want %v", s, x, got, want)
			}
		}
	}
}

func TestOriginLoadReductionMonotone(t *testing.T) {
	cfg := usA(1, 5, 0.8)
	prev := -1.0
	for x := 0.0; x <= cfg.C; x += 100 {
		g := cfg.OriginLoadReduction(x)
		if g < prev {
			t.Fatalf("G_O not monotone at x=%v", x)
		}
		prev = g
	}
	if g0 := cfg.OriginLoadReduction(0); g0 != 0 {
		t.Errorf("G_O(0) = %v, want 0", g0)
	}
}

func TestRoutingImprovementAtZero(t *testing.T) {
	cfg := usA(1, 5, 0.8)
	if g := cfg.RoutingImprovement(0); g != 0 {
		t.Errorf("G_R(0) = %v, want 0", g)
	}
}

func BenchmarkOptimalLevel(b *testing.B) {
	cfg := usA(0.7, 5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.OptimalLevel(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixedPointLevel(b *testing.B) {
	cfg := usA(0.7, 5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.FixedPointLevel(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestOptimizerCrossValidation property: the derivative-based convex
// minimizer agrees with direct golden-section minimization of Tw on
// random admissible configurations.
func TestOptimizerCrossValidation(t *testing.T) {
	f := func(a, g, sSeed, wSeed uint8) bool {
		alpha := 0.1 + float64(a%90)/100
		gamma := 1 + float64(g%90)/10
		s := 0.1 + float64(sSeed%180)/100
		if s > 0.95 && s < 1.05 {
			s = 1.1
		}
		w := 5 + float64(wSeed%96)
		cfg := usA(alpha, gamma, s)
		cfg.UnitCost = w
		x1, err := cfg.OptimalX()
		if err != nil {
			return false
		}
		x2, err := solve.GoldenSection(cfg.Tw, 0, cfg.C-1, 1e-9)
		if err != nil {
			return false
		}
		// Compare objective values, not abscissas: flat optima can have
		// distant minimizers with equal cost.
		return math.Abs(cfg.Tw(x1)-cfg.Tw(x2)) < 1e-6*math.Max(1, math.Abs(cfg.Tw(x1)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
