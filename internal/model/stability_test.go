package model

import (
	"math"
	"testing"
)

func TestSensitivityPositive(t *testing.T) {
	// l*(alpha) is nondecreasing, so sensitivity is >= 0 everywhere and
	// clearly positive in the transition region.
	cfg := usA(0.5, 5, 0.8)
	s, err := cfg.Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if s < 0 {
		t.Errorf("Sensitivity = %v, want >= 0", s)
	}
}

func TestSensitivityMatchesFiniteDifference(t *testing.T) {
	cfg := usA(0.3, 4, 0.8)
	got, err := cfg.Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := cfg, cfg
	lo.Alpha, hi.Alpha = 0.29, 0.31
	lLo, err := lo.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	lHi, err := hi.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	want := (lHi - lLo) / 0.02
	if math.Abs(got-want) > 0.2*math.Max(math.Abs(want), 0.1) {
		t.Errorf("Sensitivity = %v, finite difference = %v", got, want)
	}
}

func TestSensitivityInvalidConfig(t *testing.T) {
	cfg := usA(0.5, 5, 0.8)
	cfg.S = 1
	if _, err := cfg.Sensitivity(); err == nil {
		t.Error("singular config should fail")
	}
}

func TestFindSensitiveRange(t *testing.T) {
	cfg := usA(0.5, 5, 0.8)
	r, err := cfg.FindSensitiveRange(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.Lo < r.Hi) || r.Lo <= 0 || r.Hi >= 1 {
		t.Errorf("range [%v, %v] malformed", r.Lo, r.Hi)
	}
	if r.PeakAlpha < r.Lo || r.PeakAlpha > r.Hi {
		t.Errorf("peak alpha %v outside range [%v, %v]", r.PeakAlpha, r.Lo, r.Hi)
	}
	if r.PeakSlope <= 0 {
		t.Errorf("peak slope %v, want > 0", r.PeakSlope)
	}
	if math.Abs(r.Width()-(r.Hi-r.Lo)) > 1e-12 {
		t.Errorf("Width inconsistent")
	}
}

// TestSensitiveRangeShiftsWithGamma quantifies the paper's stability
// observation: gamma moves the sensitive range. Under the figure
// harness's amortization (rho = N; see DESIGN.md section 4) a higher
// gamma makes coordination win earlier, so the transition happens at
// lower alpha, steepens, and narrows. (The exact direction depends on
// the cost scale; this pins the behavior the experiments report.)
func TestSensitiveRangeShiftsWithGamma(t *testing.T) {
	mk := func(gamma float64) Config {
		cfg := usA(0.5, gamma, 0.8)
		cfg.Amortization = cfg.N
		return cfg
	}
	low, err := mk(2).FindSensitiveRange(0.5)
	if err != nil {
		t.Fatal(err)
	}
	high, err := mk(10).FindSensitiveRange(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if high.PeakAlpha >= low.PeakAlpha {
		t.Errorf("peak alpha should shift left with gamma: gamma=2 at %v, gamma=10 at %v",
			low.PeakAlpha, high.PeakAlpha)
	}
	if high.PeakSlope <= low.PeakSlope {
		t.Errorf("transition should steepen with gamma: %v vs %v", low.PeakSlope, high.PeakSlope)
	}
	if high.Width() >= low.Width() {
		t.Errorf("sensitive range should narrow with gamma: %v vs %v", low.Width(), high.Width())
	}
}

func TestFindSensitiveRangeValidation(t *testing.T) {
	cfg := usA(0.5, 5, 0.8)
	if _, err := cfg.FindSensitiveRange(0); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, err := cfg.FindSensitiveRange(1.5); err == nil {
		t.Error("fraction > 1 should fail")
	}
	bad := cfg
	bad.Routers = 1
	if _, err := bad.FindSensitiveRange(0.5); err == nil {
		t.Error("invalid config should fail")
	}
}
