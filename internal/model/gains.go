package model

// This file implements Section IV-E: the performance gains obtained by
// provisioning storage at the optimal strategy instead of the fully
// non-coordinated baseline (x = 0).

// OriginLoadReduction returns G_O, the relative reduction of traffic load
// on the origin server when the network runs at coordinated allocation x
// instead of x = 0:
//
//	G_O = 1 - (1 - F(c+(n-1)x)) / (1 - F(c))
//	    = ((c+(n-1)x)^(1-s) - c^(1-s)) / (N^(1-s) - c^(1-s)).
//
// The result lies in [0, 1]; 1 means the origin serves no requests at all.
func (c Config) OriginLoadReduction(x float64) float64 {
	x = clamp(x, 0, c.C)
	baseline := 1 - c.F(c.C)
	if baseline <= 0 {
		return 0 // a single cache already absorbs everything
	}
	coordinated := 1 - c.F(c.C+float64(c.Routers-1)*x)
	return 1 - coordinated/baseline
}

// RoutingImprovement returns G_R, the relative improvement of the mean
// routing latency at coordinated allocation x versus x = 0:
//
//	G_R = 1 - T(x) / T(0).
//
// It lies in [0, 1) whenever coordination helps and can be negative if x
// is worse than no coordination (e.g., forced over-coordination under
// s > 1 with few routers).
func (c Config) RoutingImprovement(x float64) float64 {
	t0 := c.T0()
	if t0 <= 0 {
		return 0
	}
	return 1 - c.T(x)/t0
}

// Gains bundles both Section IV-E metrics at the model's optimal strategy.
type Gains struct {
	Level           float64 // l* = x*/c
	X               float64 // x*
	OriginReduction float64 // G_O at x*
	RoutingGain     float64 // G_R at x*
}

// OptimalGains computes the optimal allocation and both gains in one call.
func (c Config) OptimalGains() (Gains, error) {
	x, err := c.OptimalX()
	if err != nil {
		return Gains{}, err
	}
	return Gains{
		Level:           x / c.C,
		X:               x,
		OriginReduction: c.OriginLoadReduction(x),
		RoutingGain:     c.RoutingImprovement(x),
	}, nil
}
