package model

import (
	"math"
	"testing"
)

// discreteCfg returns a small integer-valued configuration the exact
// harmonic sums can handle quickly.
func discreteCfg(alpha, gamma, s float64) Config {
	cfg := Config{
		S:        s,
		N:        100000,
		C:        200,
		Routers:  20,
		Lat:      LatencyFromGamma(1, 2.2842, gamma),
		UnitCost: 26.7,
		Alpha:    alpha,
	}
	cfg.Amortization = 1 / discretePDF(cfg)
	return cfg
}

// discretePDF mirrors the figure-harness amortization for the small N.
func discretePDF(c Config) float64 {
	return (1 - c.S) / (math.Pow(c.N, 1-c.S) - 1) * math.Pow(c.C, -c.S)
}

func TestNewDiscreteValidation(t *testing.T) {
	good := discreteCfg(1, 5, 0.8)
	if _, err := NewDiscrete(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.N = 1000.5
	if _, err := NewDiscrete(bad); err == nil {
		t.Error("fractional N should be rejected")
	}
	bad = good
	bad.C = 0
	if _, err := NewDiscrete(bad); err == nil {
		t.Error("zero C should be rejected")
	}
	bad = good
	bad.S = -1
	if _, err := NewDiscrete(bad); err == nil {
		t.Error("negative s should be rejected")
	}
}

// TestDiscreteMatchesContinuousT: Eq. (6) is an approximation of the
// harmonic ratio; for moderate parameters the two latencies track each
// other within a few percent of the latency span.
func TestDiscreteMatchesContinuousT(t *testing.T) {
	for _, s := range []float64{0.6, 0.8, 1.3} {
		cfg := discreteCfg(1, 5, s)
		d, err := NewDiscrete(cfg)
		if err != nil {
			t.Fatal(err)
		}
		span := cfg.Lat.D2 - cfg.Lat.D0
		for _, x := range []int64{0, 20, 100, 180} {
			exact := d.T(x)
			approx := cfg.T(float64(x))
			if math.Abs(exact-approx) > 0.08*span {
				t.Errorf("s=%v x=%d: discrete %v vs continuous %v (span %v)", s, x, exact, approx, span)
			}
		}
	}
}

func TestDiscreteTierRatiosSumToOne(t *testing.T) {
	d, err := NewDiscrete(discreteCfg(1, 5, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{0, 50, 150, 200} {
		local, peer, origin := d.HitRatios(x)
		if sum := local + peer + origin; math.Abs(sum-1) > 1e-12 {
			t.Errorf("x=%d: ratios sum to %v", x, sum)
		}
		if local < 0 || peer < 0 || origin < 0 {
			t.Errorf("x=%d: negative tier ratio (%v, %v, %v)", x, local, peer, origin)
		}
	}
}

func TestDiscreteOptimalBeatsGrid(t *testing.T) {
	for _, alpha := range []float64{0.5, 1} {
		d, err := NewDiscrete(discreteCfg(alpha, 5, 0.8))
		if err != nil {
			t.Fatal(err)
		}
		xStar := d.OptimalX()
		best := d.Tw(xStar)
		for x := int64(0); x <= 200; x += 10 {
			if d.Tw(x) < best-1e-12 {
				t.Errorf("alpha=%v: Tw(%d)=%v beats Tw(x*=%d)=%v", alpha, x, d.Tw(x), xStar, best)
			}
		}
	}
}

// TestDiscreteOptimalNearContinuous: the integer optimum should land
// within a few slots of the continuous one.
func TestDiscreteOptimalNearContinuous(t *testing.T) {
	cfg := discreteCfg(0.8, 5, 0.8)
	d, err := NewDiscrete(cfg)
	if err != nil {
		t.Fatal(err)
	}
	xc, err := cfg.OptimalX()
	if err != nil {
		t.Fatal(err)
	}
	xd := d.OptimalX()
	if math.Abs(float64(xd)-xc) > 0.05*cfg.C {
		t.Errorf("discrete x* = %d vs continuous %v", xd, xc)
	}
}

func TestDiscreteOriginLoad(t *testing.T) {
	d, err := NewDiscrete(discreteCfg(1, 5, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	if l0, l1 := d.OriginLoad(0), d.OriginLoad(100); l1 >= l0 {
		t.Errorf("origin load should drop with coordination: %v -> %v", l0, l1)
	}
	_, _, origin := d.HitRatios(50)
	if got := d.OriginLoad(50); math.Abs(got-origin) > 1e-12 {
		t.Errorf("OriginLoad inconsistent with HitRatios: %v vs %v", got, origin)
	}
}

func TestHeteroValidate(t *testing.T) {
	good := HeteroConfig{
		S: 0.8, N: 1e6,
		Capacities: []float64{500, 1000, 2000},
		Lat:        LatencyFromGamma(1, 2.2842, 5),
		UnitCost:   26.7, Alpha: 0.8,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid hetero config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*HeteroConfig)
	}{
		{"one router", func(h *HeteroConfig) { h.Capacities = []float64{100} }},
		{"zero capacity", func(h *HeteroConfig) { h.Capacities = []float64{0, 100} }},
		{"small N", func(h *HeteroConfig) { h.N = 100 }},
		{"singular s", func(h *HeteroConfig) { h.S = 1 }},
		{"bad latency", func(h *HeteroConfig) { h.Lat = Latency{3, 2, 1} }},
		{"bad alpha", func(h *HeteroConfig) { h.Alpha = 2 }},
		{"zero cost", func(h *HeteroConfig) { h.UnitCost = 0; h.Alpha = 0.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := good
			h.Capacities = append([]float64(nil), good.Capacities...)
			tt.mutate(&h)
			if err := h.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

// TestHeteroReducesToHomogeneous: with equal capacities the heterogeneous
// optimum must coincide with the homogeneous model's.
func TestHeteroReducesToHomogeneous(t *testing.T) {
	cfg := usA(0.8, 5, 0.8)
	caps := make([]float64, cfg.Routers)
	for i := range caps {
		caps[i] = cfg.C
	}
	h := HeteroConfig{
		S: cfg.S, N: cfg.N, Capacities: caps, Lat: cfg.Lat,
		UnitCost: cfg.UnitCost, Alpha: cfg.Alpha, Amortization: cfg.Amortization,
	}
	if !h.homogeneous() {
		t.Fatal("equal capacities not detected as homogeneous")
	}
	want, err := cfg.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.01 {
		t.Errorf("hetero equal-capacity l* = %v, homogeneous = %v", got, want)
	}
	// And the latencies agree pointwise.
	for _, l := range []float64{0, 0.3, 0.7} {
		if th, tc := h.T(l), cfg.T(l*cfg.C); math.Abs(th-tc) > 1e-9 {
			t.Errorf("T mismatch at l=%v: hetero %v vs homogeneous %v", l, th, tc)
		}
	}
}

func TestHeteroOptimalBeatsGrid(t *testing.T) {
	h := HeteroConfig{
		S: 0.8, N: 1e6,
		Capacities: []float64{200, 500, 1000, 3000, 800, 400, 900, 1500, 600, 700},
		Lat:        LatencyFromGamma(1, 2.2842, 5),
		UnitCost:   26.7, Alpha: 0.9,
		Amortization: 1e6,
	}
	l, err := h.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	best := h.Tw(l)
	for alt := 0.0; alt < 1; alt += 0.05 {
		if h.Tw(alt) < best-1e-6*math.Abs(best) {
			t.Errorf("Tw(%v)=%v beats Tw(l*=%v)=%v", alt, h.Tw(alt), l, best)
		}
	}
}

func TestHeteroAlphaZero(t *testing.T) {
	h := HeteroConfig{
		S: 0.8, N: 1e6,
		Capacities: []float64{500, 1000},
		Lat:        LatencyFromGamma(1, 2.2842, 5),
		UnitCost:   26.7, Alpha: 0,
	}
	l, err := h.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	if l != 0 {
		t.Errorf("alpha=0: l* = %v, want 0", l)
	}
}

func TestHeteroTotalCapacity(t *testing.T) {
	h := HeteroConfig{Capacities: []float64{1, 2, 3.5}}
	if got := h.TotalCapacity(); got != 6.5 {
		t.Errorf("TotalCapacity = %v, want 6.5", got)
	}
}
