package model_test

import (
	"fmt"

	"ccncoord/internal/model"
)

// ExampleConfig_OptimalGains provisions a 20-router network at the
// paper's Table IV base point.
func ExampleConfig_OptimalGains() {
	cfg := model.Config{
		S: 0.8, N: 1e6, C: 1e3, Routers: 20,
		Lat:      model.LatencyFromGamma(1, 2.2842, 5),
		UnitCost: 26.7, Alpha: 0.8, Amortization: 1e6,
	}
	g, err := cfg.OptimalGains()
	if err != nil {
		panic(err)
	}
	fmt.Printf("l* = %.3f, G_O = %.1f%%, G_R = %.1f%%\n",
		g.Level, 100*g.OriginReduction, 100*g.RoutingGain)
	// Output: l* = 0.927, G_O = 26.6%, G_R = 18.3%
}

// ExampleClosedFormLevel shows the paper's headline asymmetry: the two
// sides of the Zipf singular point s = 1 demand opposite strategies in
// large networks.
func ExampleClosedFormLevel() {
	for _, n := range []int{10, 1000} {
		fmt.Printf("n=%4d: s=0.8 -> %.2f, s=1.6 -> %.2f\n",
			n, model.ClosedFormLevel(5, n, 0.8), model.ClosedFormLevel(5, n, 1.6))
	}
	// Output:
	// n=  10: s=0.8 -> 0.93, s=1.6 -> 0.54
	// n=1000: s=0.8 -> 0.98, s=1.6 -> 0.17
}

// ExampleLatency_Gamma derives the tiered latency ratio from measured
// latencies.
func ExampleLatency_Gamma() {
	l := model.Latency{D0: 10, D1: 30, D2: 130}
	fmt.Printf("gamma = %g\n", l.Gamma())
	// Output: gamma = 5
}
