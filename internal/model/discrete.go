package model

import (
	"fmt"
	"math"

	"ccncoord/internal/zipf"
)

// This file provides the discrete (exact harmonic-number) counterpart of
// the continuous model. The paper analyzes the continuous approximation of
// Eq. (6); the discrete variant exists to quantify that approximation and
// to ground the packet-level simulator, which necessarily deals in whole
// content objects.

// Discrete evaluates the performance-cost model with exact Zipf harmonic
// sums instead of the continuous approximation. Construct with
// NewDiscrete; the zero value is not usable.
type Discrete struct {
	cfg  Config
	dist *zipf.Dist
}

// NewDiscrete returns the exact-harmonic model for cfg. N and C must be
// exactly representable as integers (they count contents and slots).
func NewDiscrete(cfg Config) (*Discrete, error) {
	n := int64(cfg.N)
	if float64(n) != cfg.N || n < 1 {
		return nil, fmt.Errorf("model: discrete N must be a positive integer, got %v", cfg.N)
	}
	if c := int64(cfg.C); float64(c) != cfg.C || c < 1 {
		return nil, fmt.Errorf("model: discrete C must be a positive integer, got %v", cfg.C)
	}
	dist, err := zipf.New(cfg.S, n)
	if err != nil {
		return nil, fmt.Errorf("model: discrete popularity: %w", err)
	}
	return &Discrete{cfg: cfg, dist: dist}, nil
}

// Config returns the underlying configuration.
func (d *Discrete) Config() Config { return d.cfg }

// F returns the exact cumulative popularity of the top-k contents.
func (d *Discrete) F(k int64) float64 { return d.dist.CDF(k) }

// T returns the exact mean request latency with x coordinated slots per
// router (Eq. 2 with harmonic-number CDF). x is clamped to [0, C].
func (d *Discrete) T(x int64) float64 {
	c := int64(d.cfg.C)
	if x < 0 {
		x = 0
	}
	if x > c {
		x = c
	}
	local := d.F(c - x)
	network := d.F(c + int64(d.cfg.Routers-1)*x)
	return local*d.cfg.Lat.D0 + (network-local)*d.cfg.Lat.D1 + (1-network)*d.cfg.Lat.D2
}

// Tw returns the exact combined objective at integer allocation x.
func (d *Discrete) Tw(x int64) float64 {
	return d.cfg.Alpha*d.T(x) + (1-d.cfg.Alpha)*d.cfg.W(float64(x))
}

// OptimalX minimizes Tw over integer x in [0, C] by ternary search over
// the convex sequence, falling back to linear scan for tiny capacities.
func (d *Discrete) OptimalX() int64 {
	lo, hi := int64(0), int64(d.cfg.C)
	for hi-lo > 2 {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if d.Tw(m1) <= d.Tw(m2) {
			hi = m2
		} else {
			lo = m1
		}
	}
	best, bestV := lo, math.Inf(1)
	for x := lo; x <= hi; x++ {
		if v := d.Tw(x); v < bestV {
			best, bestV = x, v
		}
	}
	return best
}

// OriginLoad returns the exact fraction of requests served by the origin
// at allocation x: 1 - F(c + (n-1)x).
func (d *Discrete) OriginLoad(x int64) float64 {
	c := int64(d.cfg.C)
	return 1 - d.F(c+int64(d.cfg.Routers-1)*x)
}

// HitRatios returns the exact fractions of requests served locally, by a
// peer router, and by the origin at allocation x. The three values sum
// to 1.
func (d *Discrete) HitRatios(x int64) (local, peer, origin float64) {
	c := int64(d.cfg.C)
	local = d.F(c - x)
	network := d.F(c + int64(d.cfg.Routers-1)*x)
	return local, network - local, 1 - network
}
