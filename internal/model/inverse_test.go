package model

import (
	"math"
	"testing"
)

func TestAlphaForLevelRoundTrip(t *testing.T) {
	cfg := usA(0.5, 5, 0.8)
	cfg.Amortization = cfg.N
	for _, target := range []float64{0.2, 0.5, 0.8} {
		alpha, err := cfg.AlphaForLevel(target)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		probe := cfg
		probe.Alpha = alpha
		l, err := probe.OptimalLevel()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(l-target) > 0.01 {
			t.Errorf("target %v: l*(alpha=%v) = %v", target, alpha, l)
		}
	}
}

func TestAlphaForLevelMonotone(t *testing.T) {
	cfg := usA(0.5, 5, 0.8)
	cfg.Amortization = cfg.N
	a1, err := cfg.AlphaForLevel(0.3)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cfg.AlphaForLevel(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if a1 >= a2 {
		t.Errorf("higher targets need higher alpha: %v vs %v", a1, a2)
	}
}

func TestAlphaForLevelUnreachable(t *testing.T) {
	// With s close to 2 and few routers, l*(alpha=1) stays moderate; a
	// target above it must be rejected.
	cfg := usA(1, 2, 1.9)
	top, err := cfg.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.AlphaForLevel(math.Min(0.99, top+0.2)); err == nil {
		t.Errorf("target above l*(1) = %v should fail", top)
	}
}

func TestAlphaForLevelValidation(t *testing.T) {
	cfg := usA(0.5, 5, 0.8)
	if _, err := cfg.AlphaForLevel(0); err == nil {
		t.Error("target 0 should fail")
	}
	if _, err := cfg.AlphaForLevel(1); err == nil {
		t.Error("target 1 should fail")
	}
	bad := cfg
	bad.S = 1
	if _, err := bad.AlphaForLevel(0.5); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestCostBudgetForLevelRoundTrip(t *testing.T) {
	cfg := usA(0.6, 5, 0.8)
	cfg.Amortization = cfg.N
	target := 0.5
	w, err := cfg.CostBudgetForLevel(target)
	if err != nil {
		t.Fatal(err)
	}
	probe := cfg
	probe.UnitCost = w
	l, err := probe.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-target) > 0.01 {
		t.Errorf("l*(w=%v) = %v, want %v", w, l, target)
	}
	// Cheaper coordination must reach at least the target.
	probe.UnitCost = w / 2
	l2, err := probe.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	if l2 < target {
		t.Errorf("halving the cost dropped the level to %v", l2)
	}
}

func TestCostBudgetForLevelValidation(t *testing.T) {
	cfg := usA(1, 5, 0.8)
	if _, err := cfg.CostBudgetForLevel(0.5); err == nil {
		t.Error("alpha = 1 should fail (cost never matters)")
	}
	cfg = usA(0.6, 5, 0.8)
	if _, err := cfg.CostBudgetForLevel(1.5); err == nil {
		t.Error("target outside (0,1) should fail")
	}
}

func TestCostBudgetForLevelUnreachable(t *testing.T) {
	// At very low alpha the cost term dominates regardless of w... but a
	// vanishing w always recovers the alpha=1 optimum, so pick a target
	// above even that.
	cfg := usA(0.4, 2, 1.9)
	probe := cfg
	probe.UnitCost = 1e-9
	top, err := probe.OptimalLevel()
	if err != nil {
		t.Fatal(err)
	}
	if top >= 0.95 {
		t.Skip("free-coordination level too high for this check")
	}
	if _, err := cfg.CostBudgetForLevel(math.Min(0.99, top+0.04)); err == nil {
		t.Errorf("target above free-coordination level %v should fail", top)
	}
}
