package model

import (
	"fmt"
	"math"
)

// This file quantifies the stability of the optimal strategy — the
// paper's Section V-B observation that l*(alpha) has a "sensitive range"
// in which small changes of the trade-off weight swing the provisioning
// decision, and that this range is governed by parameters such as gamma.
// The analysis is numerical: l* has no closed form for alpha < 1.

// Sensitivity returns d l*/d alpha at the configuration's Alpha,
// estimated by a symmetric difference clamped to [0, 1]. A large value
// means the provisioning decision is unstable against small changes in
// how the carrier weighs performance versus cost.
func (c Config) Sensitivity() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	h := 0.01
	lo := math.Max(1e-4, c.Alpha-h)
	hi := math.Min(1, c.Alpha+h)
	if hi <= lo {
		return 0, fmt.Errorf("model: degenerate alpha neighborhood [%v, %v]", lo, hi)
	}
	cLo, cHi := c, c
	cLo.Alpha, cHi.Alpha = lo, hi
	lLo, err := cLo.OptimalLevel()
	if err != nil {
		return 0, err
	}
	lHi, err := cHi.OptimalLevel()
	if err != nil {
		return 0, err
	}
	return (lHi - lLo) / (hi - lo), nil
}

// SensitiveRange is the alpha interval in which the optimal strategy
// moves fastest.
type SensitiveRange struct {
	Lo, Hi float64 // alpha bounds of the range
	// PeakAlpha is where d l*/d alpha is largest, and PeakSlope its
	// value there.
	PeakAlpha float64
	PeakSlope float64
}

// Width returns the size of the sensitive interval.
func (r SensitiveRange) Width() float64 { return r.Hi - r.Lo }

// FindSensitiveRange scans alpha over (0, 1) and returns the interval
// where the slope d l*/d alpha is at least frac (in (0, 1]) of its peak
// value. This is the quantitative version of the paper's "sensitive
// range is around alpha in [0.2, 0.4]" observations (Section V-B1).
// The configuration's own Alpha is ignored.
func (c Config) FindSensitiveRange(frac float64) (SensitiveRange, error) {
	if !(frac > 0 && frac <= 1) {
		return SensitiveRange{}, fmt.Errorf("model: fraction must lie in (0, 1], got %v", frac)
	}
	probe := c
	probe.Alpha = 0.5
	if err := probe.Validate(); err != nil {
		return SensitiveRange{}, err
	}
	const steps = 200
	alphas := make([]float64, 0, steps)
	levels := make([]float64, 0, steps)
	for i := 1; i < steps; i++ {
		a := float64(i) / steps
		probe.Alpha = a
		l, err := probe.OptimalLevel()
		if err != nil {
			return SensitiveRange{}, err
		}
		alphas = append(alphas, a)
		levels = append(levels, l)
	}
	slopes := make([]float64, len(levels))
	peak := 0
	for i := 1; i < len(levels); i++ {
		slopes[i] = (levels[i] - levels[i-1]) / (alphas[i] - alphas[i-1])
		if slopes[i] > slopes[peak] {
			peak = i
		}
	}
	if slopes[peak] <= 0 {
		return SensitiveRange{}, fmt.Errorf("model: optimal level never increases over alpha")
	}
	threshold := frac * slopes[peak]
	lo, hi := alphas[peak], alphas[peak]
	for i := peak; i >= 1; i-- {
		if slopes[i] < threshold {
			break
		}
		lo = alphas[i-1]
	}
	for i := peak; i < len(slopes); i++ {
		if slopes[i] < threshold {
			break
		}
		hi = alphas[i]
	}
	return SensitiveRange{
		Lo: lo, Hi: hi,
		PeakAlpha: alphas[peak],
		PeakSlope: slopes[peak],
	}, nil
}
