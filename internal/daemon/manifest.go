// The daemon's observable accounting: the live Snapshot served by
// GET /stats and the final Manifest a drained shutdown writes. The
// manifest embeds the closing snapshot verbatim, so its totals match
// the last /stats response by construction — the manifest is a
// serialization of the accounting, not a second measurement.
package daemon

import (
	"encoding/json"
	"fmt"
	"io"

	"ccncoord/internal/timeline"
)

// ManifestSchema identifies the daemon manifest JSON layout;
// append-only, any field-semantics change bumps the suffix.
const ManifestSchema = "ccncoord/daemon-manifest/v1"

// Totals is the request accounting across the daemon's whole life.
type Totals struct {
	BatchesAdmitted  int64 `json:"batches_admitted"`
	RequestsAdmitted int64 `json:"requests_admitted"`
	// RequestsRejected counts overload rejections (batches bounced off
	// the full admission queue; their requests never entered).
	RequestsRejected int64 `json:"requests_rejected"`
	BatchesSimulated int64 `json:"batches_simulated"`
	Completed        int64 `json:"completed"`
	Failed           int64 `json:"failed"`
	LocalHits        int64 `json:"local_hits"`
	PeerHits         int64 `json:"peer_hits"`
	OriginServes     int64 `json:"origin_serves"`

	LocalHit      float64 `json:"local_hit"`
	PeerHit       float64 `json:"peer_hit"`
	OriginLoad    float64 `json:"origin_load"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	MeanHops      float64 `json:"mean_hops"`
	SimTimeMs     float64 `json:"sim_time_ms"`
}

// Coordination is the coordinator's epoch accounting.
type Coordination struct {
	Epoch         int64 `json:"epoch"`
	Replans       int64 `json:"replans"`
	Messages      int64 `json:"messages"`
	Checkpoints   int64 `json:"checkpoints"`
	EpochRequests int64 `json:"epoch_requests"`
	Restored      bool  `json:"restored"`
}

// PoolSnapshot is the prep pool's width.
type PoolSnapshot struct {
	Target int `json:"target"`
	Active int `json:"active"`
}

// EngineSnapshot is the discrete-event engine's gauges as of the last
// fully simulated batch (the engine is engine-goroutine state, so the
// snapshot reads the folded copy, never the engine itself). The daemon
// hosts the serial engine: Shards is 1 and CrossShardEvents 0, kept so
// the daemon and batch manifests share an engine-section shape.
type EngineSnapshot struct {
	EventsProcessed  uint64 `json:"events_processed"`
	PendingPeak      int    `json:"pending_peak"`
	Shards           int    `json:"shards"`
	CrossShardEvents uint64 `json:"cross_shard_events"`
}

// TimelineSummary is the timeline ring's accounting: how many epoch
// records exist, how many the bounded ring evicted, and the retention
// limit. The records themselves are served by GET /timeline and
// written into the manifest.
type TimelineSummary struct {
	Records  int    `json:"records"`
	Total    uint64 `json:"total"`
	Dropped  uint64 `json:"dropped"`
	Capacity int    `json:"capacity"`
}

// Snapshot is one consistent view of the daemon, served by GET /stats.
type Snapshot struct {
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
	// Queued counts batches admitted but not yet fully simulated.
	Queued       int64           `json:"queued"`
	QueueDepth   int             `json:"queue_depth"`
	Workers      PoolSnapshot    `json:"workers"`
	Workload     WorkloadParams  `json:"workload"`
	Totals       Totals          `json:"totals"`
	Coordination Coordination    `json:"coordination"`
	Engine       EngineSnapshot  `json:"engine"`
	Timeline     TimelineSummary `json:"timeline"`
}

// Snapshot assembles the current view. Admission and simulation
// accounting advance on different goroutines, so the two sections are
// each internally consistent; Queued is clamped non-negative in case
// a batch lands between the reads.
func (d *Daemon) Snapshot() Snapshot {
	d.mu.Lock()
	state := d.state
	reason := ""
	switch state {
	case StateFailed:
		reason = d.failReason
	case StateDraining, StateStopped:
		reason = d.drainReason
	}
	batches := d.admittedBatches
	requests := d.admittedRequests
	rejected := d.rejected
	wl := d.workload
	d.mu.Unlock()

	target, active := d.PoolStatus()

	d.tot.mu.Lock()
	t := Totals{
		BatchesAdmitted:  batches,
		RequestsAdmitted: requests,
		RequestsRejected: rejected,
		BatchesSimulated: d.tot.processedBatches,
		Completed:        d.tot.completed,
		Failed:           d.tot.failed,
		LocalHits:        d.tot.local,
		PeerHits:         d.tot.peer,
		OriginServes:     d.tot.origin,
		SimTimeMs:        d.tot.simTime,
	}
	c := Coordination{
		Epoch:         d.tot.epoch,
		Replans:       d.tot.replans,
		Messages:      d.tot.coordMessages,
		Checkpoints:   d.tot.checkpoints,
		EpochRequests: d.cfg.EpochRequests,
		Restored:      d.restored,
	}
	eng := EngineSnapshot{
		EventsProcessed: d.tot.events,
		PendingPeak:     d.tot.pendingPeak,
		Shards:          1,
	}
	latencySum, hopsSum := d.tot.latencySum, d.tot.hopsSum
	d.tot.mu.Unlock()

	tl := d.timeline.Snapshot()

	if t.Completed > 0 {
		n := float64(t.Completed)
		t.LocalHit = float64(t.LocalHits) / n
		t.PeerHit = float64(t.PeerHits) / n
		t.OriginLoad = float64(t.OriginServes) / n
		t.MeanLatencyMs = latencySum / n
		t.MeanHops = float64(hopsSum) / n
	}
	queued := batches - t.BatchesSimulated
	if queued < 0 {
		queued = 0
	}
	return Snapshot{
		State:        state.String(),
		Reason:       reason,
		Queued:       queued,
		QueueDepth:   d.cfg.QueueDepth,
		Workers:      PoolSnapshot{Target: target, Active: active},
		Workload:     wl,
		Totals:       t,
		Coordination: c,
		Engine:       eng,
		Timeline: TimelineSummary{
			Records:  len(tl.Records),
			Total:    tl.Total,
			Dropped:  tl.Dropped,
			Capacity: tl.Capacity,
		},
	}
}

// Manifest is the final observability record a drained daemon writes.
type Manifest struct {
	Schema      string `json:"schema"`
	Topology    string `json:"topology"`
	Routers     int    `json:"routers"`
	CatalogSize int64  `json:"catalog_size"`
	Capacity    int64  `json:"capacity"`
	Coordinated int64  `json:"coordinated"`
	Seed        int64  `json:"seed"`
	// Final is the closing snapshot; its totals equal the last GET
	// /stats response.
	Final Snapshot `json:"final"`
	// Timeline is the retained epoch records, oldest first — the same
	// array GET /timeline serves. Empty runs omit the section.
	Timeline []timeline.EpochRecord `json:"timeline,omitempty"`
}

// Manifest builds the final record from the current snapshot.
func (d *Daemon) Manifest() *Manifest {
	return &Manifest{
		Schema:      ManifestSchema,
		Topology:    d.cfg.Topology.Name(),
		Routers:     d.cfg.Topology.N(),
		CatalogSize: d.cfg.CatalogSize,
		Capacity:    d.cfg.Capacity,
		Coordinated: d.cfg.Coordinated,
		Seed:        d.cfg.Seed,
		Final:       d.Snapshot(),
		Timeline:    d.timeline.Snapshot().Records,
	}
}

// WriteJSON serializes the manifest as indented JSON plus a newline;
// byte-deterministic for a given manifest.
func (m *Manifest) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("daemon: marshaling manifest: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("daemon: writing manifest: %w", err)
	}
	return nil
}
