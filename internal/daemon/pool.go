// The elastic prep worker pool, modeled on the boss/worker-pool shape
// of serverless schedulers: a target width the operator moves at
// runtime, workers tracked individually so scale-down retires exactly
// the excess, and a barrier that lets the owner drain the pipeline
// cleanly. Workers only transform batches into arrival schedules —
// all simulation stays on the engine goroutine — so the pool trades
// prep throughput for memory, never determinism: schedules are seeded
// by admission sequence, not by worker identity.
package daemon

import (
	"fmt"
	"sync"
)

// MaxWorkers bounds the prep pool width.
const MaxWorkers = 64

// Pool is the elastic worker set turning admitted batches into
// prepared arrival schedules.
type Pool struct {
	in   <-chan batch
	out  chan<- prepared
	prep func(batch) prepared

	mu     sync.Mutex
	target int
	active int
	nextID int
	stops  map[int]chan struct{}
	wg     sync.WaitGroup
}

// NewPool starts n workers consuming in and emitting to out.
func NewPool(n int, in <-chan batch, out chan<- prepared, prep func(batch) prepared) *Pool {
	p := &Pool{in: in, out: out, prep: prep, stops: make(map[int]chan struct{})}
	p.mu.Lock()
	for p.target < n {
		p.spawnLocked()
	}
	p.mu.Unlock()
	return p
}

// Scale moves the pool to n workers in [1, MaxWorkers]: missing
// workers are spawned immediately, excess workers retire after the
// batch they are currently preparing. Returns the new target and the
// live count (retiring workers remain live briefly).
func (p *Pool) Scale(n int) (target, active int, err error) {
	if n < 1 || n > MaxWorkers {
		return 0, 0, fmt.Errorf("daemon: worker count %d outside [1, %d]", n, MaxWorkers)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.target < n {
		p.spawnLocked()
	}
	for p.target > n {
		p.stopOneLocked()
	}
	return p.target, p.active, nil
}

// Status returns the target and live worker counts.
func (p *Pool) Status() (target, active int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.target, p.active
}

// Wait blocks until every worker has exited, which happens after the
// input channel closes and drains (retired workers exit earlier). The
// owner closes the output channel after Wait returns.
func (p *Pool) Wait() { p.wg.Wait() }

func (p *Pool) spawnLocked() {
	id := p.nextID
	p.nextID++
	stop := make(chan struct{})
	p.stops[id] = stop
	p.target++
	p.active++
	p.wg.Add(1)
	go p.run(id, stop)
}

// stopOneLocked retires an arbitrary worker; which one is immaterial
// since workers are interchangeable (no per-worker state).
func (p *Pool) stopOneLocked() {
	for id, stop := range p.stops {
		close(stop)
		delete(p.stops, id)
		p.target--
		return
	}
}

func (p *Pool) run(id int, stop chan struct{}) {
	defer func() {
		p.mu.Lock()
		p.active--
		delete(p.stops, id)
		p.mu.Unlock()
		p.wg.Done()
	}()
	for {
		// Prefer retirement over another batch when both are ready.
		select {
		case <-stop:
			return
		default:
		}
		select {
		case <-stop:
			return
		case b, ok := <-p.in:
			if !ok {
				return
			}
			p.out <- p.prep(b)
		}
	}
}
