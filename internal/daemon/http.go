// The daemon's HTTP/JSON control and data plane. Handlers mount onto
// the observability mux (internal/obs), so one listener serves client
// load, live retuning, scaling, stats, health, metrics and pprof.
// Admission errors map onto transport semantics: a full queue is 429
// with Retry-After, a daemon outside Running is 503.
package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ccncoord/internal/obs"
)

// Register mounts the daemon's endpoints on mux:
//
//	POST /requests  {"count": N, "router": R?}  -> 202 {"seq", "queued"}
//	GET  /stats                                 -> 200 Snapshot
//	GET  /timeline                              -> 200 epoch records
//	POST /workload  WorkloadParams              -> 200 effective params
//	POST /scaling   {"workers": N}              -> 200 {"target", "active"}
//	GET  /scaling                               -> 200 {"target", "active"}
//	POST /shutdown                              -> 202; drains asynchronously
//
// /timeline supports ?since=E and ?follow=1 (see obs.TimelineHandler)
// and shares the daemon's health lifecycle: 503 before Start and after
// failure, readable while running and draining.
func (d *Daemon) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /requests", d.handleRequests)
	mux.HandleFunc("GET /stats", d.handleStats)
	mux.Handle("GET /timeline", obs.TimelineHandler(d.timeline, d.health))
	mux.HandleFunc("POST /workload", d.handleWorkload)
	mux.HandleFunc("POST /scaling", d.handleScalePost)
	mux.HandleFunc("GET /scaling", d.handleScaleGet)
	mux.HandleFunc("POST /shutdown", d.handleShutdown)
}

// writeJSON emits one JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps an admission error to its transport status.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrNotAdmitting):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeBody parses one JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("daemon: malformed request body: %w", err)
	}
	return nil
}

func (d *Daemon) handleRequests(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Count  int  `json:"count"`
		Router *int `json:"router"`
	}
	if err := decodeBody(r, &body); err != nil {
		writeError(w, err)
		return
	}
	router := -1
	if body.Router != nil {
		router = *body.Router
	}
	seq, queued, err := d.Submit(body.Count, router)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"seq": seq, "queued": queued})
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.Snapshot())
}

func (d *Daemon) handleWorkload(w http.ResponseWriter, r *http.Request) {
	var p WorkloadParams
	if err := decodeBody(r, &p); err != nil {
		writeError(w, err)
		return
	}
	eff, err := d.SetWorkload(p)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, eff)
}

func (d *Daemon) handleScalePost(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Workers int `json:"workers"`
	}
	if err := decodeBody(r, &body); err != nil {
		writeError(w, err)
		return
	}
	target, active, err := d.Scale(body.Workers)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"target": target, "active": active})
}

func (d *Daemon) handleScaleGet(w http.ResponseWriter, r *http.Request) {
	target, active := d.PoolStatus()
	writeJSON(w, http.StatusOK, map[string]int{"target": target, "active": active})
}

func (d *Daemon) handleShutdown(w http.ResponseWriter, r *http.Request) {
	// Drain blocks until the engine stops; run it off the handler so the
	// response reaches the client while queued batches finish.
	go func() { _ = d.Drain("shutdown requested") }()
	writeJSON(w, http.StatusAccepted, map[string]string{"state": StateDraining.String()})
}
