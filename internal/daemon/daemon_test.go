package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"ccncoord/internal/obs"
	"ccncoord/internal/topology"
)

// testConfig is a small hosted network that completes quickly.
func testConfig(t *testing.T) Config {
	t.Helper()
	g, err := topology.Ring(4, 10)
	if err != nil {
		t.Fatalf("building ring: %v", err)
	}
	return Config{
		Topology:      g,
		CatalogSize:   500,
		Capacity:      20,
		Coordinated:   10,
		OriginGateway: -1,
		EpochRequests: 300,
		Seed:          7,
	}
}

func mustStart(t *testing.T, cfg Config, health *obs.Health) *Daemon {
	t.Helper()
	d, err := New(cfg, health, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return d
}

func submit(t *testing.T, d *Daemon, count, router int) uint64 {
	t.Helper()
	seq, _, err := d.Submit(count, router)
	if err != nil {
		t.Fatalf("Submit(%d, %d): %v", count, router, err)
	}
	return seq
}

// TestLifecycleAdmitDrainCheckpointRestore is the core restart
// equivalence property: admit load, drain, restart from the
// checkpoint, drain idle — the coordinator state must round-trip
// byte-identically and the restored daemon must resume at the same
// epoch.
func TestLifecycleAdmitDrainCheckpointRestore(t *testing.T) {
	cfg := testConfig(t)
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "ckpt.json")

	d := mustStart(t, cfg, nil)
	submit(t, d, 400, -1)
	submit(t, d, 400, 2)
	if err := d.Drain("test drain"); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if state, _ := d.State(); state != StateStopped {
		t.Fatalf("state after drain = %v, want stopped", state)
	}
	snap := d.Snapshot()
	if got := snap.Totals.Completed + snap.Totals.Failed; got != 800 {
		t.Errorf("completed+failed = %d, want all 800 admitted requests resolved", got)
	}
	if snap.Totals.RequestsAdmitted != 800 || snap.Totals.BatchesSimulated != 2 {
		t.Errorf("totals = %+v, want 800 requests over 2 batches", snap.Totals)
	}
	if snap.Coordination.Epoch < 1 || snap.Coordination.Replans < 1 {
		t.Errorf("coordination = %+v, want at least one re-plan of the 800-request run with EpochRequests=300", snap.Coordination)
	}
	if snap.Coordination.Checkpoints != snap.Coordination.Replans+1 {
		t.Errorf("checkpoints = %d, want one per re-plan plus the final drain checkpoint (%d)",
			snap.Coordination.Checkpoints, snap.Coordination.Replans+1)
	}
	before, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatalf("reading checkpoint: %v", err)
	}

	// Restart from the checkpoint; an idle drain must rewrite the
	// identical bytes.
	d2 := mustStart(t, cfg, nil)
	if !d2.Restored() {
		t.Fatal("restarted daemon did not restore the checkpoint")
	}
	if d2.Epoch() != snap.Coordination.Epoch {
		t.Errorf("restored epoch = %d, want %d", d2.Epoch(), snap.Coordination.Epoch)
	}
	if err := d2.Drain("idle"); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	after, err := os.ReadFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatalf("re-reading checkpoint: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Error("restore + idle drain did not rewrite a byte-identical checkpoint")
	}
}

// TestRestoreRejectsForeignTopology ensures a checkpoint taken against
// a larger network cannot be restored into a smaller one.
func TestRestoreRejectsForeignTopology(t *testing.T) {
	big := testConfig(t)
	g, err := topology.Ring(8, 10)
	if err != nil {
		t.Fatalf("building ring: %v", err)
	}
	big.Topology = g
	big.CheckpointPath = filepath.Join(t.TempDir(), "ckpt.json")
	d := mustStart(t, big, nil)
	submit(t, d, 200, -1)
	if err := d.Drain(""); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	small := testConfig(t) // 4 routers
	small.CheckpointPath = big.CheckpointPath
	if _, err := New(small, nil, nil); err == nil || !strings.Contains(err.Error(), "outside this") {
		t.Errorf("restoring an 8-router checkpoint into 4 routers: err = %v, want topology mismatch", err)
	}
}

// TestHealthTransitions mirrors the lifecycle into the readiness
// probe: 503 initializing -> 200 ok -> 503 draining.
func TestHealthTransitions(t *testing.T) {
	cfg := testConfig(t)
	health := obs.NewHealth()
	d, err := New(cfg, health, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if state, _ := health.State(); state != obs.HealthInitializing {
		t.Errorf("health before Start = %v, want initializing", state)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if state, _ := health.State(); state != obs.HealthReady {
		t.Errorf("health after Start = %v, want ready", state)
	}
	submit(t, d, 100, -1)
	if err := d.Drain("bye"); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	state, reason := health.State()
	if state != obs.HealthDraining {
		t.Errorf("health after drain = %v, want draining", state)
	}
	if !strings.Contains(reason, "drained") {
		t.Errorf("drained health reason = %q, want it to say drained", reason)
	}
	if _, _, err := d.Submit(1, -1); !errors.Is(err, ErrNotAdmitting) {
		t.Errorf("Submit after drain: err = %v, want ErrNotAdmitting", err)
	}
}

// TestSubmitOverload fills the bounded admission pipeline behind a
// paced engine and expects ErrOverloaded.
func TestSubmitOverload(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 1
	cfg.Workers = 1
	cfg.EpochRequests = -1
	cfg.TimeRatio = 0.5 // ~2 wall ms per simulated ms: each batch lingers
	d := mustStart(t, cfg, nil)
	overloaded := false
	for i := 0; i < 64 && !overloaded; i++ {
		_, _, err := d.Submit(50, -1)
		switch {
		case err == nil:
		case errors.Is(err, ErrOverloaded):
			overloaded = true
		default:
			t.Fatalf("Submit: %v", err)
		}
	}
	if !overloaded {
		t.Error("64 rapid submissions against a depth-1 queue never overloaded")
	}
	if got := d.Snapshot().Totals.RequestsRejected; overloaded && got < 1 {
		t.Errorf("rejected count = %d after an overload", got)
	}
	if err := d.Drain(""); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	snap := d.Snapshot()
	if snap.Totals.Completed+snap.Totals.Failed != snap.Totals.RequestsAdmitted {
		t.Errorf("drain left requests unresolved: %+v", snap.Totals)
	}
}

// TestWorkloadRetune checks live retuning applies to new batches and
// rejects invalid parameters.
func TestWorkloadRetune(t *testing.T) {
	d := mustStart(t, testConfig(t), nil)
	want := WorkloadParams{ZipfS: 1.2, MeanInterarrivalMs: 0.25}
	got, err := d.SetWorkload(want)
	if err != nil {
		t.Fatalf("SetWorkload: %v", err)
	}
	if got != want {
		t.Errorf("effective params = %+v, want %+v", got, want)
	}
	if d.Workload() != want {
		t.Errorf("Workload() = %+v, want %+v", d.Workload(), want)
	}
	if _, err := d.SetWorkload(WorkloadParams{ZipfS: -1, MeanInterarrivalMs: 1}); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := d.SetWorkload(WorkloadParams{ZipfS: 1, MeanInterarrivalMs: 0}); err == nil {
		t.Error("zero inter-arrival accepted")
	}
	submit(t, d, 200, -1)
	if err := d.Drain(""); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if snap := d.Snapshot(); snap.Totals.Completed+snap.Totals.Failed != 200 {
		t.Errorf("retuned batch did not complete: %+v", snap.Totals)
	}
}

// TestScaling exercises the elastic pool bounds and live resizing.
func TestScaling(t *testing.T) {
	d := mustStart(t, testConfig(t), nil)
	target, _, err := d.Scale(4)
	if err != nil || target != 4 {
		t.Fatalf("Scale(4) = (%d, %v), want target 4", target, err)
	}
	target, _, err = d.Scale(1)
	if err != nil || target != 1 {
		t.Fatalf("Scale(1) = (%d, %v), want target 1", target, err)
	}
	if _, _, err := d.Scale(0); err == nil {
		t.Error("Scale(0) accepted")
	}
	if _, _, err := d.Scale(MaxWorkers + 1); err == nil {
		t.Errorf("Scale(%d) accepted", MaxWorkers+1)
	}
	// The downsized pool still drains everything.
	submit(t, d, 300, -1)
	submit(t, d, 300, -1)
	if err := d.Drain(""); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if snap := d.Snapshot(); snap.Totals.Completed+snap.Totals.Failed != 600 {
		t.Errorf("scaled pool lost requests: %+v", snap.Totals)
	}
	if _, active := d.PoolStatus(); active != 0 {
		t.Errorf("%d workers alive after drain", active)
	}
}

// TestDeterministicSchedules pins that identical submissions against
// identical configs produce identical measurements regardless of pool
// width — batch preparation is seeded by admission sequence, not
// worker identity.
func TestDeterministicSchedules(t *testing.T) {
	run := func(workers int) Totals {
		cfg := testConfig(t)
		cfg.Workers = workers
		d := mustStart(t, cfg, nil)
		for i := 0; i < 4; i++ {
			submit(t, d, 200, -1)
		}
		if err := d.Drain(""); err != nil {
			t.Fatalf("Drain: %v", err)
		}
		return d.Snapshot().Totals
	}
	if one, eight := run(1), run(8); !reflect.DeepEqual(one, eight) {
		t.Errorf("totals differ across pool widths:\n 1 worker: %+v\n 8 workers: %+v", one, eight)
	}
}

// TestManifestMatchesStats asserts the drained manifest embeds the
// same totals the stats endpoint reports.
func TestManifestMatchesStats(t *testing.T) {
	d := mustStart(t, testConfig(t), nil)
	submit(t, d, 400, -1)
	if err := d.Drain(""); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	m := d.Manifest()
	if m.Schema != ManifestSchema {
		t.Errorf("schema = %q, want %q", m.Schema, ManifestSchema)
	}
	if snap := d.Snapshot(); !reflect.DeepEqual(m.Final, snap) {
		t.Errorf("manifest final snapshot diverges from /stats:\nmanifest: %+v\nstats:    %+v", m.Final, snap)
	}
}

// TestHTTPPlane drives the daemon end to end through the HTTP
// handlers mounted on the observability mux.
func TestHTTPPlane(t *testing.T) {
	cfg := testConfig(t)
	health := obs.NewHealth()
	d, err := New(cfg, health, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mux := obs.NewMux(nil, health)
	d.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "initializing") {
		t.Errorf("pre-Start /healthz = (%d, %q), want 503 initializing", code, body)
	}
	if code, _ := post("/requests", `{"count":10}`); code != http.StatusServiceUnavailable {
		t.Errorf("pre-Start POST /requests = %d, want 503", code)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("running /healthz = (%d, %q), want 200 ok", code, body)
	}
	if code, body := post("/requests", `{"count":100,"router":2}`); code != http.StatusAccepted || !strings.Contains(body, `"seq": 1`) {
		t.Errorf("POST /requests = (%d, %q), want 202 seq 1", code, body)
	}
	if code, _ := post("/requests", `{"count":0}`); code != http.StatusBadRequest {
		t.Errorf("count 0 accepted with %d", code)
	}
	if code, _ := post("/requests", `{"count":10,"router":99}`); code != http.StatusBadRequest {
		t.Errorf("unknown router accepted with %d", code)
	}
	if code, _ := post("/requests", `not json`); code != http.StatusBadRequest {
		t.Errorf("malformed body accepted with %d", code)
	}
	if code, _ := post("/workload", `{"zipf_s":1.1,"mean_interarrival_ms":0.5}`); code != http.StatusOK {
		t.Errorf("POST /workload = %d, want 200", code)
	}
	if code, _ := post("/workload", `{"zipf_s":-1}`); code != http.StatusBadRequest {
		t.Errorf("invalid workload accepted with %d", code)
	}
	if code, body := post("/scaling", `{"workers":3}`); code != http.StatusOK || !strings.Contains(body, `"target": 3`) {
		t.Errorf("POST /scaling = (%d, %q), want 200 target 3", code, body)
	}
	if code, _ := post("/scaling", `{"workers":0}`); code != http.StatusBadRequest {
		t.Errorf("zero workers accepted with %d", code)
	}
	if code, body := post("/shutdown", ``); code != http.StatusAccepted || !strings.Contains(body, "draining") {
		t.Errorf("POST /shutdown = (%d, %q), want 202 draining", code, body)
	}
	select {
	case <-d.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after /shutdown")
	}
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("post-drain /healthz = (%d, %q), want 503 draining", code, body)
	}
	code, body := get("/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /stats = %d, want 200", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("decoding /stats: %v", err)
	}
	if snap.State != "stopped" || snap.Totals.Completed+snap.Totals.Failed != 100 {
		t.Errorf("final stats = %+v, want stopped with 100 resolved requests", snap)
	}
	if code, _ := post("/requests", `{"count":10}`); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain POST /requests = %d, want 503", code)
	}
}
