// Package daemon hosts a live simulated CCN network as a long-running
// service: clients push request batches over an HTTP/JSON control
// plane, an elastic worker pool turns each batch into a deterministic
// arrival schedule, and a single engine goroutine replays the batches
// in admission order on the discrete-event simulator. The coordinator
// re-plans the partitioned placement every EpochRequests completed
// requests from the popularity the network actually observed, and its
// state — epoch, placement, popularity sketch — survives process
// restarts through the coord checkpoint machinery: a drained daemon's
// final checkpoint restores byte-identically.
//
// Lifecycle: Initializing (network built, nothing admitted) ->
// Running (admitting) -> Draining (admission closed, queued batches
// finishing, PIT flushed) -> Stopped (final checkpoint on disk).
// Failed is terminal from any state. The obs.Health probe mirrors the
// lifecycle so orchestration sees 503 before readiness, during drain,
// and after failure.
package daemon

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"ccncoord/internal/cache"
	"ccncoord/internal/catalog"
	"ccncoord/internal/ccn"
	"ccncoord/internal/coord"
	"ccncoord/internal/des"
	"ccncoord/internal/obs"
	"ccncoord/internal/sim"
	"ccncoord/internal/timeline"
	"ccncoord/internal/topology"
	"ccncoord/internal/workload"
)

// State is the daemon's lifecycle phase.
type State int

const (
	StateInitializing State = iota
	StateRunning
	StateDraining
	StateStopped
	StateFailed
)

// String returns the lowercase phase name used in HTTP responses.
func (s State) String() string {
	switch s {
	case StateInitializing:
		return "initializing"
	case StateRunning:
		return "running"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Sentinel admission errors; the HTTP layer maps them to status codes.
var (
	// ErrOverloaded reports a full admission queue (429 Retry-After).
	ErrOverloaded = errors.New("daemon: admission queue full")
	// ErrNotAdmitting reports a daemon outside the Running state (503).
	ErrNotAdmitting = errors.New("daemon: not admitting requests")
)

// WorkloadParams is the live-tunable request workload: batches admitted
// after a retune sample from the new distribution, batches already
// queued keep the parameters they were admitted under.
type WorkloadParams struct {
	// ZipfS is the Zipf popularity exponent contents are drawn with.
	ZipfS float64 `json:"zipf_s"`
	// MeanInterarrivalMs is the mean of the exponential gap between
	// consecutive arrivals in a batch (simulated ms).
	MeanInterarrivalMs float64 `json:"mean_interarrival_ms"`
}

func (p WorkloadParams) validate() error {
	if !(p.ZipfS > 0) {
		return fmt.Errorf("daemon: zipf exponent must be positive, got %v", p.ZipfS)
	}
	if !(p.MeanInterarrivalMs > 0) {
		return fmt.Errorf("daemon: mean inter-arrival must be positive, got %v ms", p.MeanInterarrivalMs)
	}
	return nil
}

// Config describes the hosted network and the daemon's service knobs.
// Zero fields take the documented defaults at New.
type Config struct {
	// Topology is the hosted router graph. Required.
	Topology *topology.Graph
	// CatalogSize is the number of distinct contents. Default 20000.
	CatalogSize int64
	// Capacity is each router's total storage c. Default 150.
	Capacity int64
	// Coordinated is the coordinated slot count x per router, in
	// [0, Capacity]. Default Capacity/2.
	Coordinated int64
	// AccessLatency is the one-way client access latency (ms).
	// Default 5.
	AccessLatency float64
	// OriginLatency is the one-way origin uplink latency (ms).
	// Default 60.
	OriginLatency float64
	// OriginGateway attaches the origin uplink at one router; any
	// negative value attaches a uniform uplink at every router. Note
	// the zero value means router 0 — pass -1 for the uniform default.
	OriginGateway int
	// Workload is the initial request distribution. Defaults: s=0.8,
	// 1 ms mean inter-arrival.
	Workload WorkloadParams
	// Seed decorrelates everything stochastic; per-batch streams are
	// derived from it by seq-indexed mixing. Default 1.
	Seed int64
	// QueueDepth bounds the admission queue in batches; a full queue
	// rejects with ErrOverloaded. Default 64.
	QueueDepth int
	// MaxBatch bounds one submission's request count. Default 100000.
	MaxBatch int
	// Workers is the initial prep worker-pool size, elastically
	// rescalable at runtime in [1, MaxWorkers]. Default 2.
	Workers int
	// EpochRequests is the number of completed requests between
	// coordinator re-plans; negative disables re-planning. Default
	// 50000.
	EpochRequests int64
	// CheckpointPath, when non-empty, persists the coordinator state
	// there after every re-plan and at drain, and restores from it at
	// New when the file exists.
	CheckpointPath string
	// TimeRatio paces the engine at this many simulated ms per
	// wall-clock ms; 0 runs as fast as possible.
	TimeRatio float64
	// TimelineCapacity bounds the telemetry timeline: the ring retains
	// this many epoch records, oldest-evicted. Default 1024.
	TimelineCapacity int
}

// fill applies defaults and validates.
func (c *Config) fill() error {
	if c.Topology == nil {
		return fmt.Errorf("daemon: config needs a topology")
	}
	if c.Topology.N() < 1 {
		return fmt.Errorf("daemon: topology has no routers")
	}
	if c.CatalogSize == 0 {
		c.CatalogSize = 20000
	}
	if c.CatalogSize < 1 {
		return fmt.Errorf("daemon: catalog size must be positive, got %d", c.CatalogSize)
	}
	if c.Capacity == 0 {
		c.Capacity = 150
	}
	if c.Capacity < 1 {
		return fmt.Errorf("daemon: capacity must be positive, got %d", c.Capacity)
	}
	if c.Coordinated == 0 {
		c.Coordinated = c.Capacity / 2
	}
	if c.Coordinated < 0 || c.Coordinated > c.Capacity {
		return fmt.Errorf("daemon: coordinated slots %d outside [0, %d]", c.Coordinated, c.Capacity)
	}
	if c.AccessLatency == 0 {
		c.AccessLatency = 5
	}
	if !(c.AccessLatency > 0) {
		return fmt.Errorf("daemon: access latency must be positive, got %v", c.AccessLatency)
	}
	if c.OriginLatency == 0 {
		c.OriginLatency = 60
	}
	if !(c.OriginLatency > 0) {
		return fmt.Errorf("daemon: origin latency must be positive, got %v", c.OriginLatency)
	}
	if c.OriginGateway >= c.Topology.N() {
		return fmt.Errorf("daemon: origin gateway %d outside topology (%d routers)", c.OriginGateway, c.Topology.N())
	}
	if c.Workload.ZipfS == 0 {
		c.Workload.ZipfS = 0.8
	}
	if c.Workload.MeanInterarrivalMs == 0 {
		c.Workload.MeanInterarrivalMs = 1
	}
	if err := c.Workload.validate(); err != nil {
		return err
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("daemon: queue depth must be positive, got %d", c.QueueDepth)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 100000
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("daemon: max batch must be positive, got %d", c.MaxBatch)
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.Workers < 1 || c.Workers > MaxWorkers {
		return fmt.Errorf("daemon: workers %d outside [1, %d]", c.Workers, MaxWorkers)
	}
	if c.EpochRequests == 0 {
		c.EpochRequests = 50000
	}
	if c.TimeRatio < 0 {
		return fmt.Errorf("daemon: time ratio must be non-negative, got %v", c.TimeRatio)
	}
	if c.TimelineCapacity == 0 {
		c.TimelineCapacity = 1024
	}
	if c.TimelineCapacity < 1 {
		return fmt.Errorf("daemon: timeline capacity must be positive, got %d", c.TimelineCapacity)
	}
	return nil
}

// batch is one admitted unit of client load.
type batch struct {
	seq    uint64 // 1-based admission order; the engine replays in seq order
	count  int
	router int // first-hop router, or -1 to spread uniformly
	params WorkloadParams
}

// arrival is one prepared request.
type arrival struct {
	router  topology.NodeID
	content catalog.ID
	gap     float64 // ms since the previous arrival in the batch
}

// prepared is a batch turned into a concrete arrival schedule.
type prepared struct {
	seq  uint64
	reqs []arrival
	err  error
}

// Daemon is one hosted network plus its service machinery. Construct
// with New, then Start; Drain ends the service.
type Daemon struct {
	cfg      Config
	health   *obs.Health
	progress *obs.Progress
	timeline *timeline.Ring

	// mu guards the lifecycle state and admission bookkeeping.
	mu               sync.Mutex
	state            State
	failReason       string
	drainReason      string
	admitClosed      bool
	nextSeq          uint64
	admittedBatches  int64
	admittedRequests int64
	rejected         int64
	workload         WorkloadParams
	pool             *Pool

	admitq     chan batch
	readyq     chan prepared
	engineDone chan struct{}

	// famMu guards the Zipf family cache shared by prep workers.
	famMu    sync.Mutex
	families map[float64]*workload.ZipfFamily

	// Engine-goroutine-only simulation state.
	eng         *des.Engine
	net         *ccn.Network
	routers     []topology.NodeID
	parts       []*cache.Partitioned
	coordAsg    *coord.Assignment
	localSet    []catalog.ID
	coordinator *coord.Centralized
	epoch       int64
	restored    bool
	counts      map[catalog.ID]int64   // cumulative popularity sketch (checkpointed)
	epochCounts []map[catalog.ID]int64 // per-router counts since the last re-plan
	sinceReplan int64
	eCompleted  int64
	eFailed     int64
	eLocal      int64
	ePeer       int64
	eOrigin     int64
	eLatencySum float64
	eHopsSum    int64

	tot totals
}

// totals is the snapshot-visible accounting, folded in at batch
// granularity by the engine goroutine and read by the HTTP plane.
type totals struct {
	mu               sync.Mutex
	processedBatches int64
	completed        int64
	failed           int64
	local            int64
	peer             int64
	origin           int64
	latencySum       float64
	hopsSum          int64
	simTime          float64
	epoch            int64
	replans          int64
	coordMessages    int64
	checkpoints      int64
	events           uint64
	pendingPeak      int
}

// New builds the hosted network in the Initializing state. When
// cfg.CheckpointPath names an existing file, the coordinator state —
// epoch, placement, popularity sketch — is restored from it instead of
// provisioning by rank, so a restarted daemon resumes exactly where
// the drained one stopped.
func New(cfg Config, health *obs.Health, progress *obs.Progress) (*Daemon, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	n := cfg.Topology.N()
	cat, err := catalog.New(cfg.CatalogSize, "/ccnd")
	if err != nil {
		return nil, fmt.Errorf("daemon: building catalog: %w", err)
	}
	d := &Daemon{
		cfg:        cfg,
		health:     health,
		progress:   progress,
		timeline:   timeline.NewRing(cfg.TimelineCapacity),
		workload:   cfg.Workload,
		admitq:     make(chan batch, cfg.QueueDepth),
		readyq:     make(chan prepared, cfg.QueueDepth),
		engineDone: make(chan struct{}),
		families:   make(map[float64]*workload.ZipfFamily),
		eng:        &des.Engine{},
		routers:    make([]topology.NodeID, n),
		parts:      make([]*cache.Partitioned, n),
		counts:     make(map[catalog.ID]int64),
	}
	for i := range d.routers {
		d.routers[i] = topology.NodeID(i)
	}
	d.epochCounts = make([]map[catalog.ID]int64, n)
	for i := range d.epochCounts {
		d.epochCounts[i] = make(map[catalog.ID]int64)
	}

	if err := d.provision(); err != nil {
		return nil, err
	}

	net, err := ccn.NewNetwork(d.eng, cfg.Topology, cat, ccn.Options{
		AccessLatency: cfg.AccessLatency,
		Stores: func(id topology.NodeID) (cache.Store, error) {
			local, err := cache.NewStatic(d.localSet)
			if err != nil {
				return nil, err
			}
			coordStore, err := cache.NewStatic(d.coordAsg.Contents(id))
			if err != nil {
				return nil, err
			}
			p, err := cache.NewPartitioned(local, coordStore)
			if err != nil {
				return nil, err
			}
			d.parts[id] = p
			return p, nil
		},
		Mode:      ccn.CacheNone,
		Directory: d.coordAsg,
	})
	if err != nil {
		return nil, fmt.Errorf("daemon: building network: %w", err)
	}
	if cfg.OriginGateway >= 0 {
		err = net.AttachOriginAt(topology.NodeID(cfg.OriginGateway), cfg.OriginLatency)
	} else {
		err = net.AttachOriginUniform(cfg.OriginLatency)
	}
	if err != nil {
		return nil, fmt.Errorf("daemon: attaching origin: %w", err)
	}
	d.net = net

	// The coordination unit cost w is the slowest router pair, which the
	// diameter bounds; a single-router graph degenerates to 1 ms.
	w := cfg.Topology.DiameterEstimate()
	if !(w > 0) {
		w = 1
	}
	d.coordinator, err = coord.NewCentralized(d.routers, w)
	if err != nil {
		return nil, fmt.Errorf("daemon: building coordinator: %w", err)
	}
	d.tot.epoch = d.epoch
	return d, nil
}

// provision installs the initial placement: restored from the
// checkpoint when one exists, otherwise the paper's rank split (top
// c-x replicated locally, next n*x striped).
func (d *Daemon) provision() error {
	if path := d.cfg.CheckpointPath; path != "" {
		if _, err := os.Stat(path); err == nil {
			return d.restore(path)
		}
	}
	n := int64(len(d.routers))
	localSlots := d.cfg.Capacity - d.cfg.Coordinated
	localHi := min(localSlots, d.cfg.CatalogSize)
	d.localSet = cache.RankRange(1, localHi)
	var band []catalog.ID
	if bandHi := min(localSlots+n*d.cfg.Coordinated, d.cfg.CatalogSize); bandHi > localHi {
		band = cache.RankRange(localHi+1, bandHi)
	}
	asg, err := coord.StripeByRank(d.routers, band, d.cfg.Coordinated)
	if err != nil {
		return fmt.Errorf("daemon: striping initial placement: %w", err)
	}
	d.coordAsg = asg
	return nil
}

// restore adopts a checkpointed coordinator state as the live one.
func (d *Daemon) restore(path string) error {
	cp, err := coord.LoadCheckpoint(path)
	if err != nil {
		return fmt.Errorf("daemon: restoring: %w", err)
	}
	if cp.Placement == nil || cp.Placement.Assignment == nil {
		return fmt.Errorf("daemon: checkpoint %s has no placement", path)
	}
	// Every assigned content must belong to a router this topology has;
	// a shortfall means the checkpoint was taken against a different
	// network.
	visible := 0
	for _, r := range d.routers {
		visible += len(cp.Placement.Assignment.Contents(r))
	}
	if visible != cp.Placement.Assignment.Size() {
		return fmt.Errorf("daemon: checkpoint %s assigns contents to routers outside this %d-router topology", path, len(d.routers))
	}
	d.coordAsg = cp.Placement.Assignment
	d.localSet = append([]catalog.ID(nil), cp.Placement.LocalSet...)
	d.epoch = cp.Epoch
	if cp.Stats != nil {
		d.counts = cp.Stats
	}
	d.restored = true
	return nil
}

// Restored reports whether New adopted a checkpoint.
func (d *Daemon) Restored() bool { return d.restored }

// Epoch returns the coordinator's current placement epoch.
func (d *Daemon) Epoch() int64 {
	d.tot.mu.Lock()
	defer d.tot.mu.Unlock()
	return d.tot.epoch
}

// Done returns a channel closed when the engine has fully stopped
// (drain complete or failure).
func (d *Daemon) Done() <-chan struct{} { return d.engineDone }

// State returns the lifecycle phase and, for Draining/Failed, its
// reason.
func (d *Daemon) State() (State, string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch d.state {
	case StateFailed:
		return d.state, d.failReason
	case StateDraining, StateStopped:
		return d.state, d.drainReason
	}
	return d.state, ""
}

// Start begins admitting: it spawns the prep pool and the engine
// goroutine and flips the health probe to ready.
func (d *Daemon) Start() error {
	d.mu.Lock()
	if d.state != StateInitializing {
		state := d.state
		d.mu.Unlock()
		return fmt.Errorf("daemon: Start on a %s daemon", state)
	}
	d.state = StateRunning
	d.pool = NewPool(d.cfg.Workers, d.admitq, d.readyq, d.prepare)
	d.mu.Unlock()
	// The pool outlives admission: once the admission queue closes and
	// every worker has drained it, the ready queue closes and the engine
	// loop finishes whatever ordering buffer remains.
	go func() {
		d.pool.Wait()
		close(d.readyq)
	}()
	go d.engineLoop()
	if d.health != nil {
		d.health.Ready()
	}
	return nil
}

// Submit admits one batch of count requests at the given first-hop
// router (-1 spreads uniformly). It returns the batch's admission
// sequence number and the queue length behind it. A full queue returns
// ErrOverloaded; any state but Running returns ErrNotAdmitting.
func (d *Daemon) Submit(count, router int) (uint64, int, error) {
	if count < 1 {
		return 0, 0, fmt.Errorf("daemon: batch count must be >= 1, got %d", count)
	}
	if count > d.cfg.MaxBatch {
		return 0, 0, fmt.Errorf("daemon: batch count %d exceeds the per-batch cap %d", count, d.cfg.MaxBatch)
	}
	if router >= d.cfg.Topology.N() {
		return 0, 0, fmt.Errorf("daemon: unknown router %d (topology has %d)", router, d.cfg.Topology.N())
	}
	if router < 0 {
		router = -1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != StateRunning {
		return 0, 0, fmt.Errorf("%w (daemon is %s)", ErrNotAdmitting, d.state)
	}
	b := batch{seq: d.nextSeq + 1, count: count, router: router, params: d.workload}
	select {
	case d.admitq <- b:
		d.nextSeq++
		d.admittedBatches++
		d.admittedRequests += int64(count)
		return b.seq, len(d.admitq), nil
	default:
		d.rejected++
		return 0, 0, ErrOverloaded
	}
}

// SetWorkload retunes the request distribution for batches admitted
// from now on. Returns the effective parameters.
func (d *Daemon) SetWorkload(p WorkloadParams) (WorkloadParams, error) {
	if err := p.validate(); err != nil {
		return WorkloadParams{}, err
	}
	// Surface an unbuildable distribution to the caller instead of
	// failing the first batch that samples it.
	if _, err := d.family(p.ZipfS); err != nil {
		return WorkloadParams{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != StateInitializing && d.state != StateRunning {
		return WorkloadParams{}, fmt.Errorf("%w (daemon is %s)", ErrNotAdmitting, d.state)
	}
	d.workload = p
	return p, nil
}

// Workload returns the distribution new batches are admitted under.
func (d *Daemon) Workload() WorkloadParams {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.workload
}

// Scale resizes the prep worker pool to n in [1, MaxWorkers] and
// returns the new target and currently live worker counts.
func (d *Daemon) Scale(n int) (target, active int, err error) {
	d.mu.Lock()
	pool := d.pool
	d.mu.Unlock()
	if pool == nil {
		return 0, 0, fmt.Errorf("daemon: pool not started")
	}
	return pool.Scale(n)
}

// PoolStatus returns the prep pool's target and live worker counts
// (the configured width before Start).
func (d *Daemon) PoolStatus() (target, active int) {
	d.mu.Lock()
	pool := d.pool
	d.mu.Unlock()
	if pool == nil {
		return d.cfg.Workers, 0
	}
	return pool.Status()
}

// Drain stops admission, lets every queued batch finish (flushing the
// PIT — the engine runs each batch to quiescence), saves the final
// checkpoint, and blocks until the engine has stopped. Safe to call
// from any goroutine and more than once.
func (d *Daemon) Drain(reason string) error {
	d.mu.Lock()
	switch d.state {
	case StateInitializing:
		d.mu.Unlock()
		return fmt.Errorf("daemon: Drain before Start")
	case StateRunning:
		d.state = StateDraining
		d.drainReason = reason
		if !d.admitClosed {
			d.admitClosed = true
			close(d.admitq)
		}
		d.mu.Unlock()
		if d.health != nil {
			d.health.Draining(reason)
		}
	default:
		d.mu.Unlock()
	}
	<-d.engineDone
	return nil
}

// fail marks the daemon Failed and stops admission. Terminal.
func (d *Daemon) fail(err error) {
	d.mu.Lock()
	if d.state == StateFailed {
		d.mu.Unlock()
		return
	}
	d.state = StateFailed
	d.failReason = err.Error()
	if !d.admitClosed {
		d.admitClosed = true
		close(d.admitq)
	}
	d.mu.Unlock()
	if d.health != nil {
		d.health.Fail(err.Error())
	}
}

// family returns the cached Zipf sampler family for exponent s,
// building it on first use. Workers share the cache: the expensive
// per-(s, N) setup happens once per retune, not once per batch.
func (d *Daemon) family(s float64) (*workload.ZipfFamily, error) {
	d.famMu.Lock()
	defer d.famMu.Unlock()
	if f, ok := d.families[s]; ok {
		return f, nil
	}
	f, err := workload.NewZipfFamily(s, d.cfg.CatalogSize)
	if err != nil {
		return nil, err
	}
	d.families[s] = f
	return f, nil
}

// prepare turns a batch into its arrival schedule on a worker
// goroutine. Streams are seeded by mixing the daemon seed with the
// batch's admission sequence, so a schedule depends only on (seed,
// seq, params, count) — never on which worker prepared it or in what
// order — keeping the replayed load deterministic under any pool size.
func (d *Daemon) prepare(b batch) prepared {
	fam, err := d.family(b.params.ZipfS)
	if err != nil {
		return prepared{seq: b.seq, err: err}
	}
	gen, err := fam.Gen(sim.WorkloadSeed(d.cfg.Seed, int(b.seq)))
	if err != nil {
		return prepared{seq: b.seq, err: err}
	}
	rng := rand.New(rand.NewSource(sim.ArrivalSeed(d.cfg.Seed, int(b.seq))))
	n := d.cfg.Topology.N()
	reqs := make([]arrival, b.count)
	for i := range reqs {
		r := b.router
		if r < 0 {
			r = rng.Intn(n)
		}
		reqs[i] = arrival{
			router:  topology.NodeID(r),
			content: gen.Next(),
			gap:     rng.ExpFloat64() * b.params.MeanInterarrivalMs,
		}
	}
	return prepared{seq: b.seq, reqs: reqs}
}

// engineLoop is the single simulation goroutine: it reorders prepared
// batches back into admission order (workers finish out of order) and
// replays each on the engine. The DES engine is single-threaded by
// design, so all network and coordinator state is confined here.
func (d *Daemon) engineLoop() {
	defer close(d.engineDone)
	next := uint64(1)
	pending := make(map[uint64]prepared)
	runReady := func() {
		for {
			p, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			next++
			d.runBatch(p)
		}
	}
	for pr := range d.readyq {
		pending[pr.seq] = pr
		runReady()
	}
	// The ready queue closed with every admitted batch emitted, so the
	// ordering buffer is contiguous from next.
	runReady()
	d.finish()
}

// runBatch schedules one batch's arrivals and runs the engine to
// quiescence, so every request — including its PIT state — completes
// before the next batch starts.
func (d *Daemon) runBatch(p prepared) {
	if p.err != nil {
		d.fail(fmt.Errorf("daemon: preparing batch %d: %w", p.seq, p.err))
		return
	}
	d.mu.Lock()
	failed := d.state == StateFailed
	d.mu.Unlock()
	if failed {
		return // keep consuming so the pool never wedges on a full queue
	}
	if d.progress != nil {
		d.progress.SimStarted()
	}
	start := d.eng.Now()
	t := start
	var schedErr error
	for _, a := range p.reqs {
		t += a.gap
		a := a
		if err := d.eng.At(t, func() {
			if err := d.net.Request(a.router, a.content, d.onComplete); err != nil && schedErr == nil {
				schedErr = err
			}
		}); err != nil {
			schedErr = err
			break
		}
	}
	d.eng.Run()
	if d.progress != nil {
		d.progress.SimFinished(int64(len(p.reqs)))
	}
	if schedErr != nil {
		d.fail(fmt.Errorf("daemon: batch %d: %w", p.seq, schedErr))
		return
	}

	d.tot.mu.Lock()
	d.tot.processedBatches++
	d.tot.completed = d.eCompleted
	d.tot.failed = d.eFailed
	d.tot.local = d.eLocal
	d.tot.peer = d.ePeer
	d.tot.origin = d.eOrigin
	d.tot.latencySum = d.eLatencySum
	d.tot.hopsSum = d.eHopsSum
	d.tot.simTime = d.eng.Now()
	// The engine's own gauges are engine-goroutine state; fold them into
	// the snapshot-visible accounting here, at batch granularity, so the
	// HTTP plane never reads the engine directly.
	d.tot.events = d.eng.Processed()
	d.tot.pendingPeak = d.eng.PendingPeak()
	d.tot.mu.Unlock()

	if d.cfg.EpochRequests > 0 && d.sinceReplan >= d.cfg.EpochRequests {
		d.replan()
	}
	if d.cfg.TimeRatio > 0 {
		advance := d.eng.Now() - start
		time.Sleep(time.Duration(advance / d.cfg.TimeRatio * float64(time.Millisecond)))
	}
}

// onComplete tallies one finished request. Runs on the engine
// goroutine inside Run, so it touches only engine-side state.
func (d *Daemon) onComplete(r ccn.RequestResult) {
	d.sinceReplan++
	if r.Failed {
		d.eFailed++
		return
	}
	d.eCompleted++
	d.counts[r.Content]++
	d.epochCounts[r.Router][r.Content]++
	switch r.ServedBy {
	case ccn.ServedLocal:
		d.eLocal++
	case ccn.ServedPeer:
		d.ePeer++
	case ccn.ServedOrigin:
		d.eOrigin++
	}
	d.eLatencySum += r.Latency()
	d.eHopsSum += int64(r.Hops)
}

// replan runs one coordination epoch from the popularity each router
// observed since the last one, installs the new placement into the
// live stores and directory, checkpoints, and appends the epoch's
// telemetry record — measured protocol cost next to the model's
// w*n*x bound — to the timeline.
func (d *Daemon) replan() {
	wallStart := time.Now()
	epochRequests := d.sinceReplan
	reports := make([]coord.Report, len(d.routers))
	var reported, maxReport int64
	for i, r := range d.routers {
		reports[i] = coord.Report{Router: r, Counts: d.epochCounts[i]}
		card := int64(len(d.epochCounts[i]))
		reported += card
		if card > maxReport {
			maxReport = card
		}
	}
	localSlots := d.cfg.Capacity - d.cfg.Coordinated
	placement, cost, err := d.coordinator.RunEpoch(reports, localSlots, d.cfg.Coordinated)
	if err != nil {
		d.fail(fmt.Errorf("daemon: re-planning epoch %d: %w", d.epoch+1, err))
		return
	}
	// Churn must be measured before install: Adopt mutates the live
	// assignment in place (the data plane holds its pointer).
	churn := coord.Churn(d.coordAsg, placement.Assignment)
	if err := d.install(placement); err != nil {
		d.fail(fmt.Errorf("daemon: installing epoch %d placement: %w", d.epoch+1, err))
		return
	}
	d.epoch++
	d.sinceReplan = 0
	for i := range d.epochCounts {
		d.epochCounts[i] = make(map[catalog.ID]int64)
	}
	d.tot.mu.Lock()
	d.tot.epoch = d.epoch
	d.tot.replans++
	d.tot.coordMessages += cost.Total()
	d.tot.mu.Unlock()

	// The model budgets one state report up and one directive down per
	// coordinated slot per router: 2*n*x messages, w*n*x latency-weighted
	// cost (the paper's W(x) without the fixed term).
	n := int64(len(d.routers))
	w := d.coordinator.UnitCost()
	d.timeline.Append(timeline.EpochRecord{
		Epoch:            d.epoch,
		SimTimeMs:        d.eng.Now(),
		Requests:         epochRequests,
		Messages:         cost.Total(),
		MessagesUp:       cost.MessagesUp,
		MessagesDown:     cost.MessagesDown,
		BoundMessages:    2 * n * d.cfg.Coordinated,
		UnitCostMs:       w,
		BoundCostMs:      w * float64(n) * float64(d.cfg.Coordinated),
		ConvergenceMs:    cost.Convergence,
		LocalSlots:       localSlots,
		CoordSlots:       d.cfg.Coordinated,
		Level:            float64(d.cfg.Coordinated) / float64(d.cfg.Capacity),
		Churn:            churn,
		ReportedContents: reported,
		MaxReport:        maxReport,
		WallMs:           float64(time.Since(wallStart)) / float64(time.Millisecond),
	})

	if d.cfg.CheckpointPath != "" {
		if err := d.checkpoint(); err != nil {
			d.fail(err)
		}
	}
}

// Timeline returns the daemon's telemetry timeline ring. Safe for
// concurrent use; the HTTP plane and Prometheus exposition read it
// while the engine appends.
func (d *Daemon) Timeline() *timeline.Ring { return d.timeline }

// install makes a placement live: the directory is mutated in place
// (the data plane holds the assignment pointer) and every router's
// static store parts are rebuilt, mirroring the repair path.
func (d *Daemon) install(p *coord.Placement) error {
	if err := d.coordAsg.Adopt(p.Assignment); err != nil {
		return err
	}
	d.localSet = append([]catalog.ID(nil), p.LocalSet...)
	for i, part := range d.parts {
		local, err := cache.NewStatic(d.localSet)
		if err != nil {
			return err
		}
		coordStore, err := cache.NewStatic(d.coordAsg.Contents(topology.NodeID(i)))
		if err != nil {
			return err
		}
		part.Local, part.Coordinated = local, coordStore
	}
	return nil
}

// checkpoint persists the coordinator state atomically. The write is
// byte-deterministic, so a restore followed by an idle drain rewrites
// the identical file — the restart-equivalence property the lifecycle
// tests and CI assert.
func (d *Daemon) checkpoint() error {
	cp := &coord.Checkpoint{
		Epoch:     d.epoch,
		Placement: &coord.Placement{LocalSet: d.localSet, Assignment: d.coordAsg},
		Stats:     d.counts,
	}
	if err := coord.SaveCheckpoint(d.cfg.CheckpointPath, cp); err != nil {
		return fmt.Errorf("daemon: checkpointing: %w", err)
	}
	d.tot.mu.Lock()
	d.tot.checkpoints++
	d.tot.mu.Unlock()
	return nil
}

// finish runs after the last batch: final checkpoint, terminal state.
func (d *Daemon) finish() {
	d.mu.Lock()
	failed := d.state == StateFailed
	d.mu.Unlock()
	if !failed && d.cfg.CheckpointPath != "" {
		if err := d.checkpoint(); err != nil {
			d.fail(fmt.Errorf("daemon: final %w", err))
			return
		}
	}
	if failed {
		return
	}
	d.mu.Lock()
	d.state = StateStopped
	reason := d.drainReason
	d.mu.Unlock()
	if d.health != nil {
		msg := "drained"
		if reason != "" {
			msg = "drained (" + reason + ")"
		}
		d.health.Draining(msg)
	}
}
