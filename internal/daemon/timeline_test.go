package daemon

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ccncoord/internal/obs"
	"ccncoord/internal/timeline"
)

// TestTimelineRecordsReplans pins the observatory's core claim: every
// re-plan appends one epoch record, and the measured protocol message
// count never exceeds the model's 2*n*x budget (nor the measured
// latency-weighted cost the w*n*x bound).
func TestTimelineRecordsReplans(t *testing.T) {
	cfg := testConfig(t) // Ring(4,10), c=20, x=10, EpochRequests=300
	d := mustStart(t, cfg, nil)
	submit(t, d, 400, -1)
	submit(t, d, 400, 2)
	if err := d.Drain(""); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	snap := d.Snapshot()
	if snap.Coordination.Replans < 1 {
		t.Fatalf("replans = %d, want at least one for 800 requests at EpochRequests=300", snap.Coordination.Replans)
	}
	tl := d.Timeline().Snapshot()
	if int64(len(tl.Records)) != snap.Coordination.Replans {
		t.Fatalf("timeline records = %d, want one per re-plan (%d)", len(tl.Records), snap.Coordination.Replans)
	}
	if tl.Messages != snap.Coordination.Messages {
		t.Errorf("timeline message sum = %d, stats coordination messages = %d", tl.Messages, snap.Coordination.Messages)
	}

	n := int64(cfg.Topology.N())
	var requests int64
	for i, rec := range tl.Records {
		if rec.Epoch != int64(i)+1 {
			t.Errorf("record %d epoch = %d, want %d", i, rec.Epoch, i+1)
		}
		if rec.Messages <= 0 {
			t.Errorf("epoch %d measured zero messages", rec.Epoch)
		}
		// The pinned model-bound invariant.
		if rec.Messages > rec.BoundMessages {
			t.Errorf("epoch %d measured %d messages, above the model bound %d", rec.Epoch, rec.Messages, rec.BoundMessages)
		}
		if want := 2 * n * cfg.Coordinated; rec.BoundMessages != want {
			t.Errorf("epoch %d bound = %d, want 2*n*x = %d", rec.Epoch, rec.BoundMessages, want)
		}
		if rec.MessagesUp+rec.MessagesDown != rec.Messages {
			t.Errorf("epoch %d direction split %d+%d != total %d", rec.Epoch, rec.MessagesUp, rec.MessagesDown, rec.Messages)
		}
		if want := rec.UnitCostMs * float64(n) * float64(cfg.Coordinated); rec.BoundCostMs != want {
			t.Errorf("epoch %d bound cost = %g, want w*n*x = %g", rec.Epoch, rec.BoundCostMs, want)
		}
		if measured := rec.UnitCostMs * float64(rec.Messages) / 2; measured > rec.BoundCostMs {
			t.Errorf("epoch %d measured cost %g above bound %g", rec.Epoch, measured, rec.BoundCostMs)
		}
		if rec.LocalSlots != cfg.Capacity-cfg.Coordinated || rec.CoordSlots != cfg.Coordinated {
			t.Errorf("epoch %d slot split = (%d, %d), want (%d, %d)",
				rec.Epoch, rec.LocalSlots, rec.CoordSlots, cfg.Capacity-cfg.Coordinated, cfg.Coordinated)
		}
		if want := float64(cfg.Coordinated) / float64(cfg.Capacity); rec.Level != want {
			t.Errorf("epoch %d level = %g, want %g", rec.Epoch, rec.Level, want)
		}
		if rec.Requests <= 0 || rec.ReportedContents <= 0 {
			t.Errorf("epoch %d requests/reported = (%d, %d), want both positive", rec.Epoch, rec.Requests, rec.ReportedContents)
		}
		if rec.MaxReport > rec.ReportedContents || rec.MaxReport <= 0 {
			t.Errorf("epoch %d max report %d outside (0, %d]", rec.Epoch, rec.MaxReport, rec.ReportedContents)
		}
		if rec.Churn < 0 || rec.Churn > n*cfg.Coordinated {
			t.Errorf("epoch %d churn %d outside [0, n*x]", rec.Epoch, rec.Churn)
		}
		requests += rec.Requests
	}
	if requests > snap.Totals.RequestsAdmitted {
		t.Errorf("timeline accounts %d epoch requests, more than the %d admitted", requests, snap.Totals.RequestsAdmitted)
	}

	// The /stats summary and the final manifest describe the same ring.
	if snap.Timeline.Records != len(tl.Records) || snap.Timeline.Total != tl.Total ||
		snap.Timeline.Dropped != tl.Dropped || snap.Timeline.Capacity != tl.Capacity {
		t.Errorf("stats timeline summary %+v diverges from ring %+v", snap.Timeline, tl)
	}
	if m := d.Manifest(); !reflect.DeepEqual(m.Timeline, tl.Records) {
		t.Errorf("manifest timeline diverges from the ring:\nmanifest: %+v\nring:     %+v", m.Timeline, tl.Records)
	}
}

// TestTimelineRingEvictsUnderSmallCapacity bounds daemon memory: a
// capacity-1 timeline retains only the newest epoch but keeps counting.
func TestTimelineRingEvictsUnderSmallCapacity(t *testing.T) {
	cfg := testConfig(t)
	cfg.TimelineCapacity = 1
	d := mustStart(t, cfg, nil)
	submit(t, d, 400, -1)
	submit(t, d, 400, -1)
	if err := d.Drain(""); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	snap := d.Snapshot()
	if snap.Coordination.Replans < 2 {
		t.Skipf("only %d replans; eviction needs at least 2", snap.Coordination.Replans)
	}
	tl := d.Timeline().Snapshot()
	if len(tl.Records) != 1 || tl.Capacity != 1 {
		t.Fatalf("capacity-1 ring holds %d records (capacity %d)", len(tl.Records), tl.Capacity)
	}
	if int64(tl.Total) != snap.Coordination.Replans || int64(tl.Dropped) != snap.Coordination.Replans-1 {
		t.Errorf("ring counters = (total %d, dropped %d), want (%d, %d)",
			tl.Total, tl.Dropped, snap.Coordination.Replans, snap.Coordination.Replans-1)
	}
	if tl.Records[0].Epoch != snap.Coordination.Epoch {
		t.Errorf("retained epoch = %d, want the latest (%d)", tl.Records[0].Epoch, snap.Coordination.Epoch)
	}
	if tl.Messages != snap.Coordination.Messages {
		t.Errorf("eviction lost message accounting: ring sum %d, stats %d", tl.Messages, snap.Coordination.Messages)
	}
}

// TestEngineGaugesMatchManifest checks the /stats engine section is
// populated from the folded engine gauges and survives into the
// manifest unchanged.
func TestEngineGaugesMatchManifest(t *testing.T) {
	d := mustStart(t, testConfig(t), nil)
	submit(t, d, 400, -1)
	if err := d.Drain(""); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	snap := d.Snapshot()
	if snap.Engine.EventsProcessed == 0 {
		t.Error("engine events_processed = 0 after 400 simulated requests")
	}
	if snap.Engine.PendingPeak <= 0 {
		t.Errorf("engine pending_peak = %d, want positive", snap.Engine.PendingPeak)
	}
	if snap.Engine.Shards != 1 || snap.Engine.CrossShardEvents != 0 {
		t.Errorf("daemon hosts the serial engine, got shards=%d cross=%d", snap.Engine.Shards, snap.Engine.CrossShardEvents)
	}
	if m := d.Manifest(); !reflect.DeepEqual(m.Final.Engine, snap.Engine) {
		t.Errorf("manifest engine %+v diverges from stats %+v", m.Final.Engine, snap.Engine)
	}
}

// TestTimelineHTTPLifecycle drives GET /timeline through the daemon's
// health states: 503 with the reason while initializing, serving while
// running, still readable while draining.
func TestTimelineHTTPLifecycle(t *testing.T) {
	cfg := testConfig(t)
	health := obs.NewHealth()
	d, err := New(cfg, health, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mux := obs.NewMux(nil, health)
	d.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/timeline"); code != http.StatusServiceUnavailable || !strings.Contains(body, "initializing") {
		t.Errorf("pre-Start /timeline = (%d, %q), want 503 initializing", code, body)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if code, body := get("/timeline"); code != http.StatusOK || body != "[]\n" {
		t.Errorf("idle /timeline = (%d, %q), want 200 empty array", code, body)
	}
	submit(t, d, 400, -1)
	if err := d.Drain("test"); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Drained: health is draining, the timeline must still serve.
	code, body := get("/timeline")
	if code != http.StatusOK {
		t.Fatalf("draining /timeline = %d, want 200", code)
	}
	var recs []timeline.EpochRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("decoding /timeline: %v", err)
	}
	replans := d.Snapshot().Coordination.Replans
	if int64(len(recs)) != replans {
		t.Errorf("/timeline served %d records, stats counted %d replans", len(recs), replans)
	}
	if len(recs) == 0 {
		t.Fatal("no records to exercise ?since")
	}
	last := recs[len(recs)-1].Epoch
	if code, body := get("/timeline?since=" + jsonInt(last-1)); code != http.StatusOK || !strings.Contains(body, `"epoch": `+jsonInt(last)) {
		t.Errorf("/timeline?since=%d = (%d, %q), want only epoch %d", last-1, code, body, last)
	}
	if code, body := get("/timeline?since=" + jsonInt(last)); code != http.StatusOK || body != "[]\n" {
		t.Errorf("/timeline?since=%d = (%d, %q), want empty array", last, code, body)
	}
	if code, _ := get("/timeline?since=junk"); code != http.StatusBadRequest {
		t.Errorf("/timeline?since=junk = %d, want 400", code)
	}
	resp, err := http.Post(srv.URL+"/timeline", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("POST /timeline: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /timeline = %d, want 405", resp.StatusCode)
	}
}

// TestTimelineFollowWakesOnReplan long-polls an idle daemon and then
// pushes enough load to trigger a re-plan; the poll must return the new
// record rather than time out.
func TestTimelineFollowWakesOnReplan(t *testing.T) {
	cfg := testConfig(t)
	d := mustStart(t, cfg, nil)
	mux := http.NewServeMux()
	d.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	type result struct {
		recs []timeline.EpochRecord
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/timeline?follow=1")
		if err != nil {
			done <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		var recs []timeline.EpochRecord
		err = json.NewDecoder(resp.Body).Decode(&recs)
		done <- result{recs, err}
	}()

	// Let the poll park, then drive a re-plan (>= EpochRequests).
	time.Sleep(50 * time.Millisecond)
	submit(t, d, 400, -1)
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("follow poll: %v", r.err)
		}
		if len(r.recs) == 0 {
			t.Fatal("follow poll returned before any record was appended")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("follow poll never woke on the re-plan")
	}
	if err := d.Drain(""); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// jsonInt renders an int64 the way the handlers' JSON does.
func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
