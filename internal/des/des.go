// Package des is a minimal deterministic discrete-event simulation
// engine: a virtual clock and a time-ordered event queue. Events
// scheduled for the same instant fire in scheduling order, which keeps
// simulation runs bit-for-bit reproducible.
package des

import (
	"fmt"
)

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // tie-breaker: FIFO within the same instant
	fn  func()
}

// eventHeap is a hand-rolled min-heap over (at, seq). It deliberately
// avoids container/heap: that interface boxes every pushed event into an
// `any`, allocating once per Schedule/At call, which dominated the
// simulator's allocation profile. Operating on the []event slice
// directly keeps scheduling allocation-free after the backing array has
// grown.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends e and restores the heap invariant.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the callback for GC
	q = q[:n]
	*h = q
	// Sift the displaced tail element down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

// Engine is a discrete-event scheduler. The zero value is ready to use
// with the clock at 0.
type Engine struct {
	now       float64
	seq       uint64
	queue     eventHeap
	processed uint64
	peak      int
}

// Now returns the current simulated time (milliseconds by convention in
// this repository, though the engine is unit-agnostic).
func (e *Engine) Now() float64 { return e.now }

// Processed returns how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return len(e.queue) }

// PendingPeak returns the largest pending-queue length observed — the
// run's event-queue high-water mark, a capacity signal the run
// manifest records.
func (e *Engine) PendingPeak() int { return e.peak }

// Schedule enqueues fn to run after the given non-negative delay.
func (e *Engine) Schedule(delay float64, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("des: negative delay %v", delay)
	}
	return e.At(e.now+delay, fn)
}

// At enqueues fn to run at the given absolute time, which must not be in
// the simulated past.
func (e *Engine) At(t float64, fn func()) error {
	if t < e.now {
		return fmt.Errorf("des: cannot schedule at %v, current time is %v", t, e.now)
	}
	if fn == nil {
		return fmt.Errorf("des: nil event callback")
	}
	e.seq++
	e.queue.push(event{at: t, seq: e.seq, fn: fn})
	if len(e.queue) > e.peak {
		e.peak = len(e.queue)
	}
	return nil
}

// Run fires events until the queue drains, advancing the clock.
func (e *Engine) Run() {
	for len(e.queue) > 0 {
		e.step()
	}
}

// RunUntil fires events with timestamps <= deadline, then sets the clock
// to the deadline (if it advanced that far).
func (e *Engine) RunUntil(deadline float64) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Step fires exactly one event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	e.step()
	return true
}

func (e *Engine) step() {
	ev := e.queue.pop()
	e.now = ev.at
	e.processed++
	ev.fn()
}
