// Package des is a minimal deterministic discrete-event simulation
// engine: a virtual clock and a time-ordered event queue. Events
// scheduled for the same instant fire in scheduling order, which keeps
// simulation runs bit-for-bit reproducible.
package des

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // tie-breaker: FIFO within the same instant
	fn  func()
}

// eventHeap is a min-heap over (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler. The zero value is ready to use
// with the clock at 0.
type Engine struct {
	now       float64
	seq       uint64
	queue     eventHeap
	processed uint64
}

// Now returns the current simulated time (milliseconds by convention in
// this repository, though the engine is unit-agnostic).
func (e *Engine) Now() float64 { return e.now }

// Processed returns how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule enqueues fn to run after the given non-negative delay.
func (e *Engine) Schedule(delay float64, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("des: negative delay %v", delay)
	}
	return e.At(e.now+delay, fn)
}

// At enqueues fn to run at the given absolute time, which must not be in
// the simulated past.
func (e *Engine) At(t float64, fn func()) error {
	if t < e.now {
		return fmt.Errorf("des: cannot schedule at %v, current time is %v", t, e.now)
	}
	if fn == nil {
		return fmt.Errorf("des: nil event callback")
	}
	e.seq++
	heap.Push(&e.queue, event{at: t, seq: e.seq, fn: fn})
	return nil
}

// Run fires events until the queue drains, advancing the clock.
func (e *Engine) Run() {
	for e.queue.Len() > 0 {
		e.step()
	}
}

// RunUntil fires events with timestamps <= deadline, then sets the clock
// to the deadline (if it advanced that far).
func (e *Engine) RunUntil(deadline float64) {
	for e.queue.Len() > 0 && e.queue[0].at <= deadline {
		e.step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Step fires exactly one event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	e.step()
	return true
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	e.processed++
	ev.fn()
}
