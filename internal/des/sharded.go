package des

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Sharded is a conservative parallel discrete-event engine: P logical
// processes ("shards"), each with its own event heap, clock, and
// sequence counter, synchronized in bulk-synchronous windows. Each
// window the coordinator computes the global minimum next-event time T
// and every shard drains, in parallel, exactly the events with
// timestamp strictly below T + lookahead. The lookahead is the minimum
// latency of any cross-shard link, so an event sent across a shard
// boundary at time t ≥ T arrives at t + lookahead ≥ T + lookahead —
// never inside the window being executed — which makes the window safe
// without rollback (classic Chandy–Misra–Bryant reasoning).
//
// Cross-shard sends are buffered in per-destination outboxes and
// delivered at the window barrier, sorted by (at, source shard, source
// send-sequence) before being pushed into the destination heap. Because
// that order is a pure function of the event content — no wall-clock
// time, no goroutine scheduling — a Sharded run is deterministic: the
// same scenario and shard count always produce the same execution.
//
// Setup (At/Schedule before Run) and everything after Run returns are
// single-threaded; during Run each shard's state is touched only by its
// own worker goroutine, and the barrier establishes the happens-before
// edges between windows.
type Sharded struct {
	lookahead float64
	shards    []*Shard

	crossEvents uint64 // events delivered across shard boundaries
	barrierPeak int    // max total pending observed at window barriers

	// Telemetry. The virtual-time counters (windows, window span, the
	// cross-shard traffic matrix) are always on: they are O(1) per
	// window/delivery and deterministic. Wall-clock timing (per-shard
	// busy and barrier-wait) is gated behind EnableTelemetry because it
	// calls time.Now in the window hot path and is inherently
	// nondeterministic.
	telemetry bool
	windows   uint64     // bulk-synchronous windows executed
	firstT    float64    // virtual start time of the first window
	lastT     float64    // virtual start time of the latest window
	matrix    [][]uint64 // cross-shard deliveries, [src][dst]
}

// Shard is one logical process of a Sharded engine. Its methods are
// safe to call from the shard's own events during Run and from a single
// goroutine outside Run; they mirror Engine's scheduling API.
type Shard struct {
	id  int
	par *Sharded

	now       float64
	seq       uint64
	queue     eventHeap
	processed uint64
	peak      int

	sendSeq uint64
	out     [][]remoteEvent // indexed by destination shard
	inbox   []remoteEvent   // barrier scratch: merged incoming events

	// Telemetry, written only by the shard's worker inside runWindow
	// (the barrier's happens-before lets the coordinator read it).
	windows    uint64 // active windows: windows in which this shard fired
	busyNs     int64  // cumulative wall time spent executing events
	lastBusyNs int64  // wall time of the latest window (barrier-wait math)

	waitNs int64 // cumulative wall time idle at barriers, coordinator-written

	_ [64]byte // pad out false sharing between shard structs
}

// remoteEvent is a cross-shard event in flight: ordered on delivery by
// (at, src, seq) so execution order is independent of goroutine timing.
type remoteEvent struct {
	at  float64
	src int32
	seq uint64
	fn  func()
}

// NewSharded builds a conservative parallel engine with the given shard
// count and lookahead. The lookahead must be positive (it is the window
// width beyond the global minimum next-event time); +Inf is allowed and
// collapses the run into a single window, which is correct only when no
// cross-shard sends occur or ordering across shards is immaterial.
// With shards == 1 the engine degenerates to a serial drain.
func NewSharded(shards int, lookahead float64) (*Sharded, error) {
	if shards < 1 {
		return nil, fmt.Errorf("des: shard count %d < 1", shards)
	}
	if shards > 1 && !(lookahead > 0) {
		return nil, fmt.Errorf("des: lookahead %v must be positive", lookahead)
	}
	s := &Sharded{lookahead: lookahead, shards: make([]*Shard, shards)}
	s.matrix = make([][]uint64, shards)
	for i := range s.shards {
		s.shards[i] = &Shard{id: i, par: s, out: make([][]remoteEvent, shards)}
		s.matrix[i] = make([]uint64, shards)
	}
	return s, nil
}

// EnableTelemetry turns on wall-clock shard timing (per-shard busy time
// and barrier-wait time) for the next Run. The deterministic counters —
// windows, window span, per-shard processed counts, the cross-shard
// traffic matrix — are collected regardless. Call before Run.
func (s *Sharded) EnableTelemetry() { s.telemetry = true }

// Shards returns the number of logical processes.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns the i-th logical process.
func (s *Sharded) Shard(i int) *Shard { return s.shards[i] }

// Lookahead returns the conservative window width.
func (s *Sharded) Lookahead() float64 { return s.lookahead }

// Now returns the maximum shard clock — after Run, the virtual time of
// the last event processed anywhere.
func (s *Sharded) Now() float64 {
	max := 0.0
	for _, sh := range s.shards {
		if sh.now > max {
			max = sh.now
		}
	}
	return max
}

// Processed returns the total number of events fired across all shards.
// For a given scenario this equals the serial engine's count: sharding
// changes where and when events execute, not which events exist.
func (s *Sharded) Processed() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.processed
	}
	return total
}

// Pending returns the total number of scheduled-but-unfired events
// across all shards (in-flight mailbox events are delivered at barriers
// and so are always in some heap between windows).
func (s *Sharded) Pending() int {
	total := 0
	for _, sh := range s.shards {
		total += len(sh.queue)
	}
	return total
}

// PendingPeak approximates the run's global queue high-water mark: the
// larger of the biggest aggregate depth observed at a window barrier
// and the biggest single-shard depth observed anywhere. It is a lower
// bound on the true instantaneous global peak (which no coordinator
// observes mid-window), but tracks the same capacity signal the serial
// engine's gauge does.
func (s *Sharded) PendingPeak() int {
	peak := s.barrierPeak
	for _, sh := range s.shards {
		if sh.peak > peak {
			peak = sh.peak
		}
	}
	return peak
}

// CrossShardEvents returns how many events were delivered across shard
// boundaries — the numerator of the cross-shard event fraction reported
// by the scale benchmarks.
func (s *Sharded) CrossShardEvents() uint64 { return s.crossEvents }

// ShardStats is one shard's per-run telemetry.
type ShardStats struct {
	Shard       int    `json:"shard"`
	Processed   uint64 `json:"processed"`
	PendingPeak int    `json:"pending_peak"`
	// ActiveWindows counts windows in which this shard fired at least
	// one event; Windows minus this is how often the shard sat idle.
	ActiveWindows uint64 `json:"active_windows"`
	// BusyWallMs and BarrierWaitWallMs are wall-clock (collected only
	// under EnableTelemetry, nondeterministic; ccnbench -diff ignores
	// *_wall_ms leaves): time spent executing events vs idling at window
	// barriers while slower shards finished.
	BusyWallMs        float64 `json:"busy_wall_ms"`
	BarrierWaitWallMs float64 `json:"barrier_wait_wall_ms"`
}

// ShardedStats is the engine's per-run telemetry: window accounting,
// per-shard load balance, and the cross-shard traffic matrix.
type ShardedStats struct {
	Shards int `json:"shards"`
	// Lookahead is the conservative window width; -1 when infinite
	// (JSON cannot carry +Inf).
	Lookahead float64 `json:"lookahead"`
	// Windows counts bulk-synchronous windows executed (0 for the
	// serial single-shard drain, which has no windows).
	Windows uint64 `json:"windows"`
	// FirstWindowAt/LastWindowAt are the virtual start times of the
	// first and latest windows; MeanWindowSpanMs is the mean
	// virtual-time advance between consecutive window starts.
	FirstWindowAt    float64      `json:"first_window_at"`
	LastWindowAt     float64      `json:"last_window_at"`
	MeanWindowSpanMs float64      `json:"mean_window_span_ms"`
	CrossShardEvents uint64       `json:"cross_shard_events"`
	PerShard         []ShardStats `json:"per_shard"`
	// CrossShardMatrix[src][dst] counts events delivered from shard src
	// to shard dst; omitted when no cross-shard traffic occurred.
	CrossShardMatrix [][]uint64 `json:"cross_shard_matrix,omitempty"`
}

// Stats assembles the run's telemetry. Call after Run returns (or
// before it starts); the engine is single-threaded then. Everything
// except the two wall-clock fields is deterministic for a given
// scenario and shard count.
func (s *Sharded) Stats() ShardedStats {
	st := ShardedStats{
		Shards:           len(s.shards),
		Lookahead:        s.lookahead,
		Windows:          s.windows,
		FirstWindowAt:    s.firstT,
		LastWindowAt:     s.lastT,
		CrossShardEvents: s.crossEvents,
		PerShard:         make([]ShardStats, len(s.shards)),
	}
	if math.IsInf(st.Lookahead, 0) {
		st.Lookahead = -1
	}
	if s.windows > 1 {
		st.MeanWindowSpanMs = (s.lastT - s.firstT) / float64(s.windows-1)
	}
	for i, sh := range s.shards {
		st.PerShard[i] = ShardStats{
			Shard:             i,
			Processed:         sh.processed,
			PendingPeak:       sh.peak,
			ActiveWindows:     sh.windows,
			BusyWallMs:        float64(sh.busyNs) / 1e6,
			BarrierWaitWallMs: float64(sh.waitNs) / 1e6,
		}
	}
	if s.crossEvents > 0 {
		st.CrossShardMatrix = make([][]uint64, len(s.matrix))
		for i, row := range s.matrix {
			st.CrossShardMatrix[i] = append([]uint64(nil), row...)
		}
	}
	return st
}

// ID returns the shard's index in [0, Shards()).
func (sh *Shard) ID() int { return sh.id }

// Now returns the shard's local clock.
func (sh *Shard) Now() float64 { return sh.now }

// Processed returns how many events this shard has fired.
func (sh *Shard) Processed() uint64 { return sh.processed }

// Pending returns this shard's queued event count.
func (sh *Shard) Pending() int { return len(sh.queue) }

// At enqueues fn on this shard at absolute time t, which must not be in
// the shard's past.
func (sh *Shard) At(t float64, fn func()) error {
	if t < sh.now {
		return fmt.Errorf("des: shard %d cannot schedule at %v, current time is %v", sh.id, t, sh.now)
	}
	if fn == nil {
		return fmt.Errorf("des: nil event callback")
	}
	sh.seq++
	sh.queue.push(event{at: t, seq: sh.seq, fn: fn})
	if len(sh.queue) > sh.peak {
		sh.peak = len(sh.queue)
	}
	return nil
}

// Schedule enqueues fn on this shard after the given non-negative delay.
func (sh *Shard) Schedule(delay float64, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("des: negative delay %v", delay)
	}
	return sh.At(sh.now+delay, fn)
}

// ScheduleTo enqueues fn on shard dst after the given delay. Local
// sends (dst == this shard) behave exactly like Schedule. Cross-shard
// sends must respect the conservative contract delay ≥ lookahead —
// the engine's safety argument depends on it — and are buffered in the
// sender's outbox for deterministic delivery at the next barrier.
func (sh *Shard) ScheduleTo(dst int, delay float64, fn func()) error {
	if dst == sh.id {
		return sh.Schedule(delay, fn)
	}
	if dst < 0 || dst >= len(sh.par.shards) {
		return fmt.Errorf("des: shard %d out of range [0,%d)", dst, len(sh.par.shards))
	}
	if delay < sh.par.lookahead {
		return fmt.Errorf("des: cross-shard delay %v below lookahead %v violates the conservative contract", delay, sh.par.lookahead)
	}
	if fn == nil {
		return fmt.Errorf("des: nil event callback")
	}
	sh.sendSeq++
	sh.out[dst] = append(sh.out[dst], remoteEvent{at: sh.now + delay, src: int32(sh.id), seq: sh.sendSeq, fn: fn})
	return nil
}

// Run fires events until every heap and mailbox drains. With one shard
// it is a serial drain; otherwise it loops bulk-synchronous windows:
// pick the global minimum next-event time T, let every shard execute
// events with at < T+lookahead in parallel, then deliver outboxes in
// deterministic (at, src, seq) order at the barrier.
func (s *Sharded) Run() {
	if len(s.shards) == 1 {
		sh := s.shards[0]
		for len(sh.queue) > 0 {
			ev := sh.queue.pop()
			sh.now = ev.at
			sh.processed++
			ev.fn()
		}
		return
	}

	s.observeBarrierDepth()

	// Persistent workers: one per shard, woken once per window. The
	// channel send and WaitGroup wait carry the happens-before edges
	// between the coordinator and each worker.
	var wg sync.WaitGroup
	wake := make([]chan float64, len(s.shards))
	for i, sh := range s.shards {
		wake[i] = make(chan float64, 1)
		go func(sh *Shard, c <-chan float64) {
			for bound := range c {
				sh.runWindow(bound)
				wg.Done()
			}
		}(sh, wake[i])
	}
	defer func() {
		for _, c := range wake {
			close(c)
		}
	}()

	for {
		t := math.Inf(1)
		for _, sh := range s.shards {
			if len(sh.queue) > 0 && sh.queue[0].at < t {
				t = sh.queue[0].at
			}
		}
		if math.IsInf(t, 1) {
			return
		}
		if s.windows == 0 {
			s.firstT = t
		}
		s.windows++
		s.lastT = t
		var w0 time.Time
		if s.telemetry {
			w0 = time.Now()
		}
		bound := t + s.lookahead
		wg.Add(len(s.shards))
		for i := range wake {
			wake[i] <- bound
		}
		wg.Wait()
		if s.telemetry {
			// The window's wall time is set by its slowest shard; the
			// rest idled at the barrier for the difference. wg.Wait
			// established the happens-before edge that makes the
			// worker-written lastBusyNs visible here.
			wall := time.Since(w0).Nanoseconds()
			for _, sh := range s.shards {
				if d := wall - sh.lastBusyNs; d > 0 {
					sh.waitNs += d
				}
				sh.lastBusyNs = 0
			}
		}
		s.deliver()
		s.observeBarrierDepth()
	}
}

// runWindow drains this shard's events strictly below bound. Events the
// window generates locally (including at times below bound) execute in
// the same window; cross-shard sends land in outboxes.
func (sh *Shard) runWindow(bound float64) {
	tel := sh.par.telemetry
	var t0 time.Time
	if tel {
		t0 = time.Now()
	}
	fired := false
	for len(sh.queue) > 0 && sh.queue[0].at < bound {
		ev := sh.queue.pop()
		sh.now = ev.at
		sh.processed++
		fired = true
		ev.fn()
	}
	if fired {
		sh.windows++
	}
	if tel {
		busy := time.Since(t0).Nanoseconds()
		sh.busyNs += busy
		sh.lastBusyNs = busy
	}
}

// deliver moves every outbox event into its destination heap, sorted by
// (at, source shard, send sequence) so delivery order — and therefore
// the destination's tie-breaking sequence numbers — is a deterministic
// function of the event content alone.
func (s *Sharded) deliver() {
	for d, dst := range s.shards {
		dst.inbox = dst.inbox[:0]
		for _, src := range s.shards {
			if len(src.out[d]) > 0 {
				s.matrix[src.id][d] += uint64(len(src.out[d]))
				dst.inbox = append(dst.inbox, src.out[d]...)
				src.out[d] = src.out[d][:0]
			}
		}
		if len(dst.inbox) == 0 {
			continue
		}
		sort.Slice(dst.inbox, func(i, j int) bool {
			a, b := dst.inbox[i], dst.inbox[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
		for i := range dst.inbox {
			re := &dst.inbox[i]
			if re.at < dst.now {
				panic(fmt.Sprintf("des: conservative violation: event at %v delivered to shard %d at local time %v", re.at, d, dst.now))
			}
			dst.seq++
			dst.queue.push(event{at: re.at, seq: dst.seq, fn: re.fn})
			re.fn = nil // release for GC
		}
		if len(dst.queue) > dst.peak {
			dst.peak = len(dst.queue)
		}
		s.crossEvents += uint64(len(dst.inbox))
	}
}

// observeBarrierDepth samples the aggregate pending depth for the
// PendingPeak gauge; called at Run start and after every barrier.
func (s *Sharded) observeBarrierDepth() {
	if total := s.Pending(); total > s.barrierPeak {
		s.barrierPeak = total
	}
}
