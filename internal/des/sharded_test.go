package des

import (
	"fmt"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

// ringTrace runs a deterministic token cascade on a ring of nodes
// mapped onto the given engine: each event at node i appends (node,
// time) to that node's log and schedules the next event at node i+1
// after that hop's latency. Per-node logs are totally ordered by
// virtual time, so they must be identical on every engine that
// respects timestamps — serial or sharded, any shard count.
type ringTrace struct {
	logs [][]float64
}

const ringNodes = 16

// ringLatency is the hop latency leaving node i: distinct per hop, all
// at least 1.0 so a lookahead of 1.0 satisfies the conservative
// contract for any partition of the ring.
func ringLatency(i int) float64 { return 1.0 + float64(i)*0.125 }

func (rt *ringTrace) runSerial(tokens int) {
	rt.logs = make([][]float64, ringNodes)
	var e Engine
	var visit func(node int, hops int) func()
	visit = func(node, hops int) func() {
		return func() {
			rt.logs[node] = append(rt.logs[node], e.Now())
			if hops == 0 {
				return
			}
			next := (node + 1) % ringNodes
			if err := e.Schedule(ringLatency(node), visit(next, hops-1)); err != nil {
				panic(err)
			}
		}
	}
	for tok := 0; tok < tokens; tok++ {
		start := tok % ringNodes
		if err := e.At(float64(tok)*0.375, visit(start, 40)); err != nil {
			panic(err)
		}
	}
	e.Run()
}

func (rt *ringTrace) runSharded(shards, tokens int) *Sharded {
	rt.logs = make([][]float64, ringNodes)
	s, err := NewSharded(shards, 1.0)
	if err != nil {
		panic(err)
	}
	shardOf := func(node int) int { return node * shards / ringNodes }
	var visit func(node int, hops int) func()
	visit = func(node, hops int) func() {
		return func() {
			sh := s.Shard(shardOf(node))
			rt.logs[node] = append(rt.logs[node], sh.Now())
			if hops == 0 {
				return
			}
			next := (node + 1) % ringNodes
			if err := sh.ScheduleTo(shardOf(next), ringLatency(node), visit(next, hops-1)); err != nil {
				panic(err)
			}
		}
	}
	for tok := 0; tok < tokens; tok++ {
		start := tok % ringNodes
		if err := s.Shard(shardOf(start)).At(float64(tok)*0.375, visit(start, 40)); err != nil {
			panic(err)
		}
	}
	s.Run()
	return s
}

// TestShardedMatchesSerial pins that per-node event timelines are
// identical between the serial engine and sharded runs at several
// shard counts: sharding changes where events execute, not what the
// simulation computes.
func TestShardedMatchesSerial(t *testing.T) {
	const tokens = 24
	var serial ringTrace
	serial.runSerial(tokens)
	for _, shards := range []int{1, 2, 4, 8} {
		var sharded ringTrace
		s := sharded.runSharded(shards, tokens)
		if !reflect.DeepEqual(serial.logs, sharded.logs) {
			t.Errorf("shards=%d: per-node timelines diverge from serial", shards)
		}
		if s.Pending() != 0 {
			t.Errorf("shards=%d: %d events still pending after Run", shards, s.Pending())
		}
	}
}

// TestShardedDeterminism pins that two identical sharded runs produce
// identical traces and identical gauge values — execution order is a
// pure function of the workload, not goroutine scheduling.
func TestShardedDeterminism(t *testing.T) {
	const tokens = 24
	var a, b ringTrace
	sa := a.runSharded(4, tokens)
	sb := b.runSharded(4, tokens)
	if !reflect.DeepEqual(a.logs, b.logs) {
		t.Error("two identical 4-shard runs produced different traces")
	}
	if sa.Processed() != sb.Processed() || sa.PendingPeak() != sb.PendingPeak() || sa.CrossShardEvents() != sb.CrossShardEvents() {
		t.Errorf("gauges diverge across identical runs: (%d,%d,%d) vs (%d,%d,%d)",
			sa.Processed(), sa.PendingPeak(), sa.CrossShardEvents(),
			sb.Processed(), sb.PendingPeak(), sb.CrossShardEvents())
	}
}

// TestShardedGauges is the accounting regression for sharding:
// Processed and Pending aggregate across shards and match the serial
// engine's totals for the same workload, so the manifest's engine
// gauges stay meaningful whatever the shard count.
func TestShardedGauges(t *testing.T) {
	const tokens = 24
	// Every token fires 41 events (the seed visit plus 40 hops), on the
	// serial engine and on every shard count alike.
	wantProcessed := uint64(tokens * 41)

	for _, shards := range []int{2, 4} {
		var tr ringTrace
		s := tr.runSharded(shards, tokens)
		if got := s.Processed(); got != wantProcessed {
			t.Errorf("shards=%d: Processed() = %d, want %d (same event set as serial)", shards, got, wantProcessed)
		}
		if got := s.Pending(); got != 0 {
			t.Errorf("shards=%d: Pending() = %d after drain, want 0", shards, got)
		}
		if s.PendingPeak() <= 0 {
			t.Errorf("shards=%d: PendingPeak() = %d, want > 0", shards, s.PendingPeak())
		}
		if s.CrossShardEvents() == 0 {
			t.Errorf("shards=%d: ring workload crossed no shard boundary", shards)
		}
		var sumShard uint64
		for i := 0; i < s.Shards(); i++ {
			sumShard += s.Shard(i).Processed()
		}
		if sumShard != s.Processed() {
			t.Errorf("shards=%d: per-shard processed sums to %d, aggregate says %d", shards, sumShard, s.Processed())
		}
	}
}

func TestShardedErrors(t *testing.T) {
	if _, err := NewSharded(0, 1); err == nil {
		t.Error("shard count 0 should fail")
	}
	if _, err := NewSharded(2, 0); err == nil {
		t.Error("zero lookahead with >1 shard should fail")
	}
	if _, err := NewSharded(2, math.NaN()); err == nil {
		t.Error("NaN lookahead should fail")
	}
	if _, err := NewSharded(1, 0); err != nil {
		t.Errorf("single shard needs no lookahead: %v", err)
	}
	s, err := NewSharded(2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sh := s.Shard(0)
	noop := func() {}
	if err := sh.ScheduleTo(1, 0.5, noop); err == nil {
		t.Error("cross-shard delay below lookahead should fail")
	}
	if err := sh.ScheduleTo(2, 1.0, noop); err == nil {
		t.Error("out-of-range destination shard should fail")
	}
	if err := sh.ScheduleTo(1, 1.0, nil); err == nil {
		t.Error("nil cross-shard callback should fail")
	}
	if err := sh.Schedule(-1, noop); err == nil {
		t.Error("negative delay should fail")
	}
	if err := sh.At(-1, noop); err == nil {
		t.Error("scheduling in the shard's past should fail")
	}
	if err := sh.ScheduleTo(0, 0, noop); err != nil {
		t.Errorf("local zero-delay send should succeed: %v", err)
	}
	s.Run()
}

// TestShardedInfiniteLookahead: +Inf lookahead collapses the run into
// one window; with no cross-shard traffic that is still a correct
// drain.
func TestShardedInfiniteLookahead(t *testing.T) {
	s, err := NewSharded(2, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	for i := 0; i < 2; i++ {
		sh := s.Shard(i)
		for j := 0; j < 10; j++ {
			if err := sh.Schedule(float64(j), func() { fired.Add(1) }); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Run()
	if fired.Load() != 20 {
		t.Errorf("fired = %d, want 20", fired.Load())
	}
	if s.Now() != 9 {
		t.Errorf("Now() = %v, want 9", s.Now())
	}
}

// TestShardedSingleShardMatchesEngine: a 1-shard Sharded engine drains
// in exactly the serial engine's order.
func TestShardedSingleShardMatchesEngine(t *testing.T) {
	var e Engine
	s, err := NewSharded(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var serialOrder, shardOrder []string
	for i := 0; i < 20; i++ {
		label := fmt.Sprintf("ev%d", i)
		at := float64((i * 7) % 13)
		if err := e.At(at, func() { serialOrder = append(serialOrder, label) }); err != nil {
			t.Fatal(err)
		}
		if err := s.Shard(0).At(at, func() { shardOrder = append(shardOrder, label) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	s.Run()
	if !reflect.DeepEqual(serialOrder, shardOrder) {
		t.Errorf("1-shard order %v != serial order %v", shardOrder, serialOrder)
	}
	if s.Processed() != e.Processed() {
		t.Errorf("processed %d != serial %d", s.Processed(), e.Processed())
	}
}
