package des

import (
	"sort"
	"testing"
	"testing/quick"
)

// TestRunUntilNoEvents pins the documented edge case: RunUntil advances
// the clock to the deadline even when it never fired an event.
func TestRunUntilNoEvents(t *testing.T) {
	var e Engine
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Errorf("clock = %v after RunUntil on empty queue, want 42", e.Now())
	}
	if e.Processed() != 0 {
		t.Errorf("processed = %d, want 0", e.Processed())
	}
	// A deadline in the past must not rewind the clock.
	e.RunUntil(10)
	if e.Now() != 42 {
		t.Errorf("clock = %v after past deadline, want 42", e.Now())
	}
}

// TestRunUntilDeadlineBeyondEvents: the clock lands on the deadline,
// not the last event, when the deadline lies past the final event.
func TestRunUntilDeadlineBeyondEvents(t *testing.T) {
	var e Engine
	fired := 0
	mustSchedule(t, &e, 3, func() { fired++ })
	e.RunUntil(7)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if e.Now() != 7 {
		t.Errorf("clock = %v, want 7 (deadline, not last event)", e.Now())
	}
}

// TestAtExactlyNow: scheduling at the current instant is legal — only
// the strict past is rejected — and the event fires at that instant.
func TestAtExactlyNow(t *testing.T) {
	var e Engine
	fired := false
	mustSchedule(t, &e, 5, func() {
		if err := e.At(e.Now(), func() { fired = true }); err != nil {
			t.Errorf("At(now) rejected: %v", err)
		}
	})
	e.Run()
	if !fired {
		t.Error("event scheduled at the current instant never fired")
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v, want 5", e.Now())
	}
}

// popOrder schedules one event per entry of ats (in slice order, so seq
// follows index) and returns the indices in firing order.
func popOrder(ats []float64) ([]int, bool) {
	var e Engine
	var order []int
	for i, at := range ats {
		i := i
		if err := e.At(at, func() { order = append(order, i) }); err != nil {
			return nil, false
		}
	}
	e.Run()
	return order, true
}

// referenceOrder is the specified firing order: stable sort by time,
// scheduling order within the same instant.
func referenceOrder(ats []float64) []int {
	ref := make([]int, len(ats))
	for i := range ref {
		ref[i] = i
	}
	sort.SliceStable(ref, func(a, b int) bool { return ats[ref[a]] < ats[ref[b]] })
	return ref
}

func ordersEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQuickHeapPopOrder property: for any multiset of times, the
// hand-rolled heap pops events in exact (at, seq) order — the order a
// stable sort of the schedule produces.
func TestQuickHeapPopOrder(t *testing.T) {
	f := func(raw []uint8) bool {
		// Map to a small value range so duplicate instants are common
		// and the seq tie-breaker is actually exercised.
		ats := make([]float64, len(raw))
		for i, r := range raw {
			ats[i] = float64(r % 17)
		}
		got, ok := popOrder(ats)
		return ok && ordersEqual(got, referenceOrder(ats))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// FuzzHeapPopOrder fuzzes the same invariant with arbitrary byte input:
// each byte becomes one event time, and the engine's firing order must
// match the stable-sorted reference exactly.
func FuzzHeapPopOrder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{5, 5, 5, 5})
	f.Add([]byte{9, 3, 9, 1, 3, 0, 255, 128, 9})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ats := make([]float64, len(raw))
		for i, r := range raw {
			ats[i] = float64(r % 13)
		}
		got, ok := popOrder(ats)
		if !ok {
			t.Fatal("scheduling failed for non-negative times")
		}
		want := referenceOrder(ats)
		if !ordersEqual(got, want) {
			t.Errorf("pop order %v != stable-sorted reference %v for times %v", got, want, ats)
		}
	})
}
