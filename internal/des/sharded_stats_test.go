package des

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// TestShardedStatsAccounting checks the telemetry snapshot agrees with
// the engine's own gauges: per-shard processed counts, the cross-shard
// matrix summing to the cross-event total, and window counters.
func TestShardedStatsAccounting(t *testing.T) {
	const tokens = 24
	var tr ringTrace
	s := tr.runSharded(4, tokens)
	st := s.Stats()

	if st.Shards != 4 || st.Lookahead != 1.0 {
		t.Errorf("stats header = (shards %d, lookahead %g), want (4, 1)", st.Shards, st.Lookahead)
	}
	if st.Windows == 0 {
		t.Error("multi-shard run executed zero windows")
	}
	if st.FirstWindowAt > st.LastWindowAt {
		t.Errorf("window span inverted: first %g > last %g", st.FirstWindowAt, st.LastWindowAt)
	}
	if st.Windows > 1 && st.MeanWindowSpanMs <= 0 {
		t.Errorf("mean window span = %g over %d windows, want positive", st.MeanWindowSpanMs, st.Windows)
	}
	if st.CrossShardEvents != s.CrossShardEvents() {
		t.Errorf("stats cross events %d != gauge %d", st.CrossShardEvents, s.CrossShardEvents())
	}
	var sumProcessed, sumMatrix uint64
	for i, ps := range st.PerShard {
		if ps.Shard != i {
			t.Errorf("per-shard entry %d labeled %d", i, ps.Shard)
		}
		if ps.Processed != s.Shard(i).Processed() {
			t.Errorf("shard %d processed %d in stats, %d on the shard", i, ps.Processed, s.Shard(i).Processed())
		}
		if ps.ActiveWindows == 0 || ps.ActiveWindows > st.Windows {
			t.Errorf("shard %d active windows %d outside (0, %d]", i, ps.ActiveWindows, st.Windows)
		}
		if ps.BusyWallMs != 0 || ps.BarrierWaitWallMs != 0 {
			t.Errorf("shard %d wall timing (%g, %g) collected without EnableTelemetry", i, ps.BusyWallMs, ps.BarrierWaitWallMs)
		}
		sumProcessed += ps.Processed
	}
	if sumProcessed != s.Processed() {
		t.Errorf("per-shard processed sums to %d, aggregate %d", sumProcessed, s.Processed())
	}
	if st.CrossShardMatrix == nil {
		t.Fatal("ring workload crossed shards but the matrix is omitted")
	}
	for i, row := range st.CrossShardMatrix {
		if row[i] != 0 {
			t.Errorf("matrix diagonal [%d][%d] = %d, local sends must not count", i, i, row[i])
		}
		for _, v := range row {
			sumMatrix += v
		}
	}
	if sumMatrix != st.CrossShardEvents {
		t.Errorf("matrix sums to %d, cross-event total %d", sumMatrix, st.CrossShardEvents)
	}
}

// TestShardedStatsDeterministic pins that two identical runs produce
// identical stats (wall-clock fields are zero with telemetry off, so
// the whole struct must match).
func TestShardedStatsDeterministic(t *testing.T) {
	var a, b ringTrace
	sa := a.runSharded(4, 24).Stats()
	sb := b.runSharded(4, 24).Stats()
	if !reflect.DeepEqual(sa, sb) {
		t.Errorf("stats diverge across identical runs:\na: %+v\nb: %+v", sa, sb)
	}
}

// TestShardedStatsTelemetryTiming turns wall-clock timing on and checks
// it is collected without disturbing the deterministic counters.
func TestShardedStatsTelemetryTiming(t *testing.T) {
	var plain, timed ringTrace
	ref := plain.runSharded(4, 24).Stats()

	timed.logs = make([][]float64, ringNodes)
	s, err := NewSharded(4, 1.0)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	s.EnableTelemetry()
	shardOf := func(node int) int { return node * 4 / ringNodes }
	var visit func(node, hops int) func()
	visit = func(node, hops int) func() {
		return func() {
			sh := s.Shard(shardOf(node))
			timed.logs[node] = append(timed.logs[node], sh.Now())
			if hops == 0 {
				return
			}
			next := (node + 1) % ringNodes
			if err := sh.ScheduleTo(shardOf(next), ringLatency(node), visit(next, hops-1)); err != nil {
				panic(err)
			}
		}
	}
	for tok := 0; tok < 24; tok++ {
		start := tok % ringNodes
		if err := s.Shard(shardOf(start)).At(float64(tok)*0.375, visit(start, 40)); err != nil {
			panic(err)
		}
	}
	s.Run()
	st := s.Stats()

	var busy float64
	for i := range st.PerShard {
		if st.PerShard[i].BusyWallMs < 0 || st.PerShard[i].BarrierWaitWallMs < 0 {
			t.Errorf("shard %d negative wall timing: %+v", i, st.PerShard[i])
		}
		busy += st.PerShard[i].BusyWallMs
		st.PerShard[i].BusyWallMs = 0
		st.PerShard[i].BarrierWaitWallMs = 0
	}
	if busy <= 0 {
		t.Error("telemetry run recorded zero total busy time")
	}
	if !reflect.DeepEqual(st, ref) {
		t.Errorf("telemetry perturbed the deterministic counters:\ntimed: %+v\nplain: %+v", st, ref)
	}
}

// TestShardedStatsSerialAndInfinite covers the degenerate shapes: a
// single-shard drain has no windows, and an infinite lookahead is
// sanitized so the stats always marshal to JSON.
func TestShardedStatsSerialAndInfinite(t *testing.T) {
	var tr ringTrace
	st := tr.runSharded(1, 8).Stats()
	if st.Windows != 0 || len(st.PerShard) != 1 || st.CrossShardMatrix != nil {
		t.Errorf("serial drain stats = %+v, want no windows, one shard, no matrix", st)
	}
	if _, err := json.Marshal(st); err != nil {
		t.Errorf("marshaling serial stats: %v", err)
	}

	s, err := NewSharded(2, math.Inf(1))
	if err != nil {
		t.Fatalf("NewSharded(+Inf): %v", err)
	}
	if err := s.Shard(0).At(1, func() {}); err != nil {
		t.Fatalf("At: %v", err)
	}
	s.Run()
	ist := s.Stats()
	if ist.Lookahead != -1 {
		t.Errorf("infinite lookahead reported as %g, want the -1 sentinel", ist.Lookahead)
	}
	if _, err := json.Marshal(ist); err != nil {
		t.Errorf("marshaling infinite-lookahead stats: %v", err)
	}
}
