package des

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var got []int
	mustSchedule(t, &e, 5, func() { got = append(got, 2) })
	mustSchedule(t, &e, 1, func() { got = append(got, 1) })
	mustSchedule(t, &e, 9, func() { got = append(got, 3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("event order = %v, want [1 2 3]", got)
	}
	if e.Now() != 9 {
		t.Errorf("clock = %v, want 9", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("processed = %d, want 3", e.Processed())
	}
}

func mustSchedule(t *testing.T, e *Engine, delay float64, fn func()) {
	t.Helper()
	if err := e.Schedule(delay, fn); err != nil {
		t.Fatal(err)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, &e, 3, func() { got = append(got, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(got) {
		t.Errorf("same-instant events fired out of order: %v", got)
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var times []float64
	mustSchedule(t, &e, 1, func() {
		times = append(times, e.Now())
		if err := e.Schedule(2, func() { times = append(times, e.Now()) }); err != nil {
			t.Error(err)
		}
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

func TestScheduleErrors(t *testing.T) {
	var e Engine
	if err := e.Schedule(-1, func() {}); err == nil {
		t.Error("negative delay should fail")
	}
	if err := e.At(0, nil); err == nil {
		t.Error("nil callback should fail")
	}
	mustSchedule(t, &e, 5, func() {})
	e.Run()
	if err := e.At(1, func() {}); err == nil {
		t.Error("scheduling in the past should fail")
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	mustSchedule(t, &e, 1, func() { fired++ })
	mustSchedule(t, &e, 5, func() { fired++ })
	mustSchedule(t, &e, 10, func() { fired++ })
	e.RunUntil(5)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(100)
	if fired != 3 || e.Now() != 100 {
		t.Errorf("after drain: fired=%d now=%v", fired, e.Now())
	}
}

func TestStep(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty queue should be false")
	}
	mustSchedule(t, &e, 2, func() {})
	if !e.Step() {
		t.Error("Step should fire the event")
	}
	if e.Now() != 2 {
		t.Errorf("clock = %v, want 2", e.Now())
	}
}

// TestQuickMonotoneClock property: for any set of delays, events fire in
// nondecreasing time order.
func TestQuickMonotoneClock(t *testing.T) {
	f := func(delays []uint16) bool {
		var e Engine
		var times []float64
		for _, d := range delays {
			d := float64(d)
			if err := e.Schedule(d, func() { times = append(times, e.Now()) }); err != nil {
				return false
			}
		}
		e.Run()
		return sort.Float64sAreSorted(times) && len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			_ = e.Schedule(float64(j%97), func() {})
		}
		e.Run()
	}
}

func TestPendingPeak(t *testing.T) {
	var e Engine
	if e.PendingPeak() != 0 {
		t.Errorf("fresh engine peak = %d, want 0", e.PendingPeak())
	}
	noop := func() {}
	for i := 1; i <= 5; i++ {
		if err := e.Schedule(float64(i), noop); err != nil {
			t.Fatal(err)
		}
	}
	if e.PendingPeak() != 5 {
		t.Errorf("peak after 5 schedules = %d, want 5", e.PendingPeak())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("pending after run = %d", e.Pending())
	}
	if e.PendingPeak() != 5 {
		t.Errorf("peak must not decay after the queue drains, got %d", e.PendingPeak())
	}
	// One more event cannot lower the recorded peak.
	if err := e.Schedule(1, noop); err != nil {
		t.Fatal(err)
	}
	if e.PendingPeak() != 5 {
		t.Errorf("peak = %d after a single new event, want 5", e.PendingPeak())
	}
}
