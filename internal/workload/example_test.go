package workload_test

import (
	"fmt"
	"strings"

	"ccncoord/internal/catalog"
	"ccncoord/internal/workload"
)

// ExampleSequence replays the motivating example's {a, a, b} flow.
func ExampleSequence() {
	flow, err := workload.NewSequence([]catalog.ID{1, 1, 2})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 5; i++ {
		fmt.Print(flow.Next(), " ")
	}
	fmt.Println()
	// Output: 1 1 2 1 1
}

// ExampleTrace records a workload, persists it, and replays it — the
// trace-driven methodology for reproducible experiments.
func ExampleTrace() {
	gen, err := workload.NewZipf(0.8, 100, 42)
	if err != nil {
		panic(err)
	}
	tr, err := workload.Record(gen, 5)
	if err != nil {
		panic(err)
	}
	var buf strings.Builder
	if _, err := tr.WriteTo(&buf); err != nil {
		panic(err)
	}
	back, err := workload.ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		panic(err)
	}
	fmt.Println(len(back.Requests) == len(tr.Requests))
	// Output: true
}
