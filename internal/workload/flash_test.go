package workload

import (
	"reflect"
	"testing"

	"ccncoord/internal/catalog"
)

func TestFlashCrowdSwapsAfterThreshold(t *testing.T) {
	inner, err := NewSequence([]catalog.ID{1, 5, 9, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFlashCrowd(inner, 3, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	var got []catalog.ID
	for i := 0; i < 10; i++ {
		got = append(got, fc.Next())
	}
	// First 3 pass through; from request 4 on, 1<->5 swap and 9 is
	// untouched. The pattern repeats 1,5,9,1,5.
	want := []catalog.ID{1, 5, 9, 5, 1, 5, 1, 9, 5, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("flash crowd stream %v, want %v", got, want)
	}
}

func TestFlashCrowdActive(t *testing.T) {
	inner, err := NewSequence([]catalog.ID{7})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFlashCrowd(inner, 2, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Active() {
		t.Error("crowd active before any request")
	}
	fc.Next()
	fc.Next()
	if fc.Active() {
		t.Error("crowd active at exactly the threshold")
	}
	fc.Next()
	if !fc.Active() {
		t.Error("crowd not active past the threshold")
	}
}

func TestFlashCrowdImmediate(t *testing.T) {
	// after=0 means the inversion holds from the very first request.
	inner, err := NewSequence([]catalog.ID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewFlashCrowd(inner, 0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := fc.Next(); got != 2 {
		t.Errorf("first request %d, want 2 (swapped)", got)
	}
	if got := fc.Next(); got != 1 {
		t.Errorf("second request %d, want 1 (swapped)", got)
	}
}

func TestFlashCrowdValidation(t *testing.T) {
	inner, err := NewSequence([]catalog.ID{1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name           string
		inner          Generator
		after, rank, n int64
	}{
		{"nil inner", nil, 0, 2, 10},
		{"negative after", inner, -1, 2, 10},
		{"rank 1", inner, 0, 1, 10},
		{"rank 0", inner, 0, 0, 10},
		{"rank beyond catalog", inner, 0, 11, 10},
	}
	for _, tc := range cases {
		if _, err := NewFlashCrowd(tc.inner, tc.after, tc.rank, tc.n); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestFlashCrowdDeterministicOverZipf(t *testing.T) {
	stream := func() []catalog.ID {
		z, err := NewZipf(0.8, 1000, 9)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := NewFlashCrowd(z, 50, 500, 1000)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]catalog.ID, 200)
		for i := range out {
			out[i] = fc.Next()
		}
		return out
	}
	a, b := stream(), stream()
	if !reflect.DeepEqual(a, b) {
		t.Error("flash crowd over a seeded Zipf is not reproducible")
	}
	// The swap preserves the marginal distribution: the wrapped stream
	// is a relabeling of the inner one.
	z, err := NewZipf(0.8, 1000, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range a {
		raw := z.Next()
		want := raw
		if i >= 50 {
			switch raw {
			case 1:
				want = 500
			case 500:
				want = 1
			}
		}
		if id != want {
			t.Fatalf("request %d: got %d, want %d (inner drew %d)", i, id, want, raw)
		}
	}
}
