package workload

import (
	"fmt"

	"ccncoord/internal/catalog"
)

// FlashCrowd wraps a Generator with a sudden popularity inversion: for
// the first after requests the inner stream passes through unchanged,
// and from request after+1 onward the content at popularity rank `rank`
// swaps identities with rank 1 — yesterday's cold content becomes the
// hottest item overnight, the canonical flash-crowd demand shock. The
// transformation is a deterministic relabeling (no RNG of its own), so
// a FlashCrowd over a seeded generator replays exactly and the marginal
// popularity distribution is preserved — only which content is popular
// changes.
type FlashCrowd struct {
	inner  Generator
	after  int64
	rank   catalog.ID
	issued int64
}

// NewFlashCrowd wraps inner with a flash crowd that begins after
// `after` requests, swapping ranks 1 and rank. n is the catalog size
// (bounds rank); rank must be at least 2 — rank 1 is already the
// hottest content, so swapping it with itself would model nothing.
func NewFlashCrowd(inner Generator, after, rank, n int64) (*FlashCrowd, error) {
	if inner == nil {
		return nil, fmt.Errorf("workload: flash crowd needs an inner generator")
	}
	if after < 0 {
		return nil, fmt.Errorf("workload: flash crowd threshold %d is negative", after)
	}
	if rank < 2 {
		return nil, fmt.Errorf("workload: flash crowd rank %d must be at least 2", rank)
	}
	if rank > n {
		return nil, fmt.Errorf("workload: flash crowd rank %d exceeds catalog size %d", rank, n)
	}
	return &FlashCrowd{inner: inner, after: after, rank: catalog.ID(rank)}, nil
}

// Next implements Generator.
func (f *FlashCrowd) Next() catalog.ID {
	f.issued++
	id := f.inner.Next()
	if f.issued <= f.after {
		return id
	}
	switch id {
	case 1:
		return f.rank
	case f.rank:
		return 1
	}
	return id
}

// Active reports whether the crowd has arrived (the swap is in effect).
func (f *FlashCrowd) Active() bool { return f.issued > f.after }

// Interface compliance check.
var _ Generator = (*FlashCrowd)(nil)
