package workload

import (
	"fmt"
	"math/rand"

	"ccncoord/internal/catalog"
	"ccncoord/internal/zipf"
)

// This file models non-stationary demand: real content popularity
// drifts (new releases displace old hits), which is exactly the regime
// the paper's future-work online adaptive algorithm must track.

// DriftingZipf generates Zipf-distributed requests whose parameters
// change over the stream: both the exponent and the identity of the
// popular contents can drift. The rank permutation is rotated by
// rotation positions every epochLength requests, modelling churn in
// which contents are hot, while the exponent interpolates linearly
// from StartS to EndS over the whole horizon.
type DriftingZipf struct {
	n           int64
	startS      float64
	endS        float64
	horizon     int64 // requests over which s interpolates
	epochLength int64
	rotation    int64

	issued  int64
	offset  int64
	rng     *rand.Rand
	sampler *zipf.Sampler
	curS    float64
}

// NewDriftingZipf returns a drifting generator over n contents. The
// exponent moves linearly from startS to endS across horizon requests
// (clamping afterwards); every epochLength requests the popularity
// ranking rotates by rotation positions. epochLength <= 0 disables
// rotation.
func NewDriftingZipf(startS, endS float64, n, horizon, epochLength, rotation, seed int64) (*DriftingZipf, error) {
	if !(startS > 0) || !(endS > 0) {
		return nil, fmt.Errorf("workload: drifting exponents must be positive, got %v -> %v", startS, endS)
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: population %d < 1", n)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("workload: horizon %d < 1", horizon)
	}
	d := &DriftingZipf{
		n:           n,
		startS:      startS,
		endS:        endS,
		horizon:     horizon,
		epochLength: epochLength,
		rotation:    rotation,
		rng:         rand.New(rand.NewSource(seed)),
	}
	if err := d.reseed(startS); err != nil {
		return nil, err
	}
	return d, nil
}

// reseed rebuilds the underlying sampler at exponent s.
func (d *DriftingZipf) reseed(s float64) error {
	sm, err := zipf.NewSampler(s, d.n, d.rng)
	if err != nil {
		return fmt.Errorf("workload: drifting sampler: %w", err)
	}
	d.sampler, d.curS = sm, s
	return nil
}

// CurrentS returns the exponent currently in effect.
func (d *DriftingZipf) CurrentS() float64 { return d.curS }

// Next implements Generator.
func (d *DriftingZipf) Next() catalog.ID {
	// Interpolate the exponent; rebuild the sampler when it moved
	// meaningfully (cheap: construction is O(1)).
	progress := float64(d.issued) / float64(d.horizon)
	if progress > 1 {
		progress = 1
	}
	want := d.startS + (d.endS-d.startS)*progress
	if diff := want - d.curS; diff > 0.01 || diff < -0.01 {
		// Construction with valid arguments cannot fail here.
		if err := d.reseed(want); err != nil {
			panic(err)
		}
	}
	if d.epochLength > 0 && d.issued > 0 && d.issued%d.epochLength == 0 {
		d.offset = (d.offset + d.rotation) % d.n
	}
	d.issued++
	raw := d.sampler.Next()
	// Rotate the rank space: today's rank-1 content is yesterday's
	// rank-(1+offset) content.
	return catalog.ID((raw-1+d.offset)%d.n + 1)
}

// Interface compliance check.
var _ Generator = (*DriftingZipf)(nil)
