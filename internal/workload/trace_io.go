package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"ccncoord/internal/catalog"
)

// This file persists request traces in a one-rank-per-line text format,
// so workloads can be recorded once and replayed across runs, tools, or
// machines (the trace-driven methodology of, e.g., Tyson et al., ICCCN
// 2012, which the paper cites).

// WriteTo streams the trace as one decimal rank per line.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, id := range t.Requests {
		written, err := fmt.Fprintf(bw, "%d\n", id)
		n += int64(written)
		if err != nil {
			return n, fmt.Errorf("workload: writing trace: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("workload: flushing trace: %w", err)
	}
	return n, nil
}

// ReadTrace parses a trace written by WriteTo. Blank lines are ignored;
// any other malformed line is an error.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	tr := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		id := catalog.ID(v)
		if !id.Valid() {
			return nil, fmt.Errorf("workload: trace line %d: invalid rank %d", line, v)
		}
		tr.Requests = append(tr.Requests, id)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(tr.Requests) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	return tr, nil
}
