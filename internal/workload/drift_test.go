package workload

import (
	"testing"

	"ccncoord/internal/catalog"
)

func TestNewDriftingZipfValidation(t *testing.T) {
	cases := []struct {
		name                              string
		startS, endS                      float64
		n, horizon, epochLength, rotation int64
	}{
		{"zero start", 0, 1, 100, 1000, 0, 0},
		{"zero end", 1, 0, 100, 1000, 0, 0},
		{"zero population", 1, 1, 0, 1000, 0, 0},
		{"zero horizon", 1, 1, 100, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewDriftingZipf(tc.startS, tc.endS, tc.n, tc.horizon, tc.epochLength, tc.rotation, 1); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestDriftingZipfExponentMoves(t *testing.T) {
	d, err := NewDriftingZipf(0.5, 1.5, 1000, 10000, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.CurrentS() != 0.5 {
		t.Errorf("initial s = %v", d.CurrentS())
	}
	for i := 0; i < 10000; i++ {
		id := d.Next()
		if id < 1 || id > 1000 {
			t.Fatalf("request %d outside catalog", id)
		}
	}
	if s := d.CurrentS(); s < 1.4 {
		t.Errorf("final s = %v, want ~1.5", s)
	}
	// Past the horizon the exponent clamps.
	for i := 0; i < 1000; i++ {
		d.Next()
	}
	if s := d.CurrentS(); s < 1.45 || s > 1.55 {
		t.Errorf("clamped s = %v", s)
	}
}

// TestDriftingZipfRotationMovesHotSet: after a rotation, the empirically
// hottest content shifts by the rotation amount.
func TestDriftingZipfRotationMovesHotSet(t *testing.T) {
	const n, epoch, rot = 1000, 20000, 100
	d, err := NewDriftingZipf(1.2, 1.2, n, 1<<40, epoch, rot, 3)
	if err != nil {
		t.Fatal(err)
	}
	hottest := func() catalog.ID {
		counts := map[catalog.ID]int{}
		best, bestC := catalog.ID(0), -1
		for i := 0; i < epoch; i++ {
			id := d.Next()
			counts[id]++
			if counts[id] > bestC {
				best, bestC = id, counts[id]
			}
		}
		return best
	}
	first := hottest()
	second := hottest()
	want := catalog.ID((int64(first)-1+rot)%n + 1)
	if second != want {
		t.Errorf("hot content after rotation = %d, want %d (was %d)", second, want, first)
	}
}

func TestDriftingZipfDeterministic(t *testing.T) {
	mk := func() *DriftingZipf {
		d, err := NewDriftingZipf(0.6, 1.4, 500, 5000, 1000, 37, 42)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := mk(), mk()
	for i := 0; i < 3000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}
