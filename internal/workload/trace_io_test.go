package workload

import (
	"strings"
	"testing"

	"ccncoord/internal/catalog"
)

func TestTraceWriteReadRoundTrip(t *testing.T) {
	g, err := NewZipf(0.8, 500, 17)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Requests) != len(tr.Requests) {
		t.Fatalf("round trip length %d, want %d", len(back.Requests), len(tr.Requests))
	}
	for i := range tr.Requests {
		if back.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d differs: %d vs %d", i, back.Requests[i], tr.Requests[i])
		}
	}
}

func TestReadTraceSkipsBlankLines(t *testing.T) {
	tr, err := ReadTrace(strings.NewReader("1\n\n2\n\n3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 3 || tr.Requests[2] != catalog.ID(3) {
		t.Errorf("requests = %v", tr.Requests)
	}
}

func TestReadTraceErrors(t *testing.T) {
	for name, input := range map[string]string{
		"garbage":      "1\nxyz\n",
		"zero rank":    "1\n0\n",
		"negative":     "-5\n",
		"empty stream": "",
		"only blanks":  "\n\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(input)); err == nil {
				t.Errorf("input %q should fail", input)
			}
		})
	}
}

func TestWriteToByteCount(t *testing.T) {
	tr := &Trace{Requests: []catalog.ID{1, 22, 333}}
	var sb strings.Builder
	n, err := tr.WriteTo(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(sb.String())) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, len(sb.String()))
	}
}
