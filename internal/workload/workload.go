// Package workload generates content request streams for the simulator:
// seeded Zipf-distributed generators matching the paper's popularity
// model, deterministic repeating sequences (the motivating example's
// {a,a,b} flows), and trace recording/replay.
package workload

import (
	"fmt"
	"math/rand"

	"ccncoord/internal/catalog"
	"ccncoord/internal/zipf"
)

// Generator produces an endless stream of content requests.
type Generator interface {
	// Next returns the rank of the next requested content.
	Next() catalog.ID
}

// ZipfGenerator draws i.i.d. requests from a Zipf popularity
// distribution.
type ZipfGenerator struct {
	sampler *zipf.Sampler
}

// NewZipf returns a seeded Zipf request generator over n contents with
// exponent s. Callers that need many generators with identical (s, n) —
// one per router, say — should build one ZipfFamily instead so the
// sampler's precomputed state is shared rather than rebuilt per
// generator.
func NewZipf(s float64, n int64, seed int64) (*ZipfGenerator, error) {
	f, err := NewZipfFamily(s, n)
	if err != nil {
		return nil, err
	}
	return f.Gen(seed)
}

// Next implements Generator.
func (g *ZipfGenerator) Next() catalog.ID { return catalog.ID(g.sampler.Next()) }

// ZipfFamily is a shared immutable Zipf distribution from which any
// number of independently seeded generators can be drawn. The expensive
// per-(s, N) sampler setup is done once; generators differ only in
// their RNG stream, so two generators with the same seed produce
// identical request sequences.
type ZipfFamily struct {
	shape *zipf.Shape
}

// NewZipfFamily precomputes the shared sampler state for exponent s over
// n contents.
func NewZipfFamily(s float64, n int64) (*ZipfFamily, error) {
	sh, err := zipf.NewShape(s, n)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return &ZipfFamily{shape: sh}, nil
}

// Gen returns a generator over the family's distribution driven by the
// given seed.
func (f *ZipfFamily) Gen(seed int64) (*ZipfGenerator, error) {
	sm, err := f.shape.Sampler(rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return &ZipfGenerator{sampler: sm}, nil
}

// Sequence replays a fixed pattern of requests cyclically. The motivating
// example's flows {a, a, b} are Sequence{1, 1, 2}.
type Sequence struct {
	pattern []catalog.ID
	pos     int
}

// NewSequence returns a cyclic generator over the given non-empty
// pattern.
func NewSequence(pattern []catalog.ID) (*Sequence, error) {
	if len(pattern) == 0 {
		return nil, fmt.Errorf("workload: empty request pattern")
	}
	for i, id := range pattern {
		if !id.Valid() {
			return nil, fmt.Errorf("workload: pattern element %d is invalid id %d", i, id)
		}
	}
	return &Sequence{pattern: append([]catalog.ID(nil), pattern...)}, nil
}

// Next implements Generator.
func (s *Sequence) Next() catalog.ID {
	id := s.pattern[s.pos]
	s.pos = (s.pos + 1) % len(s.pattern)
	return id
}

// Trace is a recorded request stream that can be replayed.
type Trace struct {
	Requests []catalog.ID
}

// Record captures the next n requests from g into a Trace.
func Record(g Generator, n int) (*Trace, error) {
	if g == nil {
		return nil, fmt.Errorf("workload: nil generator")
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: negative trace length %d", n)
	}
	tr := &Trace{Requests: make([]catalog.ID, n)}
	for i := 0; i < n; i++ {
		tr.Requests[i] = g.Next()
	}
	return tr, nil
}

// Replay returns a generator that replays the trace cyclically.
func (t *Trace) Replay() (Generator, error) {
	return NewSequence(t.Requests)
}

// Popularity returns the empirical request frequency of each content in
// the trace, keyed by rank.
func (t *Trace) Popularity() map[catalog.ID]float64 {
	counts := make(map[catalog.ID]int64)
	for _, id := range t.Requests {
		counts[id]++
	}
	out := make(map[catalog.ID]float64, len(counts))
	total := float64(len(t.Requests))
	for id, c := range counts {
		out[id] = float64(c) / total
	}
	return out
}

// Regional wraps a generator with a region-specific rank rotation: the
// region's rank-1 content is the global rank-(1+offset) content. It
// models geographic interest skew — every region's demand is Zipf, but
// regions disagree about which contents are hot, which undermines any
// placement computed from global ranks.
type Regional struct {
	inner  Generator
	offset int64
	n      int64
}

// NewRegional wraps inner with the given rotation offset over an
// n-content catalog.
func NewRegional(inner Generator, offset, n int64) (*Regional, error) {
	if inner == nil {
		return nil, fmt.Errorf("workload: nil inner generator")
	}
	if n < 1 {
		return nil, fmt.Errorf("workload: population %d < 1", n)
	}
	if offset < 0 {
		return nil, fmt.Errorf("workload: negative offset %d", offset)
	}
	return &Regional{inner: inner, offset: offset % n, n: n}, nil
}

// Next implements Generator.
func (r *Regional) Next() catalog.ID {
	raw := int64(r.inner.Next())
	return catalog.ID((raw-1+r.offset)%r.n + 1)
}

// Interleave round-robins several generators into one stream, modelling
// the aggregate demand several client populations impose on one router.
type Interleave struct {
	gens []Generator
	pos  int
}

// NewInterleave returns a round-robin interleaving of the given
// generators.
func NewInterleave(gens ...Generator) (*Interleave, error) {
	if len(gens) == 0 {
		return nil, fmt.Errorf("workload: no generators to interleave")
	}
	for i, g := range gens {
		if g == nil {
			return nil, fmt.Errorf("workload: generator %d is nil", i)
		}
	}
	return &Interleave{gens: append([]Generator(nil), gens...)}, nil
}

// Next implements Generator.
func (in *Interleave) Next() catalog.ID {
	id := in.gens[in.pos].Next()
	in.pos = (in.pos + 1) % len(in.gens)
	return id
}

// Interface compliance checks.
var (
	_ Generator = (*ZipfGenerator)(nil)
	_ Generator = (*Sequence)(nil)
	_ Generator = (*Interleave)(nil)
)
