package workload

import (
	"math"
	"testing"

	"ccncoord/internal/catalog"
)

func TestNewZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 100, 1); err == nil {
		t.Error("zero exponent should fail")
	}
	if _, err := NewZipf(0.8, 0, 1); err == nil {
		t.Error("zero population should fail")
	}
}

func TestZipfGeneratorSkew(t *testing.T) {
	g, err := NewZipf(0.8, 1000, 42)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[catalog.ID]int)
	const draws = 50000
	for i := 0; i < draws; i++ {
		id := g.Next()
		if id < 1 || id > 1000 {
			t.Fatalf("request %d outside catalog", id)
		}
		counts[id]++
	}
	if counts[1] <= counts[100] {
		t.Errorf("rank 1 (%d) should be requested more than rank 100 (%d)", counts[1], counts[100])
	}
}

func TestZipfGeneratorDeterministic(t *testing.T) {
	g1, _ := NewZipf(0.8, 1000, 7)
	g2, _ := NewZipf(0.8, 1000, 7)
	for i := 0; i < 100; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestSequence(t *testing.T) {
	s, err := NewSequence([]catalog.ID{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []catalog.ID{1, 1, 2, 1, 1, 2, 1}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("request %d = %d, want %d", i, got, w)
		}
	}
	if _, err := NewSequence(nil); err == nil {
		t.Error("empty pattern should fail")
	}
	if _, err := NewSequence([]catalog.ID{0}); err == nil {
		t.Error("invalid id in pattern should fail")
	}
}

func TestSequenceCopiesPattern(t *testing.T) {
	pattern := []catalog.ID{1, 2}
	s, _ := NewSequence(pattern)
	pattern[0] = 99
	if got := s.Next(); got != 1 {
		t.Errorf("mutating caller slice changed the sequence: got %d", got)
	}
}

func TestRecordAndReplay(t *testing.T) {
	g, _ := NewZipf(0.8, 100, 3)
	tr, err := Record(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 50 {
		t.Fatalf("trace length = %d", len(tr.Requests))
	}
	rp, err := tr.Replay()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range tr.Requests {
		if got := rp.Next(); got != want {
			t.Fatalf("replay diverges at %d: %d vs %d", i, got, want)
		}
	}
	if _, err := Record(nil, 5); err == nil {
		t.Error("nil generator should fail")
	}
	if _, err := Record(g, -1); err == nil {
		t.Error("negative length should fail")
	}
}

func TestTracePopularity(t *testing.T) {
	tr := &Trace{Requests: []catalog.ID{1, 1, 2, 3}}
	pop := tr.Popularity()
	if math.Abs(pop[1]-0.5) > 1e-12 || math.Abs(pop[2]-0.25) > 1e-12 {
		t.Errorf("popularity = %v", pop)
	}
}

func TestInterleave(t *testing.T) {
	a, _ := NewSequence([]catalog.ID{1})
	b, _ := NewSequence([]catalog.ID{2})
	in, err := NewInterleave(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []catalog.ID{1, 2, 1, 2}
	for i, w := range want {
		if got := in.Next(); got != w {
			t.Errorf("interleave %d = %d, want %d", i, got, w)
		}
	}
	if _, err := NewInterleave(); err == nil {
		t.Error("no generators should fail")
	}
	if _, err := NewInterleave(a, nil); err == nil {
		t.Error("nil generator should fail")
	}
}

func TestRegional(t *testing.T) {
	inner, err := NewSequence([]catalog.ID{1, 2, 100})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRegional(inner, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []catalog.ID{11, 12, 10} // 100+10 wraps to 10
	for i, w := range want {
		if got := r.Next(); got != w {
			t.Errorf("request %d = %d, want %d", i, got, w)
		}
	}
	if _, err := NewRegional(nil, 1, 10); err == nil {
		t.Error("nil inner should fail")
	}
	if _, err := NewRegional(inner, -1, 10); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := NewRegional(inner, 1, 0); err == nil {
		t.Error("empty catalog should fail")
	}
}
