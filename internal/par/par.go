// Package par provides the bounded worker pool the experiment harness
// and CLI tools use to fan independent work units across CPUs while
// keeping results in deterministic input order. Tasks communicate only
// through their own result slot, so a pool run is race-clean as long as
// the tasks themselves share no mutable state.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default pool width: GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clampWorkers normalizes a requested pool width: non-positive selects
// the default, and a pool never needs more workers than tasks.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) on a pool of the given width
// (non-positive selects DefaultWorkers). The first error encountered —
// in task-index order — is returned, and outstanding tasks that have
// not yet started are cancelled. ForEach returns only after every
// started task has finished, so fn's writes are visible to the caller.
//
// With workers == 1 the tasks run sequentially on the calling
// goroutine in index order, which is the serial reference the
// determinism tests compare against.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next task index to claim
		cancel   atomic.Bool  // set once any task fails
		mu       sync.Mutex
		firstErr error
		firstIdx int = -1
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		// Keep the error of the lowest task index so the reported
		// failure matches what a serial run would have hit first.
		if firstIdx < 0 || i < firstIdx {
			firstErr, firstIdx = err, i
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cancel.Load() {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					cancel.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Map runs fn over [0, n) on the pool and collects the results in input
// order. On error the partial results are discarded and the first
// (lowest-index) error is returned.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
