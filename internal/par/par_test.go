package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryTask(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		n := 53
		hits := make([]atomic.Int32, n)
		err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, err := Map(workers, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachPropagatesLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(workers, 32, func(i int) error {
			if i == 5 || i == 20 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: want error", workers)
		}
		// With one worker the scan stops at 5; with several, 5 must win
		// over 20 because it is the lower index among failures that ran.
		if got := err.Error(); got != "task 5 failed" && workers == 1 {
			t.Fatalf("workers=%d: got %q", workers, got)
		}
	}
}

func TestForEachCancelsAfterError(t *testing.T) {
	const n = 100000
	var ran atomic.Int32
	err := ForEach(2, n, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		runtime.Gosched() // give the failing worker a chance to flag cancellation
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := ran.Load(); got >= n {
		t.Fatalf("all %d tasks ran despite an immediate failure; cancellation is not working", got)
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(3, 10, func(i int) (string, error) {
		if i == 2 {
			return "", errors.New("nope")
		}
		return "ok", nil
	})
	if err == nil || out != nil {
		t.Fatalf("got (%v, %v), want nil results and an error", out, err)
	}
}
