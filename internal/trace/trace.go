// Package trace is the run-wide structured event tracer: simulator
// layers emit typed events (interest and data transmissions, retries,
// faults, coordination actions, request completions) and the tracer
// writes them as JSON Lines, one object per line, optionally sampled.
//
// The tracer is built for a hot path that is usually cold: every emit
// site guards with a nil check (`if tr != nil { tr.Emit(...) }`), so a
// disabled tracer costs one predictable branch and zero allocations —
// the event struct is only constructed inside the guard. All methods
// are additionally nil-safe, so a *Tracer can be threaded through
// options structs without ceremony.
//
// Sampling is a deterministic stride over the event stream, not a coin
// flip: with sample rate r, every round(1/r)-th event seen is written.
// The tracer never draws from the simulation's RNG streams, so enabling
// tracing cannot perturb simulation results. Within a single-threaded
// run the sampled subsequence is reproducible; when several concurrent
// runs share one tracer (the parallel experiment engine), the stride
// applies to the interleaved stream and the selected events depend on
// scheduling — the trace stays valid JSONL, but not byte-stable.
//
// Emit is safe for concurrent use.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// Event kinds. Every event carries Kind plus whichever of the optional
// fields apply; consumers must tolerate unknown kinds (the schema is
// append-only).
const (
	// KindInterest is one interest-packet transmission Router -> Peer
	// (Peer -1 = the origin uplink).
	KindInterest = "interest"
	// KindData is one data-packet transmission arriving at Router from
	// Peer (Peer -1 = the origin), after Hops network links.
	KindData = "data"
	// KindRetry is a retransmission timer firing at Router for Content;
	// N is the attempt number.
	KindRetry = "retry"
	// KindExpire is a PIT entry at Router giving up on Content (retry
	// budget exhausted, or Detail "crash-flush" when the router died).
	KindExpire = "expire"
	// KindDrop is a discarded transmission; Detail qualifies the cause
	// ("loss-interest", "loss-data", "fault").
	KindDrop = "drop"
	// KindFault is a topology transition applied to the data plane;
	// Detail is "router-down", "router-up", "link-down" or "link-up"
	// (links name their far end in Peer).
	KindFault = "fault"
	// KindHeartbeat is one failure-detector probe of Router; N is 1
	// when the probe succeeded, 0 when it missed.
	KindHeartbeat = "hb"
	// KindRepair is a coordination repair pass after Router was
	// declared dead; N is the number of contents moved.
	KindRepair = "repair"
	// KindRequest is a measured client request completing at its
	// first-hop Router: Tier names the serving tier, Hops the network
	// distance, Detail "failed" marks an exhausted retry budget.
	KindRequest = "request"
)

// Event is one structured trace record. T is virtual simulation time in
// milliseconds. Integer fields use -1 (origin) only where documented;
// zero-valued optional fields are omitted from the JSON, so absent
// means zero.
type Event struct {
	T       float64 `json:"t"`
	Kind    string  `json:"kind"`
	Router  int     `json:"router"`
	Peer    int     `json:"peer,omitempty"`
	Content int64   `json:"content,omitempty"`
	Hops    int     `json:"hops,omitempty"`
	N       int64   `json:"n,omitempty"`
	Tier    string  `json:"tier,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// Tracer writes sampled events as JSON Lines. The zero value is not
// useful; construct with New. A nil *Tracer is a valid disabled tracer:
// every method no-ops (Emit) or returns zeros.
type Tracer struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	every   uint64
	seen    uint64
	emitted uint64
	err     error
}

// New returns a tracer writing every stride-th event to w as JSONL.
// stride 1 writes everything. The caller owns w; call Flush before
// closing it.
func New(w io.Writer, stride uint64) (*Tracer, error) {
	if w == nil {
		return nil, fmt.Errorf("trace: nil writer")
	}
	if stride < 1 {
		return nil, fmt.Errorf("trace: stride must be at least 1, got %d", stride)
	}
	bw := bufio.NewWriter(w)
	return &Tracer{bw: bw, enc: json.NewEncoder(bw), every: stride}, nil
}

// NewSampled returns a tracer with sample rate in (0, 1]: rate 1 traces
// everything, rate 0.01 writes every 100th event (deterministic stride,
// see the package comment).
func NewSampled(w io.Writer, rate float64) (*Tracer, error) {
	if !(rate > 0 && rate <= 1) || math.IsNaN(rate) {
		return nil, fmt.Errorf("trace: sample rate %v outside (0, 1]", rate)
	}
	return New(w, uint64(math.Round(1/rate)))
}

// Emit records one event, writing it if it falls on the sampling
// stride. Safe on a nil tracer and for concurrent use. Write errors are
// sticky and surfaced by Flush/Err; emission continues counting so the
// seen/emitted accounting stays truthful.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seen++
	if (t.seen-1)%t.every == 0 {
		t.emitted++
		if t.err == nil {
			if err := t.enc.Encode(ev); err != nil {
				t.err = fmt.Errorf("trace: writing event: %w", err)
			}
		}
	}
	t.mu.Unlock()
}

// Seen returns how many events were offered to the tracer.
func (t *Tracer) Seen() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seen
}

// Emitted returns how many events were written (seen/stride, rounded
// up).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Stride returns the sampling stride (0 on a nil tracer).
func (t *Tracer) Stride() uint64 {
	if t == nil {
		return 0
	}
	return t.every
}

// Flush drains buffered events to the underlying writer and returns
// the first write error encountered, if any.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if err := t.bw.Flush(); err != nil {
		t.err = fmt.Errorf("trace: flushing: %w", err)
	}
	return t.err
}

// Err returns the sticky write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
