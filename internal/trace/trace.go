// Package trace is the run-wide structured event tracer: simulator
// layers emit typed events (interest and data transmissions, retries,
// faults, coordination actions, request completions) and the tracer
// writes them as JSON Lines, one object per line, optionally sampled.
//
// The tracer is built for a hot path that is usually cold: every emit
// site guards with a nil check (`if tr != nil { tr.Emit(...) }`), so a
// disabled tracer costs one predictable branch and zero allocations —
// the event struct is only constructed inside the guard. All methods
// are additionally nil-safe, so a *Tracer can be threaded through
// options structs without ceremony.
//
// Sampling is request-coherent: every data-plane event carries the
// request ID that caused it (Event.Req), and with sample stride k the
// tracer keeps the complete lifecycle of every k-th request — issue,
// interests, aggregation joins, retries, drops, data legs, completion —
// and drops the other lifecycles whole. A sampled trace therefore never
// contains fragments: span reconstruction (internal/spans) is always
// complete for the requests it sees. Events without request identity
// (faults, heartbeats, repairs: Req == 0) are control-plane events and
// are always written; they are rare by construction. Because the
// sampling predicate depends only on the event's own request ID, the
// set of sampled events is schedule-independent — concurrent runs
// sharing one tracer (the parallel experiment engine) interleave line
// order but select the same lifecycles at any pool width. The tracer
// never draws from the simulation's RNG streams, so enabling tracing
// cannot perturb simulation results.
//
// Emit is safe for concurrent use.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"sync"
)

// Event kinds. Every event carries Kind plus whichever of the optional
// fields apply; consumers must tolerate unknown kinds (the schema is
// append-only).
const (
	// KindIssue is a measured client request entering the system at its
	// first-hop Router; T is the issue time at the client, before the
	// access hop. It anchors the request's span.
	KindIssue = "issue"
	// KindInterest is one interest-packet transmission Router -> Peer
	// (Peer -1 = the origin uplink). Cause is "" for the initial
	// forward, "retx" for a retransmission, "fallback" for a
	// directory-bypassing origin-fallback retry.
	KindInterest = "interest"
	// KindAggregate is an interest for Content joining an existing PIT
	// entry at Router: Req is the joining request, N the request that
	// created the entry (N == Req marks a retransmitted interest
	// rejoining its own entry, not a true aggregation).
	KindAggregate = "agg"
	// KindData is one data-packet transmission arriving at Router from
	// Peer (Peer -1 = the origin), after Hops network links.
	KindData = "data"
	// KindRetry is a retransmission timer firing at Router for Content;
	// N is the attempt number. Req is the request that created the PIT
	// entry (aggregated requests observe the recovery only through
	// their own data/completion events).
	KindRetry = "retry"
	// KindExpire is a PIT entry at Router giving up on Content (retry
	// budget exhausted, or Detail "crash-flush" when the router died).
	KindExpire = "expire"
	// KindDrop is a discarded transmission; Detail qualifies the cause
	// ("loss-interest", "loss-data", "fault").
	KindDrop = "drop"
	// KindFault is a topology transition applied to the data plane;
	// Detail is "router-down", "router-up", "link-down" or "link-up"
	// (links name their far end in Peer).
	KindFault = "fault"
	// KindHeartbeat is one failure-detector probe of Router; N is 1
	// when the probe succeeded, 0 when it missed.
	KindHeartbeat = "hb"
	// KindRepair is a coordination repair pass after Router was
	// declared dead; N is the number of contents moved.
	KindRepair = "repair"
	// KindRequest is a measured client request completing at its
	// first-hop Router: Tier names the serving tier, Hops the network
	// distance, Detail "failed" marks an exhausted retry budget.
	KindRequest = "request"
	// KindMode is a data-plane operating-mode transition; Detail names
	// it: "degraded-enter"/"degraded-exit" bracket autonomous en-route
	// caching while coordination is lost, "coord-down"/"coord-up"
	// bracket the coordination channel itself. Router is -1 (the
	// transition is network-wide); N carries a transition-specific
	// count (entries flushed on degraded-exit).
	KindMode = "mode"
)

// Event is one structured trace record. T is virtual simulation time in
// milliseconds. Integer fields use -1 (origin) only where documented;
// zero-valued optional fields are omitted from the JSON, so absent
// means zero.
type Event struct {
	T       float64 `json:"t"`
	Kind    string  `json:"kind"`
	Router  int     `json:"router"`
	Peer    int     `json:"peer,omitempty"`
	Content int64   `json:"content,omitempty"`
	Hops    int     `json:"hops,omitempty"`
	N       int64   `json:"n,omitempty"`
	Tier    string  `json:"tier,omitempty"`
	Detail  string  `json:"detail,omitempty"`
	// Req is the identity of the client request whose lifecycle caused
	// this event: a monotonic per-run ID allocated at each client
	// request. 0 means the event has no request identity (control-plane
	// events: faults, heartbeats, repairs).
	Req int64 `json:"req,omitempty"`
	// Cause qualifies why the event happened within its kind ("retx",
	// "fallback"); "" is the unqualified default.
	Cause string `json:"cause,omitempty"`
}

// Tracer writes request-coherent sampled events as JSON Lines. The zero
// value is not useful; construct with New. A nil *Tracer is a valid
// disabled tracer: every method no-ops (Emit) or returns zeros.
type Tracer struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	every   uint64
	seen    uint64
	emitted uint64
	err     error
}

// New returns a tracer writing every stride-th request lifecycle to w
// as JSONL: an event carrying request identity req is written iff
// (req-1) % stride == 0, and events without request identity (Req 0)
// are always written. stride 1 writes everything. The caller owns w;
// call Flush before closing it.
func New(w io.Writer, stride uint64) (*Tracer, error) {
	if w == nil {
		return nil, fmt.Errorf("trace: nil writer")
	}
	if stride < 1 {
		return nil, fmt.Errorf("trace: stride must be at least 1, got %d", stride)
	}
	bw := bufio.NewWriter(w)
	return &Tracer{bw: bw, enc: json.NewEncoder(bw), every: stride}, nil
}

// NewSampled returns a tracer with sample rate in (0, 1]: rate 1 traces
// everything, rate 0.01 keeps every 100th request lifecycle
// (request-coherent stride, see the package comment).
func NewSampled(w io.Writer, rate float64) (*Tracer, error) {
	if !(rate > 0 && rate <= 1) || math.IsNaN(rate) {
		return nil, fmt.Errorf("trace: sample rate %v outside (0, 1]", rate)
	}
	return New(w, uint64(math.Round(1/rate)))
}

// OpenFile creates path and returns a tracer with the given sample rate
// writing to it, plus a close function that flushes the tracer and
// closes the file. A path ending in ".gz" writes gzip-compressed JSONL
// transparently (internal/spans and ccntrace read both forms).
func OpenFile(path string, rate float64) (*Tracer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: creating trace file: %w", err)
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	tr, err := NewSampled(w, rate)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	done := func() error {
		err := tr.Flush()
		if gz != nil {
			if cerr := gz.Close(); err == nil {
				err = cerr
			}
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	return tr, done, nil
}

// sampled reports whether an event with the given request identity
// falls on the sampling stride. Control-plane events (req 0) are always
// kept.
func (t *Tracer) sampled(req int64) bool {
	if t.every == 1 || req <= 0 {
		return true
	}
	return uint64(req-1)%t.every == 0
}

// Emit records one event, writing it if its request lifecycle falls on
// the sampling stride. Safe on a nil tracer and for concurrent use.
// Write errors are sticky and surfaced by Flush/Err; emission continues
// counting so the seen/emitted accounting stays truthful.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seen++
	if t.sampled(ev.Req) {
		t.emitted++
		if t.err == nil {
			if err := t.enc.Encode(ev); err != nil {
				t.err = fmt.Errorf("trace: writing event: %w", err)
			}
		}
	}
	t.mu.Unlock()
}

// Seen returns how many events were offered to the tracer.
func (t *Tracer) Seen() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seen
}

// Emitted returns how many events were written.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Stride returns the sampling stride (0 on a nil tracer).
func (t *Tracer) Stride() uint64 {
	if t == nil {
		return 0
	}
	return t.every
}

// Flush drains buffered events to the underlying writer and returns
// the first write error encountered, if any.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if err := t.bw.Flush(); err != nil {
		t.err = fmt.Errorf("trace: flushing: %w", err)
	}
	return t.err
}

// Err returns the sticky write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
