package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindInterest}) // must not panic
	if tr.Seen() != 0 || tr.Emitted() != 0 || tr.Stride() != 0 {
		t.Error("nil tracer should report zeros")
	}
	if tr.Flush() != nil || tr.Err() != nil {
		t.Error("nil tracer should report no errors")
	}
}

func TestEmitWritesValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr, err := New(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{T: 1.5, Kind: KindInterest, Router: 3, Peer: 7, Content: 42},
		{T: 2.5, Kind: KindData, Router: 7, Peer: -1, Content: 42, Hops: 1},
		{T: 9, Kind: KindRequest, Router: 3, Content: 42, Hops: 2, Tier: "peer"},
		{T: 12, Kind: KindFault, Router: 5, Detail: "router-down"},
	}
	for _, ev := range events {
		tr.Emit(ev)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("wrote %d lines, want %d", len(lines), len(events))
	}
	for i, line := range lines {
		var got Event
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if got != events[i] {
			t.Errorf("line %d round-tripped to %+v, want %+v", i, got, events[i])
		}
	}
	if tr.Seen() != 4 || tr.Emitted() != 4 {
		t.Errorf("seen/emitted = %d/%d, want 4/4", tr.Seen(), tr.Emitted())
	}
}

func TestZeroFieldsOmitted(t *testing.T) {
	var buf bytes.Buffer
	tr, err := New(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit(Event{T: 3, Kind: KindExpire, Router: 0})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if line != `{"t":3,"kind":"expire","router":0}` {
		t.Errorf("unexpected encoding: %s", line)
	}
}

func TestStrideSampling(t *testing.T) {
	var buf bytes.Buffer
	tr, err := NewSampled(&buf, 0.25) // stride 4
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stride() != 4 {
		t.Fatalf("stride = %d, want 4", tr.Stride())
	}
	for i := 0; i < 10; i++ {
		tr.Emit(Event{T: float64(i), Kind: KindInterest, Router: i})
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	// Events 0, 4, 8 fall on the stride.
	var routers []int
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		routers = append(routers, ev.Router)
	}
	if want := []int{0, 4, 8}; fmt.Sprint(routers) != fmt.Sprint(want) {
		t.Errorf("sampled routers = %v, want %v", routers, want)
	}
	if tr.Seen() != 10 || tr.Emitted() != 3 {
		t.Errorf("seen/emitted = %d/%d, want 10/3", tr.Seen(), tr.Emitted())
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Error("nil writer should fail")
	}
	if _, err := New(&bytes.Buffer{}, 0); err == nil {
		t.Error("zero stride should fail")
	}
	for _, rate := range []float64{0, -1, 1.5} {
		if _, err := NewSampled(&bytes.Buffer{}, rate); err == nil {
			t.Errorf("sample rate %v should fail", rate)
		}
	}
	if _, err := NewSampled(&bytes.Buffer{}, 1); err != nil {
		t.Errorf("rate 1: %v", err)
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestStickyWriteError(t *testing.T) {
	tr, err := New(&errWriter{n: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ { // overrun the bufio buffer to force the write
		tr.Emit(Event{T: float64(i), Kind: KindData, Router: 1})
	}
	if tr.Flush() == nil || tr.Err() == nil {
		t.Error("write error should stick and surface via Flush/Err")
	}
	if tr.Seen() != 10000 {
		t.Errorf("seen = %d; accounting must continue past write errors", tr.Seen())
	}
}

// TestConcurrentEmit exercises the mutex under the race detector: the
// parallel experiment engine shares one tracer across worker
// goroutines.
func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr, err := New(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers, perWorker = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Emit(Event{T: float64(i), Kind: KindInterest, Router: w})
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Seen() != workers*perWorker {
		t.Errorf("seen = %d, want %d", tr.Seen(), workers*perWorker)
	}
	want := uint64((workers*perWorker + 2) / 3)
	if tr.Emitted() != want {
		t.Errorf("emitted = %d, want %d", tr.Emitted(), want)
	}
	// Every line must still be a valid, complete JSON object.
	sc := bufio.NewScanner(&buf)
	var lines uint64
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("corrupt line under concurrency: %v", err)
		}
		lines++
	}
	if lines != tr.Emitted() {
		t.Errorf("file has %d lines, tracer reports %d emitted", lines, tr.Emitted())
	}
}
