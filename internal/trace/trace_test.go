package trace

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindInterest}) // must not panic
	if tr.Seen() != 0 || tr.Emitted() != 0 || tr.Stride() != 0 {
		t.Error("nil tracer should report zeros")
	}
	if tr.Flush() != nil || tr.Err() != nil {
		t.Error("nil tracer should report no errors")
	}
}

func TestEmitWritesValidJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr, err := New(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{T: 1.5, Kind: KindInterest, Router: 3, Peer: 7, Content: 42},
		{T: 2.5, Kind: KindData, Router: 7, Peer: -1, Content: 42, Hops: 1},
		{T: 9, Kind: KindRequest, Router: 3, Content: 42, Hops: 2, Tier: "peer"},
		{T: 12, Kind: KindFault, Router: 5, Detail: "router-down"},
	}
	for _, ev := range events {
		tr.Emit(ev)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != len(events) {
		t.Fatalf("wrote %d lines, want %d", len(lines), len(events))
	}
	for i, line := range lines {
		var got Event
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if got != events[i] {
			t.Errorf("line %d round-tripped to %+v, want %+v", i, got, events[i])
		}
	}
	if tr.Seen() != 4 || tr.Emitted() != 4 {
		t.Errorf("seen/emitted = %d/%d, want 4/4", tr.Seen(), tr.Emitted())
	}
}

func TestZeroFieldsOmitted(t *testing.T) {
	var buf bytes.Buffer
	tr, err := New(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit(Event{T: 3, Kind: KindExpire, Router: 0})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if line != `{"t":3,"kind":"expire","router":0}` {
		t.Errorf("unexpected encoding: %s", line)
	}
}

// TestRequestCoherentSampling pins the sampling contract: requests 1,
// 5, 9, ... fall on a stride of 4, every event of a sampled request is
// kept (never fragments), and control-plane events (Req 0) always pass.
func TestRequestCoherentSampling(t *testing.T) {
	var buf bytes.Buffer
	tr, err := NewSampled(&buf, 0.25) // stride 4
	if err != nil {
		t.Fatal(err)
	}
	if tr.Stride() != 4 {
		t.Fatalf("stride = %d, want 4", tr.Stride())
	}
	// Three events per request lifecycle, plus interleaved control
	// events.
	for req := int64(1); req <= 10; req++ {
		tr.Emit(Event{T: float64(req), Kind: KindIssue, Router: 0, Req: req})
		tr.Emit(Event{T: float64(req), Kind: KindInterest, Router: 0, Peer: 1, Req: req})
		tr.Emit(Event{T: float64(req), Kind: KindRequest, Router: 0, Req: req})
	}
	tr.Emit(Event{T: 99, Kind: KindFault, Router: 5, Detail: "router-down"})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	perReq := make(map[int64]int)
	control := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Req == 0 {
			control++
			continue
		}
		perReq[ev.Req]++
	}
	if control != 1 {
		t.Errorf("control events written = %d, want 1", control)
	}
	want := map[int64]int{1: 3, 5: 3, 9: 3}
	if fmt.Sprint(perReq) != fmt.Sprint(want) {
		t.Errorf("events per sampled request = %v, want %v", perReq, want)
	}
	if tr.Seen() != 31 || tr.Emitted() != 10 {
		t.Errorf("seen/emitted = %d/%d, want 31/10", tr.Seen(), tr.Emitted())
	}
}

func TestReqCauseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr, err := New(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := Event{T: 4, Kind: KindInterest, Router: 2, Peer: 6, Content: 17, Req: 321, Cause: "retx"}
	tr.Emit(ev)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var got Event
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got != ev {
		t.Errorf("round-tripped to %+v, want %+v", got, ev)
	}
	// Zero req/cause stay off the wire: absent means zero.
	buf.Reset()
	tr2, _ := New(&buf, 1)
	tr2.Emit(Event{T: 1, Kind: KindFault, Router: 3, Detail: "router-down"})
	tr2.Flush()
	if s := buf.String(); strings.Contains(s, "req") || strings.Contains(s, "cause") {
		t.Errorf("zero req/cause leaked into encoding: %s", s)
	}
}

func TestOpenFileGzip(t *testing.T) {
	for _, name := range []string{"t.jsonl", "t.jsonl.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), name)
			tr, done, err := OpenFile(path, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := []Event{
				{T: 1, Kind: KindIssue, Router: 2, Content: 7, Req: 1},
				{T: 2, Kind: KindRequest, Router: 2, Content: 7, Tier: "local", Req: 1},
			}
			for _, ev := range want {
				tr.Emit(ev)
			}
			if err := done(); err != nil {
				t.Fatal(err)
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			var r io.Reader = f
			if strings.HasSuffix(name, ".gz") {
				gz, err := gzip.NewReader(f)
				if err != nil {
					t.Fatalf("not gzip despite .gz suffix: %v", err)
				}
				defer gz.Close()
				r = gz
			}
			var got []Event
			sc := bufio.NewScanner(r)
			for sc.Scan() {
				var ev Event
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					t.Fatal(err)
				}
				got = append(got, ev)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("read back %v, want %v", got, want)
			}
		})
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Error("nil writer should fail")
	}
	if _, err := New(&bytes.Buffer{}, 0); err == nil {
		t.Error("zero stride should fail")
	}
	for _, rate := range []float64{0, -1, 1.5} {
		if _, err := NewSampled(&bytes.Buffer{}, rate); err == nil {
			t.Errorf("sample rate %v should fail", rate)
		}
	}
	if _, err := NewSampled(&bytes.Buffer{}, 1); err != nil {
		t.Errorf("rate 1: %v", err)
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestStickyWriteError(t *testing.T) {
	tr, err := New(&errWriter{n: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ { // overrun the bufio buffer to force the write
		tr.Emit(Event{T: float64(i), Kind: KindData, Router: 1})
	}
	if tr.Flush() == nil || tr.Err() == nil {
		t.Error("write error should stick and surface via Flush/Err")
	}
	if tr.Seen() != 10000 {
		t.Errorf("seen = %d; accounting must continue past write errors", tr.Seen())
	}
}

// TestConcurrentEmit exercises the mutex under the race detector: the
// parallel experiment engine shares one tracer across worker
// goroutines.
func TestConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr, err := New(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers, perWorker = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Distinct request IDs 1..workers*perWorker, one event
				// each, interleaved across goroutines.
				tr.Emit(Event{T: float64(i), Kind: KindInterest, Router: w, Req: int64(w*perWorker + i + 1)})
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.Seen() != workers*perWorker {
		t.Errorf("seen = %d, want %d", tr.Seen(), workers*perWorker)
	}
	want := uint64((workers*perWorker + 2) / 3)
	if tr.Emitted() != want {
		t.Errorf("emitted = %d, want %d", tr.Emitted(), want)
	}
	// Every line must still be a valid, complete JSON object.
	sc := bufio.NewScanner(&buf)
	var lines uint64
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("corrupt line under concurrency: %v", err)
		}
		lines++
	}
	if lines != tr.Emitted() {
		t.Errorf("file has %d lines, tracer reports %d emitted", lines, tr.Emitted())
	}
}
