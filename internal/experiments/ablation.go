package experiments

import (
	"fmt"
	"math"

	"ccncoord/internal/catalog"
	"ccncoord/internal/coord"
	"ccncoord/internal/model"
	"ccncoord/internal/par"
	"ccncoord/internal/sim"
	"ccncoord/internal/topology"
	"ccncoord/internal/workload"
	"ccncoord/internal/zipf"
)

// This file contains this repository's ablation studies for the design
// choices DESIGN.md calls out: the coordinated-assignment strategy
// (rank striping vs DHT hashing), the cache policy (provisioned vs
// dynamic LRU/LFU), the solver (exact convex minimization vs the Lemma 2
// fixed point vs the Theorem 2 closed form), the coordinator protocol
// (centralized vs tree-distributed), and the stability of the optimal
// strategy over the trade-off weight.

// AblationAssignment compares the paper's rank-striped coordinated
// placement against hash-based assignment on the packet simulator:
// identical origin load (both store the same band) but different
// popularity balance across routers.
func AblationAssignment(requests int) (Table, error) {
	if requests < 1000 {
		requests = 1000
	}
	t := Table{
		ID:    "ablation-assignment",
		Title: "Coordinated placement: rank striping vs content hashing (US-A)",
		Headers: []string{"assignment", "origin load", "peer hit", "peer hops",
			"peer load imbalance", "popularity imbalance"},
	}
	g := topology.USA()
	const (
		catalogSize = 20000
		capacity    = 150
		coordinated = 75
		s           = baseS
	)
	dist, err := zipf.New(s, catalogSize)
	if err != nil {
		return Table{}, err
	}
	routers := make([]topology.NodeID, g.N())
	for i := range routers {
		routers[i] = topology.NodeID(i)
	}
	kinds := []sim.Assignment{sim.AssignStripe, sim.AssignHash}
	rows, err := parRows(len(kinds), func(i int) ([]string, error) {
		asgKind := kinds[i]
		res, err := runSim(sim.Scenario{
			Topology:      g.Clone(),
			CatalogSize:   catalogSize,
			ZipfS:         s,
			Capacity:      capacity,
			Coordinated:   coordinated,
			Policy:        sim.PolicyCoordinated,
			Assignment:    asgKind,
			Requests:      requests,
			Seed:          11,
			AccessLatency: 5,
			OriginLatency: 60,
			OriginGateway: -1,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: assignment ablation (%v): %w", asgKind, err)
		}
		// Popularity imbalance of the placement itself.
		localTop := int64(capacity - coordinated)
		ranks := rankBand(localTop+1, localTop+int64(g.N())*coordinated)
		var asg *coord.Assignment
		if asgKind == sim.AssignHash {
			asg, err = coord.HashByContent(routers, ranks, coordinated)
		} else {
			asg, err = coord.StripeByRank(routers, ranks, coordinated)
		}
		if err != nil {
			return nil, err
		}
		pmf := func(id catalog.ID) float64 { return dist.PMF(int64(id)) }
		imbalance, err := coord.PopularityImbalance(asg, routers, pmf)
		if err != nil {
			return nil, err
		}
		return []string{
			asgKind.String(),
			fmt.Sprintf("%.4f", res.OriginLoad),
			fmt.Sprintf("%.4f", res.PeerHit),
			fmt.Sprintf("%.3f", res.PeerHops),
			fmt.Sprintf("%.3f", res.PeerLoadImbalance),
			fmt.Sprintf("%.3f", imbalance),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// rankBand returns catalog ids for ranks [from, to].
func rankBand(from, to int64) []catalogID {
	out := make([]catalogID, 0, to-from+1)
	for r := from; r <= to; r++ {
		out = append(out, catalogID(r))
	}
	return out
}

// AblationPolicy compares the provisioned strategies against dynamic
// LRU/LFU baselines at equal capacity on the packet simulator.
func AblationPolicy(requests int) (Table, error) {
	if requests < 1000 {
		requests = 1000
	}
	t := Table{
		ID:    "ablation-policy",
		Title: "Cache policies at equal capacity (US-A)",
		Headers: []string{"policy", "origin load", "local hit", "peer hit",
			"mean hops", "mean latency (ms)"},
	}
	policies := []sim.Policy{
		sim.PolicyNonCoordinated, sim.PolicyCoordinated,
		sim.PolicyLRU, sim.PolicyLFU, sim.PolicySLRU, sim.PolicyTwoQ, sim.PolicyProbCache,
	}
	rows, err := parRows(len(policies), func(i int) ([]string, error) {
		pol := policies[i]
		sc := sim.Scenario{
			Topology:      topology.USA(),
			CatalogSize:   20000,
			ZipfS:         baseS,
			Capacity:      150,
			Policy:        pol,
			Requests:      requests,
			Seed:          13,
			AccessLatency: 5,
			OriginLatency: 60,
			OriginGateway: -1,
		}
		if pol == sim.PolicyCoordinated {
			sc.Coordinated = 75
		}
		if pol != sim.PolicyNonCoordinated && pol != sim.PolicyCoordinated {
			sc.Warmup = requests // dynamic policies need cache warmup
		}
		res, err := runSim(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: policy ablation (%v): %w", pol, err)
		}
		return []string{
			pol.String(),
			fmt.Sprintf("%.4f", res.OriginLoad),
			fmt.Sprintf("%.4f", res.LocalHit),
			fmt.Sprintf("%.4f", res.PeerHit),
			fmt.Sprintf("%.3f", res.MeanHops),
			fmt.Sprintf("%.2f", res.MeanLatency),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// AblationReplicas reruns the headline strategy comparison over
// independently seeded replicas, fanned out on the worker pool, and
// reports each metric as mean ± standard error. One seed per cell is
// enough for the deterministic placements; this table quantifies how
// much of the measured gap is seed noise.
func AblationReplicas(requests, replicas int) (Table, error) {
	if requests < 1000 {
		requests = 1000
	}
	if replicas < 1 {
		replicas = 1
	}
	t := Table{
		ID:    "ablation-replicas",
		Title: fmt.Sprintf("Strategy comparison over %d seeded replicas (US-A, mean ± stderr)", replicas),
		Headers: []string{"policy", "origin load", "±", "mean latency (ms)", "±",
			"peer hit", "±"},
	}
	for _, pol := range []sim.Policy{sim.PolicyNonCoordinated, sim.PolicyCoordinated, sim.PolicyLRU} {
		sc := sim.Scenario{
			Topology:      topology.USA(),
			CatalogSize:   20000,
			ZipfS:         baseS,
			Capacity:      150,
			Policy:        pol,
			Requests:      requests,
			Seed:          47,
			AccessLatency: 5,
			OriginLatency: 60,
			OriginGateway: -1,
		}
		if pol == sim.PolicyCoordinated {
			sc.Coordinated = 75
		}
		if pol == sim.PolicyLRU {
			sc.Warmup = requests
		}
		results, err := RunReplicas(sc, replicas)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: replica ablation (%v): %w", pol, err)
		}
		origin := make([]float64, len(results))
		latency := make([]float64, len(results))
		peer := make([]float64, len(results))
		for i, r := range results {
			origin[i], latency[i], peer[i] = r.OriginLoad, r.MeanLatency, r.PeerHit
		}
		o, l, p := replicaStats(origin), replicaStats(latency), replicaStats(peer)
		t.Rows = append(t.Rows, []string{
			pol.String(),
			fmt.Sprintf("%.4f", o.Mean), fmt.Sprintf("%.4f", o.StdErr),
			fmt.Sprintf("%.2f", l.Mean), fmt.Sprintf("%.2f", l.StdErr),
			fmt.Sprintf("%.4f", p.Mean), fmt.Sprintf("%.4f", p.StdErr),
		})
	}
	return t, nil
}

// AblationSolver quantifies the approximation chain of Section IV: the
// exact convex optimum, the Lemma 2 fixed point (which replaces
// 1+(n-1)l by n*l), and the Theorem 2 closed form (alpha=1 only),
// across network sizes.
func AblationSolver() (Table, error) {
	t := Table{
		ID:    "ablation-solver",
		Title: "Optimal-strategy solvers vs network size (alpha=1, gamma=5, s=0.8)",
		Headers: []string{"n", "exact l*", "fixed point", "closed form",
			"|fp-exact|", "|cf-exact|"},
	}
	for _, n := range []int{5, 10, 20, 50, 100, 200, 500} {
		cfg := figConfig(1, baseGamma, baseS, n, baseUnitCost)
		exact, err := cfg.OptimalLevel()
		if err != nil {
			return Table{}, err
		}
		fp, err := cfg.FixedPointLevel()
		if err != nil {
			return Table{}, err
		}
		cf := model.ClosedFormLevel(baseGamma, n, baseS)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", exact),
			fmt.Sprintf("%.4f", fp),
			fmt.Sprintf("%.4f", cf),
			fmt.Sprintf("%.4f", math.Abs(fp-exact)),
			fmt.Sprintf("%.4f", math.Abs(cf-exact)),
		})
	}
	return t, nil
}

// AblationCoordinator compares the centralized coordinator against the
// tree-distributed variant: identical placements, different message and
// convergence profiles as the network grows.
func AblationCoordinator() (Table, error) {
	t := Table{
		ID:    "ablation-coordinator",
		Title: "Coordinator protocols per epoch (x=100 coordinated slots)",
		Headers: []string{"n", "central msgs", "central conv (ms)",
			"distributed msgs", "distributed conv (ms)"},
	}
	const coordSlots = 100
	for _, n := range []int{4, 16, 64, 256} {
		routers := make([]topology.NodeID, n)
		reports := make([]coord.Report, n)
		for i := range routers {
			routers[i] = topology.NodeID(i)
			reports[i] = coord.Report{Router: routers[i], Counts: map[catalogID]int64{1: 10, 2: 5, 3: 1}}
		}
		central, err := coord.NewCentralized(routers, baseUnitCost)
		if err != nil {
			return Table{}, err
		}
		_, cCost, err := central.RunEpoch(reports, 1, coordSlots)
		if err != nil {
			return Table{}, err
		}
		distributed, err := coord.NewDistributed(routers, baseUnitCost)
		if err != nil {
			return Table{}, err
		}
		_, dCost, err := distributed.RunEpoch(reports, 1, coordSlots)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", cCost.Total()),
			fmt.Sprintf("%.1f", cCost.Convergence),
			fmt.Sprintf("%d", dCost.Total()),
			fmt.Sprintf("%.1f", dCost.Convergence),
		})
	}
	return t, nil
}

// AblationLoss sweeps the fabric loss rate under the coordinated
// placement: the origin load (a placement property) stays flat while
// latency and retransmissions grow — evidence that the provisioning
// decision is robust to transport-level loss, a dimension the paper's
// model abstracts away entirely.
func AblationLoss(requests int) (Table, error) {
	if requests < 1000 {
		requests = 1000
	}
	t := Table{
		ID:    "ablation-loss",
		Title: "Coordinated placement on a lossy fabric (US-A)",
		Headers: []string{"loss rate", "origin load", "mean latency (ms)",
			"p99 latency (ms)", "retransmissions", "drops"},
	}
	losses := []float64{0, 0.05, 0.1, 0.2}
	rows, err := parRows(len(losses), func(i int) ([]string, error) {
		loss := losses[i]
		sc := sim.Scenario{
			Topology:      topology.USA(),
			CatalogSize:   20000,
			ZipfS:         baseS,
			Capacity:      150,
			Coordinated:   75,
			Policy:        sim.PolicyCoordinated,
			Requests:      requests,
			Seed:          17,
			AccessLatency: 5,
			OriginLatency: 60,
			OriginGateway: -1,
			LossRate:      loss,
		}
		if loss > 0 {
			sc.RetxTimeout = 300
		}
		res, err := runSim(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: loss ablation at %v: %w", loss, err)
		}
		return []string{
			fmt.Sprintf("%g", loss),
			fmt.Sprintf("%.4f", res.OriginLoad),
			fmt.Sprintf("%.2f", res.MeanLatency),
			fmt.Sprintf("%.2f", res.LatencyP99),
			fmt.Sprintf("%d", res.Retransmissions),
			fmt.Sprintf("%d", res.DroppedInterests+res.DroppedData),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// AblationCongestion sweeps the offered load against a finite link
// capacity under the coordinated placement. As utilization rises, link
// queueing inflates latency far beyond the model's load-independent
// latency tiers — the congestion regime the analytical model explicitly
// abstracts away.
func AblationCongestion(requests int) (Table, error) {
	if requests < 1000 {
		requests = 1000
	}
	t := Table{
		ID:    "ablation-congestion",
		Title: "Offered load vs finite link capacity (US-A, coordinated, 0.2 contents/ms links)",
		Headers: []string{"mean inter-arrival (ms)", "mean latency (ms)",
			"p99 latency (ms)", "mean queueing (ms)", "queued packets"},
	}
	arrivals := []float64{8, 4, 2, 1}
	rows, err := parRows(len(arrivals), func(i int) ([]string, error) {
		interArrival := arrivals[i]
		res, err := runSim(sim.Scenario{
			Topology:         topology.USA(),
			CatalogSize:      20000,
			ZipfS:            baseS,
			Capacity:         150,
			Coordinated:      75,
			Policy:           sim.PolicyCoordinated,
			Requests:         requests,
			Seed:             23,
			AccessLatency:    5,
			OriginLatency:    60,
			OriginGateway:    -1,
			LinkRate:         0.2,
			MeanInterArrival: interArrival,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: congestion at %v: %w", interArrival, err)
		}
		return []string{
			fmt.Sprintf("%g", interArrival),
			fmt.Sprintf("%.2f", res.MeanLatency),
			fmt.Sprintf("%.2f", res.LatencyP99),
			fmt.Sprintf("%.3f", res.MeanQueueingDelay),
			fmt.Sprintf("%d", res.QueuedPackets),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// MetricVariant validates the paper's Section V-A remark that measuring
// the routing performance by hop count or by pairwise latency yields
// similar results: it computes the optimal strategy with the US-A tier
// gap expressed in hops (Table IV's 2.2842) and in milliseconds (Table
// III's 15.7) across the alpha sweep.
func MetricVariant() (Table, error) {
	t := Table{
		ID:    "metric-variant",
		Title: "Optimal strategy under hop-count vs latency tier gaps (US-A, gamma=5, s=0.8)",
		Headers: []string{"alpha", "l* (d1-d0 in hops)", "l* (d1-d0 in ms)",
			"G_O (hops)", "G_O (ms)"},
	}
	const msGap = 15.7 // Table III US-A d1-d0 in milliseconds
	for _, a := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		hopCfg := figConfig(a, baseGamma, baseS, baseRouters, baseUnitCost)
		msCfg := hopCfg
		msCfg.Lat = model.LatencyFromGamma(1, msGap, baseGamma)
		hopGains, err := hopCfg.OptimalGains()
		if err != nil {
			return Table{}, err
		}
		msGains, err := msCfg.OptimalGains()
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", a),
			fmt.Sprintf("%.4f", hopGains.Level),
			fmt.Sprintf("%.4f", msGains.Level),
			fmt.Sprintf("%.4f", hopGains.OriginReduction),
			fmt.Sprintf("%.4f", msGains.OriginReduction),
		})
	}
	return t, nil
}

// AblationResilience measures how the coordinated placement degrades
// when the network loses its most critical link: the edge whose removal
// (without disconnecting the domain) raises the mean pairwise latency
// the most. Coordinated caching keeps its origin-load advantage — the
// distinct contents remain in the domain — but pays more hops to reach
// them, exactly the trade-off a carrier needs to size for failures.
func AblationResilience(requests int) (Table, error) {
	if requests < 1000 {
		requests = 1000
	}
	intact := topology.USA()
	damaged, removed, err := removeWorstLink(topology.USA())
	if err != nil {
		return Table{}, fmt.Errorf("experiments: resilience: %w", err)
	}
	t := Table{
		ID:    "ablation-resilience",
		Title: fmt.Sprintf("Coordinated placement under failure of link %d-%d (US-A)", removed.A, removed.B),
		Headers: []string{"network", "origin load", "peer hit", "peer hops",
			"mean latency (ms)"},
	}
	cases := []struct {
		name string
		g    *topology.Graph
	}{{"intact", intact}, {"link failed", damaged}}
	rows, err := parRows(len(cases), func(i int) ([]string, error) {
		tc := cases[i]
		res, err := runSim(sim.Scenario{
			Topology:      tc.g,
			CatalogSize:   20000,
			ZipfS:         baseS,
			Capacity:      150,
			Coordinated:   75,
			Policy:        sim.PolicyCoordinated,
			Requests:      requests,
			Seed:          31,
			AccessLatency: 5,
			OriginLatency: 60,
			OriginGateway: -1,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: resilience (%s): %w", tc.name, err)
		}
		return []string{
			tc.name,
			fmt.Sprintf("%.4f", res.OriginLoad),
			fmt.Sprintf("%.4f", res.PeerHit),
			fmt.Sprintf("%.3f", res.PeerHops),
			fmt.Sprintf("%.2f", res.MeanLatency),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// removeWorstLink deletes the connectivity-preserving edge whose removal
// maximizes the mean pairwise latency, returning the damaged graph and
// the removed edge. Each candidate edge costs an all-pairs shortest-path
// computation, so the trials run on the worker pool; the reduction scans
// the per-edge means in edge order, keeping the selection identical to a
// serial scan.
func removeWorstLink(g *topology.Graph) (*topology.Graph, topology.Edge, error) {
	edges := g.EdgeList()
	means, err := par.Map(Workers(), len(edges), func(i int) (float64, error) {
		trial := g.Clone()
		if err := trial.RemoveEdge(edges[i].A, edges[i].B); err != nil {
			return 0, err
		}
		if !trial.Connected() {
			return -1, nil // removal would disconnect the domain
		}
		return trial.ShortestPathsLatency().MeanDist(false), nil
	})
	if err != nil {
		return nil, topology.Edge{}, err
	}
	var worst topology.Edge
	worstMean := -1.0
	for i, mean := range means {
		if mean > worstMean {
			worstMean, worst = mean, edges[i]
		}
	}
	if worstMean < 0 {
		return nil, topology.Edge{}, fmt.Errorf("no removable link keeps the graph connected")
	}
	damaged := g.Clone()
	if err := damaged.RemoveEdge(worst.A, worst.B); err != nil {
		return nil, topology.Edge{}, err
	}
	return damaged, worst, nil
}

// AdaptiveConvergence runs the closed adaptive-provisioning loop on the
// packet simulator: the coordinator starts with a wrong Zipf prior,
// learns from measured per-router reports, and installs placements
// computed from its own estimates. The table tracks the estimate, the
// chosen level, and the resulting origin load per epoch.
func AdaptiveConvergence(requests, epochs int) (Table, error) {
	if requests < 1000 {
		requests = 1000
	}
	if epochs < 2 {
		epochs = 2
	}
	g := topology.USA()
	const trueS = 0.8
	sc := sim.Scenario{
		Topology:      g,
		CatalogSize:   20000,
		ZipfS:         trueS,
		Capacity:      150,
		Requests:      requests,
		Seed:          21,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
	}
	base := model.Config{
		S: 0.5, // deliberately wrong prior
		N: float64(sc.CatalogSize), C: float64(sc.Capacity), Routers: g.N(),
		Lat:      model.LatencyFromGamma(1, baseTierGap, baseGamma),
		UnitCost: baseUnitCost, Alpha: 0.95,
	}
	sc.Tracer = Tracer()
	records, err := sim.AdaptiveRun(sc, base, epochs)
	if err != nil {
		return Table{}, fmt.Errorf("experiments: adaptive convergence: %w", err)
	}
	t := Table{
		ID:    "adaptive",
		Title: fmt.Sprintf("Closed-loop adaptive provisioning (true s=%g, prior 0.5, US-A)", trueS),
		Headers: []string{"epoch", "policy", "estimated s", "level l*",
			"origin load", "coordination msgs"},
	}
	for _, e := range records {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", e.Epoch),
			e.Result.Policy.String(),
			fmt.Sprintf("%.3f", e.EstimatedS),
			fmt.Sprintf("%.3f", e.Level),
			fmt.Sprintf("%.4f", e.Result.OriginLoad),
			fmt.Sprintf("%d", e.Result.CoordMessages),
		})
	}
	return t, nil
}

// AblationRegionalSkew quantifies a real limitation of the paper's
// model: it assumes every router sees the same popularity ranking. Here
// each router's demand is rotated by a region-specific offset (still
// Zipf, but regions disagree on what is hot), while the placement is
// still computed from the global ranking. Both the replicated local set
// and the coordinated band lose precision, so the origin load climbs
// with the skew.
func AblationRegionalSkew(requests int) (Table, error) {
	if requests < 1000 {
		requests = 1000
	}
	t := Table{
		ID:    "ablation-regional",
		Title: "Global placement under regional interest skew (US-A, coordinated)",
		Headers: []string{"max regional offset (ranks)", "origin load",
			"local hit", "peer hit"},
	}
	offsets := []int64{0, 25, 100, 500}
	rows, err := parRows(len(offsets), func(i int) ([]string, error) {
		maxOffset := offsets[i]
		g := topology.USA()
		sc := sim.Scenario{
			Topology:      g,
			CatalogSize:   20000,
			ZipfS:         baseS,
			Capacity:      150,
			Coordinated:   75,
			Policy:        sim.PolicyCoordinated,
			Requests:      requests,
			Seed:          41,
			AccessLatency: 5,
			OriginLatency: 60,
			OriginGateway: -1,
		}
		sc.WorkloadFactory = func(r topology.NodeID) (workload.Generator, error) {
			inner, err := workload.NewZipf(sc.ZipfS, sc.CatalogSize, sim.WorkloadSeed(sc.Seed, int(r)))
			if err != nil {
				return nil, err
			}
			if maxOffset == 0 {
				return inner, nil
			}
			// Spread offsets evenly over [0, maxOffset] across routers.
			offset := maxOffset * int64(r) / int64(g.N()-1)
			return workload.NewRegional(inner, offset, sc.CatalogSize)
		}
		res, err := runSim(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: regional skew %d: %w", maxOffset, err)
		}
		return []string{
			fmt.Sprintf("%d", maxOffset),
			fmt.Sprintf("%.4f", res.OriginLoad),
			fmt.Sprintf("%.4f", res.LocalHit),
			fmt.Sprintf("%.4f", res.PeerHit),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// MeasuredTiers closes the last input loop: instead of assuming the
// model's tiered latencies d0/d1/d2, it measures them per topology from
// the packet simulator's per-tier completion times, derives gamma, and
// re-solves the optimal strategy from purely observed quantities. A
// carrier can therefore provision without any latency assumptions.
func MeasuredTiers(requests int) (Table, error) {
	if requests < 1000 {
		requests = 1000
	}
	t := Table{
		ID:    "measured-tiers",
		Title: "Tiered latencies measured from the packet simulator, and the l* they imply",
		Headers: []string{"topology", "d0 (ms)", "d1 (ms)", "d2 (ms)",
			"gamma", "l* from measurements"},
	}
	graphs := topology.All()
	rows, err := parRows(len(graphs), func(i int) ([]string, error) {
		g := graphs[i]
		res, err := runSim(sim.Scenario{
			Topology:      g,
			CatalogSize:   20000,
			ZipfS:         baseS,
			Capacity:      150,
			Coordinated:   75,
			Policy:        sim.PolicyCoordinated,
			Requests:      requests,
			Seed:          37,
			AccessLatency: 5,
			OriginLatency: 60,
			OriginGateway: -1,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: measured tiers on %s: %w", g.Name(), err)
		}
		tl := res.TierLatency
		cfg := model.Config{
			S: baseS, N: baseContents, C: baseCapacity, Routers: g.N(),
			Lat:          model.Latency{D0: tl.Local, D1: tl.Peer, D2: tl.Origin},
			UnitCost:     baseUnitCost,
			Alpha:        0.8,
			Amortization: baseAmortization,
		}
		level, err := cfg.OptimalLevel()
		if err != nil {
			return nil, fmt.Errorf("experiments: optimizing from measured tiers on %s: %w", g.Name(), err)
		}
		return []string{
			g.Name(),
			fmt.Sprintf("%.2f", tl.Local),
			fmt.Sprintf("%.2f", tl.Peer),
			fmt.Sprintf("%.2f", tl.Origin),
			fmt.Sprintf("%.2f", tl.Gamma()),
			fmt.Sprintf("%.3f", level),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}

// AdaptiveDrift runs the closed adaptive loop against a non-stationary
// workload whose Zipf exponent drifts from 0.6 to 1.4 across the run:
// the coordinator must track the change and re-provision. Rows report
// the estimate trajectory — the hard case for the paper's future-work
// online algorithm, since yesterday's optimal split becomes wrong.
func AdaptiveDrift(requests, epochs int) (Table, error) {
	if requests < 1000 {
		requests = 1000
	}
	if epochs < 3 {
		epochs = 3
	}
	g := topology.USA()
	sc := sim.Scenario{
		Topology:      g,
		CatalogSize:   20000,
		ZipfS:         0.6, // nominal; the factory below overrides
		Capacity:      150,
		Requests:      requests,
		Seed:          29,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
	}
	// Per-router drifting generators persist across epochs: the
	// exponent interpolates over the whole experiment.
	horizon := int64(requests) * int64(epochs) / int64(g.N())
	gens := make(map[topology.NodeID]*workload.DriftingZipf, g.N())
	sc.WorkloadFactory = func(r topology.NodeID) (workload.Generator, error) {
		if gen, ok := gens[r]; ok {
			return gen, nil
		}
		gen, err := workload.NewDriftingZipf(0.6, 1.4, sc.CatalogSize, horizon, 0, 0, 29+int64(r)*101)
		if err != nil {
			return nil, err
		}
		gens[r] = gen
		return gen, nil
	}
	base := model.Config{
		S: 0.6,
		N: float64(sc.CatalogSize), C: float64(sc.Capacity), Routers: g.N(),
		Lat:      model.LatencyFromGamma(1, baseTierGap, baseGamma),
		UnitCost: baseUnitCost, Alpha: 0.95,
	}
	sc.Tracer = Tracer()
	records, err := sim.AdaptiveRun(sc, base, epochs)
	if err != nil {
		return Table{}, fmt.Errorf("experiments: adaptive drift: %w", err)
	}
	t := Table{
		ID:      "adaptive-drift",
		Title:   "Adaptive provisioning under popularity drift (s: 0.6 -> 1.4, US-A)",
		Headers: []string{"epoch", "estimated s", "level l*", "origin load"},
	}
	for _, e := range records {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", e.Epoch),
			fmt.Sprintf("%.3f", e.EstimatedS),
			fmt.Sprintf("%.3f", e.Level),
			fmt.Sprintf("%.4f", e.Result.OriginLoad),
		})
	}
	return t, nil
}

// StabilityAnalysis reports the sensitive alpha range of the optimal
// strategy per gamma — the quantitative version of the paper's Section
// V-B1 stability discussion.
func StabilityAnalysis() (Table, error) {
	t := Table{
		ID:    "stability",
		Title: "Sensitive range of l*(alpha) per gamma (slope >= 50% of peak)",
		Headers: []string{"gamma", "range lo", "range hi", "width",
			"peak alpha", "peak slope"},
	}
	for _, gamma := range []float64{2, 4, 6, 8, 10} {
		cfg := figConfig(0.5, gamma, baseS, baseRouters, baseUnitCost)
		r, err := cfg.FindSensitiveRange(0.5)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: stability at gamma=%v: %w", gamma, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", gamma),
			fmt.Sprintf("%.3f", r.Lo),
			fmt.Sprintf("%.3f", r.Hi),
			fmt.Sprintf("%.3f", r.Width()),
			fmt.Sprintf("%.3f", r.PeakAlpha),
			fmt.Sprintf("%.2f", r.PeakSlope),
		})
	}
	return t, nil
}

// catalogID aliases the catalog rank type for brevity in this file.
type catalogID = catalog.ID
