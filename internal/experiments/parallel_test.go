package experiments

import (
	"reflect"
	"testing"

	"ccncoord/internal/sim"
	"ccncoord/internal/topology"
)

// withWorkers runs fn under a fixed pool width and restores the default.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	fn()
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Errorf("default Workers() = %d, want >= 1", got)
	}
	SetWorkers(-5)
	if got := Workers(); got < 1 {
		t.Errorf("Workers() after negative set = %d, want default >= 1", got)
	}
}

// TestAllFiguresParallelMatchesSerial is the determinism contract of the
// worker pool: every figure of the paper must be identical — exact float
// equality, not tolerance — whether computed serially or fanned out.
func TestAllFiguresParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates all 10 figures twice")
	}
	var serial, parallel []Figure
	withWorkers(t, 1, func() {
		var err error
		if serial, err = AllFigures(); err != nil {
			t.Fatal(err)
		}
	})
	withWorkers(t, 8, func() {
		var err error
		if parallel, err = AllFigures(); err != nil {
			t.Fatal(err)
		}
	})
	if len(serial) != len(parallel) {
		t.Fatalf("serial produced %d figures, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("figure %s differs between serial and parallel runs", serial[i].ID)
		}
	}
}

// TestAblationPolicyParallelMatchesSerial checks the same contract for a
// simulation-backed table: fixed seeds must make the fan-out invisible.
func TestAblationPolicyParallelMatchesSerial(t *testing.T) {
	var serial, parallel Table
	withWorkers(t, 1, func() {
		var err error
		if serial, err = AblationPolicy(1000); err != nil {
			t.Fatal(err)
		}
	})
	withWorkers(t, 8, func() {
		var err error
		if parallel, err = AblationPolicy(1000); err != nil {
			t.Fatal(err)
		}
	})
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("ablation-policy differs between serial and parallel runs:\n%v\nvs\n%v",
			serial.Rows, parallel.Rows)
	}
}

func TestRunReplicas(t *testing.T) {
	sc := sim.Scenario{
		Topology:      topology.USA(),
		CatalogSize:   5000,
		ZipfS:         0.8,
		Capacity:      100,
		Coordinated:   50,
		Policy:        sim.PolicyCoordinated,
		Requests:      1000,
		Seed:          7,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
	}
	results, err := RunReplicas(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	// Replica 0 must be the plain run of the base scenario.
	base, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].OriginLoad != base.OriginLoad || results[0].MeanLatency != base.MeanLatency {
		t.Errorf("replica 0 (%+v) differs from base run (%+v)", results[0], base)
	}
	// Replicas must actually differ (independent seeds).
	if results[1].MeanLatency == results[0].MeanLatency &&
		results[2].MeanLatency == results[0].MeanLatency {
		t.Error("all replicas produced identical latency; seeds not decorrelated")
	}
	if _, err := RunReplicas(sc, 0); err == nil {
		t.Error("RunReplicas with 0 replicas should fail")
	}
}

func TestReplicaStats(t *testing.T) {
	if s := replicaStats(nil); s.Mean != 0 || s.StdErr != 0 {
		t.Errorf("empty stats = %+v", s)
	}
	if s := replicaStats([]float64{4}); s.Mean != 4 || s.StdErr != 0 {
		t.Errorf("single-sample stats = %+v", s)
	}
	s := replicaStats([]float64{1, 2, 3})
	if s.Mean != 2 {
		t.Errorf("mean = %v, want 2", s.Mean)
	}
	// variance = 1, stderr = sqrt(1/3)
	if diff := s.StdErr - 0.5773502691896258; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("stderr = %v", s.StdErr)
	}
}

func TestAblationReplicas(t *testing.T) {
	tab, err := AblationReplicas(1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Headers) {
			t.Errorf("row %v has %d cells, want %d", row, len(row), len(tab.Headers))
		}
	}
}
