package experiments

import (
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"ccncoord/internal/par"
	"ccncoord/internal/sim"
	"ccncoord/internal/trace"
)

// The experiment harness fans independent work units — figure grid
// points, table rows, seeded replicas — across a bounded worker pool.
// Every unit writes only its own pre-assigned result slot, so parallel
// output is byte-identical to a serial run: the pool changes wall-clock
// time, never results.

// workerCount holds the configured pool width; 0 selects
// par.DefaultWorkers (GOMAXPROCS).
var workerCount atomic.Int32

// SetWorkers sets the worker-pool width used by all experiment
// generators. Non-positive restores the default (GOMAXPROCS). Safe to
// call concurrently, though the intent is one call at program start
// (cmd/ccnexp's -workers flag).
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int32(n))
}

// Workers returns the effective worker-pool width.
func Workers() int {
	if n := int(workerCount.Load()); n > 0 {
		return n
	}
	return par.DefaultWorkers()
}

// runShards holds the shard-count override applied to every simulation
// (cmd/ccnexp's -shards flag); 0 leaves each scenario's own setting.
var runShards atomic.Int32

// SetShards overrides Scenario.Shards on every simulation the
// experiment generators run: 1 forces the serial engine, N > 1 requests
// N event-loop shards, and 0 (the default) keeps each scenario's own
// setting — normally the auto rule. Sharding never changes results
// (see sim.Scenario.Shards), so artifacts stay byte-identical across
// shard counts.
func SetShards(n int) {
	if n < 0 {
		n = 0
	}
	runShards.Store(int32(n))
}

// Shards returns the shard-count override set with SetShards (0 = keep
// each scenario's own setting).
func Shards() int { return int(runShards.Load()) }

// runTracer holds the optional tracer shared by every simulation the
// experiment generators run (cmd/ccnexp's -trace flag).
var runTracer atomic.Pointer[trace.Tracer]

// SetTracer attaches a tracer to every simulation run the experiment
// generators perform; nil detaches. Tracing never perturbs results, but
// with a pool width above 1 the sampling stride applies to the
// interleaved event stream of concurrent runs, so the selected events
// (not the results) depend on scheduling — see internal/trace.
func SetTracer(tr *trace.Tracer) { runTracer.Store(tr) }

// Tracer returns the tracer attached with SetTracer, or nil.
func Tracer() *trace.Tracer { return runTracer.Load() }

// Progress is the subset of a live-observability tracker the
// experiment engine drives: one SimStarted/SimFinished pair brackets
// every simulation, from any worker goroutine.
type Progress interface {
	SimStarted()
	SimFinished(requests int64)
}

// progressBox wraps the interface so it can live in an atomic.Pointer.
type progressBox struct{ p Progress }

var runProgress atomic.Pointer[progressBox]

// SetProgress attaches a progress tracker to every simulation the
// experiment generators run (cmd/ccnexp's -http flag); nil detaches.
// Progress ticks are pure observation — they never influence results.
func SetProgress(p Progress) {
	if p == nil {
		runProgress.Store(nil)
		return
	}
	runProgress.Store(&progressBox{p: p})
}

// warnedFallbacks dedupes shard-fallback warnings: an artifact sweep
// runs hundreds of scenarios, and a non-shardable feature would
// otherwise repeat the same warning for every one of them. One line per
// distinct reason is enough for the operator to know the explicit
// -shards N is not being honored everywhere.
var warnedFallbacks sync.Map

// warnShardFallback logs (once per reason) when an explicitly requested
// multi-shard run falls back to the serial engine. Warnings go to
// stderr only, so artifact output stays byte-identical across shard
// settings.
func warnShardFallback(sc sim.Scenario) {
	if sc.Shards < 2 || sc.Topology == nil {
		return
	}
	n, reason := sim.ResolveShardsReason(sc)
	if n > 1 || reason == "" {
		return
	}
	if _, dup := warnedFallbacks.LoadOrStore(reason, struct{}{}); dup {
		return
	}
	fmt.Fprintf(os.Stderr, "ccnexp: warning: -shards %d falls back to the serial engine for some scenarios (%s)\n", sc.Shards, reason)
}

// runSim executes one scenario with the package tracer attached and
// the progress tracker ticked. All experiment generators funnel their
// simulations through here, so one SetTracer call traces every run of
// an artifact sweep.
func runSim(sc sim.Scenario) (sim.Result, error) {
	if sc.Tracer == nil {
		sc.Tracer = Tracer()
	}
	if sc.Shards == 0 {
		sc.Shards = Shards()
	}
	warnShardFallback(sc)
	var prog Progress
	if b := runProgress.Load(); b != nil {
		prog = b.p
		prog.SimStarted()
	}
	res, err := sim.Run(sc)
	if prog != nil {
		prog.SimFinished(int64(res.Requests))
	}
	return res, err
}

// forEach runs fn over [0, n) on the configured pool.
func forEach(n int, fn func(i int) error) error {
	return par.ForEach(Workers(), n, fn)
}

// parRows evaluates n table rows on the pool, in deterministic order.
func parRows(n int, row func(i int) ([]string, error)) ([][]string, error) {
	return par.Map(Workers(), n, row)
}

// sweep fills fig with one series per curve value, evaluating every
// (curve, point) grid cell on the worker pool. Each cell writes only its
// own Y slot, so the resulting figure is identical to a serial fill.
func sweep(fig *Figure, curves []float64, label func(c float64) string, xs []float64,
	eval func(c, x float64) (float64, error)) error {
	fig.Series = make([]Series, len(curves))
	for i, c := range curves {
		fig.Series[i] = Series{
			Label: label(c),
			X:     append([]float64(nil), xs...),
			Y:     make([]float64, len(xs)),
		}
	}
	return forEach(len(curves)*len(xs), func(idx int) error {
		ci, xi := idx/len(xs), idx%len(xs)
		v, err := eval(curves[ci], xs[xi])
		if err != nil {
			return err
		}
		fig.Series[ci].Y[xi] = v
		return nil
	})
}

// ReplicaStats aggregates one metric over independently seeded replicas.
type ReplicaStats struct {
	Mean   float64
	StdErr float64 // standard error of the mean (0 with one replica)
}

// replicaStats reduces per-replica samples in input order, so the result
// does not depend on completion order.
func replicaStats(samples []float64) ReplicaStats {
	n := float64(len(samples))
	if n == 0 {
		return ReplicaStats{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / n
	if len(samples) < 2 {
		return ReplicaStats{Mean: mean}
	}
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	variance := ss / (n - 1)
	return ReplicaStats{Mean: mean, StdErr: math.Sqrt(variance / n)}
}

// RunReplicas executes replicas of sc with decorrelated seeds on the
// worker pool and returns the per-replica results in replica order. The
// scenario's own seed yields replica 0; further replicas derive their
// seeds by mixing the replica index, matching the simulator's per-router
// derivation quality (no two replicas share workload or arrival
// streams).
func RunReplicas(sc sim.Scenario, replicas int) ([]sim.Result, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("experiments: need at least 1 replica, got %d", replicas)
	}
	return par.Map(Workers(), replicas, func(i int) (sim.Result, error) {
		rsc := sc
		if i > 0 {
			rsc.Seed = sim.ReplicaSeed(sc.Seed, i)
		}
		// Clone the topology so parallel replicas never share graph
		// state, whatever the data plane does with it.
		rsc.Topology = sc.Topology.Clone()
		res, err := runSim(rsc)
		if err != nil {
			return sim.Result{}, fmt.Errorf("experiments: replica %d: %w", i, err)
		}
		return res, nil
	})
}
