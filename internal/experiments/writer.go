package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
)

// WriteFigureCSV emits a figure as CSV: the first column is the sweep
// axis, one column per series. All series of a figure share the same
// axis by construction.
func WriteFigureCSV(w io.Writer, f Figure) error {
	if len(f.Series) == 0 {
		return fmt.Errorf("experiments: figure %s has no series", f.ID)
	}
	cw := csv.NewWriter(w)
	header := append([]string{f.XLabel}, labels(f)...)
	if err := cw.Write(header); err != nil {
		return err
	}
	n := len(f.Series[0].X)
	for _, s := range f.Series {
		if len(s.X) != n || len(s.Y) != n {
			return fmt.Errorf("experiments: figure %s series %q has inconsistent length", f.ID, s.Label)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, formatFloat(f.Series[0].X[i]))
		for _, s := range f.Series {
			row = append(row, formatFloat(s.Y[i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// labels returns the series labels of a figure in order.
func labels(f Figure) []string {
	out := make([]string, len(f.Series))
	for i, s := range f.Series {
		out[i] = s.Label
	}
	return out
}

// formatFloat renders a float compactly.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// WriteFigureText renders a figure as an aligned text table for terminal
// inspection.
func WriteFigureText(w io.Writer, f Figure) error {
	if len(f.Series) == 0 {
		return fmt.Errorf("experiments: figure %s has no series", f.ID)
	}
	fmt.Fprintf(w, "# %s: %s\n", strings.ToUpper(f.ID), f.Title)
	fmt.Fprintf(w, "# y: %s\n", f.YLabel)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", f.XLabel)
	for _, l := range labels(f) {
		fmt.Fprintf(tw, "\t%s", l)
	}
	fmt.Fprintln(tw)
	for i := range f.Series[0].X {
		fmt.Fprintf(tw, "%.4g", f.Series[0].X[i])
		for _, s := range f.Series {
			fmt.Fprintf(tw, "\t%.4f", s.Y[i])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteTableText renders a table with aligned columns.
func WriteTableText(w io.Writer, t Table) error {
	fmt.Fprintf(w, "# %s: %s\n", strings.ToUpper(t.ID), t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// WriteTableCSV emits a table as CSV.
func WriteTableCSV(w io.Writer, t Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
