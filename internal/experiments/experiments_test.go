package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// figureByID builds one figure for tests.
func figureByID(t *testing.T, id string) Figure {
	t.Helper()
	builders := map[string]func() (Figure, error){
		"fig4": Fig4, "fig5": Fig5, "fig6": Fig6, "fig7": Fig7,
		"fig8": Fig8, "fig9": Fig9, "fig10": Fig10, "fig11": Fig11,
		"fig12": Fig12, "fig13": Fig13,
	}
	f, err := builders[id]()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return f
}

func TestAllFiguresWellFormed(t *testing.T) {
	figs, err := AllFigures()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 10 {
		t.Fatalf("AllFigures returned %d figures, want 10", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) == 0 {
			t.Errorf("%s: no series", f.ID)
		}
		for _, s := range f.Series {
			if len(s.X) == 0 || len(s.X) != len(s.Y) {
				t.Errorf("%s/%s: malformed series (%d, %d)", f.ID, s.Label, len(s.X), len(s.Y))
			}
			for i, y := range s.Y {
				if math.IsNaN(y) || math.IsInf(y, 0) {
					t.Errorf("%s/%s: non-finite value at %v", f.ID, s.Label, s.X[i])
				}
			}
		}
	}
}

// TestFig4Trends checks Figure 4's published claims: l* increases
// monotonically from ~0 toward 1 in alpha, and a higher gamma gives a
// higher coordination level at the same alpha.
func TestFig4Trends(t *testing.T) {
	f := figureByID(t, "fig4")
	if len(f.Series) != 5 {
		t.Fatalf("fig4 has %d series, want 5 (gamma set)", len(f.Series))
	}
	for _, s := range f.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Errorf("fig4 %s: not monotone at alpha=%v", s.Label, s.X[i])
			}
		}
		if s.Y[0] > 0.05 {
			t.Errorf("fig4 %s: l* at alpha->0 is %v, want ~0", s.Label, s.Y[0])
		}
		if last := s.Y[len(s.Y)-1]; last < 0.5 {
			t.Errorf("fig4 %s: l* at alpha->1 is %v, want large", s.Label, last)
		}
	}
	// gamma ordering at a mid alpha.
	mid := len(f.Series[0].Y) / 2
	for i := 1; i < len(f.Series); i++ {
		if f.Series[i].Y[mid] < f.Series[i-1].Y[mid] {
			t.Errorf("fig4: higher gamma should not lower l* (series %d vs %d)", i, i-1)
		}
	}
}

// TestFig5Trends checks Figure 5: the alpha=1 curve decreases from ~1
// toward ~0.35 over s, s=1 is excluded from the axis, and curves with
// alpha<1 vanish as s->0.
func TestFig5Trends(t *testing.T) {
	f := figureByID(t, "fig5")
	for _, s := range f.Series {
		for _, x := range s.X {
			if math.Abs(x-1) < 0.029 {
				t.Fatalf("fig5 includes the singular point s=%v", x)
			}
		}
	}
	alpha1 := f.Series[len(f.Series)-1]
	if !strings.Contains(alpha1.Label, "alpha=1") {
		t.Fatalf("last series is %q, want alpha=1", alpha1.Label)
	}
	if first := alpha1.Y[0]; first < 0.95 {
		t.Errorf("fig5 alpha=1 at s=0.1: %v, want ~1", first)
	}
	last := alpha1.Y[len(alpha1.Y)-1]
	if last < 0.3 || last > 0.45 {
		t.Errorf("fig5 alpha=1 at s=1.9: %v, want ~0.35 (paper quote)", last)
	}
	alpha02 := f.Series[0]
	if alpha02.Y[0] > 0.05 {
		t.Errorf("fig5 alpha=0.2 at s->0: %v, want ~0", alpha02.Y[0])
	}
	// Interior maximum for alpha<1 located in s ~ [0.4, 1).
	maxI := 0
	for i, y := range alpha02.Y {
		if y > alpha02.Y[maxI] {
			maxI = i
		}
	}
	if s := alpha02.X[maxI]; s < 0.4 || s >= 1 {
		t.Errorf("fig5 alpha=0.2 peaks at s=%v, want in [0.4, 1)", s)
	}
}

// TestFig6Trends: l* decreases with network size (coordination cost
// grows), and larger alpha keeps it higher.
func TestFig6Trends(t *testing.T) {
	f := figureByID(t, "fig6")
	for _, s := range f.Series {
		if strings.Contains(s.Label, "alpha=1") {
			continue // no cost term: n only helps coordination
		}
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last >= first {
			t.Errorf("fig6 %s: l* grew with n (%v -> %v)", s.Label, first, last)
		}
	}
	mid := len(f.Series[0].Y) / 2
	for i := 1; i < len(f.Series); i++ {
		if f.Series[i].Y[mid] < f.Series[i-1].Y[mid]-1e-9 {
			t.Errorf("fig6: higher alpha should not lower l*")
		}
	}
}

// TestFig7Trends: for small alpha l* falls sharply as w grows; at
// alpha=1 it is constant near 1.
func TestFig7Trends(t *testing.T) {
	f := figureByID(t, "fig7")
	for _, s := range f.Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		switch {
		case strings.Contains(s.Label, "alpha=1"):
			if math.Abs(first-last) > 1e-9 {
				t.Errorf("fig7 alpha=1: not constant (%v vs %v)", first, last)
			}
			if first < 0.9 {
				t.Errorf("fig7 alpha=1: l* = %v, want close to 1", first)
			}
		case strings.Contains(s.Label, "alpha=0.2"):
			if last > first/2 {
				t.Errorf("fig7 alpha=0.2: expected sharp decrease, got %v -> %v", first, last)
			}
		}
	}
}

// TestFig8Fig12Trends: both gains grow with alpha and with gamma.
func TestFig8Fig12Trends(t *testing.T) {
	for _, id := range []string{"fig8", "fig12"} {
		f := figureByID(t, id)
		for _, s := range f.Series {
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1]-1e-9 {
					t.Errorf("%s %s: gain not monotone in alpha at %v", id, s.Label, s.X[i])
				}
			}
		}
		mid := len(f.Series[0].Y) * 3 / 4
		for i := 1; i < len(f.Series); i++ {
			if f.Series[i].Y[mid] < f.Series[i-1].Y[mid]-1e-9 {
				t.Errorf("%s: higher gamma should not lower the gain", id)
			}
		}
	}
}

// TestFig12PaperQuote: the paper reports 60-90% routing improvement for
// alpha >= 0.5 and gamma >= 8. With Table IV's literal N=1e6 and c=1e3
// the whole network caches at most n*c = 2e4 contents (2% of the
// catalog), which caps G_R near 0.2-0.45 — the quoted levels require
// in-network coverage comparable to N (see EXPERIMENTS.md). This test
// asserts the reproducible part: for alpha >= 0.5 and gamma >= 8 the
// improvement is substantial and strictly above the gamma=2 curve.
func TestFig12PaperQuote(t *testing.T) {
	f := figureByID(t, "fig12")
	gamma2 := f.Series[0]
	if !strings.Contains(gamma2.Label, "gamma=2") {
		t.Fatalf("first series is %q, want gamma=2", gamma2.Label)
	}
	for _, s := range f.Series {
		if !strings.Contains(s.Label, "gamma=8") && !strings.Contains(s.Label, "gamma=10") {
			continue
		}
		for i, x := range s.X {
			if x < 0.5 {
				continue
			}
			if s.Y[i] < 0.15 {
				t.Errorf("fig12 %s at alpha=%v: G_R = %v, want substantial", s.Label, x, s.Y[i])
			}
			if s.Y[i] <= gamma2.Y[i] {
				t.Errorf("fig12 %s at alpha=%v: G_R %v not above gamma=2's %v", s.Label, x, s.Y[i], gamma2.Y[i])
			}
		}
	}
}

// TestFig13Trends: G_R peaks near s=1 and falls toward both ends.
func TestFig13Trends(t *testing.T) {
	f := figureByID(t, "fig13")
	alpha1 := f.Series[len(f.Series)-1]
	maxI := 0
	for i, y := range alpha1.Y {
		if y > alpha1.Y[maxI] {
			maxI = i
		}
	}
	if s := alpha1.X[maxI]; s < 0.7 || s > 1.3 {
		t.Errorf("fig13 alpha=1 peaks at s=%v, want near 1", s)
	}
	if alpha1.Y[0] >= alpha1.Y[maxI] || alpha1.Y[len(alpha1.Y)-1] >= alpha1.Y[maxI] {
		t.Error("fig13: endpoints should be below the peak")
	}
}

// TestFig9PaperQuote: the paper reports that for relatively smaller
// alpha, G_O is maximal around s = 1.3 — which reproduces: the
// alpha=0.2 curve peaks at s ~ 1.2-1.3. For alpha = 1 the peak slides
// deeper into the s > 1 regime (measured ~1.85; recorded in
// EXPERIMENTS.md).
func TestFig9PaperQuote(t *testing.T) {
	f := figureByID(t, "fig9")
	for _, s := range f.Series {
		maxI := 0
		for i, y := range s.Y {
			if y > s.Y[maxI] {
				maxI = i
			}
		}
		peakS := s.X[maxI]
		switch {
		case strings.Contains(s.Label, "alpha=0.2"):
			if peakS < 1.0 || peakS > 1.5 {
				t.Errorf("fig9 %s: G_O peaks at s=%v, paper says ~1.3", s.Label, peakS)
			}
		case strings.Contains(s.Label, "alpha=1"):
			if peakS <= 1 {
				t.Errorf("fig9 %s: G_O peaks at s=%v, want in the s>1 regime", s.Label, peakS)
			}
		}
		// Every curve's peak dominates its own sub-1 region, as in the
		// paper's figure.
		for i, x := range s.X {
			if x < 1 && s.Y[i] >= s.Y[maxI] {
				t.Errorf("fig9 %s: G_O at s=%v not below the peak", s.Label, x)
			}
		}
	}
}

func TestTableI(t *testing.T) {
	tab, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Table I has %d rows, want 3", len(tab.Rows))
	}
	// Measured values must equal the paper's: 33%/0%, 0.67/0.50, 0/1.
	if tab.Rows[0][1] != "33%" || tab.Rows[0][2] != "0%" {
		t.Errorf("origin load row = %v", tab.Rows[0])
	}
	if tab.Rows[1][1] != "0.67" || tab.Rows[1][2] != "0.50" {
		t.Errorf("hop count row = %v", tab.Rows[1])
	}
	if tab.Rows[2][1] != "0" || tab.Rows[2][2] != "1" {
		t.Errorf("coordination cost row = %v", tab.Rows[2])
	}
}

func TestTableII(t *testing.T) {
	tab := TableII()
	if len(tab.Rows) != 4 {
		t.Fatalf("Table II has %d rows, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[1] != row[5] || row[2] != row[6] {
			t.Errorf("topology %s: sizes %s/%s do not match paper %s/%s", row[0], row[1], row[2], row[5], row[6])
		}
	}
}

func TestTableIII(t *testing.T) {
	tab, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Table III has %d rows, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] != row[5] || row[3] != row[6] {
			t.Errorf("topology %s: calibrated w/ms %s/%s differ from paper %s/%s",
				row[0], row[2], row[3], row[5], row[6])
		}
	}
}

func TestTableIV(t *testing.T) {
	tab := TableIV()
	if len(tab.Rows) < 8 {
		t.Errorf("Table IV has %d rows", len(tab.Rows))
	}
}

func TestModelVsSim(t *testing.T) {
	tab, err := ModelVsSim(40000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("ModelVsSim has %d rows, want 4", len(tab.Rows))
	}
	// The last column is the max absolute error; it must be small.
	for _, row := range tab.Rows {
		maxErr, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatalf("parsing max err %q: %v", row[len(row)-1], err)
		}
		if maxErr > 0.02 {
			t.Errorf("%s: model-sim deviation %v exceeds 2%%", row[0], maxErr)
		}
	}
}
