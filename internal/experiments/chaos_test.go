package experiments

import (
	"reflect"
	"testing"

	"ccncoord/internal/fault"
)

func TestChaosResilienceTable(t *testing.T) {
	tab, err := ChaosResilience(6000)
	if err != nil {
		t.Fatal(err)
	}
	presets := fault.ChaosPresets()
	if len(tab.Rows) != len(presets) {
		t.Fatalf("rows = %d, want one per preset (%d)", len(tab.Rows), len(presets))
	}
	for i, row := range tab.Rows {
		if row[0] != presets[i] {
			t.Errorf("row %d is %q, want preset %q", i, row[0], presets[i])
		}
		if len(row) != len(tab.Headers) {
			t.Errorf("row %q has %d cells, want %d", row[0], len(row), len(tab.Headers))
		}
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	// The blip never degrades; the crash does.
	if blip := byName["coord-blip"]; parseF(t, blip[4]) != 0 {
		t.Errorf("coord-blip degraded for %s ms, want 0", blip[4])
	}
	if crash := byName["coord-crash"]; parseF(t, crash[4]) <= 0 {
		t.Errorf("coord-crash degraded for %s ms, want > 0", crash[4])
	}
	// Every scenario keeps availability in (0, 1].
	for _, r := range tab.Rows {
		if avail := parseF(t, r[1]); avail <= 0 || avail > 1 {
			t.Errorf("%s availability %v out of range", r[0], avail)
		}
	}
}

func TestChaosResilienceDeterministicAcrossWorkers(t *testing.T) {
	// The chaos artifact must be byte-identical at every worker-pool
	// width (ISSUE acceptance): each preset's run owns a private chaos
	// timeline and RNG streams, so parallelism cannot leak in.
	prev := Workers()
	defer SetWorkers(prev)
	SetWorkers(1)
	serial, err := ChaosResilience(6000)
	if err != nil {
		t.Fatal(err)
	}
	SetWorkers(4)
	wide, err := ChaosResilience(6000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("chaos table differs across worker widths:\n%v\nvs\n%v", serial.Rows, wide.Rows)
	}
}
