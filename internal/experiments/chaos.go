package experiments

import (
	"fmt"

	"ccncoord/internal/fault"
	"ccncoord/internal/sim"
	"ccncoord/internal/topology"
)

// ChaosResilience runs every built-in chaos preset against the
// coordinated placement on Abilene and reports how the system survives
// it: availability, coordinator downtime, time spent degraded, the
// hit rate while degraded vs overall, stale-placement traffic, overlay
// serves, and re-convergence cost. Each preset is one deterministic
// run (fixed seed, private chaos timeline), so the table is
// byte-identical at every worker-pool width — the chaos counterpart of
// the validation-spans artifact.
func ChaosResilience(requests int) (Table, error) {
	if requests < 5000 {
		requests = 5000
	}
	t := Table{
		ID:    "chaos",
		Title: "Chaos resilience: coordinated placement under composed failure scenarios (Abilene)",
		Headers: []string{"scenario", "avail", "failed", "coord down(ms)", "degraded(ms)",
			"hit(degraded)", "hit(overall)", "stale fwd", "overlay serves", "reconverge moves", "TTR(ms)"},
	}
	presets := fault.ChaosPresets()
	rows, err := parRows(len(presets), func(i int) ([]string, error) {
		name := presets[i]
		chaos, err := fault.ChaosPreset(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos: %w", err)
		}
		res, err := runSim(sim.Scenario{
			Topology:      topology.Abilene(),
			CatalogSize:   20000,
			ZipfS:         baseS,
			Capacity:      150,
			Coordinated:   75,
			Policy:        sim.PolicyCoordinated,
			Requests:      requests,
			Seed:          42,
			AccessLatency: 5,
			OriginLatency: 60,
			OriginGateway: -1,
			RetxTimeout:   300,
			Chaos:         chaos,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos (%s): %w", name, err)
		}
		degradedHit := 0.0
		if res.DegradedRequests > 0 {
			degradedHit = 1 - res.DegradedOriginLoad
		}
		return []string{
			name,
			fmt.Sprintf("%.4f", res.Availability),
			fmt.Sprintf("%d", res.FailedRequests),
			fmt.Sprintf("%.0f", res.CoordDowntime),
			fmt.Sprintf("%.0f", res.DegradedTime),
			fmt.Sprintf("%.4f", degradedHit),
			fmt.Sprintf("%.4f", 1-res.OriginLoad),
			fmt.Sprintf("%d", res.StalePlacementHits),
			fmt.Sprintf("%d", res.DegradedServes),
			fmt.Sprintf("%d", res.ReconvergeMoves),
			fmt.Sprintf("%.0f", res.MeanTimeToReconverge),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}
