package experiments

import (
	"fmt"
	"math"

	"ccncoord/internal/model"
	"ccncoord/internal/sim"
	"ccncoord/internal/topology"
)

// TableI reproduces the motivating example's comparison (Section II) by
// running both strategies on the packet-level simulator.
func TableI() (Table, error) {
	cmp, err := sim.MotivatingExample(100)
	if err != nil {
		return Table{}, fmt.Errorf("experiments: table I: %w", err)
	}
	return Table{
		ID:      "table1",
		Title:   "Comparing the coordinated and non-coordinated strategies",
		Headers: []string{"Metric", "Non-coordinated caching", "Coordinated caching", "Paper (non-coord)", "Paper (coord)"},
		Rows: [][]string{
			{"Load on origin",
				fmt.Sprintf("%.0f%%", 100*cmp.NonCoordinated.OriginLoad),
				fmt.Sprintf("%.0f%%", 100*cmp.Coordinated.OriginLoad),
				"33%", "0%"},
			{"Routing hop count",
				fmt.Sprintf("%.2f", cmp.NonCoordinated.MeanHops),
				fmt.Sprintf("%.2f", cmp.Coordinated.MeanHops),
				"~0.67", "0.5"},
			{"Coordination cost",
				fmt.Sprintf("%d", cmp.NonCoordinated.CoordMessages),
				fmt.Sprintf("%d", cmp.Coordinated.CoordMessages),
				"0", "1"},
		},
	}, nil
}

// TableII reproduces the topology statistics table.
func TableII() Table {
	t := Table{
		ID:      "table2",
		Title:   "Topologies used in evaluations",
		Headers: []string{"Topology", "|V|", "|E|", "Region", "Type", "Paper |V|", "Paper |E|"},
	}
	for _, g := range topology.All() {
		paper := topology.PaperTable2[g.Name()]
		t.Rows = append(t.Rows, []string{
			g.Name(),
			fmt.Sprintf("%d", g.N()),
			fmt.Sprintf("%d", g.DirectedEdgeCount()),
			paper.Region, paper.Type,
			fmt.Sprintf("%d", paper.V),
			fmt.Sprintf("%d", paper.E),
		})
	}
	return t
}

// TableIII reproduces the topological-parameters table, extracted from
// the datasets side by side with the paper's published values.
func TableIII() (Table, error) {
	t := Table{
		ID:    "table3",
		Title: "Topological parameters",
		Headers: []string{"Topology", "n", "w (ms)", "d1-d0 (ms)", "d1-d0 (hops)",
			"paper w", "paper ms", "paper hops"},
	}
	for _, g := range topology.All() {
		p, err := topology.ExtractParams(g)
		if err != nil {
			return Table{}, fmt.Errorf("experiments: table III: %w", err)
		}
		paper := topology.PaperTable3[g.Name()]
		t.Rows = append(t.Rows, []string{
			p.Name,
			fmt.Sprintf("%d", p.N),
			fmt.Sprintf("%.1f", p.UnitCost),
			fmt.Sprintf("%.1f", p.TierGapMs),
			fmt.Sprintf("%.4f", p.TierGapHops),
			fmt.Sprintf("%.1f", paper.UnitCost),
			fmt.Sprintf("%.1f", paper.TierGapMs),
			fmt.Sprintf("%.4f", paper.TierGapHops),
		})
	}
	return t, nil
}

// TableIV prints the parameter settings used by the figure sweeps
// (the paper's Table IV, US-A row).
func TableIV() Table {
	return Table{
		ID:      "table4",
		Title:   "System parameters used in analysis (Table IV base point)",
		Headers: []string{"Parameter", "Value", "Swept in"},
		Rows: [][]string{
			{"alpha", "(0,1)", "Figures 4, 8, 12 (axis); rows elsewhere"},
			{"gamma", fmt.Sprintf("%g", baseGamma), "Figures 4, 8, 12 (curves: 2,4,6,8,10)"},
			{"s", fmt.Sprintf("%g", baseS), "Figures 5, 9, 13 (axis)"},
			{"n", fmt.Sprintf("%d", baseRouters), "Figures 6, 10 (axis: 10~500)"},
			{"N", fmt.Sprintf("%.0e", float64(baseContents)), "-"},
			{"c", fmt.Sprintf("%.0e", float64(baseCapacity)), "-"},
			{"w (ms)", fmt.Sprintf("%g", baseUnitCost), "Figures 7, 11 (axis: 10~100)"},
			{"d1-d0 (hops)", fmt.Sprintf("%g", baseTierGap), "-"},
			{"amortization rho", fmt.Sprintf("%.0e", float64(baseAmortization)), "see DESIGN.md section 4"},
		},
	}
}

// validationTopologies limits the model-vs-simulation experiment to a
// catalog/capacity scale the packet simulator handles quickly.
type validationCase struct {
	graph       *topology.Graph
	catalogSize int64
	capacity    int64
	coordinated int64
	s           float64
}

// ModelVsSim is this repository's own validation experiment: for each
// evaluation topology, run the packet-level simulator with the
// coordinated placement and compare its measured origin load and tier
// hit ratios against the discrete analytical model.
func ModelVsSim(requests int) (Table, error) {
	if requests < 1000 {
		requests = 1000
	}
	t := Table{
		ID:    "modelvssim",
		Title: "Packet simulation vs analytical model (coordinated placement)",
		Headers: []string{"Topology", "origin(sim)", "origin(model)", "local(sim)", "local(model+slice)",
			"peer(sim)", "peer(model-slice)", "max|err|"},
	}
	graphs := topology.All()
	rows, err := parRows(len(graphs), func(i int) ([]string, error) {
		g := graphs[i]
		vc := validationCase{graph: g, catalogSize: 20000, capacity: 150, coordinated: 75, s: baseS}
		sc := sim.Scenario{
			Topology:      vc.graph,
			CatalogSize:   vc.catalogSize,
			ZipfS:         vc.s,
			Capacity:      vc.capacity,
			Coordinated:   vc.coordinated,
			Policy:        sim.PolicyCoordinated,
			Requests:      requests,
			Seed:          42,
			AccessLatency: 5,
			OriginLatency: 60,
			OriginGateway: -1,
		}
		res, err := runSim(sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: model-vs-sim on %s: %w", g.Name(), err)
		}
		cfg := model.Config{
			S: vc.s, N: float64(vc.catalogSize), C: float64(vc.capacity),
			Routers: g.N(), Lat: model.Latency{D0: 1, D1: 2, D2: 3}, Alpha: 1,
		}
		d, err := model.NewDiscrete(cfg)
		if err != nil {
			return nil, err
		}
		local, peer, origin := d.HitRatios(vc.coordinated)
		// The model counts a router's own coordinated slice as peer; the
		// simulator correctly serves it locally. Shift the slice for an
		// apples-to-apples comparison.
		slice := peer / float64(g.N())
		mLocal, mPeer := local+slice, peer-slice
		maxErr := math.Max(math.Abs(res.OriginLoad-origin),
			math.Max(math.Abs(res.LocalHit-mLocal), math.Abs(res.PeerHit-mPeer)))
		return []string{
			g.Name(),
			fmt.Sprintf("%.4f", res.OriginLoad),
			fmt.Sprintf("%.4f", origin),
			fmt.Sprintf("%.4f", res.LocalHit),
			fmt.Sprintf("%.4f", mLocal),
			fmt.Sprintf("%.4f", res.PeerHit),
			fmt.Sprintf("%.4f", mPeer),
			fmt.Sprintf("%.4f", maxErr),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	t.Rows = rows
	return t, nil
}
