package experiments

import (
	"bytes"
	"fmt"

	"ccncoord/internal/sim"
	"ccncoord/internal/spans"
	"ccncoord/internal/topology"
	"ccncoord/internal/trace"
)

// ValidationSpans is the span-level validation experiment: each
// evaluation topology runs the coordinated scenario under a private
// stride-1 tracer, the trace is reconstructed into per-request spans,
// and the spans are aggregated over the model's own popularity-rank
// bands — [1, c-x] cached everywhere, (c-x, c+(n-1)x] coordinated in
// the domain, the rest at the origin — so the measured per-band hit
// probabilities and hop counts sit directly against the analytical
// prediction, with the mean latency decomposition alongside.
//
// The tracer is deliberately private and per-run (never the shared
// SetTracer one): the artifact's bytes depend only on the scenario, so
// the table is identical at every worker-pool width and diffable with
// ccnbench -diff.
func ValidationSpans(requests int) (Table, error) {
	if requests < 1000 {
		requests = 1000
	}
	t := Table{
		ID:    "validation-spans",
		Title: "Span-level validation: measured per-rank-band behavior vs analytical bands (coordinated placement)",
		Headers: []string{"Topology", "band", "ranks", "spans",
			"local(sim)", "local(model)", "peer(sim)", "peer(model)", "origin(sim)", "origin(model)",
			"hops(sim)", "hops(model)", "access(ms)", "prop(ms)", "retx(ms)", "originsvc(ms)", "aggwait(ms)"},
	}
	graphs := topology.All()
	perGraph, err := parRows(len(graphs), func(i int) ([]string, error) {
		rows, err := spanRowsFor(graphs[i], requests)
		if err != nil {
			return nil, err
		}
		return flattenRows(rows), nil
	})
	if err != nil {
		return Table{}, err
	}
	for _, flat := range perGraph {
		t.Rows = append(t.Rows, unflattenRows(flat, len(t.Headers))...)
	}
	return t, nil
}

// flattenRows/unflattenRows pack a topology's row group through the
// one-slot-per-unit parRows contract without losing determinism.
func flattenRows(rows [][]string) []string {
	var flat []string
	for _, r := range rows {
		flat = append(flat, r...)
	}
	return flat
}

func unflattenRows(flat []string, width int) [][]string {
	var rows [][]string
	for i := 0; i+width <= len(flat); i += width {
		rows = append(rows, flat[i:i+width])
	}
	return rows
}

// spanRowsFor runs one topology's traced scenario and renders its band
// rows.
func spanRowsFor(g *topology.Graph, requests int) ([][]string, error) {
	const (
		catalogSize = int64(20000)
		capacity    = int64(150)
		coordinated = int64(75)
	)
	var buf bytes.Buffer
	tr, err := trace.New(&buf, 1)
	if err != nil {
		return nil, err
	}
	sc := sim.Scenario{
		Topology:      g.Clone(),
		CatalogSize:   catalogSize,
		ZipfS:         baseS,
		Capacity:      capacity,
		Coordinated:   coordinated,
		Policy:        sim.PolicyCoordinated,
		Requests:      requests,
		Seed:          42,
		AccessLatency: 5,
		OriginLatency: 60,
		OriginGateway: -1,
		Tracer:        tr,
	}
	// runSim only attaches the shared tracer when none is set; the
	// private stride-1 tracer above therefore always wins, keeping the
	// artifact schedule-independent while progress still ticks.
	res, err := runSim(sc)
	if err != nil {
		return nil, fmt.Errorf("experiments: validation-spans on %s: %w", g.Name(), err)
	}
	if err := tr.Flush(); err != nil {
		return nil, err
	}
	set, err := spans.Read(&buf)
	if err != nil {
		return nil, fmt.Errorf("experiments: validation-spans on %s: %w", g.Name(), err)
	}
	// Reconstruction must be exhaustive at stride 1: every measured
	// request becomes exactly one complete span.
	if len(set.Spans) != res.Requests || set.Incomplete != 0 {
		return nil, fmt.Errorf("experiments: validation-spans on %s: %d spans (%d incomplete) from %d requests",
			g.Name(), len(set.Spans), set.Incomplete, res.Requests)
	}

	n := g.N()
	p, err := topology.ExtractParams(g)
	if err != nil {
		return nil, err
	}
	// The model's deterministic rank bands at allocation x.
	e1 := capacity - coordinated
	e2 := capacity + int64(n-1)*coordinated
	edges := []int64{e1, e2, catalogSize}
	buckets := spans.Buckets(set, edges)
	decomp := bandDecomposition(set, edges)

	frac := 1 / float64(n) // the requester's own coordinated slice
	bands := []struct {
		name                string
		local, peer, origin float64
		hops                float64
	}{
		{"cached", 1, 0, 0, 0},
		{"domain", frac, 1 - frac, 0, p.TierGapHops * (1 - frac)},
		{"origin", 0, 0, 1, 1}, // uniform uplink: one origin hop
	}
	var rows [][]string
	for i, b := range buckets {
		if i >= len(bands) {
			break // overflow bucket cannot occur: edges cover the catalog
		}
		m := bands[i]
		d := decomp[i]
		rows = append(rows, []string{
			g.Name(), m.name, fmt.Sprintf("%d-%d", b.Lo, b.Hi), fmt.Sprintf("%d", b.Requests),
			fmt.Sprintf("%.4f", b.LocalRatio()), fmt.Sprintf("%.4f", m.local),
			fmt.Sprintf("%.4f", b.PeerRatio()), fmt.Sprintf("%.4f", m.peer),
			fmt.Sprintf("%.4f", b.OriginRatio()), fmt.Sprintf("%.4f", m.origin),
			fmt.Sprintf("%.2f", b.MeanHops()), fmt.Sprintf("%.2f", m.hops),
			fmt.Sprintf("%.2f", d.access), fmt.Sprintf("%.2f", d.prop),
			fmt.Sprintf("%.2f", d.retx), fmt.Sprintf("%.2f", d.origin),
			fmt.Sprintf("%.2f", d.agg),
		})
	}
	return rows, nil
}

// bandDecomposition averages the latency decomposition of the set's
// spans per rank band (same inclusive upper edges as spans.Buckets).
type bandMeans struct {
	access, prop, retx, origin, agg float64
}

func bandDecomposition(set *spans.Set, edges []int64) []bandMeans {
	sums := make([]bandMeans, len(edges))
	counts := make([]int64, len(edges))
	for i := range set.Spans {
		sp := &set.Spans[i]
		idx := len(edges) - 1
		for j, hi := range edges {
			if sp.Content <= hi {
				idx = j
				break
			}
		}
		counts[idx]++
		sums[idx].access += sp.AccessMs
		sums[idx].prop += sp.PropagationMs
		sums[idx].retx += sp.RetxBackoffMs
		sums[idx].origin += sp.OriginSvcMs
		sums[idx].agg += sp.AggWaitMs
	}
	for i := range sums {
		if counts[i] == 0 {
			continue
		}
		f := 1 / float64(counts[i])
		sums[i].access *= f
		sums[i].prop *= f
		sums[i].retx *= f
		sums[i].origin *= f
		sums[i].agg *= f
	}
	return sums
}
