// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V): the motivating-example comparison (Table I),
// the topology statistics (Tables II and III), the parameter settings
// (Table IV), the optimal-strategy sweeps (Figures 4-7), and the
// performance-gain sweeps (Figures 8-13), plus this repository's own
// model-versus-simulation validation experiment. Results are structured
// Series/Table values with CSV and aligned-text writers.
package experiments

import (
	"fmt"

	"ccncoord/internal/model"
	"ccncoord/internal/par"
)

// Series is one labeled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a reproducible paper figure: a family of curves over a
// common sweep axis.
type Figure struct {
	ID     string // e.g. "fig4"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Table is a reproducible paper table.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
}

// Table IV base settings (the US-A row used for all figures).
const (
	baseContents = 1e6    // N
	baseCapacity = 1e3    // c
	baseRouters  = 20     // n
	baseUnitCost = 26.7   // w, ms
	baseTierGap  = 2.2842 // d1-d0, hops
	baseGamma    = 5.0
	baseS        = 0.8
	// baseAmortization is the coordination-cost amortization rho used by
	// the figure harness: one coordination epoch per catalog-volume of
	// requests (rho = N). See DESIGN.md section 4 for why the paper's
	// literal Eq. (3) cost scale cannot reproduce its own figures and how
	// this normalization preserves every swept dependence.
	baseAmortization = baseContents
)

// figConfig assembles a model configuration from the Table IV base point
// with the given overrides.
func figConfig(alpha, gamma, s float64, n int, w float64) model.Config {
	return model.Config{
		S:            s,
		N:            baseContents,
		C:            baseCapacity,
		Routers:      n,
		Lat:          model.LatencyFromGamma(1, baseTierGap, gamma),
		UnitCost:     w,
		Alpha:        alpha,
		Amortization: baseAmortization,
	}
}

// metric selects which quantity a sweep reports at the optimum.
type metric int

const (
	metricLevel metric = iota // l*
	metricOriginGain
	metricRoutingGain
)

// evalAt returns the chosen metric at the optimal allocation of cfg.
func evalAt(cfg model.Config, m metric) (float64, error) {
	g, err := cfg.OptimalGains()
	if err != nil {
		return 0, err
	}
	switch m {
	case metricLevel:
		return g.Level, nil
	case metricOriginGain:
		return g.OriginReduction, nil
	case metricRoutingGain:
		return g.RoutingGain, nil
	default:
		return 0, fmt.Errorf("experiments: unknown metric %d", m)
	}
}

// alphaGrid is the alpha sweep axis of Figures 4, 8 and 12 (open
// interval (0,1) per Table IV).
func alphaGrid() []float64 {
	var xs []float64
	for a := 0.02; a < 0.999; a += 0.02 {
		xs = append(xs, a)
	}
	return xs
}

// sGrid is the Zipf-exponent axis of Figures 5, 9 and 13:
// [0.1,1) U (1,1.9], skipping the singular point.
func sGrid() []float64 {
	var xs []float64
	for s := 0.1; s <= 1.91; s += 0.05 {
		v := roundTo(s, 1e-9)
		if v > 0.97 && v < 1.03 {
			continue
		}
		if v > 1.9 {
			break
		}
		xs = append(xs, v)
	}
	return xs
}

// roundTo quantizes accumulated floating-point sweep steps.
func roundTo(v, q float64) float64 {
	steps := int64(v/q + 0.5)
	return float64(steps) * q
}

// alphaRows is the per-curve alpha set of Figures 5-7 and 9-13
// ([0.2, 1] per Table IV).
var alphaRows = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// nGrid is the network-size axis of Figures 6 and 10 (10 ~ 500).
func nGrid() []float64 {
	var xs []float64
	for n := 10; n <= 500; n += 10 {
		xs = append(xs, float64(n))
	}
	return xs
}

// wGrid is the unit-cost axis of Figures 7 and 11 (10 ~ 100 ms).
func wGrid() []float64 {
	var xs []float64
	for w := 10.0; w <= 100.0; w += 5 {
		xs = append(xs, w)
	}
	return xs
}

// sweepAlpha builds the Figure 4/8/12 family: metric vs alpha, one curve
// per gamma in {2,4,6,8,10}.
func sweepAlpha(id, title, ylabel string, m metric) (Figure, error) {
	fig := Figure{ID: id, Title: title, XLabel: "trade-off weight alpha", YLabel: ylabel}
	err := sweep(&fig,
		[]float64{2, 4, 6, 8, 10},
		func(gamma float64) string { return fmt.Sprintf("gamma=%g", gamma) },
		alphaGrid(),
		func(gamma, a float64) (float64, error) {
			v, err := evalAt(figConfig(a, gamma, baseS, baseRouters, baseUnitCost), m)
			if err != nil {
				return 0, fmt.Errorf("experiments: %s at alpha=%v gamma=%v: %w", id, a, gamma, err)
			}
			return v, nil
		})
	if err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// sweepS builds the Figure 5/9/13 family: metric vs Zipf exponent, one
// curve per alpha.
func sweepS(id, title, ylabel string, m metric) (Figure, error) {
	fig := Figure{ID: id, Title: title, XLabel: "Zipf exponent s", YLabel: ylabel}
	err := sweep(&fig,
		alphaRows,
		func(a float64) string { return fmt.Sprintf("alpha=%g", a) },
		sGrid(),
		func(a, sv float64) (float64, error) {
			v, err := evalAt(figConfig(a, baseGamma, sv, baseRouters, baseUnitCost), m)
			if err != nil {
				return 0, fmt.Errorf("experiments: %s at s=%v alpha=%v: %w", id, sv, a, err)
			}
			return v, nil
		})
	if err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// sweepN builds the Figure 6/10 family: metric vs router count.
func sweepN(id, title, ylabel string, m metric) (Figure, error) {
	fig := Figure{ID: id, Title: title, XLabel: "number of routers n", YLabel: ylabel}
	err := sweep(&fig,
		alphaRows,
		func(a float64) string { return fmt.Sprintf("alpha=%g", a) },
		nGrid(),
		func(a, nv float64) (float64, error) {
			v, err := evalAt(figConfig(a, baseGamma, baseS, int(nv), baseUnitCost), m)
			if err != nil {
				return 0, fmt.Errorf("experiments: %s at n=%v alpha=%v: %w", id, nv, a, err)
			}
			return v, nil
		})
	if err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// sweepW builds the Figure 7/11 family: metric vs unit coordination
// cost.
func sweepW(id, title, ylabel string, m metric) (Figure, error) {
	fig := Figure{ID: id, Title: title, XLabel: "unit coordination cost w (ms)", YLabel: ylabel}
	err := sweep(&fig,
		alphaRows,
		func(a float64) string { return fmt.Sprintf("alpha=%g", a) },
		wGrid(),
		func(a, wv float64) (float64, error) {
			v, err := evalAt(figConfig(a, baseGamma, baseS, baseRouters, wv), m)
			if err != nil {
				return 0, fmt.Errorf("experiments: %s at w=%v alpha=%v: %w", id, wv, a, err)
			}
			return v, nil
		})
	if err != nil {
		return Figure{}, err
	}
	return fig, nil
}

// Fig4 reproduces Figure 4: optimal strategy l* vs the trade-off weight
// alpha, per gamma.
func Fig4() (Figure, error) {
	return sweepAlpha("fig4", "Optimal strategy vs trade-off parameter", "optimal strategy l*", metricLevel)
}

// Fig5 reproduces Figure 5: l* vs the Zipf exponent, per alpha.
func Fig5() (Figure, error) {
	return sweepS("fig5", "Optimal strategy vs Zipf exponent", "optimal strategy l*", metricLevel)
}

// Fig6 reproduces Figure 6: l* vs the network size, per alpha.
func Fig6() (Figure, error) {
	return sweepN("fig6", "Optimal strategy vs network size", "optimal strategy l*", metricLevel)
}

// Fig7 reproduces Figure 7: l* vs the unit coordination cost, per alpha.
func Fig7() (Figure, error) {
	return sweepW("fig7", "Optimal strategy vs unit coordination cost", "optimal strategy l*", metricLevel)
}

// Fig8 reproduces Figure 8: origin load reduction G_O vs alpha, per
// gamma.
func Fig8() (Figure, error) {
	return sweepAlpha("fig8", "Origin load reduction vs trade-off parameter", "origin load reduction G_O", metricOriginGain)
}

// Fig9 reproduces Figure 9: G_O vs the Zipf exponent, per alpha.
func Fig9() (Figure, error) {
	return sweepS("fig9", "Origin load reduction vs Zipf exponent", "origin load reduction G_O", metricOriginGain)
}

// Fig10 reproduces Figure 10: G_O vs the network size, per alpha.
func Fig10() (Figure, error) {
	return sweepN("fig10", "Origin load reduction vs network size", "origin load reduction G_O", metricOriginGain)
}

// Fig11 reproduces Figure 11: G_O vs the unit coordination cost, per
// alpha.
func Fig11() (Figure, error) {
	return sweepW("fig11", "Origin load reduction vs unit coordination cost", "origin load reduction G_O", metricOriginGain)
}

// Fig12 reproduces Figure 12: routing performance improvement G_R vs
// alpha, per gamma.
func Fig12() (Figure, error) {
	return sweepAlpha("fig12", "Routing improvement vs trade-off parameter", "routing improvement G_R", metricRoutingGain)
}

// Fig13 reproduces Figure 13: G_R vs the Zipf exponent, per alpha.
func Fig13() (Figure, error) {
	return sweepS("fig13", "Routing improvement vs Zipf exponent", "routing improvement G_R", metricRoutingGain)
}

// AllFigures regenerates Figures 4-13. Figure builders run on the shared
// worker pool but the returned slice is always in figure order.
func AllFigures() ([]Figure, error) {
	builders := []func() (Figure, error){
		Fig4, Fig5, Fig6, Fig7, Fig8, Fig9, Fig10, Fig11, Fig12, Fig13,
	}
	return par.Map(Workers(), len(builders), func(i int) (Figure, error) {
		return builders[i]()
	})
}
