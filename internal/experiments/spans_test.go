package experiments

import (
	"reflect"
	"strconv"
	"testing"
)

// TestValidationSpansDeterministic pins the artifact's byte-level
// determinism across worker-pool widths — the property that makes it
// diffable with ccnbench -diff — and sanity-checks the band structure.
func TestValidationSpansDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs traced simulations on every topology")
	}
	build := func(workers int) Table {
		old := Workers()
		SetWorkers(workers)
		defer SetWorkers(old)
		tab, err := ValidationSpans(2000)
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	serial := build(1)
	wide := build(8)
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("validation-spans differs between -workers 1 and 8")
	}

	if len(serial.Rows) == 0 || len(serial.Rows)%3 != 0 {
		t.Fatalf("%d rows, want three bands per topology", len(serial.Rows))
	}
	for _, row := range serial.Rows {
		if len(row) != len(serial.Headers) {
			t.Fatalf("row width %d, header width %d", len(row), len(serial.Headers))
		}
		local, _ := strconv.ParseFloat(row[4], 64)
		peer, _ := strconv.ParseFloat(row[6], 64)
		origin, _ := strconv.ParseFloat(row[8], 64)
		if s := local + peer + origin; s < 0.99 || s > 1.01 {
			t.Errorf("band %s/%s tier ratios sum to %v", row[0], row[1], s)
		}
	}
	// The cached band must be (nearly) all local, the origin band all
	// origin: the model's bands are deterministic, the simulator should
	// agree closely after warmup-free steady state.
	for _, row := range serial.Rows {
		switch row[1] {
		case "cached":
			if v, _ := strconv.ParseFloat(row[4], 64); v < 0.95 {
				t.Errorf("%s cached band local ratio %v", row[0], v)
			}
		case "origin":
			if v, _ := strconv.ParseFloat(row[8], 64); v < 0.95 {
				t.Errorf("%s origin band origin ratio %v", row[0], v)
			}
		}
	}
}
