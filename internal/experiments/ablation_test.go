package experiments

import (
	"strconv"
	"testing"
)

// parseF parses a table cell as float64.
func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}

func TestAblationAssignment(t *testing.T) {
	tab, err := AblationAssignment(30000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	stripe, hash := tab.Rows[0], tab.Rows[1]
	if stripe[0] != "stripe" || hash[0] != "hash" {
		t.Fatalf("row order: %v / %v", stripe[0], hash[0])
	}
	// Same band stored -> identical origin load.
	if stripe[1] != hash[1] {
		t.Errorf("origin load differs: %s vs %s", stripe[1], hash[1])
	}
	// Striping must not be worse at balancing popularity.
	if parseF(t, stripe[5]) > parseF(t, hash[5]) {
		t.Errorf("stripe popularity imbalance %s worse than hash %s", stripe[5], hash[5])
	}
}

func TestAblationPolicy(t *testing.T) {
	tab, err := AblationPolicy(30000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	coordLoad := parseF(t, byName["coordinated"][1])
	ncLoad := parseF(t, byName["non-coordinated"][1])
	if coordLoad >= ncLoad {
		t.Errorf("coordinated origin load %v not below non-coordinated %v", coordLoad, ncLoad)
	}
	// The provisioned non-coordinated steady state upper-bounds what the
	// dynamic policies can reach at equal capacity under LCE churn.
	for _, dyn := range []string{"lru", "lfu", "slru", "2q", "probcache"} {
		if load := parseF(t, byName[dyn][1]); load < coordLoad {
			t.Errorf("%s origin load %v below coordinated %v", dyn, load, coordLoad)
		}
	}
}

func TestAblationSolver(t *testing.T) {
	tab, err := AblationSolver()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The fixed-point approximation error must shrink as n grows
	// (Lemma 2 assumes large n).
	prev := 1.0
	for _, row := range tab.Rows {
		e := parseF(t, row[4])
		if e > prev+1e-9 {
			t.Errorf("fixed-point error not shrinking at n=%s: %v after %v", row[0], e, prev)
		}
		prev = e
	}
	last := tab.Rows[len(tab.Rows)-1]
	if e := parseF(t, last[4]); e > 0.001 {
		t.Errorf("fixed-point error at n=%s still %v", last[0], e)
	}
}

func TestAblationCoordinator(t *testing.T) {
	tab, err := AblationCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		central := parseF(t, row[1])
		distributed := parseF(t, row[3])
		if distributed > central {
			t.Errorf("n=%s: distributed messages %v exceed centralized %v", row[0], distributed, central)
		}
		if parseF(t, row[4]) < parseF(t, row[2]) {
			t.Errorf("n=%s: distributed convergence should be slower", row[0])
		}
	}
}

func TestAdaptiveConvergence(t *testing.T) {
	tab, err := AdaptiveConvergence(30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	if tab.Rows[0][1] != "non-coordinated" {
		t.Errorf("bootstrap epoch policy = %s", tab.Rows[0][1])
	}
	bootLoad := parseF(t, tab.Rows[0][4])
	lastLoad := parseF(t, tab.Rows[len(tab.Rows)-1][4])
	if lastLoad >= bootLoad {
		t.Errorf("adaptive loop did not reduce origin load: %v -> %v", bootLoad, lastLoad)
	}
	// The learned exponent should approach the true 0.8.
	lastS := parseF(t, tab.Rows[len(tab.Rows)-1][2])
	if lastS < 0.55 || lastS > 1.05 {
		t.Errorf("learned s = %v, want near 0.8", lastS)
	}
}

func TestStabilityAnalysis(t *testing.T) {
	tab, err := StabilityAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (gamma set)", len(tab.Rows))
	}
	// Higher gamma -> earlier, steeper, narrower transition under the
	// figure-harness amortization.
	for i := 1; i < len(tab.Rows); i++ {
		prev, cur := tab.Rows[i-1], tab.Rows[i]
		if parseF(t, cur[4]) >= parseF(t, prev[4]) {
			t.Errorf("peak alpha not decreasing with gamma: %s vs %s", cur[4], prev[4])
		}
		if parseF(t, cur[5]) <= parseF(t, prev[5]) {
			t.Errorf("peak slope not increasing with gamma: %s vs %s", cur[5], prev[5])
		}
	}
}

func TestAblationResilience(t *testing.T) {
	tab, err := AblationResilience(30000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	intact, damaged := tab.Rows[0], tab.Rows[1]
	// The placement itself is unchanged, so origin load stays equal;
	// reaching peers costs at least as many hops.
	if intact[1] != damaged[1] {
		t.Errorf("origin load changed under link failure: %s vs %s", intact[1], damaged[1])
	}
	if parseF(t, damaged[3]) < parseF(t, intact[3]) {
		t.Errorf("peer hops decreased under failure: %s vs %s", damaged[3], intact[3])
	}
}

func TestMetricVariant(t *testing.T) {
	tab, err := MetricVariant()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	// Both metrics must produce monotonically increasing levels over
	// alpha, and the ms variant (cheaper relative coordination cost,
	// w/gap smaller) must sit at or above the hop variant.
	prevHop, prevMs := -1.0, -1.0
	for _, row := range tab.Rows {
		hop, ms := parseF(t, row[1]), parseF(t, row[2])
		if hop < prevHop || ms < prevMs {
			t.Errorf("levels not monotone at alpha=%s: hop %v ms %v", row[0], hop, ms)
		}
		prevHop, prevMs = hop, ms
		if ms+1e-9 < hop {
			t.Errorf("alpha=%s: ms-gap level %v below hop-gap level %v", row[0], ms, hop)
		}
	}
}

func TestAblationLoss(t *testing.T) {
	tab, err := AblationLoss(15000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	base := tab.Rows[0]
	if parseF(t, base[4]) != 0 || parseF(t, base[5]) != 0 {
		t.Errorf("lossless row has loss activity: %v", base)
	}
	for i := 1; i < len(tab.Rows); i++ {
		row := tab.Rows[i]
		// Origin load within noise of the lossless run.
		if d := parseF(t, row[1]) - parseF(t, base[1]); d > 0.02 || d < -0.02 {
			t.Errorf("loss %s: origin load %s deviates from %s", row[0], row[1], base[1])
		}
		// Latency and retransmissions grow with the loss rate.
		if parseF(t, row[2]) <= parseF(t, base[2]) {
			t.Errorf("loss %s: latency %s not above lossless %s", row[0], row[2], base[2])
		}
		if parseF(t, row[4]) <= parseF(t, tab.Rows[i-1][4]) {
			t.Errorf("loss %s: retransmissions %s not increasing", row[0], row[4])
		}
	}
}

func TestAblationCongestion(t *testing.T) {
	tab, err := AblationCongestion(15000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// Rows sweep from light to heavy load: queueing delay and latency
	// must be nondecreasing.
	for i := 1; i < len(tab.Rows); i++ {
		if parseF(t, tab.Rows[i][3]) < parseF(t, tab.Rows[i-1][3]) {
			t.Errorf("queueing delay not increasing with load at row %d", i)
		}
	}
	light, heavy := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	if parseF(t, heavy[1]) <= parseF(t, light[1]) {
		t.Errorf("heavy-load latency %s not above light-load %s", heavy[1], light[1])
	}
	if parseF(t, heavy[4]) <= 0 {
		t.Error("heavy load produced no queueing events")
	}
}

func TestAdaptiveDrift(t *testing.T) {
	tab, err := AdaptiveDrift(25000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// The estimate must track the drift upward across epochs.
	first := parseF(t, tab.Rows[0][1])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][1])
	if last <= first {
		t.Errorf("estimate did not track the drift: %v -> %v", first, last)
	}
	if last < 0.9 {
		t.Errorf("final estimate %v too far from the drifted exponent", last)
	}
}

func TestMeasuredTiers(t *testing.T) {
	tab, err := MeasuredTiers(20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		d0, d1, d2 := parseF(t, row[1]), parseF(t, row[2]), parseF(t, row[3])
		if !(d0 < d1 && d1 < d2) {
			t.Errorf("%s: tier ordering violated: %v %v %v", row[0], d0, d1, d2)
		}
		if g := parseF(t, row[4]); g <= 0 {
			t.Errorf("%s: measured gamma %v", row[0], g)
		}
		if l := parseF(t, row[5]); l <= 0 || l > 1 {
			t.Errorf("%s: derived level %v", row[0], l)
		}
	}
}

func TestAblationRegionalSkew(t *testing.T) {
	tab, err := AblationRegionalSkew(25000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// Origin load must climb as regional disagreement grows.
	for i := 1; i < len(tab.Rows); i++ {
		if parseF(t, tab.Rows[i][1]) <= parseF(t, tab.Rows[i-1][1]) {
			t.Errorf("origin load not increasing with skew at row %d: %s vs %s",
				i, tab.Rows[i][1], tab.Rows[i-1][1])
		}
	}
}
