package experiments

import (
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		ID: "figX", Title: "Sample", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.25}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{0.125, 1}},
		},
	}
}

func TestWriteFigureCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigureCSV(&sb, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3:\n%s", len(lines), sb.String())
	}
	if lines[0] != "x,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,0.5,0.125" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteFigureCSVErrors(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigureCSV(&sb, Figure{ID: "empty"}); err == nil {
		t.Error("empty figure should fail")
	}
	bad := sampleFigure()
	bad.Series[1].Y = bad.Series[1].Y[:1]
	if err := WriteFigureCSV(&sb, bad); err == nil {
		t.Error("inconsistent series should fail")
	}
}

func TestWriteFigureText(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigureText(&sb, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"FIGX", "Sample", "0.5000", "0.1250"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	if err := WriteFigureText(&sb, Figure{ID: "empty"}); err == nil {
		t.Error("empty figure should fail")
	}
}

func TestWriteTableTextAndCSV(t *testing.T) {
	tab := Table{
		ID: "t", Title: "T", Headers: []string{"h1", "h2"},
		Rows: [][]string{{"a", "b"}, {"c", "d"}},
	}
	var sb strings.Builder
	if err := WriteTableText(&sb, tab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "h1") || !strings.Contains(sb.String(), "c") {
		t.Errorf("table text wrong:\n%s", sb.String())
	}
	sb.Reset()
	if err := WriteTableCSV(&sb, tab); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 || lines[0] != "h1,h2" || lines[2] != "c,d" {
		t.Errorf("table CSV wrong:\n%s", sb.String())
	}
}
