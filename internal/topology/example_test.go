package topology_test

import (
	"fmt"

	"ccncoord/internal/topology"
)

// ExampleExtractParams reproduces the paper's Table III row for the
// real Abilene backbone.
func ExampleExtractParams() {
	p, err := topology.ExtractParams(topology.Abilene())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: n=%d w=%.1fms d1-d0=%.1fms (%.4f hops)\n",
		p.Name, p.N, p.UnitCost, p.TierGapMs, p.TierGapHops)
	// Output: Abilene: n=11 w=22.3ms d1-d0=14.3ms (2.4182 hops)
}

// ExampleGraph_ShortestPathsLatency routes around an expensive direct
// link.
func ExampleGraph_ShortestPathsLatency() {
	g := topology.New("triangle")
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 0, 0)
	c := g.AddNode("c", 0, 0)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, c, 2)
	g.MustAddEdge(a, c, 10)
	sp := g.ShortestPathsLatency()
	path, err := sp.Path(a, c)
	if err != nil {
		panic(err)
	}
	fmt.Println(sp.Dist(a, c), path)
	// Output: 3 [0 1 2]
}
