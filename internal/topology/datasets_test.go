package topology

import (
	"math"
	"testing"
)

func TestDatasetsMatchTable2(t *testing.T) {
	for _, g := range All() {
		want, ok := PaperTable2[g.Name()]
		if !ok {
			t.Fatalf("dataset %q not in Table II", g.Name())
		}
		if g.N() != want.V {
			t.Errorf("%s: |V| = %d, want %d", g.Name(), g.N(), want.V)
		}
		if g.DirectedEdgeCount() != want.E {
			t.Errorf("%s: |E| = %d, want %d", g.Name(), g.DirectedEdgeCount(), want.E)
		}
		if !g.Connected() {
			t.Errorf("%s: not connected", g.Name())
		}
	}
}

// TestDatasetsMatchTable3 compares the extracted topological parameters
// with the paper's Table III. w and d1-d0 (ms) are calibrated exactly;
// the mean hop count is structural, matched exactly for Abilene (real
// topology), GEANT and US-A, and within 2% for CERNET (best synthesized
// match, recorded in EXPERIMENTS.md).
func TestDatasetsMatchTable3(t *testing.T) {
	for _, g := range All() {
		want := PaperTable3[g.Name()]
		p, err := ExtractParams(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if math.Abs(p.UnitCost-want.UnitCost) > 0.01 {
			t.Errorf("%s: w = %v, want %v", g.Name(), p.UnitCost, want.UnitCost)
		}
		if math.Abs(p.TierGapMs-want.TierGapMs) > 0.01 {
			t.Errorf("%s: d1-d0 = %v ms, want %v", g.Name(), p.TierGapMs, want.TierGapMs)
		}
		if rel := math.Abs(p.TierGapHops-want.TierGapHops) / want.TierGapHops; rel > 0.02 {
			t.Errorf("%s: d1-d0 = %v hops, want %v (rel err %.3f)", g.Name(), p.TierGapHops, want.TierGapHops, rel)
		}
	}
}

// TestAbileneHopMeanExact: the real Abilene backbone reproduces the
// paper's 2.4182 mean hop count to all published digits, which pins down
// both the topology map and the distinct-pairs averaging convention.
func TestAbileneHopMeanExact(t *testing.T) {
	got := Abilene().ShortestPathsHops().MeanDist(false)
	if math.Abs(got-2.4182) > 0.0001 {
		t.Errorf("Abilene mean hops = %v, want 2.4182", got)
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a1, a2 := USA(), USA()
	p1, err := ExtractParams(a1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ExtractParams(a2)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("US-A not deterministic: %+v vs %+v", p1, p2)
	}
}

func TestDatasetsReturnCopies(t *testing.T) {
	g1 := Abilene()
	if err := g1.ScaleLatencies(100); err != nil {
		t.Fatal(err)
	}
	g2 := Abilene()
	l1, _ := g1.EdgeLatency(0, 1)
	l2, _ := g2.EdgeLatency(0, 1)
	if l1 == l2 {
		t.Error("mutating one dataset copy affected subsequent copies")
	}
}

func TestDatasetsHaveMeasuredMatrices(t *testing.T) {
	for _, g := range All() {
		m := g.MeasuredLatencies()
		if m == nil {
			t.Fatalf("%s: no measured latency matrix", g.Name())
		}
		if len(m) != g.N() {
			t.Fatalf("%s: matrix dimension %d, want %d", g.Name(), len(m), g.N())
		}
	}
}

func TestExtractParamsErrors(t *testing.T) {
	tiny := New("tiny")
	tiny.AddNode("only", 0, 0)
	if _, err := ExtractParams(tiny); err == nil {
		t.Error("single-node graph should fail")
	}
	disc := New("disc")
	disc.AddNode("a", 0, 0)
	disc.AddNode("b", 0, 0)
	if _, err := ExtractParams(disc); err == nil {
		t.Error("disconnected graph should fail")
	}
}

func TestGenerators(t *testing.T) {
	t.Run("ring", func(t *testing.T) {
		g, err := Ring(5, 2)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 5 || g.Edges() != 5 || !g.Connected() {
			t.Errorf("ring-5: N=%d E=%d", g.N(), g.Edges())
		}
		if _, err := Ring(2, 1); err == nil {
			t.Error("ring of 2 should fail")
		}
	})
	t.Run("star", func(t *testing.T) {
		g, err := Star(6, 1)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 6 || g.Edges() != 5 || len(g.Neighbors(0)) != 5 {
			t.Errorf("star-6 malformed")
		}
		if _, err := Star(1, 1); err == nil {
			t.Error("star of 1 should fail")
		}
	})
	t.Run("grid", func(t *testing.T) {
		g, err := Grid(3, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 12 || g.Edges() != 3*3+2*4 || !g.Connected() {
			t.Errorf("grid 3x4: N=%d E=%d", g.N(), g.Edges())
		}
		if _, err := Grid(1, 1, 1); err == nil {
			t.Error("1x1 grid should fail")
		}
	})
	t.Run("random connected", func(t *testing.T) {
		g, err := RandomConnected(10, 20, 1, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 10 || g.Edges() != 20 || !g.Connected() {
			t.Errorf("random: N=%d E=%d connected=%v", g.N(), g.Edges(), g.Connected())
		}
		if _, err := RandomConnected(10, 5, 1, 5, 3); err == nil {
			t.Error("too few edges should fail")
		}
		if _, err := RandomConnected(10, 100, 1, 5, 3); err == nil {
			t.Error("too many edges should fail")
		}
		if _, err := RandomConnected(10, 20, 0, 5, 3); err == nil {
			t.Error("zero min latency should fail")
		}
	})
	t.Run("waxman", func(t *testing.T) {
		g, err := Waxman("w", 15, 30, 2000, 0.4, 9)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 15 || g.Edges() != 30 || !g.Connected() {
			t.Errorf("waxman: N=%d E=%d connected=%v", g.N(), g.Edges(), g.Connected())
		}
		if _, err := Waxman("w", 1, 0, 2000, 0.4, 9); err == nil {
			t.Error("single node should fail")
		}
	})
}

func TestGeneratorsDeterministic(t *testing.T) {
	g1, err := RandomConnected(12, 25, 1, 10, 77)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RandomConnected(12, 25, 1, 10, 77)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.EdgeList(), g2.EdgeList()
	if len(e1) != len(e2) {
		t.Fatal("different edge counts for same seed")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}

func BenchmarkDatasetConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Clone cost only after first build; measures the hot path callers
		// see.
		USA()
	}
}
