package topology

import (
	"math"
	"sync"
	"testing"
)

// refAlive computes the reference routing state the fault-aware CCN
// layer used before incremental repair existed: clone the base graph,
// remove every down link and every link incident to a down node, and
// solve all-pairs shortest paths from scratch.
func refAlive(t *testing.T, g *Graph, nodeDown map[NodeID]bool, linkDown map[[2]NodeID]bool) *APSP {
	t.Helper()
	alive := g.Clone()
	for _, e := range g.EdgeList() {
		if nodeDown[e.A] || nodeDown[e.B] || linkDown[dynKey(e.A, e.B)] {
			if err := alive.RemoveEdge(e.A, e.B); err != nil {
				t.Fatalf("removing %d-%d: %v", e.A, e.B, err)
			}
		}
	}
	return alive.ShortestPathsLatency()
}

// checkDynMatches asserts the incrementally repaired matrix is
// equivalent to the full recompute: distances agree within 1e-9 (the
// symmetry patch on node recovery may reverse a float addition order)
// and every finite Next pointer walks an alive path of exactly the
// reported length.
func checkDynMatches(t *testing.T, stage string, g *Graph, dyn, ref *APSP, nodeDown map[NodeID]bool, linkDown map[[2]NodeID]bool) {
	t.Helper()
	n := dyn.N()
	if n != ref.N() {
		t.Fatalf("%s: size mismatch %d vs %d", stage, n, ref.N())
	}
	for s := NodeID(0); int(s) < n; s++ {
		for d := NodeID(0); int(d) < n; d++ {
			dd, rd := dyn.Dist(s, d), ref.Dist(s, d)
			switch {
			case math.IsInf(dd, 1) != math.IsInf(rd, 1):
				t.Fatalf("%s: reachability of (%d,%d) diverged: dyn %v, ref %v", stage, s, d, dd, rd)
			case math.IsInf(dd, 1):
				if dyn.Next(s, d) != -1 {
					t.Fatalf("%s: unreachable (%d,%d) has next %d", stage, s, d, dyn.Next(s, d))
				}
				continue
			case math.Abs(dd-rd) > 1e-9:
				t.Fatalf("%s: dist(%d,%d) = %v, full recompute %v", stage, s, d, dd, rd)
			}
			if s == d {
				continue
			}
			// Walk dyn's first-hop pointers: every hop must be an alive
			// link and the accumulated latency must equal the distance.
			var sum float64
			cur := s
			for steps := 0; cur != d; steps++ {
				if steps > n {
					t.Fatalf("%s: next-pointer loop from %d to %d", stage, s, d)
				}
				nxt := dyn.Next(cur, d)
				if nxt < 0 {
					t.Fatalf("%s: path %d->%d dead-ends at %d", stage, s, d, cur)
				}
				if nodeDown[cur] || nodeDown[nxt] || linkDown[dynKey(cur, nxt)] {
					t.Fatalf("%s: path %d->%d crosses dead element %d-%d", stage, s, d, cur, nxt)
				}
				w, err := g.EdgeLatency(cur, nxt)
				if err != nil {
					t.Fatalf("%s: path %d->%d uses missing link: %v", stage, s, d, err)
				}
				sum += w
				cur = nxt
			}
			if math.Abs(sum-dd) > 1e-9 {
				t.Fatalf("%s: path %d->%d walks %v, dist says %v", stage, s, d, sum, dd)
			}
		}
	}
}

// TestDynAPSPMatchesFullRecompute drives a scripted schedule of link
// and router fault/repair events — including overlapping faults, a
// link event under a crashed endpoint, and idempotent repeats — and
// checks the incremental repair against a from-scratch recompute after
// every event.
func TestDynAPSPMatchesFullRecompute(t *testing.T) {
	g, err := Waxman("dyntest", 20, 40, 4000, 0.4, 11)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.EdgeList()
	// A node with degree > 1 so taking it down reroutes traffic, plus
	// one of its incident links for the overlap cases.
	center := edges[0].A
	var incident Edge
	for _, e := range edges {
		if e.A == center || e.B == center {
			incident = e
			break
		}
	}
	far := edges[len(edges)-1]

	dyn := NewDynAPSP(g, nil, nil)
	nodeDown := map[NodeID]bool{}
	linkDown := map[[2]NodeID]bool{}

	type event struct {
		name string
		run  func() *APSP
	}
	link := func(e Edge, up bool) func() *APSP {
		return func() *APSP {
			if up {
				delete(linkDown, dynKey(e.A, e.B))
			} else {
				linkDown[dynKey(e.A, e.B)] = true
			}
			return dyn.SetLink(e.A, e.B, up)
		}
	}
	node := func(v NodeID, up bool) func() *APSP {
		return func() *APSP {
			if up {
				delete(nodeDown, v)
			} else {
				nodeDown[v] = true
			}
			return dyn.SetNode(v, up)
		}
	}
	schedule := []event{
		{"far link down", link(far, false)},
		{"incident link down", link(incident, false)},
		{"center node down", node(center, false)},
		{"far link up", link(far, true)},
		{"incident link up under crashed node", link(incident, true)},
		{"second node down", node(far.B, false)},
		{"center node up", node(center, true)},
		{"far link down again", link(far, false)},
		{"second node up", node(far.B, true)},
		{"far link up", link(far, true)},
	}
	for _, ev := range schedule {
		cur := ev.run()
		ref := refAlive(t, g, nodeDown, linkDown)
		checkDynMatches(t, ev.name, g, cur, ref, nodeDown, linkDown)
	}

	// Everything is back up: the matrix must be restored bit-for-bit
	// from the pristine base.
	base := g.ShortestPathsLatency()
	cur := dyn.Current()
	for s := NodeID(0); int(s) < cur.N(); s++ {
		for d := NodeID(0); int(d) < cur.N(); d++ {
			if cur.Dist(s, d) != base.Dist(s, d) || cur.Next(s, d) != base.Next(s, d) {
				t.Fatalf("all-up state not pristine at (%d,%d)", s, d)
			}
		}
	}

	// Idempotent repeats must not change anything.
	if got := dyn.SetLink(far.A, far.B, true); got != cur {
		t.Fatal("idempotent link-up replaced the matrix")
	}
	if got := dyn.SetNode(center, true); got != cur {
		t.Fatal("idempotent node-up replaced the matrix")
	}
}

// TestDynAPSPSeededConstruction checks that attaching the maintainer to
// a graph with pre-existing fault state solves the alive subgraph, not
// the pristine one.
func TestDynAPSPSeededConstruction(t *testing.T) {
	g, err := Waxman("dynseed", 15, 25, 3000, 0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := g.EdgeList()[3]
	var v NodeID
	for _, cand := range g.Nodes() {
		if cand.ID != e.A && cand.ID != e.B {
			v = cand.ID
			break
		}
	}
	dyn := NewDynAPSP(g, []NodeID{v}, [][2]NodeID{{e.A, e.B}})
	nodeDown := map[NodeID]bool{v: true}
	linkDown := map[[2]NodeID]bool{dynKey(e.A, e.B): true}
	ref := refAlive(t, g, nodeDown, linkDown)
	checkDynMatches(t, "seeded", g, dyn.Current(), ref, nodeDown, linkDown)
}

// TestAPSPCacheInvalidation checks the generation-stamped cache: every
// mutator invalidates it, an unchanged graph returns the same matrix
// pointer, cached results equal a fresh solve exactly, and clones share
// the cache until they diverge.
func TestAPSPCacheInvalidation(t *testing.T) {
	g, err := RandomConnected(12, 20, 1, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	sameAPSP := func(a, b *APSP) bool {
		if a.n != b.n {
			return false
		}
		for i := range a.dist {
			// NaN-free by construction; direct comparison is exact.
			if a.dist[i] != b.dist[i] || a.next[i] != b.next[i] || a.parent[i] != b.parent[i] {
				return false
			}
		}
		return true
	}
	check := func(stage string) {
		t.Helper()
		lat := g.ShortestPathsLatency()
		if !sameAPSP(lat, g.shortestPathsLatencyFresh()) {
			t.Fatalf("%s: cached latency APSP differs from fresh solve", stage)
		}
		if g.ShortestPathsLatency() != lat {
			t.Fatalf("%s: unchanged graph recomputed its latency cache", stage)
		}
		hops := g.ShortestPathsHops()
		if !sameAPSP(hops, g.shortestPathsHopsFresh()) {
			t.Fatalf("%s: cached hops APSP differs from fresh solve", stage)
		}
		if g.ShortestPathsHops() != hops {
			t.Fatalf("%s: unchanged graph recomputed its hops cache", stage)
		}
	}

	check("initial")
	prev := g.ShortestPathsLatency()

	m := make([][]float64, g.N())
	for i := range m {
		m[i] = make([]float64, g.N())
		for j := range m[i] {
			if i != j {
				m[i][j] = 1 + math.Abs(float64(i-j))
			}
		}
	}
	if err := g.SetMeasuredLatencies(m); err != nil {
		t.Fatal(err)
	}
	check("SetMeasuredLatencies")

	if err := g.ScaleLatencies(2.5); err != nil {
		t.Fatal(err)
	}
	if g.ShortestPathsLatency() == prev {
		t.Fatal("ScaleLatencies did not invalidate the cache")
	}
	check("ScaleLatencies")

	if err := g.TransformLatencies(func(l float64) float64 { return l + 1 }); err != nil {
		t.Fatal(err)
	}
	check("TransformLatencies")

	e := g.EdgeList()[0]
	if err := g.RemoveEdge(e.A, e.B); err != nil {
		t.Fatal(err)
	}
	check("RemoveEdge")

	id := g.AddNode("late", 0, 0)
	check("AddNode") // disconnected node: Inf rows must match fresh

	if err := g.AddEdge(id, 0, 4); err != nil {
		t.Fatal(err)
	}
	check("AddEdge")

	// Clones share the cache until they diverge.
	shared := g.ShortestPathsLatency()
	c := g.Clone()
	if c.ShortestPathsLatency() != shared {
		t.Fatal("clone does not share the cached APSP")
	}
	if err := c.ScaleLatencies(3); err != nil {
		t.Fatal(err)
	}
	if c.ShortestPathsLatency() == shared {
		t.Fatal("mutated clone still serves the shared APSP")
	}
	if g.ShortestPathsLatency() != shared {
		t.Fatal("mutating the clone invalidated the original's cache")
	}
}

// TestConcurrentDatasetAccess hammers the memoized datasets from many
// goroutines — cloning, reading the shared routing caches, and mutating
// private clones — and relies on -race to flag unsynchronized access.
func TestConcurrentDatasetAccess(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, g := range All() {
				lat := g.ShortestPathsLatency()
				_ = lat.MaxDist()
				_ = g.ShortestPathsHops().MeanDist(false)
				if err := g.ScaleLatencies(2); err != nil {
					t.Error(err)
					return
				}
				if g.ShortestPathsLatency() == lat {
					t.Error("mutated dataset clone kept its shared cache")
					return
				}
			}
		}()
	}
	wg.Wait()
}
