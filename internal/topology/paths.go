package topology

import (
	"fmt"
	"math"
	"math/bits"

	"ccncoord/internal/par"
)

// APSP holds all-pairs shortest-path results for one metric on flat,
// stride-indexed backing arrays (row i starts at offset i*n), which
// keeps the whole matrix in three allocations and lets per-source
// solvers write disjoint rows in parallel. Dist(i, j) is the
// shortest-path length from i to j (0 on the diagonal, +Inf if
// unreachable), Next(i, j) is the first hop on a shortest path from i
// toward j (-1 on the diagonal or if unreachable), and Parent(i, j) is
// j's predecessor on that path (-1 likewise). Next matrices drive the
// packet simulator's FIB construction; Parent matrices let the
// fault-repair layer detect which shortest-path trees used a failed
// element without re-walking paths.
//
// An APSP returned by Graph.ShortestPathsLatency / ShortestPathsHops is
// a shared cache entry: treat it as immutable.
type APSP struct {
	n      int
	dist   []float64
	next   []NodeID
	parent []NodeID
}

// N returns the number of nodes the matrix covers.
func (a *APSP) N() int { return a.n }

// Dist returns the shortest-path length from i to j.
func (a *APSP) Dist(i, j NodeID) float64 { return a.dist[int(i)*a.n+int(j)] }

// Next returns the first hop out of i on a shortest path toward j, or
// -1 when i == j or j is unreachable.
func (a *APSP) Next(i, j NodeID) NodeID { return a.next[int(i)*a.n+int(j)] }

// Parent returns j's predecessor on a shortest path from i, or -1 when
// i == j or j is unreachable.
func (a *APSP) Parent(i, j NodeID) NodeID { return a.parent[int(i)*a.n+int(j)] }

// DistRow returns source i's distance row. The returned slice aliases
// the matrix backing array; callers must not modify it.
func (a *APSP) DistRow(i NodeID) []float64 {
	return a.dist[int(i)*a.n : (int(i)+1)*a.n]
}

// newAPSP allocates an uninitialized matrix for n nodes.
func newAPSP(n int) *APSP {
	return &APSP{
		n:      n,
		dist:   make([]float64, n*n),
		next:   make([]NodeID, n*n),
		parent: make([]NodeID, n*n),
	}
}

// clone returns an independent mutable copy (the fault-repair layer
// edits its copy in place while the cached original stays pristine).
func (a *APSP) clone() *APSP {
	return &APSP{
		n:      a.n,
		dist:   append([]float64(nil), a.dist...),
		next:   append([]NodeID(nil), a.next...),
		parent: append([]NodeID(nil), a.parent...),
	}
}

// copyFrom overwrites this matrix with src's contents.
func (a *APSP) copyFrom(src *APSP) {
	copy(a.dist, src.dist)
	copy(a.next, src.next)
	copy(a.parent, src.parent)
}

// ShortestPathsLatency returns all-pairs shortest paths over link
// latencies. The result is cached on the graph and invalidated by
// mutators; see Graph.ShortestPathsLatency in graph.go for the caching
// wrapper — this method computes a fresh matrix.
func (g *Graph) shortestPathsLatencyFresh() *APSP {
	return g.apsp(false)
}

// shortestPathsHopsFresh computes hop-count all-pairs shortest paths
// (unit link weights).
func (g *Graph) shortestPathsHopsFresh() *APSP {
	return g.apsp(true)
}

// parallelAPSPSources is the node count above which per-source solvers
// fan out over the worker pool. The evaluation datasets (11-36 nodes)
// stay serial — per-source work there is microseconds and scratch reuse
// beats goroutine overhead — while the network-size sweep graphs
// (hundreds of nodes) split across CPUs.
const parallelAPSPSources = 96

// apsp runs Dijkstra from every source, serially with one reused
// scratch below parallelAPSPSources, else fanned over the worker pool
// with per-worker scratch. Every source writes only its own matrix
// rows, so the result is identical at any worker count.
func (g *Graph) apsp(unitWeights bool) *APSP {
	n := len(g.nodes)
	out := newAPSP(n)
	workers := par.DefaultWorkers()
	if n < parallelAPSPSources || workers <= 1 {
		scratch := newSPScratch(n, g.edges)
		for src := 0; src < n; src++ {
			g.dijkstraInto(out, NodeID(src), unitWeights, scratch)
		}
		return out
	}
	if workers > n {
		workers = n
	}
	_ = par.ForEach(workers, workers, func(w int) error {
		scratch := newSPScratch(n, g.edges)
		for src := w; src < n; src += workers {
			g.dijkstraInto(out, NodeID(src), unitWeights, scratch)
		}
		return nil
	})
	return out
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
}

// pq is a hand-rolled min-heap of pqItem by distance. It avoids
// container/heap, whose interface boxes every pushed item into an `any`
// and therefore allocates once per edge relaxation — a dominant
// allocation source when all-pairs shortest paths run per simulation.
type pq []pqItem

// push appends it and restores the heap invariant.
func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].dist <= h[i].dist {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum-distance item.
func (q *pq) pop() pqItem {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].dist < h[smallest].dist {
			smallest = l
		}
		if r < n && h[r].dist < h[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// spScratch is the reusable per-source working state of one Dijkstra
// run: the settled marks, the settle order (which turns the
// predecessor tree into first hops in one linear pass), and the heap,
// pre-sized so steady-state runs never grow a slice.
type spScratch struct {
	done  []bool
	order []NodeID // nodes in settle order; order[0] is the source
	heap  pq
}

// newSPScratch sizes scratch for a graph with n nodes and m undirected
// edges. The heap can hold at most one entry per successful relaxation
// (each directed edge relaxes at most once per run), so capacity
// 2m+1 eliminates pq growth entirely.
func newSPScratch(n, m int) *spScratch {
	return &spScratch{
		done:  make([]bool, n),
		order: make([]NodeID, 0, n),
		heap:  make(pq, 0, 2*m+1),
	}
}

// dijkstraInto runs Dijkstra from src and writes the distance, first-hop
// and predecessor rows of out in place.
func (g *Graph) dijkstraInto(out *APSP, src NodeID, unitWeights bool, s *spScratch) {
	n := out.n
	base := int(src) * n
	g.dijkstraRows(src, unitWeights, s,
		out.dist[base:base+n], out.next[base:base+n], out.parent[base:base+n])
}

// dijkstraRows is the single-source shortest-path kernel shared by every
// routing backend: the dense APSP writes matrix rows through it, and the
// LRU/landmark backends fill their per-source trees with it. Sharing one
// kernel (same adjacency iteration order, same heap) is what makes the
// sparse backends' per-source results bit-identical to the dense rows.
func (g *Graph) dijkstraRows(src NodeID, unitWeights bool, s *spScratch, dist []float64, next, parent []NodeID) {
	for i := range dist {
		dist[i] = math.Inf(1)
		next[i] = -1
		parent[i] = -1
	}
	done := s.done
	for i := range done {
		done[i] = false
	}
	s.order = s.order[:0]
	s.heap = s.heap[:0]

	dist[src] = 0
	s.heap.push(pqItem{node: src, dist: 0})
	for len(s.heap) > 0 {
		it := s.heap.pop()
		if done[it.node] {
			continue
		}
		done[it.node] = true
		s.order = append(s.order, it.node)
		for _, he := range g.adj[it.node] {
			w := he.latency
			if unitWeights {
				w = 1
			}
			if d := it.dist + w; d < dist[he.to] {
				dist[he.to] = d
				parent[he.to] = it.node
				s.heap.push(pqItem{node: he.to, dist: d})
			}
		}
	}
	// The settle order is monotone in distance, so every node's
	// predecessor is resolved before the node itself: one pass converts
	// the predecessor tree into first-hop-from-src pointers.
	for _, v := range s.order[1:] {
		if parent[v] == src {
			next[v] = v
		} else {
			next[v] = next[parent[v]]
		}
	}
}

// meanHopsConnected computes the mean pairwise hop count over distinct
// ordered pairs by running BFS from every source (unit weights make
// BFS and Dijkstra distances identical), reusing the caller's scratch
// so the dataset seed search allocates nothing per candidate graph. It
// reports ok=false as soon as any source fails to reach every node,
// folding the connectivity check into the same pass. Per-level depths
// are integers whose float64 sums are exact, so the mean is bit-equal
// to the Dijkstra-based MeanDist(false) regardless of summation order.
func (g *Graph) meanHopsConnected(s *bfsScratch) (mean float64, ok bool) {
	n := len(g.nodes)
	if n < 2 {
		return 0, n == 1
	}
	if n <= 64 {
		return g.meanHopsBitBFS(s)
	}
	var sum float64
	for src := 0; src < n; src++ {
		depth := s.depth
		for i := range depth {
			depth[i] = -1
		}
		queue := s.queue[:0]
		depth[src] = 0
		queue = append(queue, NodeID(src))
		reached := 1
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			dv := depth[v]
			for _, he := range g.adj[v] {
				if depth[he.to] < 0 {
					depth[he.to] = dv + 1
					queue = append(queue, he.to)
					reached++
					sum += float64(dv + 1)
				}
			}
		}
		s.queue = queue[:0]
		if reached != n {
			return 0, false
		}
	}
	return sum / float64(n*(n-1)), true
}

// meanHopsBitBFS is meanHopsConnected for graphs of at most 64 nodes:
// frontiers are uint64 bitmasks, so one BFS level is a handful of
// mask-ors and popcounts instead of a queue walk.
func (g *Graph) meanHopsBitBFS(s *bfsScratch) (mean float64, ok bool) {
	n := len(g.nodes)
	masks := s.masks[:n]
	for a, hes := range g.adj {
		var m uint64
		for _, he := range hes {
			m |= 1 << uint(he.to)
		}
		masks[a] = m
	}
	full := ^uint64(0) >> (64 - uint(n))
	total := 0
	for src := 0; src < n; src++ {
		visited := uint64(1) << uint(src)
		frontier := visited
		depth := 0
		for {
			var next uint64
			for f := frontier; f != 0; f &= f - 1 {
				next |= masks[bits.TrailingZeros64(f)]
			}
			next &^= visited
			if next == 0 {
				break
			}
			depth++
			visited |= next
			total += depth * bits.OnesCount64(next)
			frontier = next
		}
		if visited != full {
			return 0, false
		}
	}
	return float64(total) / float64(n*(n-1)), true
}

// bfsScratch is the reusable working state of meanHopsConnected.
type bfsScratch struct {
	depth []int
	queue []NodeID
	masks []uint64
}

// newBFSScratch sizes scratch for graphs of up to n nodes.
func newBFSScratch(n int) *bfsScratch {
	m := n
	if m > 64 {
		m = 64
	}
	return &bfsScratch{
		depth: make([]int, n),
		queue: make([]NodeID, 0, n),
		masks: make([]uint64, m),
	}
}

// Path returns the node sequence from src to dst (inclusive) following
// the APSP first-hop matrix, or an error if dst is unreachable.
func (a *APSP) Path(src, dst NodeID) ([]NodeID, error) {
	if src == dst {
		if int(src) >= a.n || src < 0 {
			return nil, fmt.Errorf("topology: path endpoints (%d,%d) out of range", src, dst)
		}
		return []NodeID{src}, nil
	}
	if int(src) >= a.n || int(dst) >= a.n || src < 0 || dst < 0 {
		return nil, fmt.Errorf("topology: path endpoints (%d,%d) out of range", src, dst)
	}
	path := []NodeID{src}
	cur := src
	for cur != dst {
		nxt := a.Next(cur, dst)
		if nxt < 0 {
			return nil, fmt.Errorf("topology: %d unreachable from %d", dst, src)
		}
		path = append(path, nxt)
		cur = nxt
		if len(path) > a.n+1 {
			return nil, fmt.Errorf("topology: first-hop matrix contains a loop between %d and %d", src, dst)
		}
	}
	return path, nil
}

// MaxDist returns the largest finite off-diagonal distance (the weighted
// diameter). It returns 0 for graphs with fewer than two nodes.
func (a *APSP) MaxDist() float64 {
	var m float64
	n := a.n
	for i := 0; i < n; i++ {
		row := a.dist[i*n : (i+1)*n]
		for j, d := range row {
			if i != j && !math.IsInf(d, 1) && d > m {
				m = d
			}
		}
	}
	return m
}

// MeanDist returns the mean off-diagonal pairwise distance. With
// includeDiagonal true it divides by |V|^2 (the paper's Section V-A
// convention); otherwise by |V|*(|V|-1).
func (a *APSP) MeanDist(includeDiagonal bool) float64 {
	n := a.n
	if n < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		row := a.dist[i*n : (i+1)*n]
		for j, d := range row {
			if i != j && !math.IsInf(d, 1) {
				sum += d
			}
		}
	}
	if includeDiagonal {
		return sum / float64(n*n)
	}
	return sum / float64(n*(n-1))
}
