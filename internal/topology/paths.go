package topology

import (
	"fmt"
	"math"
)

// APSP holds all-pairs shortest-path results for one metric. Dist[i][j]
// is the shortest-path length from i to j (0 on the diagonal, +Inf if
// unreachable) and Next[i][j] is the first hop on a shortest path from i
// toward j (-1 on the diagonal or if unreachable). Next matrices drive
// the packet simulator's FIB construction.
type APSP struct {
	Dist [][]float64
	Next [][]NodeID
}

// ShortestPathsLatency runs Dijkstra from every node over link latencies.
func (g *Graph) ShortestPathsLatency() *APSP {
	return g.apsp(func(he halfEdge) float64 { return he.latency })
}

// ShortestPathsHops runs Dijkstra from every node with unit link weights,
// yielding hop-count distances.
func (g *Graph) ShortestPathsHops() *APSP {
	return g.apsp(func(halfEdge) float64 { return 1 })
}

// apsp runs Dijkstra from every source with the given edge-weight
// function.
func (g *Graph) apsp(weight func(halfEdge) float64) *APSP {
	n := len(g.nodes)
	out := &APSP{
		Dist: make([][]float64, n),
		Next: make([][]NodeID, n),
	}
	for src := 0; src < n; src++ {
		out.Dist[src], out.Next[src] = g.dijkstra(NodeID(src), weight)
	}
	return out
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	node NodeID
	dist float64
}

// pq is a hand-rolled min-heap of pqItem by distance. It avoids
// container/heap, whose interface boxes every pushed item into an `any`
// and therefore allocates once per edge relaxation — a dominant
// allocation source when all-pairs shortest paths run per simulation.
type pq []pqItem

// push appends it and restores the heap invariant.
func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].dist <= h[i].dist {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum-distance item.
func (q *pq) pop() pqItem {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	*q = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l].dist < h[smallest].dist {
			smallest = l
		}
		if r < n && h[r].dist < h[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// dijkstra returns distances from src and, for every destination, the
// first hop out of src along a shortest path.
func (g *Graph) dijkstra(src NodeID, weight func(halfEdge) float64) ([]float64, []NodeID) {
	n := len(g.nodes)
	dist := make([]float64, n)
	prev := make([]NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := pq{{node: src, dist: 0}}
	for len(q) > 0 {
		it := q.pop()
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, he := range g.adj[it.node] {
			if d := it.dist + weight(he); d < dist[he.to] {
				dist[he.to] = d
				prev[he.to] = it.node
				q.push(pqItem{node: he.to, dist: d})
			}
		}
	}
	// Convert predecessor tree into first-hop-from-src pointers.
	next := make([]NodeID, n)
	for v := range next {
		next[v] = -1
	}
	for v := 0; v < n; v++ {
		if NodeID(v) == src || math.IsInf(dist[v], 1) {
			continue
		}
		hop := NodeID(v)
		for prev[hop] != src {
			hop = prev[hop]
		}
		next[v] = hop
	}
	return dist, next
}

// Path returns the node sequence from src to dst (inclusive) following
// the APSP first-hop matrix, or an error if dst is unreachable.
func (a *APSP) Path(src, dst NodeID) ([]NodeID, error) {
	if src == dst {
		return []NodeID{src}, nil
	}
	if int(src) >= len(a.Next) || int(dst) >= len(a.Next) || src < 0 || dst < 0 {
		return nil, fmt.Errorf("topology: path endpoints (%d,%d) out of range", src, dst)
	}
	path := []NodeID{src}
	cur := src
	for cur != dst {
		nxt := a.Next[cur][dst]
		if nxt < 0 {
			return nil, fmt.Errorf("topology: %d unreachable from %d", dst, src)
		}
		path = append(path, nxt)
		cur = nxt
		if len(path) > len(a.Next)+1 {
			return nil, fmt.Errorf("topology: first-hop matrix contains a loop between %d and %d", src, dst)
		}
	}
	return path, nil
}

// MaxDist returns the largest finite off-diagonal distance (the weighted
// diameter). It returns 0 for graphs with fewer than two nodes.
func (a *APSP) MaxDist() float64 {
	var m float64
	for i := range a.Dist {
		for j, d := range a.Dist[i] {
			if i != j && !math.IsInf(d, 1) && d > m {
				m = d
			}
		}
	}
	return m
}

// MeanDist returns the mean off-diagonal pairwise distance. With
// includeDiagonal true it divides by |V|^2 (the paper's Section V-A
// convention); otherwise by |V|*(|V|-1).
func (a *APSP) MeanDist(includeDiagonal bool) float64 {
	n := len(a.Dist)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := range a.Dist {
		for j, d := range a.Dist[i] {
			if i != j && !math.IsInf(d, 1) {
				sum += d
			}
		}
	}
	if includeDiagonal {
		return sum / float64(n*n)
	}
	return sum / float64(n*(n-1))
}
