package topology

import (
	"fmt"
	"math"
	"sync"

	"ccncoord/internal/par"
)

// LRUPaths answers shortest-path queries from a bounded cache of
// per-source shortest-path trees, computed on demand by the same
// Dijkstra kernel the dense APSP uses. One tree holds source src's full
// distance, first-hop and predecessor rows (24·n bytes), so the whole
// backend costs 24·n·capacity bytes instead of the dense matrix's 24·n²
// — the backend that unlocks 10⁵-router topologies, where one dense
// matrix would need ~240 GiB.
//
// Exactness: a cached tree is produced by Graph.dijkstraRows with the
// identical adjacency iteration order as a dense APSP row, so Dist and
// Next are bit-identical to the dense backend on any graph — ties
// included. Path walks first hops across trees exactly like APSP.Path
// walks Next rows, so it is bit-identical too; note that a cold Path
// query can therefore fill up to path-length trees (see PathTree for
// the single-tree variant that stays within tree(src)).
//
// Invalidation: every query stamps itself against the graph's mutation
// generation; any Graph mutator bumps the generation (see Graph.bump),
// so the first query after a mutation drops every cached tree and
// recomputes against the new structure — the same contract as the dense
// APSP cache.
//
// LRUPaths is safe for concurrent readers (one mutex serializes
// queries); mutating the underlying Graph still requires external
// synchronization, exactly as with the dense cache.
type LRUPaths struct {
	g   *Graph
	cap int

	mu      sync.Mutex
	gen     uint64
	trees   map[NodeID]*lruTree
	head    *lruTree // most recently used
	tail    *lruTree // least recently used
	scratch *spScratch

	hits, misses, evictions uint64

	// Cached whole-graph aggregates (MaxDist / MeanDist sweep), valid
	// for aggGen only.
	aggValid bool
	aggGen   uint64
	maxDist  float64
	distSum  float64
}

// lruTree is one cached single-source shortest-path tree.
type lruTree struct {
	src       NodeID
	dist      []float64
	next      []NodeID
	parent    []NodeID
	prev, nxt *lruTree
}

// DefaultLRUBudgetBytes is the tree-cache memory budget when
// NewLRUPaths is given a non-positive capacity: the capacity becomes
// budget / (24·n) trees, clamped to [minLRUCapacity, n].
const DefaultLRUBudgetBytes = 256 << 20

// minLRUCapacity keeps a degenerate budget from thrashing on every
// query.
const minLRUCapacity = 16

// treeBytes is the memory footprint of one cached tree for an n-node
// graph: one float64 plus two NodeID entries per node.
func treeBytes(n int) int { return n * 24 }

// LRUCapacityForBudget returns how many shortest-path trees of an
// n-node graph fit in budgetBytes, clamped to [minLRUCapacity, n].
func LRUCapacityForBudget(n, budgetBytes int) int {
	c := budgetBytes / treeBytes(max(n, 1))
	if c < minLRUCapacity {
		c = minLRUCapacity
	}
	if c > n {
		c = n
	}
	if c < 1 {
		c = 1
	}
	return c
}

// NewLRUPaths builds the LRU backend over g's latency metric with room
// for capacity cached trees; non-positive capacity selects
// LRUCapacityForBudget(n, DefaultLRUBudgetBytes).
func NewLRUPaths(g *Graph, capacity int) *LRUPaths {
	n := g.N()
	if capacity <= 0 {
		capacity = LRUCapacityForBudget(n, DefaultLRUBudgetBytes)
	}
	if capacity > n && n > 0 {
		capacity = n
	}
	return &LRUPaths{
		g:       g,
		cap:     capacity,
		gen:     g.gen,
		trees:   make(map[NodeID]*lruTree, capacity),
		scratch: newSPScratch(n, g.edges),
	}
}

// N returns the number of nodes covered.
func (l *LRUPaths) N() int { return l.g.N() }

// Capacity returns the maximum number of cached trees.
func (l *LRUPaths) Capacity() int { return l.cap }

// Stats returns the cumulative query-cache counters: tree hits, misses
// (each miss is one Dijkstra), and evictions.
func (l *LRUPaths) Stats() (hits, misses, evictions uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses, l.evictions
}

// flushLocked drops every cached tree after a graph mutation; the node
// count may have changed, so scratch and tree buffers are resized by
// reallocation.
func (l *LRUPaths) flushLocked() {
	n := l.g.N()
	l.gen = l.g.gen
	l.trees = make(map[NodeID]*lruTree, l.cap)
	l.head, l.tail = nil, nil
	l.scratch = newSPScratch(n, l.g.edges)
	l.aggValid = false
	if l.cap > n && n > 0 {
		l.cap = n
	}
}

// treeLocked returns src's shortest-path tree, computing and caching it
// on a miss (evicting the least recently used tree when full). The
// caller holds l.mu.
func (l *LRUPaths) treeLocked(src NodeID) *lruTree {
	if l.gen != l.g.gen {
		l.flushLocked()
	}
	if t := l.trees[src]; t != nil {
		l.hits++
		l.touchLocked(t)
		return t
	}
	l.misses++
	n := l.g.N()
	var t *lruTree
	if len(l.trees) >= l.cap && l.tail != nil {
		// Reuse the evicted tree's buffers: steady state allocates
		// nothing per miss.
		t = l.tail
		l.unlinkLocked(t)
		delete(l.trees, t.src)
		l.evictions++
	} else {
		t = &lruTree{
			dist:   make([]float64, n),
			next:   make([]NodeID, n),
			parent: make([]NodeID, n),
		}
	}
	t.src = src
	l.g.dijkstraRows(src, false, l.scratch, t.dist, t.next, t.parent)
	l.trees[src] = t
	l.pushFrontLocked(t)
	return t
}

// touchLocked moves t to the most-recently-used position.
func (l *LRUPaths) touchLocked(t *lruTree) {
	if l.head == t {
		return
	}
	l.unlinkLocked(t)
	l.pushFrontLocked(t)
}

// unlinkLocked removes t from the LRU list.
func (l *LRUPaths) unlinkLocked(t *lruTree) {
	if t.prev != nil {
		t.prev.nxt = t.nxt
	} else {
		l.head = t.nxt
	}
	if t.nxt != nil {
		t.nxt.prev = t.prev
	} else {
		l.tail = t.prev
	}
	t.prev, t.nxt = nil, nil
}

// pushFrontLocked inserts t at the most-recently-used position.
func (l *LRUPaths) pushFrontLocked(t *lruTree) {
	t.prev, t.nxt = nil, l.head
	if l.head != nil {
		l.head.prev = t
	}
	l.head = t
	if l.tail == nil {
		l.tail = t
	}
}

// Dist returns the shortest-path length from i to j, bit-identical to
// the dense backend.
func (l *LRUPaths) Dist(i, j NodeID) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.treeLocked(i).dist[j]
}

// Next returns the first hop out of i on a shortest path toward j, or
// -1 when i == j or j is unreachable; bit-identical to the dense
// backend.
func (l *LRUPaths) Next(i, j NodeID) NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.treeLocked(i).next[j]
}

// Path returns the node sequence from src to dst (inclusive), walking
// first hops across per-source trees exactly like APSP.Path walks Next
// rows — so the sequence is bit-identical to the dense backend's, ties
// included. A cold call can fill up to path-length trees; see PathTree
// for the single-tree variant.
func (l *LRUPaths) Path(src, dst NodeID) ([]NodeID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.g.N()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return nil, fmt.Errorf("topology: path endpoints (%d,%d) out of range", src, dst)
	}
	if src == dst {
		return []NodeID{src}, nil
	}
	path := []NodeID{src}
	cur := src
	for cur != dst {
		nxt := l.treeLocked(cur).next[dst]
		if nxt < 0 {
			return nil, fmt.Errorf("topology: %d unreachable from %d", dst, src)
		}
		path = append(path, nxt)
		cur = nxt
		if len(path) > n+1 {
			return nil, fmt.Errorf("topology: first-hop matrix contains a loop between %d and %d", src, dst)
		}
	}
	return path, nil
}

// PathTree returns a shortest path from src to dst read entirely out of
// src's own tree (the predecessor chain), touching exactly one cached
// tree — the query shape the LRU is sized for. The result is a valid
// shortest path of the same length as Path's; under exact equal-cost
// ties the node sequence may differ from the dense walk.
func (l *LRUPaths) PathTree(src, dst NodeID) ([]NodeID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.g.N()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return nil, fmt.Errorf("topology: path endpoints (%d,%d) out of range", src, dst)
	}
	if src == dst {
		return []NodeID{src}, nil
	}
	t := l.treeLocked(src)
	// Walk predecessors dst -> src, then reverse in place.
	path := []NodeID{dst}
	cur := dst
	for cur != src {
		p := t.parent[cur]
		if p < 0 {
			return nil, fmt.Errorf("topology: %d unreachable from %d", dst, src)
		}
		path = append(path, p)
		cur = p
		if len(path) > n+1 {
			return nil, fmt.Errorf("topology: predecessor chain contains a loop between %d and %d", src, dst)
		}
	}
	for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
		path[a], path[b] = path[b], path[a]
	}
	return path, nil
}

// Warm precomputes the trees of the given sources, fanning the
// Dijkstras over the worker pool (non-positive workers selects the
// default width) and inserting the results in input order, so a warmed
// cache is deterministic regardless of worker count. Sources beyond the
// cache capacity evict earlier ones, exactly as queries would.
func (l *LRUPaths) Warm(sources []NodeID, workers int) {
	if len(sources) == 0 {
		return
	}
	l.mu.Lock()
	if l.gen != l.g.gen {
		l.flushLocked()
	}
	// Skip sources that are already cached; compute the rest outside
	// per-source lock contention (the pool writes disjoint slots).
	missing := make([]NodeID, 0, len(sources))
	seen := make(map[NodeID]bool, len(sources))
	for _, s := range sources {
		if s < 0 || int(s) >= l.g.N() || seen[s] {
			continue
		}
		seen[s] = true
		if _, ok := l.trees[s]; !ok {
			missing = append(missing, s)
		}
	}
	n := l.g.N()
	l.mu.Unlock()
	if len(missing) == 0 {
		return
	}
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	if workers > len(missing) {
		workers = len(missing)
	}
	out := make([]*lruTree, len(missing))
	_ = par.ForEach(workers, workers, func(w int) error {
		scratch := newSPScratch(n, l.g.edges)
		for i := w; i < len(missing); i += workers {
			t := &lruTree{
				src:    missing[i],
				dist:   make([]float64, n),
				next:   make([]NodeID, n),
				parent: make([]NodeID, n),
			}
			l.g.dijkstraRows(missing[i], false, scratch, t.dist, t.next, t.parent)
			out[i] = t
		}
		return nil
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.gen != l.g.gen {
		// The graph mutated mid-warm; the computed trees are stale.
		l.flushLocked()
		return
	}
	for _, t := range out {
		if _, ok := l.trees[t.src]; ok {
			continue
		}
		l.misses++ // a warm fill is an off-path miss: it ran one Dijkstra
		if len(l.trees) >= l.cap && l.tail != nil {
			old := l.tail
			l.unlinkLocked(old)
			delete(l.trees, old.src)
			l.evictions++
		}
		l.trees[t.src] = t
		l.pushFrontLocked(t)
	}
}

// sweepLocked computes the whole-graph aggregates (max and sum of
// finite off-diagonal distances) with one streaming Dijkstra per
// source, reusing a single row buffer — O(n) memory where the dense
// MaxDist/MeanDist scan an O(n²) matrix. Rows are visited in the same
// source order and scanned in the same destination order as the dense
// scan, so both aggregates are bit-identical to the dense backend's.
func (l *LRUPaths) sweepLocked() {
	if l.gen != l.g.gen {
		l.flushLocked()
	}
	if l.aggValid && l.aggGen == l.gen {
		return
	}
	n := l.g.N()
	dist := make([]float64, n)
	next := make([]NodeID, n)
	parent := make([]NodeID, n)
	var maxD, sum float64
	for i := 0; i < n; i++ {
		// Serve from a cached tree when present — identical bits, no
		// extra Dijkstra.
		row := dist
		if t := l.trees[NodeID(i)]; t != nil {
			row = t.dist
		} else {
			l.g.dijkstraRows(NodeID(i), false, l.scratch, dist, next, parent)
		}
		for j, d := range row {
			if i != j && !math.IsInf(d, 1) {
				sum += d
				if d > maxD {
					maxD = d
				}
			}
		}
	}
	l.maxDist, l.distSum = maxD, sum
	l.aggValid, l.aggGen = true, l.gen
}

// MaxDist returns the largest finite off-diagonal distance (the
// weighted diameter), bit-identical to the dense backend. The first
// call per graph generation runs one Dijkstra per source (O(n) memory);
// the scalar is then cached.
func (l *LRUPaths) MaxDist() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sweepLocked()
	return l.maxDist
}

// MeanDist returns the mean off-diagonal pairwise distance (see
// APSP.MeanDist for the includeDiagonal convention), bit-identical to
// the dense backend; cached like MaxDist.
func (l *LRUPaths) MeanDist(includeDiagonal bool) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.g.N()
	if n < 2 {
		return 0
	}
	l.sweepLocked()
	if includeDiagonal {
		return l.distSum / float64(n*n)
	}
	return l.distSum / float64(n*(n-1))
}
