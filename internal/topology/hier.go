package topology

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// This file provides the hierarchical AS×POP topology generator that
// feeds the scalable routing backends: levels of aggregation (core
// backbone, regional ASes, POPs, access routers) expanded fanout by
// fanout into graphs of 10³–10⁵ routers, deterministically from a seed.
// The structure mirrors how internet-scale CCN deployments are
// described (a small meshed core, tiers of aggregation below it, leaves
// multi-homed for redundancy) and yields small diameters at huge node
// counts — the regime where the dense O(n²) APSP is impossible and the
// LRU/landmark backends earn their keep.

// HierLevel describes one tier of a hierarchical topology.
type HierLevel struct {
	// Fanout is the number of nodes this level creates per node of the
	// level above (for the top level: the absolute node count).
	Fanout int
	// MeanLatency is the mean one-way latency in ms of links created at
	// this level; each link draws uniformly from [0.5, 1.5)×mean.
	MeanLatency float64
	// Redundancy is the number of extra links per node beyond the
	// structural minimum: chords across the top-level ring, or
	// additional uplinks to random other parent-level nodes below
	// (multi-homing). Extra links that would duplicate an existing edge
	// are skipped, so it is a target, not a guarantee.
	Redundancy int
}

// MaxHierNodes bounds the total node count a hierarchy spec may expand
// to, protecting callers from typo'd fanouts that would OOM the process
// before any backend gets a say.
const MaxHierNodes = 1 << 21

// HierNodeCount returns the total node count the given levels expand
// to, without building anything.
func HierNodeCount(levels []HierLevel) int {
	total, width := 0, 1
	for _, lv := range levels {
		width *= lv.Fanout
		total += width
		if total > MaxHierNodes {
			return total
		}
	}
	return total
}

// Hierarchical builds a hierarchical topology from the level spec,
// deterministically from the seed: the top level is a latency-jittered
// ring (plus Redundancy random chords per node), and every lower level
// attaches Fanout children to each parent with one uplink plus
// Redundancy extra uplinks to random other parents. The same
// (levels, seed) pair always yields the same graph, edge for edge.
func Hierarchical(name string, levels []HierLevel, seed int64) (*Graph, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("topology: hierarchy needs at least one level")
	}
	for i, lv := range levels {
		if lv.Fanout < 1 {
			return nil, fmt.Errorf("topology: level %d fanout must be >= 1, got %d", i, lv.Fanout)
		}
		if !(lv.MeanLatency > 0) {
			return nil, fmt.Errorf("topology: level %d mean latency must be positive, got %v", i, lv.MeanLatency)
		}
		if lv.Redundancy < 0 {
			return nil, fmt.Errorf("topology: level %d redundancy must be >= 0, got %d", i, lv.Redundancy)
		}
	}
	total := HierNodeCount(levels)
	if total < 2 {
		return nil, fmt.Errorf("topology: hierarchy expands to %d node(s), need at least 2", total)
	}
	if total > MaxHierNodes {
		return nil, fmt.Errorf("topology: hierarchy expands to %d nodes, limit is %d", total, MaxHierNodes)
	}
	if name == "" {
		name = fmt.Sprintf("hier-%d", total)
	}
	g := New(name)
	g.grow(total)
	rng := rand.New(rand.NewSource(seed))
	jitter := func(mean float64) float64 { return mean * (0.5 + rng.Float64()) }

	// Top level: ring plus random chords.
	top := levels[0]
	prev := make([]NodeID, top.Fanout)
	for i := range prev {
		prev[i] = g.AddNode(fmt.Sprintf("L0-%d", i), 0, 0)
	}
	switch {
	case top.Fanout == 2:
		if err := g.AddEdge(prev[0], prev[1], jitter(top.MeanLatency)); err != nil {
			return nil, err
		}
	case top.Fanout >= 3:
		for i := range prev {
			if err := g.AddEdge(prev[i], prev[(i+1)%len(prev)], jitter(top.MeanLatency)); err != nil {
				return nil, err
			}
		}
	}
	if top.Fanout >= 4 && top.Redundancy > 0 {
		want := top.Fanout * top.Redundancy / 2
		for added, attempts := 0, 0; added < want && attempts < 20*want+40; attempts++ {
			a := prev[rng.Intn(len(prev))]
			b := prev[rng.Intn(len(prev))]
			if a == b || g.HasEdge(a, b) {
				continue
			}
			if err := g.AddEdge(a, b, jitter(top.MeanLatency)); err != nil {
				return nil, err
			}
			added++
		}
	}

	// Lower levels: parent uplink plus redundant uplinks to other
	// parents. Parents are visited in ID order and children appended in
	// order, so IDs and edges are reproducible.
	for li := 1; li < len(levels); li++ {
		lv := levels[li]
		cur := make([]NodeID, 0, len(prev)*lv.Fanout)
		for _, p := range prev {
			for c := 0; c < lv.Fanout; c++ {
				id := g.AddNode(fmt.Sprintf("L%d-%d", li, len(cur)), 0, 0)
				if err := g.AddEdge(id, p, jitter(lv.MeanLatency)); err != nil {
					return nil, err
				}
				for r, attempts := 0, 0; r < lv.Redundancy && len(prev) > 1 && attempts < 8*(lv.Redundancy+1); attempts++ {
					u := prev[rng.Intn(len(prev))]
					if u == p || g.HasEdge(id, u) {
						continue
					}
					if err := g.AddEdge(id, u, jitter(lv.MeanLatency)); err != nil {
						return nil, err
					}
					r++
				}
				cur = append(cur, id)
			}
		}
		prev = cur
	}
	return g, nil
}

// ParseHierSpec parses the ccntopo-style hierarchy flags into levels:
// fanouts is "x"- or ","-separated per-level fanouts ("8x16x25"); lats
// is a comma-separated per-level mean latency list (a single value
// applies to every level); reds is a comma-separated per-level
// redundancy list (empty means 0 everywhere, a single value applies to
// every level).
func ParseHierSpec(fanouts, lats, reds string) ([]HierLevel, error) {
	fparts := strings.FieldsFunc(fanouts, func(r rune) bool { return r == 'x' || r == ',' })
	if len(fparts) == 0 {
		return nil, fmt.Errorf("topology: empty hierarchy fanout spec")
	}
	levels := make([]HierLevel, len(fparts))
	for i, p := range fparts {
		f, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("topology: bad fanout %q in hierarchy spec: %v", p, err)
		}
		levels[i].Fanout = f
	}
	lparts := strings.Split(lats, ",")
	if lats == "" {
		return nil, fmt.Errorf("topology: empty hierarchy latency spec")
	}
	if len(lparts) != 1 && len(lparts) != len(levels) {
		return nil, fmt.Errorf("topology: latency spec has %d entries, want 1 or %d", len(lparts), len(levels))
	}
	for i := range levels {
		p := lparts[0]
		if len(lparts) > 1 {
			p = lparts[i]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("topology: bad latency %q in hierarchy spec: %v", p, err)
		}
		levels[i].MeanLatency = v
	}
	if reds != "" {
		rparts := strings.Split(reds, ",")
		if len(rparts) != 1 && len(rparts) != len(levels) {
			return nil, fmt.Errorf("topology: redundancy spec has %d entries, want 1 or %d", len(rparts), len(levels))
		}
		for i := range levels {
			p := rparts[0]
			if len(rparts) > 1 {
				p = rparts[i]
			}
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("topology: bad redundancy %q in hierarchy spec: %v", p, err)
			}
			levels[i].Redundancy = v
		}
	}
	return levels, nil
}

// DiameterEstimate returns a double-sweep lower bound on the weighted
// diameter in O(m log n): one Dijkstra from node 0 finds the farthest
// node u, a second from u returns its eccentricity. Exact on trees,
// and in practice tight on the hierarchical graphs; use a backend's
// MaxDist for exact (dense/LRU) or upper-bound (landmark) figures.
func (g *Graph) DiameterEstimate() float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	scratch := newSPScratch(n, g.edges)
	dist := make([]float64, n)
	next := make([]NodeID, n)
	parent := make([]NodeID, n)
	farthest := func(src NodeID) (NodeID, float64) {
		g.dijkstraRows(src, false, scratch, dist, next, parent)
		u, best := src, 0.0
		for v, d := range dist {
			if !math.IsInf(d, 1) && d > best {
				u, best = NodeID(v), d
			}
		}
		return u, best
	}
	u, _ := farthest(0)
	_, ecc := farthest(u)
	return ecc
}
