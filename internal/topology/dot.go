package topology

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the topology in Graphviz DOT format, with link
// latencies as edge labels. It is used by the ccntopo CLI to export maps
// like the paper's Figure 3.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", g.name)
	b.WriteString("  node [shape=ellipse fontsize=10];\n")
	for _, n := range g.nodes {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n.ID, n.Name)
	}
	for _, e := range g.EdgeList() {
		fmt.Fprintf(&b, "  n%d -- n%d [label=\"%.1fms\"];\n", e.A, e.B, e.Latency)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
