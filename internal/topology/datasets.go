package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// This file embeds the four evaluation topologies of the paper's Table II.
//
// Abilene uses the real Internet2/Abilene backbone map (11 aggregation
// points, 14 undirected links) with latencies derived from great-circle
// fiber distances. The paper's CERNET, GEANT and US-A latency matrices are
// not publicly available in machine-readable form (US-A is an anonymized
// tier-1 carrier by construction), so those graphs are synthesized with a
// geometric (Waxman) generator at the exact |V| and |E| of Table II, with
// the generator seed chosen so the mean pairwise hop count matches Table
// III, and link latencies affinely calibrated so the extracted parameters
// (w = max pairwise latency, d1-d0 = mean pairwise latency) reproduce
// Table III. All downstream evaluation consumes only those extracted
// parameters, so the substitution is behavior-preserving (DESIGN.md §4).

// PaperParams holds Table III's published values for comparison against
// extracted parameters.
type PaperParams struct {
	N           int
	UnitCost    float64 // w, ms
	TierGapMs   float64 // d1-d0, ms
	TierGapHops float64 // d1-d0, hops
}

// PaperTable3 maps topology name to the parameters published in Table III.
var PaperTable3 = map[string]PaperParams{
	"Abilene": {N: 11, UnitCost: 22.3, TierGapMs: 14.3, TierGapHops: 2.4182},
	"CERNET":  {N: 36, UnitCost: 33.3, TierGapMs: 16.2, TierGapHops: 2.8238},
	"GEANT":   {N: 23, UnitCost: 27.8, TierGapMs: 16.0, TierGapHops: 2.6008},
	"US-A":    {N: 20, UnitCost: 26.7, TierGapMs: 15.7, TierGapHops: 2.2842},
}

// PaperTable2 maps topology name to Table II's size statistics (|E| in
// the paper's directed-edge convention) and metadata.
var PaperTable2 = map[string]struct {
	V, E         int
	Region, Type string
}{
	"Abilene": {11, 28, "North America", "Educational"},
	"CERNET":  {36, 112, "East Asia", "Educational"},
	"GEANT":   {23, 74, "Europe", "Educational"},
	"US-A":    {20, 80, "North America", "Commercial"},
}

// abileneCity is one Abilene aggregation point.
type abileneCity struct {
	name     string
	lat, lon float64
}

var abileneCities = []abileneCity{
	{"Seattle", 47.61, -122.33},      // 0
	{"Sunnyvale", 37.37, -122.04},    // 1
	{"Los Angeles", 34.05, -118.24},  // 2
	{"Denver", 39.74, -104.99},       // 3
	{"Kansas City", 39.10, -94.58},   // 4
	{"Houston", 29.76, -95.37},       // 5
	{"Chicago", 41.88, -87.63},       // 6
	{"Indianapolis", 39.77, -86.16},  // 7
	{"Atlanta", 33.75, -84.39},       // 8
	{"Washington DC", 38.91, -77.04}, // 9
	{"New York", 40.71, -74.01},      // 10
}

// abileneLinks is the classic Abilene backbone (Internet2 map, 2004-2007).
var abileneLinks = [][2]int{
	{0, 1},  // Seattle - Sunnyvale
	{0, 3},  // Seattle - Denver
	{1, 2},  // Sunnyvale - Los Angeles
	{1, 3},  // Sunnyvale - Denver
	{2, 5},  // Los Angeles - Houston
	{3, 4},  // Denver - Kansas City
	{4, 5},  // Kansas City - Houston
	{4, 7},  // Kansas City - Indianapolis
	{5, 8},  // Houston - Atlanta
	{6, 7},  // Chicago - Indianapolis
	{6, 10}, // Chicago - New York
	{7, 8},  // Indianapolis - Atlanta
	{8, 9},  // Atlanta - Washington DC
	{9, 10}, // Washington DC - New York
}

// fiberDetourFactor inflates great-circle distance to typical fiber-route
// distance.
const fiberDetourFactor = 1.3

// buildAbilene constructs the real Abilene graph and calibrates its link
// latencies against Table III.
func buildAbilene() *Graph {
	g := New("Abilene")
	for _, c := range abileneCities {
		g.AddNode(c.name, c.lat, c.lon)
	}
	for _, ln := range abileneLinks {
		a, b := abileneCities[ln[0]], abileneCities[ln[1]]
		km := GreatCircleKm(a.lat, a.lon, b.lat, b.lon)
		g.MustAddEdge(NodeID(ln[0]), NodeID(ln[1]), PropagationMs(km*fiberDetourFactor)+0.3)
	}
	target := PaperTable3["Abilene"]
	calibrate(g, target, 11)
	return g
}

// synthSpec drives the synthesis of one unavailable dataset.
type synthSpec struct {
	name     string
	nodes    int
	links    int // undirected
	fieldKm  float64
	perHopMs float64
}

var synthSpecs = []synthSpec{
	{"CERNET", 36, 56, 3200, 0.4},
	{"GEANT", 23, 37, 3400, 0.4},
	{"US-A", 20, 40, 4200, 0.4},
}

// buildSynth generates the named dataset: a seed search minimizes the
// mean-hop-count error against Table III, then latencies are calibrated.
func buildSynth(spec synthSpec) *Graph {
	target := PaperTable3[spec.name]
	const seedTrials = 300
	var best *Graph
	var bestSeed int64
	bestErr := math.Inf(1)
	// The search scores candidates by mean pairwise hop count, which BFS
	// computes with reusable scratch instead of a full Dijkstra APSP per
	// candidate (unit weights make the distances identical, and integer
	// sums are exact in float64, so the selected seed is unchanged). One
	// rand source serves every trial — Seed fully resets it, yielding the
	// same streams as a fresh source per seed — and node names, which
	// depend only on the spec, are built once.
	src := rand.NewSource(0)
	rng := rand.New(src)
	bfs := newBFSScratch(spec.nodes)
	ws := newWaxScratch(spec.nodes)
	waxNames := make([]string, spec.nodes)
	rcNames := make([]string, spec.nodes)
	for i := range waxNames {
		waxNames[i] = fmt.Sprintf("%s-%d", spec.name, i)
		rcNames[i] = fmt.Sprintf("r%d", i)
	}
	consider := func(g *Graph, err error, seed int64) {
		if err != nil {
			return
		}
		hops, ok := g.meanHopsConnected(bfs)
		if !ok {
			return
		}
		if e := math.Abs(hops - target.TierGapHops); e < bestErr {
			best, bestErr, bestSeed = g, e, seed
		}
	}
	for seed := int64(1); seed <= seedTrials; seed++ {
		src.Seed(seed)
		g, err := waxmanRNG(rng, spec.name, spec.nodes, spec.links, spec.fieldKm, spec.perHopMs, waxNames, ws)
		consider(g, err, seed)
		// Non-geometric wiring reaches hop statistics the geometric
		// generator cannot; latencies are recalibrated afterwards either
		// way.
		src.Seed(seed)
		g, err = randomConnectedRNG(rng, spec.nodes, spec.links, 2, 12, rcNames)
		if err == nil {
			g.name = spec.name
		}
		consider(g, err, seed)
	}
	if best == nil {
		panic(fmt.Sprintf("topology: could not synthesize %s", spec.name))
	}
	calibrate(best, target, bestSeed)
	return best
}

// calibrate attaches a measured pairwise latency matrix whose mean and
// max off-diagonal entries equal Table III's d1-d0 (ms) and w exactly.
//
// The paper's datasets provide measured d_ij per router pair, which — as
// with real measurements — need not be additive along shortest paths.
// The matrix is derived from the graph's shortest-path latencies with a
// deterministic +-10% measurement jitter, then mapped affinely
// (d -> a*d + t, which shifts mean and max by the same transform) onto
// the targets. Link latencies are also rescaled so the link-level mean
// matches the target, keeping the graph itself plausible.
func calibrate(g *Graph, target PaperParams, seed int64) {
	lat := g.ShortestPathsLatency()
	if cur := lat.MeanDist(false); cur > 0 {
		_ = g.ScaleLatencies(target.TierGapMs / cur)
		lat = g.ShortestPathsLatency()
	}

	n := g.N()
	rng := rand.New(rand.NewSource(seed * 7919))
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			jit := 0.9 + 0.2*rng.Float64()
			v := lat.Dist(NodeID(i), NodeID(j)) * jit
			m[i][j], m[j][i] = v, v
		}
	}
	curMean := matrixMean(m)
	curMax := matrixMax(m)
	curMin := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && m[i][j] < curMin {
				curMin = m[i][j]
			}
		}
	}
	a, t := 1.0, 0.0
	if curMax > curMean {
		a = (target.UnitCost - target.TierGapMs) / (curMax - curMean)
		t = target.TierGapMs - a*curMean
	}
	if !(a > 0) || a*curMin+t <= 0.01 {
		// Degenerate spread; fall back to matching the mean only.
		a, t = target.TierGapMs/curMean, 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m[i][j] = a*m[i][j] + t
			}
		}
	}
	if err := g.SetMeasuredLatencies(m); err != nil {
		panic(fmt.Sprintf("topology: calibrating %s: %v", g.Name(), err))
	}
}

var (
	abileneOnce sync.Once
	abileneG    *Graph
	synthOnce   sync.Once
	synthG      map[string]*Graph
)

// Abilene returns the real Internet2/Abilene topology calibrated to Table
// III. The dataset is built once behind a sync.Once with its
// shortest-path caches pre-warmed; the returned graph is a fresh Clone
// sharing those caches, and callers may mutate it freely (the first
// mutation invalidates only the clone's cache).
func Abilene() *Graph {
	abileneOnce.Do(func() {
		abileneG = buildAbilene()
		abileneG.warmRouteCache()
	})
	return abileneG.Clone()
}

func synth(name string) *Graph {
	synthOnce.Do(func() {
		synthG = make(map[string]*Graph, len(synthSpecs))
		for _, spec := range synthSpecs {
			g := buildSynth(spec)
			g.warmRouteCache()
			synthG[spec.name] = g
		}
	})
	return synthG[name].Clone()
}

// CERNET returns the synthesized CERNET dataset (see package comment).
func CERNET() *Graph { return synth("CERNET") }

// GEANT returns the synthesized GEANT dataset (see package comment).
func GEANT() *Graph { return synth("GEANT") }

// USA returns the synthesized US-A dataset (see package comment).
func USA() *Graph { return synth("US-A") }

// All returns the four evaluation topologies in the paper's Table II
// order.
func All() []*Graph {
	return []*Graph{Abilene(), CERNET(), GEANT(), USA()}
}
