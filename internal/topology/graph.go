// Package topology provides the network-topology substrate of the
// evaluation: an undirected weighted graph with latency-annotated links,
// all-pairs shortest paths by latency and by hop count, extraction of the
// paper's topological parameters (Table III), deterministic random
// generators for network-size sweeps, and the four evaluation datasets
// (Abilene, CERNET, GEANT, US-A) of Table II.
package topology

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// NodeID identifies a node within a Graph; IDs are dense indices assigned
// in insertion order.
type NodeID int

// Node is a router (network aggregation point) with an optional
// geographic position used by the dataset builders to derive propagation
// latencies.
type Node struct {
	ID   NodeID
	Name string
	Lat  float64 // latitude, degrees
	Lon  float64 // longitude, degrees
}

// Edge is an undirected link with a propagation latency in milliseconds.
type Edge struct {
	A, B    NodeID
	Latency float64 // one-way latency, ms
}

// halfEdge is the adjacency-list representation of one direction of an
// Edge.
type halfEdge struct {
	to      NodeID
	latency float64
}

// Graph is an undirected, latency-weighted network topology. The zero
// value is an empty graph ready to use.
type Graph struct {
	name  string
	nodes []Node
	adj   [][]halfEdge
	edges int

	// measured, when non-nil, is an n x n matrix of measured pairwise
	// latencies (ms) between routers, the form in which the paper's
	// datasets report latency. It may disagree with shortest-path sums
	// over the links, exactly as real measurements do.
	measured [][]float64

	// gen stamps the graph's mutation generation: every mutator bumps
	// it, invalidating the cached all-pairs shortest-path matrices
	// below. Clones inherit the cache (they are structurally identical
	// until mutated), so handing out dataset copies does not re-run
	// APSP. The cache mutex serializes lazy fills and cache reads;
	// mutators themselves require external synchronization, as does all
	// Graph mutation.
	gen     uint64
	cacheMu sync.Mutex
	latSP   *APSP
	latGen  uint64
	hopSP   *APSP
	hopGen  uint64
}

// bump invalidates the cached shortest-path matrices after a mutation.
func (g *Graph) bump() { g.gen++ }

// Generation returns the graph's mutation generation; mutators
// increment it, and cached APSP results are valid only for the
// generation they were computed at.
func (g *Graph) Generation() uint64 { return g.gen }

// ShortestPathsLatency returns all-pairs shortest paths by link
// latency. The result is computed on first use and cached until a
// mutator bumps the graph's generation; the returned matrix is shared
// across callers (and across Clones taken while it is valid), so treat
// it as immutable.
func (g *Graph) ShortestPathsLatency() *APSP {
	g.cacheMu.Lock()
	defer g.cacheMu.Unlock()
	if g.latSP == nil || g.latGen != g.gen {
		g.latSP, g.latGen = g.shortestPathsLatencyFresh(), g.gen
	}
	return g.latSP
}

// ShortestPathsHops returns all-pairs shortest paths by hop count,
// cached like ShortestPathsLatency.
func (g *Graph) ShortestPathsHops() *APSP {
	g.cacheMu.Lock()
	defer g.cacheMu.Unlock()
	if g.hopSP == nil || g.hopGen != g.gen {
		g.hopSP, g.hopGen = g.shortestPathsHopsFresh(), g.gen
	}
	return g.hopSP
}

// warmRouteCache fills both shortest-path caches; the dataset builders
// call it once at build time so every handed-out clone starts with the
// matrices precomputed.
func (g *Graph) warmRouteCache() {
	g.ShortestPathsLatency()
	g.ShortestPathsHops()
}

// New returns an empty graph with the given display name.
func New(name string) *Graph {
	return &Graph{name: name}
}

// Name returns the topology's display name.
func (g *Graph) Name() string { return g.name }

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(name string, lat, lon float64) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Lat: lat, Lon: lon})
	g.adj = append(g.adj, nil)
	g.bump()
	return id
}

// grow pre-sizes the node and adjacency slices for n upcoming AddNode
// calls; the deterministic generators use it to avoid append growth
// during the dataset seed search.
func (g *Graph) grow(n int) {
	if cap(g.nodes)-len(g.nodes) < n {
		nodes := make([]Node, len(g.nodes), len(g.nodes)+n)
		copy(nodes, g.nodes)
		g.nodes = nodes
		adj := make([][]halfEdge, len(g.adj), len(g.adj)+n)
		copy(adj, g.adj)
		g.adj = adj
	}
}

// AddEdge inserts an undirected link between a and b with the given
// latency. It rejects self-loops, unknown endpoints, non-positive
// latencies, and duplicate links.
func (g *Graph) AddEdge(a, b NodeID, latency float64) error {
	switch {
	case a == b:
		return fmt.Errorf("topology: self-loop on node %d", a)
	case !g.valid(a) || !g.valid(b):
		return fmt.Errorf("topology: edge (%d,%d) references unknown node", a, b)
	case !(latency > 0):
		return fmt.Errorf("topology: edge (%d,%d) latency must be positive, got %v", a, b, latency)
	case g.HasEdge(a, b):
		return fmt.Errorf("topology: duplicate edge (%d,%d)", a, b)
	}
	g.adj[a] = append(g.adj[a], halfEdge{to: b, latency: latency})
	g.adj[b] = append(g.adj[b], halfEdge{to: a, latency: latency})
	g.edges++
	g.bump()
	return nil
}

// MustAddEdge is AddEdge but panics on error; for dataset literals.
func (g *Graph) MustAddEdge(a, b NodeID, latency float64) {
	if err := g.AddEdge(a, b, latency); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(id NodeID) bool {
	return id >= 0 && int(id) < len(g.nodes)
}

// HasEdge reports whether an undirected link between a and b exists.
func (g *Graph) HasEdge(a, b NodeID) bool {
	if !g.valid(a) {
		return false
	}
	for _, he := range g.adj[a] {
		if he.to == b {
			return true
		}
	}
	return false
}

// N returns the number of nodes (|V|).
func (g *Graph) N() int { return len(g.nodes) }

// Edges returns the number of undirected links. The paper's Table II
// counts each link in both directions; see DirectedEdgeCount.
func (g *Graph) Edges() int { return g.edges }

// DirectedEdgeCount returns 2*Edges(), matching Table II's |E| convention
// (Abilene: 11 nodes, 28 directed edges = 14 undirected links).
func (g *Graph) DirectedEdgeCount() int { return 2 * g.edges }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) (Node, error) {
	if !g.valid(id) {
		return Node{}, fmt.Errorf("topology: unknown node %d", id)
	}
	return g.nodes[id], nil
}

// Nodes returns a copy of all nodes in ID order.
func (g *Graph) Nodes() []Node {
	return append([]Node(nil), g.nodes...)
}

// EdgeList returns all undirected edges with A < B, sorted.
func (g *Graph) EdgeList() []Edge {
	var out []Edge
	for a, hes := range g.adj {
		for _, he := range hes {
			if NodeID(a) < he.to {
				out = append(out, Edge{A: NodeID(a), B: he.to, Latency: he.latency})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Neighbors returns the IDs adjacent to id, in insertion order.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	if !g.valid(id) {
		return nil
	}
	out := make([]NodeID, len(g.adj[id]))
	for i, he := range g.adj[id] {
		out[i] = he.to
	}
	return out
}

// EdgeLatency returns the latency of link (a, b), or an error if absent.
func (g *Graph) EdgeLatency(a, b NodeID) (float64, error) {
	if g.valid(a) {
		for _, he := range g.adj[a] {
			if he.to == b {
				return he.latency, nil
			}
		}
	}
	return 0, fmt.Errorf("topology: no edge (%d,%d)", a, b)
}

// Connected reports whether every node is reachable from node 0. Empty
// and single-node graphs are connected.
func (g *Graph) Connected() bool {
	if len(g.nodes) <= 1 {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, he := range g.adj[v] {
			if !seen[he.to] {
				seen[he.to] = true
				count++
				stack = append(stack, he.to)
			}
		}
	}
	return count == len(g.nodes)
}

// ScaleLatencies multiplies every link latency by factor (> 0). The
// dataset builders use it to calibrate synthesized graphs against the
// paper's reported parameters.
func (g *Graph) ScaleLatencies(factor float64) error {
	if !(factor > 0) {
		return fmt.Errorf("topology: scale factor must be positive, got %v", factor)
	}
	for a := range g.adj {
		for i := range g.adj[a] {
			g.adj[a][i].latency *= factor
		}
	}
	g.bump()
	return nil
}

// RemoveEdge deletes the undirected link between a and b. It fails if
// the link does not exist. Connectivity is not checked; callers that
// need it should verify with Connected.
func (g *Graph) RemoveEdge(a, b NodeID) error {
	if !g.HasEdge(a, b) {
		return fmt.Errorf("topology: no edge (%d,%d) to remove", a, b)
	}
	remove := func(from, to NodeID) {
		hes := g.adj[from]
		for i, he := range hes {
			if he.to == to {
				g.adj[from] = append(hes[:i], hes[i+1:]...)
				return
			}
		}
	}
	remove(a, b)
	remove(b, a)
	g.edges--
	g.bump()
	return nil
}

// SetMeasuredLatencies attaches an n x n measured pairwise latency
// matrix. The matrix must be square with dimension N(), zero on the
// diagonal, symmetric, and positive off the diagonal.
func (g *Graph) SetMeasuredLatencies(m [][]float64) error {
	n := len(g.nodes)
	if len(m) != n {
		return fmt.Errorf("topology: measured matrix has %d rows, want %d", len(m), n)
	}
	for i := range m {
		if len(m[i]) != n {
			return fmt.Errorf("topology: measured matrix row %d has %d columns, want %d", i, len(m[i]), n)
		}
		for j := range m[i] {
			switch {
			case i == j && m[i][j] != 0:
				return fmt.Errorf("topology: measured matrix diagonal (%d,%d) must be 0, got %v", i, j, m[i][j])
			case i != j && !(m[i][j] > 0):
				return fmt.Errorf("topology: measured latency (%d,%d) must be positive, got %v", i, j, m[i][j])
			case m[i][j] != m[j][i]:
				return fmt.Errorf("topology: measured matrix asymmetric at (%d,%d)", i, j)
			}
		}
	}
	g.measured = make([][]float64, n)
	for i := range m {
		g.measured[i] = append([]float64(nil), m[i]...)
	}
	g.bump()
	return nil
}

// MeasuredLatencies returns a copy of the measured pairwise latency
// matrix, or nil if none is attached.
func (g *Graph) MeasuredLatencies() [][]float64 {
	if g.measured == nil {
		return nil
	}
	out := make([][]float64, len(g.measured))
	for i := range g.measured {
		out[i] = append([]float64(nil), g.measured[i]...)
	}
	return out
}

// TransformLatencies replaces every link latency l with f(l). It fails
// (leaving the graph unchanged) if any transformed latency would be
// non-positive.
func (g *Graph) TransformLatencies(f func(float64) float64) error {
	type update struct {
		a, i int
		v    float64
	}
	var updates []update
	for a := range g.adj {
		for i := range g.adj[a] {
			v := f(g.adj[a][i].latency)
			if !(v > 0) {
				return fmt.Errorf("topology: transform yields non-positive latency %v", v)
			}
			updates = append(updates, update{a, i, v})
		}
	}
	for _, u := range updates {
		g.adj[u.a][u.i].latency = u.v
	}
	g.bump()
	return nil
}

// Clone returns a deep copy of the graph, including any measured
// latency matrix. The copy shares the source's cached shortest-path
// matrices (they describe the identical structure); a later mutation
// of either graph invalidates only that graph's cache, so clones of
// the memoized datasets start with routing precomputed for free.
func (g *Graph) Clone() *Graph {
	c := &Graph{name: g.name, edges: g.edges}
	c.nodes = append([]Node(nil), g.nodes...)
	c.adj = make([][]halfEdge, len(g.adj))
	for i, hes := range g.adj {
		c.adj[i] = append([]halfEdge(nil), hes...)
	}
	if g.measured != nil {
		c.measured = make([][]float64, len(g.measured))
		for i := range g.measured {
			c.measured[i] = append([]float64(nil), g.measured[i]...)
		}
	}
	g.cacheMu.Lock()
	c.gen = g.gen
	c.latSP, c.latGen = g.latSP, g.latGen
	c.hopSP, c.hopGen = g.hopSP, g.hopGen
	g.cacheMu.Unlock()
	return c
}

// GreatCircleKm returns the haversine distance in kilometers between two
// coordinates.
func GreatCircleKm(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371.0
	toRad := func(deg float64) float64 { return deg * math.Pi / 180 }
	dLat := toRad(lat2 - lat1)
	dLon := toRad(lon2 - lon1)
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(toRad(lat1))*math.Cos(toRad(lat2))*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// PropagationMs converts a fiber-path distance in kilometers to one-way
// propagation latency in milliseconds, using the standard ~2/3 c speed of
// light in fiber (~5 microseconds per km).
func PropagationMs(km float64) float64 { return km * 0.005 }
