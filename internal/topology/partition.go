package topology

import (
	"fmt"
	"math"
)

// Partition is a deterministic assignment of every node to one of
// Parts contiguous regions, produced by PartitionGraph. It also
// carries the two cut statistics the sharded simulator needs: the
// minimum latency over any cut edge (the conservative-lookahead bound
// — no cross-region event can arrive sooner than this) and the number
// of cut edges (a proxy for cross-shard traffic volume).
type Partition struct {
	// Parts is the number of regions actually produced. It can be
	// lower than requested when the graph has fewer nodes than the
	// requested part count.
	Parts int
	// Of maps each node to its part in [0, Parts).
	Of []int32
	// CutLatency is the minimum latency over edges whose endpoints
	// land in different parts, or +Inf when no edge is cut (Parts==1,
	// or each connected component fits entirely inside one part).
	CutLatency float64
	// CutEdges counts undirected edges crossing a part boundary.
	CutEdges int
}

// PartitionGraph splits g into the requested number of parts using a
// deterministic greedy min-edge-cut accretion: each part grows from the
// lowest-numbered unassigned node by repeatedly absorbing the frontier
// node that improves the running cut the most — the node maximizing
// gain − external = 2·gain − degree, where gain counts its edges into
// the region (ties to the smaller node ID) — until the part reaches its
// quota ⌈remaining/partsLeft⌉. Scoring by net cut improvement rather
// than raw gain matters on tree-like graphs, where every frontier node
// has gain 1 and raw-gain greedy degenerates into an ID-order BFS that
// shreds subtrees; with the external term the growth dives into one
// subtree at a time, so for hierarchical AS×POP graphs the regions
// follow subtrees and the cut falls on the few AS uplinks rather than
// through the POP fan-outs.
//
// The algorithm uses no randomness and visits nodes in ID order, so the
// result is a pure function of (graph, parts): identical across runs,
// GOMAXPROCS settings, and platforms. Disconnected graphs are handled
// by restarting growth from the lowest-numbered unassigned node
// whenever the frontier empties before the quota is met.
func PartitionGraph(g *Graph, parts int) (*Partition, error) {
	if g == nil {
		return nil, fmt.Errorf("topology: nil graph")
	}
	if parts < 1 {
		return nil, fmt.Errorf("topology: part count %d < 1", parts)
	}
	n := g.N()
	if parts > n && n > 0 {
		parts = n
	}
	p := &Partition{Parts: parts, Of: make([]int32, n), CutLatency: math.Inf(1)}
	if n == 0 {
		p.Parts = parts
		return p, nil
	}
	for i := range p.Of {
		p.Of[i] = -1
	}

	// gain[v] counts v's edges into the part currently growing; the
	// candidate heap orders the frontier by (2·gain−degree desc, id
	// asc). Gains only grow while a part grows, so a node's score only
	// rises and stale heap entries are skipped by re-checking the score
	// at pop time (lazy deletion).
	gain := make([]int32, n)
	score := func(v NodeID) int32 { return 2*gain[v] - int32(len(g.adj[v])) }
	touched := make([]NodeID, 0, n)
	var frontier candHeap

	assigned := 0
	lowest := NodeID(0) // cursor over unassigned node IDs; only advances
	for part := 0; part < parts; part++ {
		remaining := n - assigned
		if remaining == 0 {
			break
		}
		quota := (remaining + parts - part - 1) / (parts - part)
		// Reset per-part growth state.
		for _, v := range touched {
			gain[v] = 0
		}
		touched = touched[:0]
		frontier = frontier[:0]

		size := 0
		for size < quota {
			var pick NodeID = -1
			for len(frontier) > 0 {
				c := frontier.pop()
				if p.Of[c.id] < 0 && score(c.id) == c.score {
					pick = c.id
					break
				}
			}
			if pick < 0 {
				// Frontier exhausted (fresh part, or a disconnected
				// component ran out): seed from the lowest unassigned ID.
				for p.Of[lowest] >= 0 {
					lowest++
				}
				pick = lowest
			}
			p.Of[pick] = int32(part)
			assigned++
			size++
			for _, he := range g.adj[pick] {
				w := he.to
				if p.Of[w] >= 0 {
					continue
				}
				if gain[w] == 0 {
					touched = append(touched, w)
				}
				gain[w]++
				frontier.push(cand{score: score(w), id: w})
			}
		}
	}

	// Cut statistics over the undirected edge set.
	for a := range g.adj {
		for _, he := range g.adj[a] {
			if NodeID(a) < he.to && p.Of[a] != p.Of[he.to] {
				p.CutEdges++
				if he.latency < p.CutLatency {
					p.CutLatency = he.latency
				}
			}
		}
	}
	return p, nil
}

// cand is a frontier candidate for greedy part growth.
type cand struct {
	score int32 // 2·gain − degree at push time
	id    NodeID
}

// candHeap is a max-heap over (score, -id): highest score first,
// smaller node ID on ties. Stale entries (score no longer current) are
// filtered by the caller at pop time.
type candHeap []cand

func (h candHeap) less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return h[i].id < h[j].id
}

func (h *candHeap) push(c cand) {
	*h = append(*h, c)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *candHeap) pop() cand {
	q := *h
	top := q[0]
	m := len(q) - 1
	q[0] = q[m]
	q = q[:m]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < m && q.less(l, best) {
			best = l
		}
		if r < m && q.less(r, best) {
			best = r
		}
		if best == i {
			break
		}
		q[i], q[best] = q[best], q[i]
		i = best
	}
	return top
}
