package topology

import (
	"math"
	"reflect"
	"runtime"
	"testing"
)

func partitionTestGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	grid, err := Grid(8, 8, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomConnected(60, 120, 1, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	levels, err := ParseHierSpec("4,4,8", "20,5,1", "1,1,1")
	if err != nil {
		t.Fatal(err)
	}
	hier, err := Hierarchical("hier-test", levels, 11)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{"grid": grid, "random": rnd, "hier": hier}
}

// TestPartitionCovers: every node is assigned exactly once, to a part
// in range, and parts are balanced to within the ceiling quota.
func TestPartitionCovers(t *testing.T) {
	for name, g := range partitionTestGraphs(t) {
		for _, parts := range []int{1, 2, 3, 4, 8} {
			p, err := PartitionGraph(g, parts)
			if err != nil {
				t.Fatalf("%s parts=%d: %v", name, parts, err)
			}
			if len(p.Of) != g.N() {
				t.Fatalf("%s parts=%d: Of covers %d of %d nodes", name, parts, len(p.Of), g.N())
			}
			counts := make([]int, p.Parts)
			for v, part := range p.Of {
				if part < 0 || int(part) >= p.Parts {
					t.Fatalf("%s parts=%d: node %d assigned to out-of-range part %d", name, parts, v, part)
				}
				counts[part]++
			}
			quota := (g.N() + p.Parts - 1) / p.Parts
			for part, c := range counts {
				if c == 0 {
					t.Errorf("%s parts=%d: part %d is empty", name, parts, part)
				}
				if c > quota {
					t.Errorf("%s parts=%d: part %d holds %d nodes, quota is %d", name, parts, part, c, quota)
				}
			}
		}
	}
}

// TestPartitionCutLatency: CutLatency equals the true minimum latency
// over cut edges (computed independently from the edge list), and
// CutEdges counts exactly the crossing edges.
func TestPartitionCutLatency(t *testing.T) {
	for name, g := range partitionTestGraphs(t) {
		for _, parts := range []int{2, 4} {
			p, err := PartitionGraph(g, parts)
			if err != nil {
				t.Fatal(err)
			}
			min, cut := math.Inf(1), 0
			for _, e := range g.EdgeList() {
				if p.Of[e.A] != p.Of[e.B] {
					cut++
					if e.Latency < min {
						min = e.Latency
					}
				}
			}
			if p.CutEdges != cut {
				t.Errorf("%s parts=%d: CutEdges=%d, edge list says %d", name, parts, p.CutEdges, cut)
			}
			if p.CutLatency != min {
				t.Errorf("%s parts=%d: CutLatency=%v, edge list says %v", name, parts, p.CutLatency, min)
			}
			if cut == 0 {
				t.Errorf("%s parts=%d: connected graph split into %d parts must cut at least one edge", name, parts, p.Parts)
			}
		}
	}
}

// TestPartitionSinglePart: one part cuts nothing and reports an
// infinite lookahead bound.
func TestPartitionSinglePart(t *testing.T) {
	g := partitionTestGraphs(t)["grid"]
	p, err := PartitionGraph(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v, part := range p.Of {
		if part != 0 {
			t.Fatalf("node %d in part %d, want 0", v, part)
		}
	}
	if p.CutEdges != 0 || !math.IsInf(p.CutLatency, 1) {
		t.Errorf("CutEdges=%d CutLatency=%v, want 0 and +Inf", p.CutEdges, p.CutLatency)
	}
}

// TestPartitionDeterminism: the partition is a pure function of
// (graph, parts) — identical across repeated runs and across
// GOMAXPROCS settings (the partitioner is sequential by construction,
// but the guarantee is part of its contract, so pin it).
func TestPartitionDeterminism(t *testing.T) {
	g := partitionTestGraphs(t)["hier"]
	base, err := PartitionGraph(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		p, err := PartitionGraph(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, p) {
			t.Fatalf("run %d: partition differs from first run", run)
		}
	}
	old := runtime.GOMAXPROCS(1)
	p, err := PartitionGraph(g, 4)
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, p) {
		t.Error("partition differs under GOMAXPROCS=1")
	}
}

// TestPartitionDisconnected: a graph with multiple components is still
// fully assigned; when every component fits inside one part no edge is
// cut and the lookahead bound is +Inf.
func TestPartitionDisconnected(t *testing.T) {
	var g Graph
	// Two 4-node paths with no edge between them.
	for i := 0; i < 8; i++ {
		g.AddNode("", 0, 0)
	}
	for _, pair := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}} {
		g.MustAddEdge(pair[0], pair[1], 3)
	}
	p, err := PartitionGraph(&g, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int32]int{}
	for _, part := range p.Of {
		counts[part]++
	}
	if counts[0] != 4 || counts[1] != 4 {
		t.Errorf("component split = %v, want 4/4", counts)
	}
	// Greedy growth from node 0 absorbs the first path, then restarts
	// on the second: components land in separate parts, nothing is cut.
	if p.CutEdges != 0 || !math.IsInf(p.CutLatency, 1) {
		t.Errorf("CutEdges=%d CutLatency=%v, want 0 and +Inf", p.CutEdges, p.CutLatency)
	}

	// More parts than one component can fill still assigns everything.
	p3, err := PartitionGraph(&g, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v, part := range p3.Of {
		if part < 0 || int(part) >= p3.Parts {
			t.Fatalf("node %d unassigned or out of range: part %d", v, part)
		}
	}
}

// TestPartitionErrors covers argument validation and degenerate sizes.
func TestPartitionErrors(t *testing.T) {
	if _, err := PartitionGraph(nil, 2); err == nil {
		t.Error("nil graph should fail")
	}
	g := partitionTestGraphs(t)["grid"]
	if _, err := PartitionGraph(g, 0); err == nil {
		t.Error("zero parts should fail")
	}
	// More parts than nodes clamps to one node per part.
	var tiny Graph
	tiny.AddNode("", 0, 0)
	tiny.AddNode("", 0, 0)
	tiny.MustAddEdge(0, 1, 1)
	p, err := PartitionGraph(&tiny, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Parts != 2 {
		t.Errorf("Parts = %d for a 2-node graph, want clamp to 2", p.Parts)
	}
	if p.Of[0] == p.Of[1] {
		t.Error("2 nodes in 2 parts must separate")
	}
	// Empty graph: no assignment, no cut.
	var empty Graph
	pe, err := PartitionGraph(&empty, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pe.Of) != 0 || pe.CutEdges != 0 {
		t.Errorf("empty graph partition: %+v", pe)
	}
}

// TestPartitionHierCutQuality: on a hierarchical AS×POP graph the
// greedy accretion must follow subtrees. With no redundancy the graph
// is a tree hanging off the core ring, a 4-way split of 4 equal
// subtrees exists, and the cut must be exactly the core ring; with one
// redundant uplink per child the random chords make some cut
// unavoidable, but the tree edges must survive (cut fraction well
// below the ~3/4 a blind split would pay on the chords alone).
func TestPartitionHierCutQuality(t *testing.T) {
	build := func(reds string) *Graph {
		levels, err := ParseHierSpec("4,8,8", "20,5,1", reds)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Hierarchical("hier-cut", levels, 11)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	tree := build("0,0,0")
	pt, err := PartitionGraph(tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CutEdges != 4 {
		t.Errorf("tree hierarchy: cut %d edges, want exactly the 4 core-ring edges", pt.CutEdges)
	}
	// The cut latency must be a core-class latency: jittered 20ms means
	// at least 10ms, far above the 1ms leaf links.
	if pt.CutLatency < 10 {
		t.Errorf("tree hierarchy: CutLatency = %v, want a core-ring latency >= 10", pt.CutLatency)
	}

	red := build("1,1,1")
	pr, err := PartitionGraph(red, 4)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(pr.CutEdges) / float64(red.Edges()); frac > 0.45 {
		t.Errorf("redundant hierarchy: cut fraction %.2f too high (%d of %d edges)", frac, pr.CutEdges, red.Edges())
	}
	if pr.CutLatency <= 0 {
		t.Errorf("redundant hierarchy: CutLatency = %v, want positive", pr.CutLatency)
	}
}
