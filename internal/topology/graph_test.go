package topology

import (
	"math"
	"strings"
	"testing"
)

func triangle(t *testing.T) *Graph {
	t.Helper()
	g := New("tri")
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 0, 0)
	c := g.AddNode("c", 0, 0)
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(b, c, 2)
	g.MustAddEdge(a, c, 10)
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New("t")
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 0, 0)
	tests := []struct {
		name    string
		a, b    NodeID
		latency float64
	}{
		{"self loop", a, a, 1},
		{"unknown node", a, 99, 1},
		{"negative node", -1, b, 1},
		{"zero latency", a, b, 0},
		{"negative latency", a, b, -2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.a, tt.b, tt.latency); err == nil {
				t.Error("want error")
			}
		})
	}
	if err := g.AddEdge(a, b, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(b, a, 2); err == nil {
		t.Error("duplicate edge (reversed) accepted")
	}
}

func TestGraphAccessors(t *testing.T) {
	g := triangle(t)
	if g.N() != 3 || g.Edges() != 3 || g.DirectedEdgeCount() != 6 {
		t.Errorf("N=%d Edges=%d Directed=%d, want 3/3/6", g.N(), g.Edges(), g.DirectedEdgeCount())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 99) {
		t.Error("HasEdge with unknown node should be false")
	}
	n, err := g.Node(1)
	if err != nil || n.Name != "b" {
		t.Errorf("Node(1) = %+v, %v", n, err)
	}
	if _, err := g.Node(42); err == nil {
		t.Error("Node(42) should fail")
	}
	if lat, err := g.EdgeLatency(1, 2); err != nil || lat != 2 {
		t.Errorf("EdgeLatency(1,2) = %v, %v", lat, err)
	}
	if _, err := g.EdgeLatency(0, 42); err == nil {
		t.Error("EdgeLatency on missing edge should fail")
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 {
		t.Errorf("Neighbors(0) = %v, want 2 entries", nb)
	}
	if g.Neighbors(99) != nil {
		t.Error("Neighbors of unknown node should be nil")
	}
	edges := g.EdgeList()
	if len(edges) != 3 || edges[0].A > edges[0].B {
		t.Errorf("EdgeList = %+v", edges)
	}
}

func TestConnected(t *testing.T) {
	g := triangle(t)
	if !g.Connected() {
		t.Error("triangle should be connected")
	}
	g.AddNode("isolated", 0, 0)
	if g.Connected() {
		t.Error("graph with isolated node should not be connected")
	}
	empty := New("e")
	if !empty.Connected() {
		t.Error("empty graph is connected by convention")
	}
}

func TestScaleAndTransformLatencies(t *testing.T) {
	g := triangle(t)
	if err := g.ScaleLatencies(2); err != nil {
		t.Fatal(err)
	}
	if lat, _ := g.EdgeLatency(0, 1); lat != 2 {
		t.Errorf("scaled latency = %v, want 2", lat)
	}
	if err := g.ScaleLatencies(0); err == nil {
		t.Error("zero scale should fail")
	}
	if err := g.TransformLatencies(func(l float64) float64 { return l + 1 }); err != nil {
		t.Fatal(err)
	}
	if lat, _ := g.EdgeLatency(0, 1); lat != 3 {
		t.Errorf("transformed latency = %v, want 3", lat)
	}
	before, _ := g.EdgeLatency(1, 2)
	if err := g.TransformLatencies(func(l float64) float64 { return l - 100 }); err == nil {
		t.Error("transform to negative latency should fail")
	}
	if after, _ := g.EdgeLatency(1, 2); after != before {
		t.Error("failed transform must leave the graph unchanged")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangle(t)
	m := [][]float64{{0, 1, 2}, {1, 0, 3}, {2, 3, 0}}
	if err := g.SetMeasuredLatencies(m); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if err := c.ScaleLatencies(10); err != nil {
		t.Fatal(err)
	}
	if lat, _ := g.EdgeLatency(0, 1); lat != 1 {
		t.Error("mutating clone affected original links")
	}
	cm := c.MeasuredLatencies()
	cm[0][1] = 999
	if g.MeasuredLatencies()[0][1] != 1 {
		t.Error("measured matrix not deep-copied")
	}
}

func TestSetMeasuredLatenciesValidation(t *testing.T) {
	g := triangle(t)
	tests := []struct {
		name string
		m    [][]float64
	}{
		{"wrong rows", [][]float64{{0, 1}, {1, 0}}},
		{"ragged", [][]float64{{0, 1, 2}, {1, 0}, {2, 3, 0}}},
		{"nonzero diagonal", [][]float64{{1, 1, 2}, {1, 0, 3}, {2, 3, 0}}},
		{"zero off-diagonal", [][]float64{{0, 0, 2}, {0, 0, 3}, {2, 3, 0}}},
		{"asymmetric", [][]float64{{0, 1, 2}, {5, 0, 3}, {2, 3, 0}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.SetMeasuredLatencies(tt.m); err == nil {
				t.Error("want validation error")
			}
		})
	}
	if g.MeasuredLatencies() != nil {
		t.Error("failed SetMeasuredLatencies must not attach a matrix")
	}
}

func TestGreatCircleKm(t *testing.T) {
	// New York <-> Los Angeles is about 3940 km.
	d := GreatCircleKm(40.71, -74.01, 34.05, -118.24)
	if d < 3800 || d > 4100 {
		t.Errorf("NY-LA distance = %v km, want ~3940", d)
	}
	if GreatCircleKm(10, 20, 10, 20) != 0 {
		t.Error("distance to self should be 0")
	}
}

func TestPropagationMs(t *testing.T) {
	if got := PropagationMs(1000); math.Abs(got-5) > 1e-12 {
		t.Errorf("PropagationMs(1000) = %v, want 5", got)
	}
}

func TestWriteDOT(t *testing.T) {
	g := triangle(t)
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`graph "tri"`, `n0 [label="a"]`, "n0 -- n1", "n1 -- n2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestRemoveEdge(t *testing.T) {
	g := triangle(t)
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("edge still present after removal")
	}
	if g.Edges() != 2 {
		t.Errorf("Edges = %d, want 2", g.Edges())
	}
	if !g.Connected() {
		t.Error("triangle minus one edge should stay connected")
	}
	if err := g.RemoveEdge(0, 1); err == nil {
		t.Error("removing a missing edge should fail")
	}
	// Shortest paths reroute around the removed edge.
	sp := g.ShortestPathsLatency()
	if got := sp.Dist(0, 1); got != 12 { // 0-2 (10) + 2-1 (2)
		t.Errorf("rerouted dist(0,1) = %v, want 12", got)
	}
}
