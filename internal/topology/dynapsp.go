package topology

import "math"

// DynAPSP maintains latency shortest paths over the alive subgraph of a
// base graph under a sequence of single-element fault events (link or
// node down/up). Instead of rerunning Dijkstra from every source per
// event — the cost the fault-aware forwarding plane used to pay — it
// repairs only the sources whose shortest-path trees actually involve
// the changed element, detected from the Parent matrix:
//
//   - link (a,b) down: source s is affected iff its tree uses the edge,
//     i.e. Parent(s,b)==a or Parent(s,a)==b.
//   - link (a,b) up: s is affected iff an endpoint improves
//     (Dist(s,a)+w < Dist(s,b) or vice versa); by the triangle
//     inequality no other destination can improve if neither does.
//   - node v down: sources routing through v (some Parent(s,u)==v) are
//     recomputed; for every other source v was at most a leaf, so only
//     the (s,v) entries are patched to unreachable.
//   - node v up: v's own row is recomputed, then s is affected iff some
//     destination improves via v (Dist(v,s)+Dist(v,d) < Dist(s,d) for
//     d != v); otherwise only column v is patched, using the symmetry
//     of the undirected alive subgraph (Next(s,v)=Parent(v,s),
//     Parent(s,v)=Next(v,s)).
//
// When the last fault clears, the matrix is restored by copying the
// pristine all-up base, so arbitrarily long fault/repair schedules
// never accumulate drift. Repaired rows are produced by the same
// Dijkstra (same adjacency iteration order — RemoveEdge preserves
// relative edge order, and the alive scan skips dead edges in place) as
// a full recompute over the alive subgraph, so distances match a fresh
// computation exactly; under exactly equal-cost multipath ties the
// retained unaffected rows may pick a different (equally shortest)
// first hop than a from-scratch run would. The evaluation topologies
// carry continuous float latencies where exact ties do not occur.
//
// DynAPSP is not safe for concurrent use; the base graph must not be
// mutated while attached.
type DynAPSP struct {
	g        *Graph
	base     *APSP // pristine all-up matrix (shared cache entry; immutable)
	cur      *APSP // current alive-subgraph matrix (owned, mutable)
	nodeDown []bool
	numDown  int
	linkDown map[[2]NodeID]bool
	scratch  *spScratch
}

// dynKey normalizes an undirected link to a map key.
func dynKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// NewDynAPSP attaches an incremental shortest-path maintainer to g,
// optionally seeded with already-down elements (downNodes in ID order
// and downLinks in sorted-key order keep the construction
// deterministic). With no initial faults the current matrix is a copy
// of the graph's cached all-up APSP; otherwise every source is solved
// once over the alive subgraph.
func NewDynAPSP(g *Graph, downNodes []NodeID, downLinks [][2]NodeID) *DynAPSP {
	d := &DynAPSP{
		g:        g,
		base:     g.ShortestPathsLatency(),
		nodeDown: make([]bool, g.N()),
		linkDown: make(map[[2]NodeID]bool),
		scratch:  newSPScratch(g.N(), g.Edges()),
	}
	d.cur = d.base.clone()
	for _, v := range downNodes {
		if !d.nodeDown[v] {
			d.nodeDown[v] = true
			d.numDown++
		}
	}
	for _, l := range downLinks {
		d.linkDown[dynKey(l[0], l[1])] = true
	}
	if d.numDown > 0 || len(d.linkDown) > 0 {
		for s := 0; s < d.cur.n; s++ {
			d.recomputeSource(NodeID(s))
		}
	}
	return d
}

// Current returns the matrix for the present alive subgraph. It is
// repaired in place: the pointer stays valid across events and must be
// treated as read-only by callers.
func (d *DynAPSP) Current() *APSP { return d.cur }

// allUp reports whether no element is currently down.
func (d *DynAPSP) allUp() bool { return d.numDown == 0 && len(d.linkDown) == 0 }

// SetLink marks the undirected link (a, b) down or up and repairs the
// affected sources. It returns the current matrix.
func (d *DynAPSP) SetLink(a, b NodeID, up bool) *APSP {
	key := dynKey(a, b)
	if d.linkDown[key] != up {
		return d.cur // idempotent
	}
	if up {
		delete(d.linkDown, key)
		if d.allUp() {
			d.cur.copyFrom(d.base)
			return d.cur
		}
		d.repairLinkUp(a, b)
	} else {
		d.linkDown[key] = true
		d.repairLinkDown(a, b)
	}
	return d.cur
}

// SetNode marks router v down or up and repairs the affected sources.
// It returns the current matrix.
func (d *DynAPSP) SetNode(v NodeID, up bool) *APSP {
	if d.nodeDown[v] != up {
		return d.cur // idempotent
	}
	if up {
		d.nodeDown[v] = false
		d.numDown--
		if d.allUp() {
			d.cur.copyFrom(d.base)
			return d.cur
		}
		d.repairNodeUp(v)
	} else {
		d.nodeDown[v] = true
		d.numDown++
		d.repairNodeDown(v)
	}
	return d.cur
}

// repairLinkDown recomputes every source whose shortest-path tree used
// the now-dead edge (a, b). Rows of down sources are already isolated
// (all parents -1), so they never match.
func (d *DynAPSP) repairLinkDown(a, b NodeID) {
	for s := 0; s < d.cur.n; s++ {
		src := NodeID(s)
		if d.cur.Parent(src, b) == a || d.cur.Parent(src, a) == b {
			d.recomputeSource(src)
		}
	}
}

// repairLinkUp recomputes every source for which the restored edge
// shortens a path. If either endpoint is down the edge stays
// effectively dead and nothing changes.
func (d *DynAPSP) repairLinkUp(a, b NodeID) {
	if d.nodeDown[a] || d.nodeDown[b] {
		return
	}
	w, err := d.g.EdgeLatency(a, b)
	if err != nil {
		return // link no longer in the base graph; nothing to restore
	}
	for s := 0; s < d.cur.n; s++ {
		src := NodeID(s)
		if d.nodeDown[src] {
			continue
		}
		da, db := d.cur.Dist(src, a), d.cur.Dist(src, b)
		if da+w < db || db+w < da {
			d.recomputeSource(src)
		}
	}
}

// repairNodeDown isolates v's row and repairs the sources that routed
// through v; for sources where v was a leaf of the tree only the (s,v)
// entries change.
func (d *DynAPSP) repairNodeDown(v NodeID) {
	d.recomputeSource(v) // nodeDown[v] is set: the row becomes isolated
	n := d.cur.n
	for s := 0; s < n; s++ {
		src := NodeID(s)
		if src == v || d.nodeDown[src] {
			continue
		}
		row := d.cur.parent[s*n : s*n+n]
		through := false
		for _, p := range row {
			if p == v {
				through = true
				break
			}
		}
		if through {
			d.recomputeSource(src)
			continue
		}
		d.cur.dist[s*n+int(v)] = math.Inf(1)
		d.cur.next[s*n+int(v)] = -1
		d.cur.parent[s*n+int(v)] = -1
	}
}

// repairNodeUp recomputes v's row over the alive subgraph, then repairs
// every source that gains a shorter path through v; the remaining
// sources only need their column-v entries, derived from v's row by
// undirected symmetry. (The symmetric distance is copied from v's run,
// whose additions happened in reverse path order; forwarding consumes
// only Next, so a last-ulp asymmetry cannot surface.)
func (d *DynAPSP) repairNodeUp(v NodeID) {
	d.recomputeSource(v)
	n := d.cur.n
	vd := d.cur.dist[int(v)*n : int(v)*n+n]
	for s := 0; s < n; s++ {
		src := NodeID(s)
		if src == v || d.nodeDown[src] {
			continue
		}
		dvs := vd[s]
		if math.IsInf(dvs, 1) {
			continue // v cannot reach s, so s cannot route via v
		}
		srow := d.cur.dist[s*n : s*n+n]
		improved := false
		for dst := 0; dst < n; dst++ {
			if dst == int(v) {
				continue
			}
			if dvs+vd[dst] < srow[dst] {
				improved = true
				break
			}
		}
		if improved {
			d.recomputeSource(src)
			continue
		}
		d.cur.dist[s*n+int(v)] = dvs
		d.cur.next[s*n+int(v)] = d.cur.Parent(v, src)
		d.cur.parent[s*n+int(v)] = d.cur.Next(v, src)
	}
}

// recomputeSource runs Dijkstra from src over the alive subgraph,
// rewriting src's rows in place. Down nodes never enter the heap: every
// edge into one is skipped, and a down source yields an isolated row.
func (d *DynAPSP) recomputeSource(src NodeID) {
	out := d.cur
	n := out.n
	base := int(src) * n
	dist := out.dist[base : base+n]
	next := out.next[base : base+n]
	parent := out.parent[base : base+n]
	for i := range dist {
		dist[i] = math.Inf(1)
		next[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	if d.nodeDown[src] {
		return
	}
	s := d.scratch
	for i := range s.done {
		s.done[i] = false
	}
	s.order = s.order[:0]
	s.heap = s.heap[:0]
	s.heap.push(pqItem{node: src, dist: 0})
	anyLink := len(d.linkDown) > 0
	for len(s.heap) > 0 {
		it := s.heap.pop()
		if s.done[it.node] {
			continue
		}
		s.done[it.node] = true
		s.order = append(s.order, it.node)
		for _, he := range d.g.adj[it.node] {
			if d.nodeDown[he.to] || (anyLink && d.linkDown[dynKey(it.node, he.to)]) {
				continue
			}
			if dd := it.dist + he.latency; dd < dist[he.to] {
				dist[he.to] = dd
				parent[he.to] = it.node
				s.heap.push(pqItem{node: he.to, dist: dd})
			}
		}
	}
	for _, v := range s.order[1:] {
		if parent[v] == src {
			next[v] = v
		} else {
			next[v] = next[parent[v]]
		}
	}
}
