package topology

import (
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := Abilene()
	var sb strings.Builder
	if err := g.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != g.Name() || back.N() != g.N() || back.Edges() != g.Edges() {
		t.Fatalf("round trip mismatch: %s %d/%d vs %s %d/%d",
			back.Name(), back.N(), back.Edges(), g.Name(), g.N(), g.Edges())
	}
	// Extracted parameters survive the trip (measured matrix included).
	p1, err := ExtractParams(g)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ExtractParams(back)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("parameters changed: %+v vs %+v", p1, p2)
	}
}

func TestReadJSONHandAuthored(t *testing.T) {
	const doc = `{
	  "name": "toy",
	  "nodes": [{"name": "a"}, {"name": "b"}, {"name": "c"}],
	  "edges": [
	    {"a": 0, "b": 1, "latency_ms": 3},
	    {"a": 1, "b": 2, "latency_ms": 4}
	  ]
	}`
	g, err := ReadJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.Edges() != 2 || !g.Connected() {
		t.Errorf("parsed graph malformed: N=%d E=%d", g.N(), g.Edges())
	}
	if lat, _ := g.EdgeLatency(1, 2); lat != 4 {
		t.Errorf("edge latency = %v, want 4", lat)
	}
}

func TestReadJSONErrors(t *testing.T) {
	for name, doc := range map[string]string{
		"not json":      "not json at all",
		"no nodes":      `{"name": "x", "nodes": [], "edges": []}`,
		"bad edge ref":  `{"nodes": [{"name":"a"}], "edges": [{"a":0,"b":9,"latency_ms":1}]}`,
		"zero latency":  `{"nodes": [{"name":"a"},{"name":"b"}], "edges": [{"a":0,"b":1,"latency_ms":0}]}`,
		"unknown field": `{"nodes": [{"name":"a"}], "edges": [], "bogus": 1}`,
		"bad matrix":    `{"nodes": [{"name":"a"},{"name":"b"}], "edges": [{"a":0,"b":1,"latency_ms":1}], "measured": [[0,1]]}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
				t.Errorf("document should fail: %s", doc)
			}
		})
	}
}

func TestReadJSONDefaultsName(t *testing.T) {
	g, err := ReadJSON(strings.NewReader(`{"nodes": [{"name":"a"},{"name":"b"}], "edges": [{"a":0,"b":1,"latency_ms":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "unnamed" {
		t.Errorf("default name = %q", g.Name())
	}
}
