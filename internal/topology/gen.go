package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file provides deterministic topology generators. They are used for
// the paper's network-size sweeps (Figures 6 and 10) and to synthesize
// the CERNET/GEANT/US-A evaluation topologies whose measured latency
// matrices are not publicly available (see DESIGN.md section 4).

// Ring returns a cycle of n >= 3 nodes with the given uniform link
// latency.
func Ring(n int, latency float64) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs at least 3 nodes, got %d", n)
	}
	g := New(fmt.Sprintf("ring-%d", n))
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("r%d", i), 0, 0)
	}
	for i := 0; i < n; i++ {
		if err := g.AddEdge(NodeID(i), NodeID((i+1)%n), latency); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Star returns a hub-and-spoke topology with n >= 2 nodes (node 0 is the
// hub) and the given uniform link latency.
func Star(n int, latency float64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs at least 2 nodes, got %d", n)
	}
	g := New(fmt.Sprintf("star-%d", n))
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("r%d", i), 0, 0)
	}
	for i := 1; i < n; i++ {
		if err := g.AddEdge(0, NodeID(i), latency); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Grid returns a rows x cols lattice with the given uniform link latency.
func Grid(rows, cols int, latency float64) (*Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topology: grid %dx%d too small", rows, cols)
	}
	g := New(fmt.Sprintf("grid-%dx%d", rows, cols))
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddNode(fmt.Sprintf("r%d_%d", r, c), float64(r), float64(c))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddEdge(id(r, c), id(r, c+1), latency); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddEdge(id(r, c), id(r+1, c), latency); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// RandomConnected returns a connected graph with exactly n nodes and m
// undirected edges: a uniformly random spanning tree plus random extra
// links. Link latencies are drawn uniformly from [minLat, maxLat). The
// same seed always yields the same graph.
func RandomConnected(n, m int, minLat, maxLat float64, seed int64) (*Graph, error) {
	return randomConnectedRNG(rand.New(rand.NewSource(seed)), n, m, minLat, maxLat, nil)
}

// randomConnectedRNG is RandomConnected with an injected generator and
// optional precomputed node names, letting the dataset seed search reuse
// one rand source (Seed fully resets it, so streams match fresh
// per-seed sources) and one names slice across hundreds of trials.
func randomConnectedRNG(rng *rand.Rand, n, m int, minLat, maxLat float64, names []string) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes, got %d", n)
	}
	maxM := n * (n - 1) / 2
	if m < n-1 || m > maxM {
		return nil, fmt.Errorf("topology: edge count %d outside [n-1=%d, %d]", m, n-1, maxM)
	}
	if !(minLat > 0) || maxLat < minLat {
		return nil, fmt.Errorf("topology: invalid latency range [%v, %v)", minLat, maxLat)
	}
	g := New(fmt.Sprintf("random-%d-%d", n, m))
	g.grow(n)
	for i := 0; i < n; i++ {
		if names != nil {
			g.AddNode(names[i], 0, 0)
		} else {
			g.AddNode(fmt.Sprintf("r%d", i), 0, 0)
		}
	}
	draw := func() float64 {
		if maxLat == minLat {
			return minLat
		}
		return minLat + rng.Float64()*(maxLat-minLat)
	}
	// Random spanning tree: attach each new node to a uniformly chosen
	// earlier node (random recursive tree).
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		a := NodeID(perm[i])
		b := NodeID(perm[rng.Intn(i)])
		if err := g.AddEdge(a, b, draw()); err != nil {
			return nil, err
		}
	}
	for g.Edges() < m {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a == b || g.HasEdge(a, b) {
			continue
		}
		if err := g.AddEdge(a, b, draw()); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Waxman returns a connected geometric random graph: n nodes placed
// uniformly in a fieldKm x fieldKm plane, connected by a minimum-style
// spanning structure plus Waxman-probability extra links until exactly m
// edges exist. Link latencies are propagation delays of the node
// distances plus perHopMs of fixed processing delay, which makes the
// synthesized graphs' latency spreads resemble real backbone networks.
func Waxman(name string, n, m int, fieldKm, perHopMs float64, seed int64) (*Graph, error) {
	return waxmanRNG(rand.New(rand.NewSource(seed)), name, n, m, fieldKm, perHopMs, nil, nil)
}

// waxCand is one candidate extra link of the Waxman generator.
type waxCand struct{ a, b int }

// waxScratch reuses the Waxman generator's per-trial working arrays
// across invocations; the dataset seed search runs hundreds of trials,
// so reallocating them dominated the build cost.
type waxScratch struct {
	xs, ys []float64
	distM  []float64 // n x n pairwise node distance, km
	bestD  []float64 // Prim: distance from each out-node to the tree
	bestU  []int     // Prim: nearest tree node per out-node
	inTree []bool
	cands  []waxCand
}

// newWaxScratch sizes scratch for n-node trials.
func newWaxScratch(n int) *waxScratch {
	return &waxScratch{
		xs:     make([]float64, n),
		ys:     make([]float64, n),
		distM:  make([]float64, n*n),
		bestD:  make([]float64, n),
		bestU:  make([]int, n),
		inTree: make([]bool, n),
		cands:  make([]waxCand, 0, n*(n-1)/2),
	}
}

// waxmanRNG is Waxman with an injected generator, optional precomputed
// node names, and optional reusable scratch; see randomConnectedRNG.
func waxmanRNG(rng *rand.Rand, name string, n, m int, fieldKm, perHopMs float64, names []string, ws *waxScratch) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes, got %d", n)
	}
	maxM := n * (n - 1) / 2
	if m < n-1 || m > maxM {
		return nil, fmt.Errorf("topology: edge count %d outside [n-1=%d, %d]", m, n-1, maxM)
	}
	if ws == nil {
		ws = newWaxScratch(n)
	}
	g := New(name)
	g.grow(n)
	xs, ys := ws.xs[:n], ws.ys[:n]
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64() * fieldKm
		ys[i] = rng.Float64() * fieldKm
		if names != nil {
			g.AddNode(names[i], ys[i], xs[i])
		} else {
			g.AddNode(fmt.Sprintf("%s-%d", name, i), ys[i], xs[i])
		}
	}
	// Pairwise distances once up front: the spanning-tree and extra-link
	// phases below read each pair many times.
	distM := ws.distM[: n*n : n*n]
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			d := math.Hypot(xs[a]-xs[b], ys[a]-ys[b])
			distM[a*n+b], distM[b*n+a] = d, d
		}
	}
	latency := func(a, b int) float64 {
		return PropagationMs(distM[a*n+b]) + perHopMs
	}
	// Greedy short-edge spanning tree: connect each unvisited node to its
	// nearest visited node (Prim's algorithm), mimicking how backbones
	// link nearby cities. Each out-node tracks its nearest tree node, so
	// one step is two linear scans; node coordinates are continuous
	// random draws, so the strict minimum each step is unique and the
	// tree matches the naive all-pairs scan.
	inTree := ws.inTree[:n]
	bestD, bestU := ws.bestD[:n], ws.bestU[:n]
	for v := 1; v < n; v++ {
		inTree[v] = false
		bestD[v] = distM[v] // row 0
		bestU[v] = 0
	}
	inTree[0] = true
	for added := 1; added < n; added++ {
		bv, bd := -1, math.Inf(1)
		for v := 1; v < n; v++ {
			if !inTree[v] && bestD[v] < bd {
				bv, bd = v, bestD[v]
			}
		}
		if err := g.AddEdge(NodeID(bestU[bv]), NodeID(bv), latency(bestU[bv], bv)); err != nil {
			return nil, err
		}
		inTree[bv] = true
		row := distM[bv*n : bv*n+n]
		for v := 1; v < n; v++ {
			if !inTree[v] && row[v] < bestD[v] {
				bestD[v] = row[v]
				bestU[v] = bv
			}
		}
	}
	// Extra links by Waxman probability beta*exp(-d/(alphaW*L)), retried
	// until the target edge count is met. Candidates are shuffled
	// deterministically for reproducibility.
	const beta, alphaW = 0.6, 0.25
	maxD := fieldKm * math.Sqrt2
	cands := ws.cands[:0]
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			cands = append(cands, waxCand{a, b})
		}
	}
	for g.Edges() < m {
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		added := false
		for _, cd := range cands {
			if g.Edges() >= m {
				break
			}
			if g.HasEdge(NodeID(cd.a), NodeID(cd.b)) {
				continue
			}
			p := beta * math.Exp(-distM[cd.a*n+cd.b]/(alphaW*maxD))
			if rng.Float64() < p {
				if err := g.AddEdge(NodeID(cd.a), NodeID(cd.b), latency(cd.a, cd.b)); err != nil {
					return nil, err
				}
				added = true
			}
		}
		if !added {
			// Degenerate acceptance round; force the closest missing pair
			// so the loop always terminates.
			sort.Slice(cands, func(i, j int) bool {
				return distM[cands[i].a*n+cands[i].b] < distM[cands[j].a*n+cands[j].b]
			})
			for _, cd := range cands {
				if !g.HasEdge(NodeID(cd.a), NodeID(cd.b)) {
					if err := g.AddEdge(NodeID(cd.a), NodeID(cd.b), latency(cd.a, cd.b)); err != nil {
						return nil, err
					}
					break
				}
			}
		}
	}
	return g, nil
}
