package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// LandmarkPaths answers approximate distance queries from k landmark
// shortest-path trees: O(k·n) memory and O(k) per Dist query,
// independent of graph size. Landmarks are chosen by farthest-point
// sampling (deterministic: node 0 seeds the sweep), each tree is filled
// by the shared Dijkstra kernel, and a query estimates
//
//	Dist(i, j) = min over landmarks L of d(L,i) + d(L,j)
//
// which by the triangle inequality NEVER underestimates the true
// distance, and is exact whenever i or j is itself a landmark (or lies
// on the tree path between the other endpoint and some landmark). Path
// stitches the two tree legs i→L and L→j and trims their common suffix,
// so it always returns a real walk in the graph whose length is at most
// the Dist estimate (trimming can only shorten it):
//
//	true distance ≤ len(Path) ≤ Dist estimate
//
// MeasureError reports the empirical estimation error on a seeded
// sample; see EXPERIMENTS.md for measured figures on the generated
// topologies.
//
// Like every backend, LandmarkPaths stamps itself against the graph's
// mutation generation: the first query after any Graph mutator reselects
// landmarks and rebuilds the trees.
type LandmarkPaths struct {
	g *Graph

	mu  sync.Mutex
	gen uint64
	k   int

	landmarks []NodeID
	// landmarkOf[v] is v's index in landmarks, or -1.
	landmarkOf []int32
	// Flat k×n tree rows; row l starts at offset l*n.
	dist   []float64
	next   []NodeID
	parent []NodeID

	maxDist float64 // min over L of 2·ecc(L): upper bound on diameter
	meanEst float64 // mean finite off-diagonal distance over landmark rows
}

// DefaultLandmarkCount is the landmark count used when NewLandmarkPaths
// is given a non-positive k (clamped to the node count).
const DefaultLandmarkCount = 16

// NewLandmarkPaths builds the landmark backend over g's latency metric
// with k landmark trees; non-positive k selects DefaultLandmarkCount.
func NewLandmarkPaths(g *Graph, k int) *LandmarkPaths {
	if k <= 0 {
		k = DefaultLandmarkCount
	}
	l := &LandmarkPaths{g: g, k: k}
	l.mu.Lock()
	l.rebuildLocked()
	l.mu.Unlock()
	return l
}

// rebuildLocked (re)selects landmarks by farthest-point sampling and
// fills their trees. Selection is deterministic: the sweep starts at
// node 0 and every subsequent landmark is the lowest-numbered node at
// maximum finite distance from the chosen set.
func (l *LandmarkPaths) rebuildLocked() {
	g := l.g
	n := g.N()
	l.gen = g.gen
	k := l.k
	if k > n {
		k = n
	}
	l.landmarks = make([]NodeID, 0, k)
	l.landmarkOf = make([]int32, n)
	for i := range l.landmarkOf {
		l.landmarkOf[i] = -1
	}
	l.dist = make([]float64, k*n)
	l.next = make([]NodeID, k*n)
	l.parent = make([]NodeID, k*n)
	if n == 0 || k == 0 {
		l.maxDist, l.meanEst = 0, 0
		return
	}
	scratch := newSPScratch(n, g.edges)
	// minDist[v] is v's distance to the nearest chosen landmark.
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	cur := NodeID(0)
	for li := 0; li < k; li++ {
		l.landmarkOf[cur] = int32(li)
		l.landmarks = append(l.landmarks, cur)
		base := li * n
		row := l.dist[base : base+n]
		g.dijkstraRows(cur, false, scratch, row, l.next[base:base+n], l.parent[base:base+n])
		// Fold this tree into the farthest-point state and pick the next
		// landmark: lowest-numbered unchosen node at maximum finite
		// distance from the set.
		next, best := NodeID(-1), -1.0
		for v := 0; v < n; v++ {
			if d := row[v]; d < minDist[v] {
				minDist[v] = d
			}
			if l.landmarkOf[v] < 0 && !math.IsInf(minDist[v], 1) && minDist[v] > best {
				best, next = minDist[v], NodeID(v)
			}
		}
		if next < 0 {
			break // every reachable node is already a landmark
		}
		cur = next
	}
	// Aggregates from the exact landmark rows.
	maxD := math.Inf(1)
	var sum float64
	var cnt int
	for li := range l.landmarks {
		base := li * n
		var ecc float64
		for v, d := range l.dist[base : base+n] {
			if NodeID(v) == l.landmarks[li] || math.IsInf(d, 1) {
				continue
			}
			sum += d
			cnt++
			if d > ecc {
				ecc = d
			}
		}
		if 2*ecc < maxD {
			maxD = 2 * ecc
		}
	}
	if math.IsInf(maxD, 1) {
		maxD = 0
	}
	l.maxDist = maxD
	l.meanEst = 0
	if cnt > 0 {
		l.meanEst = sum / float64(cnt)
	}
}

// checkGenLocked rebuilds after a graph mutation.
func (l *LandmarkPaths) checkGenLocked() {
	if l.gen != l.g.gen {
		l.rebuildLocked()
	}
}

// N returns the number of nodes covered.
func (l *LandmarkPaths) N() int { return l.g.N() }

// Landmarks returns the selected landmark nodes in selection order. The
// returned slice is shared; callers must not modify it.
func (l *LandmarkPaths) Landmarks() []NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.checkGenLocked()
	return l.landmarks
}

// bestLandmarkLocked returns the landmark index minimizing
// d(L,i)+d(L,j) and that sum, or (-1, +Inf) when no landmark reaches
// both endpoints. Ties break toward the earliest-selected landmark, so
// results are deterministic.
func (l *LandmarkPaths) bestLandmarkLocked(i, j NodeID) (int, float64) {
	n := l.g.N()
	best, bestD := -1, math.Inf(1)
	for li := range l.landmarks {
		base := li * n
		if d := l.dist[base+int(i)] + l.dist[base+int(j)]; d < bestD {
			best, bestD = li, d
		}
	}
	return best, bestD
}

// Dist returns the landmark upper-bound estimate of the shortest-path
// length from i to j: never below the true distance, exact when either
// endpoint is a landmark, +Inf when no landmark reaches both.
func (l *LandmarkPaths) Dist(i, j NodeID) float64 {
	if i == j {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.checkGenLocked()
	n := l.g.N()
	// Exact when one endpoint is a landmark.
	if li := l.landmarkOf[i]; li >= 0 {
		return l.dist[int(li)*n+int(j)]
	}
	if lj := l.landmarkOf[j]; lj >= 0 {
		return l.dist[int(lj)*n+int(i)]
	}
	_, d := l.bestLandmarkLocked(i, j)
	return d
}

// Next returns the first hop out of i on the stitched landmark path
// toward j, or -1 when i == j or the estimate is unreachable.
func (l *LandmarkPaths) Next(i, j NodeID) NodeID {
	if i == j {
		return -1
	}
	p, err := l.Path(i, j)
	if err != nil || len(p) < 2 {
		return -1
	}
	return p[1]
}

// legLocked returns the tree path from v up to landmark index li
// (inclusive), i.e. v, parent(v), …, L.
func (l *LandmarkPaths) legLocked(li int, v NodeID) ([]NodeID, error) {
	n := l.g.N()
	base := li * n
	leg := []NodeID{v}
	cur := v
	for cur != l.landmarks[li] {
		p := l.parent[base+int(cur)]
		if p < 0 {
			return nil, fmt.Errorf("topology: %d unreachable from landmark %d", v, l.landmarks[li])
		}
		leg = append(leg, p)
		cur = p
		if len(leg) > n+1 {
			return nil, fmt.Errorf("topology: predecessor chain contains a loop at landmark %d", l.landmarks[li])
		}
	}
	return leg, nil
}

// Path returns a valid (not necessarily shortest) walk from src to dst:
// the src→L and L→dst tree legs of the best landmark, trimmed at their
// last common node. Its length never exceeds the Dist estimate. When
// either endpoint is a landmark the path is an exact shortest path.
func (l *LandmarkPaths) Path(src, dst NodeID) ([]NodeID, error) {
	n := l.g.N()
	if int(src) >= n || int(dst) >= n || src < 0 || dst < 0 {
		return nil, fmt.Errorf("topology: path endpoints (%d,%d) out of range", src, dst)
	}
	if src == dst {
		return []NodeID{src}, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.checkGenLocked()
	// Exact tree paths when an endpoint is a landmark.
	if li := l.landmarkOf[src]; li >= 0 {
		leg, err := l.legLocked(int(li), dst)
		if err != nil {
			return nil, fmt.Errorf("topology: %d unreachable from %d", dst, src)
		}
		reverse(leg)
		return leg, nil
	}
	if lj := l.landmarkOf[dst]; lj >= 0 {
		leg, err := l.legLocked(int(lj), src)
		if err != nil {
			return nil, fmt.Errorf("topology: %d unreachable from %d", dst, src)
		}
		return leg, nil
	}
	li, d := l.bestLandmarkLocked(src, dst)
	if li < 0 || math.IsInf(d, 1) {
		return nil, fmt.Errorf("topology: %d unreachable from %d", dst, src)
	}
	a, err := l.legLocked(li, src) // src … L
	if err != nil {
		return nil, fmt.Errorf("topology: %d unreachable from %d", dst, src)
	}
	b, err := l.legLocked(li, dst) // dst … L
	if err != nil {
		return nil, fmt.Errorf("topology: %d unreachable from %d", dst, src)
	}
	// Both legs end at L; drop their common suffix so the walk turns
	// around at the last shared node instead of detouring to L.
	ai, bi := len(a)-1, len(b)-1
	for ai > 0 && bi > 0 && a[ai-1] == b[bi-1] {
		ai--
		bi--
	}
	path := append([]NodeID(nil), a[:ai+1]...) // src … meet
	for x := bi - 1; x >= 0; x-- {             // meet … dst (exclusive of meet)
		path = append(path, b[x])
	}
	return path, nil
}

// reverse flips a node sequence in place.
func reverse(p []NodeID) {
	for a, b := 0, len(p)-1; a < b; a, b = a+1, b-1 {
		p[a], p[b] = p[b], p[a]
	}
}

// MaxDist returns an upper bound on the weighted diameter: the minimum
// over landmarks of twice their eccentricity (every path can be routed
// through the most central landmark). The true diameter is between half
// this value and this value.
func (l *LandmarkPaths) MaxDist() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.checkGenLocked()
	return l.maxDist
}

// MeanDist estimates the mean pairwise distance as the mean finite
// off-diagonal distance over the exact landmark rows. Farthest-point
// landmarks sit on the graph periphery, so the estimate skews high;
// treat it as indicative only. The includeDiagonal convention matches
// APSP.MeanDist (diagonal zeros folded into the divisor).
func (l *LandmarkPaths) MeanDist(includeDiagonal bool) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.checkGenLocked()
	if includeDiagonal {
		n := l.g.N()
		if n == 0 {
			return 0
		}
		return l.meanEst * float64(n-1) / float64(n)
	}
	return l.meanEst
}

// LandmarkErrorStats summarizes the estimation error of Dist against
// exact shortest paths on a seeded random sample of reachable pairs.
type LandmarkErrorStats struct {
	Pairs       int     // sampled reachable pairs
	ExactPairs  int     // pairs where the estimate equals the exact distance
	MeanRelErr  float64 // mean of (est-exact)/exact
	MaxRelErr   float64 // max of (est-exact)/exact
	MeanStretch float64 // mean est/exact (≥ 1)
}

// MeasureError samples `sources` random sources (seeded, deterministic),
// computes their exact distance rows, and compares the landmark estimate
// for every reachable non-landmark destination. The estimate is an
// upper bound, so every relative error is ≥ 0.
func (l *LandmarkPaths) MeasureError(sources int, seed int64) LandmarkErrorStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.checkGenLocked()
	g := l.g
	n := g.N()
	var st LandmarkErrorStats
	if n < 2 || sources <= 0 {
		return st
	}
	rng := rand.New(rand.NewSource(seed))
	scratch := newSPScratch(n, g.edges)
	dist := make([]float64, n)
	next := make([]NodeID, n)
	parent := make([]NodeID, n)
	var relSum, stretchSum float64
	for s := 0; s < sources; s++ {
		src := NodeID(rng.Intn(n))
		g.dijkstraRows(src, false, scratch, dist, next, parent)
		for j := 0; j < n; j++ {
			exact := dist[j]
			if NodeID(j) == src || math.IsInf(exact, 1) || exact == 0 {
				continue
			}
			var est float64
			if li := l.landmarkOf[src]; li >= 0 {
				est = l.dist[int(li)*n+j]
			} else if lj := l.landmarkOf[j]; lj >= 0 {
				est = l.dist[int(lj)*n+int(src)]
			} else {
				_, est = l.bestLandmarkLocked(src, NodeID(j))
			}
			rel := (est - exact) / exact
			st.Pairs++
			if rel == 0 {
				st.ExactPairs++
			}
			relSum += rel
			stretchSum += est / exact
			if rel > st.MaxRelErr {
				st.MaxRelErr = rel
			}
		}
	}
	if st.Pairs > 0 {
		st.MeanRelErr = relSum / float64(st.Pairs)
		st.MeanStretch = stretchSum / float64(st.Pairs)
	}
	return st
}
