package topology

import (
	"math"
	"reflect"
	"testing"
)

// equivalenceGraphs returns the graphs the backend-equivalence suite
// runs over: all four calibrated datasets plus random and Waxman
// instances, covering both hand-calibrated and continuous latencies.
func equivalenceGraphs(t *testing.T) []*Graph {
	t.Helper()
	graphs := All()
	rnd, err := RandomConnected(60, 140, 1, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	wax, err := Waxman("wax-equiv", 80, 200, 3000, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	return append(graphs, rnd, wax)
}

func TestParseBackend(t *testing.T) {
	cases := map[string]Backend{
		"": BackendAuto, "auto": BackendAuto,
		"dense": BackendDense, "apsp": BackendDense,
		"lru": BackendLRU, "landmark": BackendLandmark,
	}
	for in, want := range cases {
		got, err := ParseBackend(in)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseBackend("bogus"); err == nil {
		t.Error("ParseBackend should reject unknown names")
	}
}

func TestBackendResolve(t *testing.T) {
	if got := BackendAuto.Resolve(DenseAutoThreshold - 1); got != BackendDense {
		t.Errorf("auto below threshold = %v, want dense", got)
	}
	if got := BackendAuto.Resolve(DenseAutoThreshold); got != BackendLRU {
		t.Errorf("auto at threshold = %v, want lru", got)
	}
	for _, b := range []Backend{BackendDense, BackendLRU, BackendLandmark} {
		if got := b.Resolve(5); got != b {
			t.Errorf("%v.Resolve = %v, want itself", b, got)
		}
	}
}

func TestNewPathProviderBackends(t *testing.T) {
	g := Abilene()
	for _, b := range []Backend{BackendAuto, BackendDense, BackendLRU, BackendLandmark} {
		p, err := NewPathProvider(g, b)
		if err != nil {
			t.Fatalf("NewPathProvider(%v): %v", b, err)
		}
		if p.N() != g.N() {
			t.Errorf("%v backend covers %d nodes, want %d", b, p.N(), g.N())
		}
	}
	if _, err := NewPathProvider(g, Backend(99)); err == nil {
		t.Error("unknown backend should fail")
	}
}

// TestLRUEquivalence asserts the LRU backend is bit-identical to the
// dense APSP — Dist, Next, Path, MaxDist, MeanDist — on every
// calibrated dataset plus random and Waxman graphs, for every ordered
// pair. Bit-identical means ==, not within-epsilon: both backends run
// the same Dijkstra kernel over the same adjacency order.
func TestLRUEquivalence(t *testing.T) {
	for _, g := range equivalenceGraphs(t) {
		dense := g.ShortestPathsLatency()
		lru := NewLRUPaths(g, 0)
		n := g.N()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				si, sj := NodeID(i), NodeID(j)
				if d, want := lru.Dist(si, sj), dense.Dist(si, sj); d != want {
					t.Fatalf("%s: lru.Dist(%d,%d) = %v, dense %v", g.Name(), i, j, d, want)
				}
				if nx, want := lru.Next(si, sj), dense.Next(si, sj); nx != want {
					t.Fatalf("%s: lru.Next(%d,%d) = %v, dense %v", g.Name(), i, j, nx, want)
				}
				lp, lerr := lru.Path(si, sj)
				dp, derr := dense.Path(si, sj)
				if (lerr == nil) != (derr == nil) {
					t.Fatalf("%s: Path(%d,%d) err lru=%v dense=%v", g.Name(), i, j, lerr, derr)
				}
				if !reflect.DeepEqual(lp, dp) {
					t.Fatalf("%s: lru.Path(%d,%d) = %v, dense %v", g.Name(), i, j, lp, dp)
				}
			}
		}
		if got, want := lru.MaxDist(), dense.MaxDist(); got != want {
			t.Errorf("%s: lru.MaxDist = %v, dense %v", g.Name(), got, want)
		}
		for _, diag := range []bool{false, true} {
			if got, want := lru.MeanDist(diag), dense.MeanDist(diag); got != want {
				t.Errorf("%s: lru.MeanDist(%v) = %v, dense %v", g.Name(), diag, got, want)
			}
		}
	}
}

// TestLRUEvictionStaysExact caps the cache far below the source count
// and checks queries remain bit-identical to dense while evictions
// actually happen.
func TestLRUEvictionStaysExact(t *testing.T) {
	g, err := Waxman("wax-evict", 50, 120, 3000, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	dense := g.ShortestPathsLatency()
	lru := NewLRUPaths(g, 4)
	if lru.Capacity() != 4 {
		t.Fatalf("capacity = %d, want 4", lru.Capacity())
	}
	n := g.N()
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			j := (i*7 + round) % n
			if d, want := lru.Dist(NodeID(i), NodeID(j)), dense.Dist(NodeID(i), NodeID(j)); d != want {
				t.Fatalf("Dist(%d,%d) = %v, want %v", i, j, d, want)
			}
		}
	}
	hits, misses, evictions := lru.Stats()
	if misses == 0 || evictions == 0 {
		t.Errorf("expected misses and evictions with capacity 4 over %d sources: hits=%d misses=%d evictions=%d",
			n, hits, misses, evictions)
	}
}

// TestLRUInvalidationOnMutation is the regression test for the
// generation-bump satellite: after warm queries, every Graph mutator
// must invalidate the LRU cache so the next query sees fresh distances.
func TestLRUInvalidationOnMutation(t *testing.T) {
	build := func() *Graph {
		g := New("mut")
		for i := 0; i < 4; i++ {
			g.AddNode("", 0, 0)
		}
		g.MustAddEdge(0, 1, 10)
		g.MustAddEdge(1, 2, 10)
		g.MustAddEdge(2, 3, 10)
		return g
	}

	t.Run("ScaleLatencies", func(t *testing.T) {
		g := build()
		lru := NewLRUPaths(g, 0)
		if d := lru.Dist(0, 3); d != 30 {
			t.Fatalf("warm Dist = %v, want 30", d)
		}
		if err := g.ScaleLatencies(2); err != nil {
			t.Fatal(err)
		}
		if d := lru.Dist(0, 3); d != 60 {
			t.Errorf("post-scale Dist = %v, want 60 (stale tree served)", d)
		}
	})

	t.Run("AddEdge", func(t *testing.T) {
		g := build()
		lru := NewLRUPaths(g, 0)
		lru.Warm([]NodeID{0, 1, 2, 3}, 2)
		if d := lru.Dist(0, 3); d != 30 {
			t.Fatalf("warm Dist = %v, want 30", d)
		}
		g.MustAddEdge(0, 3, 5)
		if d := lru.Dist(0, 3); d != 5 {
			t.Errorf("post-AddEdge Dist = %v, want 5 (stale tree served)", d)
		}
		if nx := lru.Next(0, 3); nx != 3 {
			t.Errorf("post-AddEdge Next = %v, want 3", nx)
		}
	})

	t.Run("RemoveEdge", func(t *testing.T) {
		g := build()
		g.MustAddEdge(0, 3, 5)
		lru := NewLRUPaths(g, 0)
		if d := lru.Dist(0, 3); d != 5 {
			t.Fatalf("warm Dist = %v, want 5", d)
		}
		if err := g.RemoveEdge(0, 3); err != nil {
			t.Fatal(err)
		}
		if d := lru.Dist(0, 3); d != 30 {
			t.Errorf("post-RemoveEdge Dist = %v, want 30 (stale tree served)", d)
		}
	})

	t.Run("AddNode", func(t *testing.T) {
		g := build()
		lru := NewLRUPaths(g, 0)
		if d := lru.Dist(0, 3); d != 30 {
			t.Fatalf("warm Dist = %v, want 30", d)
		}
		id := g.AddNode("new", 0, 0)
		g.MustAddEdge(id, 0, 1)
		// The resized cache must cover the new node without panicking.
		if d := lru.Dist(0, id); d != 1 {
			t.Errorf("post-AddNode Dist(0,%d) = %v, want 1", id, d)
		}
		if got, want := lru.MaxDist(), g.ShortestPathsLatency().MaxDist(); got != want {
			t.Errorf("post-AddNode MaxDist = %v, want %v", got, want)
		}
	})

	t.Run("Landmark", func(t *testing.T) {
		g := build()
		lm := NewLandmarkPaths(g, 2)
		if d := lm.Dist(0, 3); math.IsInf(d, 1) || d < 30 {
			t.Fatalf("warm landmark Dist = %v, want finite >= 30", d)
		}
		if err := g.ScaleLatencies(2); err != nil {
			t.Fatal(err)
		}
		// After rebuild the estimate must be >= the new exact distance;
		// a stale tree would report at most the old 3-hop 30+30 sums.
		if d := lm.Dist(0, 3); d < 60 {
			t.Errorf("post-scale landmark Dist = %v, want >= 60 (stale trees served)", d)
		}
	})
}

// TestLRUWarmDeterministic warms the same source set at several worker
// widths and checks the cache answers and counters agree, and that
// warming past capacity evicts like queries would.
func TestLRUWarmDeterministic(t *testing.T) {
	g, err := RandomConnected(40, 90, 1, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	dense := g.ShortestPathsLatency()
	sources := make([]NodeID, g.N())
	for i := range sources {
		sources[i] = NodeID(i)
	}
	for _, workers := range []int{1, 3, 8} {
		lru := NewLRUPaths(g, 0)
		lru.Warm(sources, workers)
		_, misses, _ := lru.Stats()
		if int(misses) != g.N() {
			t.Errorf("workers=%d: %d misses after full warm, want %d", workers, misses, g.N())
		}
		for i := 0; i < g.N(); i++ {
			if d, want := lru.Dist(NodeID(i), NodeID((i+1)%g.N())), dense.Dist(NodeID(i), NodeID((i+1)%g.N())); d != want {
				t.Fatalf("workers=%d: Dist mismatch at %d", workers, i)
			}
		}
		hits, _, _ := lru.Stats()
		if int(hits) != g.N() {
			t.Errorf("workers=%d: %d hits after warmed queries, want %d", workers, hits, g.N())
		}
	}
	// Warming past capacity must evict, not grow.
	small := NewLRUPaths(g, 5)
	small.Warm(sources, 4)
	if _, _, evictions := small.Stats(); evictions == 0 {
		t.Error("warming 40 sources into capacity 5 should evict")
	}
}

// TestLRUPathTree checks the single-tree path variant returns a valid
// shortest path: same endpoints, consecutive edges exist, and the
// walked latency equals the exact distance.
func TestLRUPathTree(t *testing.T) {
	g, err := Waxman("wax-pt", 40, 100, 3000, 0.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	dense := g.ShortestPathsLatency()
	lru := NewLRUPaths(g, 0)
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			p, err := lru.PathTree(NodeID(i), NodeID(j))
			if err != nil {
				t.Fatalf("PathTree(%d,%d): %v", i, j, err)
			}
			if p[0] != NodeID(i) || p[len(p)-1] != NodeID(j) {
				t.Fatalf("PathTree(%d,%d) endpoints %v", i, j, p)
			}
			var sum float64
			for k := 1; k < len(p); k++ {
				lat, err := g.EdgeLatency(p[k-1], p[k])
				if err != nil {
					t.Fatalf("PathTree(%d,%d) uses missing edge %d-%d", i, j, p[k-1], p[k])
				}
				sum += lat
			}
			if want := dense.Dist(NodeID(i), NodeID(j)); math.Abs(sum-want) > 1e-9 {
				t.Fatalf("PathTree(%d,%d) latency %v, want %v", i, j, sum, want)
			}
		}
	}
}

// TestLandmarkBounds verifies the documented landmark contract on every
// equivalence graph: the estimate never underestimates, is exact from
// landmark endpoints, and the stitched path is a real walk no longer
// than the estimate.
func TestLandmarkBounds(t *testing.T) {
	for _, g := range equivalenceGraphs(t) {
		dense := g.ShortestPathsLatency()
		lm := NewLandmarkPaths(g, 8)
		n := g.N()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				si, sj := NodeID(i), NodeID(j)
				exact := dense.Dist(si, sj)
				est := lm.Dist(si, sj)
				if i == j {
					if est != 0 {
						t.Fatalf("%s: Dist(%d,%d) = %v on diagonal", g.Name(), i, j, est)
					}
					continue
				}
				if est < exact-1e-9*exact {
					t.Fatalf("%s: landmark Dist(%d,%d) = %v underestimates exact %v", g.Name(), i, j, est, exact)
				}
				p, err := lm.Path(si, sj)
				if err != nil {
					t.Fatalf("%s: landmark Path(%d,%d): %v", g.Name(), i, j, err)
				}
				if p[0] != si || p[len(p)-1] != sj {
					t.Fatalf("%s: landmark Path(%d,%d) endpoints %v", g.Name(), i, j, p)
				}
				var walked float64
				for k := 1; k < len(p); k++ {
					lat, err := g.EdgeLatency(p[k-1], p[k])
					if err != nil {
						t.Fatalf("%s: landmark Path(%d,%d) uses missing edge %d-%d", g.Name(), i, j, p[k-1], p[k])
					}
					walked += lat
				}
				if walked > est+1e-9*est+1e-9 {
					t.Fatalf("%s: landmark Path(%d,%d) latency %v exceeds estimate %v", g.Name(), i, j, walked, est)
				}
			}
		}
		// Exactness from landmark endpoints: same kernel, same bits.
		for _, L := range lm.Landmarks() {
			for j := 0; j < n; j++ {
				if got, want := lm.Dist(L, NodeID(j)), dense.Dist(L, NodeID(j)); got != want {
					t.Fatalf("%s: landmark-endpoint Dist(%d,%d) = %v, dense %v", g.Name(), L, j, got, want)
				}
			}
		}
		// Diameter bracketing: true diameter <= MaxDist <= 2x true.
		trueD := dense.MaxDist()
		if ub := lm.MaxDist(); ub < trueD-1e-9*trueD || ub > 2*trueD+1e-9*trueD {
			t.Errorf("%s: landmark MaxDist %v outside [%v, %v]", g.Name(), ub, trueD, 2*trueD)
		}
	}
}

// TestLandmarkMeasureError sanity-checks the empirical error sampler.
func TestLandmarkMeasureError(t *testing.T) {
	g, err := Waxman("wax-err", 120, 300, 3000, 0.4, 11)
	if err != nil {
		t.Fatal(err)
	}
	lm := NewLandmarkPaths(g, 16)
	st := lm.MeasureError(20, 1)
	if st.Pairs == 0 {
		t.Fatal("no pairs sampled")
	}
	if st.MeanRelErr < 0 || st.MaxRelErr < st.MeanRelErr {
		t.Errorf("inconsistent error stats: %+v", st)
	}
	if st.MeanStretch < 1 {
		t.Errorf("mean stretch %v below 1; the estimate is an upper bound", st.MeanStretch)
	}
	// Same seed, same sample.
	if st2 := lm.MeasureError(20, 1); st2 != st {
		t.Errorf("MeasureError not deterministic: %+v vs %+v", st, st2)
	}
}

func TestHierarchical(t *testing.T) {
	levels := []HierLevel{
		{Fanout: 8, MeanLatency: 20, Redundancy: 1},
		{Fanout: 4, MeanLatency: 5, Redundancy: 1},
		{Fanout: 3, MeanLatency: 1},
	}
	want := 8 + 8*4 + 8*4*3
	if got := HierNodeCount(levels); got != want {
		t.Fatalf("HierNodeCount = %d, want %d", got, want)
	}
	g, err := Hierarchical("h", levels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != want {
		t.Errorf("N = %d, want %d", g.N(), want)
	}
	if !g.Connected() {
		t.Error("hierarchical graph must be connected")
	}
	if g.DiameterEstimate() <= 0 {
		t.Error("diameter estimate should be positive")
	}

	// Determinism: same spec + seed => identical graph, edge for edge.
	g2, err := Hierarchical("h", levels, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.EdgeList(), g2.EdgeList()) {
		t.Error("same seed produced different edge lists")
	}
	if !reflect.DeepEqual(g.Nodes(), g2.Nodes()) {
		t.Error("same seed produced different node lists")
	}
	g3, err := Hierarchical("h", levels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(g.EdgeList(), g3.EdgeList()) {
		t.Error("different seeds produced identical edge lists")
	}
}

func TestHierarchicalValidation(t *testing.T) {
	cases := []struct {
		name   string
		levels []HierLevel
	}{
		{"empty", nil},
		{"zero fanout", []HierLevel{{Fanout: 0, MeanLatency: 1}}},
		{"bad latency", []HierLevel{{Fanout: 3, MeanLatency: 0}}},
		{"negative redundancy", []HierLevel{{Fanout: 3, MeanLatency: 1, Redundancy: -1}}},
		{"single node", []HierLevel{{Fanout: 1, MeanLatency: 1}}},
		{"too big", []HierLevel{{Fanout: 2048, MeanLatency: 1}, {Fanout: 2048, MeanLatency: 1}}},
	}
	for _, tc := range cases {
		if _, err := Hierarchical("x", tc.levels, 1); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestParseHierSpec(t *testing.T) {
	levels, err := ParseHierSpec("8x16x25", "20,5,1", "0,1,1")
	if err != nil {
		t.Fatal(err)
	}
	want := []HierLevel{
		{Fanout: 8, MeanLatency: 20, Redundancy: 0},
		{Fanout: 16, MeanLatency: 5, Redundancy: 1},
		{Fanout: 25, MeanLatency: 1, Redundancy: 1},
	}
	if !reflect.DeepEqual(levels, want) {
		t.Errorf("ParseHierSpec = %+v, want %+v", levels, want)
	}
	// Broadcast forms: one latency / one redundancy for all levels.
	levels, err = ParseHierSpec("4,4", "10", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, lv := range levels {
		if lv.MeanLatency != 10 || lv.Redundancy != 2 {
			t.Errorf("broadcast parse = %+v", levels)
		}
	}
	for _, bad := range [][3]string{
		{"", "1", ""},
		{"4x4", "", ""},
		{"4x4", "1,2,3", ""},
		{"4x4", "1", "1,2,3"},
		{"axb", "1", ""},
		{"4x4", "x", ""},
		{"4x4", "1", "y"},
	} {
		if _, err := ParseHierSpec(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("ParseHierSpec(%q,%q,%q) should fail", bad[0], bad[1], bad[2])
		}
	}
}

// FuzzHierarchical fuzzes the determinism contract: any valid spec and
// seed must expand to the identical graph twice.
func FuzzHierarchical(f *testing.F) {
	f.Add(uint8(5), uint8(4), uint8(1), int64(1))
	f.Add(uint8(8), uint8(3), uint8(2), int64(99))
	f.Add(uint8(2), uint8(1), uint8(0), int64(-7))
	f.Fuzz(func(t *testing.T, f0, f1, red uint8, seed int64) {
		levels := []HierLevel{
			{Fanout: int(f0%12) + 2, MeanLatency: 10, Redundancy: int(red % 3)},
			{Fanout: int(f1%6) + 1, MeanLatency: 2, Redundancy: int(red % 2)},
		}
		a, err := Hierarchical("fz", levels, seed)
		if err != nil {
			t.Fatalf("valid spec rejected: %v", err)
		}
		b, err := Hierarchical("fz", levels, seed)
		if err != nil {
			t.Fatal(err)
		}
		if a.N() != b.N() || !reflect.DeepEqual(a.EdgeList(), b.EdgeList()) {
			t.Fatal("same seed produced different graphs")
		}
		if !a.Connected() {
			t.Fatal("hierarchical graph must be connected")
		}
	})
}
