package topology

import "fmt"

// PathProvider is the routing-backend interface behind which the data
// plane and the experiment harness query shortest paths. The dense
// all-pairs matrix (*APSP) satisfies it exactly as before; the sparse
// backends (LRUPaths, LandmarkPaths) trade precompute and memory for
// scale:
//
//	backend    memory    precompute        Dist/Next         exact?
//	dense      24·n² B   n Dijkstras       O(1)              yes
//	lru        24·n·k B  per-miss Dijkstra O(1) hit / O(m log n) miss, k cached trees
//	landmark   24·n·k B  k Dijkstras       O(k)              upper bound
//
// Dist returns the shortest-path length from i to j (0 on the diagonal,
// +Inf if unreachable); Next the first hop out of i toward j (-1 on the
// diagonal or if unreachable); Path the full node sequence; MaxDist the
// weighted diameter and MeanDist the mean pairwise distance (see each
// backend for its exactness contract on the last two).
type PathProvider interface {
	N() int
	Dist(i, j NodeID) float64
	Next(i, j NodeID) NodeID
	Path(src, dst NodeID) ([]NodeID, error)
	MaxDist() float64
	MeanDist(includeDiagonal bool) float64
}

// Backend selects a routing backend implementation.
type Backend int

const (
	// BackendAuto picks BackendDense below DenseAutoThreshold nodes and
	// BackendLRU at or above it — small calibrated datasets keep the
	// byte-identical dense fast path, large generated graphs never
	// materialize an O(n²) matrix.
	BackendAuto Backend = iota
	// BackendDense is the flat all-pairs matrix of PR 3: 24·n² bytes,
	// exact, O(1) queries, required for DynAPSP fault rerouting.
	BackendDense
	// BackendLRU answers from an LRU of per-source shortest-path trees,
	// each filled by one on-demand Dijkstra: O(n·cap) memory, exact, and
	// bit-identical to the dense rows (see LRUPaths).
	BackendLRU
	// BackendLandmark answers approximate distances via k landmark
	// trees: O(n·k) memory, O(k) per query, upper-bound estimates (see
	// LandmarkPaths).
	BackendLandmark
)

// DenseAutoThreshold is the node count at which BackendAuto switches
// from the dense matrix to the LRU backend. At 1024 nodes the dense
// matrix costs 24 MiB and one full APSP precompute; past it the
// quadratic wall dominates (10⁴ nodes ≈ 2.4 GiB, 10⁵ ≈ 240 GiB).
const DenseAutoThreshold = 1024

// String returns the backend's flag name.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendDense:
		return "dense"
	case BackendLRU:
		return "lru"
	case BackendLandmark:
		return "landmark"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend resolves a -routing flag value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "dense", "apsp":
		return BackendDense, nil
	case "lru":
		return BackendLRU, nil
	case "landmark":
		return BackendLandmark, nil
	default:
		return 0, fmt.Errorf("topology: unknown routing backend %q (want auto, dense, lru, or landmark)", s)
	}
}

// Resolve maps BackendAuto to the concrete backend chosen for an n-node
// graph; concrete backends return themselves.
func (b Backend) Resolve(n int) Backend {
	if b != BackendAuto {
		return b
	}
	if n < DenseAutoThreshold {
		return BackendDense
	}
	return BackendLRU
}

// NewPathProvider builds the selected routing backend over g's latency
// metric. BackendDense returns the graph's shared cached APSP (computing
// it on first use); the sparse backends use default sizing — build
// LRUPaths/LandmarkPaths directly to tune capacity or landmark count.
func NewPathProvider(g *Graph, b Backend) (PathProvider, error) {
	switch b.Resolve(g.N()) {
	case BackendDense:
		return g.ShortestPathsLatency(), nil
	case BackendLRU:
		return NewLRUPaths(g, 0), nil
	case BackendLandmark:
		return NewLandmarkPaths(g, 0), nil
	default:
		return nil, fmt.Errorf("topology: unknown routing backend %d", int(b))
	}
}
