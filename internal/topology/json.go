package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file serializes topologies as JSON so carriers can run the tools
// on their own networks instead of the embedded datasets.

// jsonGraph is the wire form of a Graph.
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
	// Measured is the optional pairwise latency matrix (ms).
	Measured [][]float64 `json:"measured,omitempty"`
}

type jsonNode struct {
	Name string  `json:"name"`
	Lat  float64 `json:"lat,omitempty"`
	Lon  float64 `json:"lon,omitempty"`
}

type jsonEdge struct {
	A       int     `json:"a"`
	B       int     `json:"b"`
	Latency float64 `json:"latency_ms"`
}

// WriteJSON serializes the graph.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{Name: g.name, Measured: g.measured}
	for _, n := range g.nodes {
		jg.Nodes = append(jg.Nodes, jsonNode{Name: n.Name, Lat: n.Lat, Lon: n.Lon})
	}
	for _, e := range g.EdgeList() {
		jg.Edges = append(jg.Edges, jsonEdge{A: int(e.A), B: int(e.B), Latency: e.Latency})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jg); err != nil {
		return fmt.Errorf("topology: encoding %q: %w", g.name, err)
	}
	return nil
}

// ReadJSON parses a topology written by WriteJSON (or hand-authored in
// the same schema). The graph must be non-empty; edges must reference
// declared nodes and carry positive latencies; an optional measured
// matrix must pass SetMeasuredLatencies validation.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("topology: decoding JSON: %w", err)
	}
	if len(jg.Nodes) == 0 {
		return nil, fmt.Errorf("topology: JSON topology %q has no nodes", jg.Name)
	}
	if jg.Name == "" {
		jg.Name = "unnamed"
	}
	g := New(jg.Name)
	for _, n := range jg.Nodes {
		g.AddNode(n.Name, n.Lat, n.Lon)
	}
	for i, e := range jg.Edges {
		if err := g.AddEdge(NodeID(e.A), NodeID(e.B), e.Latency); err != nil {
			return nil, fmt.Errorf("topology: JSON edge %d: %w", i, err)
		}
	}
	if jg.Measured != nil {
		if err := g.SetMeasuredLatencies(jg.Measured); err != nil {
			return nil, fmt.Errorf("topology: JSON measured matrix: %w", err)
		}
	}
	return g, nil
}
