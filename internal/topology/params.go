package topology

import "fmt"

// Params are the topological parameters of the paper's Table III,
// extracted from a topology's all-pairs shortest paths:
//
//   - N: number of routers n = |V|.
//   - UnitCost: w = max_{i,j} d_ij, the maximum pairwise latency, used as
//     the unit coordination cost (coordination converges at the speed of
//     the slowest router pair; Section V-A).
//   - TierGapMs: d1-d0 measured as the mean pairwise latency.
//   - TierGapHops: d1-d0 measured as the mean pairwise hop count.
type Params struct {
	Name        string
	N           int
	UnitCost    float64 // w, ms
	TierGapMs   float64 // d1-d0, ms
	TierGapHops float64 // d1-d0, hops
}

// ExtractParams computes Table III's parameters from the graph. Means
// are taken over distinct ordered pairs: the paper prints the formula
// with a 1/|V|^2 factor, but its own Abilene value (2.4182 mean hops)
// matches the real Abilene backbone only under the distinct-pairs
// denominator |V|(|V|-1), so that convention is used here.
//
// When the graph carries a measured pairwise latency matrix (as the
// paper's datasets do), w and d1-d0 (ms) come from that matrix;
// otherwise they come from shortest-path latencies over the links.
func ExtractParams(g *Graph) (Params, error) {
	if g.N() < 2 {
		return Params{}, fmt.Errorf("topology: %q has %d nodes; need at least 2", g.Name(), g.N())
	}
	if !g.Connected() {
		return Params{}, fmt.Errorf("topology: %q is not connected", g.Name())
	}
	hop := g.ShortestPathsHops()
	p := Params{
		Name:        g.Name(),
		N:           g.N(),
		TierGapHops: hop.MeanDist(false),
	}
	if m := g.MeasuredLatencies(); m != nil {
		p.UnitCost = matrixMax(m)
		p.TierGapMs = matrixMean(m)
	} else {
		lat := g.ShortestPathsLatency()
		p.UnitCost = lat.MaxDist()
		p.TierGapMs = lat.MeanDist(false)
	}
	return p, nil
}

// matrixMax returns the largest off-diagonal entry.
func matrixMax(m [][]float64) float64 {
	var v float64
	for i := range m {
		for j, d := range m[i] {
			if i != j && d > v {
				v = d
			}
		}
	}
	return v
}

// matrixMean returns the mean off-diagonal entry.
func matrixMean(m [][]float64) float64 {
	n := len(m)
	if n < 2 {
		return 0
	}
	var sum float64
	for i := range m {
		for j, d := range m[i] {
			if i != j {
				sum += d
			}
		}
	}
	return sum / float64(n*(n-1))
}
