package topology

import (
	"math"
	"testing"
	"testing/quick"
)

// line builds a path graph 0-1-2-...-(n-1) with unit latencies.
func line(n int) *Graph {
	g := New("line")
	for i := 0; i < n; i++ {
		g.AddNode("", 0, 0)
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), 1)
	}
	return g
}

func TestShortestPathsLatencyTriangle(t *testing.T) {
	g := triangle(t) // edges: 0-1 (1), 1-2 (2), 0-2 (10)
	sp := g.ShortestPathsLatency()
	tests := []struct {
		a, b NodeID
		want float64
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 3}, // via node 1, not the direct 10ms link
		{1, 2, 2}, {2, 0, 3},
	}
	for _, tt := range tests {
		if got := sp.Dist(tt.a, tt.b); got != tt.want {
			t.Errorf("dist(%d,%d) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
	// First hop from 0 toward 2 must be node 1.
	if sp.Next(0, 2) != 1 {
		t.Errorf("Next(0,2) = %d, want 1", sp.Next(0, 2))
	}
	path, err := sp.Path(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 2 {
		t.Errorf("Path(0,2) = %v, want [0 1 2]", path)
	}
}

func TestShortestPathsHops(t *testing.T) {
	g := triangle(t)
	sp := g.ShortestPathsHops()
	// By hops, 0->2 is direct (1 hop) even though it is 10ms.
	if got := sp.Dist(0, 2); got != 1 {
		t.Errorf("hop dist(0,2) = %v, want 1", got)
	}
}

func TestPathEdgeCases(t *testing.T) {
	g := line(4)
	sp := g.ShortestPathsLatency()
	p, err := sp.Path(2, 2)
	if err != nil || len(p) != 1 || p[0] != 2 {
		t.Errorf("Path to self = %v, %v", p, err)
	}
	if _, err := sp.Path(-1, 2); err == nil {
		t.Error("negative src should fail")
	}
	if _, err := sp.Path(0, 99); err == nil {
		t.Error("out-of-range dst should fail")
	}
}

func TestUnreachable(t *testing.T) {
	g := New("disc")
	g.AddNode("a", 0, 0)
	g.AddNode("b", 0, 0)
	sp := g.ShortestPathsLatency()
	if !math.IsInf(sp.Dist(0, 1), 1) {
		t.Errorf("dist between components = %v, want +Inf", sp.Dist(0, 1))
	}
	if _, err := sp.Path(0, 1); err == nil {
		t.Error("path between components should fail")
	}
	if sp.MaxDist() != 0 {
		t.Errorf("MaxDist ignores Inf, got %v", sp.MaxDist())
	}
}

func TestMeanDistConventions(t *testing.T) {
	g := line(3) // pairwise hop distances: (0,1)=1 (0,2)=2 (1,2)=1, doubled ordered
	sp := g.ShortestPathsHops()
	// Ordered sum = 2*(1+2+1) = 8; off-diag pairs = 6, n^2 = 9.
	if got := sp.MeanDist(false); math.Abs(got-8.0/6) > 1e-12 {
		t.Errorf("MeanDist(false) = %v, want %v", got, 8.0/6)
	}
	if got := sp.MeanDist(true); math.Abs(got-8.0/9) > 1e-12 {
		t.Errorf("MeanDist(true) = %v, want %v", got, 8.0/9)
	}
}

func TestLinePathLengths(t *testing.T) {
	g := line(6)
	sp := g.ShortestPathsLatency()
	if got := sp.Dist(0, 5); got != 5 {
		t.Errorf("end-to-end = %v, want 5", got)
	}
	if got := sp.MaxDist(); got != 5 {
		t.Errorf("MaxDist = %v, want 5", got)
	}
	path, err := sp.Path(0, 5)
	if err != nil || len(path) != 6 {
		t.Errorf("Path(0,5) = %v, %v", path, err)
	}
}

// TestAPSPSymmetry property: on random connected graphs, shortest-path
// distances are symmetric and satisfy the triangle inequality.
func TestAPSPSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		g, err := RandomConnected(12, 20, 1, 10, seed)
		if err != nil {
			return false
		}
		sp := g.ShortestPathsLatency()
		n := g.N()
		for i := NodeID(0); int(i) < n; i++ {
			for j := NodeID(0); int(j) < n; j++ {
				if math.Abs(sp.Dist(i, j)-sp.Dist(j, i)) > 1e-9 {
					return false
				}
				for k := NodeID(0); int(k) < n; k++ {
					if sp.Dist(i, j) > sp.Dist(i, k)+sp.Dist(k, j)+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPathLatencyMatchesDist property: walking the Next matrix
// accumulates exactly the reported distance.
func TestPathLatencyMatchesDist(t *testing.T) {
	g, err := RandomConnected(15, 30, 1, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	sp := g.ShortestPathsLatency()
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if i == j {
				continue
			}
			path, err := sp.Path(NodeID(i), NodeID(j))
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for k := 0; k+1 < len(path); k++ {
				lat, err := g.EdgeLatency(path[k], path[k+1])
				if err != nil {
					t.Fatalf("path uses missing edge: %v", err)
				}
				sum += lat
			}
			if math.Abs(sum-sp.Dist(NodeID(i), NodeID(j))) > 1e-9 {
				t.Fatalf("path(%d,%d) latency %v != dist %v", i, j, sum, sp.Dist(NodeID(i), NodeID(j)))
			}
		}
	}
}

func BenchmarkAPSPLatency(b *testing.B) {
	g, err := RandomConnected(100, 300, 1, 20, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Bypass the generation cache so every iteration measures a full
		// recompute.
		g.shortestPathsLatencyFresh()
	}
}
