package coord

import (
	"testing"

	"ccncoord/internal/catalog"
	"ccncoord/internal/zipf"
)

func TestHashByContentBasics(t *testing.T) {
	rs := routers(4)
	ranks := make([]catalog.ID, 40)
	for i := range ranks {
		ranks[i] = catalog.ID(i + 100)
	}
	asg, err := HashByContent(rs, ranks, 10)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Size() != 40 {
		t.Fatalf("Size = %d, want 40", asg.Size())
	}
	// Every content has exactly one owner; per-router loads respect the
	// quota.
	for _, id := range ranks {
		if _, ok := asg.Owner(id); !ok {
			t.Errorf("content %d unassigned", id)
		}
	}
	for _, r := range rs {
		if got := len(asg.Contents(r)); got > 10 {
			t.Errorf("router %d holds %d > quota 10", r, got)
		}
	}
}

func TestHashByContentDeterministic(t *testing.T) {
	rs := routers(5)
	ranks := cacheRange(1, 25)
	a1, err := HashByContent(rs, ranks, 5)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := HashByContent(rs, ranks, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ranks {
		o1, _ := a1.Owner(id)
		o2, _ := a2.Owner(id)
		if o1 != o2 {
			t.Fatalf("content %d owner differs: %d vs %d", id, o1, o2)
		}
	}
}

// cacheRange builds rank ids [from, to].
func cacheRange(from, to int64) []catalog.ID {
	out := make([]catalog.ID, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, catalog.ID(i))
	}
	return out
}

func TestHashByContentSpillsWhenFull(t *testing.T) {
	// 2 routers x 2 slots, 4 contents: even if all hash to the same
	// router, probing must spread them within quota.
	asg, err := HashByContent(routers(2), cacheRange(1, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range routers(2) {
		if got := len(asg.Contents(r)); got != 2 {
			t.Errorf("router %d holds %d, want exactly 2", r, got)
		}
	}
}

func TestHashByContentTruncates(t *testing.T) {
	asg, err := HashByContent(routers(2), cacheRange(1, 10), 2)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Size() != 4 {
		t.Errorf("Size = %d, want 4 (capacity bound)", asg.Size())
	}
}

func TestHashByContentErrors(t *testing.T) {
	if _, err := HashByContent(nil, cacheRange(1, 2), 1); err == nil {
		t.Error("no routers should fail")
	}
	if _, err := HashByContent(routers(2), cacheRange(1, 2), -1); err == nil {
		t.Error("negative quota should fail")
	}
	if _, err := HashByContent(routers(2), []catalog.ID{0}, 1); err == nil {
		t.Error("invalid id should fail")
	}
	if _, err := HashByContent(routers(2), []catalog.ID{3, 3}, 2); err == nil {
		t.Error("duplicate id should fail")
	}
}

func TestStripeWeighted(t *testing.T) {
	quotas := []int64{1, 3, 2}
	asg, err := StripeWeighted(routers(3), cacheRange(10, 15), quotas)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Size() != 6 {
		t.Fatalf("Size = %d, want 6", asg.Size())
	}
	for i, q := range quotas {
		if got := int64(len(asg.Contents(routers(3)[i]))); got != q {
			t.Errorf("router %d holds %d, want %d", i, got, q)
		}
	}
	// Round-robin with quota skipping: 10->r0, 11->r1, 12->r2, then r0
	// is full: 13->r1, 14->r2, 15->r1.
	wantOwners := map[catalog.ID]int{10: 0, 11: 1, 12: 2, 13: 1, 14: 2, 15: 1}
	for id, want := range wantOwners {
		if o, _ := asg.Owner(id); int(o) != want {
			t.Errorf("Owner(%d) = %d, want %d", id, o, want)
		}
	}
}

func TestStripeWeightedMatchesUniformStripe(t *testing.T) {
	// Equal quotas must reproduce StripeByRank exactly.
	rs := routers(4)
	ranks := cacheRange(1, 20)
	uniform, err := StripeByRank(rs, ranks, 5)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := StripeWeighted(rs, ranks, []int64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ranks {
		a, _ := uniform.Owner(id)
		b, _ := weighted.Owner(id)
		if a != b {
			t.Fatalf("owner of %d differs: %d vs %d", id, a, b)
		}
	}
}

func TestStripeWeightedErrors(t *testing.T) {
	if _, err := StripeWeighted(nil, nil, nil); err == nil {
		t.Error("no routers should fail")
	}
	if _, err := StripeWeighted(routers(2), nil, []int64{1}); err == nil {
		t.Error("quota length mismatch should fail")
	}
	if _, err := StripeWeighted(routers(2), nil, []int64{1, -1}); err == nil {
		t.Error("negative quota should fail")
	}
	if _, err := StripeWeighted(routers(2), []catalog.ID{0}, []int64{1, 1}); err == nil {
		t.Error("invalid id should fail")
	}
	if _, err := StripeWeighted(routers(2), []catalog.ID{5, 5}, []int64{1, 1}); err == nil {
		t.Error("duplicate id should fail")
	}
}

// TestPopularityImbalanceStripeBeatsHash: rank striping interleaves the
// popularity mass, so its imbalance must not exceed hashing's on a
// skewed catalog.
func TestPopularityImbalanceStripeBeatsHash(t *testing.T) {
	const n = 10
	rs := routers(n)
	// A realistic coordinated band: the popularity head (the replicated
	// local set) is excluded, as in the paper's placement.
	ranks := cacheRange(101, 600)
	dist := zipf.MustNew(1.2, 10000)
	pmf := func(id catalog.ID) float64 { return dist.PMF(int64(id)) }

	stripe, err := StripeByRank(rs, ranks, 50)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := HashByContent(rs, ranks, 50)
	if err != nil {
		t.Fatal(err)
	}
	si, err := PopularityImbalance(stripe, rs, pmf)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := PopularityImbalance(hash, rs, pmf)
	if err != nil {
		t.Fatal(err)
	}
	if si < 1 || hi < 1 {
		t.Fatalf("imbalance below 1: stripe %v, hash %v", si, hi)
	}
	if si > hi {
		t.Errorf("striping (%v) should balance popularity at least as well as hashing (%v)", si, hi)
	}
}

func TestPopularityImbalanceErrors(t *testing.T) {
	if _, err := PopularityImbalance(nil, routers(2), nil); err == nil {
		t.Error("nil assignment should fail")
	}
	asg, err := StripeByRank(routers(2), cacheRange(1, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PopularityImbalance(asg, routers(2), nil); err == nil {
		t.Error("nil pmf should fail")
	}
	zero := func(catalog.ID) float64 { return 0 }
	if _, err := PopularityImbalance(asg, routers(2), zero); err == nil {
		t.Error("zero-mass assignment should fail")
	}
}
