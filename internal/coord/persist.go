package coord

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ccncoord/internal/catalog"
	"ccncoord/internal/topology"
)

// This file persists placements as JSON, so an operator can compute a
// provisioning decision once (or receive it from the coordinator),
// audit it, and install the identical placement across tools and runs.

// jsonPlacement is the wire form of a Placement.
type jsonPlacement struct {
	LocalSet []int64            `json:"local_set"`
	Striped  map[string][]int64 `json:"striped"` // router id -> ranks
}

// WriteJSON serializes the placement.
func (p *Placement) WriteJSON(w io.Writer) error {
	if p == nil || p.Assignment == nil {
		return fmt.Errorf("coord: nil placement")
	}
	jp := jsonPlacement{Striped: make(map[string][]int64)}
	for _, id := range p.LocalSet {
		jp.LocalSet = append(jp.LocalSet, int64(id))
	}
	routers := make([]topology.NodeID, 0, len(p.Assignment.perRouter))
	for r := range p.Assignment.perRouter {
		routers = append(routers, r)
	}
	sort.Slice(routers, func(i, j int) bool { return routers[i] < routers[j] })
	for _, r := range routers {
		key := fmt.Sprintf("%d", r)
		for _, id := range p.Assignment.perRouter[r] {
			jp.Striped[key] = append(jp.Striped[key], int64(id))
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jp); err != nil {
		return fmt.Errorf("coord: encoding placement: %w", err)
	}
	return nil
}

// ReadPlacement parses a placement written by WriteJSON. Duplicate
// contents (within or across the local set and stripes) are rejected.
func ReadPlacement(r io.Reader) (*Placement, error) {
	var jp jsonPlacement
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jp); err != nil {
		return nil, fmt.Errorf("coord: decoding placement: %w", err)
	}
	seen := make(map[catalog.ID]struct{})
	addUnique := func(raw int64) (catalog.ID, error) {
		id := catalog.ID(raw)
		if !id.Valid() {
			return 0, fmt.Errorf("coord: invalid content id %d", raw)
		}
		if _, dup := seen[id]; dup {
			return 0, fmt.Errorf("coord: duplicate content id %d", raw)
		}
		seen[id] = struct{}{}
		return id, nil
	}
	p := &Placement{
		Assignment: &Assignment{
			owners:    make(map[catalog.ID]topology.NodeID),
			perRouter: make(map[topology.NodeID][]catalog.ID),
		},
	}
	for _, raw := range jp.LocalSet {
		id, err := addUnique(raw)
		if err != nil {
			return nil, err
		}
		p.LocalSet = append(p.LocalSet, id)
	}
	// Deterministic router order for reproducible owners maps.
	keys := make([]string, 0, len(jp.Striped))
	for k := range jp.Striped {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		var router topology.NodeID
		if _, err := fmt.Sscanf(key, "%d", &router); err != nil {
			return nil, fmt.Errorf("coord: malformed router key %q", key)
		}
		if router < 0 {
			return nil, fmt.Errorf("coord: negative router id %d", router)
		}
		for _, raw := range jp.Striped[key] {
			id, err := addUnique(raw)
			if err != nil {
				return nil, err
			}
			p.Assignment.owners[id] = router
			p.Assignment.perRouter[router] = append(p.Assignment.perRouter[router], id)
		}
	}
	return p, nil
}
