package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"ccncoord/internal/catalog"
	"ccncoord/internal/topology"
)

// This file persists placements as JSON, so an operator can compute a
// provisioning decision once (or receive it from the coordinator),
// audit it, and install the identical placement across tools and runs.

// PlacementVersion is the placement wire-format version this package
// writes. Readers accept version 0 (legacy files written before the
// field existed) and the current version; anything else is rejected so
// a future format change cannot be silently misread.
const PlacementVersion = 1

// jsonPlacement is the wire form of a Placement.
type jsonPlacement struct {
	Version  int                `json:"version,omitempty"`
	LocalSet []int64            `json:"local_set"`
	Striped  map[string][]int64 `json:"striped"` // router id -> ranks
}

// placementWire converts a Placement to its wire form, with routers
// serialized in id order so the output is byte-deterministic.
func placementWire(p *Placement) (jsonPlacement, error) {
	if p == nil || p.Assignment == nil {
		return jsonPlacement{}, fmt.Errorf("coord: nil placement")
	}
	jp := jsonPlacement{Version: PlacementVersion, Striped: make(map[string][]int64)}
	for _, id := range p.LocalSet {
		jp.LocalSet = append(jp.LocalSet, int64(id))
	}
	routers := make([]topology.NodeID, 0, len(p.Assignment.perRouter))
	for r := range p.Assignment.perRouter {
		routers = append(routers, r)
	}
	sort.Slice(routers, func(i, j int) bool { return routers[i] < routers[j] })
	for _, r := range routers {
		key := fmt.Sprintf("%d", r)
		for _, id := range p.Assignment.perRouter[r] {
			jp.Striped[key] = append(jp.Striped[key], int64(id))
		}
	}
	return jp, nil
}

// placementFromWire validates and rebuilds a Placement from its wire
// form. Duplicate contents (within or across the local set and
// stripes) are rejected.
func placementFromWire(jp jsonPlacement) (*Placement, error) {
	if jp.Version != 0 && jp.Version != PlacementVersion {
		return nil, fmt.Errorf("coord: unsupported placement version %d (this build reads up to %d)", jp.Version, PlacementVersion)
	}
	seen := make(map[catalog.ID]struct{})
	addUnique := func(raw int64) (catalog.ID, error) {
		id := catalog.ID(raw)
		if !id.Valid() {
			return 0, fmt.Errorf("coord: invalid content id %d", raw)
		}
		if _, dup := seen[id]; dup {
			return 0, fmt.Errorf("coord: duplicate content id %d", raw)
		}
		seen[id] = struct{}{}
		return id, nil
	}
	p := &Placement{
		Assignment: &Assignment{
			owners:    make(map[catalog.ID]topology.NodeID),
			perRouter: make(map[topology.NodeID][]catalog.ID),
		},
	}
	for _, raw := range jp.LocalSet {
		id, err := addUnique(raw)
		if err != nil {
			return nil, err
		}
		p.LocalSet = append(p.LocalSet, id)
	}
	// Deterministic router order for reproducible owners maps.
	keys := make([]string, 0, len(jp.Striped))
	for k := range jp.Striped {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		var router topology.NodeID
		if _, err := fmt.Sscanf(key, "%d", &router); err != nil {
			return nil, fmt.Errorf("coord: malformed router key %q", key)
		}
		if router < 0 {
			return nil, fmt.Errorf("coord: negative router id %d", router)
		}
		for _, raw := range jp.Striped[key] {
			id, err := addUnique(raw)
			if err != nil {
				return nil, err
			}
			p.Assignment.owners[id] = router
			p.Assignment.perRouter[router] = append(p.Assignment.perRouter[router], id)
		}
	}
	return p, nil
}

// decodeStrict decodes exactly one JSON document from r into v,
// rejecting unknown fields, empty input, truncated documents, and
// trailing data. what names the document in error messages.
func decodeStrict(r io.Reader, v interface{}, what string) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		switch {
		case errors.Is(err, io.EOF):
			return fmt.Errorf("coord: %s input is empty", what)
		case errors.Is(err, io.ErrUnexpectedEOF):
			return fmt.Errorf("coord: %s is truncated (JSON document ends mid-stream): %w", what, err)
		default:
			return fmt.Errorf("coord: decoding %s: %w", what, err)
		}
	}
	// A valid document must be the whole input: trailing data means a
	// corrupt or concatenated file, not a placement/checkpoint.
	if tok, err := dec.Token(); err != io.EOF {
		if err != nil {
			return fmt.Errorf("coord: %s has malformed trailing data: %v", what, err)
		}
		return fmt.Errorf("coord: %s has trailing data after the JSON document (starting with %v)", what, tok)
	}
	return nil
}

// WriteJSON serializes the placement.
func (p *Placement) WriteJSON(w io.Writer) error {
	jp, err := placementWire(p)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jp); err != nil {
		return fmt.Errorf("coord: encoding placement: %w", err)
	}
	return nil
}

// ReadPlacement parses a placement written by WriteJSON. Truncated or
// corrupt input, unknown fields, trailing data, unsupported versions,
// and duplicate contents (within or across the local set and stripes)
// are all rejected with descriptive errors.
func ReadPlacement(r io.Reader) (*Placement, error) {
	var jp jsonPlacement
	if err := decodeStrict(r, &jp, "placement"); err != nil {
		return nil, err
	}
	return placementFromWire(jp)
}
