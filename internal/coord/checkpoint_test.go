package coord

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

// testCheckpoint builds a checkpoint with every section populated.
func testCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	reports := []Report{{Router: 0, Counts: map[catalog.ID]int64{}}}
	for rank := int64(1); rank <= 40; rank++ {
		reports[0].Counts[catalog.ID(rank)] = 100 - rank
	}
	p, err := ComputePlacement(reports, routers(4), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	return &Checkpoint{
		Epoch:     3,
		Placement: p,
		Detector: &DetectorState{
			Heartbeats: 120,
			Missed:     map[topology.NodeID]int{2: 1},
			Declared:   []topology.NodeID{3},
		},
		Stats: map[catalog.ID]int64{1: 500, 7: 42},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := testCheckpoint(t)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != c.Epoch {
		t.Errorf("epoch %d, want %d", back.Epoch, c.Epoch)
	}
	if !reflect.DeepEqual(back.Placement.LocalSet, c.Placement.LocalSet) {
		t.Errorf("local set %v, want %v", back.Placement.LocalSet, c.Placement.LocalSet)
	}
	if back.Placement.Assignment.Size() != c.Placement.Assignment.Size() {
		t.Fatalf("assignment size %d, want %d", back.Placement.Assignment.Size(), c.Placement.Assignment.Size())
	}
	for id, owner := range c.Placement.Assignment.owners {
		got, ok := back.Placement.Assignment.Owner(id)
		if !ok || got != owner {
			t.Errorf("owner of %d: %d/%v, want %d", id, got, ok, owner)
		}
	}
	if !reflect.DeepEqual(back.Detector, c.Detector) {
		t.Errorf("detector state %+v, want %+v", back.Detector, c.Detector)
	}
	if !reflect.DeepEqual(back.Stats, c.Stats) {
		t.Errorf("stats %v, want %v", back.Stats, c.Stats)
	}
	// The writer is byte-deterministic.
	var again bytes.Buffer
	if err := WriteCheckpoint(&again, c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("writing the same checkpoint twice produced different bytes")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	c := testCheckpoint(t)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, c); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	t.Run("payload bit flip", func(t *testing.T) {
		// Change a digit inside the payload without touching the JSON
		// structure: the checksum must catch it.
		bad := strings.Replace(good, `"heartbeats": 120`, `"heartbeats": 121`, 1)
		if bad == good {
			t.Fatal("test setup: heartbeat field not found in envelope")
		}
		_, err := ReadCheckpoint(strings.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Errorf("edited payload: err = %v, want checksum mismatch", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		_, err := ReadCheckpoint(strings.NewReader(good[:len(good)/2]))
		if err == nil {
			t.Error("truncated checkpoint accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := ReadCheckpoint(strings.NewReader("")); err == nil {
			t.Error("empty input accepted")
		}
	})
	t.Run("trailing data", func(t *testing.T) {
		_, err := ReadCheckpoint(strings.NewReader(good + `{"second": 1}`))
		if err == nil {
			t.Error("trailing data accepted")
		}
	})
	t.Run("wrong schema", func(t *testing.T) {
		bad := strings.Replace(good, CheckpointSchema, "something/else/v1", 1)
		_, err := ReadCheckpoint(strings.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "schema") {
			t.Errorf("wrong schema: err = %v, want schema error", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := strings.Replace(good, `"version": 1`, `"version": 99`, 1)
		if bad == good {
			t.Fatal("test setup: version field not found")
		}
		_, err := ReadCheckpoint(strings.NewReader(bad))
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("wrong version: err = %v, want version error", err)
		}
	})
	t.Run("unknown envelope field", func(t *testing.T) {
		bad := strings.Replace(good, `"schema"`, `"extra": 1, "schema"`, 1)
		if _, err := ReadCheckpoint(strings.NewReader(bad)); err == nil {
			t.Error("unknown envelope field accepted")
		}
	})
}

func TestWriteCheckpointValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, nil); err == nil {
		t.Error("nil checkpoint accepted")
	}
	c := testCheckpoint(t)
	c.Epoch = -1
	if err := WriteCheckpoint(&buf, c); err == nil {
		t.Error("negative epoch accepted")
	}
	c = testCheckpoint(t)
	c.Placement = nil
	if err := WriteCheckpoint(&buf, c); err == nil {
		t.Error("checkpoint without placement accepted")
	}
	c = testCheckpoint(t)
	c.Stats = map[catalog.ID]int64{5: -1}
	if err := WriteCheckpoint(&buf, c); err == nil {
		t.Error("negative stats count accepted")
	}
}

func TestSaveLoadCheckpointAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	c := testCheckpoint(t)
	if err := SaveCheckpoint(path, c); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after a successful save")
	}
	back, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != c.Epoch || !reflect.DeepEqual(back.Detector, c.Detector) {
		t.Errorf("loaded checkpoint differs: %+v", back)
	}
	// Overwriting with a newer epoch replaces the file in place.
	c.Epoch = 4
	if err := SaveCheckpoint(path, c); err != nil {
		t.Fatal(err)
	}
	back, err = LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != 4 {
		t.Errorf("epoch after overwrite %d, want 4", back.Epoch)
	}
	// A failed save must not clobber the good file.
	bad := testCheckpoint(t)
	bad.Placement = nil
	if err := SaveCheckpoint(path, bad); err == nil {
		t.Fatal("invalid checkpoint saved")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after a failed save")
	}
	if back, err = LoadCheckpoint(path); err != nil || back.Epoch != 4 {
		t.Errorf("failed save clobbered the previous checkpoint: %v, %v", back, err)
	}
}

func TestCheckpointEnvelopeShape(t *testing.T) {
	// The envelope must carry schema/version/epoch/checksum at the top
	// level so external tooling can inspect a checkpoint without
	// decoding the payload.
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, testCheckpoint(t)); err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "version", "epoch", "checksum", "payload"} {
		if _, ok := env[key]; !ok {
			t.Errorf("envelope missing %q", key)
		}
	}
}

func TestAdoptReplacesLiveAssignment(t *testing.T) {
	reports := []Report{{Router: 0, Counts: map[catalog.ID]int64{}}}
	for rank := int64(1); rank <= 40; rank++ {
		reports[0].Counts[catalog.ID(rank)] = 100 - rank
	}
	pa, err := ComputePlacement(reports, routers(4), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := ComputePlacement(reports, routers(2), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	live := pa.Assignment
	aliasing := live // the data plane's directory pointer
	if err := live.Adopt(pb.Assignment); err != nil {
		t.Fatal(err)
	}
	// The alias sees the adopted placement without repointing.
	if aliasing.Size() != pb.Assignment.Size() {
		t.Fatalf("aliased assignment size %d, want %d", aliasing.Size(), pb.Assignment.Size())
	}
	for id, owner := range pb.Assignment.owners {
		got, ok := aliasing.Owner(id)
		if !ok || got != owner {
			t.Errorf("after Adopt, owner of %d = %d/%v, want %d", id, got, ok, owner)
		}
	}
	// Adopt deep-copies: mutating the source afterwards must not leak.
	var anyID catalog.ID
	for id := range pb.Assignment.owners {
		anyID = id
		break
	}
	pb.Assignment.owners[anyID] = topology.NodeID(99)
	if got, _ := aliasing.Owner(anyID); got == 99 {
		t.Error("Adopt shared the source's owners map")
	}
	if err := live.Adopt(nil); err == nil {
		t.Error("Adopt(nil) accepted")
	}
	var nilAsg *Assignment
	if err := nilAsg.Adopt(live); err == nil {
		t.Error("nil.Adopt accepted")
	}
}

func TestDetectorStateRoundTripThroughCheckpoint(t *testing.T) {
	// Run a detector against a crashed router, checkpoint it mid-count,
	// restore into a fresh detector, and check the declaration fires at
	// the same round it would have without the restart.
	runDetector := func(restartAt float64) (declaredAt float64) {
		eng := &des.Engine{}
		det, err := NewDetector(routers(3), 10, 3)
		if err != nil {
			t.Fatal(err)
		}
		det.Alive = func(r topology.NodeID) bool { return r != 1 }
		declaredAt = -1
		det.OnDown = func(dead topology.NodeID, at float64, _ []topology.NodeID) {
			if dead == 1 {
				declaredAt = at
			}
		}
		if err := det.Start(eng, 200); err != nil {
			t.Fatal(err)
		}
		if restartAt > 0 {
			if err := eng.At(restartAt, func() {
				st := det.State()
				fresh, err := NewDetector(routers(3), 10, 3)
				if err != nil {
					t.Fatal(err)
				}
				if err := fresh.RestoreState(st); err != nil {
					t.Fatal(err)
				}
				// The fresh detector must agree with the live one.
				if fresh.Heartbeats() != det.Heartbeats() {
					t.Errorf("restored heartbeats %d, want %d", fresh.Heartbeats(), det.Heartbeats())
				}
				if err := det.RestoreState(fresh.State()); err != nil {
					t.Fatal(err)
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		eng.Run()
		return declaredAt
	}
	plain := runDetector(0)
	restarted := runDetector(25) // between the 2nd and 3rd rounds
	if plain < 0 {
		t.Fatal("crashed router never declared")
	}
	if restarted != plain {
		t.Errorf("restart moved the declaration: %v, want %v", restarted, plain)
	}
}

func TestDetectorDropCountsMisses(t *testing.T) {
	// All routers healthy, but router 2's heartbeats are dropped in
	// flight: the detector must declare it dead after Misses rounds
	// while the others stay undeclared.
	eng := &des.Engine{}
	det, err := NewDetector(routers(3), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	det.Alive = func(topology.NodeID) bool { return true }
	var drops int
	det.Drop = func(r topology.NodeID, at float64) bool {
		if r == 2 {
			drops++
			return true
		}
		return false
	}
	var declaredAt float64 = -1
	det.OnDown = func(dead topology.NodeID, at float64, survivors []topology.NodeID) {
		if dead != 2 {
			t.Errorf("declared router %d, want 2", dead)
		}
		declaredAt = at
		if len(survivors) != 2 {
			t.Errorf("survivors %v, want the two healthy routers", survivors)
		}
	}
	if err := det.Start(eng, 100); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if declaredAt != 30 {
		t.Errorf("declared at %v, want 30 (3 dropped heartbeats at interval 10)", declaredAt)
	}
	if det.Declared(0) || det.Declared(1) {
		t.Error("healthy routers with delivered heartbeats were declared")
	}
	// Dropped heartbeats are not counted as exchanged messages.
	if got, want := det.Heartbeats(), int64(2*10); got != want {
		t.Errorf("heartbeats %d, want %d (only delivered ones count)", got, want)
	}
	if drops != 3 {
		t.Errorf("Drop consulted %d times for router 2, want 3 (declaration is sticky)", drops)
	}
}
