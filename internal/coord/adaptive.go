package coord

import (
	"fmt"
	"math"

	"ccncoord/internal/model"
	"ccncoord/internal/topology"
	"ccncoord/internal/zipf"
)

// Adaptive is the online self-adaptive coordinator of the paper's first
// future-work direction: each epoch it re-estimates the Zipf exponent
// from the routers' observed request counts, re-solves the optimal
// coordination level x* under the current cost trade-off, and installs
// the corresponding placement. The true popularity distribution is never
// consulted.
type Adaptive struct {
	base        model.Config // S is overwritten each epoch
	coordinator *Centralized
	lastS       float64
	lastLevel   float64
}

// NewAdaptive returns an adaptive coordinator. base supplies every model
// parameter except the Zipf exponent, which is learned online; base.S is
// used only as the initial guess before the first epoch.
func NewAdaptive(routers []topology.NodeID, base model.Config) (*Adaptive, error) {
	if base.Routers != len(routers) {
		return nil, fmt.Errorf("coord: config says %d routers, got %d", base.Routers, len(routers))
	}
	central, err := NewCentralized(routers, base.UnitCost)
	if err != nil {
		return nil, err
	}
	return &Adaptive{base: base, coordinator: central, lastS: base.S}, nil
}

// LastEstimate returns the most recent Zipf exponent estimate.
func (a *Adaptive) LastEstimate() float64 { return a.lastS }

// LastLevel returns the most recent optimal coordination level.
func (a *Adaptive) LastLevel() float64 { return a.lastLevel }

// Epoch ingests the routers' reports, re-estimates s, re-optimizes the
// coordination level, and returns the new placement with its protocol
// cost.
func (a *Adaptive) Epoch(reports []Report) (*Placement, Cost, error) {
	if len(reports) == 0 {
		return nil, Cost{}, fmt.Errorf("coord: no reports")
	}
	s, err := EstimateZipf(aggregate(reports), 10000)
	if err == nil {
		// The analytical model excludes the singular point s = 1 and the
		// tail beyond 2; clamp the estimate into its domain.
		switch {
		case s >= 2:
			s = 1.99
		case s <= 0.01:
			s = 0.01
		case math.Abs(s-1) < 0.005:
			s = 1.005
		}
		a.lastS = s
	}
	cfg := a.base
	cfg.S = a.lastS
	cfg.Amortization = zipf.BoundaryMass(cfg.C, cfg.S, cfg.N)
	x, err := cfg.OptimalX()
	if err != nil {
		return nil, Cost{}, fmt.Errorf("coord: adaptive optimization: %w", err)
	}
	coordSlots := int64(math.Round(x))
	localSlots := int64(cfg.C) - coordSlots
	a.lastLevel = x / cfg.C
	return a.coordinator.RunEpoch(reports, localSlots, coordSlots)
}
