package coord

import (
	"bytes"
	"strings"
	"testing"

	"ccncoord/internal/catalog"
	"ccncoord/internal/topology"
)

// FuzzPersistLoad drives the strict placement and checkpoint readers
// with arbitrary bytes: they must never panic, and anything they do
// accept must re-serialize and re-read to the same state (no partially
// restored placements slipping through).
func FuzzPersistLoad(f *testing.F) {
	f.Add([]byte(`{"version": 1, "local_set": [1, 2], "striped": {"0": [3, 5], "1": [4]}}`))
	f.Add([]byte(`{"local_set": [], "striped": {}}`))
	f.Add([]byte(``))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version": 99, "local_set": [], "striped": {}}`))
	f.Add([]byte(`{"local_set": [1], "striped": {"0": [1]}}`))

	var ckpt bytes.Buffer
	p := &Placement{
		LocalSet: []catalog.ID{1, 2},
		Assignment: &Assignment{
			owners:    map[catalog.ID]topology.NodeID{3: 0, 4: 1},
			perRouter: map[topology.NodeID][]catalog.ID{0: {3}, 1: {4}},
		},
	}
	if err := WriteCheckpoint(&ckpt, &Checkpoint{
		Epoch:     1,
		Placement: p,
		Detector:  &DetectorState{Heartbeats: 9, Declared: []topology.NodeID{1}},
		Stats:     map[catalog.ID]int64{3: 7},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(ckpt.Bytes())
	f.Add(bytes.Replace(ckpt.Bytes(), []byte(`"epoch": 1`), []byte(`"epoch": 2`), 1))
	f.Add(ckpt.Bytes()[:ckpt.Len()/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := ReadPlacement(bytes.NewReader(data)); err == nil {
			var out strings.Builder
			if err := p.WriteJSON(&out); err != nil {
				t.Fatalf("accepted placement does not re-serialize: %v", err)
			}
			back, err := ReadPlacement(strings.NewReader(out.String()))
			if err != nil {
				t.Fatalf("re-serialized placement rejected: %v", err)
			}
			if back.Assignment.Size() != p.Assignment.Size() || len(back.LocalSet) != len(p.LocalSet) {
				t.Fatal("placement round trip changed shape")
			}
		}
		if c, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
			var out bytes.Buffer
			if err := WriteCheckpoint(&out, c); err != nil {
				t.Fatalf("accepted checkpoint does not re-serialize: %v", err)
			}
			back, err := ReadCheckpoint(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("re-serialized checkpoint rejected: %v", err)
			}
			if back.Epoch != c.Epoch {
				t.Fatal("checkpoint round trip changed the epoch")
			}
		}
	})
}
