// Coordinator checkpoint/restore: the coordinator's full state —
// placement, failure-detector state, and an optional popularity-stats
// sketch — serialized as one epoch-versioned, checksummed JSON
// envelope. A checkpoint taken at event T and restored later yields a
// coordinator byte-identical in behavior to one that never went down,
// which is what lets the simulator prove crash/restart runs equivalent
// to uninterrupted ones. Files are written atomically (temp file +
// rename), and the reader rejects truncated, corrupt, hand-edited, or
// wrong-version input with descriptive errors instead of restoring
// partial state.
package coord

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"ccncoord/internal/catalog"
	"ccncoord/internal/topology"
)

// CheckpointSchema identifies the checkpoint JSON layout. The payload
// schema is append-only; any field-semantics change bumps the version
// suffix.
const CheckpointSchema = "ccncoord/coordinator-checkpoint/v1"

// CheckpointVersion is the envelope version this package writes and
// the only one it reads.
const CheckpointVersion = 1

// Checkpoint is the coordinator's restorable state at one epoch.
type Checkpoint struct {
	// Epoch is the placement epoch the checkpoint captures; restore
	// paths use it to refuse stale state when several checkpoints
	// exist.
	Epoch int64
	// Placement is the live provisioning decision (local set plus
	// striped assignment). Required.
	Placement *Placement
	// Detector is the failure detector's state, when one was running.
	Detector *DetectorState
	// Stats is the coordinator's popularity sketch (content -> observed
	// request count), when one was being maintained.
	Stats map[catalog.ID]int64
}

// jsonCheckpoint is the envelope: metadata plus the checksummed
// payload. Checksum is the SHA-256 of the payload's compact JSON
// encoding, so any bit flip inside the payload is caught before a
// single field is trusted.
type jsonCheckpoint struct {
	Schema   string          `json:"schema"`
	Version  int             `json:"version"`
	Epoch    int64           `json:"epoch"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// jsonCheckpointPayload is the checksummed body.
type jsonCheckpointPayload struct {
	Placement jsonPlacement      `json:"placement"`
	Detector  *jsonDetectorState `json:"detector,omitempty"`
	Stats     map[string]int64   `json:"stats,omitempty"`
}

// jsonDetectorState is the wire form of DetectorState.
type jsonDetectorState struct {
	Heartbeats int64          `json:"heartbeats"`
	Missed     map[string]int `json:"missed,omitempty"`
	Declared   []int64        `json:"declared,omitempty"`
}

// payloadChecksum hashes the canonical (compact) form of the payload
// bytes, so the indented on-disk form and the in-memory compact form
// agree.
func payloadChecksum(payload []byte) (string, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, payload); err != nil {
		return "", fmt.Errorf("coord: checkpoint payload is not valid JSON: %w", err)
	}
	sum := sha256.Sum256(compact.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// WriteCheckpoint serializes the checkpoint to w as an indented,
// checksummed JSON envelope followed by a newline. The output is
// byte-deterministic for a given checkpoint.
func WriteCheckpoint(w io.Writer, c *Checkpoint) error {
	if c == nil {
		return fmt.Errorf("coord: nil checkpoint")
	}
	if c.Epoch < 0 {
		return fmt.Errorf("coord: negative checkpoint epoch %d", c.Epoch)
	}
	jp, err := placementWire(c.Placement)
	if err != nil {
		return err
	}
	payload := jsonCheckpointPayload{Placement: jp}
	if c.Detector != nil {
		payload.Detector = c.Detector.wire()
	}
	if len(c.Stats) > 0 {
		payload.Stats = make(map[string]int64, len(c.Stats))
		for id, count := range c.Stats {
			if !id.Valid() {
				return fmt.Errorf("coord: invalid content id %d in checkpoint stats", id)
			}
			if count < 0 {
				return fmt.Errorf("coord: negative stats count %d for content %d", count, id)
			}
			payload.Stats[fmt.Sprintf("%d", id)] = count
		}
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("coord: encoding checkpoint payload: %w", err)
	}
	checksum, err := payloadChecksum(body)
	if err != nil {
		return err
	}
	env := jsonCheckpoint{
		Schema:   CheckpointSchema,
		Version:  CheckpointVersion,
		Epoch:    c.Epoch,
		Checksum: checksum,
		Payload:  body,
	}
	out, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return fmt.Errorf("coord: encoding checkpoint: %w", err)
	}
	out = append(out, '\n')
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("coord: writing checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint parses a checkpoint written by WriteCheckpoint. It
// verifies the schema, version, and payload checksum before decoding a
// single state field, and rejects truncated, corrupt, or trailing-data
// input with descriptive errors.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var env jsonCheckpoint
	if err := decodeStrict(r, &env, "checkpoint"); err != nil {
		return nil, err
	}
	if env.Schema != CheckpointSchema {
		return nil, fmt.Errorf("coord: not a coordinator checkpoint: schema %q (want %q)", env.Schema, CheckpointSchema)
	}
	if env.Version != CheckpointVersion {
		return nil, fmt.Errorf("coord: unsupported checkpoint version %d (this build reads version %d)", env.Version, CheckpointVersion)
	}
	if env.Epoch < 0 {
		return nil, fmt.Errorf("coord: negative checkpoint epoch %d", env.Epoch)
	}
	if len(env.Payload) == 0 {
		return nil, fmt.Errorf("coord: checkpoint has no payload")
	}
	checksum, err := payloadChecksum(env.Payload)
	if err != nil {
		return nil, err
	}
	if checksum != env.Checksum {
		return nil, fmt.Errorf("coord: checkpoint checksum mismatch: envelope says %s, payload hashes to %s (corrupt or edited checkpoint)", env.Checksum, checksum)
	}
	var payload jsonCheckpointPayload
	if err := decodeStrict(bytes.NewReader(env.Payload), &payload, "checkpoint payload"); err != nil {
		return nil, err
	}
	p, err := placementFromWire(payload.Placement)
	if err != nil {
		return nil, err
	}
	c := &Checkpoint{Epoch: env.Epoch, Placement: p}
	if payload.Detector != nil {
		st, err := payload.Detector.state()
		if err != nil {
			return nil, err
		}
		c.Detector = st
	}
	if len(payload.Stats) > 0 {
		c.Stats = make(map[catalog.ID]int64, len(payload.Stats))
		for key, count := range payload.Stats {
			var raw int64
			if _, err := fmt.Sscanf(key, "%d", &raw); err != nil {
				return nil, fmt.Errorf("coord: malformed stats content key %q", key)
			}
			id := catalog.ID(raw)
			if !id.Valid() {
				return nil, fmt.Errorf("coord: invalid content id %d in checkpoint stats", raw)
			}
			if count < 0 {
				return nil, fmt.Errorf("coord: negative stats count %d for content %d", count, raw)
			}
			c.Stats[id] = count
		}
	}
	return c, nil
}

// SaveCheckpoint writes the checkpoint to path atomically: the
// envelope is written to a temporary sibling file and renamed into
// place, so a crash mid-write never leaves a torn checkpoint where a
// restore path would look for one.
func SaveCheckpoint(path string, c *Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("coord: creating checkpoint temp file: %w", err)
	}
	if err := WriteCheckpoint(f, c); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("coord: closing checkpoint temp file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("coord: installing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint from path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("coord: opening checkpoint: %w", err)
	}
	defer f.Close()
	c, err := ReadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("coord: reading checkpoint %s: %w", path, err)
	}
	return c, nil
}

// Adopt replaces a's contents with b's in place. The data plane holds
// the assignment pointer as its directory, so restoring a checkpoint
// must mutate the live assignment rather than swap the pointer — after
// Adopt, every router's directory lookup sees the restored placement.
func (a *Assignment) Adopt(b *Assignment) error {
	if a == nil || b == nil {
		return fmt.Errorf("coord: nil assignment")
	}
	owners := make(map[catalog.ID]topology.NodeID, len(b.owners))
	for id, r := range b.owners {
		owners[id] = r
	}
	perRouter := make(map[topology.NodeID][]catalog.ID, len(b.perRouter))
	for r, ids := range b.perRouter {
		perRouter[r] = append([]catalog.ID(nil), ids...)
	}
	a.owners, a.perRouter = owners, perRouter
	return nil
}

// wire converts the detector state to its JSON form, with deterministic
// ordering.
func (s *DetectorState) wire() *jsonDetectorState {
	out := &jsonDetectorState{Heartbeats: s.Heartbeats}
	if len(s.Missed) > 0 {
		out.Missed = make(map[string]int, len(s.Missed))
		for r, m := range s.Missed {
			out.Missed[fmt.Sprintf("%d", r)] = m
		}
	}
	if len(s.Declared) > 0 {
		declared := append([]topology.NodeID(nil), s.Declared...)
		sort.Slice(declared, func(i, j int) bool { return declared[i] < declared[j] })
		for _, r := range declared {
			out.Declared = append(out.Declared, int64(r))
		}
	}
	return out
}

// state validates and converts the wire form back to DetectorState.
func (s *jsonDetectorState) state() (*DetectorState, error) {
	if s.Heartbeats < 0 {
		return nil, fmt.Errorf("coord: negative heartbeat count %d in checkpoint", s.Heartbeats)
	}
	out := &DetectorState{Heartbeats: s.Heartbeats}
	if len(s.Missed) > 0 {
		out.Missed = make(map[topology.NodeID]int, len(s.Missed))
		for key, m := range s.Missed {
			var r topology.NodeID
			if _, err := fmt.Sscanf(key, "%d", &r); err != nil {
				return nil, fmt.Errorf("coord: malformed detector router key %q", key)
			}
			if r < 0 {
				return nil, fmt.Errorf("coord: negative router id %d in detector state", r)
			}
			if m < 0 {
				return nil, fmt.Errorf("coord: negative miss count %d for router %d", m, r)
			}
			out.Missed[r] = m
		}
	}
	seen := make(map[topology.NodeID]bool, len(s.Declared))
	for _, raw := range s.Declared {
		r := topology.NodeID(raw)
		if r < 0 {
			return nil, fmt.Errorf("coord: negative router id %d in detector state", raw)
		}
		if seen[r] {
			return nil, fmt.Errorf("coord: duplicate declared router %d in detector state", raw)
		}
		seen[r] = true
		out.Declared = append(out.Declared, r)
	}
	return out, nil
}
