package coord

import (
	"strings"
	"testing"

	"ccncoord/internal/catalog"
)

func TestPlacementJSONRoundTrip(t *testing.T) {
	reports := []Report{{Router: 0, Counts: map[catalog.ID]int64{}}}
	for rank := int64(1); rank <= 50; rank++ {
		reports[0].Counts[catalog.ID(rank)] = 100 - rank
	}
	p, err := ComputePlacement(reports, routers(4), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := p.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlacement(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.LocalSet) != len(p.LocalSet) {
		t.Fatalf("local set %d, want %d", len(back.LocalSet), len(p.LocalSet))
	}
	for i := range p.LocalSet {
		if back.LocalSet[i] != p.LocalSet[i] {
			t.Fatalf("local set differs at %d", i)
		}
	}
	if back.Assignment.Size() != p.Assignment.Size() {
		t.Fatalf("assignment size %d, want %d", back.Assignment.Size(), p.Assignment.Size())
	}
	for id, owner := range p.Assignment.owners {
		got, ok := back.Assignment.Owner(id)
		if !ok || got != owner {
			t.Fatalf("owner of %d: %d/%v, want %d", id, got, ok, owner)
		}
	}
}

func TestWritePlacementNil(t *testing.T) {
	var sb strings.Builder
	var p *Placement
	if err := p.WriteJSON(&sb); err == nil {
		t.Error("nil placement should fail")
	}
	if err := (&Placement{}).WriteJSON(&sb); err == nil {
		t.Error("placement without assignment should fail")
	}
}

func TestReadPlacementErrors(t *testing.T) {
	for name, doc := range map[string]string{
		"not json":        "nope",
		"invalid id":      `{"local_set": [0], "striped": {}}`,
		"duplicate local": `{"local_set": [1, 1], "striped": {}}`,
		"duplicate cross": `{"local_set": [1], "striped": {"0": [1]}}`,
		"bad router key":  `{"local_set": [], "striped": {"x": [1]}}`,
		"negative router": `{"local_set": [], "striped": {"-2": [1]}}`,
		"unknown field":   `{"local_set": [], "striped": {}, "extra": 1}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadPlacement(strings.NewReader(doc)); err == nil {
				t.Errorf("document should fail: %s", doc)
			}
		})
	}
}

func TestReadPlacementImplementsDirectory(t *testing.T) {
	doc := `{"local_set": [1, 2], "striped": {"0": [3, 5], "1": [4]}}`
	p, err := ReadPlacement(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := p.Assignment.Owner(4)
	if !ok || owner != 1 {
		t.Errorf("Owner(4) = %d/%v, want 1", owner, ok)
	}
	if _, ok := p.Assignment.Owner(1); ok {
		t.Error("local content should have no coordinated owner")
	}
}
