package coord

import (
	"math"
	"testing"

	"ccncoord/internal/catalog"
	"ccncoord/internal/model"
	"ccncoord/internal/topology"
	"ccncoord/internal/workload"
)

func routers(n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

func TestStripeByRank(t *testing.T) {
	asg, err := StripeByRank(routers(3), []catalog.ID{10, 11, 12, 13, 14, 15}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Size() != 6 {
		t.Fatalf("Size = %d, want 6", asg.Size())
	}
	// Round-robin: router 0 gets ranks 10, 13; router 1 gets 11, 14; ...
	wantOwners := map[catalog.ID]topology.NodeID{10: 0, 11: 1, 12: 2, 13: 0, 14: 1, 15: 2}
	for id, want := range wantOwners {
		got, ok := asg.Owner(id)
		if !ok || got != want {
			t.Errorf("Owner(%d) = %d/%v, want %d", id, got, ok, want)
		}
	}
	if _, ok := asg.Owner(99); ok {
		t.Error("unassigned content should have no owner")
	}
	c0 := asg.Contents(0)
	if len(c0) != 2 || c0[0] != 10 || c0[1] != 13 {
		t.Errorf("Contents(0) = %v", c0)
	}
}

func TestStripeByRankTruncates(t *testing.T) {
	// 2 routers x 1 slot = capacity 2; extra ranks are dropped.
	asg, err := StripeByRank(routers(2), []catalog.ID{1, 2, 3, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Size() != 2 {
		t.Errorf("Size = %d, want 2", asg.Size())
	}
	if _, ok := asg.Owner(3); ok {
		t.Error("rank beyond capacity should be unassigned")
	}
}

func TestStripeByRankErrors(t *testing.T) {
	if _, err := StripeByRank(nil, []catalog.ID{1}, 1); err == nil {
		t.Error("no routers should fail")
	}
	if _, err := StripeByRank(routers(2), []catalog.ID{1}, -1); err == nil {
		t.Error("negative per-router should fail")
	}
	if _, err := StripeByRank(routers(2), []catalog.ID{0}, 1); err == nil {
		t.Error("invalid id should fail")
	}
	if _, err := StripeByRank(routers(2), []catalog.ID{1, 1}, 1); err == nil {
		t.Error("duplicate id should fail")
	}
}

func TestComputePlacement(t *testing.T) {
	reports := []Report{
		{Router: 0, Counts: map[catalog.ID]int64{1: 50, 2: 30, 3: 10, 4: 5}},
		{Router: 1, Counts: map[catalog.ID]int64{1: 40, 2: 35, 3: 12, 5: 6}},
	}
	p, err := ComputePlacement(reports, routers(2), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Global counts: 1:90, 2:65, 3:22, 5:6, 4:5. Local set = {1, 2};
	// coordinated band (2 routers x 1 slot) = {3, 5}.
	if len(p.LocalSet) != 2 || p.LocalSet[0] != 1 || p.LocalSet[1] != 2 {
		t.Errorf("LocalSet = %v, want [1 2]", p.LocalSet)
	}
	if o, ok := p.Assignment.Owner(3); !ok || o != 0 {
		t.Errorf("Owner(3) = %d/%v, want 0", o, ok)
	}
	if o, ok := p.Assignment.Owner(5); !ok || o != 1 {
		t.Errorf("Owner(5) = %d/%v, want 1", o, ok)
	}
}

func TestComputePlacementDeterministicTies(t *testing.T) {
	reports := []Report{{Router: 0, Counts: map[catalog.ID]int64{7: 5, 3: 5, 9: 5}}}
	p1, err := ComputePlacement(reports, routers(2), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ComputePlacement(reports, routers(2), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.LocalSet[0] != p2.LocalSet[0] || p1.LocalSet[0] != 3 {
		t.Errorf("tie-break not deterministic ascending: %v vs %v", p1.LocalSet, p2.LocalSet)
	}
}

func TestComputePlacementErrors(t *testing.T) {
	if _, err := ComputePlacement(nil, nil, 1, 1); err == nil {
		t.Error("no routers should fail")
	}
	if _, err := ComputePlacement(nil, routers(2), -1, 1); err == nil {
		t.Error("negative slots should fail")
	}
}

func TestCentralizedCost(t *testing.T) {
	c, err := NewCentralized(routers(20), 26.7)
	if err != nil {
		t.Fatal(err)
	}
	reports := []Report{{Router: 0, Counts: map[catalog.ID]int64{1: 10, 2: 5}}}
	_, cost, err := c.RunEpoch(reports, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The measured message count is the model's W(x) structure: n*x per
	// direction.
	if cost.MessagesUp != 60 || cost.MessagesDown != 60 {
		t.Errorf("messages = %d/%d, want 60/60", cost.MessagesUp, cost.MessagesDown)
	}
	if cost.Total() != 120 {
		t.Errorf("Total = %d", cost.Total())
	}
	if math.Abs(cost.Convergence-2*26.7) > 1e-9 {
		t.Errorf("Convergence = %v, want %v", cost.Convergence, 2*26.7)
	}
}

func TestCentralizedValidation(t *testing.T) {
	if _, err := NewCentralized(nil, 1); err == nil {
		t.Error("no routers should fail")
	}
	if _, err := NewCentralized(routers(2), 0); err == nil {
		t.Error("zero unit cost should fail")
	}
}

func TestDistributedCost(t *testing.T) {
	d, err := NewDistributed(routers(16), 10)
	if err != nil {
		t.Fatal(err)
	}
	reports := []Report{{Router: 0, Counts: map[catalog.ID]int64{1: 1}}}
	_, cost, err := d.RunEpoch(reports, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Tree aggregation: (n-1)*x messages per direction, depth log2(16)=4.
	if cost.MessagesUp != 30 || cost.MessagesDown != 30 {
		t.Errorf("messages = %d/%d, want 30/30", cost.MessagesUp, cost.MessagesDown)
	}
	if math.Abs(cost.Convergence-2*4*10) > 1e-9 {
		t.Errorf("Convergence = %v, want 80", cost.Convergence)
	}
}

func TestEstimateZipfRecoversExponent(t *testing.T) {
	for _, s := range []float64{0.7, 1.0, 1.3} {
		gen, err := workload.NewZipf(s, 5000, 11)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[catalog.ID]int64)
		for i := 0; i < 400000; i++ {
			counts[gen.Next()]++
		}
		// Fit on the head of the distribution where sampling noise is
		// low.
		got, err := EstimateZipf(counts, 100)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-s) > 0.15 {
			t.Errorf("s=%v: estimated %v", s, got)
		}
	}
}

func TestEstimateZipfErrors(t *testing.T) {
	if _, err := EstimateZipf(map[catalog.ID]int64{1: 5}, 0); err == nil {
		t.Error("too few contents should fail")
	}
	flat := map[catalog.ID]int64{}
	for i := catalog.ID(1); i <= 10; i++ {
		flat[i] = 7
	}
	// A perfectly flat distribution has slope 0 -> s <= 0 error.
	if _, err := EstimateZipf(flat, 0); err == nil {
		t.Error("flat distribution should fail to produce a positive s")
	}
}

func TestAdaptiveEpoch(t *testing.T) {
	const (
		nRouters = 20
		trueS    = 0.8
	)
	base := model.Config{
		S: 0.5, // deliberately wrong initial guess
		N: 100000, C: 100, Routers: nRouters,
		Lat:      model.LatencyFromGamma(1, 2.2842, 5),
		UnitCost: 26.7, Alpha: 0.9,
	}
	a, err := NewAdaptive(routers(nRouters), base)
	if err != nil {
		t.Fatal(err)
	}
	// Build reports from a true-s workload.
	var reports []Report
	for r := 0; r < nRouters; r++ {
		gen, err := workload.NewZipf(trueS, 100000, int64(r+1))
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[catalog.ID]int64)
		for i := 0; i < 20000; i++ {
			counts[gen.Next()]++
		}
		reports = append(reports, Report{Router: topology.NodeID(r), Counts: counts})
	}
	p, cost, err := a.Epoch(reports)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.LastEstimate()-trueS) > 0.25 {
		t.Errorf("estimated s = %v, want ~%v", a.LastEstimate(), trueS)
	}
	if a.LastLevel() <= 0 || a.LastLevel() > 1 {
		t.Errorf("level = %v outside (0,1]", a.LastLevel())
	}
	wantCoord := int64(math.Round(a.LastLevel() * base.C))
	if got := int64(p.Assignment.Size()); got > wantCoord*nRouters {
		t.Errorf("assignment size %d exceeds n*x = %d", got, wantCoord*nRouters)
	}
	if cost.MessagesUp != int64(nRouters)*wantCoord {
		t.Errorf("MessagesUp = %d, want %d", cost.MessagesUp, int64(nRouters)*wantCoord)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	base := model.Config{Routers: 5, UnitCost: 1}
	if _, err := NewAdaptive(routers(3), base); err == nil {
		t.Error("router count mismatch should fail")
	}
	a, err := NewAdaptive(routers(5), model.Config{
		S: 0.8, N: 1e6, C: 100, Routers: 5,
		Lat: model.LatencyFromGamma(1, 2, 5), UnitCost: 10, Alpha: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Epoch(nil); err == nil {
		t.Error("no reports should fail")
	}
}

func TestChurn(t *testing.T) {
	prev, err := StripeByRank(routers(3), []catalog.ID{10, 11, 12, 13, 14, 15}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Same ranks, same routers: nothing moves.
	same, err := StripeByRank(routers(3), []catalog.ID{10, 11, 12, 13, 14, 15}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := Churn(prev, same); got != 0 {
		t.Fatalf("Churn(identical) = %d, want 0", got)
	}
	// Shifting the band by one rank reassigns every content to the next
	// router and introduces one new content: all six placements move.
	shifted, err := StripeByRank(routers(3), []catalog.ID{11, 12, 13, 14, 15, 16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := Churn(prev, shifted); got != 6 {
		t.Fatalf("Churn(shifted) = %d, want 6", got)
	}
	// First installation: every assigned content is new.
	if got := Churn(nil, prev); got != 6 {
		t.Fatalf("Churn(nil, prev) = %d, want 6", got)
	}
	if got := Churn(prev, nil); got != 0 {
		t.Fatalf("Churn(prev, nil) = %d, want 0", got)
	}
	// A dropped content (shrunk band) is an eviction, not churn.
	shrunk, err := StripeByRank(routers(3), []catalog.ID{10, 11, 12}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := Churn(prev, shrunk); got != 0 {
		t.Fatalf("Churn(prev, shrunk) = %d, want 0 (same owners, fewer contents)", got)
	}
}
