package coord_test

import (
	"fmt"

	"ccncoord/internal/catalog"
	"ccncoord/internal/coord"
	"ccncoord/internal/topology"
)

// ExampleStripeByRank shows the paper's coordinated placement: the rank
// band following each router's local prefix, dealt round-robin.
func ExampleStripeByRank() {
	routers := []topology.NodeID{0, 1, 2}
	band := []catalog.ID{101, 102, 103, 104, 105, 106}
	asg, err := coord.StripeByRank(routers, band, 2)
	if err != nil {
		panic(err)
	}
	for _, r := range routers {
		fmt.Printf("router %d stores %v\n", r, asg.Contents(r))
	}
	owner, _ := asg.Owner(104)
	fmt.Printf("requests for 104 redirect to router %d\n", owner)
	// Output:
	// router 0 stores [101 104]
	// router 1 stores [102 105]
	// router 2 stores [103 106]
	// requests for 104 redirect to router 0
}

// ExampleComputePlacement derives a placement from observed popularity
// reports, as the coordination protocol does each epoch.
func ExampleComputePlacement() {
	reports := []coord.Report{
		{Router: 0, Counts: map[catalog.ID]int64{7: 90, 3: 40, 9: 10}},
		{Router: 1, Counts: map[catalog.ID]int64{7: 80, 3: 50, 5: 20}},
	}
	p, err := coord.ComputePlacement(reports, []topology.NodeID{0, 1}, 1, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("replicated everywhere: %v\n", p.LocalSet)
	fmt.Printf("striped coordinated:   %d contents\n", p.Assignment.Size())
	// Output:
	// replicated everywhere: [7]
	// striped coordinated:   2 contents
}
