package coord

import (
	"reflect"
	"testing"

	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

func TestReassignMovesOnlyDeadStripe(t *testing.T) {
	routers := []topology.NodeID{0, 1, 2, 3}
	ranks := make([]catalog.ID, 40)
	for i := range ranks {
		ranks[i] = catalog.ID(i + 1)
	}
	a, err := StripeByRank(routers, ranks, 10)
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[catalog.ID]topology.NodeID)
	for _, r := range routers {
		for _, id := range a.Contents(r) {
			before[id] = r
		}
	}
	deadStripe := a.Contents(2)

	moved, err := a.Reassign(2, []topology.NodeID{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(moved, deadStripe) {
		t.Errorf("moved %v, want the dead stripe %v", moved, deadStripe)
	}
	if len(a.Contents(2)) != 0 {
		t.Errorf("dead router still owns %v", a.Contents(2))
	}
	// Minimal movement: every content not owned by the dead router
	// keeps its owner.
	movedSet := make(map[catalog.ID]bool, len(moved))
	for _, id := range moved {
		movedSet[id] = true
	}
	for id, owner := range before {
		now, ok := a.Owner(id)
		if !ok {
			t.Fatalf("content %d lost its owner", id)
		}
		if !movedSet[id] && now != owner {
			t.Errorf("surviving content %d moved %d -> %d", id, owner, now)
		}
		if movedSet[id] && now == 2 {
			t.Errorf("content %d still assigned to the dead router", id)
		}
	}
	// Balance: no survivor exceeds the ceiling quota by more than one.
	quota := (a.Size() + 2) / 3
	for _, r := range []topology.NodeID{0, 1, 3} {
		if n := len(a.Contents(r)); n > quota+1 {
			t.Errorf("survivor %d holds %d contents, quota %d", r, n, quota)
		}
	}
	if a.Size() != 40 {
		t.Errorf("assignment shrank to %d contents", a.Size())
	}
}

func TestReassignDeterministic(t *testing.T) {
	build := func() *Assignment {
		a, err := StripeByRank([]topology.NodeID{0, 1, 2}, rankIDs(30), 10)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Reassign(1, []topology.NodeID{0, 2}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := build(), build()
	for _, r := range []topology.NodeID{0, 2} {
		if !reflect.DeepEqual(a.Contents(r), b.Contents(r)) {
			t.Errorf("repair not deterministic for router %d: %v vs %v", r, a.Contents(r), b.Contents(r))
		}
	}
}

// rankIDs returns ids 1..n, a shared fixture.
func rankIDs(n int) []catalog.ID {
	ids := make([]catalog.ID, n)
	for i := range ids {
		ids[i] = catalog.ID(i + 1)
	}
	return ids
}

func TestReassignValidation(t *testing.T) {
	a, err := StripeByRank([]topology.NodeID{0, 1}, rankIDs(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Reassign(0, nil); err == nil {
		t.Error("no survivors should fail")
	}
	if _, err := a.Reassign(0, []topology.NodeID{0, 1}); err == nil {
		t.Error("dead router among survivors should fail")
	}
	// Reassigning a router with no stripe is a no-op.
	moved, err := a.Reassign(7, []topology.NodeID{0, 1})
	if err != nil || len(moved) != 0 {
		t.Errorf("empty reassignment = %v, %v; want nil, nil", moved, err)
	}
}

func TestCostOfRepair(t *testing.T) {
	c := CostOfRepair(rankIDs(5))
	if c.Moved != 5 || c.Directives != 5 || c.Transfers != 5 || c.Total() != 10 {
		t.Errorf("unexpected repair cost %+v", c)
	}
}

func TestDetectorDeclaresAfterMisses(t *testing.T) {
	routers := []topology.NodeID{0, 1, 2}
	det, err := NewDetector(routers, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	crashedAt := 120.0
	eng := &des.Engine{}
	alive := map[topology.NodeID]bool{0: true, 1: true, 2: true}
	det.Alive = func(r topology.NodeID) bool { return alive[r] }
	type detection struct {
		dead      topology.NodeID
		at        float64
		survivors []topology.NodeID
	}
	var got []detection
	det.OnDown = func(dead topology.NodeID, at float64, survivors []topology.NodeID) {
		got = append(got, detection{dead, at, survivors})
	}
	if err := eng.At(crashedAt, func() { alive[1] = false }); err != nil {
		t.Fatal(err)
	}
	if err := det.Start(eng, 1000); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	if len(got) != 1 {
		t.Fatalf("%d detections, want 1", len(got))
	}
	d := got[0]
	if d.dead != 1 {
		t.Errorf("declared router %d, want 1", d.dead)
	}
	// Crash at t=120: rounds at 150, 200, 250 miss -> declared at 250.
	if d.at != 250 {
		t.Errorf("detected at %v, want 250", d.at)
	}
	if !reflect.DeepEqual(d.survivors, []topology.NodeID{0, 2}) {
		t.Errorf("survivors %v, want [0 2]", d.survivors)
	}
	if !det.Declared(1) || det.Declared(0) {
		t.Error("declared set wrong")
	}
	// Heartbeats: rounds at 50..1000 (20 rounds). Routers 0 and 2 beat
	// every round; router 1 beats in the first two rounds only.
	if want := int64(20*2 + 2); det.Heartbeats() != want {
		t.Errorf("heartbeats = %d, want %d", det.Heartbeats(), want)
	}
}

func TestDetectorSticky(t *testing.T) {
	det, err := NewDetector([]topology.NodeID{0, 1}, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := &des.Engine{}
	alive := map[topology.NodeID]bool{0: true, 1: false}
	det.Alive = func(r topology.NodeID) bool { return alive[r] }
	count := 0
	det.OnDown = func(dead topology.NodeID, at float64, survivors []topology.NodeID) { count++ }
	// Router 1 recovers after being declared; the declaration must not
	// repeat or be withdrawn.
	if err := eng.At(35, func() { alive[1] = true }); err != nil {
		t.Fatal(err)
	}
	if err := det.Start(eng, 200); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if count != 1 {
		t.Errorf("%d declarations, want 1", count)
	}
	if !det.Declared(1) {
		t.Error("declaration should be sticky across recovery")
	}
}

func TestDetectorValidation(t *testing.T) {
	if _, err := NewDetector(nil, 10, 1); err == nil {
		t.Error("no routers should fail")
	}
	if _, err := NewDetector([]topology.NodeID{0}, 0, 1); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := NewDetector([]topology.NodeID{0}, 10, 0); err == nil {
		t.Error("zero miss threshold should fail")
	}
	det, _ := NewDetector([]topology.NodeID{0}, 10, 1)
	if err := det.Start(&des.Engine{}, 100); err == nil {
		t.Error("Start without Alive probe should fail")
	}
	det.Alive = func(topology.NodeID) bool { return true }
	if err := det.Start(nil, 100); err == nil {
		t.Error("nil engine should fail")
	}
	if err := det.Start(&des.Engine{}, 0); err == nil {
		t.Error("zero horizon should fail")
	}
}
