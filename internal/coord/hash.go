package coord

import (
	"fmt"
	"hash/fnv"

	"ccncoord/internal/catalog"
	"ccncoord/internal/topology"
)

// HashByContent assigns each coordinated content to a router by a
// deterministic FNV hash of its id — the DHT-style alternative to the
// paper's rank striping. Buckets are capacity-bounded: when a content
// hashes to a full router it probes linearly to the next one, so the
// assignment always fits n*perRouter contents. Compared with
// StripeByRank, hashing needs no global rank agreement but only balances
// the *popularity* of each router's share in expectation, which the
// assignment ablation experiment quantifies.
func HashByContent(routers []topology.NodeID, ranks []catalog.ID, perRouter int64) (*Assignment, error) {
	if len(routers) == 0 {
		return nil, fmt.Errorf("coord: no routers to hash across")
	}
	if perRouter < 0 {
		return nil, fmt.Errorf("coord: negative per-router allocation %d", perRouter)
	}
	limit := int64(len(routers)) * perRouter
	if int64(len(ranks)) > limit {
		ranks = ranks[:limit]
	}
	a := &Assignment{
		owners:    make(map[catalog.ID]topology.NodeID, len(ranks)),
		perRouter: make(map[topology.NodeID][]catalog.ID, len(routers)),
	}
	loads := make([]int64, len(routers))
	for i, id := range ranks {
		if !id.Valid() {
			return nil, fmt.Errorf("coord: invalid content id %d at position %d", id, i)
		}
		if _, dup := a.owners[id]; dup {
			return nil, fmt.Errorf("coord: duplicate content id %d", id)
		}
		slot := int(hashID(id) % uint64(len(routers)))
		for probes := 0; loads[slot] >= perRouter; probes++ {
			if probes >= len(routers) {
				return nil, fmt.Errorf("coord: no capacity left for content %d", id)
			}
			slot = (slot + 1) % len(routers)
		}
		r := routers[slot]
		a.owners[id] = r
		a.perRouter[r] = append(a.perRouter[r], id)
		loads[slot]++
	}
	return a, nil
}

// hashID hashes a content id with FNV-1a.
func hashID(id catalog.ID) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	v := uint64(id)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return h.Sum64()
}

// PopularityImbalance measures how unevenly an assignment spreads
// request load: the ratio of the most-loaded router's assigned
// popularity mass to the mean router's, where pmf gives each content's
// request probability. 1.0 is perfectly balanced.
func PopularityImbalance(a *Assignment, routers []topology.NodeID, pmf func(catalog.ID) float64) (float64, error) {
	if a == nil || len(routers) == 0 {
		return 0, fmt.Errorf("coord: nil assignment or no routers")
	}
	if pmf == nil {
		return 0, fmt.Errorf("coord: nil pmf")
	}
	var total, worst float64
	for _, r := range routers {
		var mass float64
		for _, id := range a.perRouter[r] {
			mass += pmf(id)
		}
		total += mass
		if mass > worst {
			worst = mass
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("coord: assignment carries no popularity mass")
	}
	mean := total / float64(len(routers))
	return worst / mean, nil
}
