// Failure detection and placement repair: the coordination protocol's
// answer to the single-point-of-failure the paper's striping creates.
// A heartbeat/timeout detector at the coordinator declares a router
// dead after consecutive missed heartbeats, and a repair pass
// reassigns the dead router's coordinated stripe across the survivors
// with consistent-hash-style minimal movement — only the dead stripe
// moves. Every heartbeat and repair directive is counted, extending
// the model's measurable W(x) communication cost with a repair cost
// W_repair.
package coord

import (
	"fmt"
	"sort"

	"ccncoord/internal/catalog"
	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

// Reassign moves the dead router's assigned contents onto the
// survivors and removes the dead router from the assignment. Placement
// is consistent-hash style — each moved content starts at its id-hash
// slot among the survivors and probes linearly past survivors already
// at the post-repair balance quota — so contents owned by survivors
// never move and the repaired load stays balanced. It returns the
// moved contents in the dead router's stripe order. Reassigning a
// router with no assigned contents is a no-op.
func (a *Assignment) Reassign(dead topology.NodeID, survivors []topology.NodeID) ([]catalog.ID, error) {
	if a == nil {
		return nil, fmt.Errorf("coord: nil assignment")
	}
	if len(survivors) == 0 {
		return nil, fmt.Errorf("coord: no survivors to absorb router %d's stripe", dead)
	}
	for _, s := range survivors {
		if s == dead {
			return nil, fmt.Errorf("coord: dead router %d listed as survivor", dead)
		}
	}
	moved := append([]catalog.ID(nil), a.perRouter[dead]...)
	if len(moved) == 0 {
		delete(a.perRouter, dead)
		return nil, nil
	}
	// Quota: ceiling of the post-repair mean load over the survivors,
	// so probing always terminates and no survivor absorbs more than
	// its balanced share plus one.
	total := len(a.owners)
	quota := (total + len(survivors) - 1) / len(survivors)
	for _, id := range moved {
		slot := int(hashID(id) % uint64(len(survivors)))
		probes := 0
		for len(a.perRouter[survivors[slot]]) >= quota {
			slot = (slot + 1) % len(survivors)
			probes++
			if probes > len(survivors) {
				// All survivors at quota (rounding); relax onto the
				// hash slot.
				break
			}
		}
		r := survivors[slot]
		a.owners[id] = r
		a.perRouter[r] = append(a.perRouter[r], id)
	}
	delete(a.perRouter, dead)
	return moved, nil
}

// RepairCost tallies one repair pass in protocol messages: one
// directive per moved content (coordinator -> new owner) and one
// content transfer to install the replica, the measurable W_repair
// counterpart of the model's W(x).
type RepairCost struct {
	Moved      int   // contents reassigned
	Directives int64 // placement directives sent
	Transfers  int64 // content installations at new owners
}

// Total returns all repair messages exchanged.
func (c RepairCost) Total() int64 { return c.Directives + c.Transfers }

// CostOfRepair derives the message cost of moving the given contents.
func CostOfRepair(moved []catalog.ID) RepairCost {
	return RepairCost{
		Moved:      len(moved),
		Directives: int64(len(moved)),
		Transfers:  int64(len(moved)),
	}
}

// Detector is a heartbeat/timeout failure detector running at the
// coordinator on the discrete-event engine: every Interval each alive
// router sends one heartbeat (counted); a router that misses Misses
// consecutive intervals is declared dead, once, via OnDown. Detection
// is sticky — a recovered router is not re-admitted to the
// coordinated placement (rejoin is a future protocol extension).
type Detector struct {
	// Interval is the heartbeat period (ms). Required, positive.
	Interval float64
	// Misses is how many consecutive missed heartbeats declare a
	// router dead. Required, positive.
	Misses int
	// Alive reports whether a router is currently up — the injector's
	// view. Required.
	Alive func(topology.NodeID) bool
	// OnDown fires once per declared router with the detection time
	// and the surviving (not yet declared dead) routers in id order.
	OnDown func(dead topology.NodeID, at float64, survivors []topology.NodeID)
	// OnProbe, when non-nil, observes every heartbeat probe: the
	// router, the probe time, and whether the heartbeat arrived. The
	// simulator wires this to the run tracer; detection behavior is
	// unaffected.
	OnProbe func(r topology.NodeID, at float64, alive bool)
	// Gate, when non-nil, is consulted before every heartbeat round;
	// a false return skips the round entirely (no probes, no misses).
	// It models the coordinator itself being down: a dead coordinator
	// neither collects heartbeats nor declares routers, and detection
	// resumes where it left off when the gate reopens.
	Gate func() bool
	// Drop, when non-nil, is consulted for each heartbeat a live router
	// sends; a true return loses that heartbeat in flight, so the
	// coordinator counts a miss against a healthy router. It models
	// coordination-channel message loss and delay (a heartbeat delayed
	// past the interval is indistinguishable from a lost one). Dead
	// routers never reach Drop — their heartbeats were never sent.
	Drop func(r topology.NodeID, at float64) bool

	routers    []topology.NodeID
	heartbeats int64
	missed     map[topology.NodeID]int
	declared   map[topology.NodeID]bool
}

// NewDetector returns a detector over the given routers. Configure the
// exported fields, then Start it.
func NewDetector(routers []topology.NodeID, interval float64, misses int) (*Detector, error) {
	if len(routers) == 0 {
		return nil, fmt.Errorf("coord: no routers to monitor")
	}
	if !(interval > 0) {
		return nil, fmt.Errorf("coord: heartbeat interval must be positive, got %v", interval)
	}
	if misses < 1 {
		return nil, fmt.Errorf("coord: miss threshold must be at least 1, got %d", misses)
	}
	rs := append([]topology.NodeID(nil), routers...)
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	return &Detector{
		Interval: interval,
		Misses:   misses,
		routers:  rs,
		missed:   make(map[topology.NodeID]int),
		declared: make(map[topology.NodeID]bool),
	}, nil
}

// Start schedules heartbeat rounds on the engine until the horizon.
// Alive must be set first.
func (d *Detector) Start(eng *des.Engine, horizon float64) error {
	if eng == nil {
		return fmt.Errorf("coord: nil engine")
	}
	if d.Alive == nil {
		return fmt.Errorf("coord: detector needs an Alive probe")
	}
	if !(horizon > 0) {
		return fmt.Errorf("coord: detector horizon must be positive, got %v", horizon)
	}
	var tick func()
	tick = func() {
		d.round(eng.Now())
		next := eng.Now() + d.Interval
		if next > horizon {
			return
		}
		if err := eng.Schedule(d.Interval, tick); err != nil {
			panic(fmt.Sprintf("coord: scheduling heartbeat round: %v", err))
		}
	}
	return eng.Schedule(d.Interval, tick)
}

// round runs one heartbeat exchange.
func (d *Detector) round(now float64) {
	if d.Gate != nil && !d.Gate() {
		return
	}
	for _, r := range d.routers {
		if d.declared[r] {
			continue
		}
		alive := d.Alive(r)
		if alive && d.Drop != nil && d.Drop(r, now) {
			alive = false
		}
		if d.OnProbe != nil {
			d.OnProbe(r, now, alive)
		}
		if alive {
			d.heartbeats++
			d.missed[r] = 0
			continue
		}
		d.missed[r]++
		if d.missed[r] >= d.Misses {
			d.declared[r] = true
			if d.OnDown != nil {
				d.OnDown(r, now, d.survivors())
			}
		}
	}
}

// survivors returns the monitored routers not declared dead, in id
// order.
func (d *Detector) survivors() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(d.routers))
	for _, r := range d.routers {
		if !d.declared[r] {
			out = append(out, r)
		}
	}
	return out
}

// Heartbeats returns the heartbeat messages exchanged so far.
func (d *Detector) Heartbeats() int64 { return d.heartbeats }

// Declared reports whether r has been declared dead.
func (d *Detector) Declared(r topology.NodeID) bool { return d.declared[r] }

// DetectorState is the serializable state of a Detector: everything a
// restarted coordinator needs to resume failure detection exactly
// where the checkpointed one stopped.
type DetectorState struct {
	// Heartbeats is the heartbeat-message count so far.
	Heartbeats int64
	// Missed maps routers to their current consecutive-miss count
	// (only routers with a nonzero count appear).
	Missed map[topology.NodeID]int
	// Declared lists the routers already declared dead.
	Declared []topology.NodeID
}

// State snapshots the detector for checkpointing.
func (d *Detector) State() DetectorState {
	st := DetectorState{Heartbeats: d.heartbeats}
	for _, r := range d.routers {
		if m := d.missed[r]; m > 0 {
			if st.Missed == nil {
				st.Missed = make(map[topology.NodeID]int)
			}
			st.Missed[r] = m
		}
		if d.declared[r] {
			st.Declared = append(st.Declared, r)
		}
	}
	return st
}

// RestoreState replaces the detector's progress with a checkpointed
// snapshot. Every referenced router must be monitored by this
// detector; the configuration fields (Interval, Misses, hooks) are
// untouched.
func (d *Detector) RestoreState(st DetectorState) error {
	monitored := make(map[topology.NodeID]bool, len(d.routers))
	for _, r := range d.routers {
		monitored[r] = true
	}
	for r, m := range st.Missed {
		if !monitored[r] {
			return fmt.Errorf("coord: restored state references unmonitored router %d", r)
		}
		if m < 0 {
			return fmt.Errorf("coord: negative miss count %d for router %d", m, r)
		}
	}
	for _, r := range st.Declared {
		if !monitored[r] {
			return fmt.Errorf("coord: restored state references unmonitored router %d", r)
		}
	}
	if st.Heartbeats < 0 {
		return fmt.Errorf("coord: negative heartbeat count %d", st.Heartbeats)
	}
	d.heartbeats = st.Heartbeats
	d.missed = make(map[topology.NodeID]int, len(st.Missed))
	for r, m := range st.Missed {
		d.missed[r] = m
	}
	d.declared = make(map[topology.NodeID]bool, len(st.Declared))
	for _, r := range st.Declared {
		d.declared[r] = true
	}
	return nil
}
