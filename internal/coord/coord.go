// Package coord implements the storage-coordination protocol the paper's
// cost model abstracts: routers report observed content popularity to a
// (conceptually centralized) coordinator, which computes the partitioned
// placement — every router keeps the top-ranked contents locally and the
// next n*x ranks are striped across routers — and disseminates the
// assignments. Every protocol message is counted, making the model's
// W(x) = w*n*x communication cost measurable instead of assumed. A
// tree-structured distributed variant and an online adaptive loop
// (estimating the Zipf exponent from reports and re-optimizing the
// coordination level) cover the paper's future-work directions.
package coord

import (
	"fmt"
	"math"
	"sort"

	"ccncoord/internal/catalog"
	"ccncoord/internal/topology"
)

// Assignment maps each coordinated content to the router provisioned to
// store it. It implements the data plane's directory lookup.
type Assignment struct {
	owners    map[catalog.ID]topology.NodeID
	perRouter map[topology.NodeID][]catalog.ID
}

// Owner returns the router assigned to id, if any. It implements
// ccn.Directory.
func (a *Assignment) Owner(id catalog.ID) (topology.NodeID, bool) {
	r, ok := a.owners[id]
	return r, ok
}

// Contents returns the contents assigned to the given router, in rank
// order.
func (a *Assignment) Contents(router topology.NodeID) []catalog.ID {
	return append([]catalog.ID(nil), a.perRouter[router]...)
}

// Size returns the total number of coordinated contents.
func (a *Assignment) Size() int { return len(a.owners) }

// StripeByRank builds the paper's coordinated placement: the ranked
// contents are dealt round-robin across the routers, so router k stores
// ranks[k], ranks[k+n], ranks[k+2n], ... Each router receives at most
// perRouter contents.
func StripeByRank(routers []topology.NodeID, ranks []catalog.ID, perRouter int64) (*Assignment, error) {
	if len(routers) == 0 {
		return nil, fmt.Errorf("coord: no routers to stripe across")
	}
	if perRouter < 0 {
		return nil, fmt.Errorf("coord: negative per-router allocation %d", perRouter)
	}
	limit := int64(len(routers)) * perRouter
	if int64(len(ranks)) > limit {
		ranks = ranks[:limit]
	}
	a := &Assignment{
		owners:    make(map[catalog.ID]topology.NodeID, len(ranks)),
		perRouter: make(map[topology.NodeID][]catalog.ID, len(routers)),
	}
	for i, id := range ranks {
		if !id.Valid() {
			return nil, fmt.Errorf("coord: invalid content id %d at position %d", id, i)
		}
		if _, dup := a.owners[id]; dup {
			return nil, fmt.Errorf("coord: duplicate content id %d", id)
		}
		r := routers[i%len(routers)]
		a.owners[id] = r
		a.perRouter[r] = append(a.perRouter[r], id)
	}
	return a, nil
}

// StripeWeighted deals the ranked contents round-robin across routers
// with per-router quotas, for heterogeneous networks where router i
// coordinates x_i contents. Routers whose quota is exhausted are
// skipped; at most sum(quotas) contents are assigned.
func StripeWeighted(routers []topology.NodeID, ranks []catalog.ID, quotas []int64) (*Assignment, error) {
	if len(routers) == 0 {
		return nil, fmt.Errorf("coord: no routers to stripe across")
	}
	if len(quotas) != len(routers) {
		return nil, fmt.Errorf("coord: %d quotas for %d routers", len(quotas), len(routers))
	}
	var capacity int64
	for i, q := range quotas {
		if q < 0 {
			return nil, fmt.Errorf("coord: negative quota %d for router %d", q, routers[i])
		}
		capacity += q
	}
	if int64(len(ranks)) > capacity {
		ranks = ranks[:capacity]
	}
	a := &Assignment{
		owners:    make(map[catalog.ID]topology.NodeID, len(ranks)),
		perRouter: make(map[topology.NodeID][]catalog.ID, len(routers)),
	}
	loads := make([]int64, len(routers))
	slot := 0
	for i, id := range ranks {
		if !id.Valid() {
			return nil, fmt.Errorf("coord: invalid content id %d at position %d", id, i)
		}
		if _, dup := a.owners[id]; dup {
			return nil, fmt.Errorf("coord: duplicate content id %d", id)
		}
		for loads[slot] >= quotas[slot] {
			slot = (slot + 1) % len(routers)
		}
		r := routers[slot]
		a.owners[id] = r
		a.perRouter[r] = append(a.perRouter[r], id)
		loads[slot]++
		slot = (slot + 1) % len(routers)
	}
	return a, nil
}

// Churn counts the placement movement from prev to next: the contents
// of next that prev did not assign, or assigned to a different router —
// the number of coordinated contents some router must newly fetch when
// the placement is installed. A nil prev (first installation) counts
// every assigned content. Contents prev held that next dropped are not
// counted: evictions are free, only placements move data.
func Churn(prev, next *Assignment) int64 {
	if next == nil {
		return 0
	}
	var moved int64
	for id, owner := range next.owners {
		if prev == nil {
			moved++
			continue
		}
		if prevOwner, ok := prev.owners[id]; !ok || prevOwner != owner {
			moved++
		}
	}
	return moved
}

// Report is one router's observed request counts over an epoch.
type Report struct {
	Router topology.NodeID
	Counts map[catalog.ID]int64
}

// Placement is the complete provisioning decision for one epoch.
type Placement struct {
	// LocalSet is the non-coordinated part: the top c-x contents by
	// estimated global popularity, replicated at every router.
	LocalSet []catalog.ID
	// Assignment stripes the next n*x contents across routers.
	Assignment *Assignment
}

// Cost tallies the protocol's communication in content-state messages,
// the unit of the model's W(x).
type Cost struct {
	MessagesUp   int64 // state reports: routers -> coordinator
	MessagesDown int64 // placement directives: coordinator -> routers
	// Convergence is the wall-clock (simulated ms) to complete the
	// epoch, governed by the slowest router pair as the paper argues for
	// w = max d_ij.
	Convergence float64
}

// Total returns all messages exchanged.
func (c Cost) Total() int64 { return c.MessagesUp + c.MessagesDown }

// aggregate merges reports into global counts.
func aggregate(reports []Report) map[catalog.ID]int64 {
	global := make(map[catalog.ID]int64)
	for _, rep := range reports {
		for id, c := range rep.Counts {
			global[id] += c
		}
	}
	return global
}

// rankByCount orders contents by descending observed count, breaking
// ties by ascending id so the placement is deterministic.
func rankByCount(counts map[catalog.ID]int64) []catalog.ID {
	ids := make([]catalog.ID, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if counts[ids[i]] != counts[ids[j]] {
			return counts[ids[i]] > counts[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// ComputePlacement derives the epoch placement from router reports:
// the globally most popular localSlots contents form the replicated
// local set and the next n*coordSlots form the striped coordinated band.
func ComputePlacement(reports []Report, routers []topology.NodeID, localSlots, coordSlots int64) (*Placement, error) {
	if len(routers) == 0 {
		return nil, fmt.Errorf("coord: no routers")
	}
	if localSlots < 0 || coordSlots < 0 {
		return nil, fmt.Errorf("coord: negative slot counts (%d, %d)", localSlots, coordSlots)
	}
	ranked := rankByCount(aggregate(reports))
	local := ranked
	if int64(len(local)) > localSlots {
		local = local[:localSlots]
	}
	rest := ranked[len(local):]
	asg, err := StripeByRank(routers, rest, coordSlots)
	if err != nil {
		return nil, err
	}
	return &Placement{
		LocalSet:   append([]catalog.ID(nil), local...),
		Assignment: asg,
	}, nil
}

// Centralized models the conceptually centralized coordinator of the
// paper's Figure 2. One epoch exchanges one state message per
// coordinated content per router upstream and one directive per
// coordinated content downstream, so the measured cost reproduces
// W(x) = w*n*x by construction — with w the per-message latency cost,
// estimated as the maximum pairwise latency since the exchanges run in
// parallel and the slowest pair gates convergence.
type Centralized struct {
	routers  []topology.NodeID
	unitCost float64 // w: max pairwise latency, ms
}

// NewCentralized returns a coordinator over the given routers with the
// given unit coordination cost w (ms per content-state exchange).
func NewCentralized(routers []topology.NodeID, unitCost float64) (*Centralized, error) {
	if len(routers) == 0 {
		return nil, fmt.Errorf("coord: no routers")
	}
	if !(unitCost > 0) {
		return nil, fmt.Errorf("coord: unit cost must be positive, got %v", unitCost)
	}
	return &Centralized{routers: append([]topology.NodeID(nil), routers...), unitCost: unitCost}, nil
}

// UnitCost returns w, the per-exchange unit coordination cost (ms).
func (c *Centralized) UnitCost() float64 { return c.unitCost }

// RunEpoch computes the placement for the given reports and capacity
// split, returning the placement and the measured protocol cost.
func (c *Centralized) RunEpoch(reports []Report, localSlots, coordSlots int64) (*Placement, Cost, error) {
	p, err := ComputePlacement(reports, c.routers, localSlots, coordSlots)
	if err != nil {
		return nil, Cost{}, err
	}
	n := int64(len(c.routers))
	cost := Cost{
		MessagesUp:   n * coordSlots,
		MessagesDown: n * coordSlots,
		// Collection and dissemination are parallel; each phase takes
		// one max-latency exchange.
		Convergence: 2 * c.unitCost,
	}
	return p, cost, nil
}

// Distributed models a tree-structured fully distributed coordinator:
// reports aggregate up a binary tree over the routers and directives
// flow back down, trading ceil(log2 n) sequential rounds for the absence
// of a central point. Message totals match the centralized protocol
// (every router's state must still move), but convergence scales with
// the tree depth.
type Distributed struct {
	routers  []topology.NodeID
	unitCost float64
}

// NewDistributed returns the tree-structured coordinator.
func NewDistributed(routers []topology.NodeID, unitCost float64) (*Distributed, error) {
	if len(routers) == 0 {
		return nil, fmt.Errorf("coord: no routers")
	}
	if !(unitCost > 0) {
		return nil, fmt.Errorf("coord: unit cost must be positive, got %v", unitCost)
	}
	return &Distributed{routers: append([]topology.NodeID(nil), routers...), unitCost: unitCost}, nil
}

// UnitCost returns w, the per-exchange unit coordination cost (ms).
func (d *Distributed) UnitCost() float64 { return d.unitCost }

// RunEpoch computes the placement and the tree-aggregation cost.
func (d *Distributed) RunEpoch(reports []Report, localSlots, coordSlots int64) (*Placement, Cost, error) {
	p, err := ComputePlacement(reports, d.routers, localSlots, coordSlots)
	if err != nil {
		return nil, Cost{}, err
	}
	n := int64(len(d.routers))
	depth := math.Ceil(math.Log2(float64(n)))
	if depth < 1 {
		depth = 1
	}
	cost := Cost{
		MessagesUp:   (n - 1) * coordSlots,
		MessagesDown: (n - 1) * coordSlots,
		Convergence:  2 * depth * d.unitCost,
	}
	return p, cost, nil
}

// EstimateZipf fits the Zipf exponent s to observed global request
// counts by least-squares regression of log(count) on log(rank), the
// standard estimator for heavy-tailed popularity. It needs at least
// minRanks distinct observed contents; ranks with zero count are
// skipped. This powers the online adaptive loop of the paper's future
// work: the coordinator never needs the true s, only request
// observations.
func EstimateZipf(counts map[catalog.ID]int64, maxRanks int) (float64, error) {
	const minRanks = 5
	ranked := rankByCount(counts)
	if maxRanks > 0 && len(ranked) > maxRanks {
		ranked = ranked[:maxRanks]
	}
	var xs, ys []float64
	for i, id := range ranked {
		c := counts[id]
		if c <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(float64(c)))
	}
	if len(xs) < minRanks {
		return 0, fmt.Errorf("coord: need at least %d observed contents to estimate s, have %d", minRanks, len(xs))
	}
	// Least squares slope; s is its negation.
	var sumX, sumY, sumXX, sumXY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
		sumXX += xs[i] * xs[i]
		sumXY += xs[i] * ys[i]
	}
	nf := float64(len(xs))
	den := nf*sumXX - sumX*sumX
	if den == 0 {
		return 0, fmt.Errorf("coord: degenerate rank distribution")
	}
	slope := (nf*sumXY - sumX*sumY) / den
	s := -slope
	// Reject non-positive and numerically-flat estimates: a (near-)flat
	// count distribution carries no Zipf signal.
	const minExponent = 1e-6
	if s <= minExponent {
		return 0, fmt.Errorf("coord: estimated exponent %v is not meaningfully positive", s)
	}
	return s, nil
}
