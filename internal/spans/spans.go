// Package spans reconstructs per-request span trees from a JSONL event
// trace (internal/trace) and decomposes each request's latency into
// where the time actually went: client access hops, network
// propagation, retransmission backoff, origin service, and
// PIT-aggregation wait.
//
// The reconstruction keys on the request identity every data-plane
// event carries (trace.Event.Req). A measured request's lifecycle is
// anchored by its "issue" event and closed by its "request" completion
// event; everything between them with the same ID — interest
// transmissions, aggregation joins, retries, drops, data legs — hangs
// off the span. Because sampling is request-coherent (whole lifecycles,
// never fragments), a sampled trace reconstructs exactly like a full
// one, just for fewer requests.
//
// The package is deliberately forgiving about imperfect input: a trace
// cut mid-request (crash, disk-full, ctrl-C) yields a clean Incomplete
// count, never a panic or a silently wrong decomposition; request-ID
// groups without an issue anchor (warmup lifecycles, which consume IDs
// but are not measured) are tallied as Orphans and excluded from span
// statistics. Reconstruction assumes the trace comes from a single run:
// request IDs are per-Network, so traces shared across concurrent runs
// (ccnexp -trace with -workers > 1) interleave colliding IDs and should
// be analyzed per run instead.
package spans

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ccncoord/internal/trace"
)

// Span is one reconstructed request lifecycle with its latency
// decomposition. All durations are virtual simulation milliseconds.
type Span struct {
	Req     int64   `json:"req"`
	Content int64   `json:"content"`
	Router  int     `json:"router"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
	Tier    string  `json:"tier"`
	Hops    int     `json:"hops"`
	Failed  bool    `json:"failed,omitempty"`

	// Retries counts retransmission timer firings attributed to this
	// request; Drops counts transmissions of its lifecycle that were
	// discarded (loss or fault). Aggregated marks a request that joined
	// another request's PIT entry somewhere on its path.
	Retries    int  `json:"retries,omitempty"`
	Drops      int  `json:"drops,omitempty"`
	Aggregated bool `json:"aggregated,omitempty"`

	// The latency decomposition. Access is the client access round
	// trip; Propagation is in-network link time; RetxBackoff is idle
	// time waiting for retransmission timers; OriginSvc is time inside
	// origin uplink round trips; AggWait is time parked on another
	// request's PIT entry. They sum to Total (Propagation absorbs the
	// remainder and is clamped at zero).
	AccessMs      float64 `json:"access_ms"`
	PropagationMs float64 `json:"propagation_ms"`
	RetxBackoffMs float64 `json:"retx_backoff_ms"`
	OriginSvcMs   float64 `json:"origin_svc_ms"`
	AggWaitMs     float64 `json:"agg_wait_ms"`

	// Events is the span's full event list in time order, including the
	// issue and request anchors.
	Events []trace.Event `json:"events,omitempty"`
}

// TotalMs returns the client-observed request latency.
func (s *Span) TotalMs() float64 { return s.End - s.Start }

// Set is the result of reconstructing one trace.
type Set struct {
	// Spans holds the complete spans (issue and completion both seen),
	// ordered by request ID.
	Spans []Span
	// Incomplete counts request IDs whose lifecycle was anchored by an
	// issue event but never completed — the signature of a truncated
	// trace.
	Incomplete int
	// Orphans counts request IDs with events but no issue anchor:
	// warmup lifecycles, or lifecycles whose head was cut off.
	Orphans int
	// Control counts control-plane events (no request identity) by
	// kind.
	Control map[string]int
	// Kinds counts every decoded event by kind.
	Kinds map[string]int
	// Truncated reports that the trace ended mid-line or mid-stream;
	// the spans up to the cut are still reconstructed.
	Truncated bool
}

// TierCounts returns the number of complete spans per serving tier.
func (s *Set) TierCounts() map[string]int64 {
	out := make(map[string]int64)
	for i := range s.Spans {
		out[s.Spans[i].Tier]++
	}
	return out
}

// Collector accumulates streamed events into request groups. Add events
// in file order, then Finish once.
type Collector struct {
	groups  map[int64][]trace.Event
	control map[string]int
	kinds   map[string]int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		groups:  make(map[int64][]trace.Event),
		control: make(map[string]int),
		kinds:   make(map[string]int),
	}
}

// Add feeds one decoded event.
func (c *Collector) Add(ev trace.Event) {
	c.kinds[ev.Kind]++
	if ev.Req <= 0 {
		c.control[ev.Kind]++
		return
	}
	c.groups[ev.Req] = append(c.groups[ev.Req], ev)
}

// Finish reconstructs every request group and returns the set. The
// collector must not be reused afterwards.
func (c *Collector) Finish() *Set {
	set := &Set{Control: c.control, Kinds: c.kinds}
	reqs := make([]int64, 0, len(c.groups))
	for req := range c.groups {
		reqs = append(reqs, req)
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i] < reqs[j] })
	for _, req := range reqs {
		evs := c.groups[req]
		// Events of one lifecycle are time-ordered already in a
		// single-run trace; the stable sort is cheap insurance against
		// interleaved writers.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
		sp, state := build(req, evs)
		switch state {
		case spanComplete:
			set.Spans = append(set.Spans, sp)
		case spanIncomplete:
			set.Incomplete++
		case spanOrphan:
			set.Orphans++
		}
	}
	return set
}

type spanState int

const (
	spanComplete spanState = iota
	spanIncomplete
	spanOrphan
)

// build assembles one request group into a span and classifies it.
func build(req int64, evs []trace.Event) (Span, spanState) {
	var issue, done *trace.Event
	for i := range evs {
		switch evs[i].Kind {
		case trace.KindIssue:
			if issue == nil {
				issue = &evs[i]
			}
		case trace.KindRequest:
			if done == nil {
				done = &evs[i]
			}
		}
	}
	if issue == nil {
		return Span{}, spanOrphan
	}
	if done == nil {
		return Span{}, spanIncomplete
	}
	sp := Span{
		Req:     req,
		Content: issue.Content,
		Router:  issue.Router,
		Start:   issue.T,
		End:     done.T,
		Tier:    done.Tier,
		Hops:    done.Hops,
		Failed:  done.Detail == "failed",
		Events:  evs,
	}
	decompose(&sp, issue, done)
	return sp, spanComplete
}

// decompose splits the span's total latency into its components. The
// access round trip is inferred from the gap between issue time and the
// first in-network event (the interest reaches the first-hop router one
// access latency after issue, and the data pays the same hop back);
// origin service sums uplink round trips (interest to origin paired
// with the data it returned); retransmission backoff sums the idle gaps
// between a router's last send and its retry timer firing;
// aggregation wait is the time parked on another request's PIT entry
// until data (or the end of the network phase) arrived; propagation
// absorbs the remaining in-network time.
func decompose(sp *Span, issue, done *trace.Event) {
	total := sp.End - sp.Start
	var net []trace.Event
	for _, ev := range sp.Events {
		if ev.Kind == trace.KindIssue || ev.Kind == trace.KindRequest {
			continue
		}
		net = append(net, ev)
		switch ev.Kind {
		case trace.KindRetry:
			sp.Retries++
		case trace.KindDrop:
			sp.Drops++
		case trace.KindAggregate:
			if ev.N != sp.Req {
				sp.Aggregated = true
			}
		}
	}
	if len(net) == 0 {
		// Local hit (or first-hop failure): the whole latency is the
		// client access round trip.
		sp.AccessMs = total
		return
	}
	firstNet := net[0].T
	oneWay := firstNet - sp.Start
	sp.AccessMs = 2 * oneWay
	netEnd := sp.End - oneWay // when data left the first-hop router
	netTime := netEnd - firstNet

	lastSend := make(map[int]float64)
	lastUplink := -1.0
	var aggT = -1.0
	var firstData = -1.0
	for _, ev := range net {
		switch ev.Kind {
		case trace.KindInterest:
			lastSend[ev.Router] = ev.T
			if ev.Peer == -1 {
				lastUplink = ev.T
			}
		case trace.KindData:
			if firstData < 0 {
				firstData = ev.T
			}
			if ev.Router == -1 && lastUplink >= 0 {
				sp.OriginSvcMs += ev.T - lastUplink
				lastUplink = -1
			}
		case trace.KindRetry:
			if t0, ok := lastSend[ev.Router]; ok && ev.T > t0 {
				sp.RetxBackoffMs += ev.T - t0
			}
		case trace.KindAggregate:
			if ev.N != sp.Req && aggT < 0 {
				aggT = ev.T
			}
		}
	}
	if aggT >= 0 {
		until := netEnd
		if firstData >= aggT {
			until = firstData
		}
		if until > aggT {
			sp.AggWaitMs = until - aggT
		}
	}
	sp.PropagationMs = netTime - sp.OriginSvcMs - sp.RetxBackoffMs - sp.AggWaitMs
	if sp.PropagationMs < 0 {
		sp.PropagationMs = 0
	}
}

// Decode streams JSONL events from r into fn. It tolerates truncation:
// a partial trailing line or a stream cut mid-gzip yields truncated ==
// true rather than an error. A malformed line that is not the last one
// is a real error, as is any error returned by fn (which aborts the
// stream).
func Decode(r io.Reader, fn func(trace.Event) error) (truncated bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var pendingErr error // malformed line, fatal unless it was the last
	for sc.Scan() {
		if pendingErr != nil {
			return false, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev trace.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			pendingErr = fmt.Errorf("spans: malformed trace line: %w", err)
			continue
		}
		if err := fn(ev); err != nil {
			return false, err
		}
	}
	if err := sc.Err(); err != nil {
		if err == io.ErrUnexpectedEOF || strings.Contains(err.Error(), "unexpected EOF") {
			return true, nil
		}
		return false, fmt.Errorf("spans: reading trace: %w", err)
	}
	if pendingErr != nil {
		// The malformed line was the file's last: a truncated write.
		return true, nil
	}
	return false, nil
}

// Open opens a trace file for reading, transparently decompressing
// gzip. Detection is by content (the gzip magic bytes), not file name,
// so renamed files still open correctly.
func Open(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spans: %w", err)
	}
	br := bufio.NewReader(f)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("spans: opening gzip trace: %w", err)
		}
		return &gzipFile{gz: gz, f: f}, nil
	}
	return &plainFile{Reader: br, f: f}, nil
}

type gzipFile struct {
	gz *gzip.Reader
	f  *os.File
}

func (g *gzipFile) Read(p []byte) (int, error) {
	n, err := g.gz.Read(p)
	// A stream cut mid-gzip surfaces as io.ErrUnexpectedEOF; map gzip's
	// internal flate errors onto it too so Decode classifies the cut as
	// truncation.
	if err != nil && err != io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (g *gzipFile) Close() error {
	gzErr := g.gz.Close()
	if err := g.f.Close(); err != nil {
		return err
	}
	return gzErr
}

type plainFile struct {
	*bufio.Reader
	f *os.File
}

func (p *plainFile) Close() error { return p.f.Close() }

// Read reconstructs the spans of one trace stream.
func Read(r io.Reader) (*Set, error) {
	c := NewCollector()
	truncated, err := Decode(r, func(ev trace.Event) error {
		c.Add(ev)
		return nil
	})
	if err != nil {
		return nil, err
	}
	set := c.Finish()
	set.Truncated = truncated
	return set, nil
}

// Load reconstructs the spans of a trace file (plain or gzip JSONL).
func Load(path string) (*Set, error) {
	f, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
