package spans

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"ccncoord/internal/trace"
)

// encode renders events as the tracer would: one JSON object per line.
func encode(t *testing.T, evs []trace.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// originLifecycle is a full origin-fetch span: access hop, one network
// interest, an origin uplink round trip, and the data path back.
func originLifecycle() []trace.Event {
	return []trace.Event{
		{T: 0, Kind: trace.KindIssue, Router: 0, Content: 5, Req: 1},
		{T: 1, Kind: trace.KindInterest, Router: 0, Peer: 1, Content: 5, Req: 1},
		{T: 3, Kind: trace.KindInterest, Router: 1, Peer: -1, Content: 5, Req: 1},
		{T: 13, Kind: trace.KindData, Router: -1, Peer: 1, Content: 5, Hops: 1, Req: 1},
		{T: 15, Kind: trace.KindData, Router: 1, Peer: 0, Content: 5, Hops: 1, Req: 1},
		{T: 17, Kind: trace.KindRequest, Router: 0, Content: 5, Hops: 2, Tier: "origin", Req: 1},
	}
}

func TestDecomposeOriginFetch(t *testing.T) {
	set, err := Read(bytes.NewReader(encode(t, originLifecycle())))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Spans) != 1 || set.Incomplete != 0 || set.Orphans != 0 || set.Truncated {
		t.Fatalf("set = %+v, want exactly one complete span", set)
	}
	sp := set.Spans[0]
	if sp.Req != 1 || sp.Content != 5 || sp.Tier != "origin" || sp.Hops != 2 {
		t.Errorf("span header %+v", sp)
	}
	if !approx(sp.TotalMs(), 17) {
		t.Errorf("total = %v, want 17", sp.TotalMs())
	}
	if !approx(sp.AccessMs, 2) || !approx(sp.OriginSvcMs, 10) || !approx(sp.PropagationMs, 5) ||
		sp.RetxBackoffMs != 0 || sp.AggWaitMs != 0 {
		t.Errorf("decomposition access=%v origin=%v prop=%v retx=%v agg=%v, want 2/10/5/0/0",
			sp.AccessMs, sp.OriginSvcMs, sp.PropagationMs, sp.RetxBackoffMs, sp.AggWaitMs)
	}
	sum := sp.AccessMs + sp.PropagationMs + sp.RetxBackoffMs + sp.OriginSvcMs + sp.AggWaitMs
	if !approx(sum, sp.TotalMs()) {
		t.Errorf("components sum to %v, total is %v", sum, sp.TotalMs())
	}
}

func TestDecomposeRetxBackoff(t *testing.T) {
	evs := []trace.Event{
		{T: 0, Kind: trace.KindIssue, Router: 0, Content: 9, Req: 4},
		{T: 1, Kind: trace.KindInterest, Router: 0, Peer: 1, Content: 9, Req: 4},
		{T: 1, Kind: trace.KindDrop, Router: 0, Peer: 1, Content: 9, Detail: "loss-interest", Req: 4},
		{T: 151, Kind: trace.KindRetry, Router: 0, Content: 9, N: 2, Req: 4},
		{T: 151, Kind: trace.KindInterest, Router: 0, Peer: 1, Content: 9, Req: 4, Cause: "retx"},
		{T: 153, Kind: trace.KindData, Router: 1, Peer: 0, Content: 9, Hops: 1, Req: 4},
		{T: 155, Kind: trace.KindRequest, Router: 0, Content: 9, Hops: 1, Tier: "peer", Req: 4},
	}
	set, err := Read(bytes.NewReader(encode(t, evs)))
	if err != nil {
		t.Fatal(err)
	}
	sp := set.Spans[0]
	if sp.Retries != 1 || sp.Drops != 1 {
		t.Errorf("retries/drops = %d/%d, want 1/1", sp.Retries, sp.Drops)
	}
	if !approx(sp.RetxBackoffMs, 150) {
		t.Errorf("retx backoff = %v, want 150", sp.RetxBackoffMs)
	}
	if !approx(sp.AccessMs, 2) || !approx(sp.PropagationMs, 3) {
		t.Errorf("access/propagation = %v/%v, want 2/3", sp.AccessMs, sp.PropagationMs)
	}
}

func TestDecomposeAggregationWait(t *testing.T) {
	evs := []trace.Event{
		{T: 0, Kind: trace.KindIssue, Router: 0, Content: 2, Req: 7},
		{T: 1, Kind: trace.KindAggregate, Router: 0, Content: 2, Req: 7, N: 3},
		{T: 10, Kind: trace.KindRequest, Router: 0, Content: 2, Hops: 2, Tier: "peer", Req: 7},
	}
	set, err := Read(bytes.NewReader(encode(t, evs)))
	if err != nil {
		t.Fatal(err)
	}
	sp := set.Spans[0]
	if !sp.Aggregated {
		t.Error("span not marked aggregated")
	}
	if !approx(sp.AggWaitMs, 8) || !approx(sp.AccessMs, 2) || sp.PropagationMs != 0 {
		t.Errorf("agg wait/access/prop = %v/%v/%v, want 8/2/0", sp.AggWaitMs, sp.AccessMs, sp.PropagationMs)
	}
	// A retransmitted interest rejoining its own entry (N == Req) is
	// not an aggregation.
	evs[1].N = 7
	set, err = Read(bytes.NewReader(encode(t, evs)))
	if err != nil {
		t.Fatal(err)
	}
	if set.Spans[0].Aggregated || set.Spans[0].AggWaitMs != 0 {
		t.Error("self-rejoin counted as aggregation")
	}
}

func TestLocalHitIsAllAccess(t *testing.T) {
	evs := []trace.Event{
		{T: 5, Kind: trace.KindIssue, Router: 2, Content: 1, Req: 9},
		{T: 7, Kind: trace.KindRequest, Router: 2, Content: 1, Tier: "local", Req: 9},
	}
	set, err := Read(bytes.NewReader(encode(t, evs)))
	if err != nil {
		t.Fatal(err)
	}
	sp := set.Spans[0]
	if !approx(sp.AccessMs, 2) || sp.PropagationMs != 0 || sp.TotalMs() != 2 {
		t.Errorf("local hit decomposition %+v", sp)
	}
}

func TestOrphansAndControl(t *testing.T) {
	evs := []trace.Event{
		// Warmup lifecycle: events but no issue anchor.
		{T: 1, Kind: trace.KindInterest, Router: 0, Peer: 1, Content: 3, Req: 11},
		{T: 3, Kind: trace.KindData, Router: 1, Peer: 0, Content: 3, Hops: 1, Req: 11},
		// Control-plane events carry no request identity.
		{T: 2, Kind: trace.KindFault, Router: 1, Detail: "router-down"},
		{T: 4, Kind: trace.KindHeartbeat, Router: 1, N: 0},
	}
	set, err := Read(bytes.NewReader(encode(t, evs)))
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Spans) != 0 || set.Orphans != 1 {
		t.Errorf("spans/orphans = %d/%d, want 0/1", len(set.Spans), set.Orphans)
	}
	if set.Control[trace.KindFault] != 1 || set.Control[trace.KindHeartbeat] != 1 {
		t.Errorf("control counts %v", set.Control)
	}
}

// TestTruncatedTrace cuts a trace at every possible byte boundary: each
// prefix must reconstruct without error, and once the completion line is
// gone the span must surface as Incomplete, never as a wrong span.
func TestTruncatedTrace(t *testing.T) {
	full := encode(t, originLifecycle())
	for cut := 0; cut <= len(full); cut++ {
		set, err := Read(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut at %d bytes: %v", cut, err)
		}
		switch {
		// Losing only the trailing newline keeps the completion line
		// intact, so those two cuts still reconstruct fully.
		case cut >= len(full)-1:
			if len(set.Spans) != 1 || set.Incomplete != 0 {
				t.Fatalf("cut at %d bytes gave %d spans, %d incomplete", cut, len(set.Spans), set.Incomplete)
			}
		case len(set.Spans) != 0:
			t.Fatalf("cut at %d bytes still produced a complete span", cut)
		}
		// Any cut that decoded the issue line but lost the completion
		// must count one incomplete lifecycle.
		if cut < len(full)-1 && set.Incomplete+set.Orphans == 0 && set.Kinds[trace.KindIssue] > 0 {
			t.Fatalf("cut at %d bytes lost the lifecycle silently", cut)
		}
	}
	// A cut mid-line is flagged as truncation.
	set, err := Read(bytes.NewReader(full[:len(full)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if !set.Truncated {
		t.Error("mid-line cut not flagged as truncated")
	}
}

func TestMalformedMidFileIsError(t *testing.T) {
	data := []byte("{\"t\":1,\"kind\":\"issue\",\"router\":0,\"req\":1}\nnot json at all\n{\"t\":2,\"kind\":\"request\",\"router\":0,\"req\":1}\n")
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("mid-file garbage should be an error, not silent truncation")
	}
}

func TestOpenGzipAndTruncatedGzip(t *testing.T) {
	dir := t.TempDir()
	raw := encode(t, originLifecycle())
	var gzBuf bytes.Buffer
	gz := gzip.NewWriter(&gzBuf)
	gz.Write(raw)
	gz.Close()

	full := filepath.Join(dir, "trace.jsonl.gz")
	if err := os.WriteFile(full, gzBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	set, err := Load(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Spans) != 1 || set.Truncated {
		t.Errorf("gzip trace: %d spans, truncated=%v", len(set.Spans), set.Truncated)
	}

	// Cut the gzip stream: reconstruction survives and flags truncation.
	cut := filepath.Join(dir, "cut.jsonl.gz")
	if err := os.WriteFile(cut, gzBuf.Bytes()[:gzBuf.Len()-20], 0o644); err != nil {
		t.Fatal(err)
	}
	set, err = Load(cut)
	if err != nil {
		t.Fatalf("truncated gzip must not error: %v", err)
	}
	if !set.Truncated {
		t.Error("truncated gzip not flagged")
	}

	// Content detection: a plain-text trace with a .gz name still opens.
	plain := filepath.Join(dir, "plain.jsonl.gz")
	if err := os.WriteFile(plain, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if set, err = Load(plain); err != nil || len(set.Spans) != 1 {
		t.Errorf("plain file with .gz name: set=%+v err=%v", set, err)
	}
}

func TestBuckets(t *testing.T) {
	set := &Set{Spans: []Span{
		{Content: 1, Tier: "local", Hops: 0, Start: 0, End: 2},
		{Content: 2, Tier: "local", Hops: 0, Start: 0, End: 2},
		{Content: 15, Tier: "peer", Hops: 2, Start: 0, End: 8},
		{Content: 90, Tier: "origin", Hops: 3, Start: 0, End: 100},
		{Content: 500, Tier: "origin", Hops: 1, Start: 0, End: 100},
	}}
	buckets := Buckets(set, []int64{10, 100})
	if len(buckets) != 3 { // two edges + overflow for rank 500
		t.Fatalf("%d buckets, want 3", len(buckets))
	}
	b0 := buckets[0]
	if b0.Requests != 2 || b0.Local != 2 || !approx(b0.LocalRatio(), 1) || !approx(b0.MeanLatencyMs(), 2) {
		t.Errorf("bucket[1,10] = %+v", b0)
	}
	b1 := buckets[1]
	if b1.Requests != 2 || b1.Peer != 1 || b1.Origin != 1 || !approx(b1.MeanHops(), 2.5) {
		t.Errorf("bucket[11,100] = %+v", b1)
	}
	if buckets[2].Requests != 1 || buckets[2].Origin != 1 {
		t.Errorf("overflow bucket = %+v", buckets[2])
	}
	if got := set.TierCounts(); got["local"] != 2 || got["peer"] != 1 || got["origin"] != 2 {
		t.Errorf("tier counts %v", got)
	}
}
