package spans

import (
	"bytes"
	"strings"
	"testing"

	"ccncoord/internal/trace"
)

// FuzzTraceDecode feeds the streaming trace decoder arbitrary bytes.
// Decode and the span collector behind it must never panic, and the
// truncated flag must never accompany an error (they are mutually
// exclusive outcomes by contract).
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"t":1,"kind":"req-issue","req":1,"node":0,"content":7}` + "\n"))
	f.Add([]byte(`{"t":1,"kind":"req-issue","req":1}` + "\n" +
		`{"t":3,"kind":"req-done","req":1,"detail":"local","n":2}` + "\n"))
	f.Add([]byte(`{"t":1,"kind":"re`)) // truncated tail
	f.Add([]byte("not json\n{\"t\":2,\"kind\":\"hit\"}\n"))
	f.Add([]byte(`{"foo": 1}` + "\n"))
	f.Add(bytes.Repeat([]byte(`{"t":9,"kind":"mode","detail":"degraded-enter"}`+"\n"), 50))

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCollector()
		truncated, err := Decode(bytes.NewReader(data), func(ev trace.Event) error {
			c.Add(ev)
			return nil
		})
		if truncated && err != nil {
			t.Fatalf("Decode returned both truncated and error %v", err)
		}
		if err != nil {
			if !strings.Contains(err.Error(), "spans:") {
				t.Fatalf("error %q lost the package prefix", err)
			}
			return
		}
		// Whatever was accepted must survive span assembly without
		// panicking; adversarial inputs may yield odd spans, but every
		// aggregate over them must still be computable.
		set := c.Finish()
		if set == nil {
			t.Fatal("Finish returned nil on decodable input")
		}
		_ = set.TierCounts()
		_ = Buckets(set, []int64{10, 100})
	})
}
