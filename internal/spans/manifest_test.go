package spans_test

import (
	"bytes"
	"testing"

	"ccncoord/internal/fault"
	"ccncoord/internal/sim"
	"ccncoord/internal/spans"
	"ccncoord/internal/topology"
	"ccncoord/internal/trace"
)

// mesh4 builds a 4-router full mesh, connected through any single
// crash.
func mesh4(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.New("mesh4")
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, 0)
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			g.MustAddEdge(topology.NodeID(a), topology.NodeID(b), 5)
		}
	}
	return g
}

// TestSpansMatchManifest is the exhaustiveness guarantee for span
// reconstruction, the spans-layer analogue of TestManifestTotalsMatchRun:
// at stride 1 the reconstructed span count equals the run's measured
// requests, the per-tier span totals equal the manifest's served_by
// counter exactly, warmup lifecycles surface as orphans and nothing is
// incomplete. The scenario exercises retries, fault drops, aggregation
// and a crashed router so every event kind flows through reconstruction.
func TestSpansMatchManifest(t *testing.T) {
	var buf bytes.Buffer
	tr, err := trace.New(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.Scenario{
		Topology:    mesh4(t),
		CatalogSize: 100,
		ZipfS:       0.8,
		Capacity:    10,
		Coordinated: 5,
		Policy:      sim.PolicyCoordinated,
		Requests:    2000,
		Warmup:      200,
		Seed:        42,

		AccessLatency: 1,
		OriginLatency: 50,
		OriginGateway: 0,
		RetxTimeout:   150,

		HeartbeatInterval: 50,
		HeartbeatMisses:   2,
		FaultScript:       []fault.Event{{At: 300, Kind: fault.RouterDown, Node: 1}},

		Tracer:       tr,
		EmitManifest: true,
	}
	res, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	set, err := spans.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if set.Truncated {
		t.Error("complete trace flagged as truncated")
	}
	if set.Incomplete != 0 {
		t.Errorf("%d incomplete spans in a complete stride-1 trace", set.Incomplete)
	}
	if len(set.Spans) != res.Requests {
		t.Errorf("%d spans reconstructed, want %d measured requests", len(set.Spans), res.Requests)
	}

	// Per-tier totals match the manifest's served_by counter value for
	// value, including the failed tier.
	served := res.Manifest.Metrics.Counters["served_by"]
	tiers := set.TierCounts()
	for tier, want := range served.Counts {
		if got := tiers[tier]; got != want {
			t.Errorf("tier %q: %d spans, manifest counts %d", tier, got, want)
		}
	}
	var total int64
	for _, n := range tiers {
		total += n
	}
	if total != served.Total {
		t.Errorf("span tier totals sum to %d, served_by total is %d", total, served.Total)
	}

	// Warmup lifecycles consume request IDs but have no issue anchor:
	// they must all surface as orphans, not as spans.
	if set.Orphans == 0 {
		t.Error("warmup lifecycles produced no orphan groups")
	}
	if set.Orphans > sc.Warmup {
		t.Errorf("%d orphans exceed the %d warmup requests", set.Orphans, sc.Warmup)
	}

	// Every span's decomposition sums to its total latency.
	for i := range set.Spans {
		sp := &set.Spans[i]
		sum := sp.AccessMs + sp.PropagationMs + sp.RetxBackoffMs + sp.OriginSvcMs + sp.AggWaitMs
		if diff := sum - sp.TotalMs(); diff > 1e-6 || diff < -1e-6 {
			if sp.PropagationMs != 0 {
				t.Fatalf("span %d decomposition sums to %v, total %v: %+v", sp.Req, sum, sp.TotalMs(), sp)
			}
			// PropagationMs clamped at zero: only legal when the raw
			// remainder was negative, i.e. sum < total never happens.
			if sum < sp.TotalMs()-1e-6 {
				t.Fatalf("span %d under-decomposed: sum %v < total %v", sp.Req, sum, sp.TotalMs())
			}
		}
	}

	// The run's fault produced control-plane events, all kept.
	if set.Control[trace.KindFault] == 0 || set.Control[trace.KindHeartbeat] == 0 {
		t.Errorf("control events missing: %v", set.Control)
	}
}
