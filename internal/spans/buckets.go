// Rank-bucket aggregation: the paper's model makes per-rank predictions
// (rank-k content is a local hit iff k fits the local slice, a domain
// hit iff it fits the coordinated store, else an origin fetch), so the
// measured spans are aggregated over popularity-rank buckets for
// comparison. Content IDs are popularity ranks (rank 1 = most popular,
// see internal/catalog), so bucketing keys directly on Span.Content.
package spans

import "sort"

// Bucket aggregates the complete spans whose content rank lies in
// [Lo, Hi].
type Bucket struct {
	Lo, Hi int64

	Requests int64
	Local    int64
	Peer     int64
	Origin   int64
	Failed   int64

	hopsSum    float64
	latencySum float64
}

// MeanHops returns the bucket's mean network hop count (0 when empty).
func (b Bucket) MeanHops() float64 {
	if b.Requests == 0 {
		return 0
	}
	return b.hopsSum / float64(b.Requests)
}

// MeanLatencyMs returns the bucket's mean request latency (0 when
// empty).
func (b Bucket) MeanLatencyMs() float64 {
	if b.Requests == 0 {
		return 0
	}
	return b.latencySum / float64(b.Requests)
}

// ratio divides hits by requests, 0 when empty.
func (b Bucket) ratio(hits int64) float64 {
	if b.Requests == 0 {
		return 0
	}
	return float64(hits) / float64(b.Requests)
}

// LocalRatio returns the bucket's measured local hit probability.
func (b Bucket) LocalRatio() float64 { return b.ratio(b.Local) }

// PeerRatio returns the bucket's measured peer (domain) hit probability.
func (b Bucket) PeerRatio() float64 { return b.ratio(b.Peer) }

// OriginRatio returns the bucket's measured origin fetch probability.
func (b Bucket) OriginRatio() float64 { return b.ratio(b.Origin) }

// Buckets aggregates the set's complete spans over rank buckets whose
// inclusive upper edges are given in ascending order: edges [10, 100]
// yield buckets [1,10] and [11,100]. Ranks beyond the last edge are
// collected into a final overflow bucket only if any exist.
func Buckets(set *Set, edges []int64) []Bucket {
	if len(edges) == 0 {
		return nil
	}
	sorted := append([]int64(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buckets := make([]Bucket, len(sorted))
	lo := int64(1)
	for i, hi := range sorted {
		buckets[i] = Bucket{Lo: lo, Hi: hi}
		lo = hi + 1
	}
	var overflow *Bucket
	for i := range set.Spans {
		sp := &set.Spans[i]
		idx := sort.Search(len(sorted), func(j int) bool { return sorted[j] >= sp.Content })
		var b *Bucket
		if idx < len(sorted) {
			b = &buckets[idx]
		} else {
			if overflow == nil {
				overflow = &Bucket{Lo: sorted[len(sorted)-1] + 1, Hi: -1}
			}
			b = overflow
		}
		b.Requests++
		b.hopsSum += float64(sp.Hops)
		b.latencySum += sp.TotalMs()
		switch sp.Tier {
		case "local":
			b.Local++
		case "peer":
			b.Peer++
		case "origin":
			b.Origin++
		default:
			b.Failed++
		}
	}
	if overflow != nil {
		buckets = append(buckets, *overflow)
	}
	return buckets
}
