package fault

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ccncoord/internal/topology"
)

// chaosGraph builds a 5-router ring with one chord (0-2): 7 nodes
// would be overkill; the ring gives partitions real cut edges.
func chaosGraph() *topology.Graph {
	g := topology.New("ring5")
	for i := 0; i < 5; i++ {
		g.AddNode("", 0, 0)
	}
	for i := 0; i < 5; i++ {
		g.MustAddEdge(topology.NodeID(i), topology.NodeID((i+1)%5), 5)
	}
	g.MustAddEdge(0, 2, 5)
	return g
}

func TestChaosValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		c    ChaosScenario
		want string
	}{
		{"empty", ChaosScenario{Name: "x"}, "no failure sections"},
		{"negative start", ChaosScenario{Coordinator: []CoordOutage{{Down: -1, Up: 5}}}, "negative start"},
		{"end before start", ChaosScenario{Coordinator: []CoordOutage{{Down: 10, Up: 5}}}, "not after start"},
		{"overlapping outages", ChaosScenario{Coordinator: []CoordOutage{{Down: 0, Up: 100}, {Down: 50, Up: 200}}}, "overlap"},
		{"open then second outage", ChaosScenario{Coordinator: []CoordOutage{{Down: 0}, {Down: 500, Up: 600}}}, "overlap"},
		{"loss without end", ChaosScenario{Loss: []CoordLossWindow{{From: 0, Rate: 0.5}}}, "needs an end"},
		{"loss rate over 1", ChaosScenario{Loss: []CoordLossWindow{{From: 0, To: 10, Rate: 1.5}}}, "outside [0, 1]"},
		{"loss impairs nothing", ChaosScenario{Loss: []CoordLossWindow{{From: 0, To: 10}}}, "impairs nothing"},
		{"negative delay", ChaosScenario{Loss: []CoordLossWindow{{From: 0, To: 10, DelayMs: -5}}}, "negative delay"},
		{"empty partition", ChaosScenario{Partitions: []Partition{{At: 0}}}, "isolates no routers"},
		{"duplicate partition router", ChaosScenario{Partitions: []Partition{{At: 0, Routers: []int{1, 1}}}}, "twice"},
		{"negative partition router", ChaosScenario{Partitions: []Partition{{At: 0, Routers: []int{-1}}}}, "negative router"},
		{"negative router id", ChaosScenario{Routers: []RouterOutage{{At: 0, Router: -2}}}, "negative router"},
		{"self-link", ChaosScenario{Links: []LinkOutage{{At: 0, A: 3, B: 3}}}, "bad endpoints"},
		{"zero-count burst", ChaosScenario{Correlated: []CorrelatedLinks{{At: 0, Count: 0}}}, "fails 0 links"},
		{"flash crowd rank 1", ChaosScenario{FlashCrowd: &FlashCrowdSpec{Rank: 1}}, "at least 2"},
		{"flash crowd negative after", ChaosScenario{FlashCrowd: &FlashCrowdSpec{AfterRequests: -1, Rank: 5}}, "negative request threshold"},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if err == nil {
			t.Errorf("%s: Validate passed, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseChaosStrict(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "empty"},
		{"truncated", `{"name": "x", "coordinator": [{"down": 1`, "truncated"},
		{"unknown field", `{"name": "x", "coordinator": [{"down": 10, "up": 20}], "bogus": 1}`, "bogus"},
		{"trailing data", `{"name": "x", "coordinator": [{"down": 10, "up": 20}]} {"more": 1}`, "trailing data"},
		{"invalid scenario", `{"name": "x"}`, "no failure sections"},
	}
	for _, tc := range cases {
		_, err := ParseChaos(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: ParseChaos passed, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestChaosJSONRoundTrip(t *testing.T) {
	orig, err := ChaosPreset("cascade")
	if err != nil {
		t.Fatal(err)
	}
	orig.FlashCrowd = &FlashCrowdSpec{AfterRequests: 100, Rank: 50}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseChaos(&buf)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("round trip mismatch:\nwrote %+v\nread  %+v", orig, got)
	}
}

func TestCompilePartitionCutsBoundaryLinks(t *testing.T) {
	g := chaosGraph()
	c := &ChaosScenario{
		Name:       "part",
		Partitions: []Partition{{At: 100, Heal: 400, Routers: []int{1, 2}}},
	}
	cc, err := c.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	// Boundary links of {1,2} in ring5+chord(0-2): 0-1, 2-3, 0-2.
	// Interior link 1-2 must stay up.
	wantCut := map[[2]topology.NodeID]bool{{0, 1}: true, {2, 3}: true, {0, 2}: true}
	downs, ups := 0, 0
	for _, ev := range cc.Events {
		key := [2]topology.NodeID{ev.A, ev.B}
		switch ev.Kind {
		case LinkDown:
			downs++
			if !wantCut[key] {
				t.Errorf("unexpected link cut %d-%d", ev.A, ev.B)
			}
			if ev.At != 100 {
				t.Errorf("cut of %d-%d at %v, want 100", ev.A, ev.B, ev.At)
			}
		case LinkUp:
			ups++
			if ev.At != 400 {
				t.Errorf("heal of %d-%d at %v, want 400", ev.A, ev.B, ev.At)
			}
		default:
			t.Errorf("unexpected event kind %v", ev.Kind)
		}
	}
	if downs != len(wantCut) || ups != len(wantCut) {
		t.Errorf("got %d downs / %d ups, want %d each", downs, ups, len(wantCut))
	}
}

func TestCompileRejectsBadTargets(t *testing.T) {
	g := chaosGraph()
	cases := []struct {
		name string
		c    ChaosScenario
		want string
	}{
		{"router beyond topology", ChaosScenario{Routers: []RouterOutage{{At: 10, Router: 9}}}, "unknown router"},
		{"link not in topology", ChaosScenario{Links: []LinkOutage{{At: 10, A: 1, B: 3}}}, "no link"},
		{"link endpoint beyond topology", ChaosScenario{Links: []LinkOutage{{At: 10, A: 0, B: 11}}}, "unknown endpoint"},
		{"partition of everything", ChaosScenario{Partitions: []Partition{{At: 10, Routers: []int{0, 1, 2, 3, 4}}}}, "every router"},
		{"partition router beyond topology", ChaosScenario{Partitions: []Partition{{At: 10, Routers: []int{7}}}}, "unknown router"},
		{"burst larger than topology", ChaosScenario{Correlated: []CorrelatedLinks{{At: 10, Count: 99}}}, "has 6"},
	}
	for _, tc := range cases {
		_, err := tc.c.Compile(g)
		if err == nil {
			t.Errorf("%s: Compile passed, want error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := (&ChaosScenario{Routers: []RouterOutage{{At: 1, Router: 0}}}).Compile(nil); err == nil {
		t.Error("Compile(nil topology) passed, want error")
	}
}

func TestCompileCorrelatedDeterministic(t *testing.T) {
	g := chaosGraph()
	c := &ChaosScenario{
		Name:       "burst",
		Seed:       7,
		Correlated: []CorrelatedLinks{{At: 50, Heal: 250, Count: 3}},
	}
	first, err := c.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Events, second.Events) {
		t.Errorf("same seed compiled different bursts:\n%v\n%v", first.Events, second.Events)
	}
	downs := 0
	for _, ev := range first.Events {
		if ev.Kind == LinkDown {
			downs++
		}
	}
	if downs != 3 {
		t.Errorf("burst cut %d links, want 3", downs)
	}
	// A different seed should (for this topology and count) pick a
	// different victim set at least sometimes; check the streams are
	// actually seed-dependent.
	c.Seed = 8
	third, err := c.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first.Events, third.Events) {
		t.Log("seeds 7 and 8 chose the same victims (possible but suspicious)")
	}
}

func TestCompileEventsSorted(t *testing.T) {
	g := chaosGraph()
	c := &ChaosScenario{
		Name:    "mixed",
		Routers: []RouterOutage{{At: 500, Heal: 600, Router: 4}, {At: 20, Router: 3}},
		Links:   []LinkOutage{{At: 100, Heal: 900, A: 0, B: 1}},
	}
	cc, err := c.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cc.Events); i++ {
		if cc.Events[i].At < cc.Events[i-1].At {
			t.Fatalf("events out of order at %d: %v", i, cc.Events)
		}
	}
	// Open-ended windows (Heal 0) emit no Up event.
	for _, ev := range cc.Events {
		if ev.Kind == RouterUp && ev.Node == 3 {
			t.Error("open-ended router outage emitted an Up event")
		}
	}
}

func TestChaosPresetsCompile(t *testing.T) {
	// Every preset must validate and compile against every embedded
	// topology — presets keep ids low for exactly this reason.
	for _, name := range ChaosPresets() {
		c, err := ChaosPreset(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if c.Name != name {
			t.Errorf("preset %s reports name %q", name, c.Name)
		}
		for _, g := range topology.All() {
			if _, err := c.Compile(g); err != nil {
				t.Errorf("preset %s on %s: %v", name, g.Name(), err)
			}
		}
	}
	if _, err := ChaosPreset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestChaosPresetReturnsCopy(t *testing.T) {
	a, err := ChaosPreset("coord-crash")
	if err != nil {
		t.Fatal(err)
	}
	a.Coordinator[0].Down = 999
	a.Seed = 12345
	b, err := ChaosPreset("coord-crash")
	if err != nil {
		t.Fatal(err)
	}
	if b.Coordinator[0].Down == 999 || b.Seed == 12345 {
		t.Error("mutating a preset copy leaked into the shared preset")
	}
	fc, err := ChaosPreset("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	fc.FlashCrowd.Rank = 1
	fc2, err := ChaosPreset("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	if fc2.FlashCrowd.Rank == 1 {
		t.Error("mutating a preset's flash-crowd spec leaked into the shared preset")
	}
}
