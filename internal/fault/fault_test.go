package fault

import (
	"fmt"
	"reflect"
	"testing"

	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

// fakeTarget records transitions in order.
type fakeTarget struct {
	log []string
}

func (f *fakeTarget) SetRouterState(r topology.NodeID, up bool) error {
	f.log = append(f.log, fmt.Sprintf("r%d:%t", r, up))
	return nil
}

func (f *fakeTarget) SetLinkState(a, b topology.NodeID, up bool) error {
	f.log = append(f.log, fmt.Sprintf("l%d-%d:%t", a, b, up))
	return nil
}

func TestScriptedValidation(t *testing.T) {
	if _, err := Scripted(Event{At: -1, Kind: RouterDown, Node: 0}); err == nil {
		t.Error("negative time should fail")
	}
	if _, err := Scripted(Event{At: 1, Kind: LinkDown, A: 2, B: 2}); err == nil {
		t.Error("self-loop link should fail")
	}
	if _, err := Scripted(Event{At: 1, Kind: Kind(99), Node: 0}); err == nil {
		t.Error("unknown kind should fail")
	}
	s, err := Scripted(
		Event{At: 20, Kind: RouterUp, Node: 1},
		Event{At: 10, Kind: RouterDown, Node: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	evs := s.Events()
	if evs[0].At != 10 || evs[1].At != 20 {
		t.Errorf("events not time-sorted: %v", evs)
	}
	if err := s.Validate(2); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if err := s.Validate(1); err == nil {
		t.Error("router 1 outside a 1-router topology should fail validation")
	}
}

func TestInjectorAppliesInOrder(t *testing.T) {
	sched, err := Scripted(
		Event{At: 5, Kind: RouterDown, Node: 2},
		Event{At: 8, Kind: LinkDown, A: 0, B: 1},
		Event{At: 12, Kind: RouterUp, Node: 2},
		Event{At: 15, Kind: LinkUp, A: 0, B: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng := &des.Engine{}
	tgt := &fakeTarget{}
	inj, err := NewInjector(eng, sched, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Install(); err != nil {
		t.Fatal(err)
	}

	eng.RunUntil(6)
	if inj.RouterAlive(2) {
		t.Error("router 2 should be down at t=6")
	}
	if since, down := inj.DownSince(2); !down || since != 5 {
		t.Errorf("DownSince(2) = %v, %v; want 5, true", since, down)
	}
	if inj.ActiveFaults() != 1 {
		t.Errorf("ActiveFaults = %d, want 1", inj.ActiveFaults())
	}
	eng.RunUntil(9)
	if inj.ActiveFaults() != 2 {
		t.Errorf("ActiveFaults = %d, want 2", inj.ActiveFaults())
	}
	eng.Run()
	if !inj.RouterAlive(2) || inj.ActiveFaults() != 0 {
		t.Error("all faults should have cleared by the end of the timeline")
	}
	if len(inj.Applied()) != 4 {
		t.Errorf("applied %d events, want 4", len(inj.Applied()))
	}
	if len(tgt.log) != 4 {
		t.Errorf("target saw %d transitions, want 4", len(tgt.log))
	}
}

func TestInjectorOnEventHook(t *testing.T) {
	sched, err := Scripted(Event{At: 3, Kind: RouterDown, Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	eng := &des.Engine{}
	inj, err := NewInjector(eng, sched, &fakeTarget{})
	if err != nil {
		t.Fatal(err)
	}
	var seen []Event
	inj.OnEvent = func(e Event) { seen = append(seen, e) }
	if err := inj.Install(); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(seen) != 1 || seen[0].Kind != RouterDown || seen[0].Node != 0 {
		t.Errorf("OnEvent saw %v", seen)
	}
}

func TestStochasticDeterministic(t *testing.T) {
	cfg := StochasticConfig{
		MTBF: 500, MTTR: 100, Horizon: 10000, Seed: 42,
		Routers: []topology.NodeID{0, 1, 2, 3},
	}
	a, err := Stochastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stochastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Error("identical seeds generated different timelines")
	}
	if a.Len() == 0 {
		t.Error("MTBF=500 over a 10000ms horizon generated no faults")
	}
	cfg.Seed = 43
	c, err := Stochastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Error("different seeds generated identical timelines")
	}
}

func TestStochasticAlternatesPerRouter(t *testing.T) {
	s, err := Stochastic(StochasticConfig{
		MTBF: 300, MTTR: 300, Horizon: 20000, Seed: 7,
		Routers: []topology.NodeID{5},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantDown := true
	last := -1.0
	for _, e := range s.Events() {
		if e.Node != 5 {
			t.Fatalf("event for unexpected router: %v", e)
		}
		if e.At < last {
			t.Fatalf("events out of order: %v", s.Events())
		}
		last = e.At
		if wantDown && e.Kind != RouterDown || !wantDown && e.Kind != RouterUp {
			t.Fatalf("renewal process does not alternate: %v", s.Events())
		}
		wantDown = !wantDown
		if e.At >= 20000 {
			t.Fatalf("event beyond horizon: %v", e)
		}
	}
}

func TestStochasticValidation(t *testing.T) {
	base := StochasticConfig{MTBF: 1, MTTR: 1, Horizon: 1, Routers: []topology.NodeID{0}}
	for _, mod := range []func(*StochasticConfig){
		func(c *StochasticConfig) { c.MTBF = 0 },
		func(c *StochasticConfig) { c.MTTR = -1 },
		func(c *StochasticConfig) { c.Horizon = 0 },
		func(c *StochasticConfig) { c.Routers = nil },
	} {
		cfg := base
		mod(&cfg)
		if _, err := Stochastic(cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestStochasticRouterOrderIndependent(t *testing.T) {
	a, err := Stochastic(StochasticConfig{
		MTBF: 400, MTTR: 200, Horizon: 5000, Seed: 9,
		Routers: []topology.NodeID{0, 1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stochastic(StochasticConfig{
		MTBF: 400, MTTR: 200, Horizon: 5000, Seed: 9,
		Routers: []topology.NodeID{2, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Error("router-list order changed the generated timeline")
	}
}

func TestStochasticZeroAndNegativeMTTR(t *testing.T) {
	base := StochasticConfig{MTBF: 500, MTTR: 100, Horizon: 5000, Routers: []topology.NodeID{0}}
	for _, mttr := range []float64{0, -0.001, -100} {
		cfg := base
		cfg.MTTR = mttr
		if _, err := Stochastic(cfg); err == nil {
			t.Errorf("MTTR=%v should fail", mttr)
		}
	}
}

func TestFaultAtTimeZero(t *testing.T) {
	// A fault scheduled at t=0 is legal: the router must be down before
	// the first request fires, not crash "shortly after" it.
	sched, err := Scripted(
		Event{At: 0, Kind: RouterDown, Node: 1},
		Event{At: 10, Kind: RouterUp, Node: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng := &des.Engine{}
	inj, err := NewInjector(eng, sched, &fakeTarget{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Install(); err != nil {
		t.Fatalf("installing a t=0 fault: %v", err)
	}
	eng.RunUntil(1)
	if inj.RouterAlive(1) {
		t.Error("router 1 should already be down at t=1")
	}
	if since, down := inj.DownSince(1); !down || since != 0 {
		t.Errorf("DownSince(1) = %v, %v; want 0, true", since, down)
	}
	eng.Run()
	if !inj.RouterAlive(1) {
		t.Error("router 1 should have recovered")
	}
}

func TestOverlappingScriptedFaultsIdempotent(t *testing.T) {
	// Two overlapping down-windows on the same router: the second Down
	// lands on an already-crashed router and the first Up restores it
	// while the "outer" window is still notionally open. The injector
	// applies transitions idempotently — DownSince keeps the first crash
	// time through the redundant Down, and the final state follows the
	// last applied event.
	sched, err := Scripted(
		Event{At: 10, Kind: RouterDown, Node: 3},
		Event{At: 20, Kind: RouterDown, Node: 3}, // overlaps the first window
		Event{At: 30, Kind: RouterUp, Node: 3},
		Event{At: 40, Kind: RouterUp, Node: 3}, // redundant recovery
		Event{At: 50, Kind: LinkDown, A: 0, B: 1},
		Event{At: 55, Kind: LinkDown, A: 1, B: 0}, // same link, reversed endpoints
		Event{At: 60, Kind: LinkUp, A: 0, B: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng := &des.Engine{}
	tgt := &fakeTarget{}
	inj, err := NewInjector(eng, sched, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Install(); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(25)
	if since, down := inj.DownSince(3); !down || since != 10 {
		t.Errorf("redundant Down moved the crash time: DownSince(3) = %v, %v; want 10, true", since, down)
	}
	if inj.ActiveFaults() != 1 {
		t.Errorf("overlapping windows double-counted: ActiveFaults = %d, want 1", inj.ActiveFaults())
	}
	eng.RunUntil(56)
	if inj.ActiveFaults() != 1 {
		t.Errorf("reversed-endpoint link fault double-counted: ActiveFaults = %d, want 1", inj.ActiveFaults())
	}
	eng.Run()
	if inj.ActiveFaults() != 0 {
		t.Errorf("faults left active after all windows closed: %d", inj.ActiveFaults())
	}
	if len(inj.Applied()) != 7 {
		t.Errorf("applied %d events, want all 7 (redundant ones included)", len(inj.Applied()))
	}
}
