// Chaos scenarios: a declarative, JSON-loadable DSL composing the
// failure modes the simulator can inject — coordinator crash/restart
// windows, network partitions isolating a router subset,
// coordination-message loss and delay, correlated link failures,
// scripted router/link outages, and an optional flash crowd — into one
// replayable experiment. Every stochastic element (correlated link
// selection, heartbeat loss) draws from RNG streams derived from the
// scenario seed, so the same scenario file and seed reproduce the same
// run bit-for-bit. Compile expands a scenario against a concrete
// topology into the schedule the injector executes plus the
// coordination-channel timeline the simulator wires into the failure
// detector and the degraded-mode data plane.
package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"

	"ccncoord/internal/topology"
)

// ChaosScenario is the serializable chaos description. Zero-valued
// sections are absent; a scenario with no sections is rejected.
type ChaosScenario struct {
	// Name labels the scenario in artifacts and logs.
	Name string `json:"name"`
	// Seed drives every stochastic element (correlated link selection,
	// coordination-message loss). Zero selects 1.
	Seed int64 `json:"seed,omitempty"`
	// Coordinator lists coordination-channel outages: while one is
	// active the coordinator neither collects heartbeats nor repairs,
	// and routers run on stale placements (then degrade past the
	// staleness bound).
	Coordinator []CoordOutage `json:"coordinator,omitempty"`
	// Loss lists coordination-message loss/delay windows applied to
	// heartbeats while the coordinator is otherwise up.
	Loss []CoordLossWindow `json:"coord_loss,omitempty"`
	// Partitions isolate router subsets by cutting every topology link
	// with exactly one endpoint inside the subset.
	Partitions []Partition `json:"partitions,omitempty"`
	// Routers are scripted router crash windows.
	Routers []RouterOutage `json:"routers,omitempty"`
	// Links are scripted single-link outage windows.
	Links []LinkOutage `json:"links,omitempty"`
	// Correlated are bursts of simultaneous link failures whose victims
	// are drawn from a seeded stream — the shared-conduit failure mode.
	Correlated []CorrelatedLinks `json:"correlated_links,omitempty"`
	// FlashCrowd, when non-nil, composes a demand spike with the
	// failures: after a per-router request count, a cold content
	// swaps popularity with rank 1 (see workload.NewFlashCrowd).
	FlashCrowd *FlashCrowdSpec `json:"flash_crowd,omitempty"`
}

// CoordOutage is one coordination-channel outage window.
type CoordOutage struct {
	// Down is when the coordinator crashes (ms).
	Down float64 `json:"down"`
	// Up is when it restarts (ms); 0 means it stays down for the rest
	// of the run.
	Up float64 `json:"up,omitempty"`
}

// CoordLossWindow degrades the coordination channel without killing
// it: heartbeats within [From, To) are lost with probability Rate, and
// a DelayMs at or above the heartbeat interval makes every heartbeat
// arrive too late to count (the delay form of message impairment).
type CoordLossWindow struct {
	From    float64 `json:"from"`
	To      float64 `json:"to"`
	Rate    float64 `json:"rate,omitempty"`
	DelayMs float64 `json:"delay_ms,omitempty"`
}

// Partition isolates Routers from the rest of the network between At
// and Heal (Heal 0 = never heals).
type Partition struct {
	At      float64 `json:"at"`
	Heal    float64 `json:"heal,omitempty"`
	Routers []int   `json:"routers"`
}

// RouterOutage crashes one router between At and Heal (Heal 0 = stays
// down).
type RouterOutage struct {
	At     float64 `json:"at"`
	Heal   float64 `json:"heal,omitempty"`
	Router int     `json:"router"`
}

// LinkOutage takes one undirected link down between At and Heal
// (Heal 0 = stays down).
type LinkOutage struct {
	At   float64 `json:"at"`
	Heal float64 `json:"heal,omitempty"`
	A    int     `json:"a"`
	B    int     `json:"b"`
}

// CorrelatedLinks fails Count topology links simultaneously at At,
// healing them together at Heal (0 = never). The victim links are
// drawn without replacement from a stream seeded by the scenario seed
// and the burst's position, so the selection replays exactly.
type CorrelatedLinks struct {
	At    float64 `json:"at"`
	Heal  float64 `json:"heal,omitempty"`
	Count int     `json:"count"`
}

// FlashCrowdSpec composes a demand spike with the chaos timeline:
// after AfterRequests requests per router, content at popularity rank
// Rank swaps ranks with the catalog's most popular content.
type FlashCrowdSpec struct {
	AfterRequests int64 `json:"after_requests"`
	Rank          int64 `json:"rank"`
}

// windowOK validates a [start, end) window where end 0 means open.
func windowOK(start, end float64) error {
	if start < 0 {
		return fmt.Errorf("negative start time %v", start)
	}
	if end != 0 && end <= start {
		return fmt.Errorf("end %v not after start %v", end, start)
	}
	return nil
}

// Validate checks the scenario's internal consistency (no topology
// needed; Compile re-checks element ids against a concrete graph).
func (c *ChaosScenario) Validate() error {
	if c == nil {
		return fmt.Errorf("fault: nil chaos scenario")
	}
	if len(c.Coordinator)+len(c.Loss)+len(c.Partitions)+len(c.Routers)+len(c.Links)+len(c.Correlated) == 0 && c.FlashCrowd == nil {
		return fmt.Errorf("fault: chaos scenario %q has no failure sections", c.Name)
	}
	outages := append([]CoordOutage(nil), c.Coordinator...)
	sort.Slice(outages, func(i, j int) bool { return outages[i].Down < outages[j].Down })
	for i, w := range outages {
		if err := windowOK(w.Down, w.Up); err != nil {
			return fmt.Errorf("fault: coordinator outage %d: %v", i, err)
		}
		if i > 0 {
			prev := outages[i-1]
			if prev.Up == 0 || w.Down < prev.Up {
				return fmt.Errorf("fault: coordinator outages overlap (%v-%v and %v-%v)", prev.Down, prev.Up, w.Down, w.Up)
			}
		}
	}
	for i, w := range c.Loss {
		if err := windowOK(w.From, w.To); err != nil {
			return fmt.Errorf("fault: coord-loss window %d: %v", i, err)
		}
		if w.To == 0 {
			return fmt.Errorf("fault: coord-loss window %d needs an end time", i)
		}
		if w.Rate < 0 || w.Rate > 1 {
			return fmt.Errorf("fault: coord-loss window %d: rate %v outside [0, 1]", i, w.Rate)
		}
		if w.DelayMs < 0 {
			return fmt.Errorf("fault: coord-loss window %d: negative delay %v", i, w.DelayMs)
		}
		if w.Rate == 0 && w.DelayMs == 0 {
			return fmt.Errorf("fault: coord-loss window %d impairs nothing (zero rate and delay)", i)
		}
	}
	for i, p := range c.Partitions {
		if err := windowOK(p.At, p.Heal); err != nil {
			return fmt.Errorf("fault: partition %d: %v", i, err)
		}
		if len(p.Routers) == 0 {
			return fmt.Errorf("fault: partition %d isolates no routers", i)
		}
		seen := make(map[int]bool, len(p.Routers))
		for _, r := range p.Routers {
			if r < 0 {
				return fmt.Errorf("fault: partition %d: negative router id %d", i, r)
			}
			if seen[r] {
				return fmt.Errorf("fault: partition %d lists router %d twice", i, r)
			}
			seen[r] = true
		}
	}
	for i, r := range c.Routers {
		if err := windowOK(r.At, r.Heal); err != nil {
			return fmt.Errorf("fault: router outage %d: %v", i, err)
		}
		if r.Router < 0 {
			return fmt.Errorf("fault: router outage %d: negative router id %d", i, r.Router)
		}
	}
	for i, l := range c.Links {
		if err := windowOK(l.At, l.Heal); err != nil {
			return fmt.Errorf("fault: link outage %d: %v", i, err)
		}
		if l.A < 0 || l.B < 0 || l.A == l.B {
			return fmt.Errorf("fault: link outage %d: bad endpoints (%d,%d)", i, l.A, l.B)
		}
	}
	for i, b := range c.Correlated {
		if err := windowOK(b.At, b.Heal); err != nil {
			return fmt.Errorf("fault: correlated burst %d: %v", i, err)
		}
		if b.Count < 1 {
			return fmt.Errorf("fault: correlated burst %d fails %d links", i, b.Count)
		}
	}
	if fc := c.FlashCrowd; fc != nil {
		if fc.AfterRequests < 0 {
			return fmt.Errorf("fault: flash crowd: negative request threshold %d", fc.AfterRequests)
		}
		if fc.Rank < 2 {
			return fmt.Errorf("fault: flash crowd: rank %d must be at least 2 (rank 1 is already hottest)", fc.Rank)
		}
	}
	return nil
}

// ParseChaos decodes one chaos scenario from r, rejecting unknown
// fields, truncated documents, and trailing data, then validates it.
func ParseChaos(r io.Reader) (*ChaosScenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c ChaosScenario
	if err := dec.Decode(&c); err != nil {
		switch {
		case errors.Is(err, io.EOF):
			return nil, fmt.Errorf("fault: chaos scenario input is empty")
		case errors.Is(err, io.ErrUnexpectedEOF):
			return nil, fmt.Errorf("fault: chaos scenario is truncated (JSON document ends mid-stream): %w", err)
		default:
			return nil, fmt.Errorf("fault: decoding chaos scenario: %w", err)
		}
	}
	if tok, err := dec.Token(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("fault: chaos scenario has malformed trailing data: %v", err)
		}
		return nil, fmt.Errorf("fault: chaos scenario has trailing data after the JSON document (starting with %v)", tok)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadChaosFile reads and validates a chaos scenario file.
func LoadChaosFile(path string) (*ChaosScenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fault: opening chaos scenario: %w", err)
	}
	defer f.Close()
	c, err := ParseChaos(f)
	if err != nil {
		return nil, fmt.Errorf("fault: reading chaos scenario %s: %w", path, err)
	}
	return c, nil
}

// WriteJSON serializes the scenario as indented JSON plus newline —
// the same form ParseChaos reads.
func (c *ChaosScenario) WriteJSON(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("fault: encoding chaos scenario: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("fault: writing chaos scenario: %w", err)
	}
	return nil
}

// CompiledChaos is a scenario expanded against a concrete topology:
// the injector schedule plus the coordination-channel timeline the
// simulator wires directly.
type CompiledChaos struct {
	Name string
	Seed int64
	// Events is the merged router/link schedule (partitions and
	// correlated bursts expanded to individual link transitions).
	Events []Event
	// Coordinator is the outage timeline, sorted by Down.
	Coordinator []CoordOutage
	// Loss is the heartbeat loss/delay timeline.
	Loss []CoordLossWindow
	// FlashCrowd passes the demand-spike spec through.
	FlashCrowd *FlashCrowdSpec
}

// chaosSeed derives the RNG stream for stochastic element i, matching
// the per-router derivation quality of Stochastic.
func chaosSeed(seed, i int64) int64 { return seed ^ (i+3)*0x9E3779B9 }

// Compile validates the scenario against g and expands it into the
// concrete fault schedule and coordination timeline. The expansion is
// deterministic: partitions cut the sorted edge list, and correlated
// bursts draw victims from streams seeded by (Seed, burst index).
func (c *ChaosScenario) Compile(g *topology.Graph) (*CompiledChaos, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("fault: nil topology")
	}
	n := g.N()
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	out := &CompiledChaos{Name: c.Name, Seed: seed, FlashCrowd: c.FlashCrowd}
	out.Coordinator = append([]CoordOutage(nil), c.Coordinator...)
	sort.Slice(out.Coordinator, func(i, j int) bool { return out.Coordinator[i].Down < out.Coordinator[j].Down })
	out.Loss = append([]CoordLossWindow(nil), c.Loss...)
	sort.Slice(out.Loss, func(i, j int) bool { return out.Loss[i].From < out.Loss[j].From })

	addWindow := func(down, up Event, heal float64) {
		out.Events = append(out.Events, down)
		if heal > 0 {
			out.Events = append(out.Events, up)
		}
	}
	for i, r := range c.Routers {
		if r.Router >= n {
			return nil, fmt.Errorf("fault: router outage %d targets unknown router %d (topology has %d)", i, r.Router, n)
		}
		node := topology.NodeID(r.Router)
		addWindow(
			Event{At: r.At, Kind: RouterDown, Node: node},
			Event{At: r.Heal, Kind: RouterUp, Node: node},
			r.Heal)
	}
	for i, l := range c.Links {
		if l.A >= n || l.B >= n {
			return nil, fmt.Errorf("fault: link outage %d targets unknown endpoint (%d,%d) (topology has %d routers)", i, l.A, l.B, n)
		}
		a, b := topology.NodeID(l.A), topology.NodeID(l.B)
		if !g.HasEdge(a, b) {
			return nil, fmt.Errorf("fault: link outage %d: topology %s has no link %d-%d", i, g.Name(), l.A, l.B)
		}
		addWindow(
			Event{At: l.At, Kind: LinkDown, A: a, B: b},
			Event{At: l.Heal, Kind: LinkUp, A: a, B: b},
			l.Heal)
	}
	edges := g.EdgeList()
	for i, p := range c.Partitions {
		inside := make(map[topology.NodeID]bool, len(p.Routers))
		for _, r := range p.Routers {
			if r >= n {
				return nil, fmt.Errorf("fault: partition %d isolates unknown router %d (topology has %d)", i, r, n)
			}
			inside[topology.NodeID(r)] = true
		}
		if len(inside) >= n {
			return nil, fmt.Errorf("fault: partition %d isolates every router", i)
		}
		cut := 0
		for _, e := range edges {
			if inside[e.A] == inside[e.B] {
				continue // both sides of the cut, or neither
			}
			cut++
			addWindow(
				Event{At: p.At, Kind: LinkDown, A: e.A, B: e.B},
				Event{At: p.Heal, Kind: LinkUp, A: e.A, B: e.B},
				p.Heal)
		}
		if cut == 0 {
			return nil, fmt.Errorf("fault: partition %d cuts no links (subset already disconnected?)", i)
		}
	}
	for i, b := range c.Correlated {
		if b.Count > len(edges) {
			return nil, fmt.Errorf("fault: correlated burst %d fails %d links but topology %s has %d", i, b.Count, g.Name(), len(edges))
		}
		rng := rand.New(rand.NewSource(chaosSeed(seed, int64(i))))
		for _, idx := range rng.Perm(len(edges))[:b.Count] {
			e := edges[idx]
			addWindow(
				Event{At: b.At, Kind: LinkDown, A: e.A, B: e.B},
				Event{At: b.Heal, Kind: LinkUp, A: e.A, B: e.B},
				b.Heal)
		}
	}
	sort.SliceStable(out.Events, func(i, j int) bool { return out.Events[i].At < out.Events[j].At })
	return out, nil
}

// HasCoordinationFailures reports whether the scenario impairs the
// coordination channel (outages or message loss) — the parts that
// require a coordinated placement to mean anything.
func (c *ChaosScenario) HasCoordinationFailures() bool {
	return len(c.Coordinator) > 0 || len(c.Loss) > 0
}

// ChaosPresets returns the built-in scenario names in deterministic
// order.
func ChaosPresets() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ChaosPreset returns a built-in scenario by name. The returned value
// is a fresh copy; callers may adjust the seed.
func ChaosPreset(name string) (*ChaosScenario, error) {
	c, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("fault: unknown chaos preset %q (have %v)", name, ChaosPresets())
	}
	copy := c
	if c.FlashCrowd != nil {
		fc := *c.FlashCrowd
		copy.FlashCrowd = &fc
	}
	copy.Coordinator = append([]CoordOutage(nil), c.Coordinator...)
	copy.Loss = append([]CoordLossWindow(nil), c.Loss...)
	copy.Partitions = append([]Partition(nil), c.Partitions...)
	copy.Routers = append([]RouterOutage(nil), c.Routers...)
	copy.Links = append([]LinkOutage(nil), c.Links...)
	copy.Correlated = append([]CorrelatedLinks(nil), c.Correlated...)
	return &copy, nil
}

// The built-in presets. Event times sit in the first ~1000 virtual
// milliseconds so they land inside the traffic of even small runs;
// router ids stay low so every embedded topology has them.
var presets = map[string]ChaosScenario{
	// A short coordination blip: placements go stale but the channel
	// returns before the staleness bound expires, so the plane never
	// degrades — the graceful end of the spectrum.
	"coord-blip": {
		Name:        "coord-blip",
		Seed:        1,
		Coordinator: []CoordOutage{{Down: 150, Up: 350}},
	},
	// A long coordinator crash: the staleness bound expires mid-outage
	// and the plane falls back to autonomous en-route caching until the
	// restart re-converges it.
	"coord-crash": {
		Name:        "coord-crash",
		Seed:        1,
		Coordinator: []CoordOutage{{Down: 150, Up: 900}},
	},
	// A network partition isolating two routers while coordination
	// stays healthy: the data plane reroutes and retries around the cut.
	"partition": {
		Name:       "partition",
		Seed:       1,
		Partitions: []Partition{{At: 200, Heal: 700, Routers: []int{1, 2}}},
	},
	// Heartbeats lost more often than not: the detector sees phantom
	// failures and the repair path gets exercised against live routers.
	"lossy-coordination": {
		Name: "lossy-coordination",
		Seed: 1,
		Loss: []CoordLossWindow{{From: 100, To: 900, Rate: 0.6}},
	},
	// Correlated link burst, a router crash, and a coordinator outage
	// overlapping — the compound failure a shared conduit cut causes.
	"cascade": {
		Name:        "cascade",
		Seed:        1,
		Coordinator: []CoordOutage{{Down: 300, Up: 1000}},
		Routers:     []RouterOutage{{At: 250, Heal: 800, Router: 1}},
		Correlated:  []CorrelatedLinks{{At: 150, Heal: 650, Count: 3}},
	},
	// A flash crowd arriving while the coordinator is down: the
	// degraded plane must absorb a popularity inversion autonomously.
	"flash-crowd": {
		Name:        "flash-crowd",
		Seed:        1,
		Coordinator: []CoordOutage{{Down: 150, Up: 900}},
		FlashCrowd:  &FlashCrowdSpec{AfterRequests: 200, Rank: 5000},
	},
}
