// Package fault provides the failure model of the simulator: a
// deterministic schedule of link and router outages driven by the
// discrete-event engine. Schedules are either scripted (explicit
// timelines, the form tests use) or stochastic (exponential MTBF/MTTR
// renewal processes, seeded so runs are reproducible). An Injector
// binds a schedule to a des.Engine and applies each event to a fault
// Target — the CCN data plane — while tracking which routers and links
// are currently down, the state the coordination layer's failure
// detector observes.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"ccncoord/internal/des"
	"ccncoord/internal/topology"
)

// Kind identifies a fault event type.
type Kind int

const (
	// RouterDown crashes a router: it stops forwarding, serving, and
	// responding until a matching RouterUp.
	RouterDown Kind = iota
	// RouterUp recovers a crashed router.
	RouterUp
	// LinkDown takes an undirected link out of service.
	LinkDown
	// LinkUp restores a downed link.
	LinkUp
)

// String returns the event kind name.
func (k Kind) String() string {
	switch k {
	case RouterDown:
		return "router-down"
	case RouterUp:
		return "router-up"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault transition. Router events use Node;
// link events use the undirected pair (A, B).
type Event struct {
	At   float64
	Kind Kind
	Node topology.NodeID // router events
	A, B topology.NodeID // link events
}

// String renders the event for logs and error messages.
func (e Event) String() string {
	switch e.Kind {
	case RouterDown, RouterUp:
		return fmt.Sprintf("%.1fms %s r%d", e.At, e.Kind, e.Node)
	default:
		return fmt.Sprintf("%.1fms %s %d-%d", e.At, e.Kind, e.A, e.B)
	}
}

// isRouter reports whether the event targets a router.
func (e Event) isRouter() bool { return e.Kind == RouterDown || e.Kind == RouterUp }

// Schedule is a time-ordered fault timeline.
type Schedule struct {
	events []Event
}

// Events returns the timeline in firing order.
func (s *Schedule) Events() []Event { return append([]Event(nil), s.events...) }

// Len returns the number of scheduled events.
func (s *Schedule) Len() int { return len(s.events) }

// Scripted builds a schedule from an explicit event list. Events are
// stably sorted by time, so same-instant events fire in list order.
func Scripted(events ...Event) (*Schedule, error) {
	out := append([]Event(nil), events...)
	for _, e := range out {
		if e.At < 0 {
			return nil, fmt.Errorf("fault: negative event time %v", e.At)
		}
		switch e.Kind {
		case RouterDown, RouterUp:
			if e.Node < 0 {
				return nil, fmt.Errorf("fault: negative router id %d", e.Node)
			}
		case LinkDown, LinkUp:
			if e.A < 0 || e.B < 0 || e.A == e.B {
				return nil, fmt.Errorf("fault: bad link endpoints (%d,%d)", e.A, e.B)
			}
		default:
			return nil, fmt.Errorf("fault: unknown event kind %d", e.Kind)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return &Schedule{events: out}, nil
}

// Validate checks every event against a topology of n routers.
func (s *Schedule) Validate(n int) error {
	for _, e := range s.events {
		if e.isRouter() {
			if int(e.Node) >= n {
				return fmt.Errorf("fault: event %q targets unknown router %d (topology has %d)", e, e.Node, n)
			}
			continue
		}
		if int(e.A) >= n || int(e.B) >= n {
			return fmt.Errorf("fault: event %q targets unknown link endpoint (topology has %d routers)", e, n)
		}
	}
	return nil
}

// StochasticConfig parameterizes an exponential router-failure process.
type StochasticConfig struct {
	// MTBF is the mean up-time (ms) between a router's recoveries and
	// its next crash, exponentially distributed.
	MTBF float64
	// MTTR is the mean down-time (ms) until a crashed router recovers,
	// exponentially distributed.
	MTTR float64
	// Horizon bounds the generated timeline: no event is scheduled at
	// or beyond it.
	Horizon float64
	// Seed drives the renewal processes; identical seeds generate
	// identical timelines. Zero selects 1.
	Seed int64
	// Routers lists the routers subject to failure.
	Routers []topology.NodeID
}

// Stochastic generates a scripted timeline by sampling, per router, an
// alternating renewal process: up for Exp(MTBF), down for Exp(MTTR),
// repeated until the horizon. Each router draws from its own seeded
// stream, so the timeline is independent of router-list order and
// bit-reproducible per seed.
func Stochastic(cfg StochasticConfig) (*Schedule, error) {
	switch {
	case !(cfg.MTBF > 0):
		return nil, fmt.Errorf("fault: MTBF must be positive, got %v", cfg.MTBF)
	case !(cfg.MTTR > 0):
		return nil, fmt.Errorf("fault: MTTR must be positive, got %v", cfg.MTTR)
	case !(cfg.Horizon > 0):
		return nil, fmt.Errorf("fault: horizon must be positive, got %v", cfg.Horizon)
	case len(cfg.Routers) == 0:
		return nil, fmt.Errorf("fault: no routers subject to failure")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	var events []Event
	for _, r := range cfg.Routers {
		if r < 0 {
			return nil, fmt.Errorf("fault: negative router id %d", r)
		}
		rng := rand.New(rand.NewSource(seed ^ (int64(r)+1)*0x9E3779B9))
		t := rng.ExpFloat64() * cfg.MTBF
		for t < cfg.Horizon {
			events = append(events, Event{At: t, Kind: RouterDown, Node: r})
			t += rng.ExpFloat64() * cfg.MTTR
			if t >= cfg.Horizon {
				break
			}
			events = append(events, Event{At: t, Kind: RouterUp, Node: r})
			t += rng.ExpFloat64() * cfg.MTBF
		}
	}
	// Same-instant ties (measure-zero but possible) break by router id
	// to keep the merged timeline deterministic.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Node < events[j].Node
	})
	return &Schedule{events: events}, nil
}

// Target is the system the injector applies faults to — the CCN data
// plane implements it.
type Target interface {
	// SetRouterState crashes (up=false) or recovers (up=true) a router.
	SetRouterState(r topology.NodeID, up bool) error
	// SetLinkState takes the undirected link (a, b) down or up.
	SetLinkState(a, b topology.NodeID, up bool) error
}

// Injector binds a fault schedule to a discrete-event engine: Install
// schedules every event, and applying an event updates the target and
// the injector's view of which routers and links are down.
type Injector struct {
	eng    *des.Engine
	sched  *Schedule
	target Target

	// OnEvent, when non-nil, observes every applied event (after the
	// target transition), e.g. to build a repair log.
	OnEvent func(Event)

	downRouters map[topology.NodeID]float64 // router -> crash time
	downLinks   map[[2]topology.NodeID]bool
	applied     []Event
}

// NewInjector returns an injector over the given engine, schedule, and
// target. Call Install before running the engine.
func NewInjector(eng *des.Engine, sched *Schedule, target Target) (*Injector, error) {
	switch {
	case eng == nil:
		return nil, fmt.Errorf("fault: nil engine")
	case sched == nil:
		return nil, fmt.Errorf("fault: nil schedule")
	case target == nil:
		return nil, fmt.Errorf("fault: nil target")
	}
	return &Injector{
		eng:         eng,
		sched:       sched,
		target:      target,
		downRouters: make(map[topology.NodeID]float64),
		downLinks:   make(map[[2]topology.NodeID]bool),
	}, nil
}

// Install schedules every event of the timeline on the engine. Events
// before the engine's current time are rejected.
func (inj *Injector) Install() error {
	for _, e := range inj.sched.events {
		e := e
		if err := inj.eng.At(e.At, func() { inj.apply(e) }); err != nil {
			return fmt.Errorf("fault: installing %q: %w", e, err)
		}
	}
	return nil
}

// apply transitions the target and the injector's fault bookkeeping.
// Redundant events (crashing a crashed router, restoring an up link)
// are applied idempotently.
func (inj *Injector) apply(e Event) {
	var err error
	switch e.Kind {
	case RouterDown:
		err = inj.target.SetRouterState(e.Node, false)
		if err == nil {
			if _, down := inj.downRouters[e.Node]; !down {
				inj.downRouters[e.Node] = inj.eng.Now()
			}
		}
	case RouterUp:
		err = inj.target.SetRouterState(e.Node, true)
		if err == nil {
			delete(inj.downRouters, e.Node)
		}
	case LinkDown:
		err = inj.target.SetLinkState(e.A, e.B, false)
		if err == nil {
			inj.downLinks[linkKey(e.A, e.B)] = true
		}
	case LinkUp:
		err = inj.target.SetLinkState(e.A, e.B, true)
		if err == nil {
			delete(inj.downLinks, linkKey(e.A, e.B))
		}
	}
	if err != nil {
		panic(fmt.Sprintf("fault: applying %q: %v", e, err))
	}
	inj.applied = append(inj.applied, e)
	if inj.OnEvent != nil {
		inj.OnEvent(e)
	}
}

// linkKey normalizes an undirected link to a map key.
func linkKey(a, b topology.NodeID) [2]topology.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]topology.NodeID{a, b}
}

// RouterAlive reports whether router r is currently up.
func (inj *Injector) RouterAlive(r topology.NodeID) bool {
	_, down := inj.downRouters[r]
	return !down
}

// DownSince returns when router r crashed, if it is currently down.
func (inj *Injector) DownSince(r topology.NodeID) (float64, bool) {
	t, down := inj.downRouters[r]
	return t, down
}

// ActiveFaults returns how many routers and links are currently down.
func (inj *Injector) ActiveFaults() int {
	return len(inj.downRouters) + len(inj.downLinks)
}

// Applied returns the events applied so far, in firing order.
func (inj *Injector) Applied() []Event { return append([]Event(nil), inj.applied...) }
