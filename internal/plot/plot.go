// Package plot renders line charts as ASCII art, so the experiment
// runner can display the reproduced paper figures directly in a
// terminal without any plotting dependency. Each series gets a distinct
// glyph; axes are annotated with min/max ticks.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Chart describes one plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the canvas size in characters (excluding
	// axes); zero values select 64 x 20.
	Width  int
	Height int
}

// glyphs assigns one marker per series, cycling if there are many.
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Render writes the chart to w.
func Render(w io.Writer, c Chart) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	if width < 8 || height < 4 {
		return fmt.Errorf("plot: canvas %dx%d too small", width, height)
	}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values and %d y values", s.Label, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				return fmt.Errorf("plot: series %q has a non-finite point at index %d", s.Label, i)
			}
			xMin, xMax = math.Min(xMin, s.X[i]), math.Max(xMax, s.X[i])
			yMin, yMax = math.Min(yMin, s.Y[i]), math.Max(yMax, s.Y[i])
		}
	}
	if math.IsInf(xMin, 1) {
		return fmt.Errorf("plot: all series are empty")
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	// Paint the canvas.
	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		glyph := glyphs[si%len(glyphs)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - xMin) / (xMax - xMin) * float64(width-1)))
			row := int(math.Round((s.Y[i] - yMin) / (yMax - yMin) * float64(height-1)))
			canvas[height-1-row][col] = glyph
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop := fmt.Sprintf("%.3g", yMax)
	yBot := fmt.Sprintf("%.3g", yMin)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r, line := range canvas {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = pad(yTop, margin)
		case height - 1:
			label = pad(yBot, margin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", width))
	xTicks := fmt.Sprintf("%.3g%s%.3g", xMin,
		strings.Repeat(" ", max(1, width-len(fmt.Sprintf("%.3g", xMin))-len(fmt.Sprintf("%.3g", xMax)))), xMax)
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", margin), xTicks)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", margin), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", margin), glyphs[si%len(glyphs)], s.Label)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// pad right-aligns s to width characters.
func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return strings.Repeat(" ", width-len(s)) + s
}

// finite reports whether v is a usable coordinate.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
