package plot

import (
	"math"
	"strings"
	"testing"
)

func sample() Chart {
	return Chart{
		Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}},
			{Label: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}},
		},
	}
}

func TestRenderBasics(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, sample()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "* up", "o down", "x: x   y: y", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Axis tick labels carry the data range.
	if !strings.Contains(out, "2") || !strings.Contains(out, "0") {
		t.Error("missing axis ticks")
	}
}

func TestRenderGlyphPlacement(t *testing.T) {
	c := Chart{
		Width: 11, Height: 5,
		Series: []Series{{Label: "s", X: []float64{0, 10}, Y: []float64{0, 1}}},
	}
	var sb strings.Builder
	if err := Render(&sb, c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	// First canvas row holds the max-y point at the rightmost column;
	// the last canvas row holds the min-y point at the leftmost column.
	if !strings.HasSuffix(strings.TrimRight(lines[0], " "), "*") {
		t.Errorf("top row should end with the max point: %q", lines[0])
	}
	bottom := lines[4]
	if !strings.Contains(bottom, "|*") {
		t.Errorf("bottom row should start with the min point: %q", bottom)
	}
}

func TestRenderErrors(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, Chart{}); err == nil {
		t.Error("no series should fail")
	}
	if err := Render(&sb, Chart{Width: 2, Height: 2, Series: sample().Series}); err == nil {
		t.Error("tiny canvas should fail")
	}
	bad := sample()
	bad.Series[0].Y = bad.Series[0].Y[:2]
	if err := Render(&sb, bad); err == nil {
		t.Error("length mismatch should fail")
	}
	nan := Chart{Series: []Series{{Label: "n", X: []float64{0}, Y: []float64{math.NaN()}}}}
	if err := Render(&sb, nan); err == nil {
		t.Error("NaN point should fail")
	}
	empty := Chart{Series: []Series{{Label: "e"}}}
	if err := Render(&sb, empty); err == nil {
		t.Error("empty series should fail")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := Chart{Series: []Series{{Label: "flat", X: []float64{1, 1}, Y: []float64{3, 3}}}}
	var sb strings.Builder
	if err := Render(&sb, c); err != nil {
		t.Fatalf("constant series should render: %v", err)
	}
}
