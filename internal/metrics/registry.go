package metrics

import (
	"fmt"
	"sort"
)

// This file is the serialization side of the package: point-in-time
// snapshots of each aggregate, and a Registry that names live metrics
// and snapshots them all at once. Snapshots are plain data with stable
// field names, so a run manifest marshals them directly.

// HistogramSnapshot is a serializable point-in-time view of a
// Histogram. Buckets lists only occupied buckets as {index, count}
// pairs in index order — latency histograms are sparse, and the pair
// form keeps manifests compact and deterministic.
type HistogramSnapshot struct {
	Lo        float64    `json:"lo"`
	Hi        float64    `json:"hi"`
	NumBucket int        `json:"num_buckets"`
	Buckets   [][2]int64 `json:"buckets,omitempty"`
	Count     int64      `json:"count"`
	Sum       float64    `json:"sum"`
	Underflow int64      `json:"underflow"`
	Overflow  int64      `json:"overflow"`
	Rejected  int64      `json:"rejected"`
	Mean      float64    `json:"mean"`
	P50       float64    `json:"p50"`
	P95       float64    `json:"p95"`
	P99       float64    `json:"p99"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Lo:        h.lo,
		Hi:        h.hi,
		NumBucket: len(h.buckets),
		Count:     h.count,
		Sum:       h.sum,
		Underflow: h.underflow,
		Overflow:  h.overflow,
		Rejected:  h.rejected,
		Mean:      h.Mean(),
		P50:       h.Quantile(0.50),
		P95:       h.Quantile(0.95),
		P99:       h.Quantile(0.99),
	}
	for i, b := range h.buckets {
		if b > 0 {
			s.Buckets = append(s.Buckets, [2]int64{int64(i), b})
		}
	}
	return s
}

// CounterSnapshot is a serializable view of a Counter: the per-name
// counts and their total.
type CounterSnapshot struct {
	Counts map[string]int64 `json:"counts"`
	Total  int64            `json:"total"`
}

// Snapshot captures the counter's current state.
func (c *Counter) Snapshot() CounterSnapshot {
	s := CounterSnapshot{Counts: make(map[string]int64, len(c.counts)), Total: c.Total()}
	for n, v := range c.counts {
		s.Counts[n] = v
	}
	return s
}

// MeanSnapshot is a serializable view of a Mean.
type MeanSnapshot struct {
	N      int64   `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
}

// Snapshot captures the running mean's current state.
func (m *Mean) Snapshot() MeanSnapshot {
	return MeanSnapshot{N: m.N(), Mean: m.Value(), StdDev: m.StdDev()}
}

// AvailabilitySnapshot is a serializable view of an Availability.
type AvailabilitySnapshot struct {
	OK     int64   `json:"ok"`
	Failed int64   `json:"failed"`
	Value  float64 `json:"value"`
}

// Snapshot captures the availability tracker's current state.
func (a *Availability) Snapshot() AvailabilitySnapshot {
	return AvailabilitySnapshot{OK: a.ok, Failed: a.failed, Value: a.Value()}
}

// Registry names live metrics so a run can snapshot every aggregate it
// maintains in one call. Metrics are created on first use (counters,
// means) or registered explicitly (histograms, which need a range).
// The registry itself is not safe for concurrent use — the simulator
// is single-threaded per run, and each run owns its registry.
type Registry struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
	means    map[string]*Mean
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		means:    make(map[string]*Mean),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Mean returns the named running mean, creating it on first use.
func (r *Registry) Mean(name string) *Mean {
	m, ok := r.means[name]
	if !ok {
		m = &Mean{}
		r.means[name] = m
	}
	return m
}

// Histogram registers (or returns) the named histogram. Re-registering
// an existing name returns the existing histogram and ignores the
// range arguments; registering a new name with an invalid range fails.
func (r *Registry) Histogram(name string, lo, hi float64, buckets int) (*Histogram, error) {
	if h, ok := r.hists[name]; ok {
		return h, nil
	}
	h, err := NewHistogram(lo, hi, buckets)
	if err != nil {
		return nil, fmt.Errorf("metrics: registering %q: %w", name, err)
	}
	r.hists[name] = h
	return h, nil
}

// RegistrySnapshot is the serializable state of every registered
// metric, keyed by name.
type RegistrySnapshot struct {
	Counters   map[string]CounterSnapshot   `json:"counters,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Means      map[string]MeanSnapshot      `json:"means,omitempty"`
}

// Names returns every registered metric name, sorted and de-duplicated
// across kinds.
func (r *Registry) Names() []string {
	seen := make(map[string]bool)
	var names []string
	for n := range r.counters {
		seen[n] = true
	}
	for n := range r.hists {
		seen[n] = true
	}
	for n := range r.means {
		seen[n] = true
	}
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures every registered metric. Map keys serialize in
// sorted order under encoding/json, so marshaling a snapshot is
// deterministic.
func (r *Registry) Snapshot() RegistrySnapshot {
	var s RegistrySnapshot
	if len(r.counters) > 0 {
		s.Counters = make(map[string]CounterSnapshot, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Snapshot()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.Snapshot()
		}
	}
	if len(r.means) > 0 {
		s.Means = make(map[string]MeanSnapshot, len(r.means))
		for n, m := range r.means {
			s.Means[n] = m.Snapshot()
		}
	}
	return s
}
