package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAvailability(t *testing.T) {
	var a Availability
	if a.Value() != 1 {
		t.Errorf("empty availability = %v, want 1", a.Value())
	}
	for i := 0; i < 9; i++ {
		a.ObserveOK()
	}
	a.ObserveFailed()
	if a.Value() != 0.9 {
		t.Errorf("availability = %v, want 0.9", a.Value())
	}
	if a.OK() != 9 || a.Failed() != 1 {
		t.Errorf("counts = %d ok, %d failed", a.OK(), a.Failed())
	}
}

func TestDowntimeMergesOverlaps(t *testing.T) {
	var d Downtime
	if d.Active() || d.Total(100) != 0 {
		t.Error("zero value should report no downtime")
	}
	d.Down(10) // span opens
	d.Down(20) // overlapping fault: same span
	if !d.Active() {
		t.Error("should be active with two faults down")
	}
	d.Up(30)
	if d.Total(35) != 25 {
		t.Errorf("mid-span total = %v, want 25 (span still open)", d.Total(35))
	}
	d.Up(40) // span closes: 10..40
	d.Down(60)
	d.Up(70) // second span: 60..70
	if got := d.Total(100); got != 40 {
		t.Errorf("total downtime = %v, want 40", got)
	}
	if d.Spans() != 2 {
		t.Errorf("spans = %d, want 2", d.Spans())
	}
	// Unmatched Up is ignored.
	d.Up(80)
	if d.Active() || d.Total(100) != 40 {
		t.Error("unmatched Up corrupted the tracker")
	}
}

func TestDowntimeOpenSpanAtEnd(t *testing.T) {
	var d Downtime
	d.Down(90)
	if got := d.Total(100); got != 10 {
		t.Errorf("open span total = %v, want 10", got)
	}
	if got := d.Total(80); got != 0 {
		t.Errorf("end before span opened should contribute 0, got %v", got)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("hit")
	c.Inc("hit")
	c.Add("miss", 5)
	if c.Get("hit") != 2 || c.Get("miss") != 5 || c.Get("absent") != 0 {
		t.Errorf("counter values wrong: hit=%d miss=%d", c.Get("hit"), c.Get("miss"))
	}
	if c.Total() != 7 {
		t.Errorf("Total = %d, want 7", c.Total())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "hit" || names[1] != "miss" {
		t.Errorf("Names = %v", names)
	}
}

func TestMeanBasics(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.N() != 0 || m.Variance() != 0 {
		t.Error("zero-value Mean should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Observe(x)
	}
	if m.N() != 8 {
		t.Errorf("N = %d", m.N())
	}
	if math.Abs(m.Value()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", m.Value())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 32/7.
	if math.Abs(m.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", m.Variance(), 32.0/7)
	}
	if math.Abs(m.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("stddev = %v", m.StdDev())
	}
}

// TestMeanMatchesDirect property: Welford agrees with the two-pass
// formula on random samples.
func TestMeanMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 2
		xs := make([]float64, n)
		var m Mean
		var sum float64
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			m.Observe(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return math.Abs(m.Value()-mean) < 1e-9 && math.Abs(m.Variance()-ss/float64(n-1)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(5, 5, 10); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets should fail")
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0.5; x < 10; x++ {
		h.Observe(x)
	}
	if h.Count() != 10 {
		t.Errorf("Count = %d", h.Count())
	}
	if math.Abs(h.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", h.Mean())
	}
	med := h.Quantile(0.5)
	if med < 4 || med > 6 {
		t.Errorf("median = %v, want ~5", med)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Error("quantiles must be monotone")
	}
}

func TestHistogramClamping(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	h.Observe(-100)
	h.Observe(100)
	if h.Count() != 2 {
		t.Errorf("out-of-range samples dropped: count = %d", h.Count())
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

// TestHistogramQuantileAccuracy: on uniform data the q-quantile should be
// close to q*range.
func TestHistogramQuantileAccuracy(t *testing.T) {
	h, _ := NewHistogram(0, 1, 100)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Observe(rng.Float64())
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		if got := h.Quantile(q); math.Abs(got-q) > 0.02 {
			t.Errorf("Quantile(%v) = %v", q, got)
		}
	}
}
