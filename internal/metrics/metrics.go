// Package metrics provides the small statistics toolkit the simulator
// uses to aggregate measurements: counters, running means/variances
// (Welford), fixed-bucket histograms with quantile estimates, the
// fault-experiment aggregates (request availability, downtime spans),
// and a registry that snapshots named metrics into serializable form
// for run manifests. The zero value of every aggregate is ready to use.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Counter counts occurrences of named events. The zero value is ready
// to use.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Add increments the named event by delta.
func (c *Counter) Add(name string, delta int64) {
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[name] += delta
}

// Inc increments the named event by one.
func (c *Counter) Inc(name string) { c.Add(name, 1) }

// Get returns the count for name (0 if never incremented).
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Total returns the sum over all names.
func (c *Counter) Total() int64 {
	var t int64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Names returns all event names, sorted.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Mean accumulates a running mean and variance with Welford's algorithm.
// The zero value is ready to use.
type Mean struct {
	n    int64
	mean float64
	m2   float64
}

// Observe adds one sample.
func (m *Mean) Observe(x float64) {
	m.n++
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// N returns the number of samples.
func (m *Mean) N() int64 { return m.n }

// Value returns the running mean (0 with no samples).
func (m *Mean) Value() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 with < 2 samples).
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Histogram collects samples into equal-width buckets over [lo, hi).
// Out-of-range samples are tracked in explicit underflow/overflow
// counters (they count toward Count, Sum and Mean but land in no
// bucket) so quantile estimates saturate at the range edges instead of
// fabricating in-range values. NaN and ±Inf observations are rejected
// and counted separately — they would otherwise poison the running sum.
// It retains no raw samples, so memory is O(buckets).
type Histogram struct {
	lo, hi    float64
	buckets   []int64
	count     int64
	sum       float64
	underflow int64
	overflow  int64
	rejected  int64
}

// NewHistogram returns a histogram over [lo, hi) with the given number
// of buckets.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if !(hi > lo) {
		return nil, fmt.Errorf("metrics: histogram range [%v, %v) is empty", lo, hi)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("metrics: need at least one bucket, got %d", buckets)
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, buckets)}, nil
}

// Observe adds one sample. Non-finite samples (NaN, ±Inf) are rejected
// and counted via Rejected; samples outside [lo, hi) are accepted into
// the underflow/overflow counters without occupying a bucket.
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.rejected++
		return
	}
	h.count++
	h.sum += x
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		idx := int(float64(len(h.buckets)) * (x - h.lo) / (h.hi - h.lo))
		if idx >= len(h.buckets) {
			// Float rounding at the top edge can compute len(buckets)
			// for x just below hi; it belongs to the last bucket.
			idx = len(h.buckets) - 1
		}
		h.buckets[idx]++
	}
}

// Count returns the number of accepted samples, including out-of-range
// ones.
func (h *Histogram) Count() int64 { return h.count }

// Underflow returns how many accepted samples fell below lo.
func (h *Histogram) Underflow() int64 { return h.underflow }

// Overflow returns how many accepted samples fell at or above hi.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Rejected returns how many non-finite observations were discarded.
func (h *Histogram) Rejected() int64 { return h.rejected }

// Mean returns the exact sample mean (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) assuming
// uniform density within buckets. Quantiles that fall inside the
// underflow (overflow) mass saturate at lo (hi) — the histogram cannot
// resolve them, and reporting the range edge is honest where the old
// clamping behavior fabricated an in-range value.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	q = math.Min(1, math.Max(0, q))
	target := q * float64(h.count)
	acc := float64(h.underflow)
	if h.underflow > 0 && acc >= target {
		return h.lo
	}
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, b := range h.buckets {
		next := acc + float64(b)
		if next >= target && b > 0 {
			frac := (target - acc) / float64(b)
			if frac < 0 {
				frac = 0
			}
			return h.lo + width*(float64(i)+frac)
		}
		acc = next
	}
	// The remaining mass is overflow (or the target rounded past the
	// last occupied bucket): saturate at the range edge.
	return h.hi
}

// Availability counts request outcomes and reports the fraction
// served successfully — the per-run availability of a fault
// experiment. The zero value is ready to use.
type Availability struct {
	ok     int64
	failed int64
}

// ObserveOK records a successfully served request.
func (a *Availability) ObserveOK() { a.ok++ }

// ObserveFailed records a request the network gave up on.
func (a *Availability) ObserveFailed() { a.failed++ }

// OK returns the successful-request count.
func (a *Availability) OK() int64 { return a.ok }

// Failed returns the failed-request count.
func (a *Availability) Failed() int64 { return a.failed }

// Value returns ok / (ok + failed), or 1 with no observations (an
// idle system is trivially available).
func (a *Availability) Value() float64 {
	total := a.ok + a.failed
	if total == 0 {
		return 1
	}
	return float64(a.ok) / float64(total)
}

// Downtime accumulates outage spans on a virtual clock: Down opens a
// span, Up closes it, and Total reports the accumulated downtime up to
// a given end time, including any span still open. Overlapping Down
// calls merge (the tracker counts wall-clock with >= 1 fault active,
// not fault-seconds). The zero value is ready to use.
type Downtime struct {
	active    int     // currently-open Down calls
	openedAt  float64 // when active went 0 -> positive
	accrued   float64
	spanCount int64
}

// Down marks one entity failing at time t.
func (d *Downtime) Down(t float64) {
	if d.active == 0 {
		d.openedAt = t
		d.spanCount++
	}
	d.active++
}

// Up marks one entity recovering at time t. Unmatched Up calls are
// ignored.
func (d *Downtime) Up(t float64) {
	if d.active == 0 {
		return
	}
	d.active--
	if d.active == 0 {
		d.accrued += t - d.openedAt
	}
}

// Spans returns how many distinct outage windows opened.
func (d *Downtime) Spans() int64 { return d.spanCount }

// Active reports whether at least one entity is currently down.
func (d *Downtime) Active() bool { return d.active > 0 }

// Total returns the accumulated downtime up to end, closing any open
// span at end for the computation (without mutating state).
func (d *Downtime) Total(end float64) float64 {
	total := d.accrued
	if d.active > 0 && end > d.openedAt {
		total += end - d.openedAt
	}
	return total
}
