package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func TestRegistryCreateOnUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("served")
	c.Inc("local")
	if r.Counter("served").Get("local") != 1 {
		t.Error("second Counter call should return the same counter")
	}
	m := r.Mean("latency")
	m.Observe(4)
	m.Observe(6)
	if r.Mean("latency").Value() != 5 {
		t.Error("second Mean call should return the same mean")
	}
	h, err := r.Histogram("rtt", 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(42)
	again, err := r.Histogram("rtt", 5, 7, 1) // range args ignored on re-registration
	if err != nil {
		t.Fatal(err)
	}
	if again.Count() != 1 {
		t.Error("re-registering a histogram should return the existing one")
	}
	if _, err := r.Histogram("bad", 5, 5, 3); err == nil {
		t.Error("registering a histogram with an empty range should fail")
	}
	want := []string{"latency", "rtt", "served"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v, want %v", got, want)
	}
}

func TestRegistrySnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("served").Add("origin", 7)
	r.Mean("hops").Observe(3)
	h, err := r.Histogram("latency_ms", 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(2.5)
	h.Observe(-1)
	h.Observe(99)

	s := r.Snapshot()
	if s.Counters["served"].Total != 7 {
		t.Errorf("counter total = %d, want 7", s.Counters["served"].Total)
	}
	if s.Means["hops"].N != 1 || s.Means["hops"].Mean != 3 {
		t.Errorf("mean snapshot = %+v", s.Means["hops"])
	}
	hs := s.Histograms["latency_ms"]
	if hs.Count != 3 || hs.Underflow != 1 || hs.Overflow != 1 {
		t.Errorf("histogram snapshot = %+v, want count 3 with one sample off each end", hs)
	}
	if len(hs.Buckets) != 1 || hs.Buckets[0] != [2]int64{1, 1} {
		t.Errorf("sparse buckets = %v, want [[1 1]] (2.5 lands in bucket 1 of 5)", hs.Buckets)
	}
	if math.Abs(hs.Mean-(2.5-1+99)/3) > 1e-12 {
		t.Errorf("snapshot mean = %v", hs.Mean)
	}

	// Snapshots marshal deterministically: encoding/json sorts map keys.
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("repeated snapshots of an unchanged registry should marshal identically")
	}
}

func TestHistogramSnapshotEmpty(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := h.Snapshot()
	if s.Count != 0 || len(s.Buckets) != 0 || s.Mean != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	if s.NumBucket != 4 || s.Lo != 0 || s.Hi != 1 {
		t.Errorf("range metadata lost: %+v", s)
	}
}

func TestCounterSnapshotIsolated(t *testing.T) {
	c := NewCounter()
	c.Inc("a")
	s := c.Snapshot()
	c.Inc("a")
	if s.Counts["a"] != 1 || s.Total != 1 {
		t.Error("snapshot should be a copy, not a view")
	}
}
