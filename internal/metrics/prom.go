// Prometheus text exposition for registry snapshots. The writer
// operates on immutable RegistrySnapshot values rather than live
// registries: the registry is not safe for concurrent use, so a serving
// goroutine publishes snapshots (e.g. through an atomic pointer) and
// renders those. Output is byte-deterministic for a given snapshot —
// families and series are emitted in sorted order — so exposition can
// be diffed and tested exactly.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ccncoord/internal/timeline"
)

// PromName sanitizes name into a legal Prometheus metric-name segment:
// every character outside [a-zA-Z0-9_:] becomes '_', and a leading
// digit is prefixed with '_'.
func PromName(name string) string {
	var b strings.Builder
	for i, r := range name {
		legal := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if legal {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the text exposition format:
// backslash, double quote, and newline.
func promLabel(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects (shortest exact
// decimal; +Inf for the terminal histogram bucket).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (v0.0.4). Every metric name is prefixed with
// namespace and sanitized via PromName. Counters become counter
// families with one series per event name (label "name"); histograms
// become native Prometheus histograms with cumulative le buckets
// (only occupied upper edges are listed, plus the mandatory +Inf);
// means become gauge triples (_mean, _stddev, _samples). Families are
// written in sorted name order within each kind, so the output is
// byte-identical for equal snapshots.
func WritePrometheus(w io.Writer, s *RegistrySnapshot, namespace string) error {
	if s == nil {
		return nil
	}
	ns := PromName(namespace)
	if ns != "" {
		ns += "_"
	}

	for _, name := range sortedSnapshotKeys(s.Counters) {
		c := s.Counters[name]
		fam := ns + PromName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", fam); err != nil {
			return err
		}
		labels := make([]string, 0, len(c.Counts))
		for l := range c.Counts {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			if _, err := fmt.Fprintf(w, "%s{name=\"%s\"} %d\n", fam, promLabel(l), c.Counts[l]); err != nil {
				return err
			}
		}
	}

	for _, name := range sortedSnapshotKeys(s.Histograms) {
		h := s.Histograms[name]
		fam := ns + PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fam); err != nil {
			return err
		}
		// The snapshot stores occupied equal-width buckets as {index,
		// count} pairs in index order; the exposition needs cumulative
		// counts at each listed upper edge. Underflow mass sits below
		// every edge; overflow mass only reaches +Inf.
		width := (h.Hi - h.Lo) / float64(h.NumBucket)
		cum := h.Underflow
		for _, pair := range h.Buckets {
			cum += pair[1]
			edge := h.Lo + width*float64(pair[0]+1)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", fam, promFloat(edge), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", fam, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", fam, promFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", fam, h.Count); err != nil {
			return err
		}
	}

	for _, name := range sortedSnapshotKeys(s.Means) {
		m := s.Means[name]
		fam := ns + PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s_mean gauge\n%s_mean %s\n",
			fam, fam, promFloat(m.Mean)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s_stddev gauge\n%s_stddev %s\n",
			fam, fam, promFloat(m.StdDev)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s_samples gauge\n%s_samples %d\n",
			fam, fam, m.N); err != nil {
			return err
		}
	}
	return nil
}

// WriteTimelinePrometheus renders a timeline snapshot's derived series
// in the Prometheus text exposition format: cumulative counters
// (epochs, evictions, measured coordination messages, the model's
// message budget, churn, epoch requests) followed by latest-epoch
// gauges. Counters cover every record ever appended — the ring's sums
// survive eviction — and are emitted even on an empty timeline (all
// zero); the latest-epoch gauges appear only once a record exists.
// Families are written in a fixed alphabetical order, so output is
// byte-identical for equal snapshots. The latest epoch's wall-clock
// field is deliberately not exposed: every emitted series is a
// deterministic function of the simulated run.
func WriteTimelinePrometheus(w io.Writer, s timeline.Snapshot, namespace string) error {
	ns := PromName(namespace)
	if ns != "" {
		ns += "_"
	}
	counters := []struct {
		name string
		val  int64
	}{
		{"bound_messages", s.BoundMessages},
		{"churn", s.Churn},
		{"coord_messages", s.Messages},
		{"dropped", int64(s.Dropped)},
		{"epochs", int64(s.Total)},
		{"requests", s.Requests},
	}
	for _, c := range counters {
		fam := ns + c.name + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", fam, fam, c.val); err != nil {
			return err
		}
	}
	if len(s.Records) == 0 {
		return nil
	}
	last := s.Records[len(s.Records)-1]
	gauges := []struct {
		name string
		val  string
	}{
		{"epoch", fmt.Sprintf("%d", last.Epoch)},
		{"last_bound_cost_ms", promFloat(last.BoundCostMs)},
		{"last_bound_messages", fmt.Sprintf("%d", last.BoundMessages)},
		{"last_churn", fmt.Sprintf("%d", last.Churn)},
		{"last_convergence_ms", promFloat(last.ConvergenceMs)},
		{"last_coord_slots", fmt.Sprintf("%d", last.CoordSlots)},
		{"last_level", promFloat(last.Level)},
		{"last_local_slots", fmt.Sprintf("%d", last.LocalSlots)},
		{"last_messages", fmt.Sprintf("%d", last.Messages)},
		{"last_reported_contents", fmt.Sprintf("%d", last.ReportedContents)},
		{"last_requests", fmt.Sprintf("%d", last.Requests)},
		{"last_unit_cost_ms", promFloat(last.UnitCostMs)},
	}
	for _, g := range gauges {
		fam := ns + g.name
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", fam, fam, g.val); err != nil {
			return err
		}
	}
	return nil
}

// sortedSnapshotKeys returns the map's keys in sorted order.
func sortedSnapshotKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
