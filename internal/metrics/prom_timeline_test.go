package metrics

import (
	"strings"
	"testing"

	"ccncoord/internal/timeline"
)

func timelineText(t *testing.T, r *timeline.Ring) string {
	t.Helper()
	var b strings.Builder
	if err := WriteTimelinePrometheus(&b, r.Snapshot(), "ccncoord_timeline"); err != nil {
		t.Fatalf("WriteTimelinePrometheus: %v", err)
	}
	return b.String()
}

func TestTimelinePrometheusEmpty(t *testing.T) {
	out := timelineText(t, timeline.NewRing(8))
	for _, want := range []string{
		"ccncoord_timeline_bound_messages_total 0\n",
		"ccncoord_timeline_churn_total 0\n",
		"ccncoord_timeline_coord_messages_total 0\n",
		"ccncoord_timeline_dropped_total 0\n",
		"ccncoord_timeline_epochs_total 0\n",
		"ccncoord_timeline_requests_total 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "gauge") {
		t.Errorf("empty timeline must emit no latest-epoch gauges, got:\n%s", out)
	}
}

func TestTimelinePrometheusSingleRecord(t *testing.T) {
	ring := timeline.NewRing(8)
	ring.Append(timeline.EpochRecord{
		Epoch:            3,
		Requests:         500,
		Messages:         40,
		BoundMessages:    48,
		UnitCostMs:       2.5,
		BoundCostMs:      60,
		ConvergenceMs:    5,
		LocalSlots:       10,
		CoordSlots:       6,
		Level:            0.375,
		Churn:            4,
		ReportedContents: 77,
		WallMs:           123.456, // wall clock must never reach the exposition
	})
	out := timelineText(t, ring)
	for _, want := range []string{
		"ccncoord_timeline_coord_messages_total 40\n",
		"ccncoord_timeline_bound_messages_total 48\n",
		"ccncoord_timeline_epochs_total 1\n",
		"ccncoord_timeline_requests_total 500\n",
		"ccncoord_timeline_churn_total 4\n",
		"ccncoord_timeline_dropped_total 0\n",
		"ccncoord_timeline_epoch 3\n",
		"ccncoord_timeline_last_messages 40\n",
		"ccncoord_timeline_last_bound_messages 48\n",
		"ccncoord_timeline_last_bound_cost_ms 60\n",
		"ccncoord_timeline_last_unit_cost_ms 2.5\n",
		"ccncoord_timeline_last_convergence_ms 5\n",
		"ccncoord_timeline_last_coord_slots 6\n",
		"ccncoord_timeline_last_local_slots 10\n",
		"ccncoord_timeline_last_level 0.375\n",
		"ccncoord_timeline_last_churn 4\n",
		"ccncoord_timeline_last_reported_contents 77\n",
		"ccncoord_timeline_last_requests 500\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "wall") {
		t.Errorf("wall-clock series leaked into exposition:\n%s", out)
	}
}

// TestTimelinePrometheusWraparound appends past capacity and checks the
// counters still cover evicted records while the gauges track the
// latest one.
func TestTimelinePrometheusWraparound(t *testing.T) {
	ring := timeline.NewRing(3)
	for i := int64(1); i <= 7; i++ {
		ring.Append(timeline.EpochRecord{
			Epoch:         i,
			Requests:      100,
			Messages:      10,
			BoundMessages: 12,
			Churn:         2,
		})
	}
	out := timelineText(t, ring)
	for _, want := range []string{
		"ccncoord_timeline_epochs_total 7\n",
		"ccncoord_timeline_dropped_total 4\n",
		"ccncoord_timeline_coord_messages_total 70\n",
		"ccncoord_timeline_bound_messages_total 84\n",
		"ccncoord_timeline_churn_total 14\n",
		"ccncoord_timeline_requests_total 700\n",
		"ccncoord_timeline_epoch 7\n",
		"ccncoord_timeline_last_messages 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("wraparound exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestTimelinePrometheusDeterministic builds two rings through the same
// append sequence and requires byte-identical exposition, and a sorted
// family order within each section.
func TestTimelinePrometheusDeterministic(t *testing.T) {
	build := func() *timeline.Ring {
		ring := timeline.NewRing(4)
		for i := int64(1); i <= 6; i++ {
			ring.Append(timeline.EpochRecord{
				Epoch:         i,
				Requests:      50 * i,
				Messages:      8 * i,
				BoundMessages: 9 * i,
				UnitCostMs:    1.5,
				Churn:         i,
				WallMs:        float64(i) * 7.7, // differs run to run in real life
			})
		}
		return ring
	}
	a, b := timelineText(t, build()), timelineText(t, build())
	if a != b {
		t.Fatalf("exposition not deterministic:\n--- a ---\n%s--- b ---\n%s", a, b)
	}

	var families []string
	for _, line := range strings.Split(a, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			families = append(families, strings.Fields(rest)[0])
		}
	}
	counters, gauges := families[:6], families[6:]
	for i := 1; i < len(counters); i++ {
		if counters[i-1] >= counters[i] {
			t.Errorf("counter families out of order: %q before %q", counters[i-1], counters[i])
		}
	}
	for i := 1; i < len(gauges); i++ {
		if gauges[i-1] >= gauges[i] {
			t.Errorf("gauge families out of order: %q before %q", gauges[i-1], gauges[i])
		}
	}
}
